/**
 * @file
 * Crash-recovery soak for the sweep layer: a journaled sweep killed
 * mid-flight must resume to a byte-identical final table at any
 * worker count; job budgets must produce structured Timeout errors;
 * retries must be bounded; and a failed job must never poison the
 * memo cache for an identical resubmission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "metrics/experiment.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"
#include "sim/procfault.hpp"

namespace ckesim {
namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(std::string(::testing::TempDir()) +
                "ckesim_recovery_" + tag + ".bin")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

GpuConfig
recoveryCfg()
{
    return makeSmallConfig(2, 2);
}

/**
 * A mixed sweep: isolated baselines, three scheme families, and a
 * recoverable fault-injection job — the job population a real bench
 * binary submits.
 */
std::vector<SimJob>
buildJobs()
{
    const GpuConfig cfg = recoveryCfg();
    const Cycle cycles{4000};
    const Workload mixed = makeWorkload({"bp", "sv"});
    const Workload mem = makeWorkload({"sv", "ks"});

    std::vector<SimJob> jobs;
    jobs.push_back(
        SimJob::isolated(cfg, cycles, *mixed.kernels[0]));
    jobs.push_back(
        SimJob::isolated(cfg, cycles, *mixed.kernels[1]));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mixed, NamedScheme::WS));
    jobs.push_back(SimJob::concurrent(cfg, cycles, mixed,
                                      NamedScheme::WS_QBMI_DMIL));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mem, NamedScheme::SMK_PW));

    SchemeSpec faulted = makeScheme(PartitionScheme::Spatial,
                                    BmiMode::None, MilMode::None);
    faulted.faults.push_back({FaultKind::DelayFill, Cycle{200},
                              Cycle{2000}, -1, 16, Cycle{100}});
    jobs.push_back(SimJob::concurrent(cfg, cycles, mem, faulted));
    return jobs;
}

/** Byte-exact encoding of a whole result table. */
std::vector<std::vector<std::uint8_t>>
encodeTable(const std::vector<SimResult> &results)
{
    std::vector<std::vector<std::uint8_t>> table;
    table.reserve(results.size());
    for (const SimResult &r : results)
        table.push_back(encodeSimResult(r));
    return table;
}

// ---- journaled resume --------------------------------------------------

TEST(Recovery, KilledSweepResumesToByteIdenticalTable)
{
    const std::vector<SimJob> jobs = buildJobs();

    // Ground truth: one uninterrupted, unjournaled sweep.
    SweepEngine baseline(2);
    const auto want = encodeTable(baseline.sweep(jobs));

    // First attempt: journaled, killed (cooperatively cancelled —
    // the in-process stand-in for SIGKILL, since a real kill would
    // take the test runner with it) once at least one result is
    // durable. The journal's fsync contract makes this equivalent to
    // dying at an arbitrary instruction boundary; torn-tail handling
    // is covered separately in test_journal.
    TempFile tmp("resume");
    std::uint64_t first_pass_completed = 0;
    {
        SweepEngine engine(2);
        ResultJournal journal;
        journal.open(tmp.path());
        engine.setJournal(&journal);

        std::thread killer([&] {
            while (journal.size() == 0)
                std::this_thread::yield();
            engine.cancelAll();
        });
        try {
            (void)engine.sweep(jobs);
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), "Cancelled") << e.what();
        }
        killer.join();
        first_pass_completed = engine.resilience().completed;
        EXPECT_GE(first_pass_completed, 1u);
    }

    // Resume with various worker counts: completed work must be
    // served from the journal and the final table must be
    // byte-identical to the uninterrupted run.
    for (const int workers : {1, 2, 4}) {
        TempFile copy("resume_w" + std::to_string(workers));
        // Each resume gets its own copy of the crash-time journal so
        // the three worker counts start from the same crash state.
        {
            ResultJournal src;
            src.open(tmp.path());
            ResultJournal dst;
            dst.open(copy.path());
            SimResult r;
            for (const SimJob &job : jobs)
                if (src.find(job.key(), r))
                    dst.append(job.key(), r);
        }
        SweepEngine engine(workers);
        ResultJournal journal;
        journal.open(copy.path());
        EXPECT_EQ(journal.stats().loaded, first_pass_completed);
        engine.setJournal(&journal);
        const auto got = encodeTable(engine.sweep(jobs));
        EXPECT_EQ(got, want) << "resume with " << workers
                             << " workers diverged";
        EXPECT_EQ(engine.resilience().journal_hits,
                  first_pass_completed);
        // Second run over the now-complete journal simulates nothing.
        SweepEngine replay(workers);
        ResultJournal full;
        full.open(copy.path());
        replay.setJournal(&full);
        EXPECT_EQ(encodeTable(replay.sweep(jobs)), want);
        EXPECT_EQ(replay.stats().sims_executed, 0u);
    }
}

TEST(Recovery, JournaledRunIsByteIdenticalForAnyWorkerCount)
{
    const std::vector<SimJob> jobs = buildJobs();
    SweepEngine baseline(1);
    const auto want = encodeTable(baseline.sweep(jobs));
    for (const int workers : {2, 4}) {
        TempFile tmp("jobs" + std::to_string(workers));
        SweepEngine engine(workers);
        ResultJournal journal;
        journal.open(tmp.path());
        engine.setJournal(&journal);
        EXPECT_EQ(encodeTable(engine.sweep(jobs)), want);
        // Nested sub-jobs (isolated baselines pulled in by the
        // concurrent jobs) are journaled too, so >= not ==.
        EXPECT_GE(journal.size(), jobs.size());
    }
}

// ---- budgets, retries, cache hygiene -----------------------------------

TEST(Recovery, CycleBudgetRaisesStructuredTimeout)
{
    SweepEngine engine(1);
    JobBudget budget;
    budget.cycle_budget = 1000; // the job wants 4000 cycles
    engine.setJobBudget(budget);
    const std::vector<SimJob> jobs = buildJobs();
    try {
        (void)engine.run(jobs[2]);
        FAIL() << "cycle budget never tripped";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Timeout") << e.what();
    }
    const ResilienceReport r = engine.resilience();
    EXPECT_EQ(r.timed_out, 1u);
    EXPECT_EQ(r.abandoned, 1u);
    EXPECT_EQ(r.retried, 0u);
}

TEST(Recovery, TimeoutsRetryBoundedTimes)
{
    SweepEngine engine(1);
    JobBudget budget;
    budget.cycle_budget = 1000;
    engine.setJobBudget(budget);
    RetryPolicy retry;
    retry.max_retries = 2;
    engine.setRetryPolicy(retry);
    const std::vector<SimJob> jobs = buildJobs();
    EXPECT_THROW((void)engine.run(jobs[3]), SimError);
    const ResilienceReport r = engine.resilience();
    EXPECT_EQ(r.retried, 2u);   // bounded: initial + 2 retries
    EXPECT_EQ(r.timed_out, 3u); // every attempt timed out
    EXPECT_EQ(r.abandoned, 1u); // but the job failed exactly once
}

TEST(Recovery, FailedJobDoesNotPoisonTheMemoCache)
{
    // A job that fails under a budget must be recomputable: lifting
    // the budget and resubmitting the IDENTICAL job (same key) has to
    // re-run it, not replay the memoized exception.
    const std::vector<SimJob> jobs = buildJobs();
    SweepEngine engine(2);
    JobBudget tight;
    tight.cycle_budget = 1000;
    engine.setJobBudget(tight);
    EXPECT_THROW((void)engine.run(jobs[2]), SimError);

    engine.setJobBudget(JobBudget{}); // unlimited again
    SimResult result;
    EXPECT_NO_THROW(result = engine.run(jobs[2]));
    ASSERT_NE(result.concurrent, nullptr);
    EXPECT_GT(result.concurrent->weighted_speedup, 0.0);
}

TEST(Recovery, CancelAllStopsInFlightJobsAndClearCancelRearms)
{
    const std::vector<SimJob> jobs = buildJobs();
    SweepEngine engine(1);
    engine.cancelAll(); // pre-cancelled: every job dies immediately
    try {
        (void)engine.run(jobs[2]);
        FAIL() << "cancelled engine still ran a job";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Cancelled") << e.what();
    }
    EXPECT_EQ(engine.resilience().cancelled, 1u);

    engine.clearCancel();
    SimResult result;
    EXPECT_NO_THROW(result = engine.run(jobs[2]));
    EXPECT_NE(result.concurrent, nullptr);
}

TEST(Recovery, FaultJobFailuresAreRetriedThenSurfaced)
{
    // A hard fault (dropped fills deadlock the SM) fails the same way
    // every attempt; the retry layer must try max_retries times and
    // then surface the ORIGINAL watchdog error, not mask it.
    const GpuConfig cfg = recoveryCfg();
    SchemeSpec dead = makeScheme(PartitionScheme::Spatial,
                                 BmiMode::None, MilMode::None);
    dead.faults.push_back({FaultKind::DropFill, Cycle{0}, kNeverCycle,
                           -1, -1, Cycle{}});
    const SimJob job = SimJob::concurrent(
        cfg, Cycle{16000}, makeWorkload({"sv", "ks"}), dead);

    SweepEngine engine(1);
    RetryPolicy retry;
    retry.max_retries = 1;
    engine.setRetryPolicy(retry);
    try {
        (void)engine.run(job);
        FAIL() << "deadlocked fault job completed";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Watchdog") << e.what();
    }
    const ResilienceReport r = engine.resilience();
    EXPECT_EQ(r.retried, 1u);
    EXPECT_EQ(r.abandoned, 1u);
}

// ---- deterministic jittered backoff ------------------------------------

TEST(Recovery, RetryBackoffIsDeterministicAndBounded)
{
    RetryPolicy policy;
    policy.backoff_ms = 100;
    policy.jitter_pct = 50;
    for (const std::uint64_t key :
         {0x1ULL, 0xdeadbeefULL, 0xffffffffffffffffULL}) {
        for (int attempt = 0; attempt < 6; ++attempt) {
            const std::uint64_t base = policy.backoff_ms
                                       << static_cast<unsigned>(
                                              attempt);
            const std::uint64_t ms =
                retryBackoffMs(policy, key, attempt);
            // Same (key, attempt) -> same backoff, every time.
            EXPECT_EQ(ms, retryBackoffMs(policy, key, attempt));
            // Bounded: base <= ms <= base + jitter_pct% of base.
            EXPECT_GE(ms, base);
            EXPECT_LE(ms, base + base * policy.jitter_pct / 100);
        }
    }
    // Distinct keys must desynchronize (not retry in lockstep).
    EXPECT_NE(retryBackoffMs(policy, 0x1ULL, 3),
              retryBackoffMs(policy, 0xdeadbeefULL, 3));
}

TEST(Recovery, RetryBackoffZeroJitterIsExact)
{
    RetryPolicy policy;
    policy.backoff_ms = 40;
    policy.jitter_pct = 0;
    EXPECT_EQ(retryBackoffMs(policy, 0xabcULL, 0), 40u);
    EXPECT_EQ(retryBackoffMs(policy, 0xabcULL, 1), 80u);
    EXPECT_EQ(retryBackoffMs(policy, 0xabcULL, 2), 160u);
    // Zero base: always immediate, jitter or not.
    policy.backoff_ms = 0;
    policy.jitter_pct = 50;
    EXPECT_EQ(retryBackoffMs(policy, 0xabcULL, 4), 0u);
}

// ---- campaign shard-merge determinism ----------------------------------

/** Raw bytes of a file (empty if absent). */
std::vector<std::uint8_t>
fileBytes(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return bytes;
    std::uint8_t chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + n);
    std::fclose(f);
    return bytes;
}

TEST(Recovery, CampaignMergeIsByteIdenticalAcrossWorkersAndKills)
{
    // Workers=1 without faults is the ground truth; 2 and 4 workers
    // run the same campaign while every worker touching job 1 is
    // SIGKILLed on the first dispatch attempt. The merged journal and
    // the outcome table must be byte-identical in all cases — the
    // core promise of submission-order merge + kill-and-redispatch.
    const std::vector<SimJob> jobs = buildJobs();

    std::vector<std::uint8_t> want_merged;
    std::vector<std::vector<std::uint8_t>> want_table;
    for (const int workers : {1, 2, 4}) {
        TempFile tmp("campaign_w" + std::to_string(workers));
        CampaignOptions opts;
        opts.workers = workers;
        opts.journal_base = tmp.path();
        opts.heartbeat_ms = 5;
        if (workers > 1) {
            ProcFaultSpec kill;
            kill.kind = ProcFaultKind::KillWorkerMidJob;
            kill.job_index = 1;
            kill.attempts = 1;
            opts.faults = ProcFaultPlan({kill});
        }
        CampaignEngine engine(opts);
        const CampaignOutcome outcome = engine.run(jobs);
        ASSERT_TRUE(outcome.allCompleted())
            << workers << " workers";
        if (workers > 1)
            EXPECT_GE(outcome.report.worker_deaths, 1u);

        std::vector<std::vector<std::uint8_t>> table;
        for (const CampaignJobOutcome &job : outcome.jobs)
            table.push_back(encodeSimResult(job.result));
        const std::vector<std::uint8_t> merged = fileBytes(
            CampaignEngine::mergedPath(tmp.path()));
        ASSERT_FALSE(merged.empty());
        if (workers == 1) {
            want_merged = merged;
            want_table = table;
        } else {
            EXPECT_EQ(merged, want_merged)
                << workers
                << "-worker merged journal diverged from the "
                   "single-worker ground truth";
            EXPECT_EQ(table, want_table)
                << workers << "-worker table diverged";
        }
        // Cleanup the shards TempFile does not know about.
        for (int slot = 0; slot < workers; ++slot)
            std::remove(CampaignEngine::shardPath(tmp.path(), slot)
                            .c_str());
        std::remove(
            CampaignEngine::mergedPath(tmp.path()).c_str());
    }
}

// ---- the bench CLI plumbing --------------------------------------------

TEST(Recovery, ParseBenchArgsExtractsResume)
{
    const char *argv_in[] = {"bench", "--resume", "sweep.journal",
                             "--jobs=2", nullptr};
    char *argv[5];
    for (int i = 0; i < 4; ++i)
        argv[i] = const_cast<char *>(argv_in[i]);
    argv[4] = nullptr;
    int argc = 4;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    EXPECT_EQ(opts.resume, "sweep.journal");
    EXPECT_EQ(opts.jobs, 2);
    EXPECT_EQ(argc, 1); // both flags consumed
}

} // namespace
} // namespace ckesim
