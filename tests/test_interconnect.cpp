/**
 * @file
 * Unit tests for the crossbar model: zero-load latency, flit
 * serialization at destination ports, queue-depth backpressure and
 * FIFO delivery.
 */

#include <gtest/gtest.h>

#include "mem/interconnect.hpp"

namespace ckesim {
namespace {

IcntConfig
cfgOf(int latency, int depth)
{
    IcntConfig c;
    c.latency = latency;
    c.input_queue_depth = depth;
    return c;
}

MemRequest
req(LineAddr line)
{
    MemRequest r;
    r.line_addr = line;
    return r;
}

TEST(Crossbar, DeliversAfterLatencyPlusSerialization)
{
    Crossbar x(2, cfgOf(4, 8));
    ASSERT_TRUE(
        x.tryInject(0, /*flits=*/1, req(LineAddr{1}), Cycle{10}));
    // Ready at 10 + 4 (latency) + 1 (flit) = 15.
    EXPECT_TRUE(x.drain(0, Cycle{14}, 8).empty());
    const auto out = x.drain(0, Cycle{15}, 8);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].line_addr, LineAddr{1});
}

TEST(Crossbar, PortSerializesFlits)
{
    Crossbar x(1, cfgOf(0, 8));
    x.tryInject(0, 4, req(LineAddr{1}), Cycle{}); // ready at 4
    x.tryInject(0, 4, req(LineAddr{2}), Cycle{}); // ready at 8
    EXPECT_EQ(x.drain(0, Cycle{4}, 8).size(), 1u);
    EXPECT_EQ(x.drain(0, Cycle{7}, 8).size(), 0u);
    EXPECT_EQ(x.drain(0, Cycle{8}, 8).size(), 1u);
}

TEST(Crossbar, IndependentPorts)
{
    Crossbar x(2, cfgOf(0, 8));
    x.tryInject(0, 4, req(LineAddr{1}), Cycle{});
    x.tryInject(1, 4, req(LineAddr{2}), Cycle{});
    // Port 1 is not delayed by port 0's serialization.
    EXPECT_EQ(x.drain(1, Cycle{4}, 8).size(), 1u);
}

TEST(Crossbar, QueueDepthRejectsInjection)
{
    Crossbar x(1, cfgOf(0, 2));
    EXPECT_TRUE(x.tryInject(0, 1, req(LineAddr{1}), Cycle{}));
    EXPECT_TRUE(x.tryInject(0, 1, req(LineAddr{2}), Cycle{}));
    EXPECT_FALSE(x.tryInject(0, 1, req(LineAddr{3}), Cycle{}));
    EXPECT_EQ(x.queueLength(0), 2);
    // Draining frees capacity.
    x.drain(0, Cycle{100}, 8);
    EXPECT_TRUE(x.tryInject(0, 1, req(LineAddr{3}), Cycle{100}));
}

TEST(Crossbar, DrainRespectsMaxCount)
{
    Crossbar x(1, cfgOf(0, 8));
    for (std::uint64_t i = 0; i < 4; ++i)
        x.tryInject(0, 1, req(LineAddr{i}), Cycle{});
    EXPECT_EQ(x.drain(0, Cycle{100}, 2).size(), 2u);
    EXPECT_EQ(x.drain(0, Cycle{100}, 8).size(), 2u);
}

TEST(Crossbar, FifoOrderPerPort)
{
    Crossbar x(1, cfgOf(0, 8));
    for (std::uint64_t i = 0; i < 4; ++i)
        x.tryInject(0, 1, req(LineAddr{i}), Cycle{});
    const auto out = x.drain(0, Cycle{100}, 8);
    ASSERT_EQ(out.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].line_addr, LineAddr{i});
}

TEST(Crossbar, IdlePortRecoversWireAfterGap)
{
    Crossbar x(1, cfgOf(2, 8));
    x.tryInject(0, 1, req(LineAddr{1}), Cycle{}); // ready at 3
    x.drain(0, Cycle{3}, 8);
    // A much later injection sees only latency+flit, not stale
    // next_free.
    x.tryInject(0, 1, req(LineAddr{2}), Cycle{100});
    EXPECT_TRUE(x.drain(0, Cycle{102}, 8).empty());
    EXPECT_EQ(x.drain(0, Cycle{103}, 8).size(), 1u);
}

} // namespace
} // namespace ckesim
