/**
 * @file
 * Unit tests for TB partition feasibility and the leftover / spatial
 * policies.
 */

#include <gtest/gtest.h>

#include "core/tb_partition.hpp"

namespace ckesim {
namespace {

std::vector<const KernelProfile *>
pair(const char *a, const char *b)
{
    return {&findProfile(a), &findProfile(b)};
}

TEST(Partition, FitsRespectsEveryResource)
{
    const SmConfig sm;
    const auto ks = pair("bp", "sv");
    // Each kernel alone at its occupancy max fits.
    EXPECT_TRUE(partitionFits({ks[0]->maxTbsPerSm(sm), 0}, ks, sm));
    EXPECT_TRUE(partitionFits({0, ks[1]->maxTbsPerSm(sm)}, ks, sm));
    // Both at max together cannot fit (threads alone overflow).
    EXPECT_FALSE(partitionFits({ks[0]->maxTbsPerSm(sm),
                                ks[1]->maxTbsPerSm(sm)},
                               ks, sm));
}

TEST(Partition, PaperSweetPointIsFeasible)
{
    // Figure 3(b): (9, 4) for bp+sv must be feasible; (10, 4) not.
    const SmConfig sm;
    const auto ks = pair("bp", "sv");
    EXPECT_TRUE(partitionFits({9, 4}, ks, sm));
    EXPECT_FALSE(partitionFits({10, 4}, ks, sm));
}

TEST(Partition, MaxFeasibleTbs)
{
    const SmConfig sm;
    const auto ks = pair("bp", "sv");
    // With 9 bp TBs (2304 threads), sv (192 thr/TB) fits 4 more.
    EXPECT_EQ(maxFeasibleTbs({9, 0}, 1, ks, sm), 4);
    // With nothing resident, sv reaches its occupancy max.
    EXPECT_EQ(maxFeasibleTbs({0, 0}, 1, ks, sm), 16);
}

TEST(Partition, LeftoverGivesFirstKernelItsMax)
{
    const SmConfig sm;
    const auto ks = pair("bp", "sv");
    const std::vector<int> tbs = leftoverPartition(ks, sm);
    EXPECT_EQ(tbs[0], findProfile("bp").maxTbsPerSm(sm));
    // bp fills all 3072 threads: sv gets nothing.
    EXPECT_EQ(tbs[1], 0);
}

TEST(Partition, LeftoverFillsWithSecondWhenRoomRemains)
{
    const SmConfig sm;
    // cd is register-bound (threads 33%): plenty of threads remain.
    const auto ks = pair("cd", "s2");
    const std::vector<int> tbs = leftoverPartition(ks, sm);
    EXPECT_EQ(tbs[0], findProfile("cd").maxTbsPerSm(sm));
    EXPECT_EQ(tbs[1], 0); // cd is TB-slot bound at 16: no slots left
}

TEST(Partition, SpatialSplitsSmsEvenly)
{
    GpuConfig cfg = makeSmallConfig(8, 8);
    const auto ks = pair("bp", "sv");
    const QuotaMatrix q = spatialPartition(ks, cfg);
    ASSERT_EQ(q.size(), 8u);
    for (int s = 0; s < 4; ++s) {
        EXPECT_GT(q[static_cast<std::size_t>(s)][0], 0);
        EXPECT_EQ(q[static_cast<std::size_t>(s)][1], 0);
    }
    for (int s = 4; s < 8; ++s) {
        EXPECT_EQ(q[static_cast<std::size_t>(s)][0], 0);
        EXPECT_GT(q[static_cast<std::size_t>(s)][1], 0);
    }
}

TEST(Partition, SpatialHandlesOddSmCount)
{
    GpuConfig cfg = makeSmallConfig(5, 4);
    const auto ks = pair("bp", "sv");
    const QuotaMatrix q = spatialPartition(ks, cfg);
    int sm0 = 0, sm1 = 0;
    for (const auto &row : q) {
        if (row[0] > 0)
            ++sm0;
        if (row[1] > 0)
            ++sm1;
    }
    EXPECT_EQ(sm0 + sm1, 5);
    EXPECT_GE(sm0, 2);
    EXPECT_GE(sm1, 2);
}

TEST(Partition, BroadcastReplicates)
{
    const QuotaMatrix q = broadcastPartition({3, 4}, 6);
    ASSERT_EQ(q.size(), 6u);
    for (const auto &row : q) {
        EXPECT_EQ(row[0], 3);
        EXPECT_EQ(row[1], 4);
    }
}

} // namespace
} // namespace ckesim
