/**
 * @file
 * Unit tests for the bench-harness helpers: class-grouped geomeans
 * and environment-driven sizing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "metrics/experiment.hpp"

namespace ckesim {
namespace {

TEST(ClassAggregate, GeomeanPerClass)
{
    ClassAggregate agg;
    agg.add(WorkloadClass::CC, 1.0);
    agg.add(WorkloadClass::CC, 4.0);
    agg.add(WorkloadClass::MM, 9.0);
    EXPECT_NEAR(agg.geomean(WorkloadClass::CC), 2.0, 1e-12);
    EXPECT_NEAR(agg.geomean(WorkloadClass::MM), 9.0, 1e-12);
    EXPECT_DOUBLE_EQ(agg.geomean(WorkloadClass::CM), 0.0);
    EXPECT_EQ(agg.count(WorkloadClass::CC), 2);
    EXPECT_EQ(agg.count(WorkloadClass::CM), 0);
}

TEST(ClassAggregate, GeomeanAllSpansClasses)
{
    ClassAggregate agg;
    agg.add(WorkloadClass::CC, 2.0);
    agg.add(WorkloadClass::MM, 8.0);
    EXPECT_NEAR(agg.geomeanAll(), 4.0, 1e-12);
}

TEST(ClassAggregate, ClampsNonPositiveValues)
{
    ClassAggregate agg;
    agg.add(WorkloadClass::CC, 0.0); // would break a geomean
    agg.add(WorkloadClass::CC, 1.0);
    EXPECT_GT(agg.geomean(WorkloadClass::CC), 0.0);
}

TEST(Experiment, ClassLabels)
{
    EXPECT_STREQ(classLabel(WorkloadClass::CC), "C+C");
    EXPECT_STREQ(classLabel(WorkloadClass::CM), "C+M");
    EXPECT_STREQ(classLabel(WorkloadClass::MM), "M+M");
}

TEST(Experiment, BenchConfigIsAlwaysTheTable1Machine)
{
    const GpuConfig cfg = benchConfig();
    EXPECT_EQ(cfg.num_sms, 16);
    EXPECT_EQ(cfg.dram.num_channels, 16);
}

TEST(Experiment, CyclesOverridableByEnv)
{
    ::setenv("CKESIM_CYCLES", "12345", 1);
    EXPECT_EQ(benchCycles(), Cycle{12345});
    ::unsetenv("CKESIM_CYCLES");
    EXPECT_GT(benchCycles(), Cycle{10000});
}

TEST(Experiment, FullModeSwitchesPairList)
{
    ::unsetenv("CKESIM_FULL");
    EXPECT_FALSE(fullMode());
    const std::size_t quick = benchPairs().size();
    ::setenv("CKESIM_FULL", "1", 1);
    EXPECT_TRUE(fullMode());
    EXPECT_EQ(benchPairs().size(), 78u);
    ::unsetenv("CKESIM_FULL");
    EXPECT_LT(quick, 78u);
}

TEST(Experiment, FmtAlignsNumbers)
{
    EXPECT_EQ(fmt(1.5, 7, 3), "  1.500");
    EXPECT_EQ(fmt(-0.25, 6, 2), " -0.25");
}

} // namespace
} // namespace ckesim
