/**
 * @file
 * Unit tests for the fixed-capacity ring buffer behind the per-cycle
 * queues (DESIGN.md §14): wrap-around FIFO order, growth refusal at
 * capacity, snapshot round-trips, and a randomized std::deque oracle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/check.hpp"
#include "sim/ringbuf.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {
namespace {

TEST(RingBuf, FifoOrderAcrossWrapAround)
{
    RingBuf<int> rb(4);
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    EXPECT_TRUE(rb.full());
    // Pop two, push two: head wraps past the backing store edge.
    rb.pop_front();
    rb.pop_front();
    rb.push_back(4);
    rb.push_back(5);
    EXPECT_EQ(rb.size(), 4u);
    EXPECT_EQ(rb.front(), 2);
    EXPECT_EQ(rb.back(), 5);
    std::vector<int> seen;
    for (const int v : rb)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingBuf, GrowthRefusalAtCapacity)
{
    RingBuf<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_TRUE(rb.full());
    EXPECT_THROW(rb.push_back(3), SimError);
    // The refused push must not have corrupted the contents.
    EXPECT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.front(), 1);
    EXPECT_EQ(rb.back(), 2);
}

TEST(RingBuf, ZeroCapacityRefusesEverything)
{
    RingBuf<int> rb(0);
    EXPECT_TRUE(rb.empty());
    EXPECT_TRUE(rb.full());
    EXPECT_THROW(rb.push_back(1), SimError);
}

TEST(RingBuf, PopOnEmptyRefused)
{
    RingBuf<int> rb(2);
    EXPECT_THROW(rb.pop_front(), SimError);
}

TEST(RingBuf, EraseAtPreservesSurvivorOrder)
{
    RingBuf<int> rb(6);
    // Wrap first so the erase shift crosses the physical edge.
    for (int i = 0; i < 6; ++i)
        rb.push_back(i);
    rb.pop_front();
    rb.pop_front();
    rb.pop_front();
    rb.push_back(6);
    rb.push_back(7); // logical: 3 4 5 6 7
    rb.eraseAt(2);   // drop 5
    std::vector<int> seen(rb.begin(), rb.end());
    EXPECT_EQ(seen, (std::vector<int>{3, 4, 6, 7}));
    rb.eraseAt(0); // drop the head
    seen.assign(rb.begin(), rb.end());
    EXPECT_EQ(seen, (std::vector<int>{4, 6, 7}));
}

TEST(RingBuf, SnapshotRoundTripPreservesWrappedState)
{
    RingBuf<std::uint64_t> rb(5);
    for (std::uint64_t i = 0; i < 5; ++i)
        rb.push_back(i);
    rb.pop_front();
    rb.pop_front();
    rb.push_back(100);
    rb.push_back(101); // logical: 2 3 4 100 101

    SnapshotWriter w;
    rb.snapshot(w, [](SnapshotWriter &sw, const std::uint64_t &v) {
        sw.u64(v);
    });

    RingBuf<std::uint64_t> back(5);
    back.push_back(999); // restore() must clear stale content
    SnapshotReader r(w.bytes());
    back.restore(r, [](SnapshotReader &sr) { return sr.u64(); });

    const std::vector<std::uint64_t> seen(back.begin(), back.end());
    EXPECT_EQ(seen,
              (std::vector<std::uint64_t>{2, 3, 4, 100, 101}));

    // Re-serializing the restored buffer yields identical bytes —
    // the fingerprint gate every converted queue relies on.
    SnapshotWriter w2;
    back.snapshot(w2, [](SnapshotWriter &sw, const std::uint64_t &v) {
        sw.u64(v);
    });
    EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(RingBuf, RestoreRefusesOversizedSnapshot)
{
    RingBuf<std::uint64_t> big(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        big.push_back(i);
    SnapshotWriter w;
    big.snapshot(w, [](SnapshotWriter &sw, const std::uint64_t &v) {
        sw.u64(v);
    });
    RingBuf<std::uint64_t> small(2);
    SnapshotReader r(w.bytes());
    EXPECT_THROW(
        small.restore(r, [](SnapshotReader &sr) { return sr.u64(); }),
        SimError);
}

TEST(RingBuf, DequeOracleRandomizedOps)
{
    // Drive both containers with the same operation stream and
    // require identical observable state after every step.
    RingBuf<int> rb(8);
    std::deque<int> oracle;
    Rng rng(0xCAFEF00DULL);
    int next_val = 0;
    for (int step = 0; step < 2000; ++step) {
        const std::uint64_t roll = rng.next() % 100;
        if (roll < 45) {
            if (oracle.size() < 8) {
                rb.push_back(next_val);
                oracle.push_back(next_val);
                ++next_val;
            }
        } else if (roll < 80) {
            if (!oracle.empty()) {
                rb.pop_front();
                oracle.pop_front();
            }
        } else if (!oracle.empty()) {
            const std::size_t at =
                static_cast<std::size_t>(rng.next()) % oracle.size();
            rb.eraseAt(at);
            oracle.erase(oracle.begin() +
                         static_cast<std::ptrdiff_t>(at));
        }

        ASSERT_EQ(rb.size(), oracle.size());
        ASSERT_EQ(rb.empty(), oracle.empty());
        if (!oracle.empty()) {
            ASSERT_EQ(rb.front(), oracle.front());
            ASSERT_EQ(rb.back(), oracle.back());
        }
        // Iteration order must match the deque exactly.
        const std::vector<int> got(rb.begin(), rb.end());
        const std::vector<int> want(oracle.begin(), oracle.end());
        ASSERT_EQ(got, want);
        // Random access too.
        for (std::size_t i = 0; i < oracle.size(); ++i)
            ASSERT_EQ(rb[i], oracle[i]);
    }
}

} // namespace
} // namespace ckesim
