/**
 * @file
 * End-to-end smoke tests: isolated kernels execute and produce sane
 * statistics; a concurrent pair under WS-DMIL runs to completion.
 */

#include <gtest/gtest.h>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "metrics/runner.hpp"

namespace ckesim {
namespace {

GpuConfig
testConfig()
{
    GpuConfig cfg = makeSmallConfig(4, 4);
    return cfg;
}

TEST(Integration, IsolatedComputeKernelExecutes)
{
    Runner runner(testConfig(), Cycle{20000});
    const IsolatedResult &res = runner.isolated(findProfile("bp"));
    EXPECT_GT(res.ipc, 0.1);
    EXPECT_GT(res.stats.issued_instructions, 1000u);
    EXPECT_GT(res.stats.mem_instructions, 0u);
    EXPECT_GT(res.stats.l1d_accesses, 0u);
}

TEST(Integration, IsolatedMemoryKernelExecutes)
{
    Runner runner(testConfig(), Cycle{20000});
    const IsolatedResult &res = runner.isolated(findProfile("sv"));
    EXPECT_GT(res.ipc, 0.01);
    EXPECT_GT(res.stats.l1dMissRate(), 0.3);
}

TEST(Integration, ConcurrentPairUnderWsDmil)
{
    Runner runner(testConfig(), Cycle{20000});
    const Workload wl = makeWorkload({"bp", "sv"});
    const ConcurrentResult res = runner.run(wl, NamedScheme::WS_DMIL);
    ASSERT_EQ(res.norm_ipc.size(), 2u);
    EXPECT_GT(res.weighted_speedup, 0.1);
    EXPECT_LE(res.weighted_speedup, 2.5);
    EXPECT_GT(res.fairness, 0.0);
    EXPECT_LE(res.fairness, 1.0 + 1e-9);
}

} // namespace
} // namespace ckesim
