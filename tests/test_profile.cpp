/**
 * @file
 * The synthetic kernel suite must land exactly on Table 2's static
 * occupancies and keep its C/M composition.
 */

#include <gtest/gtest.h>

#include "kernels/profile.hpp"

namespace ckesim {
namespace {

struct OccRow
{
    const char *name;
    double rf, smem, thread, tb;
    KernelClass cls;
};

// Table 2 of the paper.
const OccRow kTable2[] = {
    {"cp", 0.875, 0.667, 0.667, 1.000, KernelClass::Compute},
    {"hs", 0.984, 0.219, 0.583, 0.438, KernelClass::Compute},
    {"dc", 0.562, 0.333, 0.333, 1.000, KernelClass::Compute},
    {"pf", 0.750, 0.250, 1.000, 0.750, KernelClass::Compute},
    {"bp", 0.562, 0.133, 1.000, 0.750, KernelClass::Compute},
    {"bs", 0.750, 0.000, 1.000, 0.375, KernelClass::Compute},
    {"st", 0.750, 0.000, 1.000, 0.375, KernelClass::Compute},
    {"3m", 0.562, 0.000, 1.000, 0.750, KernelClass::Memory},
    {"sv", 0.750, 0.000, 1.000, 1.000, KernelClass::Memory},
    {"cd", 1.000, 0.000, 0.333, 1.000, KernelClass::Memory},
    {"s2", 0.500, 0.000, 0.667, 1.000, KernelClass::Memory},
    {"ks", 0.562, 0.000, 1.000, 0.750, KernelClass::Memory},
    {"ax", 0.562, 0.000, 1.000, 0.750, KernelClass::Memory},
};

class ProfileOccupancy : public ::testing::TestWithParam<OccRow>
{
};

TEST_P(ProfileOccupancy, MatchesTable2)
{
    const OccRow row = GetParam();
    const SmConfig sm;
    const KernelProfile &p = findProfile(row.name);
    EXPECT_NEAR(p.rfOccupancy(sm), row.rf, 0.01) << row.name;
    EXPECT_NEAR(p.smemOccupancy(sm), row.smem, 0.01) << row.name;
    EXPECT_NEAR(p.threadOccupancy(sm), row.thread, 0.01) << row.name;
    EXPECT_NEAR(p.tbOccupancy(sm), row.tb, 0.01) << row.name;
    EXPECT_EQ(p.expected_class, row.cls) << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, ProfileOccupancy, ::testing::ValuesIn(kTable2),
    [](const ::testing::TestParamInfo<OccRow> &info) {
        std::string n = info.param.name;
        if (n == "3m")
            n = "mm3"; // identifiers cannot start with a digit
        return n;
    });

TEST(Profile, SuiteHasSevenComputeSixMemory)
{
    EXPECT_EQ(benchmarkSuite().size(), 13u);
    EXPECT_EQ(kernelsOfClass(KernelClass::Compute).size(), 7u);
    EXPECT_EQ(kernelsOfClass(KernelClass::Memory).size(), 6u);
}

TEST(Profile, MaxTbsNeverExceedsAnyResource)
{
    const SmConfig sm;
    for (const KernelProfile &p : benchmarkSuite()) {
        const int n = p.maxTbsPerSm(sm);
        EXPECT_GE(n, 1);
        EXPECT_LE(n * p.threads_per_tb, sm.max_threads) << p.name;
        EXPECT_LE(n * p.regsPerTb(), sm.register_file) << p.name;
        EXPECT_LE(n * p.smem_per_tb, sm.smem_bytes) << p.name;
        EXPECT_LE(n, sm.max_tbs) << p.name;
        EXPECT_LE(n * p.warpsPerTb(sm.simd_width), sm.max_warps)
            << p.name;
        // Maximality: one more TB must not fit.
        const bool one_more_fits =
            (n + 1) * p.threads_per_tb <= sm.max_threads &&
            (n + 1) * p.regsPerTb() <= sm.register_file &&
            (n + 1) * p.smem_per_tb <= sm.smem_bytes &&
            (n + 1) <= sm.max_tbs &&
            (n + 1) * p.warpsPerTb(sm.simd_width) <= sm.max_warps;
        EXPECT_FALSE(one_more_fits) << p.name;
    }
}

TEST(Profile, WarpsPerTbRoundsUp)
{
    KernelProfile p;
    p.threads_per_tb = 33;
    EXPECT_EQ(p.warpsPerTb(32), 2);
    p.threads_per_tb = 32;
    EXPECT_EQ(p.warpsPerTb(32), 1);
}

TEST(Profile, DynamicParametersAreSane)
{
    for (const KernelProfile &p : benchmarkSuite()) {
        EXPECT_GE(p.cinst_per_minst, 1.0) << p.name;
        EXPECT_GE(p.req_per_minst, 1) << p.name;
        EXPECT_LE(p.req_per_minst, 32) << p.name;
        EXPECT_GE(p.mlp, 1) << p.name;
        EXPECT_LE(p.mlp, 8) << p.name;
        EXPECT_GE(p.reuse_prob, 0.0) << p.name;
        EXPECT_LT(p.reuse_prob, 1.0) << p.name;
        EXPECT_GT(p.instrs_per_warp, 0) << p.name;
    }
}

TEST(Profile, Table2DynamicColumns)
{
    // Spot-check Cinst/Minst and Req/Minst against Table 2.
    EXPECT_DOUBLE_EQ(findProfile("hs").cinst_per_minst, 7.0);
    EXPECT_DOUBLE_EQ(findProfile("3m").cinst_per_minst, 2.0);
    EXPECT_EQ(findProfile("ks").req_per_minst, 17);
    EXPECT_EQ(findProfile("ax").req_per_minst, 11);
    EXPECT_EQ(findProfile("sv").req_per_minst, 3);
}

TEST(ProfileDeathTest, UnknownNameAborts)
{
    EXPECT_DEATH(findProfile("nope"), "unknown kernel profile");
}

} // namespace
} // namespace ckesim
