/**
 * @file
 * Unit tests for the set-associative tag array: LRU replacement,
 * allocate-on-miss reservation, way restrictions (UCP) and owner
 * tracking.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace ckesim {
namespace {

/** Lines that all land in the same set of a 64-set array. */
LineAddr
sameSetLine(int num_sets, int set, int i)
{
    // Scan for the i-th line mapping to `set`.
    int found = 0;
    for (LineAddr line{};; ++line) {
        if (xorSetIndex(line, num_sets) == set) {
            if (found == i)
                return line;
            ++found;
        }
    }
}

TEST(CacheArray, ProbeMissOnEmpty)
{
    CacheArray c(64, 4);
    EXPECT_EQ(c.probe(LineAddr{123}), -1);
}

TEST(CacheArray, InstallThenHit)
{
    CacheArray c(64, 4);
    const LineAddr line{777};
    VictimResult v = c.chooseVictim(line, KernelId{0});
    ASSERT_TRUE(v.ok);
    c.install(c.setIndex(line), v.way, line, KernelId{0}, false);
    EXPECT_EQ(c.probe(line), v.way);
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray c(64, 2);
    const int set = 5;
    const LineAddr a = sameSetLine(64, set, 0);
    const LineAddr b = sameSetLine(64, set, 1);
    const LineAddr d = sameSetLine(64, set, 2);

    VictimResult v = c.chooseVictim(a, KernelId{0});
    c.install(set, v.way, a, KernelId{0}, false);
    v = c.chooseVictim(b, KernelId{0});
    c.install(set, v.way, b, KernelId{0}, false);

    // Touch a so b is LRU.
    c.touch(set, c.probe(a));
    v = c.chooseVictim(d, KernelId{0});
    ASSERT_TRUE(v.ok);
    EXPECT_EQ(v.way, c.probe(b));
}

TEST(CacheArray, ReservedLinesAreNotVictims)
{
    CacheArray c(64, 2);
    const int set = 3;
    const LineAddr a = sameSetLine(64, set, 0);
    const LineAddr b = sameSetLine(64, set, 1);
    const LineAddr d = sameSetLine(64, set, 2);

    VictimResult v = c.chooseVictim(a, KernelId{0});
    c.reserve(set, v.way, a, KernelId{0});
    v = c.chooseVictim(b, KernelId{0});
    c.reserve(set, v.way, b, KernelId{0});

    // Both ways reserved: reservation failure.
    v = c.chooseVictim(d, KernelId{0});
    EXPECT_FALSE(v.ok);

    // Fill one; it becomes evictable again.
    c.fill(set, c.probe(a));
    v = c.chooseVictim(d, KernelId{0});
    ASSERT_TRUE(v.ok);
    EXPECT_EQ(v.way, c.probe(a));
}

TEST(CacheArray, FillMakesLineValid)
{
    CacheArray c(64, 4);
    const LineAddr line{42};
    VictimResult v = c.chooseVictim(line, KernelId{1});
    c.reserve(c.setIndex(line), v.way, line, KernelId{1});
    EXPECT_FALSE(c.line(c.setIndex(line), v.way).valid);
    c.fill(c.setIndex(line), v.way);
    const CacheLine &l = c.line(c.setIndex(line), v.way);
    EXPECT_TRUE(l.valid);
    EXPECT_FALSE(l.reserved);
    EXPECT_EQ(l.owner, KernelId{1});
}

TEST(CacheArray, DirtyEvictionReported)
{
    CacheArray c(64, 1);
    const int set = 9;
    const LineAddr a = sameSetLine(64, set, 0);
    const LineAddr b = sameSetLine(64, set, 1);
    VictimResult v = c.chooseVictim(a, KernelId{0});
    c.install(set, v.way, a, KernelId{0}, /*dirty=*/true);
    v = c.chooseVictim(b, KernelId{0});
    ASSERT_TRUE(v.ok);
    EXPECT_TRUE(v.evicted_dirty);
    EXPECT_EQ(v.evicted_line, a);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray c(64, 2);
    const LineAddr line{55};
    VictimResult v = c.chooseVictim(line, KernelId{0});
    c.install(c.setIndex(line), v.way, line, KernelId{0}, false);
    c.invalidate(c.setIndex(line), c.probe(line));
    EXPECT_EQ(c.probe(line), -1);
}

TEST(CacheArray, WayRestrictionsConfineVictims)
{
    CacheArray c(64, 4);
    c.restrictToWays(KernelId{0}, 0, 2); // kernel 0 -> ways [0,2)
    c.restrictToWays(KernelId{1}, 2, 2); // kernel 1 -> ways [2,4)
    const LineAddr line{1234};
    for (int i = 0; i < 10; ++i) {
        VictimResult v = c.chooseVictim(line + 64 * i, KernelId{0});
        ASSERT_TRUE(v.ok);
        EXPECT_LT(v.way, 2);
        v = c.chooseVictim(line + 64 * i, KernelId{1});
        ASSERT_TRUE(v.ok);
        EXPECT_GE(v.way, 2);
    }
}

TEST(CacheArray, WayRestrictionDoesNotBlockLookups)
{
    CacheArray c(64, 4);
    c.restrictToWays(KernelId{0}, 0, 2);
    c.restrictToWays(KernelId{1}, 2, 2);
    const LineAddr line{321};
    VictimResult v = c.chooseVictim(line, KernelId{1});
    c.install(c.setIndex(line), v.way, line, KernelId{1}, false);
    // Kernel 0 still *sees* kernel 1's line (UCP partitions
    // allocation, not visibility).
    EXPECT_GE(c.probe(line), 0);
}

TEST(CacheArray, ClearWayRestrictions)
{
    CacheArray c(64, 4);
    c.restrictToWays(KernelId{0}, 0, 1);
    c.clearWayRestrictions();
    bool saw_upper_way = false;
    for (int i = 0; i < 4; ++i) {
        const LineAddr line = sameSetLine(64, /*set=*/7, i);
        VictimResult v = c.chooseVictim(line, KernelId{0});
        ASSERT_TRUE(v.ok);
        c.install(c.setIndex(line), v.way, line, KernelId{0}, false);
        if (v.way > 0)
            saw_upper_way = true;
    }
    EXPECT_TRUE(saw_upper_way);
}

TEST(CacheArray, FullWidthRestrictionMeansUnrestricted)
{
    CacheArray c(64, 4);
    c.restrictToWays(KernelId{0}, 0, 4);
    const LineAddr line{99};
    VictimResult v = c.chooseVictim(line, KernelId{0});
    EXPECT_TRUE(v.ok);
}

TEST(CacheArray, OccupancyPerKernel)
{
    CacheArray c(64, 4);
    for (int i = 0; i < 6; ++i) {
        const LineAddr line{static_cast<std::uint64_t>(i) * 64 + 1};
        const KernelId owner{i % 2};
        VictimResult v = c.chooseVictim(line, owner);
        c.install(c.setIndex(line), v.way, line, owner, false);
    }
    EXPECT_EQ(c.occupancyOf(KernelId{0}), 3);
    EXPECT_EQ(c.occupancyOf(KernelId{1}), 3);
    EXPECT_EQ(c.occupancyOf(KernelId{2}), 0);
}

} // namespace
} // namespace ckesim
