/**
 * @file
 * Unit tests for the set-associative tag array: LRU replacement,
 * allocate-on-miss reservation, way restrictions (UCP) and owner
 * tracking.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace ckesim {
namespace {

/** Lines that all land in the same set of a 64-set array. */
Addr
sameSetLine(int num_sets, int set, int i)
{
    // Scan for the i-th line mapping to `set`.
    int found = 0;
    for (Addr line = 0;; ++line) {
        if (xorSetIndex(line, num_sets) == set) {
            if (found == i)
                return line;
            ++found;
        }
    }
}

TEST(CacheArray, ProbeMissOnEmpty)
{
    CacheArray c(64, 4);
    EXPECT_EQ(c.probe(123), -1);
}

TEST(CacheArray, InstallThenHit)
{
    CacheArray c(64, 4);
    const Addr line = 777;
    VictimResult v = c.chooseVictim(line, 0);
    ASSERT_TRUE(v.ok);
    c.install(c.setIndex(line), v.way, line, 0, false);
    EXPECT_EQ(c.probe(line), v.way);
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray c(64, 2);
    const int set = 5;
    const Addr a = sameSetLine(64, set, 0);
    const Addr b = sameSetLine(64, set, 1);
    const Addr d = sameSetLine(64, set, 2);

    VictimResult v = c.chooseVictim(a, 0);
    c.install(set, v.way, a, 0, false);
    v = c.chooseVictim(b, 0);
    c.install(set, v.way, b, 0, false);

    // Touch a so b is LRU.
    c.touch(set, c.probe(a));
    v = c.chooseVictim(d, 0);
    ASSERT_TRUE(v.ok);
    EXPECT_EQ(v.way, c.probe(b));
}

TEST(CacheArray, ReservedLinesAreNotVictims)
{
    CacheArray c(64, 2);
    const int set = 3;
    const Addr a = sameSetLine(64, set, 0);
    const Addr b = sameSetLine(64, set, 1);
    const Addr d = sameSetLine(64, set, 2);

    VictimResult v = c.chooseVictim(a, 0);
    c.reserve(set, v.way, a, 0);
    v = c.chooseVictim(b, 0);
    c.reserve(set, v.way, b, 0);

    // Both ways reserved: reservation failure.
    v = c.chooseVictim(d, 0);
    EXPECT_FALSE(v.ok);

    // Fill one; it becomes evictable again.
    c.fill(set, c.probe(a));
    v = c.chooseVictim(d, 0);
    ASSERT_TRUE(v.ok);
    EXPECT_EQ(v.way, c.probe(a));
}

TEST(CacheArray, FillMakesLineValid)
{
    CacheArray c(64, 4);
    const Addr line = 42;
    VictimResult v = c.chooseVictim(line, 1);
    c.reserve(c.setIndex(line), v.way, line, 1);
    EXPECT_FALSE(c.line(c.setIndex(line), v.way).valid);
    c.fill(c.setIndex(line), v.way);
    const CacheLine &l = c.line(c.setIndex(line), v.way);
    EXPECT_TRUE(l.valid);
    EXPECT_FALSE(l.reserved);
    EXPECT_EQ(l.owner, 1);
}

TEST(CacheArray, DirtyEvictionReported)
{
    CacheArray c(64, 1);
    const int set = 9;
    const Addr a = sameSetLine(64, set, 0);
    const Addr b = sameSetLine(64, set, 1);
    VictimResult v = c.chooseVictim(a, 0);
    c.install(set, v.way, a, 0, /*dirty=*/true);
    v = c.chooseVictim(b, 0);
    ASSERT_TRUE(v.ok);
    EXPECT_TRUE(v.evicted_dirty);
    EXPECT_EQ(v.evicted_line, a);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray c(64, 2);
    const Addr line = 55;
    VictimResult v = c.chooseVictim(line, 0);
    c.install(c.setIndex(line), v.way, line, 0, false);
    c.invalidate(c.setIndex(line), c.probe(line));
    EXPECT_EQ(c.probe(line), -1);
}

TEST(CacheArray, WayRestrictionsConfineVictims)
{
    CacheArray c(64, 4);
    c.restrictToWays(0, 0, 2); // kernel 0 -> ways [0,2)
    c.restrictToWays(1, 2, 2); // kernel 1 -> ways [2,4)
    const Addr line = 1234;
    for (int i = 0; i < 10; ++i) {
        VictimResult v = c.chooseVictim(line + 64 * i, 0);
        ASSERT_TRUE(v.ok);
        EXPECT_LT(v.way, 2);
        v = c.chooseVictim(line + 64 * i, 1);
        ASSERT_TRUE(v.ok);
        EXPECT_GE(v.way, 2);
    }
}

TEST(CacheArray, WayRestrictionDoesNotBlockLookups)
{
    CacheArray c(64, 4);
    c.restrictToWays(0, 0, 2);
    c.restrictToWays(1, 2, 2);
    const Addr line = 321;
    VictimResult v = c.chooseVictim(line, 1);
    c.install(c.setIndex(line), v.way, line, 1, false);
    // Kernel 0 still *sees* kernel 1's line (UCP partitions
    // allocation, not visibility).
    EXPECT_GE(c.probe(line), 0);
}

TEST(CacheArray, ClearWayRestrictions)
{
    CacheArray c(64, 4);
    c.restrictToWays(0, 0, 1);
    c.clearWayRestrictions();
    bool saw_upper_way = false;
    for (int i = 0; i < 4; ++i) {
        const Addr line = sameSetLine(64, /*set=*/7, i);
        VictimResult v = c.chooseVictim(line, 0);
        ASSERT_TRUE(v.ok);
        c.install(c.setIndex(line), v.way, line, 0, false);
        if (v.way > 0)
            saw_upper_way = true;
    }
    EXPECT_TRUE(saw_upper_way);
}

TEST(CacheArray, FullWidthRestrictionMeansUnrestricted)
{
    CacheArray c(64, 4);
    c.restrictToWays(0, 0, 4);
    const Addr line = 99;
    VictimResult v = c.chooseVictim(line, 0);
    EXPECT_TRUE(v.ok);
}

TEST(CacheArray, OccupancyPerKernel)
{
    CacheArray c(64, 4);
    for (int i = 0; i < 6; ++i) {
        const Addr line = static_cast<Addr>(i) * 64 + 1;
        VictimResult v = c.chooseVictim(line, i % 2);
        c.install(c.setIndex(line), v.way, line, i % 2, false);
    }
    EXPECT_EQ(c.occupancyOf(0), 3);
    EXPECT_EQ(c.occupancyOf(1), 3);
    EXPECT_EQ(c.occupancyOf(2), 0);
}

} // namespace
} // namespace ckesim
