/**
 * @file
 * Compile-time and runtime coverage for the strong ID/unit types in
 * sim/types.hpp: construction, comparison, arithmetic closure,
 * sentinels, hashing, and the line/byte address round-trip invariant.
 *
 * Most of the contract is asserted with static_assert so a regression
 * fails at compile time, before any test runs. The inverse guarantees
 * (cross-type arithmetic and swaps must NOT compile) live in
 * tests/compile_fail/.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "mem/address.hpp"
#include "sim/types.hpp"

namespace ckesim {
namespace {

// ---- zero-overhead: same size/layout as the raw scalar ------------
static_assert(sizeof(KernelId) == sizeof(std::int32_t));
static_assert(sizeof(SmId) == sizeof(std::int32_t));
static_assert(sizeof(WarpSlot) == sizeof(std::int32_t));
static_assert(sizeof(Cycle) == sizeof(std::uint64_t));
static_assert(sizeof(Addr) == sizeof(std::uint64_t));
static_assert(sizeof(LineAddr) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<KernelId>);
static_assert(std::is_trivially_copyable_v<Cycle>);

// ---- snapshot format version pin ----------------------------------
// Any change to what snapshot()/restore() serialize — field added,
// removed, reordered, or re-typed — MUST bump kSnapshotFormatVersion
// (there is no migration; old checkpoints and journals are rejected).
// Bumping it forces this pin to be updated in the same change, making
// the reviewer confront the compatibility break explicitly.
static_assert(kSnapshotFormatVersion == 1,
              "snapshot format changed: update this pin and note the "
              "break in DESIGN.md section 11");

// ---- ids: construction, validity, sentinels -----------------------
static_assert(KernelId{3}.get() == 3);
static_assert(KernelId{3}.idx() == 3u);
static_assert(KernelId{3}.valid());
static_assert(!KernelId{}.valid());
static_assert(KernelId{} == kInvalidKernel);
static_assert(SmId{} == kInvalidSm);
static_assert(WarpSlot{} == kInvalidWarpSlot);
static_assert(kInvalidKernel.get() == -1);
static_assert(kInvalidSm.get() == -1);
static_assert(kInvalidWarpSlot.get() == -1);
// Sentinel round-trip: rebuilding an id from a sentinel's raw value
// reproduces the sentinel (serialization safety).
static_assert(KernelId{kInvalidKernel.get()} == kInvalidKernel);
static_assert(SmId{kInvalidSm.get()} == kInvalidSm);
static_assert(WarpSlot{kInvalidWarpSlot.get()} == kInvalidWarpSlot);

// ---- ids: ordering and iteration ----------------------------------
static_assert(KernelId{0} < KernelId{1});
static_assert(KernelId{2} != KernelId{3});
static_assert(KernelId{2}.next() == KernelId{3});
static_assert(kInvalidKernel.next() == KernelId{0});

// ---- units: construction and default ------------------------------
static_assert(Cycle{}.get() == 0);
static_assert(Cycle{7}.get() == 7);
static_assert(Cycle::max() == kNeverCycle);
static_assert(kNeverCycle > Cycle{1u << 30});

// ---- units: arithmetic closure ------------------------------------
static_assert(Cycle{10} + Cycle{5} == Cycle{15});
static_assert(Cycle{10} - Cycle{4} == Cycle{6});
static_assert(Cycle{10} + 5 == Cycle{15});
static_assert(Cycle{10} - 4 == Cycle{6});
// Ratio and modulus of like quantities are dimensionless raw counts.
static_assert(std::is_same_v<decltype(Cycle{10} / Cycle{3}),
                             Cycle::rep_type>);
static_assert(Cycle{10} / Cycle{3} == 3);
static_assert(Cycle{10} % Cycle{3} == 1);
static_assert(Cycle{10} % 4 == 2);
static_assert(Addr{0x100} + Addr{0x20} == Addr{0x120});
static_assert(LineAddr{8} - LineAddr{3} == LineAddr{5});

// ---- address map: line/byte round-trip invariant ------------------
constexpr int kLineBytes = 128;
// lineByteBase is constexpr-free (inline), so exercise it at runtime;
// the divisibility identity itself is checkable statically.
static_assert((Addr{7 * 128}.get() % kLineBytes) == 0);

TEST(Types, LineAddrAlignmentInvariant)
{
    // For every byte address: lineByteBase(toLineAddr(a)) is the
    // unique line_bytes-aligned address <= a.
    for (std::uint64_t raw : {0ull, 1ull, 127ull, 128ull, 129ull,
                              4095ull, 0xdeadbeefull}) {
        const Addr a{raw};
        const LineAddr line = toLineAddr(a, kLineBytes);
        const Addr base = lineByteBase(line, kLineBytes);
        EXPECT_EQ(base.get() % kLineBytes, 0u);
        EXPECT_LE(base, a);
        EXPECT_LT((a - base).get(),
                  static_cast<std::uint64_t>(kLineBytes));
        EXPECT_EQ(toLineAddr(base, kLineBytes), line);
        EXPECT_EQ(lineBase(a, kLineBytes), base);
    }
}

TEST(Types, AdjacentBytesShareALineAcrossTheBoundary)
{
    EXPECT_EQ(toLineAddr(Addr{127}, kLineBytes), LineAddr{0});
    EXPECT_EQ(toLineAddr(Addr{128}, kLineBytes), LineAddr{1});
    EXPECT_EQ(lineByteBase(LineAddr{1}, kLineBytes), Addr{128});
}

TEST(Types, IdsHashAndWorkAsMapKeys)
{
    std::unordered_map<KernelId, int> per_kernel;
    per_kernel[KernelId{0}] = 10;
    per_kernel[KernelId{1}] = 20;
    per_kernel[kInvalidKernel] = -1;
    EXPECT_EQ(per_kernel.at(KernelId{1}), 20);
    EXPECT_EQ(per_kernel.at(kInvalidKernel), -1);
    EXPECT_EQ(per_kernel.size(), 3u);

    std::unordered_set<LineAddr> lines;
    lines.insert(LineAddr{42});
    lines.insert(LineAddr{42});
    lines.insert(LineAddr{43});
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Types, UnitsIncrementAndAccumulate)
{
    Cycle t{};
    for (int i = 0; i < 5; ++i)
        ++t;
    EXPECT_EQ(t, Cycle{5});
    t += Cycle{10};
    EXPECT_EQ(t, Cycle{15});
    t += 5;
    EXPECT_EQ(t, Cycle{20});

    int iterations = 0;
    for (Cycle c{}; c < Cycle{3}; ++c)
        ++iterations;
    EXPECT_EQ(iterations, 3);
}

TEST(Types, StreamsAsRawValue)
{
    std::ostringstream os;
    os << KernelId{2} << ' ' << Cycle{100} << ' ' << kInvalidSm;
    EXPECT_EQ(os.str(), "2 100 -1");
}

} // namespace
} // namespace ckesim
