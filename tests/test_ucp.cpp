/**
 * @file
 * Unit tests for the UCP baseline: UMON shadow-tag stacks and the
 * lookahead way-partitioning algorithm (Section 3.1).
 */

#include <gtest/gtest.h>

#include "core/ucp.hpp"

namespace ckesim {
namespace {

/** Line in a *sampled* set (sample_shift 2 monitors sets 0,4,8,...). */
LineAddr
sampledLine(int num_sets, int i)
{
    int found = 0;
    for (LineAddr line{};; ++line) {
        if ((xorSetIndex(line, num_sets) & 3) == 0) {
            if (found == i)
                return line;
            ++found;
        }
    }
}

TEST(Umon, MruHitCountsAtPositionZero)
{
    UmonMonitor m(32, 4);
    const LineAddr line = sampledLine(32, 0);
    m.access(line);
    EXPECT_EQ(m.misses(), 1u);
    m.access(line);
    EXPECT_EQ(m.wayHits()[0], 1u);
}

TEST(Umon, StackDepthMatchesRecency)
{
    UmonMonitor m(32, 4);
    // Four distinct lines in the same sampled set, then re-touch the
    // first: it sits at LRU position 3.
    std::vector<LineAddr> lines;
    const int set0 = xorSetIndex(sampledLine(32, 0), 32);
    for (LineAddr l{}; lines.size() < 4; ++l)
        if (xorSetIndex(l, 32) == set0 &&
            (xorSetIndex(l, 32) & 3) == 0)
            lines.push_back(l);
    for (LineAddr l : lines)
        m.access(l);
    m.access(lines[0]);
    EXPECT_EQ(m.wayHits()[3], 1u);
}

TEST(Umon, UnsampledSetsIgnored)
{
    UmonMonitor m(32, 4);
    // A line in set 1 (not a multiple of 4) is ignored.
    for (LineAddr l{}; l < LineAddr{10000}; ++l) {
        if (xorSetIndex(l, 32) == 1) {
            m.access(l);
            m.access(l);
            break;
        }
    }
    EXPECT_EQ(m.misses(), 0u);
    EXPECT_EQ(m.utilityAt(4), 0u);
}

TEST(Umon, UtilityIsCumulativeAndMonotone)
{
    UmonMonitor m(32, 4);
    const LineAddr a = sampledLine(32, 0);
    m.access(a);
    for (int i = 0; i < 5; ++i)
        m.access(a);
    EXPECT_EQ(m.utilityAt(1), 5u);
    EXPECT_GE(m.utilityAt(2), m.utilityAt(1));
    EXPECT_EQ(m.utilityAt(4), m.utilityAt(2));
}

TEST(Umon, AgeHalvesCounters)
{
    UmonMonitor m(32, 4);
    const LineAddr a = sampledLine(32, 0);
    m.access(a);
    for (int i = 0; i < 8; ++i)
        m.access(a);
    m.age();
    EXPECT_EQ(m.wayHits()[0], 4u);
}

TEST(UcpLookahead, EveryKernelGetsAtLeastOneWay)
{
    UmonMonitor a(32, 6), b(32, 6);
    // Kernel a has all the utility.
    const LineAddr line = sampledLine(32, 0);
    a.access(line);
    for (int i = 0; i < 50; ++i)
        a.access(line);
    const std::vector<int> alloc =
        ucpLookaheadPartition({&a, &b}, 6);
    EXPECT_EQ(alloc[0] + alloc[1], 6);
    EXPECT_GE(alloc[1], 1);
    EXPECT_GT(alloc[0], alloc[1]);
}

TEST(UcpLookahead, SymmetricUtilitySplitsEvenly)
{
    UmonMonitor a(32, 6), b(32, 6);
    const std::vector<int> alloc =
        ucpLookaheadPartition({&a, &b}, 6);
    EXPECT_EQ(alloc[0] + alloc[1], 6);
    EXPECT_LE(std::abs(alloc[0] - alloc[1]), 4);
}

TEST(UcpLookahead, FavoursDeepStackKernel)
{
    UmonMonitor deep(32, 6), shallow(32, 6);
    // "deep" cycles 4 lines (needs 4 ways); "shallow" hammers 1.
    std::vector<LineAddr> lines;
    const int set0 = xorSetIndex(sampledLine(32, 0), 32);
    for (LineAddr l{}; lines.size() < 4; ++l)
        if (xorSetIndex(l, 32) == set0 &&
            (xorSetIndex(l, 32) & 3) == 0)
            lines.push_back(l);
    for (int round = 0; round < 20; ++round)
        for (LineAddr l : lines)
            deep.access(l);
    const LineAddr s = sampledLine(32, 1);
    shallow.access(s);
    for (int i = 0; i < 20; ++i)
        shallow.access(s);
    const std::vector<int> alloc =
        ucpLookaheadPartition({&deep, &shallow}, 6);
    EXPECT_GE(alloc[0], 4);
}

TEST(UcpLookahead, ThreeKernels)
{
    UmonMonitor a(32, 6), b(32, 6), c(32, 6);
    const std::vector<int> alloc =
        ucpLookaheadPartition({&a, &b, &c}, 6);
    EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 6);
    for (int w : alloc)
        EXPECT_GE(w, 1);
}

} // namespace
} // namespace ckesim
