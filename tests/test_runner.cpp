/**
 * @file
 * Unit tests for the experiment runner: isolated baselines, scheme
 * construction and concurrent-run metric consistency.
 */

#include <gtest/gtest.h>

#include "metrics/runner.hpp"

namespace ckesim {
namespace {

Runner
makeRunner(Cycle cycles = Cycle{10000})
{
    return Runner(makeSmallConfig(4, 4), cycles);
}

TEST(Runner, IsolatedResultsAreCached)
{
    Runner r = makeRunner();
    const IsolatedResult &a = r.isolated(findProfile("bp"));
    const IsolatedResult &b = r.isolated(findProfile("bp"));
    EXPECT_EQ(&a, &b); // same cache entry
    EXPECT_GT(a.ipc, 0.0);
    EXPECT_DOUBLE_EQ(a.ipc_per_sm, a.ipc / 4);
}

TEST(Runner, TbLimitReducesParallelism)
{
    Runner r = makeRunner();
    const IsolatedResult &full = r.isolated(findProfile("bp"));
    const IsolatedResult &one = r.isolated(findProfile("bp"), 1);
    EXPECT_LT(one.ipc, full.ipc);
    EXPECT_EQ(one.max_tbs, 1);
}

TEST(Runner, ScalabilityCurveCoversAllTbCounts)
{
    Runner r(makeSmallConfig(2, 2), Cycle{5000});
    const ScalabilityCurve c = r.scalability(findProfile("sv"));
    EXPECT_EQ(c.maxTbs(),
              findProfile("sv").maxTbsPerSm(r.config().sm));
    EXPECT_GT(c.at(1), 0.0);
    EXPECT_GT(c.at(4), c.at(1)); // more TBs help at first
}

TEST(Runner, SchemeNames)
{
    EXPECT_EQ(schemeName(NamedScheme::WS), "WS");
    EXPECT_EQ(schemeName(NamedScheme::WS_DMIL), "WS-DMIL");
    EXPECT_EQ(schemeName(NamedScheme::SMK_PW), "SMK-(P+W)");
    EXPECT_EQ(schemeName(NamedScheme::WS_QBMI_DMIL), "WS-QBMI+DMIL");
}

TEST(Runner, SchemeSpecsMatchNames)
{
    Runner r = makeRunner();
    const Workload w = makeWorkload({"bp", "sv"});
    SchemeSpec s = r.scheme(NamedScheme::WS_QBMI, w);
    EXPECT_EQ(s.partition, PartitionScheme::WarpedSlicer);
    EXPECT_EQ(s.bmi, BmiMode::QBMI);
    EXPECT_EQ(s.mil, MilMode::None);

    s = r.scheme(NamedScheme::SMK_P_DMIL, w);
    EXPECT_EQ(s.partition, PartitionScheme::SmkDrf);
    EXPECT_EQ(s.mil, MilMode::Dynamic);
    EXPECT_FALSE(s.smk_warp_quota);

    s = r.scheme(NamedScheme::SMK_PW, w);
    EXPECT_TRUE(s.smk_warp_quota);
    ASSERT_EQ(s.isolated_ipc_per_sm.size(), 2u);
    EXPECT_GT(s.isolated_ipc_per_sm[0], 0.0);

    s = r.scheme(NamedScheme::WS_UCP, w);
    EXPECT_TRUE(s.ucp);
}

TEST(Runner, ConcurrentResultInternallyConsistent)
{
    Runner r = makeRunner();
    const Workload w = makeWorkload({"bp", "sv"});
    const ConcurrentResult res = r.run(w, NamedScheme::WS_DMIL);
    ASSERT_EQ(res.norm_ipc.size(), 2u);
    double sum = 0.0;
    for (double v : res.norm_ipc) {
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(res.weighted_speedup, sum, 1e-12);
    EXPECT_GT(res.antt_value, 0.9);
    EXPECT_GT(res.fairness, 0.0);
    EXPECT_LE(res.fairness, 1.0 + 1e-12);
    EXPECT_EQ(res.workload_name, "bp+sv");
    EXPECT_EQ(res.stats.size(), 2u);
}

TEST(Runner, SpatialBeatsNothingRunning)
{
    Runner r = makeRunner();
    const Workload w = makeWorkload({"bp", "sv"});
    const ConcurrentResult res = r.run(w, NamedScheme::Spatial);
    EXPECT_GT(res.weighted_speedup, 0.3);
    EXPECT_LT(res.weighted_speedup, 2.0 + 1e-12);
}

} // namespace
} // namespace ckesim
