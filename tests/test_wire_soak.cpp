/**
 * @file
 * Randomized FrameParser soak: thousands of seeded trials feed the
 * parser streams that have been bit-flipped, truncated, duplicated
 * and re-chunked at random. The invariants under attack:
 *
 *  - the parser NEVER crashes, hangs or over-reads, whatever the
 *    bytes (every trial finishing is the assertion);
 *  - a clean stream survives any chunking, yielding exactly the
 *    frames sent;
 *  - corruption is sticky: once corrupt(), no frame is ever yielded
 *    again, and the reason is non-empty;
 *  - truncation is benign: a clean prefix parses, the torn tail
 *    yields nothing and is NOT flagged corrupt (more bytes may come);
 *  - every frame the parser does yield from a corrupted stream is
 *    internally consistent (version, magic and payload CRC all
 *    checked), and frames yielded BEFORE the first flipped byte
 *    match the sent prefix exactly.
 *
 * Seeded xorshift RNG: every trial is reproducible from its printed
 * seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "campaign/wire.hpp"
#include "sim/rng.hpp"

namespace ckesim {
namespace {

/** A batch of valid frames with assorted types/payload sizes. */
std::vector<Frame>
makeFrames(Rng &rng, std::size_t count)
{
    static const FrameType kTypes[] = {
        FrameType::Hello,        FrameType::Dispatch,
        FrameType::Result,       FrameType::JobError,
        FrameType::Heartbeat,    FrameType::Shutdown,
        FrameType::SubmitCampaign, FrameType::SubmitAck,
        FrameType::JobResult,    FrameType::JobFailed,
        FrameType::CampaignDone, FrameType::Reject,
        FrameType::Ping,         FrameType::Pong,
    };
    std::vector<Frame> frames;
    for (std::size_t i = 0; i < count; ++i) {
        Frame f;
        f.type = kTypes[rng.nextBelow(
            sizeof kTypes / sizeof kTypes[0])];
        f.job_index = static_cast<std::uint32_t>(rng.next());
        f.aux = static_cast<std::uint32_t>(rng.next());
        f.key = rng.next();
        const std::size_t len = rng.nextBelow(200);
        for (std::size_t b = 0; b < len; ++b)
            f.payload.push_back(
                static_cast<std::uint8_t>(rng.next()));
        frames.push_back(std::move(f));
    }
    return frames;
}

std::vector<std::uint8_t>
serialize(const std::vector<Frame> &frames)
{
    std::vector<std::uint8_t> stream;
    for (const Frame &f : frames) {
        const auto bytes = encodeFrame(f);
        stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    return stream;
}

/** Feed @p stream in random chunks; collect yields. */
std::vector<Frame>
feedChunked(FrameParser &parser, Rng &rng,
            const std::vector<std::uint8_t> &stream)
{
    std::vector<Frame> got;
    std::size_t pos = 0;
    Frame out;
    while (pos < stream.size()) {
        const std::size_t chunk = 1 + static_cast<std::size_t>(
                                          rng.nextBelow(97));
        const std::size_t n =
            std::min(chunk, stream.size() - pos);
        parser.feed(stream.data() + pos, n);
        pos += n;
        while (parser.next(out))
            got.push_back(out);
    }
    return got;
}

bool
framesEqual(const Frame &a, const Frame &b)
{
    return a.type == b.type && a.job_index == b.job_index &&
           a.aux == b.aux && a.key == b.key &&
           a.payload == b.payload;
}

TEST(WireSoak, CleanStreamsSurviveRandomChunking)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        Rng rng(seed);
        const std::vector<Frame> sent =
            makeFrames(rng, 1 + rng.nextBelow(12));
        FrameParser parser;
        const std::vector<Frame> got =
            feedChunked(parser, rng, serialize(sent));
        ASSERT_FALSE(parser.corrupt())
            << "seed " << seed << ": " << parser.corruptReason();
        ASSERT_EQ(got.size(), sent.size()) << "seed " << seed;
        for (std::size_t i = 0; i < sent.size(); ++i)
            EXPECT_TRUE(framesEqual(got[i], sent[i]))
                << "seed " << seed << " frame " << i;
    }
}

TEST(WireSoak, RandomBitFlipsNeverCrashAndCorruptionIsSticky)
{
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        Rng rng(seed);
        const std::vector<Frame> sent =
            makeFrames(rng, 1 + rng.nextBelow(10));
        std::vector<std::uint8_t> stream = serialize(sent);
        const std::size_t flip_at = rng.nextBelow(stream.size());
        const std::uint8_t mask = static_cast<std::uint8_t>(
            1u << rng.nextBelow(8));
        stream[flip_at] ^= mask;

        FrameParser parser;
        const std::vector<Frame> got =
            feedChunked(parser, rng, stream);

        // Frames fully delivered before the flipped byte must come
        // out untouched, in order.
        std::size_t clean_prefix = 0;
        std::size_t offset = 0;
        for (const Frame &f : sent) {
            offset += kFrameHeaderBytes + f.payload.size();
            if (offset <= flip_at)
                ++clean_prefix;
            else
                break;
        }
        ASSERT_GE(got.size(), clean_prefix) << "seed " << seed;
        for (std::size_t i = 0; i < clean_prefix; ++i)
            EXPECT_TRUE(framesEqual(got[i], sent[i]))
                << "seed " << seed << " frame " << i;

        if (parser.corrupt()) {
            EXPECT_FALSE(parser.corruptReason().empty())
                << "seed " << seed;
            // Sticky: more bytes (even a whole valid frame) yield
            // nothing once the stream is declared corrupt.
            const auto more = serialize(makeFrames(rng, 1));
            parser.feed(more.data(), more.size());
            Frame out;
            EXPECT_FALSE(parser.next(out)) << "seed " << seed;
            EXPECT_TRUE(parser.corrupt()) << "seed " << seed;
        }
    }
}

TEST(WireSoak, TruncationIsBenignNotCorrupt)
{
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        Rng rng(seed);
        const std::vector<Frame> sent = makeFrames(rng, 4);
        std::vector<std::uint8_t> stream = serialize(sent);
        // Cut mid-way through the final frame.
        const std::size_t tail =
            kFrameHeaderBytes + sent.back().payload.size();
        const std::size_t cut = stream.size() - 1 -
                                rng.nextBelow(tail - 1);
        stream.resize(cut);

        FrameParser parser;
        const std::vector<Frame> got =
            feedChunked(parser, rng, stream);
        EXPECT_FALSE(parser.corrupt())
            << "seed " << seed
            << ": a torn tail is incomplete, not corrupt";
        EXPECT_EQ(got.size(), sent.size() - 1) << "seed " << seed;
    }
}

TEST(WireSoak, DuplicatedFramesParseAsDuplicates)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        Rng rng(seed);
        std::vector<Frame> sent = makeFrames(rng, 3);
        // Duplicate one frame somewhere in the stream — networks
        // don't do this, but retry bugs do.
        const std::size_t dup = rng.nextBelow(sent.size());
        sent.insert(
            sent.begin() +
                static_cast<std::ptrdiff_t>(
                    rng.nextBelow(sent.size() + 1)),
            sent[dup]);

        FrameParser parser;
        const std::vector<Frame> got =
            feedChunked(parser, rng, serialize(sent));
        ASSERT_FALSE(parser.corrupt())
            << "seed " << seed << ": " << parser.corruptReason();
        ASSERT_EQ(got.size(), sent.size()) << "seed " << seed;
        for (std::size_t i = 0; i < sent.size(); ++i)
            EXPECT_TRUE(framesEqual(got[i], sent[i]))
                << "seed " << seed;
    }
}

TEST(WireSoak, PureGarbageNeverCrashes)
{
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        Rng rng(seed);
        std::vector<std::uint8_t> garbage(
            64 + rng.nextBelow(4096));
        for (std::uint8_t &b : garbage)
            b = static_cast<std::uint8_t>(rng.next());
        FrameParser parser;
        const std::vector<Frame> got =
            feedChunked(parser, rng, garbage);
        // Any frame that does come out of garbage passed magic,
        // version and CRC checks — astronomically unlikely, but if
        // it happens it must at least be well-formed.
        for (const Frame &f : got)
            EXPECT_LE(f.payload.size(), garbage.size());
    }
}

} // namespace
} // namespace ckesim
