/**
 * @file
 * Unit tests for Warped-Slicer: scalability-curve interpolation,
 * sweet-point selection and profiling TB-count spacing.
 */

#include <gtest/gtest.h>

#include "core/warped_slicer.hpp"

namespace ckesim {
namespace {

ScalabilityCurve
linearCurve(int max_tbs, double slope)
{
    ScalabilityCurve c;
    for (int t = 1; t <= max_tbs; ++t)
        c.addPoint(t, slope * t);
    return c;
}

ScalabilityCurve
saturatingCurve(int max_tbs, int knee, double level)
{
    // Rises to `level` at `knee`, flat afterwards (the sv shape).
    ScalabilityCurve c;
    for (int t = 1; t <= max_tbs; ++t)
        c.addPoint(t, level * std::min(t, knee) / knee);
    return c;
}

TEST(ScalabilityCurve, InterpolatesLinearly)
{
    ScalabilityCurve c;
    c.addPoint(2, 2.0);
    c.addPoint(6, 6.0);
    EXPECT_DOUBLE_EQ(c.at(4), 4.0);
    EXPECT_DOUBLE_EQ(c.at(2), 2.0);
    EXPECT_DOUBLE_EQ(c.at(6), 6.0);
}

TEST(ScalabilityCurve, ThroughOriginBelowFirstSample)
{
    ScalabilityCurve c;
    c.addPoint(4, 8.0);
    EXPECT_DOUBLE_EQ(c.at(1), 2.0);
    EXPECT_DOUBLE_EQ(c.at(2), 4.0);
}

TEST(ScalabilityCurve, FlatBeyondLastSample)
{
    ScalabilityCurve c;
    c.addPoint(3, 9.0);
    EXPECT_DOUBLE_EQ(c.at(12), 9.0);
    EXPECT_EQ(c.maxTbs(), 3);
}

TEST(ScalabilityCurve, ReplacesDuplicatePoints)
{
    ScalabilityCurve c;
    c.addPoint(3, 1.0);
    c.addPoint(3, 2.0);
    EXPECT_DOUBLE_EQ(c.at(3), 2.0);
    EXPECT_EQ(c.points().size(), 1u);
}

TEST(ScalabilityCurve, InsertionKeepsSorted)
{
    ScalabilityCurve c;
    c.addPoint(5, 5.0);
    c.addPoint(1, 1.0);
    c.addPoint(3, 3.0);
    EXPECT_DOUBLE_EQ(c.at(2), 2.0);
    EXPECT_DOUBLE_EQ(c.at(4), 4.0);
}

TEST(SweetPoint, LinearVsSaturatingFavoursLinearKernel)
{
    // Kernel 0 scales linearly (bp-like), kernel 1 saturates at 4 TBs
    // (sv-like): the sweet point gives most slots to kernel 0 while
    // kernel 1 keeps ~its knee.
    const auto kernels = std::vector<const KernelProfile *>{
        &findProfile("bp"), &findProfile("sv")};
    const SmConfig sm;
    std::vector<ScalabilityCurve> curves = {
        linearCurve(12, 1.0), saturatingCurve(16, 4, 3.0)};
    const SweetPoint sp = findSweetPoint(curves, kernels, sm);
    ASSERT_EQ(sp.tbs.size(), 2u);
    EXPECT_GE(sp.tbs[0], 8);
    EXPECT_GE(sp.tbs[1], 3);
    EXPECT_TRUE(partitionFits(sp.tbs, kernels, sm));
    EXPECT_GT(sp.theoretical_ws, 1.5);
    EXPECT_LE(sp.theoretical_ws, 2.0 + 1e-9);
}

TEST(SweetPoint, PredictedNormIpcMatchesCurves)
{
    const auto kernels = std::vector<const KernelProfile *>{
        &findProfile("bp"), &findProfile("sv")};
    const SmConfig sm;
    std::vector<ScalabilityCurve> curves = {
        linearCurve(12, 2.0), saturatingCurve(16, 4, 5.0)};
    const SweetPoint sp = findSweetPoint(curves, kernels, sm);
    const double n0 =
        curves[0].at(sp.tbs[0]) / curves[0].at(12);
    EXPECT_NEAR(sp.predicted_norm_ipc[0], n0, 1e-12);
    EXPECT_NEAR(sp.theoretical_ws,
                sp.predicted_norm_ipc[0] + sp.predicted_norm_ipc[1],
                1e-12);
}

TEST(SweetPoint, ThreeKernels)
{
    const auto kernels = std::vector<const KernelProfile *>{
        &findProfile("bp"), &findProfile("sv"), &findProfile("pf")};
    const SmConfig sm;
    std::vector<ScalabilityCurve> curves = {
        linearCurve(12, 1.0), saturatingCurve(16, 4, 2.0),
        linearCurve(12, 1.0)};
    const SweetPoint sp = findSweetPoint(curves, kernels, sm);
    ASSERT_EQ(sp.tbs.size(), 3u);
    EXPECT_TRUE(partitionFits(sp.tbs, kernels, sm));
    for (int t : sp.tbs)
        EXPECT_GE(t, 1);
}

TEST(ProfilingTbCounts, EvenlySpacedIncludingMax)
{
    EXPECT_EQ(profilingTbCounts(12, 4),
              (std::vector<int>{3, 6, 9, 12}));
    EXPECT_EQ(profilingTbCounts(16, 8),
              (std::vector<int>{2, 4, 6, 8, 10, 12, 14, 16}));
}

TEST(ProfilingTbCounts, HandlesSmallMax)
{
    EXPECT_EQ(profilingTbCounts(1, 4), (std::vector<int>{1}));
    EXPECT_EQ(profilingTbCounts(3, 8), (std::vector<int>{1, 2, 3}));
}

TEST(ProfilingTbCounts, SingleSample)
{
    EXPECT_EQ(profilingTbCounts(12, 1), (std::vector<int>{12}));
}

} // namespace
} // namespace ckesim
