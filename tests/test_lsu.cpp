/**
 * @file
 * Unit tests for the in-order LSU: per-cycle request servicing, head
 * blocking on reservation failure and the host-event protocol.
 */

#include <gtest/gtest.h>

#include "sm/lsu.hpp"

namespace ckesim {
namespace {

struct RecordingHost : LsuHost
{
    std::vector<std::pair<WarpSlot, Cycle>> hits;
    std::vector<std::pair<WarpSlot, bool>> drained;
    int serviced = 0;
    int rsfails = 0;
    RsFailReason last_reason = RsFailReason::None;

    void
    lsuHitReturn(WarpSlot warp, KernelId, Cycle ready) override
    {
        hits.push_back({warp, ready});
    }
    void
    lsuEntryDrained(WarpSlot warp, KernelId, bool is_store) override
    {
        drained.push_back({warp, is_store});
    }
    void
    lsuAccessServiced(KernelId, LineAddr, const L1Outcome &) override
    {
        ++serviced;
    }
    void
    lsuReservationFailure(KernelId, RsFailReason r) override
    {
        ++rsfails;
        last_reason = r;
    }
};

L1dConfig
l1cfg(int mshrs = 8, int missq = 8)
{
    L1dConfig cfg;
    cfg.size_bytes = 64 * 4 * 16;
    cfg.line_bytes = 64;
    cfg.assoc = 4;
    cfg.num_mshrs = mshrs;
    cfg.mshr_merge = 4;
    cfg.miss_queue_depth = missq;
    cfg.hit_latency = 28;
    return cfg;
}

TEST(Lsu, QueueDepthEnforced)
{
    Lsu lsu(/*depth=*/2, /*hit_latency=*/28);
    EXPECT_TRUE(lsu.hasRoom());
    lsu.enqueue(WarpSlot{0}, KernelId{0}, false, {LineAddr{1}});
    lsu.enqueue(WarpSlot{1}, KernelId{0}, false, {LineAddr{2}});
    EXPECT_FALSE(lsu.hasRoom());
}

TEST(Lsu, OneRequestPerCycle)
{
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(), SmId{0});
    RecordingHost host;
    lsu.enqueue(WarpSlot{0}, KernelId{0}, false,
                {LineAddr{1}, LineAddr{2}, LineAddr{3}});
    for (Cycle t{}; t < Cycle{3}; ++t)
        EXPECT_FALSE(lsu.tick(t, l1, host));
    EXPECT_EQ(host.serviced, 3);
    ASSERT_EQ(host.drained.size(), 1u);
    EXPECT_EQ(host.drained[0].first, WarpSlot{0});
    EXPECT_TRUE(lsu.empty());
}

TEST(Lsu, HitSchedulesWakeAtHitLatency)
{
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(), SmId{0});
    RecordingHost host;
    // Warm the line.
    lsu.enqueue(WarpSlot{0}, KernelId{0}, false, {LineAddr{5}});
    lsu.tick(Cycle{}, l1, host);
    l1.popMissQueue();
    l1.fill(LineAddr{5});
    // Hit path.
    lsu.enqueue(WarpSlot{1}, KernelId{0}, false, {LineAddr{5}});
    lsu.tick(Cycle{10}, l1, host);
    ASSERT_EQ(host.hits.size(), 1u);
    EXPECT_EQ(host.hits[0].first, WarpSlot{1});
    EXPECT_EQ(host.hits[0].second, Cycle{10 + 28});
}

TEST(Lsu, HeadBlocksOnReservationFailure)
{
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(/*mshrs=*/1), SmId{0});
    RecordingHost host;
    lsu.enqueue(WarpSlot{0}, KernelId{0}, false, {LineAddr{1}});
    lsu.tick(Cycle{}, l1, host); // takes the only MSHR
    lsu.enqueue(WarpSlot{1}, KernelId{0}, false,
                {LineAddr{2}, LineAddr{3}});
    // Head retries; the queue does not advance.
    for (Cycle t{1}; t < Cycle{5}; ++t)
        EXPECT_TRUE(lsu.tick(t, l1, host));
    EXPECT_EQ(host.rsfails, 4);
    EXPECT_EQ(host.last_reason, RsFailReason::Mshr);
    EXPECT_EQ(lsu.size(), 1);
    // Free the MSHR: the head proceeds.
    l1.popMissQueue();
    l1.fill(LineAddr{1});
    EXPECT_FALSE(lsu.tick(Cycle{5}, l1, host));
    EXPECT_EQ(host.serviced, 2);
}

TEST(Lsu, InOrderAcrossKernels)
{
    // A blocked head from kernel 0 delays kernel 1 behind it: the
    // cross-kernel interference of Section 4.5.
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(/*mshrs=*/1), SmId{0});
    RecordingHost host;
    lsu.enqueue(WarpSlot{0}, KernelId{0}, false, {LineAddr{1}});
    lsu.tick(Cycle{}, l1, host);
    lsu.enqueue(WarpSlot{1}, KernelId{0}, false, {LineAddr{2}});
    lsu.enqueue(WarpSlot{2}, KernelId{1}, false, {LineAddr{3}});
    for (Cycle t{1}; t < Cycle{4}; ++t)
        lsu.tick(t, l1, host);
    // Kernel 1's entry has not been serviced.
    EXPECT_EQ(host.serviced, 1);
    EXPECT_EQ(lsu.size(), 2);
}

TEST(Lsu, StoreDrainSignalsStore)
{
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(), SmId{0});
    RecordingHost host;
    lsu.enqueue(WarpSlot{4}, KernelId{0}, /*is_store=*/true,
                {LineAddr{9}});
    lsu.tick(Cycle{}, l1, host);
    ASSERT_EQ(host.drained.size(), 1u);
    EXPECT_TRUE(host.drained[0].second);
    EXPECT_TRUE(host.hits.empty()); // stores never wake warps
}

TEST(Lsu, EmptyTickIsNotAStall)
{
    Lsu lsu(8, 28);
    L1Dcache l1(l1cfg(), SmId{0});
    RecordingHost host;
    EXPECT_FALSE(lsu.tick(Cycle{}, l1, host));
    EXPECT_EQ(host.rsfails, 0);
}

} // namespace
} // namespace ckesim
