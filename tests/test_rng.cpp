/**
 * @file
 * Unit tests for the deterministic PRNGs.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"

namespace ckesim {
namespace {

TEST(SplitMix64, AdvancesStateAndVaries)
{
    std::uint64_t s = 42;
    const std::uint64_t a = splitMix64(s);
    const std::uint64_t b = splitMix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(s, 42u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    // Must not get stuck at zero.
    std::uint64_t acc = 0;
    for (int i = 0; i < 16; ++i)
        acc |= r.next();
    EXPECT_NE(acc, 0u);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    double mn = 1.0, mx = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        mn = std::min(mn, d);
        mx = std::max(mx, d);
        sum += d;
    }
    EXPECT_LT(mn, 0.01);
    EXPECT_GT(mx, 0.99);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

} // namespace
} // namespace ckesim
