/**
 * @file
 * Write-ahead results journal coverage: SimResult codec round-trips,
 * append/reopen recovery, torn-tail truncation, CRC rejection of
 * corrupted records, format-version refusal, and the last-writer-wins
 * duplicate-key rule.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/journal.hpp"
#include "sim/check.hpp"

namespace ckesim {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(std::string(::testing::TempDir()) + "ckesim_journal_" +
                tag + ".bin")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

SimResult
makeIsolated(double ipc)
{
    auto iso = std::make_shared<IsolatedResult>();
    iso->ipc = ipc;
    iso->ipc_per_sm = ipc / 4;
    iso->stats.issued_instructions = 12345;
    iso->stats.l1d_misses = 67;
    iso->sm_stats.cycles = 9000;
    iso->max_tbs = 6;
    iso->mem.l2_miss_rate = 0.25;
    iso->mem.dram_row_hit_rate = 0.75;
    TimeSeries ts(Cycle{500});
    ts.setBins({1, 2, 3, 4});
    iso->issue_series.push_back(ts);
    SimResult r;
    r.isolated = std::move(iso);
    return r;
}

SimResult
makeConcurrent(const std::string &name)
{
    auto con = std::make_shared<ConcurrentResult>();
    con->workload_name = name;
    con->ipc = {1.5, 0.5};
    con->norm_ipc = {0.9, 0.4};
    con->weighted_speedup = 1.3;
    con->antt_value = 1.9;
    con->fairness = 0.44;
    con->theoretical_ws = 1.35;
    con->stats.resize(2);
    con->stats[0].mem_requests = 42;
    con->sm_stats.lsu_stall_cycles = 777;
    con->partition = {3, 5};
    con->mem.l2_miss_rate = 0.5;
    SimResult r;
    r.concurrent = std::move(con);
    return r;
}

void
expectSameBytes(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(encodeSimResult(a), encodeSimResult(b));
}

// ---- codec -------------------------------------------------------------

TEST(SimResultCodec, IsolatedRoundTripsBitExact)
{
    const SimResult orig = makeIsolated(2.875);
    const SimResult back = decodeSimResult(encodeSimResult(orig));
    ASSERT_NE(back.isolated, nullptr);
    EXPECT_EQ(back.isolated->ipc, 2.875);
    EXPECT_EQ(back.isolated->stats.issued_instructions, 12345u);
    ASSERT_EQ(back.isolated->issue_series.size(), 1u);
    EXPECT_EQ(back.isolated->issue_series[0].bins(),
              (std::vector<std::uint64_t>{1, 2, 3, 4}));
    expectSameBytes(orig, back);
}

TEST(SimResultCodec, ConcurrentRoundTripsBitExact)
{
    const SimResult orig = makeConcurrent("bp+sv");
    const SimResult back = decodeSimResult(encodeSimResult(orig));
    ASSERT_NE(back.concurrent, nullptr);
    EXPECT_EQ(back.concurrent->workload_name, "bp+sv");
    EXPECT_EQ(back.concurrent->partition, (std::vector<int>{3, 5}));
    EXPECT_EQ(back.concurrent->sm_stats.lsu_stall_cycles, 777u);
    expectSameBytes(orig, back);
}

TEST(SimResultCodec, RejectsTruncatedPayload)
{
    std::vector<std::uint8_t> bytes =
        encodeSimResult(makeConcurrent("x+y"));
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(decodeSimResult(bytes), SimError);
}

// ---- journal persistence -----------------------------------------------

TEST(ResultJournal, AppendsAndReloadsAcrossReopen)
{
    TempFile tmp("reload");
    {
        ResultJournal j;
        j.open(tmp.path());
        EXPECT_EQ(j.size(), 0u);
        j.append(1, makeIsolated(1.0));
        j.append(2, makeConcurrent("bp+sv"));
        EXPECT_EQ(j.stats().appended, 2u);
    }
    ResultJournal j;
    j.open(tmp.path());
    EXPECT_EQ(j.size(), 2u);
    EXPECT_EQ(j.stats().loaded, 2u);
    EXPECT_EQ(j.stats().truncated_bytes, 0u);
    SimResult out;
    ASSERT_TRUE(j.find(1, out));
    expectSameBytes(out, makeIsolated(1.0));
    ASSERT_TRUE(j.find(2, out));
    expectSameBytes(out, makeConcurrent("bp+sv"));
    EXPECT_FALSE(j.find(3, out));
}

TEST(ResultJournal, DuplicateKeyLastWriterWins)
{
    TempFile tmp("dup");
    {
        ResultJournal j;
        j.open(tmp.path());
        j.append(7, makeIsolated(1.0));
        j.append(7, makeIsolated(2.0));
    }
    ResultJournal j;
    j.open(tmp.path());
    EXPECT_EQ(j.size(), 1u);
    SimResult out;
    ASSERT_TRUE(j.find(7, out));
    EXPECT_EQ(out.isolated->ipc, 2.0);
}

TEST(ResultJournal, TornTailIsTruncatedAndIntactRecordsSurvive)
{
    TempFile tmp("torn");
    long keep = 0;
    {
        ResultJournal j;
        j.open(tmp.path());
        j.append(1, makeIsolated(1.0));
    }
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        keep = std::ftell(f);
        std::fclose(f);
    }
    {
        ResultJournal j;
        j.open(tmp.path());
        j.append(2, makeConcurrent("bp+sv"));
    }
    // Simulate a kill mid-append: chop the second record in half.
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long full = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(truncate(tmp.path().c_str(),
                           keep + (full - keep) / 2),
                  0);
    }
    ResultJournal j;
    j.open(tmp.path());
    EXPECT_EQ(j.size(), 1u);
    EXPECT_GT(j.stats().truncated_bytes, 0u);
    SimResult out;
    EXPECT_TRUE(j.find(1, out));
    EXPECT_FALSE(j.find(2, out));

    // The truncated journal is append-ready again.
    j.append(2, makeConcurrent("bp+sv"));
    ResultJournal j2;
    j2.open(tmp.path());
    EXPECT_EQ(j2.size(), 2u);
    EXPECT_EQ(j2.stats().truncated_bytes, 0u);
}

TEST(ResultJournal, CorruptedRecordIsDroppedByCrc)
{
    TempFile tmp("crc");
    {
        ResultJournal j;
        j.open(tmp.path());
        j.append(1, makeIsolated(1.0));
        j.append(2, makeIsolated(2.0));
    }
    // Flip one payload byte of the LAST record: its CRC fails, the
    // record (and everything after it) is discarded, record 1 stays.
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, -1, SEEK_END);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_END);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    ResultJournal j;
    j.open(tmp.path());
    EXPECT_EQ(j.size(), 1u);
    EXPECT_GT(j.stats().truncated_bytes, 0u);
    SimResult out;
    EXPECT_TRUE(j.find(1, out));
    EXPECT_FALSE(j.find(2, out));
}

TEST(ResultJournal, ForeignFormatVersionIsRefused)
{
    TempFile tmp("version");
    {
        ResultJournal j;
        j.open(tmp.path());
        j.append(1, makeIsolated(1.0));
    }
    // Corrupt the version byte of the first record (offset 4, after
    // the magic): the whole file belongs to another format — refuse
    // loudly rather than silently discarding everything.
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 4, SEEK_SET);
        std::fputc(kSnapshotFormatVersion + 1, f);
        std::fclose(f);
    }
    ResultJournal j;
    try {
        j.open(tmp.path());
        FAIL() << "open accepted a foreign format version";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Journal") << e.what();
    }
}

TEST(ResultJournal, OpenFailsOnUnwritablePath)
{
    ResultJournal j;
    EXPECT_THROW(j.open("/nonexistent-dir/journal.bin"), SimError);
    EXPECT_FALSE(j.isOpen());
}

} // namespace
} // namespace ckesim
