/**
 * @file
 * Unit tests for procedural address generation: determinism, target
 * coalescing degree, footprint confinement and reuse behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "kernels/addrgen.hpp"
#include "mem/address.hpp"
#include "mem/coalescer.hpp"

namespace ckesim {
namespace {

constexpr int kLine = 64;
constexpr int kSimd = 32;

AddrGenState
makeState(const KernelProfile &p, int warp = 0, std::uint64_t tb = 0)
{
    AddrGenState st;
    initAddrGen(st, p, KernelId{0}, tb, warp,
                p.warpsPerTb(kSimd), /*seed=*/42, kLine);
    return st;
}

TEST(AddrGen, DeterministicAcrossRuns)
{
    const KernelProfile &p = findProfile("sv");
    AddrGenState a = makeState(p);
    AddrGenState b = makeState(p);
    std::vector<Addr> va, vb;
    for (int i = 0; i < 100; ++i) {
        generateAccess(a, p, kLine, kSimd, va);
        generateAccess(b, p, kLine, kSimd, vb);
        ASSERT_EQ(va, vb);
    }
}

TEST(AddrGen, CoalescesToReqPerMinst)
{
    for (const char *name : {"bp", "sv", "ks", "ax", "bs"}) {
        const KernelProfile &p = findProfile(name);
        AddrGenState st = makeState(p);
        std::vector<Addr> addrs;
        std::vector<LineAddr> lines;
        std::uint64_t total = 0;
        const int n = 300;
        for (int i = 0; i < n; ++i) {
            generateAccess(st, p, kLine, kSimd, addrs);
            ASSERT_EQ(addrs.size(), static_cast<std::size_t>(kSimd));
            coalesce(addrs, kLine, lines);
            total += lines.size();
            ASSERT_LE(static_cast<int>(lines.size()),
                      p.req_per_minst);
        }
        const double avg = static_cast<double>(total) / n;
        // Reuse collisions can shave a little off the target.
        EXPECT_GT(avg, 0.6 * p.req_per_minst) << name;
        EXPECT_LE(avg, 1.0 * p.req_per_minst) << name;
    }
}

TEST(AddrGen, KernelSlotsAreDisjoint)
{
    const KernelProfile &p = findProfile("bs");
    AddrGenState a, b;
    initAddrGen(a, p, KernelId{0}, 0, 0, 16, 42, kLine);
    initAddrGen(b, p, KernelId{1}, 0, 0, 16, 42, kLine);
    std::set<LineAddr> seen_a;
    std::vector<Addr> addrs;
    for (int i = 0; i < 200; ++i) {
        generateAccess(a, p, kLine, kSimd, addrs);
        for (Addr x : addrs)
            seen_a.insert(toLineAddr(x, kLine));
    }
    for (int i = 0; i < 200; ++i) {
        generateAccess(b, p, kLine, kSimd, addrs);
        for (Addr x : addrs)
            ASSERT_EQ(seen_a.count(toLineAddr(x, kLine)), 0u);
    }
}

TEST(AddrGen, FootprintConfinesRandomPatterns)
{
    const KernelProfile &p = findProfile("ks"); // StridedScatter
    AddrGenState st = makeState(p);
    std::vector<Addr> addrs;
    Addr mn = Addr::max(), mx{};
    for (int i = 0; i < 500; ++i) {
        generateAccess(st, p, kLine, kSimd, addrs);
        for (Addr a : addrs) {
            mn = std::min(mn, a);
            mx = std::max(mx, a);
        }
    }
    EXPECT_LE((mx - mn).get(),
              p.footprint_bytes + static_cast<std::uint64_t>(kLine));
}

TEST(AddrGen, StreamingAdvancesThroughRegion)
{
    const KernelProfile &p = findProfile("bs"); // pure streaming
    AddrGenState st = makeState(p);
    std::vector<Addr> addrs;
    std::set<LineAddr> lines;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        generateAccess(st, p, kLine, kSimd, addrs);
        lines.insert(toLineAddr(addrs[0], kLine));
    }
    // No reuse: every instruction touches a fresh line.
    EXPECT_EQ(lines.size(), static_cast<std::size_t>(n));
}

TEST(AddrGen, TbWarpsInterleaveOneRegion)
{
    // Warps of one TB must jointly cover contiguous lines (the DRAM
    // row locality property).
    const KernelProfile &p = findProfile("bs");
    const int warps = p.warpsPerTb(kSimd);
    std::vector<AddrGenState> sts;
    for (int w = 0; w < warps; ++w)
        sts.push_back(makeState(p, w, /*tb=*/5));
    std::set<LineAddr> lines;
    std::vector<Addr> addrs;
    for (int w = 0; w < warps; ++w) {
        generateAccess(sts[static_cast<std::size_t>(w)], p, kLine,
                       kSimd, addrs);
        lines.insert(toLineAddr(addrs[0], kLine));
    }
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(warps));
    // Contiguous run of `warps` lines.
    EXPECT_EQ(*lines.rbegin() - *lines.begin(),
              LineAddr{warps - 1});
}

TEST(AddrGen, HighReuseRevisitsLines)
{
    const KernelProfile &p = findProfile("dc"); // reuse 0.91
    AddrGenState st = makeState(p);
    std::vector<Addr> addrs;
    std::set<LineAddr> lines;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        generateAccess(st, p, kLine, kSimd, addrs);
        for (Addr a : addrs)
            lines.insert(toLineAddr(a, kLine));
    }
    // Heavy reuse => far fewer distinct lines than instructions.
    EXPECT_LT(lines.size(), static_cast<std::size_t>(n / 2));
}

TEST(AddrGen, DistinctWarpsDistinctStreams)
{
    const KernelProfile &p = findProfile("sv");
    AddrGenState a = makeState(p, 0);
    AddrGenState b = makeState(p, 1);
    std::vector<Addr> va, vb;
    generateAccess(a, p, kLine, kSimd, va);
    generateAccess(b, p, kLine, kSimd, vb);
    EXPECT_NE(va, vb);
}

} // namespace
} // namespace ckesim
