/**
 * @file
 * Configuration defaults must mirror the paper's Table 1.
 */

#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace ckesim {
namespace {

TEST(Config, Table1Defaults)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.num_sms, 16);
    EXPECT_EQ(cfg.sm.simd_width, 32);
    EXPECT_EQ(cfg.sm.num_schedulers, 4);
    EXPECT_EQ(cfg.sm.max_threads, 3072);
    EXPECT_EQ(cfg.sm.max_warps, 96);
    EXPECT_EQ(cfg.sm.max_tbs, 16);
    EXPECT_EQ(cfg.l1d.size_bytes, 24 * 1024);
    EXPECT_EQ(cfg.l1d.assoc, 6);
    EXPECT_EQ(cfg.l1d.num_mshrs, 128);
    EXPECT_EQ(cfg.l2.partition_bytes, 128 * 1024);
    EXPECT_EQ(cfg.l2.assoc, 16);
    EXPECT_EQ(cfg.l2.num_mshrs, 128);
    EXPECT_EQ(cfg.dram.num_channels, 16);
    EXPECT_EQ(cfg.icnt.flit_bytes, 32);
    EXPECT_EQ(cfg.numL2Partitions(), 16);
    // 2048KB unified L2 = 16 x 128KB partitions.
    EXPECT_EQ(cfg.numL2Partitions() * cfg.l2.partition_bytes,
              2048 * 1024);
}

TEST(Config, L1SetCountIsPowerOfTwo)
{
    GpuConfig cfg;
    const int sets = cfg.l1d.numSets();
    EXPECT_GT(sets, 0);
    EXPECT_EQ(sets & (sets - 1), 0);
    EXPECT_EQ(sets * cfg.l1d.assoc * cfg.l1d.line_bytes,
              cfg.l1d.size_bytes);
}

TEST(Config, L2SetCountMatchesGeometry)
{
    GpuConfig cfg;
    const int sets = cfg.l2.numSetsPerPartition();
    EXPECT_EQ(sets * cfg.l2.assoc * cfg.l2.line_bytes,
              cfg.l2.partition_bytes);
    EXPECT_EQ(sets & (sets - 1), 0);
}

TEST(Config, SmallConfigShrinksOnlyScale)
{
    GpuConfig cfg = makeSmallConfig(4, 4);
    EXPECT_EQ(cfg.num_sms, 4);
    EXPECT_EQ(cfg.numL2Partitions(), 4);
    // Per-SM microarchitecture unchanged.
    GpuConfig ref;
    EXPECT_EQ(cfg.sm.max_warps, ref.sm.max_warps);
    EXPECT_EQ(cfg.l1d.size_bytes, ref.l1d.size_bytes);
}

TEST(Config, DigestDistinguishesConfigs)
{
    GpuConfig a;
    GpuConfig b;
    b.l1d.size_bytes = 48 * 1024;
    EXPECT_NE(a.digest(), b.digest());
    GpuConfig c;
    c.sm.sched_policy = SchedPolicy::LRR;
    EXPECT_NE(a.digest(), c.digest());
    EXPECT_EQ(a.digest(), GpuConfig{}.digest());
}

} // namespace
} // namespace ckesim
