/**
 * @file
 * Campaign orchestrator suite: the wire protocol survives chunked
 * delivery and flags corruption; fleet faults are deterministic; a
 * campaign at any worker count — including under injected worker
 * SIGKILLs, stalls, dropped results and corrupted frames — produces
 * a result table byte-identical to an in-process SweepEngine run; a
 * poison job is quarantined instead of retried forever; spawn failure
 * degrades to in-process execution; drain is clean; and journal_fsck
 * tells benign torn tails from hard corruption.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "campaign/wire.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"
#include "sim/procfault.hpp"

namespace ckesim {
namespace {

class TempBase
{
  public:
    explicit TempBase(const std::string &tag)
        : base_(std::string(::testing::TempDir()) +
                "ckesim_campaign_" + tag)
    {
        cleanup();
    }
    ~TempBase() { cleanup(); }
    const std::string &base() const { return base_; }

  private:
    void cleanup()
    {
        for (int slot = 0; slot < 16; ++slot)
            std::remove(
                CampaignEngine::shardPath(base_, slot).c_str());
        std::remove(CampaignEngine::mergedPath(base_).c_str());
    }
    std::string base_;
};

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

/** Small, fast job list with a duplicate-key pair on the end. */
std::vector<SimJob>
buildJobs()
{
    const GpuConfig cfg = makeSmallConfig(2, 2);
    const Cycle cycles{2000};
    const Workload mixed = makeWorkload({"bp", "sv"});
    const Workload mem = makeWorkload({"sv", "ks"});

    std::vector<SimJob> jobs;
    jobs.push_back(SimJob::isolated(cfg, cycles, *mixed.kernels[0]));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mixed, NamedScheme::WS));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mem, NamedScheme::SMK_PW));
    jobs.push_back(SimJob::concurrent(cfg, cycles, mixed,
                                      NamedScheme::WS_QBMI_DMIL));
    // Same content as jobs[1]: duplicate keys must resolve together.
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mixed, NamedScheme::WS));
    return jobs;
}

/** The campaign's table, encoded for byte-exact comparison. */
std::vector<std::vector<std::uint8_t>>
encodeOutcome(const CampaignOutcome &outcome)
{
    std::vector<std::vector<std::uint8_t>> table;
    for (const CampaignJobOutcome &job : outcome.jobs)
        table.push_back(encodeSimResult(job.result));
    return table;
}

std::vector<std::vector<std::uint8_t>>
encodeTable(const std::vector<SimResult> &results)
{
    std::vector<std::vector<std::uint8_t>> table;
    for (const SimResult &r : results)
        table.push_back(encodeSimResult(r));
    return table;
}

/** Ground truth: the same jobs through a serial in-process engine. */
const std::vector<std::vector<std::uint8_t>> &
groundTruth()
{
    static const std::vector<std::vector<std::uint8_t>> want = [] {
        SweepEngine engine(1);
        return encodeTable(engine.sweep(buildJobs()));
    }();
    return want;
}

CampaignOptions
fastOptions()
{
    CampaignOptions opts;
    opts.heartbeat_ms = 5;
    opts.liveness_deadline_ms = 2000;
    return opts;
}

// ---- wire protocol -----------------------------------------------------

TEST(CampaignWire, FramesSurviveArbitraryChunking)
{
    std::vector<Frame> sent;
    for (int i = 0; i < 5; ++i) {
        Frame f;
        f.type = i % 2 == 0 ? FrameType::Result
                            : FrameType::Heartbeat;
        f.job_index = static_cast<std::uint32_t>(i);
        f.aux = static_cast<std::uint32_t>(i * 7);
        f.key = 0x1234567890abcdefULL + static_cast<unsigned>(i);
        for (int b = 0; b < i * 13; ++b)
            f.payload.push_back(static_cast<std::uint8_t>(b));
        sent.push_back(f);
    }
    std::vector<std::uint8_t> stream;
    for (const Frame &f : sent) {
        const auto bytes = encodeFrame(f);
        stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    // Deliver one byte at a time: the nastiest chunking there is.
    FrameParser parser;
    std::vector<Frame> got;
    Frame out;
    for (const std::uint8_t byte : stream) {
        parser.feed(&byte, 1);
        while (parser.next(out))
            got.push_back(out);
    }
    ASSERT_FALSE(parser.corrupt()) << parser.corruptReason();
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].job_index, sent[i].job_index);
        EXPECT_EQ(got[i].aux, sent[i].aux);
        EXPECT_EQ(got[i].key, sent[i].key);
        EXPECT_EQ(got[i].payload, sent[i].payload);
    }
}

TEST(CampaignWire, CorruptionIsStickyAndDiagnosed)
{
    Frame f;
    f.type = FrameType::Result;
    f.key = 42;
    f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    auto bytes = encodeFrame(f);
    bytes[kFrameHeaderBytes + 3] ^= 0xffu; // flip a payload byte

    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    EXPECT_TRUE(parser.corrupt());
    EXPECT_FALSE(parser.corruptReason().empty());
    Frame out;
    EXPECT_FALSE(parser.next(out));
    // Further feeds must not resurrect the stream.
    const auto good = encodeFrame(f);
    parser.feed(good.data(), good.size());
    EXPECT_TRUE(parser.corrupt());
    EXPECT_FALSE(parser.next(out));
}

TEST(CampaignWire, BadMagicAndBadVersionAreCorrupt)
{
    Frame f;
    f.type = FrameType::Heartbeat;
    {
        auto bytes = encodeFrame(f);
        bytes[0] ^= 0xffu; // magic
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        EXPECT_TRUE(parser.corrupt());
    }
    {
        auto bytes = encodeFrame(f);
        bytes[4] += 1; // version
        FrameParser parser;
        parser.feed(bytes.data(), bytes.size());
        EXPECT_TRUE(parser.corrupt());
    }
}

TEST(CampaignWire, JobErrorPayloadRoundTrips)
{
    const auto bytes =
        encodeJobError("Watchdog", "SM 3 made no progress");
    std::string kind;
    std::string detail;
    decodeJobError(bytes, kind, detail);
    EXPECT_EQ(kind, "Watchdog");
    EXPECT_EQ(detail, "SM 3 made no progress");
}

// ---- fault plan semantics ----------------------------------------------

TEST(ProcFault, AttemptGateAndFiltersAndBudget)
{
    ProcFaultSpec kill_once;
    kill_once.kind = ProcFaultKind::KillWorkerMidJob;
    kill_once.job_index = 2;
    kill_once.attempts = 1;

    ProcFaultSpec stall_w1;
    stall_w1.kind = ProcFaultKind::StallHeartbeat;
    stall_w1.worker = 1;
    stall_w1.attempts = 100;
    stall_w1.budget = 2;

    ProcFaultPlan plan({kill_once, stall_w1});
    // attempt gate: fires on attempt 0 only.
    EXPECT_TRUE(
        plan.fire(ProcFaultKind::KillWorkerMidJob, 0, 2, 0));
    EXPECT_FALSE(
        plan.fire(ProcFaultKind::KillWorkerMidJob, 0, 2, 1));
    // job filter: other jobs untouched.
    EXPECT_FALSE(
        plan.fire(ProcFaultKind::KillWorkerMidJob, 0, 3, 0));
    // worker filter + budget: two firings for worker 1, then dry.
    EXPECT_FALSE(plan.fire(ProcFaultKind::StallHeartbeat, 0, 5, 0));
    EXPECT_TRUE(plan.fire(ProcFaultKind::StallHeartbeat, 1, 5, 0));
    EXPECT_TRUE(plan.fire(ProcFaultKind::StallHeartbeat, 1, 6, 3));
    EXPECT_FALSE(plan.fire(ProcFaultKind::StallHeartbeat, 1, 7, 0));
    EXPECT_EQ(plan.firedCount(ProcFaultKind::StallHeartbeat), 2u);
    EXPECT_EQ(plan.firedCount(ProcFaultKind::KillWorkerMidJob), 1u);
}

TEST(ProcFault, ValidateRejectsNonsense)
{
    ProcFaultSpec spec;
    spec.kind = ProcFaultKind::None;
    EXPECT_THROW(validateProcFaultSpec(spec), SimError);
    spec.kind = ProcFaultKind::KillWorkerMidJob;
    spec.attempts = 0;
    EXPECT_THROW(validateProcFaultSpec(spec), SimError);
    spec.attempts = 1;
    spec.worker = -2;
    EXPECT_THROW(validateProcFaultSpec(spec), SimError);
}

// ---- healthy campaigns -------------------------------------------------

TEST(Campaign, MatchesInProcessTableAtAnyWorkerCount)
{
    const std::vector<SimJob> jobs = buildJobs();
    for (const int workers : {1, 2, 4}) {
        CampaignOptions opts = fastOptions();
        opts.workers = workers;
        CampaignEngine engine(opts);
        const CampaignOutcome outcome = engine.run(jobs);
        ASSERT_TRUE(outcome.allCompleted())
            << workers << " workers";
        EXPECT_EQ(encodeOutcome(outcome), groundTruth())
            << workers << " workers diverged";
        EXPECT_FALSE(outcome.report.degraded_in_process);
        EXPECT_EQ(outcome.report.completed, jobs.size());
    }
}

TEST(Campaign, DuplicateKeysDispatchOnceAndResolveTogether)
{
    const std::vector<SimJob> jobs = buildJobs();
    CampaignOptions opts = fastOptions();
    // One worker: dispatch is serial, so job 4 (duplicate of job 1)
    // is deterministically resolved before its turn comes.
    opts.workers = 1;
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    // jobs[4] duplicates jobs[1]: at most one dispatch for the pair.
    EXPECT_LT(outcome.report.dispatched, jobs.size());
    EXPECT_EQ(encodeOutcome(outcome).at(4),
              encodeOutcome(outcome).at(1));
}

// ---- kill / recover ----------------------------------------------------

TEST(Campaign, WorkerSigkillIsRedispatchedByteIdentically)
{
    const std::vector<SimJob> jobs = buildJobs();
    // Target job 2: a unique concurrent job, so neither a duplicate
    // key nor a worker's nested-baseline memo can resolve it without
    // an actual re-dispatched simulation.
    ProcFaultSpec kill;
    kill.kind = ProcFaultKind::KillWorkerMidJob;
    kill.job_index = 2;
    kill.attempts = 1; // first dispatch attempt dies, retry runs

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.faults = ProcFaultPlan({kill});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    EXPECT_GE(outcome.report.worker_deaths, 1u);
    EXPECT_GE(outcome.report.redispatched, 1u);
    EXPECT_GE(outcome.report.workers_respawned, 1u);
    EXPECT_GE(outcome.jobs[2].attempts, 2);
}

TEST(Campaign, PoisonJobIsQuarantinedOthersComplete)
{
    const std::vector<SimJob> jobs = buildJobs();
    ProcFaultSpec poison;
    poison.kind = ProcFaultKind::KillWorkerMidJob;
    poison.job_index = 2;
    poison.attempts = 1000; // kills every worker that touches it

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.poison_worker_deaths = 2;
    opts.faults = ProcFaultPlan({poison});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);

    EXPECT_EQ(outcome.jobs[2].state, CampaignJobState::Poisoned);
    EXPECT_EQ(outcome.jobs[2].error_kind, "Poisoned");
    EXPECT_FALSE(outcome.jobs[2].error_detail.empty());
    EXPECT_EQ(outcome.report.poisoned, 1u);
    // Exactly poison_worker_deaths workers died to it — bounded, not
    // an infinite kill loop.
    EXPECT_EQ(outcome.report.worker_deaths, 2u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i != 2) {
            EXPECT_TRUE(outcome.jobs[i].ok()) << "job " << i;
        }
    }
}

TEST(Campaign, StalledWorkerIsKilledAndJobRecovered)
{
    const std::vector<SimJob> jobs = buildJobs();
    // Job 2 is unique (see WorkerSigkillIsRedispatchedByteIdentically)
    // so the stalled worker cannot be rescued by a duplicate's result:
    // only the liveness deadline can recover the job.
    ProcFaultSpec stall;
    stall.kind = ProcFaultKind::StallHeartbeat;
    stall.job_index = 2;
    stall.attempts = 1;

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.liveness_deadline_ms = 300; // keep the test quick
    opts.faults = ProcFaultPlan({stall});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    EXPECT_GE(outcome.report.hung_workers_killed, 1u);
}

TEST(Campaign, DroppedResultIsRecoveredViaLivenessDeadline)
{
    const std::vector<SimJob> jobs = buildJobs();
    ProcFaultSpec drop;
    drop.kind = ProcFaultKind::DropResult;
    drop.job_index = 2;
    drop.attempts = 1;

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.liveness_deadline_ms = 300;
    opts.faults = ProcFaultPlan({drop});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    EXPECT_GE(outcome.report.hung_workers_killed, 1u);
}

TEST(Campaign, CorruptFrameKillsWorkerAndRedispatches)
{
    const std::vector<SimJob> jobs = buildJobs();
    ProcFaultSpec corrupt;
    corrupt.kind = ProcFaultKind::CorruptFrame;
    corrupt.job_index = 1;
    corrupt.attempts = 1;

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.faults = ProcFaultPlan({corrupt});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    EXPECT_GE(outcome.report.corrupt_frames, 1u);
    EXPECT_GE(outcome.report.redispatched, 1u);
}

TEST(Campaign, ExhaustedJobSurfacesStructuredError)
{
    const std::vector<SimJob> jobs = buildJobs();
    // Job 3 is a unique concurrent job: every dispatch attempt must
    // actually simulate (a respawned worker's memo cache is empty),
    // so the kill fault fires on every attempt and the attempt
    // budget is what ends the job. An isolated job would not work
    // here — a respawned worker can serve it from the nested
    // baseline memo of an earlier concurrent job without ever
    // polling, dodging the fault.
    ProcFaultSpec poison;
    poison.kind = ProcFaultKind::KillWorkerMidJob;
    poison.job_index = 3;
    poison.attempts = 1000;

    CampaignOptions opts = fastOptions();
    opts.workers = 1;
    opts.max_dispatch_attempts = 2;
    opts.poison_worker_deaths = 1000; // poison gate out of the way
    opts.faults = ProcFaultPlan({poison});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    EXPECT_EQ(outcome.jobs[3].state, CampaignJobState::Exhausted);
    EXPECT_EQ(outcome.jobs[3].attempts, 2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i != 3) {
            EXPECT_TRUE(outcome.jobs[i].ok()) << "job " << i;
        }
    }
}

// ---- degradation and drain ---------------------------------------------

TEST(Campaign, SpawnFailureDegradesToInProcess)
{
    const std::vector<SimJob> jobs = buildJobs();
    ProcFaultSpec fail;
    fail.kind = ProcFaultKind::FailSpawn;
    fail.attempts = 1000; // every spawn attempt fails

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.faults = ProcFaultPlan({fail});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_TRUE(outcome.report.degraded_in_process);
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    EXPECT_EQ(outcome.report.dispatched, 0u);
}

TEST(Campaign, ForcedInProcessMatchesFleet)
{
    const std::vector<SimJob> jobs = buildJobs();
    CampaignOptions opts = fastOptions();
    opts.force_in_process = true;
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());
    EXPECT_TRUE(outcome.report.degraded_in_process);
    EXPECT_EQ(encodeOutcome(outcome), groundTruth());
}

TEST(Campaign, PreRequestedDrainMarksEverythingDrained)
{
    const std::vector<SimJob> jobs = buildJobs();
    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    CampaignEngine engine(opts);
    engine.requestDrain();
    const CampaignOutcome outcome = engine.run(jobs);
    EXPECT_FALSE(outcome.allCompleted());
    EXPECT_TRUE(outcome.report.drain_requested);
    for (const CampaignJobOutcome &job : outcome.jobs)
        EXPECT_EQ(job.state, CampaignJobState::Drained);
    EXPECT_EQ(outcome.report.drained, jobs.size());
}

// ---- durability + fsck -------------------------------------------------

TEST(Campaign, ShardsAndMergedJournalPassFsck)
{
    const std::vector<SimJob> jobs = buildJobs();
    TempBase tmp("fsck");
    ProcFaultSpec kill;
    kill.kind = ProcFaultKind::KillWorkerMidJob;
    kill.job_index = 1;
    kill.attempts = 1;

    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.journal_base = tmp.base();
    opts.faults = ProcFaultPlan({kill});
    CampaignEngine engine(opts);
    const CampaignOutcome outcome = engine.run(jobs);
    ASSERT_TRUE(outcome.allCompleted());

    std::uint64_t shard_keys = 0;
    for (int slot = 0; slot < 2; ++slot) {
        const JournalFsckReport report =
            fsckJournal(CampaignEngine::shardPath(tmp.base(), slot));
        EXPECT_TRUE(report.clean()) << report.path;
        EXPECT_EQ(report.torn_bytes, 0u);
        shard_keys += report.distinct_keys;
    }
    const JournalFsckReport merged =
        fsckJournal(CampaignEngine::mergedPath(tmp.base()));
    EXPECT_TRUE(merged.clean());
    // 5 jobs, one duplicate pair -> 4 distinct keys everywhere.
    EXPECT_EQ(merged.distinct_keys, 4u);
    EXPECT_EQ(merged.ok_records, 4u);
    EXPECT_EQ(shard_keys, 4u);
}

TEST(Campaign, ResumeServesFromJournalWithoutDispatch)
{
    const std::vector<SimJob> jobs = buildJobs();
    TempBase tmp("resume");
    CampaignOptions opts = fastOptions();
    opts.workers = 2;
    opts.journal_base = tmp.base();
    std::vector<std::vector<std::uint8_t>> first_merged;
    {
        CampaignEngine engine(opts);
        const CampaignOutcome outcome = engine.run(jobs);
        ASSERT_TRUE(outcome.allCompleted());
    }
    const auto merged_bytes =
        slurp(CampaignEngine::mergedPath(tmp.base()));
    ASSERT_FALSE(merged_bytes.empty());
    {
        // Second run over the same base: everything is a journal
        // hit, nothing is dispatched, and the merged journal is
        // rewritten byte-identically.
        CampaignEngine engine(opts);
        const CampaignOutcome outcome = engine.run(jobs);
        ASSERT_TRUE(outcome.allCompleted());
        EXPECT_EQ(outcome.report.dispatched, 0u);
        EXPECT_EQ(outcome.report.journal_hits, jobs.size());
        EXPECT_EQ(encodeOutcome(outcome), groundTruth());
    }
    EXPECT_EQ(slurp(CampaignEngine::mergedPath(tmp.base())),
              merged_bytes);
}

TEST(Fsck, DetectsTornTailAsBenignAndBitFlipAsHard)
{
    TempBase tmp("fsckbits");
    const std::string path = tmp.base() + ".shard0";
    // Build a two-record journal by hand through ResultJournal.
    SweepEngine engine(1);
    const std::vector<SimJob> jobs = buildJobs();
    const SimResult r0 = engine.run(jobs[0]);
    const SimResult r1 = engine.run(jobs[1]);
    {
        ResultJournal journal;
        journal.open(path);
        journal.append(jobs[0].key(), r0);
        journal.append(jobs[1].key(), r1);
    }
    const std::vector<std::uint8_t> intact = slurp(path);
    ASSERT_GT(intact.size(), 40u);

    // Torn tail: cut the second record short. Benign.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(intact.data()),
                  static_cast<std::streamsize>(intact.size() - 11));
    }
    JournalFsckReport report = fsckJournal(path);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.ok_records, 1u);
    EXPECT_GT(report.torn_bytes, 0u);
    ASSERT_EQ(report.records.size(), 2u);
    EXPECT_EQ(report.records[1].status, JournalRecordStatus::Torn);

    // Bit flip inside the FIRST record's payload: hard corruption.
    {
        std::vector<std::uint8_t> bad = intact;
        bad[30] ^= 0x01u; // inside record 0's payload
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bad.data()),
                  static_cast<std::streamsize>(bad.size()));
    }
    report = fsckJournal(path);
    EXPECT_FALSE(report.clean());
    ASSERT_FALSE(report.records.empty());
    EXPECT_EQ(report.records[0].status, JournalRecordStatus::BadCrc);

    // A file that is not a journal at all: bad magic, hard.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "definitely not a journal, long enough to have a "
               "full header worth of bytes";
    }
    report = fsckJournal(path);
    EXPECT_FALSE(report.clean());
    ASSERT_FALSE(report.records.empty());
    EXPECT_EQ(report.records[0].status,
              JournalRecordStatus::BadMagic);
}

// ---- campaign specs ----------------------------------------------------

TEST(CampaignSpec, NamedCampaignsBuildAndUnknownThrows)
{
    for (const std::string &name : namedCampaigns()) {
        const std::vector<SimJob> jobs =
            buildNamedCampaign(name, Cycle{1000});
        EXPECT_FALSE(jobs.empty()) << name;
        // Fingerprint is stable for a fixed spec.
        EXPECT_EQ(campaignFingerprint(jobs),
                  campaignFingerprint(
                      buildNamedCampaign(name, Cycle{1000})))
            << name;
    }
    EXPECT_THROW((void)buildNamedCampaign("nope", Cycle{1000}),
                 SimError);
}

} // namespace
} // namespace ckesim
