/**
 * @file
 * Unit tests for GTO and LRR warp schedulers.
 */

#include <gtest/gtest.h>

#include "sm/scheduler.hpp"

namespace ckesim {
namespace {

std::vector<Warp>
makeWarps(int n)
{
    std::vector<Warp> warps(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        warps[static_cast<std::size_t>(i)].state = WarpState::Ready;
        warps[static_cast<std::size_t>(i)].age =
            static_cast<std::uint64_t>(i);
    }
    return warps;
}

TEST(Scheduler, SlotsAreStriped)
{
    WarpScheduler s0(0, 4, 16, SchedPolicy::GTO);
    WarpScheduler s1(1, 4, 16, SchedPolicy::GTO);
    EXPECT_EQ(s0.slots(),
              (std::vector<WarpSlot>{WarpSlot{0}, WarpSlot{4},
                                     WarpSlot{8}, WarpSlot{12}}));
    EXPECT_EQ(s1.slots(),
              (std::vector<WarpSlot>{WarpSlot{1}, WarpSlot{5},
                                     WarpSlot{9}, WarpSlot{13}}));
}

TEST(Scheduler, GtoPicksOldestFirst)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::GTO);
    std::vector<Warp> warps = makeWarps(4);
    warps[0].age = 30;
    warps[1].age = 10; // oldest
    warps[2].age = 20;
    warps[3].age = 40;
    const WarpSlot pick =
        sched.pick(warps, [](WarpSlot) { return true; });
    EXPECT_EQ(pick, WarpSlot{1});
}

TEST(Scheduler, GtoIsGreedy)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::GTO);
    std::vector<Warp> warps = makeWarps(4);
    warps[0].age = 10;
    warps[1].age = 20;
    warps[2].age = 5; // oldest
    warps[3].age = 30;
    WarpSlot pick = sched.pick(warps, [](WarpSlot) { return true; });
    EXPECT_EQ(pick, WarpSlot{2});
    sched.onIssue(pick);
    // Stays on warp 2 while it remains issuable.
    pick = sched.pick(warps, [](WarpSlot) { return true; });
    EXPECT_EQ(pick, WarpSlot{2});
    // When 2 blocks, falls back to the next oldest.
    pick = sched.pick(warps,
                      [](WarpSlot s) { return s != WarpSlot{2}; });
    EXPECT_EQ(pick, WarpSlot{0});
}

TEST(Scheduler, GtoReturnsMinusOneWhenNothingIssuable)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::GTO);
    std::vector<Warp> warps = makeWarps(4);
    EXPECT_EQ(sched.pick(warps, [](WarpSlot) { return false; }),
              kInvalidWarpSlot);
}

TEST(Scheduler, LrrRotates)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::LRR);
    std::vector<Warp> warps = makeWarps(4);
    std::vector<int> picks;
    for (int i = 0; i < 8; ++i) {
        const WarpSlot p =
            sched.pick(warps, [](WarpSlot) { return true; });
        picks.push_back(p.get());
        sched.onIssue(p);
    }
    EXPECT_EQ(picks,
              (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Scheduler, LrrSkipsBlockedWarps)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::LRR);
    std::vector<Warp> warps = makeWarps(4);
    auto only_odd = [](WarpSlot s) { return s.get() % 2 == 1; };
    EXPECT_EQ(sched.pick(warps, only_odd), WarpSlot{1});
    EXPECT_EQ(sched.pick(warps, only_odd), WarpSlot{3});
    EXPECT_EQ(sched.pick(warps, only_odd), WarpSlot{1});
}

TEST(Scheduler, ClearGreedy)
{
    WarpScheduler sched(0, 1, 4, SchedPolicy::GTO);
    std::vector<Warp> warps = makeWarps(4);
    warps[3].age = 0;
    sched.onIssue(WarpSlot{3});
    sched.clearGreedyIf(WarpSlot{3});
    // Falls back to oldest issuable rather than stale greedy.
    EXPECT_EQ(sched.pick(warps,
                         [](WarpSlot s) { return s != WarpSlot{3}; }),
              WarpSlot{0});
}

} // namespace
} // namespace ckesim
