/**
 * @file
 * Integration tests for the shared memory subsystem: request routing,
 * round trips, backpressure and quiescence.
 */

#include <gtest/gtest.h>

#include "mem/memsys.hpp"

namespace ckesim {
namespace {

GpuConfig
cfg()
{
    return makeSmallConfig(2, 2);
}

MemRequest
read(LineAddr line, int sm, KernelId k = KernelId{0})
{
    MemRequest r;
    r.line_addr = line;
    r.sm_id = SmId{sm};
    r.kernel = k;
    r.kind = ReqKind::ReadMiss;
    return r;
}

TEST(MemorySystem, ReadRoundTrip)
{
    MemorySystem mem(cfg());
    ASSERT_TRUE(mem.injectFromSm(read(LineAddr{1234}, /*sm=*/1),
                                 Cycle{}));
    std::vector<MemRequest> got;
    for (Cycle t{}; t < Cycle{2000} && got.empty(); ++t) {
        mem.tick(t);
        got = mem.drainRepliesForSm(SmId{1}, t);
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].line_addr, LineAddr{1234});
    EXPECT_EQ(got[0].sm_id, SmId{1});
}

TEST(MemorySystem, ReplyGoesOnlyToRequester)
{
    MemorySystem mem(cfg());
    mem.injectFromSm(read(LineAddr{99}, 0), Cycle{});
    for (Cycle t{}; t < Cycle{2000}; ++t) {
        mem.tick(t);
        ASSERT_TRUE(mem.drainRepliesForSm(SmId{1}, t).empty());
        if (!mem.quiescent() || t < Cycle{10})
            continue;
        break;
    }
}

TEST(MemorySystem, SecondAccessIsL2Hit)
{
    MemorySystem mem(cfg());
    mem.injectFromSm(read(LineAddr{77}, 0), Cycle{});
    Cycle t{};
    Cycle first_latency{};
    for (; t < Cycle{4000}; ++t) {
        mem.tick(t);
        if (!mem.drainRepliesForSm(SmId{0}, t).empty()) {
            first_latency = t;
            break;
        }
    }
    ASSERT_GT(first_latency, Cycle{});

    const Cycle start2 = t + 10;
    mem.injectFromSm(read(LineAddr{77}, 0), start2);
    Cycle second_latency{};
    for (Cycle u = start2; u < start2 + 4000; ++u) {
        mem.tick(u);
        if (!mem.drainRepliesForSm(SmId{0}, u).empty()) {
            second_latency = u - start2;
            break;
        }
    }
    ASSERT_GT(second_latency, Cycle{});
    EXPECT_LT(second_latency, first_latency);
    EXPECT_LT(mem.l2MissRate(), 1.0);
}

TEST(MemorySystem, WritesCompleteSilently)
{
    MemorySystem mem(cfg());
    MemRequest w;
    w.line_addr = LineAddr{50};
    w.sm_id = SmId{0};
    w.kind = ReqKind::WriteThru;
    ASSERT_TRUE(mem.injectFromSm(w, Cycle{}));
    for (Cycle t{}; t < Cycle{4000}; ++t) {
        mem.tick(t);
        ASSERT_TRUE(mem.drainRepliesForSm(SmId{0}, t).empty());
        if (t > Cycle{500} && mem.quiescent())
            break;
    }
    EXPECT_TRUE(mem.quiescent());
}

TEST(MemorySystem, QuiescentLifecycle)
{
    MemorySystem mem(cfg());
    EXPECT_TRUE(mem.quiescent());
    mem.injectFromSm(read(LineAddr{7}, 0), Cycle{});
    EXPECT_FALSE(mem.quiescent());
    for (Cycle t{}; t < Cycle{4000}; ++t) {
        mem.tick(t);
        mem.drainRepliesForSm(SmId{0}, t);
    }
    EXPECT_TRUE(mem.quiescent());
}

TEST(MemorySystem, BackpressureOnFloodedPort)
{
    GpuConfig c = cfg();
    c.icnt.input_queue_depth = 4;
    MemorySystem mem(c);
    // Flood one partition (consecutive chunk-aligned lines that hash
    // to the same partition).
    const int target =
        linePartition(LineAddr{}, c.numL2Partitions());
    int accepted = 0;
    for (LineAddr l{}; l < LineAddr{4096};
         l += kPartitionChunkLines) {
        if (linePartition(l, c.numL2Partitions()) != target)
            continue;
        if (mem.injectFromSm(read(l, 0), Cycle{}))
            ++accepted;
        else
            break;
    }
    // The port must eventually refuse (bounded queue).
    EXPECT_LE(accepted, c.icnt.input_queue_depth);
}

TEST(MemorySystem, ManyRequestsAllReturn)
{
    MemorySystem mem(cfg());
    const int n = 64;
    int sent = 0;
    int received = 0;
    std::uint64_t next = 0;
    for (Cycle t{}; t < Cycle{20000} && received < n; ++t) {
        if (sent < n &&
            mem.injectFromSm(read(LineAddr{next * 16 + 3}, 0), t)) {
            ++sent;
            ++next;
        }
        mem.tick(t);
        received += static_cast<int>(
            mem.drainRepliesForSm(SmId{0}, t).size());
    }
    EXPECT_EQ(received, n);
    EXPECT_TRUE(mem.quiescent());
}

} // namespace
} // namespace ckesim
