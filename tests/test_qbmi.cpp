/**
 * @file
 * Unit tests for QBMI quota computation (Section 3.2):
 * quota_i = LCM(r_0..r_{n-1}) / r_i.
 */

#include <gtest/gtest.h>

#include "core/qbmi.hpp"

namespace ckesim {
namespace {

TEST(Lcm, Basics)
{
    EXPECT_EQ(lcm64(2, 3), 6u);
    EXPECT_EQ(lcm64(4, 6), 12u);
    EXPECT_EQ(lcm64(7, 7), 7u);
    EXPECT_EQ(lcm64(1, 9), 9u);
    EXPECT_EQ(lcm64(0, 5), 0u);
}

TEST(QbmiQuotas, PaperFormula)
{
    // bp (Req/Minst 2) with sv (Req/Minst 3): LCM 6 -> quotas (3, 2)
    // so both kernels issue the same request volume per round.
    EXPECT_EQ(qbmiQuotas({2.0, 3.0}), (std::vector<int>{3, 2}));
    // bp with ks (17): LCM 34 -> (17, 2).
    EXPECT_EQ(qbmiQuotas({2.0, 17.0}), (std::vector<int>{17, 2}));
}

TEST(QbmiQuotas, EqualRatesGetEqualQuotas)
{
    EXPECT_EQ(qbmiQuotas({4.0, 4.0}), (std::vector<int>{1, 1}));
}

TEST(QbmiQuotas, RoundsAndClampsRates)
{
    // 0.4 clamps to 1; 2.6 rounds to 3.
    EXPECT_EQ(qbmiQuotas({0.4, 2.6}), (std::vector<int>{3, 1}));
}

TEST(QbmiQuotas, BalancesRequestVolume)
{
    // quota_i * r_i must be equal across kernels (the LCM).
    const std::vector<double> rates = {2.0, 3.0, 17.0};
    const std::vector<int> q = qbmiQuotas(rates);
    ASSERT_EQ(q.size(), 3u);
    const double v0 = q[0] * rates[0];
    EXPECT_DOUBLE_EQ(q[1] * rates[1], v0);
    EXPECT_DOUBLE_EQ(q[2] * rates[2], v0);
}

TEST(QbmiQuotas, ThreeKernels)
{
    // LCM(1,2,3) = 6 -> (6,3,2).
    EXPECT_EQ(qbmiQuotas({1.0, 2.0, 3.0}),
              (std::vector<int>{6, 3, 2}));
}

TEST(ReqPerMinstEstimator, DefaultsToOne)
{
    ReqPerMinstEstimator e;
    EXPECT_DOUBLE_EQ(e.value(), 1.0);
}

TEST(ReqPerMinstEstimator, SamplesEvery1024Requests)
{
    ReqPerMinstEstimator e;
    // 512 instructions x 2 requests each = 1024 requests.
    for (int i = 0; i < 512; ++i) {
        e.onMemInstr();
        e.onRequest();
        e.onRequest();
    }
    EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(ReqPerMinstEstimator, NoUpdateMidWindow)
{
    ReqPerMinstEstimator e;
    for (int i = 0; i < 100; ++i) {
        e.onMemInstr();
        e.onRequest();
    }
    EXPECT_DOUBLE_EQ(e.value(), 1.0); // window incomplete
}

TEST(ReqPerMinstEstimator, TracksPhaseChanges)
{
    ReqPerMinstEstimator e;
    for (int i = 0; i < 1024; ++i) {
        e.onMemInstr();
        e.onRequest();
    }
    EXPECT_DOUBLE_EQ(e.value(), 1.0);
    // Second phase: 4 requests per instruction.
    for (int i = 0; i < 256; ++i) {
        e.onMemInstr();
        for (int r = 0; r < 4; ++r)
            e.onRequest();
    }
    EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

TEST(ReqPerMinstEstimator, Reset)
{
    ReqPerMinstEstimator e;
    for (int i = 0; i < 1024; ++i) {
        e.onMemInstr();
        e.onRequest();
        e.onRequest();
    }
    e.reset();
    EXPECT_DOUBLE_EQ(e.value(), 1.0);
}

} // namespace
} // namespace ckesim
