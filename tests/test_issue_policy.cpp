/**
 * @file
 * Unit tests for the per-SM issue controller: RBMI/QBMI arbitration,
 * MIL admission, the QBMI+DMIL interaction and SMK warp quotas.
 */

#include <gtest/gtest.h>

#include "core/issue_policy.hpp"
#include "sim/check.hpp"

namespace ckesim {
namespace {

std::array<bool, kMaxKernelsPerSm>
demand(bool k0, bool k1)
{
    std::array<bool, kMaxKernelsPerSm> d{};
    d[0] = k0;
    d[1] = k1;
    return d;
}

TEST(IssueController, UnmanagedAdmitsEveryone)
{
    IssuePolicyConfig cfg;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
    EXPECT_TRUE(c.admitAnyIssue(KernelId{0}));
}

TEST(IssueController, RbmiAlternates)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::RBMI;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
    EXPECT_FALSE(c.admitMemIssue(KernelId{1}));
    c.onMemInstrIssued(KernelId{0}); // pointer moves to kernel 1
    EXPECT_FALSE(c.admitMemIssue(KernelId{0}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
    c.onMemInstrIssued(KernelId{1});
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
}

TEST(IssueController, RbmiSkipsKernelsWithoutDemand)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::RBMI;
    IssueController c(cfg, 2);
    c.beginCycle(demand(false, true));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
}

TEST(IssueController, QbmiPrefersHigherQuota)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    // Initial quotas are equal (both rates default to 1): both admit.
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
    c.onMemInstrIssued(KernelId{0}); // quota0 drops below quota1
    EXPECT_FALSE(c.admitMemIssue(KernelId{0}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
}

TEST(IssueController, QbmiIgnoresKernelsWithoutDemand)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, false));
    c.onMemInstrIssued(KernelId{0});
    c.beginCycle(demand(true, false));
    // Kernel 1 has more quota but no demand: kernel 0 still admitted.
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
}

TEST(IssueController, QbmiReplenishesOnDepletion)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    const int q0 = c.qbmiQuota(KernelId{0});
    // Exhaust kernel 0's quota.
    for (int i = 0; i < q0; ++i)
        c.onMemInstrIssued(KernelId{0});
    EXPECT_LE(c.qbmiQuota(KernelId{0}), 0);
    c.beginCycle(demand(true, true));
    // A fresh set was *added* to current values (paper semantics).
    EXPECT_GT(c.qbmiQuota(KernelId{0}), 0);
    EXPECT_GT(c.qbmiQuota(KernelId{1}), q0);
}

TEST(IssueController, StaticMilCapsInflight)
{
    IssuePolicyConfig cfg;
    cfg.mil = MilMode::Static;
    cfg.static_limits[0] = 2;
    cfg.static_limits[1] = 0; // "Inf"
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    c.onMemInstrIssued(KernelId{0});
    c.onMemInstrIssued(KernelId{0});
    EXPECT_FALSE(c.admitMemIssue(KernelId{0}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{1}));
    c.onMemInstrCompleted(KernelId{0});
    EXPECT_TRUE(c.admitMemIssue(KernelId{0}));
    EXPECT_EQ(c.milLimit(KernelId{1}), 1 << 20);
}

TEST(IssueController, DynamicMilFollowsMilg)
{
    IssuePolicyConfig cfg;
    cfg.mil = MilMode::Dynamic;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    // Drive one congested interval for kernel 0.
    c.onMemInstrIssued(KernelId{0});
    for (int i = 0; i < 40; ++i) {
        c.onMemInstrIssued(KernelId{0});
        c.onMemInstrCompleted(KernelId{0});
    }
    for (int i = 0; i < 3000; ++i)
        c.onRsFail(KernelId{0});
    for (int i = 0; i < 1024; ++i)
        c.onRequestServiced(KernelId{0});
    EXPECT_LT(c.milLimit(KernelId{0}), 42);
    EXPECT_GE(c.milLimit(KernelId{0}), 1);
    // Kernel 1 untouched.
    EXPECT_GE(c.milLimit(KernelId{1}), 1 << 19);
}

TEST(IssueController, InflightTracking)
{
    IssuePolicyConfig cfg;
    IssueController c(cfg, 2);
    c.onMemInstrIssued(KernelId{0});
    c.onMemInstrIssued(KernelId{0});
    c.onMemInstrIssued(KernelId{1});
    EXPECT_EQ(c.inflight(KernelId{0}), 2);
    EXPECT_EQ(c.inflight(KernelId{1}), 1);
    c.onMemInstrCompleted(KernelId{0});
    EXPECT_EQ(c.inflight(KernelId{0}), 1);
}

TEST(IssueController, QbmiIgnoresMilFrozenCompetitors)
{
    // A kernel frozen by its MIL limit must not block the other via
    // quota priority (the QBMI+DMIL combination, Section 3.4).
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    cfg.mil = MilMode::Static;
    cfg.static_limits[1] = 1;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    c.onMemInstrIssued(KernelId{0}); // quota0 now below quota1
    c.onMemInstrIssued(KernelId{1}); // kernel 1 hits its limit
    c.beginCycle(demand(true, true));
    EXPECT_FALSE(c.admitMemIssue(KernelId{1}));
    EXPECT_TRUE(c.admitMemIssue(KernelId{0})); // 1 is frozen: 0 may go
}

TEST(IssueController, QbmiFrozenKernelNeverDeadlocksCoRunner)
{
    // Regression for the QBMI x MIL deadlock class (DESIGN.md's
    // scheme-interaction hazard): kernel 1 sits frozen at a MIL limit
    // of 1 while its quota replenishes every depletion; kernel 0 must
    // stay admitted through hundreds of cycles, and beginCycle's
    // internal deadlock guard must hold throughout.
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    cfg.mil = MilMode::Static;
    cfg.static_limits[1] = 1;
    IssueController c(cfg, 2);
    c.beginCycle(demand(true, true));
    c.onMemInstrIssued(KernelId{1}); // kernel 1 frozen from here on
    for (int cycle = 0; cycle < 500; ++cycle) {
        ASSERT_NO_THROW(c.beginCycle(demand(true, true)));
        ASSERT_FALSE(c.admitMemIssue(KernelId{1}));
        ASSERT_TRUE(c.admitMemIssue(KernelId{0})) << "cycle " << cycle;
        c.onMemInstrIssued(KernelId{0});
        if (cycle % 3 == 0)
            c.onMemInstrCompleted(KernelId{0});
    }
}

TEST(IssueController, CompletionUnderflowIsReported)
{
    IssuePolicyConfig cfg;
    IssueController c(cfg, 2);
    EXPECT_THROW(c.onMemInstrCompleted(KernelId{0}), SimError);
}

TEST(IssueController, SmkWarpQuotaGatesAllIssue)
{
    IssuePolicyConfig cfg;
    cfg.warp_quota_enabled = true;
    cfg.warp_quotas[0] = 2;
    cfg.warp_quotas[1] = 4;
    IssueController c(cfg, 2);
    c.beginCycle(demand(false, false));
    EXPECT_TRUE(c.admitAnyIssue(KernelId{0}));
    c.onInstrIssued(KernelId{0});
    c.onInstrIssued(KernelId{0});
    EXPECT_FALSE(c.admitAnyIssue(KernelId{0})); // quota spent
    EXPECT_TRUE(c.admitAnyIssue(KernelId{1}));
    // Exhaust kernel 1 too: quotas replenish at the cycle boundary.
    for (int i = 0; i < 4; ++i)
        c.onInstrIssued(KernelId{1});
    EXPECT_FALSE(c.admitAnyIssue(KernelId{1}));
    c.beginCycle(demand(false, false));
    EXPECT_TRUE(c.admitAnyIssue(KernelId{0}));
    EXPECT_TRUE(c.admitAnyIssue(KernelId{1}));
}

TEST(IssueController, SmkQuotaStallEscape)
{
    // If the kernel holding remaining quota never issues (e.g. no
    // ready warps), the controller must eventually replenish instead
    // of deadlocking the other kernel.
    IssuePolicyConfig cfg;
    cfg.warp_quota_enabled = true;
    cfg.warp_quotas[0] = 1;
    cfg.warp_quotas[1] = 1000;
    IssueController c(cfg, 2);
    c.beginCycle(demand(false, false));
    c.onInstrIssued(KernelId{0});
    EXPECT_FALSE(c.admitAnyIssue(KernelId{0}));
    for (int i = 0; i < 400; ++i)
        c.beginCycle(demand(false, false));
    EXPECT_TRUE(c.admitAnyIssue(KernelId{0}));
}

} // namespace
} // namespace ckesim
