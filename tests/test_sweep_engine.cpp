/**
 * @file
 * Unit tests for the SimJob/SweepEngine layer: content-hash key
 * stability and sensitivity, memo-cache accounting, deterministic
 * submission-order results, serial-vs-parallel bit-identity via stat
 * fingerprints, scalability-curve equivalence with the Runner facade,
 * and exception propagation out of sweeps.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/runner.hpp"
#include "metrics/sweep_engine.hpp"

namespace ckesim {
namespace {

constexpr Cycle kCycles{8000};

GpuConfig
smallCfg()
{
    return makeSmallConfig(4, 4);
}

TEST(SimJob, KeyIsStableAcrossCopies)
{
    const Workload w = makeWorkload({"bp", "sv"});
    const SimJob a =
        SimJob::concurrent(smallCfg(), kCycles, w, NamedScheme::WS);
    const SimJob b = a;
    EXPECT_EQ(a.key(), b.key());

    const SimJob c =
        SimJob::concurrent(smallCfg(), kCycles, w, NamedScheme::WS);
    EXPECT_EQ(a.key(), c.key());
}

TEST(SimJob, KeyIsSensitiveToEveryInput)
{
    const Workload w = makeWorkload({"bp", "sv"});
    const SimJob base =
        SimJob::concurrent(smallCfg(), kCycles, w, NamedScheme::WS);

    SimJob other = base;
    other.cycles += 1;
    EXPECT_NE(base.key(), other.key());

    other = base;
    other.named = NamedScheme::WS_DMIL;
    EXPECT_NE(base.key(), other.key());

    other = base;
    other.cfg.l1d.size_bytes *= 2;
    EXPECT_NE(base.key(), other.key());

    other = base;
    other.workload = makeWorkload({"bp", "ks"});
    EXPECT_NE(base.key(), other.key());

    other = base;
    other.series.issue = true;
    EXPECT_NE(base.key(), other.key());

    // The display label must NOT affect the key.
    other = base;
    other.label = "pretty name";
    EXPECT_EQ(base.key(), other.key());

    // Isolated jobs: the TB cap is result-affecting.
    const SimJob iso =
        SimJob::isolated(smallCfg(), kCycles, findProfile("bp"));
    SimJob iso2 =
        SimJob::isolated(smallCfg(), kCycles, findProfile("bp"), 2);
    EXPECT_NE(iso.key(), iso2.key());
    EXPECT_NE(iso.key(), base.key());
}

TEST(SimJob, ExplicitSpecAndNamedSchemeHashDifferently)
{
    const Workload w = makeWorkload({"bp", "sv"});
    const SimJob named =
        SimJob::concurrent(smallCfg(), kCycles, w, NamedScheme::WS);
    const SchemeSpec spec = makeScheme(PartitionScheme::WarpedSlicer,
                                       BmiMode::None, MilMode::None);
    const SimJob explicit_spec =
        SimJob::concurrent(smallCfg(), kCycles, w, spec);
    EXPECT_NE(named.key(), explicit_spec.key());
}

TEST(SweepEngine, MemoCacheAccounting)
{
    SweepEngine engine(1);
    const GpuConfig cfg = smallCfg();
    const KernelProfile &bp = findProfile("bp");

    const auto a = engine.isolated(cfg, kCycles, bp);
    SweepStats s = engine.stats();
    EXPECT_EQ(s.sims_executed, 1u);
    EXPECT_EQ(s.memo_hits, 0u);
    EXPECT_EQ(s.isolated_runs, 1u);

    const auto b = engine.isolated(cfg, kCycles, bp);
    s = engine.stats();
    EXPECT_EQ(s.sims_executed, 1u); // no second simulation
    EXPECT_EQ(s.memo_hits, 1u);
    EXPECT_EQ(s.isolated_hits, 1u);
    EXPECT_EQ(a.get(), b.get()); // literally the same result object

    engine.clearCache();
    const auto c = engine.isolated(cfg, kCycles, bp);
    s = engine.stats();
    EXPECT_EQ(s.sims_executed, 2u);
    EXPECT_EQ(fingerprint(a->stats), fingerprint(c->stats));
}

TEST(SweepEngine, ConcurrentRunSharesIsolatedBaselines)
{
    SweepEngine engine(1);
    const GpuConfig cfg = smallCfg();
    const Workload w = makeWorkload({"bp", "sv"});

    // One concurrent job triggers both isolated baselines (for
    // norm_ipc); running the isolated jobs afterwards must be free.
    engine.concurrent(cfg, kCycles, w, NamedScheme::WS);
    const SweepStats before = engine.stats();
    engine.isolated(cfg, kCycles, findProfile("bp"));
    engine.isolated(cfg, kCycles, findProfile("sv"));
    const SweepStats after = engine.stats();
    EXPECT_EQ(before.sims_executed, after.sims_executed);
    EXPECT_EQ(after.memo_hits, before.memo_hits + 2);
    EXPECT_GT(after.hitRate(), 0.0);
}

std::vector<SimJob>
mixedJobs(const GpuConfig &cfg)
{
    std::vector<SimJob> jobs;
    for (const char *name : {"bp", "sv", "ks"})
        jobs.push_back(
            SimJob::isolated(cfg, kCycles, findProfile(name)));
    for (NamedScheme s :
         {NamedScheme::WS, NamedScheme::WS_QBMI, NamedScheme::WS_DMIL,
          NamedScheme::Spatial})
        jobs.push_back(SimJob::concurrent(
            cfg, kCycles, makeWorkload({"bp", "sv"}), s));
    jobs.push_back(SimJob::concurrent(
        cfg, kCycles, makeWorkload({"sv", "ks"}), NamedScheme::WS));
    return jobs;
}

TEST(SweepEngine, SerialAndParallelSweepsAreBitIdentical)
{
    const GpuConfig cfg = smallCfg();
    SweepEngine serial(1);
    SweepEngine parallel(4);

    const std::vector<SimResult> a = serial.sweep(mixedJobs(cfg));
    const std::vector<SimResult> b = parallel.sweep(mixedJobs(cfg));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].isolated) {
            ASSERT_TRUE(b[i].isolated);
            EXPECT_EQ(fingerprint(a[i].isolated->stats),
                      fingerprint(b[i].isolated->stats));
            EXPECT_EQ(fingerprint(a[i].isolated->sm_stats),
                      fingerprint(b[i].isolated->sm_stats));
            EXPECT_DOUBLE_EQ(a[i].isolated->ipc, b[i].isolated->ipc);
        } else {
            ASSERT_TRUE(b[i].concurrent);
            const ConcurrentResult &x = *a[i].concurrent;
            const ConcurrentResult &y = *b[i].concurrent;
            ASSERT_EQ(x.stats.size(), y.stats.size());
            for (std::size_t k = 0; k < x.stats.size(); ++k) {
                EXPECT_EQ(fingerprint(x.stats[k]),
                          fingerprint(y.stats[k]));
                EXPECT_DOUBLE_EQ(x.norm_ipc[k], y.norm_ipc[k]);
            }
            EXPECT_EQ(fingerprint(x.sm_stats),
                      fingerprint(y.sm_stats));
            EXPECT_DOUBLE_EQ(x.weighted_speedup, y.weighted_speedup);
            EXPECT_DOUBLE_EQ(x.antt_value, y.antt_value);
            EXPECT_DOUBLE_EQ(x.fairness, y.fairness);
            EXPECT_EQ(x.partition, y.partition);
        }
    }
}

TEST(SweepEngine, ResultsComeBackInSubmissionOrder)
{
    const GpuConfig cfg = smallCfg();
    SweepEngine engine(4);
    std::vector<SimJob> jobs;
    const std::vector<const char *> names = {"bp", "sv", "ks", "pf",
                                             "hs"};
    for (const char *n : names)
        jobs.push_back(
            SimJob::isolated(cfg, kCycles, findProfile(n)));
    const std::vector<SimResult> results = engine.sweep(jobs);
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        SweepEngine ref(1);
        const auto expect =
            ref.isolated(cfg, kCycles, findProfile(names[i]));
        EXPECT_EQ(fingerprint(results[i].isolated->stats),
                  fingerprint(expect->stats))
            << "slot " << i << " should hold " << names[i];
    }
}

TEST(SweepEngine, ScalabilityMatchesRunnerFacade)
{
    const GpuConfig cfg = smallCfg();
    SweepEngine engine(4);
    Runner runner(cfg, kCycles);
    const KernelProfile &sv = findProfile("sv");

    const ScalabilityCurve a = engine.scalability(cfg, kCycles, sv);
    const ScalabilityCurve b = runner.scalability(sv);
    ASSERT_EQ(a.maxTbs(), b.maxTbs());
    for (int t = 1; t <= a.maxTbs(); ++t)
        EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
}

TEST(SweepEngine, SweepRethrowsFirstErrorInSubmissionOrder)
{
    const GpuConfig cfg = smallCfg();
    GpuConfig bad = cfg;
    bad.num_sms = -3; // rejected by GpuConfig::validate()

    SweepEngine engine(2);
    std::vector<SimJob> jobs;
    jobs.push_back(
        SimJob::isolated(cfg, kCycles, findProfile("bp")));
    jobs.push_back(
        SimJob::isolated(bad, kCycles, findProfile("sv")));
    EXPECT_THROW(engine.sweep(jobs), std::exception);

    // The engine must stay usable after a failed sweep.
    const auto ok = engine.isolated(cfg, kCycles, findProfile("bp"));
    EXPECT_GT(ok->ipc, 0.0);
}

TEST(SweepEngine, SeriesCaptureIsPartOfTheKey)
{
    const GpuConfig cfg = smallCfg();
    SweepEngine engine(1);

    SimJob plain =
        SimJob::isolated(cfg, kCycles, findProfile("bp"));
    SimJob sampled = plain;
    sampled.series.l1d = true;

    const SimResult a = engine.run(plain);
    const SimResult b = engine.run(sampled);
    EXPECT_EQ(engine.stats().sims_executed, 2u); // no false sharing
    EXPECT_TRUE(a.isolated->l1d_series.empty());
    ASSERT_EQ(b.isolated->l1d_series.size(), 1u);
    std::uint64_t sampled_events = 0;
    for (std::uint64_t c : b.isolated->l1d_series[0].bins())
        sampled_events += c;
    EXPECT_GT(sampled_events, 0u);
    // Sampling must not perturb the simulation itself.
    EXPECT_EQ(fingerprint(a.isolated->stats),
              fingerprint(b.isolated->stats));
}

} // namespace
} // namespace ckesim
