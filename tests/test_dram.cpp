/**
 * @file
 * Unit tests for the DRAM channel: queue capacity, row-buffer timing,
 * FR-FCFS reordering and writeback handling.
 */

#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace ckesim {
namespace {

DramConfig
cfg()
{
    DramConfig c;
    c.banks_per_channel = 4;
    c.row_bytes = 512;       // 8 lines of 64B per row
    c.access_latency = 50;
    c.row_hit_service = 2;
    c.row_miss_penalty = 10;
    c.frfcfs_window = 4;
    c.queue_depth = 8;
    return c;
}

MemRequest
read(LineAddr line)
{
    MemRequest r;
    r.line_addr = line;
    r.kind = ReqKind::ReadMiss;
    return r;
}

TEST(DramChannel, QueueCapacity)
{
    DramChannel ch(cfg(), 64);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(ch.tryEnqueue(read(LineAddr{i}), Cycle{}));
    EXPECT_FALSE(ch.tryEnqueue(read(LineAddr{99}), Cycle{}));
    EXPECT_EQ(ch.freeSlots(), 0);
}

TEST(DramChannel, RowMissThenRowHitTiming)
{
    DramChannel ch(cfg(), 64);
    ch.tryEnqueue(read(LineAddr{0}), Cycle{}); // row 0, bank 0: miss
    ch.tryEnqueue(read(LineAddr{1}), Cycle{}); // same row -> hit
    ch.tick(Cycle{}); // starts first: service 2+10, busy until 12
    EXPECT_TRUE(ch.busy(Cycle{5}));
    ch.tick(Cycle{5}); // still busy, no-op
    EXPECT_TRUE(ch.drainFills(Cycle{12 + 50 - 1}).empty());
    EXPECT_EQ(ch.drainFills(Cycle{12 + 50}).size(), 1u);
    ch.tick(Cycle{12}); // second request: row hit, service 2
    EXPECT_EQ(ch.drainFills(Cycle{12 + 2 + 50}).size(), 1u);
    EXPECT_DOUBLE_EQ(ch.rowHitRate(), 0.5);
}

TEST(DramChannel, FrFcfsPrefersOpenRowWithinWindow)
{
    DramChannel ch(cfg(), 64);
    // Warm bank 0 row 0.
    ch.tryEnqueue(read(LineAddr{0}), Cycle{});
    ch.tick(Cycle{});
    const Cycle t1{20};
    // Queue: a row-miss (row 1 of bank 0 = line 32 with 4 banks x 8
    // lines) ahead of a row-hit (line 1, row 0).
    ch.tryEnqueue(read(LineAddr{32}), t1);
    ch.tryEnqueue(read(LineAddr{1}), t1);
    ch.tick(t1);
    // The row hit (line 1) should have been picked first.
    EXPECT_GT(ch.rowHitRate(), 0.4);
    EXPECT_EQ(ch.queueLength(), 1);
}

TEST(DramChannel, FcfsBeyondWindow)
{
    DramConfig c = cfg();
    c.frfcfs_window = 1; // degenerate: plain FCFS
    DramChannel ch(c, 64);
    ch.tryEnqueue(read(LineAddr{0}), Cycle{});
    ch.tick(Cycle{});
    ch.tryEnqueue(read(LineAddr{32}), Cycle{20}); // row miss, at head
    ch.tryEnqueue(read(LineAddr{1}), Cycle{20}); // row hit, behind
    ch.tick(Cycle{20});
    EXPECT_EQ(ch.queueLength(), 1);
    // FCFS picked the head (row miss): hit rate stays 0.
    EXPECT_DOUBLE_EQ(ch.rowHitRate(), 0.0);
}

TEST(DramChannel, WritebacksProduceNoFill)
{
    DramChannel ch(cfg(), 64);
    MemRequest wb;
    wb.line_addr = LineAddr{5};
    wb.kind = ReqKind::Writeback;
    ch.tryEnqueue(wb, Cycle{});
    ch.tick(Cycle{});
    EXPECT_TRUE(ch.drainFills(Cycle{1000}).empty());
    EXPECT_TRUE(ch.idle());
}

TEST(DramChannel, BanksTrackRowsIndependently)
{
    DramChannel ch(cfg(), 64);
    // Bank 0 row 0 (line 0) and bank 1 row 0 (line 8).
    ch.tryEnqueue(read(LineAddr{0}), Cycle{});
    ch.tick(Cycle{});
    Cycle t{100};
    ch.tryEnqueue(read(LineAddr{8}), t); // bank 1 cold -> miss
    ch.tick(t);
    t = Cycle{200};
    ch.tryEnqueue(read(LineAddr{1}), t); // bank 0 row 0 open -> hit
    ch.tryEnqueue(read(LineAddr{9}), t); // bank 1 row 0 open -> hit
    ch.tick(t);
    ch.tick(t + 2);
    EXPECT_DOUBLE_EQ(ch.rowHitRate(), 0.5);
}

TEST(DramChannel, IdleReflectsOutstandingWork)
{
    DramChannel ch(cfg(), 64);
    EXPECT_TRUE(ch.idle());
    ch.tryEnqueue(read(LineAddr{0}), Cycle{});
    EXPECT_FALSE(ch.idle());
    ch.tick(Cycle{});
    EXPECT_FALSE(ch.idle()); // fill not yet drained
    ch.drainFills(Cycle{10000});
    EXPECT_TRUE(ch.idle());
}

} // namespace
} // namespace ckesim
