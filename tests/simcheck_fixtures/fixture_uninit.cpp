// simcheck golden fixture: uninit-member.
// A snapshot-bearing class with one scalar field that neither has an
// in-class initializer nor is covered by every constructor's init
// list. Restoring a snapshot into a freshly constructed object would
// leave that field holding garbage that the restore may never
// overwrite.
class SnapshotWriter;
class SnapshotReader;

class Counter
{
  public:
    Counter() : ticks_(0) {}
    explicit Counter(int start) : ticks_(start) {}

    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    unsigned long long ticks_; // covered by both ctor init lists
    int stall_count_; // EXPECT[uninit-member]
    double util_ = 0.0; // in-class initializer
};
