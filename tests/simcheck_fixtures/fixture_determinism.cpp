// simcheck golden fixture: determinism-hazard.
// Never compiled — parsed by tools/simcheck only. Each EXPECT[...]
// comment marks a line where exactly one finding must anchor; the
// runner (run_fixture_tests.py) fails on any extra or missing
// finding.
#include <map>
#include <unordered_map>
#include <vector>

class Journal
{
  public:
    void u64(unsigned long long v);
};

struct Widget
{
    int id = 0;
};

class Tracker
{
  public:
    void dump(Journal &j) const
    {
        for (const auto &kv : stats_) // EXPECT[determinism-hazard]
            j.u64(kv.second);
    }

    // Key-sorted walk of an ordered, value-keyed container: fine.
    void dumpSorted(Journal &j) const
    {
        for (const auto &kv : sorted_)
            j.u64(kv.second);
    }

  private:
    std::unordered_map<int, unsigned long long> stats_;
    std::map<int, unsigned long long> sorted_;
    std::map<Widget *, int> owners_; // EXPECT[determinism-hazard]
};

inline unsigned long long hashWidget(Widget *p)
{
    return std::hash<Widget *>{}(p); // EXPECT[determinism-hazard]
}

inline bool older(Widget *a, Widget *b)
{
    return a < b; // EXPECT[determinism-hazard]
}
