// simcheck golden fixture: clean control.
// Exercises every construct the five rules look at, written the way
// the contracts demand — a full-rule simcheck run over this file
// must report zero findings (including zero unused-waiver findings:
// the one SIMCHECK-ALLOW below genuinely suppresses a hit).
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using Cycle = unsigned long long;

class SnapshotWriter
{
  public:
    void u64(unsigned long long v);
};

class SnapshotReader
{
  public:
    unsigned long long u64();
};

class Pipeline
{
  public:
    void tick(Cycle now);
    Cycle nextEventCycle(Cycle now) const;

    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    unsigned long long population() const
    {
        unsigned long long n = 0;
        // Pure commutative reduction over an unordered container —
        // order-independent by construction.
        // SIMCHECK-ALLOW(determinism-hazard): counting members is commutative; no ordered effect escapes the loop
        for (const int id : members_)
            n += static_cast<unsigned long long>(id) * 0 + 1;
        return n;
    }

  private:
    void snapshotLanes(SnapshotWriter &w) const;
    void restoreLanes(SnapshotReader &r);

    unsigned long long head_ = 0;
    unsigned long long lanes_ = 0;
    int capacity_ = 0; // SNAPSHOT-SKIP(fixed at construction)
    std::unordered_set<int> members_; // SNAPSHOT-SKIP(membership cache, rebuilt on restore)
    std::map<int, unsigned long long> by_id_;
};

void
Pipeline::snapshot(SnapshotWriter &w) const
{
    w.u64(head_);
    snapshotLanes(w);
    w.u64(by_id_.size());
    for (const auto &kv : by_id_)
        w.u64(kv.second);
}

void
Pipeline::restore(SnapshotReader &r)
{
    head_ = r.u64();
    restoreLanes(r);
    const unsigned long long n = r.u64();
    for (unsigned long long i = 0; i < n; ++i)
        by_id_[static_cast<int>(i)] = r.u64();
}

// Helper indirection: lanes_ is serialized here, two calls deep from
// the snapshot entry points — coverage must see through it.
void
Pipeline::snapshotLanes(SnapshotWriter &w) const
{
    w.u64(lanes_);
}

void
Pipeline::restoreLanes(SnapshotReader &r)
{
    lanes_ = r.u64();
}
