// simcheck golden fixture: clockable-contract.
// Pump ticks with no horizon at all; Valve has a horizon whose
// signature the detection trait has_next_event_cycle_v would
// silently reject (missing const) — the regex rule in lint_sim.py
// accepts it, the AST rule must not.
using Cycle = unsigned long long;

class Pump
{
  public:
    void tick(Cycle now); // EXPECT[clockable-contract]
};

class Valve
{
  public:
    void tick(Cycle now);
    Cycle nextEventCycle(Cycle now); // EXPECT[clockable-contract]
};

// Correct contract: no finding.
class Turbine
{
  public:
    void tick(Cycle now);
    Cycle nextEventCycle(Cycle now) const;
};
