// simcheck golden fixture: snapshot-coverage-v2.
// One field is serialized on both sides, one only on the restore
// side — the classic asymmetry a textual union of the two bodies
// cannot see.
class SnapshotWriter
{
  public:
    void u64(unsigned long long v);
};

class SnapshotReader
{
  public:
    unsigned long long u64();
};

class Queue
{
  public:
    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    unsigned long long head_ = 0;
    unsigned long long tail_ = 0; // EXPECT[snapshot-coverage-v2]
};

void
Queue::snapshot(SnapshotWriter &w) const
{
    w.u64(head_);
}

void
Queue::restore(SnapshotReader &r)
{
    head_ = r.u64();
    tail_ = r.u64();
}
