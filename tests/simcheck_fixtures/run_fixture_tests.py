#!/usr/bin/env python3
"""Golden tests for tools/simcheck.

For every violation fixture, runs simcheck restricted to the rule
under test and asserts that the set of (file, line, rule) findings
equals the set of `EXPECT[rule]` markers planted in the fixture —
exact: a missed planted violation fails, and so does any extra
finding (over-fire). The clean fixture runs with every rule enabled
and must come back empty.

Two mutation checks then prove the analyzer sees what the regex lint
cannot: deleting one snapshot field write from the clean fixture must
produce a snapshot-coverage-v2 finding, and stripping `const` from
its nextEventCycle must produce a clockable-contract finding.

Exits 77 (ctest SKIP_RETURN_CODE) when no simcheck frontend can run
in this environment.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
EXPECT = re.compile(r"EXPECT\[(?P<rule>[\w-]+)\]")

FIXTURES = [
    ("fixture_determinism.cpp", "determinism-hazard"),
    ("fixture_uninit.cpp", "uninit-member"),
    ("fixture_snapshot.cpp", "snapshot-coverage-v2"),
    ("fixture_clockable.cpp", "clockable-contract"),
    ("fixture_simerror.cpp", "simerror-discipline"),
]

SKIP = 77


def run_simcheck(root, args, frontend):
    out = tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", delete=False)
    out.close()
    cmd = [
        sys.executable, os.path.join(root, "tools", "simcheck"),
        "--root", root, "--frontend", frontend, "--json", out.name,
    ] + args
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode == 2:
        print("SKIP: simcheck cannot run here:", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        os.unlink(out.name)
        sys.exit(SKIP)
    try:
        with open(out.name) as f:
            payload = json.load(f)
    finally:
        os.unlink(out.name)
    return proc, payload


def expected_markers(path, rel):
    found = set()
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            for m in EXPECT.finditer(line):
                found.add((rel, i, m.group("rule")))
    return found


def findings_set(payload):
    return {
        (f["file"], f["line"], f["rule"])
        for f in payload["findings"]
    }


def check(name, got, want):
    missing = want - got
    extra = got - want
    if not missing and not extra:
        print(f"PASS  {name}  ({len(want)} finding(s))")
        return True
    print(f"FAIL  {name}", file=sys.stderr)
    for f in sorted(missing):
        print(f"  missing: {f[0]}:{f[1]} [{f[2]}]", file=sys.stderr)
    for f in sorted(extra):
        print(f"  extra:   {f[0]}:{f[1]} [{f[2]}]", file=sys.stderr)
    return False


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(HERE)))
    ap.add_argument("--frontend",
                    default=os.environ.get(
                        "SIMCHECK_FIXTURE_FRONTEND", "auto"))
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    ok = True
    for fname, rule in FIXTURES:
        rel = os.path.join("tests", "simcheck_fixtures", fname)
        _, payload = run_simcheck(
            root, ["--rule", rule, rel], args.frontend)
        want = expected_markers(os.path.join(root, rel), rel)
        ok &= check(f"{fname} [{rule}]", findings_set(payload), want)

    # Clean control: all rules, zero findings (and the used
    # SIMCHECK-ALLOW in it must not surface as unused-waiver).
    rel = os.path.join("tests", "simcheck_fixtures",
                       "fixture_clean.cpp")
    proc, payload = run_simcheck(root, [rel], args.frontend)
    clean_ok = check("fixture_clean.cpp [all rules]",
                     findings_set(payload), set())
    if clean_ok and proc.returncode != 0:
        print("FAIL  fixture_clean.cpp: exit "
              f"{proc.returncode} despite zero findings",
              file=sys.stderr)
        clean_ok = False
    ok &= clean_ok

    # Mutations of the clean fixture: the AST rules must notice.
    clean_src = open(os.path.join(root, rel), encoding="utf-8").read()
    mutations = [
        ("drop snapshot-side field write", "snapshot-coverage-v2",
         clean_src.replace("    w.u64(head_);\n", "", 1)),
        ("strip const from nextEventCycle", "clockable-contract",
         clean_src.replace("Cycle nextEventCycle(Cycle now) const",
                           "Cycle nextEventCycle(Cycle now)", 1)),
    ]
    with tempfile.TemporaryDirectory() as tmp:
        # simcheck resolves paths under --root; give the tmp root the
        # tool so relative layout matches a real checkout.
        shutil.copytree(os.path.join(root, "tools", "simcheck"),
                        os.path.join(tmp, "tools", "simcheck"))
        for label, rule, text in mutations:
            assert text != clean_src, label
            mut = os.path.join(tmp, "mutant.cpp")
            with open(mut, "w", encoding="utf-8") as f:
                f.write(text)
            _, payload = run_simcheck(
                tmp, ["--rule", rule, "mutant.cpp"], args.frontend)
            got = {f["rule"] for f in payload["findings"]}
            if rule in got:
                print(f"PASS  mutation: {label} -> [{rule}]")
            else:
                print(f"FAIL  mutation: {label} — expected a "
                      f"[{rule}] finding, got {sorted(got)}",
                      file=sys.stderr)
                ok = False

    if not ok:
        print("simcheck fixtures: FAILURES", file=sys.stderr)
        return 1
    print("simcheck fixtures: all green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
