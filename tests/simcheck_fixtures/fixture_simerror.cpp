// simcheck golden fixture: simerror-discipline.
// A raw throw bypasses the SimError context plumbing (cycle, SM,
// module) that makes simulator failures diagnosable; a bare rethrow
// inside a catch block is the one allowed form.
#include <stdexcept>

void
explode(int x)
{
    if (x < 0)
        throw std::runtime_error("negative"); // EXPECT[simerror-discipline]
}

void
forward(int x)
{
    try {
        explode(x);
    } catch (...) {
        throw; // bare rethrow: allowed
    }
}
