/**
 * @file
 * Unit tests for the fixed-interval event sampler.
 */

#include <gtest/gtest.h>

#include "sim/time_series.hpp"

namespace ckesim {
namespace {

TEST(TimeSeries, BinsByInterval)
{
    TimeSeries ts(Cycle{1000});
    ts.record(Cycle{0});
    ts.record(Cycle{999});
    ts.record(Cycle{1000});
    ts.record(Cycle{2500}, 3);
    EXPECT_EQ(ts.binCount(0), 2u);
    EXPECT_EQ(ts.binCount(1), 1u);
    EXPECT_EQ(ts.binCount(2), 3u);
    EXPECT_EQ(ts.binCount(3), 0u);
}

TEST(TimeSeries, SparseRecordingMaterializesGaps)
{
    TimeSeries ts(Cycle{10});
    ts.record(Cycle{95});
    ASSERT_EQ(ts.bins().size(), 10u);
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(ts.binCount(i), 0u);
    EXPECT_EQ(ts.binCount(9), 1u);
}

TEST(TimeSeries, MeanOverRange)
{
    TimeSeries ts(Cycle{100});
    ts.record(Cycle{0}, 10);
    ts.record(Cycle{100}, 20);
    ts.record(Cycle{200}, 30);
    EXPECT_DOUBLE_EQ(ts.meanOver(0, 3), 20.0);
    EXPECT_DOUBLE_EQ(ts.meanOver(1, 3), 25.0);
    EXPECT_DOUBLE_EQ(ts.meanOver(2, 2), 0.0);  // empty range
    EXPECT_DOUBLE_EQ(ts.meanOver(0, 10), 6.0); // zero-padded
}

TEST(TimeSeries, ClearResets)
{
    TimeSeries ts(Cycle{10});
    ts.record(Cycle{5});
    ts.clear();
    EXPECT_TRUE(ts.bins().empty());
    EXPECT_EQ(ts.binCount(0), 0u);
}

TEST(TimeSeries, SharedAcrossProducersAccumulates)
{
    // Multiple SMs record into one GPU-wide series.
    TimeSeries ts(Cycle{100});
    for (int sm = 0; sm < 4; ++sm)
        ts.record(Cycle{50}, 2);
    EXPECT_EQ(ts.binCount(0), 8u);
}

} // namespace
} // namespace ckesim
