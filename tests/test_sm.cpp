/**
 * @file
 * Unit tests for the SM: TB dispatch under static resource limits,
 * per-kernel quotas, warp execution, TB restart semantics and stats.
 */

#include <gtest/gtest.h>

#include "mem/memsys.hpp"
#include "sm/sm.hpp"

namespace ckesim {
namespace {

struct SmFixture
{
    GpuConfig cfg = makeSmallConfig(1, 2);
    MemorySystem mem{cfg};

    std::unique_ptr<Sm>
    makeSm(std::vector<const KernelProfile *> kernels,
           IssuePolicyConfig policy = {})
    {
        return std::make_unique<Sm>(cfg, SmId{0}, mem,
                                    std::move(kernels), policy);
    }

    void
    run(Sm &sm, Cycle cycles, Cycle from = Cycle{})
    {
        for (Cycle t = from; t < from + cycles; ++t) {
            sm.tick(t);
            mem.tick(t);
        }
    }
};

TEST(Sm, DispatchRespectsQuota)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 3);
    f.run(*sm, Cycle{50});
    EXPECT_EQ(sm->residentTbs(KernelId{0}), 3);
}

TEST(Sm, ZeroQuotaMeansIdle)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 0);
    f.run(*sm, Cycle{100});
    EXPECT_EQ(sm->residentTbs(KernelId{0}), 0);
    EXPECT_EQ(sm->kernelStats(KernelId{0}).issued_instructions, 0u);
}

TEST(Sm, DispatchBoundedByStaticResources)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 100); // far beyond feasibility
    f.run(*sm, Cycle{100});
    EXPECT_EQ(sm->residentTbs(KernelId{0}),
              findProfile("bp").maxTbsPerSm(f.cfg.sm));
}

TEST(Sm, TwoKernelsShareTheSm)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp"), &findProfile("sv")});
    sm->setTbQuota(KernelId{0}, 9);
    sm->setTbQuota(KernelId{1}, 4);
    f.run(*sm, Cycle{2000});
    EXPECT_EQ(sm->residentTbs(KernelId{0}), 9);
    EXPECT_EQ(sm->residentTbs(KernelId{1}), 4);
    EXPECT_GT(sm->kernelStats(KernelId{0}).issued_instructions, 0u);
    EXPECT_GT(sm->kernelStats(KernelId{1}).issued_instructions, 0u);
}

TEST(Sm, TbsRestartIndefinitely)
{
    SmFixture f;
    // Small instruction budget so TBs complete quickly.
    KernelProfile p = findProfile("cp");
    p.instrs_per_warp = 64;
    auto sm = f.makeSm({&p});
    sm->setTbQuota(KernelId{0}, 2);
    f.run(*sm, Cycle{20000});
    EXPECT_GE(sm->kernelStats(KernelId{0}).tbs_completed, 4u);
    // Refilled after completion.
    EXPECT_EQ(sm->residentTbs(KernelId{0}), 2);
}

TEST(Sm, StatsMixMatchesProfile)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 4);
    f.run(*sm, Cycle{8000});
    const KernelStats &s = sm->kernelStats(KernelId{0});
    ASSERT_GT(s.mem_instructions, 50u);
    EXPECT_NEAR(s.cinstPerMinst(),
                findProfile("bp").cinst_per_minst, 1.5);
    EXPECT_NEAR(s.reqPerMinst(),
                findProfile("bp").req_per_minst, 0.5);
    // Accesses resolve to hit or miss exactly once.
    EXPECT_EQ(s.l1d_hits + s.l1d_misses, s.l1d_accesses);
    // rsfail reason counters sum to the total.
    EXPECT_EQ(s.l1d_rsfail_line + s.l1d_rsfail_mshr +
                  s.l1d_rsfail_missq,
              s.l1d_rsfails);
}

TEST(Sm, ResetStatsClearsCountersOnly)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 2);
    f.run(*sm, Cycle{1000});
    ASSERT_GT(sm->kernelStats(KernelId{0}).issued_instructions, 0u);
    const int resident = sm->residentTbs(KernelId{0});
    sm->resetStats();
    EXPECT_EQ(sm->kernelStats(KernelId{0}).issued_instructions, 0u);
    EXPECT_EQ(sm->smStats().cycles, 0u);
    // Warps keep running.
    EXPECT_EQ(sm->residentTbs(KernelId{0}), resident);
    f.run(*sm, Cycle{1000}, Cycle{1000});
    EXPECT_GT(sm->kernelStats(KernelId{0}).issued_instructions, 0u);
}

TEST(Sm, IssueSeriesRecordsActivity)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 4);
    TimeSeries issue(Cycle{100}), l1d(Cycle{100});
    sm->setIssueSeries(KernelId{0}, &issue);
    sm->setL1dSeries(KernelId{0}, &l1d);
    f.run(*sm, Cycle{1000});
    std::uint64_t issued = 0;
    for (std::uint64_t b : issue.bins())
        issued += b;
    EXPECT_EQ(issued,
              sm->kernelStats(KernelId{0}).issued_instructions);
    std::uint64_t accesses = 0;
    for (std::uint64_t b : l1d.bins())
        accesses += b;
    EXPECT_EQ(accesses, sm->kernelStats(KernelId{0}).l1d_accesses);
}

TEST(Sm, MilLimitsInflightInstructions)
{
    SmFixture f;
    IssuePolicyConfig policy;
    policy.mil = MilMode::Static;
    policy.static_limits[0] = 2;
    auto sm = f.makeSm({&findProfile("sv")}, policy);
    sm->setTbQuota(KernelId{0}, 8);
    for (Cycle t{}; t < Cycle{3000}; ++t) {
        sm->tick(t);
        f.mem.tick(t);
        ASSERT_LE(sm->controller().inflight(KernelId{0}), 2);
    }
    EXPECT_GT(sm->kernelStats(KernelId{0}).mem_instructions, 0u);
}

TEST(Sm, AccessObserverSeesEveryServicedAccess)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("bp")});
    sm->setTbQuota(KernelId{0}, 2);
    static std::uint64_t observed;
    observed = 0;
    sm->setAccessObserver(
        [](void *, KernelId, LineAddr) { ++observed; }, nullptr);
    f.run(*sm, Cycle{2000});
    EXPECT_EQ(observed, sm->kernelStats(KernelId{0}).l1d_accesses);
}

TEST(Sm, ComputeKernelKeepsPipelineBusy)
{
    SmFixture f;
    auto sm = f.makeSm({&findProfile("cp")});
    sm->setTbQuota(KernelId{0},
                   findProfile("cp").maxTbsPerSm(f.cfg.sm));
    f.run(*sm, Cycle{5000});
    const SmStats &s = sm->smStats();
    const double util =
        static_cast<double>(s.issue_slots_used) /
        (f.cfg.sm.num_schedulers * s.cycles);
    EXPECT_GT(util, 0.2);
    EXPECT_LT(s.lsuStallFraction(), 0.1);
}

} // namespace
} // namespace ckesim
