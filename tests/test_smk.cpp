/**
 * @file
 * Unit tests for SMK support: DRF TB partitioning and warp-
 * instruction quota computation.
 */

#include <gtest/gtest.h>

#include "core/smk.hpp"
#include "core/tb_partition.hpp"

namespace ckesim {
namespace {

std::vector<const KernelProfile *>
pair(const char *a, const char *b)
{
    return {&findProfile(a), &findProfile(b)};
}

TEST(Drf, PartitionIsFeasibleAndMaximal)
{
    const SmConfig sm;
    for (const auto &[a, b] : std::vector<std::pair<const char *,
                                                    const char *>>{
             {"bp", "sv"}, {"cp", "ks"}, {"cd", "hs"},
             {"pf", "ax"}}) {
        const auto ks = pair(a, b);
        const std::vector<int> tbs = drfPartition(ks, sm);
        EXPECT_TRUE(partitionFits(tbs, ks, sm)) << a << "+" << b;
        // Maximal: no kernel can take one more TB.
        for (std::size_t i = 0; i < tbs.size(); ++i) {
            std::vector<int> grown = tbs;
            ++grown[i];
            EXPECT_FALSE(partitionFits(grown, ks, sm))
                << a << "+" << b;
        }
    }
}

TEST(Drf, EveryKernelGetsTbs)
{
    const SmConfig sm;
    const std::vector<int> tbs = drfPartition(pair("bp", "sv"), sm);
    EXPECT_GE(tbs[0], 1);
    EXPECT_GE(tbs[1], 1);
}

TEST(Drf, BalancesDominantShares)
{
    const SmConfig sm;
    const auto ks = pair("bp", "sv");
    const std::vector<int> tbs = drfPartition(ks, sm);
    const std::vector<double> shares = dominantShares(tbs, ks, sm);
    // DRF should keep dominant shares within a TB-granularity band.
    EXPECT_LT(std::abs(shares[0] - shares[1]), 0.25);
}

TEST(Drf, IdenticalKernelsSplitEvenly)
{
    const SmConfig sm;
    const auto ks = pair("bs", "st"); // identical static demands
    const std::vector<int> tbs = drfPartition(ks, sm);
    EXPECT_EQ(tbs[0], tbs[1]);
}

TEST(DominantShares, PicksBindingResource)
{
    const SmConfig sm;
    // cd: 64 regs x 64 threads = 4096 regs/TB; registers dominate.
    const auto ks = pair("cd", "bs");
    const std::vector<double> shares =
        dominantShares({8, 0}, ks, sm);
    EXPECT_NEAR(shares[0], 8.0 * 4096 / 65536, 1e-9);
    EXPECT_DOUBLE_EQ(shares[1], 0.0);
}

TEST(SmkQuotas, ProportionalToIsolatedIpc)
{
    const auto q = smkWarpQuotas({2.0, 1.0}, Cycle{1000});
    EXPECT_EQ(q[0], 2000u);
    EXPECT_EQ(q[1], 1000u);
}

TEST(SmkQuotas, FloorsTinyIpc)
{
    const auto q = smkWarpQuotas({0.0001, 1.0}, Cycle{1000});
    EXPECT_GE(q[0], 50u); // clamped at 0.05 IPC
    EXPECT_GE(q[1], 1u);
}

} // namespace
} // namespace ckesim
