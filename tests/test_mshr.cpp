/**
 * @file
 * Unit tests for the MSHR table: allocation, merging, capacity and
 * release semantics.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hpp"

namespace ckesim {
namespace {

using IntMshr = MshrTable<int>;

TEST(Mshr, AllocateAndPending)
{
    IntMshr t(4, 2);
    EXPECT_FALSE(t.pending(LineAddr{10}));
    EXPECT_TRUE(t.hasFree());
    t.allocate(LineAddr{10}, 1);
    EXPECT_TRUE(t.pending(LineAddr{10}));
    EXPECT_EQ(t.size(), 1);
}

TEST(Mshr, MergeCollectsTargets)
{
    IntMshr t(4, 4);
    t.allocate(LineAddr{10}, 1);
    t.merge(LineAddr{10}, 2);
    t.merge(LineAddr{10}, 3);
    const std::vector<int> targets = t.release(LineAddr{10});
    EXPECT_EQ(targets, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(t.pending(LineAddr{10}));
    EXPECT_EQ(t.size(), 0);
}

TEST(Mshr, MergeCapEnforced)
{
    IntMshr t(4, 2);
    t.allocate(LineAddr{10}, 1);
    EXPECT_TRUE(t.canMerge(LineAddr{10}));
    t.merge(LineAddr{10}, 2);
    EXPECT_FALSE(t.canMerge(LineAddr{10}));
}

TEST(Mshr, CapacityEnforced)
{
    IntMshr t(2, 8);
    t.allocate(LineAddr{1}, 0);
    t.allocate(LineAddr{2}, 0);
    EXPECT_FALSE(t.hasFree());
    t.release(LineAddr{1});
    EXPECT_TRUE(t.hasFree());
}

TEST(Mshr, IndependentLines)
{
    IntMshr t(8, 8);
    t.allocate(LineAddr{1}, 100);
    t.allocate(LineAddr{2}, 200);
    EXPECT_EQ(t.release(LineAddr{2}), std::vector<int>{200});
    EXPECT_TRUE(t.pending(LineAddr{1}));
    EXPECT_EQ(t.release(LineAddr{1}), std::vector<int>{100});
    EXPECT_TRUE(t.empty());
}

TEST(Mshr, Table1Capacity)
{
    // The paper's configuration: 128 MSHRs per SM.
    IntMshr t(128, 8);
    for (int i = 0; i < 128; ++i)
        t.allocate(LineAddr{i}, i);
    EXPECT_FALSE(t.hasFree());
    EXPECT_EQ(t.capacity(), 128);
    EXPECT_EQ(t.maxMerge(), 8);
}

} // namespace
} // namespace ckesim
