/**
 * @file
 * Unit tests for the MSHR table: allocation, merging, capacity and
 * release semantics.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hpp"

namespace ckesim {
namespace {

using IntMshr = MshrTable<int>;

TEST(Mshr, AllocateAndPending)
{
    IntMshr t(4, 2);
    EXPECT_FALSE(t.pending(10));
    EXPECT_TRUE(t.hasFree());
    t.allocate(10, 1);
    EXPECT_TRUE(t.pending(10));
    EXPECT_EQ(t.size(), 1);
}

TEST(Mshr, MergeCollectsTargets)
{
    IntMshr t(4, 4);
    t.allocate(10, 1);
    t.merge(10, 2);
    t.merge(10, 3);
    const std::vector<int> targets = t.release(10);
    EXPECT_EQ(targets, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(t.pending(10));
    EXPECT_EQ(t.size(), 0);
}

TEST(Mshr, MergeCapEnforced)
{
    IntMshr t(4, 2);
    t.allocate(10, 1);
    EXPECT_TRUE(t.canMerge(10));
    t.merge(10, 2);
    EXPECT_FALSE(t.canMerge(10));
}

TEST(Mshr, CapacityEnforced)
{
    IntMshr t(2, 8);
    t.allocate(1, 0);
    t.allocate(2, 0);
    EXPECT_FALSE(t.hasFree());
    t.release(1);
    EXPECT_TRUE(t.hasFree());
}

TEST(Mshr, IndependentLines)
{
    IntMshr t(8, 8);
    t.allocate(1, 100);
    t.allocate(2, 200);
    EXPECT_EQ(t.release(2), std::vector<int>{200});
    EXPECT_TRUE(t.pending(1));
    EXPECT_EQ(t.release(1), std::vector<int>{100});
    EXPECT_TRUE(t.empty());
}

TEST(Mshr, Table1Capacity)
{
    // The paper's configuration: 128 MSHRs per SM.
    IntMshr t(128, 8);
    for (int i = 0; i < 128; ++i)
        t.allocate(static_cast<Addr>(i), i);
    EXPECT_FALSE(t.hasFree());
    EXPECT_EQ(t.capacity(), 128);
    EXPECT_EQ(t.maxMerge(), 8);
}

} // namespace
} // namespace ckesim
