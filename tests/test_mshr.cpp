/**
 * @file
 * Unit tests for the MSHR table: allocation, merging, capacity and
 * release semantics, plus flat-table-vs-std::map oracle equivalence
 * under randomized and collision-heavy workloads (DESIGN.md §14).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "mem/mshr.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {
namespace {

using IntMshr = MshrTable<int>;

/**
 * Mirror of the table's multiply-shift home-bucket computation, used
 * to construct collision-heavy address sets. @p capacity must match
 * the table's construction argument.
 */
std::size_t
oracleHome(LineAddr line, int capacity)
{
    std::size_t want =
        static_cast<std::size_t>(capacity > 0 ? capacity : 1) * 2;
    std::size_t n = 8;
    int log2n = 3;
    while (n < want) {
        n <<= 1;
        ++log2n;
    }
    const std::uint64_t h =
        static_cast<std::uint64_t>(line.get()) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> (64 - log2n));
}

/** First @p count line addresses whose home bucket is @p bucket. */
std::vector<LineAddr>
collidingLines(int capacity, std::size_t bucket, std::size_t count)
{
    std::vector<LineAddr> out;
    for (std::int64_t v = 1; out.size() < count; ++v)
        if (oracleHome(LineAddr{v}, capacity) == bucket)
            out.push_back(LineAddr{v});
    return out;
}

/** Collect a table's full contents through forEach, keyed by line. */
std::map<std::int64_t, std::vector<int>>
dumpTable(const IntMshr &t)
{
    std::map<std::int64_t, std::vector<int>> out;
    t.forEach([&](LineAddr line, const std::vector<int> &targets) {
        out[line.get()] = targets;
    });
    return out;
}

TEST(Mshr, AllocateAndPending)
{
    IntMshr t(4, 2);
    EXPECT_FALSE(t.pending(LineAddr{10}));
    EXPECT_TRUE(t.hasFree());
    t.allocate(LineAddr{10}, 1);
    EXPECT_TRUE(t.pending(LineAddr{10}));
    EXPECT_EQ(t.size(), 1);
}

TEST(Mshr, MergeCollectsTargets)
{
    IntMshr t(4, 4);
    t.allocate(LineAddr{10}, 1);
    t.merge(LineAddr{10}, 2);
    t.merge(LineAddr{10}, 3);
    const std::vector<int> targets = t.release(LineAddr{10});
    EXPECT_EQ(targets, (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(t.pending(LineAddr{10}));
    EXPECT_EQ(t.size(), 0);
}

TEST(Mshr, MergeCapEnforced)
{
    IntMshr t(4, 2);
    t.allocate(LineAddr{10}, 1);
    EXPECT_TRUE(t.canMerge(LineAddr{10}));
    t.merge(LineAddr{10}, 2);
    EXPECT_FALSE(t.canMerge(LineAddr{10}));
}

TEST(Mshr, CapacityEnforced)
{
    IntMshr t(2, 8);
    t.allocate(LineAddr{1}, 0);
    t.allocate(LineAddr{2}, 0);
    EXPECT_FALSE(t.hasFree());
    t.release(LineAddr{1});
    EXPECT_TRUE(t.hasFree());
}

TEST(Mshr, IndependentLines)
{
    IntMshr t(8, 8);
    t.allocate(LineAddr{1}, 100);
    t.allocate(LineAddr{2}, 200);
    EXPECT_EQ(t.release(LineAddr{2}), std::vector<int>{200});
    EXPECT_TRUE(t.pending(LineAddr{1}));
    EXPECT_EQ(t.release(LineAddr{1}), std::vector<int>{100});
    EXPECT_TRUE(t.empty());
}

TEST(Mshr, Table1Capacity)
{
    // The paper's configuration: 128 MSHRs per SM.
    IntMshr t(128, 8);
    for (int i = 0; i < 128; ++i)
        t.allocate(LineAddr{i}, i);
    EXPECT_FALSE(t.hasFree());
    EXPECT_EQ(t.capacity(), 128);
    EXPECT_EQ(t.maxMerge(), 8);
}

// ---- flat-table-vs-map oracle equivalence -------------------------------

TEST(MshrOracle, RandomizedOpsMatchMapOracle)
{
    // Drive the open-addressing table and a std::map oracle with the
    // same operation stream; all observable state must stay equal.
    constexpr int kCapacity = 16;
    constexpr int kMaxMerge = 4;
    IntMshr t(kCapacity, kMaxMerge);
    std::map<std::int64_t, std::vector<int>> oracle;
    SimCtx ctx;
    ctx.module = "test_mshr";

    // Address universe: a sequential run plus a collision-heavy set
    // that all hash to one home bucket, so linear-probe chains and
    // backward-shift deletion are exercised constantly.
    std::vector<LineAddr> lines;
    for (std::int64_t v = 1000; v < 1024; ++v)
        lines.push_back(LineAddr{v});
    for (LineAddr l : collidingLines(kCapacity, 7, 12))
        lines.push_back(l);

    Rng rng(0x5EEDBEEFULL);
    int next_target = 0;
    for (int step = 0; step < 5000; ++step) {
        const LineAddr line =
            lines[static_cast<std::size_t>(rng.nextBelow(lines.size()))];
        const auto it = oracle.find(line.get());
        const std::uint64_t roll = rng.nextBelow(100);

        ASSERT_EQ(t.pending(line), it != oracle.end());
        if (roll < 40) {
            // Allocate-or-merge through the single-probe path.
            const IntMshr::MergeResult got = t.tryMerge(line, next_target);
            if (it == oracle.end()) {
                ASSERT_EQ(got, IntMshr::MergeResult::NoEntry);
                if (oracle.size() <
                    static_cast<std::size_t>(kCapacity)) {
                    ASSERT_TRUE(t.hasFree());
                    t.allocate(line, next_target);
                    oracle[line.get()] = {next_target};
                    ++next_target;
                } else {
                    ASSERT_FALSE(t.hasFree());
                }
            } else if (static_cast<int>(it->second.size()) >=
                       kMaxMerge) {
                ASSERT_EQ(got, IntMshr::MergeResult::Full);
            } else {
                ASSERT_EQ(got, IntMshr::MergeResult::Merged);
                it->second.push_back(next_target);
                ++next_target;
            }
        } else if (roll < 70) {
            // Separate-probe merge path.
            if (it != oracle.end() &&
                static_cast<int>(it->second.size()) < kMaxMerge) {
                ASSERT_TRUE(t.canMerge(line));
                t.merge(line, next_target);
                it->second.push_back(next_target);
                ++next_target;
            }
        } else if (it != oracle.end()) {
            // Fill: merged targets come back in merge order.
            ASSERT_EQ(t.firstTarget(line), it->second.front());
            ASSERT_EQ(t.release(line), it->second);
            oracle.erase(it);
        }

        ASSERT_EQ(t.size(), static_cast<int>(oracle.size()));
        ASSERT_EQ(t.empty(), oracle.empty());
        t.checkBalance(ctx);
    }
    ASSERT_EQ(dumpTable(t), oracle);
}

TEST(MshrOracle, CollisionChainSurvivesMiddleDeletions)
{
    // All entries share one home bucket: deleting out of the middle of
    // the probe chain must backward-shift so later entries stay
    // findable (no tombstones).
    constexpr int kCapacity = 8;
    IntMshr t(kCapacity, 2);
    const std::vector<LineAddr> chain =
        collidingLines(kCapacity, 3, 6);
    for (std::size_t i = 0; i < chain.size(); ++i)
        t.allocate(chain[i], static_cast<int>(i));

    // Release the middle pair, then the head, in that order.
    EXPECT_EQ(t.release(chain[2]), std::vector<int>{2});
    EXPECT_EQ(t.release(chain[3]), std::vector<int>{3});
    EXPECT_EQ(t.release(chain[0]), std::vector<int>{0});
    EXPECT_FALSE(t.pending(chain[0]));
    EXPECT_FALSE(t.pending(chain[2]));
    EXPECT_FALSE(t.pending(chain[3]));
    // Survivors must still resolve through the compacted chain.
    EXPECT_TRUE(t.pending(chain[1]));
    EXPECT_TRUE(t.pending(chain[4]));
    EXPECT_TRUE(t.pending(chain[5]));
    EXPECT_EQ(t.firstTarget(chain[4]), 4);
    // Reinsert into the freed space and verify nothing was orphaned.
    t.allocate(chain[0], 100);
    EXPECT_EQ(t.firstTarget(chain[0]), 100);
    EXPECT_EQ(t.size(), 4);
    const auto dump = dumpTable(t);
    EXPECT_EQ(dump.size(), 4u);
    EXPECT_EQ(dump.at(chain[5].get()), std::vector<int>{5});
}

TEST(MshrOracle, SnapshotRoundTripCollisionHeavy)
{
    // Snapshot payload is sorted by line (insertion-history
    // independent): a table rebuilt from it must dump identically and
    // re-serialize to the same bytes.
    constexpr int kCapacity = 8;
    IntMshr t(kCapacity, 4);
    const std::vector<LineAddr> chain =
        collidingLines(kCapacity, 5, 5);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        t.allocate(chain[i], static_cast<int>(i) * 10);
        t.merge(chain[i], static_cast<int>(i) * 10 + 1);
    }
    t.release(chain[1]); // leave a backward-shifted chain behind

    SnapshotWriter w;
    t.snapshot(w, [](SnapshotWriter &sw, const int &v) {
        sw.i64(v);
    });

    IntMshr back(kCapacity, 4);
    SnapshotReader r(w.bytes());
    back.restore(r, [](SnapshotReader &sr) {
        return static_cast<int>(sr.i64());
    });

    EXPECT_EQ(dumpTable(back), dumpTable(t));
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.totalAllocated(), t.totalAllocated());
    EXPECT_EQ(back.totalReleased(), t.totalReleased());

    SnapshotWriter w2;
    back.snapshot(w2, [](SnapshotWriter &sw, const int &v) {
        sw.i64(v);
    });
    EXPECT_EQ(w.bytes(), w2.bytes());
}

} // namespace
} // namespace ckesim
