/**
 * @file
 * Unit tests for the multiprogramming metrics (Section 2.3).
 */

#include <gtest/gtest.h>

#include "metrics/perf_metrics.hpp"

namespace ckesim {
namespace {

TEST(Metrics, WeightedSpeedupIsSum)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({0.5, 0.7}), 1.2);
    EXPECT_DOUBLE_EQ(weightedSpeedup({}), 0.0);
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 1.0, 1.0}), 3.0);
}

TEST(Metrics, AnttIsMeanSlowdown)
{
    // Slowdowns 2x and 4x -> ANTT 3.
    EXPECT_DOUBLE_EQ(antt({0.5, 0.25}), 3.0);
    EXPECT_DOUBLE_EQ(antt({1.0}), 1.0);
    EXPECT_DOUBLE_EQ(antt({}), 0.0);
}

TEST(Metrics, AnttHandlesZeroGracefully)
{
    const double v = antt({0.0, 1.0});
    EXPECT_GT(v, 1e6); // huge but finite
}

TEST(Metrics, FairnessMinOverMax)
{
    EXPECT_DOUBLE_EQ(fairnessIndex({0.5, 0.5}), 1.0);
    EXPECT_DOUBLE_EQ(fairnessIndex({0.2, 0.8}), 0.25);
    EXPECT_DOUBLE_EQ(fairnessIndex({0.3}), 1.0);
    EXPECT_DOUBLE_EQ(fairnessIndex({}), 0.0);
    EXPECT_DOUBLE_EQ(fairnessIndex({0.0, 0.0}), 0.0);
}

TEST(Metrics, BetterSchemeOrdering)
{
    // A scheme that lifts the starved kernel improves all three
    // metrics at once.
    const std::vector<double> starved = {0.1, 0.8};
    const std::vector<double> balanced = {0.45, 0.75};
    EXPECT_GT(weightedSpeedup(balanced), weightedSpeedup(starved));
    EXPECT_LT(antt(balanced), antt(starved));
    EXPECT_GT(fairnessIndex(balanced), fairnessIndex(starved));
}

} // namespace
} // namespace ckesim
