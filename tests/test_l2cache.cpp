/**
 * @file
 * Unit tests for an L2 partition: hit replies, miss handling through
 * DRAM, WBWA write semantics, dirty writebacks and head-of-queue
 * stalls under resource shortage.
 */

#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "mem/l2cache.hpp"

namespace ckesim {
namespace {

L2Config
l2cfg(int mshrs = 8, int inputq = 4)
{
    L2Config c;
    c.partition_bytes = 64 * 4 * 16; // 16 sets x 4 ways x 64B
    c.line_bytes = 64;
    c.assoc = 4;
    c.num_mshrs = mshrs;
    c.miss_queue_depth = inputq;
    c.latency = 10;
    return c;
}

DramConfig
dramcfg(int queue_depth = 16)
{
    DramConfig c;
    c.access_latency = 20;
    c.row_hit_service = 1;
    c.row_miss_penalty = 2;
    c.queue_depth = queue_depth;
    return c;
}

MemRequest
read(LineAddr line, int sm = 0)
{
    MemRequest r;
    r.line_addr = line;
    r.sm_id = SmId{sm};
    r.kind = ReqKind::ReadMiss;
    return r;
}

MemRequest
write(LineAddr line)
{
    MemRequest r;
    r.line_addr = line;
    r.kind = ReqKind::WriteThru;
    return r;
}

/** Run fills from DRAM into the partition until quiescent. */
void
pump(L2Partition &part, DramChannel &dram, Cycle from, Cycle to)
{
    for (Cycle t = from; t <= to; ++t) {
        part.tick(t, dram);
        dram.tick(t);
        for (const MemRequest &f : dram.drainFills(t))
            part.onDramFill(f, t);
    }
}

TEST(L2Partition, MissFetchesFromDramThenHits)
{
    L2Partition part(l2cfg(), 0);
    DramChannel dram(dramcfg(), 64);

    part.acceptInput(read(LineAddr{7}, /*sm=*/3));
    pump(part, dram, Cycle{}, Cycle{100});
    const auto replies = part.drainReplies(Cycle{100});
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].sm_id, SmId{3});
    EXPECT_EQ(part.missRate(), 1.0);

    // Second access: L2 hit, reply after latency only.
    part.acceptInput(read(LineAddr{7}, 5));
    part.tick(Cycle{200}, dram);
    EXPECT_TRUE(part.drainReplies(Cycle{209}).empty());
    EXPECT_EQ(part.drainReplies(Cycle{210}).size(), 1u);
    EXPECT_DOUBLE_EQ(part.missRate(), 0.5);
}

TEST(L2Partition, ConcurrentMissesMerge)
{
    L2Partition part(l2cfg(), 0);
    DramChannel dram(dramcfg(), 64);
    part.acceptInput(read(LineAddr{7}, 1));
    part.acceptInput(read(LineAddr{7}, 2));
    part.tick(Cycle{0}, dram);
    part.tick(Cycle{1}, dram);
    // Only one DRAM fetch for the merged line.
    EXPECT_EQ(dram.queueLength(), 1);
    pump(part, dram, Cycle{2}, Cycle{100});
    EXPECT_EQ(part.drainReplies(Cycle{100}).size(), 2u);
}

TEST(L2Partition, WriteMissAllocatesAndMarksDirty)
{
    L2Partition part(l2cfg(), 0);
    DramChannel dram(dramcfg(), 64);
    part.acceptInput(write(LineAddr{9}));
    pump(part, dram, Cycle{}, Cycle{100});
    // Writes produce no reply.
    EXPECT_TRUE(part.drainReplies(Cycle{100}).empty());
    // The line is now dirty: evicting it requires a writeback. Fill
    // the set with reads to force the eviction.
    const int set9 = part.tags().setIndex(LineAddr{9});
    std::vector<LineAddr> same_set;
    for (LineAddr l{100}; same_set.size() < 4; ++l)
        if (part.tags().setIndex(l) == set9)
            same_set.push_back(l);
    Cycle t{200};
    for (LineAddr l : same_set) {
        part.acceptInput(read(l));
        pump(part, dram, t, t + 99);
        t += 100;
    }
    // One of those misses evicted dirty line 9 -> a writeback went to
    // DRAM in addition to the 4 fetches + 1 original.
    EXPECT_DOUBLE_EQ(dram.rowHitRate() >= 0.0, true);
    // Line 9 must be gone.
    const int way = part.tags().probe(LineAddr{9});
    EXPECT_EQ(way, -1);
}

TEST(L2Partition, WriteHitMarksDirtyWithoutDram)
{
    L2Partition part(l2cfg(), 0);
    DramChannel dram(dramcfg(), 64);
    part.acceptInput(read(LineAddr{5}));
    pump(part, dram, Cycle{}, Cycle{100});
    part.drainReplies(Cycle{100});
    const int dram_q_before = dram.queueLength();
    part.acceptInput(write(LineAddr{5}));
    part.tick(Cycle{200}, dram);
    EXPECT_EQ(dram.queueLength(), dram_q_before);
    const int way = part.tags().probe(LineAddr{5});
    ASSERT_GE(way, 0);
    EXPECT_TRUE(part.tags()
                    .line(part.tags().setIndex(LineAddr{5}), way)
                    .dirty);
}

TEST(L2Partition, StallsWhenDramQueueFull)
{
    L2Partition part(l2cfg(/*mshrs=*/8, /*inputq=*/4), 0);
    DramChannel dram(dramcfg(/*queue_depth=*/1), 64);
    part.acceptInput(read(LineAddr{1}));
    part.acceptInput(read(LineAddr{2}));
    part.tick(Cycle{0}, dram); // first miss takes the only DRAM slot
    part.tick(Cycle{1}, dram); // second miss must stall at the head
    EXPECT_EQ(part.inputRoom(), l2cfg().miss_queue_depth - 1);
    // Drain DRAM; the partition can then proceed.
    pump(part, dram, Cycle{2}, Cycle{200});
    EXPECT_EQ(part.drainReplies(Cycle{200}).size(), 2u);
}

TEST(L2Partition, StallsWhenMshrsExhausted)
{
    L2Partition part(l2cfg(/*mshrs=*/1, /*inputq=*/4), 0);
    DramChannel dram(dramcfg(), 64);
    part.acceptInput(read(LineAddr{1}));
    part.acceptInput(read(LineAddr{2}));
    part.tick(Cycle{0}, dram);
    part.tick(Cycle{1}, dram); // blocked: MSHR in use
    EXPECT_EQ(dram.queueLength(), 1);
    pump(part, dram, Cycle{2}, Cycle{200});
    EXPECT_EQ(part.drainReplies(Cycle{200}).size(), 2u);
}

TEST(L2Partition, InputRoomReflectsQueue)
{
    L2Partition part(l2cfg(/*mshrs=*/8, /*inputq=*/2), 0);
    EXPECT_EQ(part.inputRoom(), 2);
    part.acceptInput(read(LineAddr{1}));
    EXPECT_EQ(part.inputRoom(), 1);
}

TEST(L2Partition, IdleLifecycle)
{
    L2Partition part(l2cfg(), 0);
    DramChannel dram(dramcfg(), 64);
    EXPECT_TRUE(part.idle());
    part.acceptInput(read(LineAddr{1}));
    EXPECT_FALSE(part.idle());
    pump(part, dram, Cycle{}, Cycle{100});
    EXPECT_FALSE(part.idle()); // reply undelivered
    part.drainReplies(Cycle{100});
    EXPECT_TRUE(part.idle());
}

} // namespace
} // namespace ckesim
