/**
 * @file
 * Unit tests for workload construction and classification.
 */

#include <gtest/gtest.h>

#include "kernels/workload.hpp"

namespace ckesim {
namespace {

TEST(Workload, NameAndClass)
{
    const Workload w = makeWorkload({"bp", "sv"});
    EXPECT_EQ(w.name(), "bp+sv");
    EXPECT_EQ(w.cls(), WorkloadClass::CM);
    EXPECT_EQ(makeWorkload({"pf", "bp"}).cls(), WorkloadClass::CC);
    EXPECT_EQ(makeWorkload({"sv", "ks"}).cls(), WorkloadClass::MM);
}

TEST(Workload, ClassNames)
{
    EXPECT_EQ(workloadClassName(WorkloadClass::CC), "C+C");
    EXPECT_EQ(workloadClassName(WorkloadClass::CM), "C+M");
    EXPECT_EQ(workloadClassName(WorkloadClass::MM), "M+M");
    EXPECT_EQ(workloadClassName(WorkloadClass::CC, 3), "C+C+C");
    EXPECT_EQ(workloadClassName(WorkloadClass::MM, 3), "M+M+M");
}

TEST(Workload, AllSuitePairsCount)
{
    // 13 choose 2 = 78 workloads, as in the paper's "all
    // combinations of 2 kernels".
    const auto pairs = allSuitePairs();
    EXPECT_EQ(pairs.size(), 78u);
    // Class composition: C(7,2)=21 C+C, 7*6=42 C+M, C(6,2)=15 M+M.
    EXPECT_EQ(filterByClass(pairs, WorkloadClass::CC).size(), 21u);
    EXPECT_EQ(filterByClass(pairs, WorkloadClass::CM).size(), 42u);
    EXPECT_EQ(filterByClass(pairs, WorkloadClass::MM).size(), 15u);
}

TEST(Workload, RepresentativePairsCoverPaperCases)
{
    const auto pairs = representativePairs();
    auto has = [&](const std::string &name) {
        for (const Workload &w : pairs)
            if (w.name() == name)
                return true;
        return false;
    };
    // The six pairs examined individually in Figures 5 and 11.
    EXPECT_TRUE(has("pf+bp"));
    EXPECT_TRUE(has("bp+hs"));
    EXPECT_TRUE(has("bp+sv"));
    EXPECT_TRUE(has("bp+ks"));
    EXPECT_TRUE(has("sv+ks"));
    EXPECT_TRUE(has("sv+ax"));
    // Every class represented (for geomeans).
    EXPECT_GE(filterByClass(pairs, WorkloadClass::CC).size(), 3u);
    EXPECT_GE(filterByClass(pairs, WorkloadClass::CM).size(), 3u);
    EXPECT_GE(filterByClass(pairs, WorkloadClass::MM).size(), 3u);
}

TEST(Workload, TriplesSpanAllFourClasses)
{
    const auto triples = representativeTriples();
    int ccc = 0, mmm = 0, mixed = 0;
    for (const Workload &w : triples) {
        ASSERT_EQ(w.numKernels(), 3);
        int m = 0;
        for (const KernelProfile *k : w.kernels)
            m += k->isMemoryIntensive() ? 1 : 0;
        if (m == 0)
            ++ccc;
        else if (m == 3)
            ++mmm;
        else
            ++mixed;
    }
    EXPECT_GE(ccc, 1);
    EXPECT_GE(mmm, 1);
    EXPECT_GE(mixed, 2);
}

TEST(Workload, PairsPreserveSuiteOrder)
{
    const auto pairs = allSuitePairs();
    EXPECT_EQ(pairs.front().name(), "cp+hs");
    EXPECT_EQ(pairs.back().name(), "ks+ax");
}

} // namespace
} // namespace ckesim
