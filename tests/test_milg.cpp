/**
 * @file
 * Unit tests for the MILG hardware model (Figure 10 / Section 3.3.2):
 * counter widths, sampling interval, the throttle formula and AIMD
 * relaxation.
 */

#include <gtest/gtest.h>

#include "core/milg.hpp"

namespace ckesim {
namespace {

/** Drive one full 1024-request interval with a given rsfail count
 *  and peak in-flight value. */
void
runInterval(Milg &m, int rsfails, int peak)
{
    m.observeInflight(peak);
    for (int i = 0; i < rsfails; ++i)
        m.onRsFail();
    for (int i = 0; i < Milg::kIntervalRequests; ++i)
        m.onRequest();
}

TEST(Milg, HardwareWidths)
{
    // Section 4.4: 7-bit inflight counter, 12-bit rsfail counter,
    // 10-bit request counter.
    EXPECT_EQ(Milg::kInflightBits, 7);
    EXPECT_EQ(Milg::kRsFailBits, 12);
    EXPECT_EQ(Milg::kRequestBits, 10);
    EXPECT_EQ(Milg::kIntervalRequests, 1024);
    EXPECT_EQ(Milg::kStorageBits, 29);
}

TEST(Milg, UnlimitedBeforeFirstInterval)
{
    Milg m;
    EXPECT_GE(m.limit(), 1 << 19);
    runInterval(m, 0, 10); // only now does it compute
    EXPECT_LT(m.limit(), 1 << 19);
}

TEST(Milg, FirstCongestedIntervalOnlyHolds)
{
    // Hysteresis: one congested interval pins the limit at the
    // observed peak; it does not yet divide.
    Milg m;
    runInterval(m, 2048, 60);
    EXPECT_EQ(m.limit(), 60);
}

TEST(Milg, ThrottlesOnSustainedCongestion)
{
    Milg m;
    // 2048 rsfails over 1024 requests = 2 per request, twice in a
    // row -> peak / 3 on the second interval.
    runInterval(m, 2048, 60);
    runInterval(m, 2048, 60);
    EXPECT_EQ(m.limit(), 20);
}

TEST(Milg, ThrottleFloorsAtOne)
{
    Milg m;
    runInterval(m, Milg::kRsFailSaturation, 2);
    runInterval(m, Milg::kRsFailSaturation, 2);
    EXPECT_EQ(m.limit(), 1);
}

TEST(Milg, RelaxesWhenCongestionFree)
{
    Milg m;
    runInterval(m, 2048, 60); // -> 20
    runInterval(m, 0, 20);    // congestion free -> 30
    EXPECT_EQ(m.limit(), 30);
    runInterval(m, 0, 30);
    EXPECT_EQ(m.limit(), 45);
}

TEST(Milg, BelowThresholdDoesNotThrottle)
{
    Milg m;
    // 1000 rsfails over 1024 requests: below one per request.
    runInterval(m, 1000, 40);
    EXPECT_GE(m.limit(), 40);
}

TEST(Milg, RsFailCounterSaturates)
{
    Milg m;
    // Far more failures than the 12-bit counter holds: the shift of
    // the saturated value caps the divisor.
    runInterval(m, 100000, 127);
    runInterval(m, 100000, 127);
    // 4095 >> 10 == 3 -> 127 / 4 = 31.
    EXPECT_EQ(m.limit(), 31);
}

TEST(Milg, HysteresisClearsAfterCleanInterval)
{
    Milg m;
    runInterval(m, 2048, 60); // congested: hold
    runInterval(m, 0, 40);    // clean: relax, clear hysteresis
    runInterval(m, 2048, 50); // congested again: hold, not divide
    EXPECT_EQ(m.limit(), 50);
}

TEST(Milg, PeakInflightSaturatesAt7Bits)
{
    Milg m;
    m.observeInflight(500); // beyond 7 bits
    runInterval(m, 0, 1);
    // Relax path from the saturated peak of 127.
    EXPECT_EQ(m.limit(), 127 + 63);
}

TEST(Milg, PeakResetsEachInterval)
{
    Milg m;
    runInterval(m, 2048, 100); // -> 33
    // Next interval sees a lower peak.
    runInterval(m, 2048, 9);
    EXPECT_EQ(m.limit(), 3);
}

TEST(Milg, IntervalCountAdvances)
{
    Milg m;
    EXPECT_EQ(m.intervals(), 0u);
    runInterval(m, 0, 1);
    runInterval(m, 0, 1);
    EXPECT_EQ(m.intervals(), 2u);
}

TEST(Milg, ResetRestoresInitialState)
{
    Milg m;
    runInterval(m, 4000, 50);
    m.reset();
    EXPECT_GE(m.limit(), 1 << 19);
    EXPECT_EQ(m.intervals(), 0u);
}

TEST(Milg, ConvergesUnderSustainedCongestion)
{
    Milg m;
    int peak = 120;
    for (int i = 0; i < 8; ++i) {
        runInterval(m, 3000, peak);
        peak = std::min(peak, m.limit());
    }
    EXPECT_LE(m.limit(), 2);
}

} // namespace
} // namespace ckesim
