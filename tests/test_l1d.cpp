/**
 * @file
 * Unit tests for the L1D front-end: hit/miss paths, reservation
 * failures for each resource (line / MSHR / miss queue), WEWN write
 * semantics and fill wakeups.
 */

#include <gtest/gtest.h>

#include "mem/l1d.hpp"

namespace ckesim {
namespace {

L1dConfig
smallL1(int mshrs = 4, int missq = 4, int assoc = 2)
{
    L1dConfig cfg;
    cfg.size_bytes = 64 * assoc * 16; // 16 sets
    cfg.line_bytes = 64;
    cfg.assoc = assoc;
    cfg.num_mshrs = mshrs;
    cfg.mshr_merge = 2;
    cfg.miss_queue_depth = missq;
    return cfg;
}

L1Target
tgt(int warp)
{
    L1Target t;
    t.warp_slot = WarpSlot{warp};
    t.kernel = KernelId{0};
    return t;
}

/** i-th line mapping to a given set. */
LineAddr
sameSetLine(const L1dConfig &cfg, int set, int i)
{
    int found = 0;
    for (LineAddr line{};; ++line) {
        if (xorSetIndex(line, cfg.numSets()) == set) {
            if (found == i)
                return line;
            ++found;
        }
    }
}

TEST(L1Dcache, MissThenFillThenHit)
{
    L1Dcache l1(smallL1(), SmId{0});
    const LineAddr line{100};

    L1Outcome out =
        l1.access(line, KernelId{0}, false, tgt(7), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::MissToL2);
    ASSERT_NE(l1.peekMissQueue(), nullptr);
    EXPECT_EQ(l1.peekMissQueue()->line_addr, line);
    l1.popMissQueue();

    const std::vector<L1Target> targets = l1.fill(line);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].warp_slot, WarpSlot{7});

    out = l1.access(line, KernelId{0}, false, tgt(8), Cycle{1});
    EXPECT_EQ(out.kind, L1Outcome::Kind::Hit);
}

TEST(L1Dcache, SecondMissToSameLineMerges)
{
    L1Dcache l1(smallL1(), SmId{0});
    const LineAddr line{100};
    l1.access(line, KernelId{0}, false, tgt(1), Cycle{});
    const L1Outcome out =
        l1.access(line, KernelId{0}, false, tgt(2), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::MergedMshr);
    // Merge consumed no extra miss-queue entry.
    EXPECT_EQ(l1.missQueueSize(), 1);
    // Fill returns both targets.
    EXPECT_EQ(l1.fill(line).size(), 2u);
}

TEST(L1Dcache, MergeListFullIsMshrRsFail)
{
    L1Dcache l1(smallL1(), SmId{0}); // merge cap 2
    const LineAddr line{100};
    l1.access(line, KernelId{0}, false, tgt(1), Cycle{});
    l1.access(line, KernelId{0}, false, tgt(2), Cycle{});
    const L1Outcome out =
        l1.access(line, KernelId{0}, false, tgt(3), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(out.fail, RsFailReason::Mshr);
}

TEST(L1Dcache, MshrTableFullIsRsFail)
{
    L1Dcache l1(smallL1(/*mshrs=*/2, /*missq=*/8), SmId{0});
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1), Cycle{});
    l1.access(LineAddr{2}, KernelId{0}, false, tgt(2), Cycle{});
    const L1Outcome out =
        l1.access(LineAddr{3}, KernelId{0}, false, tgt(3), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(out.fail, RsFailReason::Mshr);
    EXPECT_EQ(l1.mshrsInUse(), 2);
}

TEST(L1Dcache, MissQueueFullIsRsFail)
{
    L1Dcache l1(smallL1(/*mshrs=*/8, /*missq=*/2), SmId{0});
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1), Cycle{});
    l1.access(LineAddr{2}, KernelId{0}, false, tgt(2), Cycle{});
    // Queue not drained: third new miss cannot enqueue.
    const L1Outcome out =
        l1.access(LineAddr{3}, KernelId{0}, false, tgt(3), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(out.fail, RsFailReason::MissQueue);
}

TEST(L1Dcache, AllWaysReservedIsLineRsFail)
{
    const L1dConfig cfg = smallL1(/*mshrs=*/8, /*missq=*/8,
                                  /*assoc=*/2);
    L1Dcache l1(cfg, SmId{0});
    const LineAddr a = sameSetLine(cfg, 3, 0);
    const LineAddr b = sameSetLine(cfg, 3, 1);
    const LineAddr c = sameSetLine(cfg, 3, 2);
    EXPECT_EQ(l1.access(a, KernelId{0}, false, tgt(1), Cycle{}).kind,
              L1Outcome::Kind::MissToL2);
    EXPECT_EQ(l1.access(b, KernelId{0}, false, tgt(2), Cycle{}).kind,
              L1Outcome::Kind::MissToL2);
    const L1Outcome out =
        l1.access(c, KernelId{0}, false, tgt(3), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(out.fail, RsFailReason::Line);

    // A fill frees the set again.
    l1.fill(a);
    EXPECT_EQ(l1.access(c, KernelId{0}, false, tgt(3), Cycle{1}).kind,
              L1Outcome::Kind::MissToL2);
}

TEST(L1Dcache, WriteEvictsAndForwards)
{
    L1Dcache l1(smallL1(), SmId{0});
    const LineAddr line{50};
    // Install via miss+fill.
    l1.access(line, KernelId{0}, false, tgt(1), Cycle{});
    l1.popMissQueue();
    l1.fill(line);

    // WEWN: the write invalidates the cached copy and enqueues a
    // write-through request; no MSHR is used.
    const int mshrs_before = l1.mshrsInUse();
    const L1Outcome out =
        l1.access(line, KernelId{0}, true, tgt(2), Cycle{1});
    EXPECT_EQ(out.kind, L1Outcome::Kind::WriteQueued);
    EXPECT_EQ(l1.mshrsInUse(), mshrs_before);
    ASSERT_NE(l1.peekMissQueue(), nullptr);
    EXPECT_EQ(l1.peekMissQueue()->kind, ReqKind::WriteThru);

    // The next read misses: write-evict dropped the line.
    EXPECT_EQ(
        l1.access(line, KernelId{0}, false, tgt(3), Cycle{2}).kind,
        L1Outcome::Kind::MissToL2);
}

TEST(L1Dcache, WriteNeedsOnlyMissQueue)
{
    L1Dcache l1(smallL1(/*mshrs=*/1, /*missq=*/2), SmId{0});
    // Exhaust the single MSHR.
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1), Cycle{});
    // A write still succeeds (no MSHR needed).
    EXPECT_EQ(
        l1.access(LineAddr{2}, KernelId{0}, true, tgt(2), Cycle{})
            .kind,
        L1Outcome::Kind::WriteQueued);
    // But a full miss queue rejects writes.
    EXPECT_EQ(
        l1.access(LineAddr{3}, KernelId{0}, true, tgt(3), Cycle{})
            .kind,
        L1Outcome::Kind::RsFail);
}

TEST(L1Dcache, RsFailLeavesNoSideEffects)
{
    L1Dcache l1(smallL1(/*mshrs=*/1, /*missq=*/8), SmId{0});
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1), Cycle{});
    const int missq = l1.missQueueSize();
    const L1Outcome out =
        l1.access(LineAddr{2}, KernelId{0}, false, tgt(2), Cycle{});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(l1.missQueueSize(), missq);
    EXPECT_EQ(l1.mshrsInUse(), 1);
    // Retry succeeds after the fill.
    l1.popMissQueue();
    l1.fill(LineAddr{1});
    EXPECT_EQ(
        l1.access(LineAddr{2}, KernelId{0}, false, tgt(2), Cycle{1})
            .kind,
        L1Outcome::Kind::MissToL2);
}

} // namespace
} // namespace ckesim
