/**
 * @file
 * Unit tests for the intra-warp coalescer (Section 2.1: requests from
 * a warp's threads merge into as few line transactions as possible).
 */

#include <gtest/gtest.h>

#include "mem/coalescer.hpp"

namespace ckesim {
namespace {

TEST(Coalescer, FullyCoalescedContiguousFloats)
{
    // 32 threads x 4B consecutive within 128B -> exactly one line.
    std::vector<Addr> addrs;
    for (int t = 0; t < 32; ++t)
        addrs.push_back(Addr{0x1000 + t * 4});
    std::vector<LineAddr> out;
    coalesce(addrs, 128, out);
    EXPECT_EQ(out, std::vector<LineAddr>{LineAddr{0x1000 / 128}});
}

TEST(Coalescer, TwoLinesForFloat2Stride)
{
    // 8B per thread spans two 128B lines.
    std::vector<Addr> addrs;
    for (int t = 0; t < 32; ++t)
        addrs.push_back(Addr{0x2000 + t * 8});
    std::vector<LineAddr> out;
    coalesce(addrs, 128, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Coalescer, FullyDivergentScatter)
{
    std::vector<Addr> addrs;
    for (int t = 0; t < 32; ++t)
        addrs.push_back(Addr{t * 4096});
    std::vector<LineAddr> out;
    coalesce(addrs, 128, out);
    EXPECT_EQ(out.size(), 32u);
}

TEST(Coalescer, PreservesFirstTouchOrder)
{
    std::vector<Addr> addrs = {Addr{128 * 5}, Addr{128 * 2},
                               Addr{128 * 5 + 4}, Addr{128 * 9}};
    std::vector<LineAddr> out;
    coalesce(addrs, 128, out);
    EXPECT_EQ(out, (std::vector<LineAddr>{LineAddr{5}, LineAddr{2},
                                          LineAddr{9}}));
}

TEST(Coalescer, EmptyInput)
{
    std::vector<LineAddr> out = {LineAddr{1}, LineAddr{2},
                                 LineAddr{3}};
    coalesce({}, 128, out);
    EXPECT_TRUE(out.empty());
}

TEST(Coalescer, RespectsLineSize)
{
    std::vector<Addr> addrs = {Addr{0}, Addr{64}, Addr{127},
                               Addr{128}};
    std::vector<LineAddr> out;
    coalesce(addrs, 128, out);
    EXPECT_EQ(out.size(), 2u);
    coalesce(addrs, 64, out);
    EXPECT_EQ(out.size(), 3u);
}

} // namespace
} // namespace ckesim
