/**
 * @file
 * Unit tests for statistic counters and derived metrics.
 */

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace ckesim {
namespace {

TEST(KernelStats, DerivedMetricsHandleZeroDenominators)
{
    KernelStats s;
    EXPECT_DOUBLE_EQ(s.cinstPerMinst(), 0.0);
    EXPECT_DOUBLE_EQ(s.reqPerMinst(), 0.0);
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l1dRsFailRate(), 0.0);
}

TEST(KernelStats, DerivedMetrics)
{
    KernelStats s;
    s.alu_instructions = 30;
    s.sfu_instructions = 5;
    s.smem_instructions = 5;
    s.mem_instructions = 10;
    s.mem_requests = 30;
    s.l1d_accesses = 100;
    s.l1d_misses = 40;
    s.l1d_hits = 60;
    s.l1d_rsfails = 250;
    EXPECT_DOUBLE_EQ(s.cinstPerMinst(), 4.0);
    EXPECT_DOUBLE_EQ(s.reqPerMinst(), 3.0);
    EXPECT_DOUBLE_EQ(s.l1dMissRate(), 0.4);
    EXPECT_DOUBLE_EQ(s.l1dRsFailRate(), 2.5);
}

TEST(KernelStats, AccumulationSumsEveryField)
{
    KernelStats a;
    a.issued_instructions = 10;
    a.mem_requests = 5;
    a.l1d_rsfail_mshr = 2;
    a.tbs_completed = 1;
    KernelStats b = a;
    b += a;
    EXPECT_EQ(b.issued_instructions, 20u);
    EXPECT_EQ(b.mem_requests, 10u);
    EXPECT_EQ(b.l1d_rsfail_mshr, 4u);
    EXPECT_EQ(b.tbs_completed, 2u);
}

TEST(SmStats, LsuStallFraction)
{
    SmStats s;
    EXPECT_DOUBLE_EQ(s.lsuStallFraction(), 0.0);
    s.cycles = 200;
    s.lsu_stall_cycles = 50;
    EXPECT_DOUBLE_EQ(s.lsuStallFraction(), 0.25);
}

TEST(SmStats, Accumulation)
{
    SmStats a;
    a.cycles = 100;
    a.alu_issue_slots = 40;
    SmStats b;
    b.cycles = 50;
    b.alu_issue_slots = 10;
    a += b;
    EXPECT_EQ(a.cycles, 150u);
    EXPECT_EQ(a.alu_issue_slots, 50u);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0, 4.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({7.5}), 7.5);
}

} // namespace
} // namespace ckesim
