/**
 * @file
 * Thread-safety tests — the TSan targets backing the PR's claim that
 * Gpu/Sm/MemorySystem construction is self-contained: two Gpu
 * instances simulating on two std::threads must neither race nor
 * diverge from the serial runs, a parallel sweep stress must match
 * its serial twin, and the work-stealing pool must survive nested
 * run() calls from inside tasks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "metrics/sweep_engine.hpp"

namespace ckesim {
namespace {

constexpr Cycle kCycles{6000};

struct RunDigest
{
    std::uint64_t kernel_fp = 0;
    std::uint64_t sm_fp = 0;
    double ipc = 0.0;
};

RunDigest
simulate(const std::string &a, const std::string &b)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);
    const Workload w = makeWorkload({a, b});
    const SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                       BmiMode::QBMI, MilMode::Dynamic);
    Gpu gpu(cfg, w, spec);
    gpu.run(kCycles);
    RunDigest d;
    d.kernel_fp = fingerprint(gpu.kernelStatsTotal(KernelId{0}),
                              fingerprint(gpu.kernelStatsTotal(KernelId{1})));
    d.sm_fp = fingerprint(gpu.smStatsTotal());
    d.ipc = gpu.ipc(KernelId{0}) + gpu.ipc(KernelId{1});
    gpu.audit();
    return d;
}

TEST(Concurrency, TwoGpusOnTwoThreadsMatchSerialRuns)
{
    // Serial reference runs first.
    const RunDigest ref_a = simulate("bp", "sv");
    const RunDigest ref_b = simulate("ks", "pf");

    // The same two simulations, concurrently. Any shared mutable
    // state inside Gpu/Sm/MemorySystem shows up here as a TSan race
    // or a digest mismatch.
    RunDigest par_a, par_b;
    std::thread ta([&] { par_a = simulate("bp", "sv"); });
    std::thread tb([&] { par_b = simulate("ks", "pf"); });
    ta.join();
    tb.join();

    EXPECT_EQ(ref_a.kernel_fp, par_a.kernel_fp);
    EXPECT_EQ(ref_a.sm_fp, par_a.sm_fp);
    EXPECT_DOUBLE_EQ(ref_a.ipc, par_a.ipc);
    EXPECT_EQ(ref_b.kernel_fp, par_b.kernel_fp);
    EXPECT_EQ(ref_b.sm_fp, par_b.sm_fp);
    EXPECT_DOUBLE_EQ(ref_b.ipc, par_b.ipc);
}

TEST(Concurrency, IdenticalWorkloadsOnManyThreadsStayIdentical)
{
    const RunDigest ref = simulate("bp", "sv");
    std::vector<RunDigest> digests(4);
    std::vector<std::thread> threads;
    for (auto &d : digests)
        threads.emplace_back([&d] { d = simulate("bp", "sv"); });
    for (auto &t : threads)
        t.join();
    for (const RunDigest &d : digests) {
        EXPECT_EQ(ref.kernel_fp, d.kernel_fp);
        EXPECT_EQ(ref.sm_fp, d.sm_fp);
    }
}

TEST(Concurrency, ParallelSweepStressMatchesSerial)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);
    std::vector<SimJob> jobs;
    for (const char *a : {"bp", "sv", "ks"})
        for (NamedScheme s :
             {NamedScheme::WS, NamedScheme::WS_QBMI_DMIL})
            jobs.push_back(SimJob::concurrent(
                cfg, kCycles, makeWorkload({a, "hs"}), s));
    for (const char *n : {"bp", "sv", "ks", "hs", "pf"})
        jobs.push_back(
            SimJob::isolated(cfg, kCycles, findProfile(n)));

    SweepEngine serial(1);
    SweepEngine parallel(4);
    const std::vector<SimResult> a = serial.sweep(jobs);
    const std::vector<SimResult> b = parallel.sweep(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::uint64_t fa =
            a[i].isolated ? fingerprint(a[i].isolated->stats)
                          : fingerprint(a[i].concurrent->stats[0]);
        const std::uint64_t fb =
            b[i].isolated ? fingerprint(b[i].isolated->stats)
                          : fingerprint(b[i].concurrent->stats[0]);
        EXPECT_EQ(fa, fb) << "slot " << i;
    }
}

TEST(Concurrency, EngineIsSafeToShareAcrossCallerThreads)
{
    // Two caller threads hammer one engine with overlapping jobs; the
    // memo cache must serve both without double-execution races.
    SweepEngine engine(2);
    const GpuConfig cfg = makeSmallConfig(2, 2);
    std::atomic<int> failures{0};
    auto worker = [&] {
        for (int i = 0; i < 3; ++i) {
            const auto r =
                engine.isolated(cfg, kCycles, findProfile("sv"));
            if (!(r->ipc > 0.0))
                failures.fetch_add(1);
        }
    };
    std::thread t1(worker), t2(worker);
    t1.join();
    t2.join();
    EXPECT_EQ(failures.load(), 0);
    // 6 submissions, exactly 1 execution.
    EXPECT_EQ(engine.stats().sims_executed, 1u);
    EXPECT_EQ(engine.stats().memo_hits, 5u);
}

TEST(Concurrency, PoolRunsNestedBatches)
{
    WorkStealingPool pool(3);
    std::atomic<int> outer{0}, inner{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([&] {
            // Nested batch issued from inside a pool task: the
            // caller-participation loop must keep making progress.
            std::vector<std::function<void()>> sub;
            for (int j = 0; j < 4; ++j)
                sub.push_back([&] { inner.fetch_add(1); });
            pool.run(std::move(sub));
            outer.fetch_add(1);
        });
    }
    pool.run(std::move(tasks));
    EXPECT_EQ(outer.load(), 8);
    EXPECT_EQ(inner.load(), 32);
}

TEST(Concurrency, ZeroWorkerPoolRunsInline)
{
    WorkStealingPool pool(0);
    EXPECT_EQ(pool.workers(), 0);
    int ran = 0;
    pool.run({[&] { ++ran; }, [&] { ++ran; }});
    EXPECT_EQ(ran, 2);
}

} // namespace
} // namespace ckesim
