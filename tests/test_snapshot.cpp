/**
 * @file
 * Snapshot layer coverage: the typed binary codec (tags, sections,
 * fingerprints, malformed-stream rejection) and the Gpu-level
 * guarantee that restore(snapshot(t)) + run(n) is bit-identical to
 * running straight through t+n, including scheme state, RNG streams
 * and the fault injector.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "sim/check.hpp"
#include "sim/config.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {
namespace {

// ---- codec round-trips -------------------------------------------------

TEST(SnapshotCodec, RoundTripsEveryScalarType)
{
    SnapshotWriter w;
    w.section("test");
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.boolean(true);
    w.boolean(false);
    w.f64(3.141592653589793);
    w.str("hello");
    w.id(KernelId{2});
    w.id(kInvalidKernel);
    w.unit(Cycle{12345});
    w.vecU64({1, 2, 3});
    w.vecBool({true, false, true});

    SnapshotReader r(w.bytes());
    r.section("test");
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.f64(), 3.141592653589793);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.id<KernelId>(), KernelId{2});
    EXPECT_EQ(r.id<KernelId>(), kInvalidKernel);
    EXPECT_EQ(r.unit<Cycle>(), Cycle{12345});
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(r.vecBool(), (std::vector<bool>{true, false, true}));
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotCodec, DoublesRoundTripByBitPattern)
{
    // -0.0 and NaN payloads must survive exactly; equality compares
    // bits, not values.
    const double neg_zero = -0.0;
    SnapshotWriter w;
    w.f64(neg_zero);
    SnapshotReader r(w.bytes());
    const double back = r.f64();
    EXPECT_EQ(std::memcmp(&neg_zero, &back, sizeof back), 0);
}

TEST(SnapshotCodec, TagMismatchThrows)
{
    SnapshotWriter w;
    w.u64(7);
    SnapshotReader r(w.bytes());
    EXPECT_THROW(r.i64(), SimError); // wrong tag
}

TEST(SnapshotCodec, SectionNameMismatchThrows)
{
    SnapshotWriter w;
    w.section("gpu");
    SnapshotReader r(w.bytes());
    EXPECT_THROW(r.section("sm"), SimError);
}

TEST(SnapshotCodec, TruncatedStreamThrows)
{
    SnapshotWriter w;
    w.u64(1);
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes.resize(bytes.size() - 3);
    SnapshotReader r(bytes);
    EXPECT_THROW(r.u64(), SimError);
}

TEST(SnapshotCodec, FingerprintTracksContent)
{
    SnapshotWriter a;
    a.u64(1);
    SnapshotWriter b;
    b.u64(1);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    SnapshotWriter c;
    c.u64(2);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---- Gpu snapshot/restore ----------------------------------------------

GpuConfig
snapCfg()
{
    return makeSmallConfig(2, 2);
}

Workload
mixedPair()
{
    return makeWorkload({"bp", "sv"});
}

/** Bitwise-equal final state + metrics of two machines. */
void
expectIdentical(const Gpu &a, const Gpu &b)
{
    const GpuSnapshot sa = a.snapshot();
    const GpuSnapshot sb = b.snapshot();
    EXPECT_EQ(sa.fingerprint, sb.fingerprint);
    EXPECT_EQ(sa.cycle, sb.cycle);
    EXPECT_EQ(sa.bytes, sb.bytes);
    for (int k = 0; k < a.numKernels(); ++k) {
        const double ia = a.ipc(KernelId{k});
        const double ib = b.ipc(KernelId{k});
        EXPECT_EQ(std::memcmp(&ia, &ib, sizeof ia), 0)
            << "ipc of kernel " << k << " diverged";
    }
}

TEST(GpuSnapshot, RestoreThenRunMatchesStraightRun)
{
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::QBMI,
                                       MilMode::Dynamic);
    Gpu straight(snapCfg(), mixedPair(), spec);
    straight.run(Cycle{3000});
    const GpuSnapshot ckpt = straight.snapshot();
    straight.run(Cycle{3000});

    Gpu resumed(snapCfg(), mixedPair(), spec);
    resumed.restore(ckpt);
    resumed.run(Cycle{3000});
    expectIdentical(straight, resumed);
}

TEST(GpuSnapshot, SnapshotIsSideEffectFree)
{
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    Gpu observed(snapCfg(), mixedPair(), spec);
    Gpu plain(snapCfg(), mixedPair(), spec);
    for (int i = 0; i < 4; ++i) {
        observed.run(Cycle{700});
        (void)observed.snapshot(); // must not perturb anything
        plain.run(Cycle{700});
    }
    expectIdentical(observed, plain);
}

TEST(GpuSnapshot, AutoCheckpointFollowsTheConfiguredCadence)
{
    GpuConfig cfg = snapCfg();
    cfg.integrity.checkpoint_interval = 1000;
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(cfg, mixedPair(), spec);
    EXPECT_EQ(gpu.lastCheckpoint(), nullptr);
    gpu.run(Cycle{2500});
    ASSERT_NE(gpu.lastCheckpoint(), nullptr);
    // Checkpoint is taken before the cycle executes: the newest one
    // covers cycles [0, 2000).
    EXPECT_EQ(gpu.lastCheckpoint()->cycle, Cycle{2000});
    EXPECT_EQ(gpu.lastCheckpoint()->version, kSnapshotFormatVersion);
}

TEST(GpuSnapshot, RestoreRejectsWrongVersion)
{
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(snapCfg(), mixedPair(), spec);
    gpu.run(Cycle{500});
    GpuSnapshot snap = gpu.snapshot();
    snap.version += 1;
    try {
        gpu.restore(snap);
        FAIL() << "restore accepted a future format version";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Snapshot") << e.what();
    }
}

TEST(GpuSnapshot, RestoreRejectsForeignConfig)
{
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(snapCfg(), mixedPair(), spec);
    gpu.run(Cycle{500});
    const GpuSnapshot snap = gpu.snapshot();

    GpuConfig other = snapCfg();
    other.seed += 1; // different machine identity
    Gpu target(other, mixedPair(), spec);
    EXPECT_THROW(target.restore(snap), SimError);
}

TEST(GpuSnapshot, RestoreRejectsCorruptedPayload)
{
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(snapCfg(), mixedPair(), spec);
    gpu.run(Cycle{500});
    GpuSnapshot snap = gpu.snapshot();
    snap.bytes[snap.bytes.size() / 2] ^= 0x01; // single bit flip
    EXPECT_THROW(gpu.restore(snap), SimError);
}

TEST(GpuSnapshot, FaultInjectorBudgetsSurviveRestore)
{
    // A budgeted fault that fired before the checkpoint must not fire
    // again after restore: the consumed budget is part of the state.
    SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                 BmiMode::None, MilMode::None);
    spec.faults.push_back({FaultKind::DelayFill, Cycle{100},
                           Cycle{4000}, -1, 32, Cycle{150}});
    Gpu straight(snapCfg(), mixedPair(), spec);
    straight.run(Cycle{2000});
    const GpuSnapshot ckpt = straight.snapshot();
    straight.run(Cycle{2000});

    Gpu resumed(snapCfg(), mixedPair(), spec);
    resumed.restore(ckpt);
    resumed.run(Cycle{2000});
    expectIdentical(straight, resumed);
    EXPECT_EQ(
        straight.faultInjector().firedCount(FaultKind::DelayFill),
        resumed.faultInjector().firedCount(FaultKind::DelayFill));
}

} // namespace
} // namespace ckesim
