/**
 * @file
 * Fault-injection proving ground: every injected hard fault in the
 * memory pipeline (dropped L1D fills, a jammed crossbar, frozen DRAM
 * channels) must be detected — by the forward-progress watchdog or by
 * the end-of-run conservation audit — within 10k cycles and reported
 * with machine context. Recoverable faults (delayed fills, transient
 * stalls, forced reservation failures) must degrade, not corrupt.
 */

#include <gtest/gtest.h>

#include <string>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "metrics/runner.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"

namespace ckesim {
namespace {

GpuConfig
faultCfg()
{
    GpuConfig cfg = makeSmallConfig(2, 2);
    // Bound the audit drain so leak tests fail fast.
    cfg.integrity.audit_drain_limit = 3000;
    return cfg;
}

/** Memory-heavy pair: deadlocks bite quickly. */
Workload
memWorkload()
{
    return makeWorkload({"sv", "ks"});
}

SchemeSpec
spatialSpec()
{
    return makeScheme(PartitionScheme::Spatial, BmiMode::None,
                      MilMode::None);
}

// ---- FaultInjector unit behaviour --------------------------------------

TEST(FaultInjector, RespectsWindowTargetAndBudget)
{
    FaultInjector inj({{FaultKind::DropFill, Cycle{100}, Cycle{200}, 1, 2, Cycle{}}});
    EXPECT_FALSE(inj.dropFill(SmId{1}, Cycle{99}));   // before window
    EXPECT_FALSE(inj.dropFill(SmId{0}, Cycle{150}));  // wrong SM
    EXPECT_TRUE(inj.dropFill(SmId{1}, Cycle{150}));   // budget 2 -> 1
    EXPECT_TRUE(inj.dropFill(SmId{1}, Cycle{151}));   // budget 1 -> 0
    EXPECT_FALSE(inj.dropFill(SmId{1}, Cycle{152}));  // exhausted
    EXPECT_FALSE(inj.dropFill(SmId{1}, Cycle{200}));  // window end is exclusive
    EXPECT_EQ(inj.firedCount(FaultKind::DropFill), 2u);
    EXPECT_TRUE(inj.anyFired());
}

TEST(FaultInjector, WildcardTargetHitsEveryInstance)
{
    FaultInjector inj(
        {{FaultKind::StallCrossbar, Cycle{0}, kNeverCycle, -1, -1, Cycle{}}});
    EXPECT_TRUE(inj.stallCrossbarPort(0, Cycle{5}));
    EXPECT_TRUE(inj.stallCrossbarPort(3, Cycle{5}));
    EXPECT_FALSE(inj.dramFrozen(0, Cycle{5})); // different kind
}

TEST(FaultInjector, FillDelayReturnsConfiguredDelay)
{
    FaultInjector inj(
        {{FaultKind::DelayFill, Cycle{0}, kNeverCycle, -1, -1, Cycle{75}}});
    EXPECT_EQ(inj.fillDelay(SmId{0}, Cycle{10}), Cycle{75});
    FaultInjector none;
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(none.fillDelay(SmId{0}, Cycle{10}), Cycle{});
    EXPECT_FALSE(none.anyFired());
}

// ---- hard faults: the watchdog must fire with context ------------------

/** Run @p spec expecting a watchdog trip; return the error. */
SimError
expectWatchdog(const SchemeSpec &spec, Cycle run_cycles = Cycle{16000})
{
    Gpu gpu(faultCfg(), memWorkload(), spec);
    try {
        gpu.run(run_cycles);
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Watchdog") << e.what();
        return e;
    }
    ADD_FAILURE() << "watchdog never fired";
    return SimError("none", "", SimCtx{}, "");
}

TEST(FaultDetection, DroppedL1FillsTripTheWatchdogWithin10k)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::DropFill, Cycle{0}, kNeverCycle, -1, -1, Cycle{}});
    const SimError e = expectWatchdog(spec);
    // Detection budget: the fault is active from cycle 0.
    EXPECT_LE(e.ctx().cycle, Cycle{10000});
    // Diagnostics carry per-SM occupancies and the memsys ledger.
    const std::string d = e.detail();
    EXPECT_NE(d.find("sm 0:"), std::string::npos) << d;
    EXPECT_NE(d.find("sm 1:"), std::string::npos) << d;
    EXPECT_NE(d.find("l1_mshr="), std::string::npos) << d;
    EXPECT_NE(d.find("memsys"), std::string::npos) << d;
    EXPECT_NE(d.find("mil="), std::string::npos) << d;
    EXPECT_NE(d.find("quota="), std::string::npos) << d;
}

TEST(FaultDetection, JammedCrossbarTripsTheWatchdogWithin10k)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::StallCrossbar, Cycle{0}, kNeverCycle, -1, -1, Cycle{}});
    const SimError e = expectWatchdog(spec);
    EXPECT_LE(e.ctx().cycle, Cycle{10000});
    EXPECT_NE(e.detail().find("l1_missq="), std::string::npos)
        << e.detail();
}

TEST(FaultDetection, FrozenDramChannelsTripTheWatchdogWithin10k)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::FreezeDram, Cycle{0}, kNeverCycle, -1, -1, Cycle{}});
    const SimError e = expectWatchdog(spec);
    EXPECT_LE(e.ctx().cycle, Cycle{10000});
}

// ---- hard faults without deadlock: the audit must report the leak ------

TEST(FaultDetection, PartialFillDropFailsTheConservationAudit)
{
    // Two dropped fills leak two L1 MSHRs but the machine keeps
    // running on other warps — only the audit can prove the loss.
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back({FaultKind::DropFill, Cycle{500}, Cycle{600}, 0, 2, Cycle{}});
    Gpu gpu(faultCfg(), memWorkload(), spec);
    gpu.run(Cycle{4000});
    EXPECT_EQ(gpu.faultInjector().firedCount(FaultKind::DropFill), 2u);
    try {
        gpu.audit();
        FAIL() << "audit passed despite dropped fills";
    } catch (const SimError &e) {
        EXPECT_EQ(e.ctx().sm_id, SmId{0}); // the targeted SM is named
        EXPECT_NE(std::string(e.what()).find("mshr"),
                  std::string::npos)
            << e.what();
    }
}

// ---- recoverable faults: degrade without corruption --------------------

TEST(FaultRecovery, DelayedFillsCompleteAndPassTheAudit)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::DelayFill, Cycle{0}, kNeverCycle, -1, -1, Cycle{200}});
    Gpu gpu(faultCfg(), memWorkload(), spec);
    EXPECT_NO_THROW(gpu.run(Cycle{8000}));
    EXPECT_GT(gpu.faultInjector().firedCount(FaultKind::DelayFill), 0u);
    EXPECT_NO_THROW(gpu.audit());
}

TEST(FaultRecovery, TransientCrossbarStallRecovers)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back({FaultKind::StallCrossbar, Cycle{1000}, Cycle{1400}, -1, -1, Cycle{}});
    Gpu gpu(faultCfg(), memWorkload(), spec);
    EXPECT_NO_THROW(gpu.run(Cycle{8000}));
    EXPECT_NO_THROW(gpu.audit());
}

TEST(FaultRecovery, ForcedRsFailsStallButRetire)
{
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::ForceRsFail, Cycle{100}, kNeverCycle, 0, 500, Cycle{}});
    Gpu gpu(faultCfg(), memWorkload(), spec);
    EXPECT_NO_THROW(gpu.run(Cycle{8000}));
    EXPECT_EQ(gpu.faultInjector().firedCount(FaultKind::ForceRsFail),
              500u);
    EXPECT_GT(gpu.smStatsTotal().lsu_stall_cycles, 500u);
    EXPECT_NO_THROW(gpu.audit());
}

// ---- clean runs: the audit must pass ----------------------------------

TEST(Audit, CleanConcurrentRunsDrainCompletely)
{
    // Spans compute-heavy, memory-heavy and mixed pairs; Runner::run
    // audits internally after collecting metrics.
    Runner runner(faultCfg(), Cycle{8000});
    const Workload mixed = makeWorkload({"bp", "sv"});
    EXPECT_NO_THROW(runner.run(mixed, NamedScheme::WS_QBMI_DMIL));
    EXPECT_NO_THROW(runner.run(memWorkload(), NamedScheme::WS));
    EXPECT_NO_THROW(runner.run(mixed, NamedScheme::SMK_PW));
}

TEST(Audit, ExplicitAuditPassesAndPreservesMetrics)
{
    Gpu gpu(faultCfg(), memWorkload(), spatialSpec());
    gpu.run(Cycle{5000});
    const Cycle measured = gpu.measuredCycles();
    const double ipc0 = gpu.ipc(KernelId{0});
    EXPECT_NO_THROW(gpu.audit());
    // Audit drain is bookkeeping, not simulated time.
    EXPECT_EQ(gpu.measuredCycles(), measured);
    EXPECT_DOUBLE_EQ(gpu.ipc(KernelId{0}), ipc0);
    EXPECT_EQ(gpu.memsys().injectedReads(),
              gpu.memsys().deliveredFills());
    EXPECT_EQ(gpu.memsys().inflightReads(), 0u);
}

// ---- watchdog must stay quiet on healthy and idle machines -------------

TEST(Watchdog, DoesNotFireOnHealthyRuns)
{
    Gpu gpu(faultCfg(), memWorkload(), spatialSpec());
    EXPECT_NO_THROW(gpu.run(Cycle{20000}));
}

TEST(Watchdog, DoesNotFireOnAnIdleMachine)
{
    // Zero TB quotas: nothing is resident or in flight, so a silent
    // machine is idle, not hung.
    Gpu gpu(faultCfg(), memWorkload(), spatialSpec());
    for (int s = 0; s < gpu.numSms(); ++s)
        for (int k = 0; k < gpu.numKernels(); ++k)
            gpu.sm(s).setTbQuota(KernelId{k}, 0);
    EXPECT_NO_THROW(gpu.run(Cycle{20000}));
}

TEST(Watchdog, DoesNotFireOnComputeOnlyLatencyStalls)
{
    // Regression: a single warp of pure SFU work with a 2000-cycle
    // dependent-issue latency makes no progress for stretches far
    // beyond the watchdog timeout — with zero memory requests in
    // flight. The watchdog gates on memory occupancy (its only
    // legitimate hang mode is a stuck memory pipeline), so this must
    // be treated as a latency stall, not a hang.
    KernelProfile prof;
    prof.name = "compute_only";
    prof.threads_per_tb = 32; // one warp per TB
    prof.cinst_per_minst = 1e9; // no memory instructions at all
    prof.sfu_fraction = 1.0;
    prof.write_fraction = 0.0;
    prof.instrs_per_warp = 64;
    Workload wl;
    wl.kernels = {&prof};

    GpuConfig cfg = makeSmallConfig(1, 1);
    cfg.sm.sfu_latency = 2000;
    cfg.integrity.check_interval = 64;
    cfg.integrity.watchdog_timeout = 256;
    const SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(cfg, wl, spec);
    gpu.sm(0).setTbQuota(KernelId{0}, 1);
    EXPECT_NO_THROW(gpu.run(Cycle{30000}));
    EXPECT_FALSE(gpu.memoryInFlight());
    EXPECT_GT(gpu.kernelStatsTotal(KernelId{0}).issued_instructions,
              0u);
}

TEST(Watchdog, StillFiresWhenMemoryIsActuallyStuck)
{
    // The memory-occupancy gate must not swallow real hangs: a
    // dropped fill leaves an L1 MSHR allocated forever, so
    // memoryInFlight() stays true and the watchdog still trips on
    // the same tightened timeouts as the compute-only test above.
    GpuConfig cfg = faultCfg();
    cfg.integrity.check_interval = 64;
    cfg.integrity.watchdog_timeout = 256;
    SchemeSpec spec = spatialSpec();
    spec.faults.push_back(
        {FaultKind::DropFill, Cycle{0}, kNeverCycle, -1, -1, Cycle{}});
    Gpu gpu(cfg, memWorkload(), spec);
    try {
        gpu.run(Cycle{16000});
        FAIL() << "watchdog never fired";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Watchdog") << e.what();
        EXPECT_TRUE(gpu.memoryInFlight());
    }
}

} // namespace
} // namespace ckesim
