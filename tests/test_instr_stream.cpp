/**
 * @file
 * Unit tests for the procedural instruction stream: budget, mix
 * ratios and determinism.
 */

#include <gtest/gtest.h>

#include "kernels/instr_stream.hpp"

namespace ckesim {
namespace {

struct MixCounts
{
    int alu = 0, sfu = 0, smem = 0, load = 0, store = 0;
    int total() const { return alu + sfu + smem + load + store; }
    int compute() const { return alu + sfu + smem; }
    int mem() const { return load + store; }
};

MixCounts
runStream(const KernelProfile &p, std::uint64_t seed = 1)
{
    InstrStream s;
    s.reset(p, seed);
    MixCounts m;
    while (!s.done()) {
        switch (s.advance()) {
          case InstrKind::Alu:
            ++m.alu;
            break;
          case InstrKind::Sfu:
            ++m.sfu;
            break;
          case InstrKind::Smem:
            ++m.smem;
            break;
          case InstrKind::MemLoad:
            ++m.load;
            break;
          case InstrKind::MemStore:
            ++m.store;
            break;
        }
    }
    return m;
}

TEST(InstrStream, ExecutesExactBudget)
{
    const KernelProfile &p = findProfile("bp");
    const MixCounts m = runStream(p);
    EXPECT_EQ(m.total(), p.instrs_per_warp);
}

TEST(InstrStream, CinstPerMinstNearTarget)
{
    for (const char *name : {"cp", "hs", "3m", "ks", "cd"}) {
        const KernelProfile &p = findProfile(name);
        const MixCounts m = runStream(p);
        ASSERT_GT(m.mem(), 0) << name;
        const double ratio =
            static_cast<double>(m.compute()) / m.mem();
        EXPECT_NEAR(ratio, p.cinst_per_minst,
                    0.25 * p.cinst_per_minst + 0.3)
            << name;
    }
}

TEST(InstrStream, WriteFractionNearTarget)
{
    const KernelProfile &p = findProfile("bp"); // write_fraction 0.2
    MixCounts total;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const MixCounts m = runStream(p, seed);
        total.load += m.load;
        total.store += m.store;
    }
    const double wf =
        static_cast<double>(total.store) /
        (total.store + total.load);
    EXPECT_NEAR(wf, p.write_fraction, 0.05);
}

TEST(InstrStream, SfuAndSmemFractions)
{
    const KernelProfile &p = findProfile("cp"); // sfu .30, smem .30
    MixCounts total;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const MixCounts m = runStream(p, seed);
        total.alu += m.alu;
        total.sfu += m.sfu;
        total.smem += m.smem;
    }
    const double c = total.alu + total.sfu + total.smem;
    EXPECT_NEAR(total.sfu / c, p.sfu_fraction, 0.05);
    EXPECT_NEAR(total.smem / c, p.smem_fraction, 0.05);
}

TEST(InstrStream, DeterministicForSeed)
{
    const KernelProfile &p = findProfile("sv");
    InstrStream a, b;
    a.reset(p, 99);
    b.reset(p, 99);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(a.advance(), b.advance());
}

TEST(InstrStream, PeekMatchesAdvance)
{
    const KernelProfile &p = findProfile("ks");
    InstrStream s;
    s.reset(p, 3);
    for (int i = 0; i < 200; ++i) {
        const InstrKind peeked = s.peek();
        ASSERT_EQ(s.advance(), peeked);
    }
}

TEST(InstrStream, ResetRestarts)
{
    const KernelProfile &p = findProfile("bs");
    InstrStream s;
    s.reset(p, 5);
    while (!s.done())
        s.advance();
    EXPECT_EQ(s.executed(), p.instrs_per_warp);
    s.reset(p, 5);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.executed(), 0);
}

TEST(InstrStream, IsGlobalMemHelper)
{
    EXPECT_TRUE(isGlobalMem(InstrKind::MemLoad));
    EXPECT_TRUE(isGlobalMem(InstrKind::MemStore));
    EXPECT_FALSE(isGlobalMem(InstrKind::Alu));
    EXPECT_FALSE(isGlobalMem(InstrKind::Smem));
    EXPECT_FALSE(isGlobalMem(InstrKind::Sfu));
}

} // namespace
} // namespace ckesim
