/**
 * @file
 * Unit tests for address math: line extraction, xor set indexing and
 * the chunked partition interleave.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/address.hpp"

namespace ckesim {
namespace {

TEST(Address, LineBaseAndNumber)
{
    EXPECT_EQ(lineBase(Addr{0x1234}, 128), Addr{0x1200});
    EXPECT_EQ(lineBase(Addr{0x1200}, 128), Addr{0x1200});
    EXPECT_EQ(toLineAddr(Addr{0x1234}, 128), LineAddr{0x1234 / 128});
    EXPECT_EQ(toLineAddr(Addr{255}, 64), LineAddr{3});
}

TEST(Address, LineByteBaseRoundTrip)
{
    // lineByteBase is the inverse of toLineAddr on aligned addresses.
    for (std::uint64_t n = 0; n < 4096; n += 7) {
        const LineAddr line{n};
        const Addr base = lineByteBase(line, 128);
        EXPECT_EQ(base % 128, 0u);
        EXPECT_EQ(toLineAddr(base, 128), line);
    }
}

TEST(Address, XorIndexInRange)
{
    for (std::uint64_t n = 0; n < 100000; n += 37) {
        const int set = xorSetIndex(LineAddr{n}, 64);
        ASSERT_GE(set, 0);
        ASSERT_LT(set, 64);
    }
}

TEST(Address, XorIndexSpreadsSequentialLines)
{
    // Sequential lines must cover all sets evenly.
    std::vector<int> counts(64, 0);
    for (std::uint64_t n = 0; n < 6400; ++n)
        ++counts[static_cast<std::size_t>(
            xorSetIndex(LineAddr{n}, 64))];
    for (int c : counts)
        EXPECT_EQ(c, 100);
}

TEST(Address, XorIndexBreaksPowerOfTwoStrides)
{
    // A large power-of-two stride should not camp on one set.
    std::vector<int> counts(64, 0);
    for (int i = 0; i < 640; ++i) {
        const LineAddr line{static_cast<std::uint64_t>(i) << 10};
        ++counts[static_cast<std::size_t>(xorSetIndex(line, 64))];
    }
    int max_count = 0;
    for (int c : counts)
        max_count = std::max(max_count, c);
    EXPECT_LT(max_count, 64); // far below all-in-one-set (640)
}

TEST(Address, PartitionInRangeAndChunked)
{
    for (std::uint64_t n = 0; n < 4096; ++n) {
        const LineAddr line{n};
        const int p = linePartition(line, 16);
        ASSERT_GE(p, 0);
        ASSERT_LT(p, 16);
        // Whole chunks map to one partition.
        EXPECT_EQ(p, linePartition(
                         line - line % kPartitionChunkLines, 16));
    }
}

TEST(Address, PartitionBalanced)
{
    std::vector<int> counts(16, 0);
    const int chunks = 1600;
    for (int c = 0; c < chunks; ++c) {
        const LineAddr line{static_cast<std::uint64_t>(c) *
                            kPartitionChunkLines};
        ++counts[static_cast<std::size_t>(linePartition(line, 16))];
    }
    for (int c : counts) {
        EXPECT_GT(c, chunks / 16 / 2);
        EXPECT_LT(c, chunks / 16 * 2);
    }
}

} // namespace
} // namespace ckesim
