/**
 * @file
 * Negative-compilation probes for the strong types: each CKESIM_CF_*
 * macro selects one ill-formed snippet that MUST fail to compile.
 * CMake builds one target per macro, excluded from ALL, and ctest
 * asserts the build fails (WILL_FAIL). With no macro defined this
 * file is a well-formed control that must compile — it proves a
 * probe's failure comes from the type system, not a broken harness.
 */

#include "mem/address.hpp"
#include "sim/types.hpp"

namespace ckesim {

// A signature mirroring L1Dcache::access / IssueController calls.
inline int
chargeAccess(KernelId kernel, WarpSlot slot)
{
    return kernel.get() + slot.get();
}

inline Addr
firstByte(LineAddr line)
{
    return lineByteBase(line, 128);
}

inline int
probe()
{
    const KernelId k{1};
    const WarpSlot w{3};
    const Addr byte_addr{0x1000};
    const LineAddr line{32};
    const Cycle now{100};

#if defined(CKESIM_CF_SWAP_KERNEL_WARP)
    // Argument swap: a WarpSlot is not a KernelId and vice versa.
    return chargeAccess(w, k);
#elif defined(CKESIM_CF_BYTE_AS_LINE)
    // A byte address must pass through toLineAddr first.
    return static_cast<int>(firstByte(byte_addr).get());
#elif defined(CKESIM_CF_LINE_AS_BYTE)
    // A line number is not a byte address.
    return static_cast<int>(toLineAddr(line, 128).get());
#elif defined(CKESIM_CF_CROSS_UNIT_ARITH)
    // Cycles and addresses have different dimensions.
    return static_cast<int>((now + byte_addr).get());
#elif defined(CKESIM_CF_IMPLICIT_FROM_INT)
    // Construction from a raw int must be explicit.
    const KernelId implicit_kernel = 2;
    return implicit_kernel.get();
#elif defined(CKESIM_CF_COMPARE_WITH_INT)
    // No heterogeneous comparisons: write now > Cycle{0}.
    return now > 0 ? 1 : 0;
#else
    // Control build: the same values used correctly.
    return chargeAccess(k, w) +
           static_cast<int>(firstByte(line).get()) +
           static_cast<int>((now + Cycle{1}).get());
#endif
}

} // namespace ckesim

int
main()
{
    return ckesim::probe() == 0 ? 1 : 0;
}
