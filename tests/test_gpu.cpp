/**
 * @file
 * Unit tests for the top-level Gpu orchestration: partition schemes,
 * dynamic Warped-Slicer profiling, UCP repartitioning and stats
 * aggregation.
 */

#include <gtest/gtest.h>

#include "gpu.hpp"

namespace ckesim {
namespace {

GpuConfig
cfg()
{
    return makeSmallConfig(4, 4);
}

Workload
wl(const char *a, const char *b)
{
    Workload w;
    w.kernels = {&findProfile(a), &findProfile(b)};
    return w;
}

TEST(Gpu, LeftoverQuotasApplied)
{
    Gpu gpu(cfg(), wl("bp", "sv"),
            makeScheme(PartitionScheme::Leftover, BmiMode::None,
                       MilMode::None));
    EXPECT_EQ(gpu.sm(0).tbQuota(KernelId{0}),
              findProfile("bp").maxTbsPerSm(cfg().sm));
    EXPECT_EQ(gpu.sm(0).tbQuota(KernelId{1}), 0);
}

TEST(Gpu, SpatialSplitsSms)
{
    Gpu gpu(cfg(), wl("bp", "sv"),
            makeScheme(PartitionScheme::Spatial, BmiMode::None,
                       MilMode::None));
    EXPECT_GT(gpu.sm(0).tbQuota(KernelId{0}), 0);
    EXPECT_EQ(gpu.sm(0).tbQuota(KernelId{1}), 0);
    EXPECT_EQ(gpu.sm(3).tbQuota(KernelId{0}), 0);
    EXPECT_GT(gpu.sm(3).tbQuota(KernelId{1}), 0);
}

TEST(Gpu, SmkDrfQuotasBroadcast)
{
    Gpu gpu(cfg(), wl("bp", "sv"),
            makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                       MilMode::None));
    ASSERT_EQ(gpu.chosenPartition().size(), 2u);
    for (int s = 0; s < gpu.numSms(); ++s) {
        EXPECT_EQ(gpu.sm(s).tbQuota(KernelId{0}), gpu.chosenPartition()[0]);
        EXPECT_EQ(gpu.sm(s).tbQuota(KernelId{1}), gpu.chosenPartition()[1]);
    }
}

TEST(Gpu, DynamicWsProfilesThenPartitions)
{
    SchemeSpec spec = makeScheme(PartitionScheme::WarpedSlicer,
                                 BmiMode::None, MilMode::None);
    spec.ws_profile_window = Cycle{3000};
    Gpu gpu(cfg(), wl("bp", "sv"), spec);

    // During profiling each SM runs a single kernel.
    for (int s = 0; s < gpu.numSms(); ++s) {
        const bool single = (gpu.sm(s).tbQuota(KernelId{0}) == 0) !=
                            (gpu.sm(s).tbQuota(KernelId{1}) == 0);
        EXPECT_TRUE(single) << "sm " << s;
    }

    gpu.run(Cycle{8000});

    // After the window: a feasible shared partition on every SM.
    ASSERT_EQ(gpu.chosenPartition().size(), 2u);
    EXPECT_GE(gpu.chosenPartition()[0], 1);
    EXPECT_GE(gpu.chosenPartition()[1], 1);
    EXPECT_TRUE(partitionFits(gpu.chosenPartition(),
                              wl("bp", "sv").kernels, cfg().sm));
    EXPECT_GT(gpu.theoreticalWs(), 0.5);
    // Measurement phase excludes the window.
    EXPECT_EQ(gpu.measuredCycles(), Cycle{8000 - 3000});
}

TEST(Gpu, OracleCurvesSkipProfiling)
{
    SchemeSpec spec = makeScheme(PartitionScheme::WarpedSlicer,
                                 BmiMode::None, MilMode::None);
    ScalabilityCurve linear, sat;
    for (int t = 1; t <= 12; ++t)
        linear.addPoint(t, 1.0 * t);
    for (int t = 1; t <= 16; ++t)
        sat.addPoint(t, std::min(t, 4) * 1.0);
    spec.oracle_curves = {linear, sat};
    Gpu gpu(cfg(), wl("bp", "sv"), spec);
    // Partition decided at construction; both kernels resident.
    EXPECT_GE(gpu.sm(0).tbQuota(KernelId{0}), 1);
    EXPECT_GE(gpu.sm(0).tbQuota(KernelId{1}), 1);
    gpu.run(Cycle{2000});
    EXPECT_EQ(gpu.measuredCycles(), Cycle{2000});
}

TEST(Gpu, IpcAggregatesAcrossSms)
{
    Gpu gpu(cfg(), wl("bp", "sv"),
            makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                       MilMode::None));
    gpu.run(Cycle{4000});
    std::uint64_t instrs = 0;
    for (int s = 0; s < gpu.numSms(); ++s)
        instrs += gpu.sm(s).kernelStats(KernelId{0}).issued_instructions;
    EXPECT_NEAR(gpu.ipc(KernelId{0}),
                static_cast<double>(instrs) / 4000.0, 1e-9);
    EXPECT_EQ(gpu.kernelStatsTotal(KernelId{0}).issued_instructions, instrs);
}

TEST(Gpu, UcpAppliesWayRestrictions)
{
    SchemeSpec spec = makeScheme(PartitionScheme::SmkDrf,
                                 BmiMode::None, MilMode::None);
    spec.ucp = true;
    spec.ucp_interval = Cycle{2000};
    Gpu gpu(cfg(), wl("bp", "ks"), spec);
    gpu.run(Cycle{6000});
    // After repartitioning, victim choice for the two kernels must be
    // confined to disjoint way ranges; verify via fresh allocations.
    CacheArray &tags = gpu.sm(0).l1d().tags();
    VictimResult v0 = tags.chooseVictim(LineAddr{0xdead00}, KernelId{0});
    VictimResult v1 = tags.chooseVictim(LineAddr{0xdead00}, KernelId{1});
    ASSERT_TRUE(v0.ok);
    ASSERT_TRUE(v1.ok);
    EXPECT_NE(v0.way, v1.way);
}

TEST(Gpu, SeriesAttachAggregatesAllSms)
{
    Gpu gpu(cfg(), wl("bp", "sv"),
            makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                       MilMode::None));
    TimeSeries issue(Cycle{1000}), l1d(Cycle{1000});
    gpu.attachSeries(KernelId{0}, &issue, &l1d);
    gpu.run(Cycle{3000});
    std::uint64_t recorded = 0;
    for (std::uint64_t b : issue.bins())
        recorded += b;
    EXPECT_EQ(recorded,
              gpu.kernelStatsTotal(KernelId{0}).issued_instructions);
}

TEST(Gpu, SingleKernelWorkloads)
{
    Workload w;
    w.kernels = {&findProfile("cp")};
    Gpu gpu(cfg(), w,
            makeScheme(PartitionScheme::Leftover, BmiMode::None,
                       MilMode::None));
    gpu.run(Cycle{3000});
    EXPECT_GT(gpu.ipc(KernelId{0}), 0.5);
}

TEST(Gpu, ThreeKernelWorkload)
{
    Workload w;
    w.kernels = {&findProfile("bp"), &findProfile("sv"),
                 &findProfile("pf")};
    SchemeSpec spec = makeScheme(PartitionScheme::WarpedSlicer,
                                 BmiMode::QBMI, MilMode::Dynamic);
    spec.ws_profile_window = Cycle{2000};
    Gpu gpu(cfg(), w, spec);
    gpu.run(Cycle{8000});
    ASSERT_EQ(gpu.chosenPartition().size(), 3u);
    for (int k = 0; k < 3; ++k)
        EXPECT_GT(gpu.ipc(KernelId{k}), 0.0) << k;
}

} // namespace
} // namespace ckesim
