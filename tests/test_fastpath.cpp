/**
 * @file
 * Fast-path coverage (sim/clockable.hpp + Gpu::setFastForward):
 * per-component nextEventCycle contract checks (horizon never in the
 * past, kNeverCycle iff genuinely idle, monotone while unstimulated)
 * and strict-vs-fast whole-machine equivalence — snapshot
 * fingerprints, per-kernel IPC bit patterns and TimeSeries bins must
 * match exactly for every scheme family. The randomized sweep over
 * profile pairs x schemes is heavy and runs as its own slow ctest
 * entry (test_fastpath_sweep) via a gtest filter.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gpu.hpp"
#include "kernels/profile.hpp"
#include "kernels/workload.hpp"
#include "mem/dram.hpp"
#include "mem/interconnect.hpp"
#include "mem/l2cache.hpp"
#include "mem/memsys.hpp"
#include "sim/clockable.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sm/lsu.hpp"
#include "sm/sm.hpp"

namespace ckesim {
namespace {

// ---- contract: LSU -----------------------------------------------------

TEST(FastpathContract, LsuIdleIffNever)
{
    Lsu lsu(/*queue_depth=*/4, /*hit_latency=*/28);
    EXPECT_EQ(lsu.nextEventCycle(Cycle{0}), kNeverCycle);
    EXPECT_EQ(lsu.nextEventCycle(Cycle{500}), kNeverCycle);

    lsu.enqueue(WarpSlot{0}, KernelId{0}, /*is_store=*/false,
                {LineAddr{1}});
    // The in-order pipeline services its head every cycle it holds
    // one: occupancy means same-cycle work.
    EXPECT_EQ(lsu.nextEventCycle(Cycle{7}), Cycle{7});
}

// ---- contract: DRAM channel -------------------------------------------

DramConfig
dramCfg()
{
    DramConfig c;
    c.banks_per_channel = 4;
    c.row_bytes = 512;
    c.access_latency = 50;
    c.row_hit_service = 2;
    c.row_miss_penalty = 10;
    c.frfcfs_window = 4;
    c.queue_depth = 8;
    return c;
}

MemRequest
readReq(LineAddr line)
{
    MemRequest r;
    r.line_addr = line;
    r.kind = ReqKind::ReadMiss;
    return r;
}

TEST(FastpathContract, DramIdleIffNever)
{
    DramChannel ch(dramCfg(), 64);
    EXPECT_EQ(ch.nextEventCycle(Cycle{0}), kNeverCycle);

    ASSERT_TRUE(ch.tryEnqueue(readReq(LineAddr{0}), Cycle{0}));
    // Bus free + queued request: the channel can start service now.
    EXPECT_EQ(ch.nextEventCycle(Cycle{0}), Cycle{0});
}

TEST(FastpathContract, DramHorizonCoversBusyBusAndFills)
{
    DramChannel ch(dramCfg(), 64);
    ch.tryEnqueue(readReq(LineAddr{0}), Cycle{0});
    ch.tick(Cycle{0}); // row miss: service 2+10, busy until 12

    // Queue drained; the only future event is the fill surfacing at
    // busy_until + access_latency = 62.
    const Cycle fill_ready{62};
    const Cycle h1 = ch.nextEventCycle(Cycle{1});
    EXPECT_EQ(h1, fill_ready);

    // Never in the past, and monotone while unstimulated: querying
    // later (still before the horizon) must not move it earlier.
    for (Cycle t{1}; t < fill_ready; ++t) {
        const Cycle h = ch.nextEventCycle(t);
        EXPECT_GE(h, t);
        EXPECT_EQ(h, fill_ready);
        // Ticking inside [now, horizon) is a bit-for-bit no-op.
        ch.tick(t);
        EXPECT_TRUE(ch.drainFills(t).empty());
    }
    EXPECT_EQ(ch.drainFills(fill_ready).size(), 1u);
    EXPECT_EQ(ch.nextEventCycle(fill_ready + 1), kNeverCycle);
}

// ---- contract: crossbar ------------------------------------------------

TEST(FastpathContract, CrossbarHorizonIsFrontReadyTime)
{
    IcntConfig icfg;
    icfg.latency = 4;
    icfg.input_queue_depth = 8;
    Crossbar x(2, icfg);
    EXPECT_EQ(x.nextEventCycle(Cycle{0}), kNeverCycle);

    ASSERT_TRUE(
        x.tryInject(0, /*flits=*/1, readReq(LineAddr{1}), Cycle{10}));
    // Ready at 10 + 4 (latency) + 1 (flit) = 15.
    EXPECT_EQ(x.nextEventCycle(Cycle{10}), Cycle{15});
    EXPECT_EQ(x.nextEventCycle(Cycle{14}), Cycle{15});
    // Undrained past-due flits clamp to now, never the past.
    EXPECT_EQ(x.nextEventCycle(Cycle{20}), Cycle{20});

    EXPECT_EQ(x.drain(0, Cycle{15}, 8).size(), 1u);
    EXPECT_EQ(x.nextEventCycle(Cycle{15}), kNeverCycle);
}

// ---- contract: L2 partition -------------------------------------------

TEST(FastpathContract, L2QueuedInputMeansNow)
{
    L2Config c;
    c.partition_bytes = 64 * 4 * 16;
    c.line_bytes = 64;
    c.assoc = 4;
    c.num_mshrs = 8;
    c.miss_queue_depth = 4;
    c.latency = 10;
    L2Partition part(c, 0);
    EXPECT_EQ(part.nextEventCycle(Cycle{3}), kNeverCycle);

    part.acceptInput(readReq(LineAddr{5}));
    // Even a stalled head re-arbitrates its victim way every tick, so
    // queued input always means same-cycle work.
    EXPECT_EQ(part.nextEventCycle(Cycle{3}), Cycle{3});
}

// ---- contract: memory system ------------------------------------------

TEST(FastpathContract, MemsysEventDrivenRoundTripMatchesStrict)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);
    MemRequest req = readReq(LineAddr{1234});
    req.sm_id = SmId{0};
    req.kernel = KernelId{0};

    // Strict: tick every cycle until the reply surfaces.
    Cycle strict_reply = kNeverCycle;
    {
        MemorySystem mem(cfg);
        ASSERT_TRUE(mem.injectFromSm(req, Cycle{0}));
        for (Cycle t{0}; t < Cycle{2000}; ++t) {
            mem.tick(t);
            if (!mem.drainRepliesForSm(SmId{0}, t).empty()) {
                strict_reply = t;
                break;
            }
        }
        ASSERT_NE(strict_reply, kNeverCycle);
    }

    // Event-driven: jump straight between horizons. Same reply cycle,
    // and each hop must make progress (no horizon in the past).
    {
        MemorySystem mem(cfg);
        EXPECT_EQ(mem.nextEventCycle(Cycle{0}), kNeverCycle);
        ASSERT_TRUE(mem.injectFromSm(req, Cycle{0}));
        Cycle t{0};
        int hops = 0;
        while (hops < 2000) {
            ++hops;
            mem.tick(t);
            if (!mem.drainRepliesForSm(SmId{0}, t).empty())
                break;
            const Cycle h = mem.nextEventCycle(t + 1);
            ASSERT_NE(h, kNeverCycle);
            ASSERT_GE(h, t + 1);
            t = h;
        }
        EXPECT_EQ(t, strict_reply);
        // Far fewer hops than cycles: the horizon actually skips.
        EXPECT_LT(hops, strict_reply.get() / 2);
    }
}

// ---- contract: SM ------------------------------------------------------

TEST(FastpathContract, SmZeroQuotaReportsNever)
{
    const GpuConfig cfg = makeSmallConfig(1, 2);
    MemorySystem mem(cfg);
    Sm sm(cfg, SmId{0}, mem, {&findProfile("bp")}, {});
    sm.setTbQuota(KernelId{0}, 0);
    for (Cycle t{0}; t < Cycle{20}; ++t) {
        sm.tick(t);
        mem.tick(t);
    }
    // Nothing resident, nothing to dispatch: genuinely idle.
    EXPECT_EQ(sm.nextEventCycle(Cycle{20}), kNeverCycle);
}

TEST(FastpathContract, SmWithRunnableWorkReportsNow)
{
    const GpuConfig cfg = makeSmallConfig(1, 2);
    MemorySystem mem(cfg);
    Sm sm(cfg, SmId{0}, mem, {&findProfile("bp")}, {});
    sm.setTbQuota(KernelId{0}, 2);
    // Dispatchable TBs exist before any tick: same-cycle work.
    EXPECT_EQ(sm.nextEventCycle(Cycle{0}), Cycle{0});
    for (Cycle t{0}; t < Cycle{50}; ++t) {
        sm.tick(t);
        mem.tick(t);
        const Cycle h = sm.nextEventCycle(t + 1);
        EXPECT_GE(h, t + 1); // never in the past
    }
}

TEST(FastpathContract, SmWarpQuotaPinsHorizonToNow)
{
    // SMK-(P+W) counts quota-stall cycles every cycle, so an SM under
    // warp quotas must never report a skippable horizon.
    const GpuConfig cfg = makeSmallConfig(1, 2);
    MemorySystem mem(cfg);
    IssuePolicyConfig policy;
    policy.warp_quota_enabled = true;
    Sm sm(cfg, SmId{0}, mem, {&findProfile("bp")}, policy);
    sm.setTbQuota(KernelId{0}, 0);
    for (Cycle t{0}; t < Cycle{20}; ++t) {
        sm.tick(t);
        mem.tick(t);
    }
    EXPECT_EQ(sm.nextEventCycle(Cycle{20}), Cycle{20});
}

// ---- whole-machine equivalence ----------------------------------------

/** Everything strict and fast runs must agree on, bit for bit. */
struct Outcome
{
    std::uint64_t fingerprint = 0;
    std::uint64_t cycle = 0;
    std::vector<double> ipc;
    std::vector<std::vector<std::uint64_t>> issue_bins;
    std::vector<std::vector<std::uint64_t>> l1d_bins;
};

Outcome
runOnce(const GpuConfig &cfg, const Workload &wl,
        const SchemeSpec &spec, Cycle cycles, bool fast)
{
    Gpu gpu(cfg, wl, spec);
    gpu.setFastForward(fast);
    std::vector<std::unique_ptr<TimeSeries>> issue, l1d;
    for (int k = 0; k < gpu.numKernels(); ++k) {
        issue.push_back(std::make_unique<TimeSeries>(Cycle{1000}));
        l1d.push_back(std::make_unique<TimeSeries>(Cycle{1000}));
        gpu.attachSeries(KernelId{k}, issue.back().get(),
                         l1d.back().get());
    }
    gpu.run(cycles);

    Outcome out;
    const GpuSnapshot snap = gpu.snapshot();
    out.fingerprint = snap.fingerprint;
    out.cycle = snap.cycle.get();
    for (int k = 0; k < gpu.numKernels(); ++k) {
        out.ipc.push_back(gpu.ipc(KernelId{k}));
        out.issue_bins.push_back(
            issue[static_cast<std::size_t>(k)]->bins());
        out.l1d_bins.push_back(
            l1d[static_cast<std::size_t>(k)]->bins());
    }
    return out;
}

void
expectSameOutcome(const Outcome &strict, const Outcome &fast,
                  const std::string &what)
{
    EXPECT_EQ(strict.fingerprint, fast.fingerprint) << what;
    EXPECT_EQ(strict.cycle, fast.cycle) << what;
    ASSERT_EQ(strict.ipc.size(), fast.ipc.size()) << what;
    for (std::size_t k = 0; k < strict.ipc.size(); ++k) {
        EXPECT_EQ(std::memcmp(&strict.ipc[k], &fast.ipc[k],
                              sizeof(double)),
                  0)
            << what << " ipc[" << k << "]";
        EXPECT_EQ(strict.issue_bins[k], fast.issue_bins[k])
            << what << " issue series[" << k << "]";
        EXPECT_EQ(strict.l1d_bins[k], fast.l1d_bins[k])
            << what << " l1d series[" << k << "]";
    }
}

/** The scheme families the sweep and the quick checks draw from. */
struct SchemeCase
{
    std::string name;
    SchemeSpec spec;
};

std::vector<SchemeCase>
schemeCases()
{
    std::vector<SchemeCase> cases;
    cases.push_back(
        {"leftover", makeScheme(PartitionScheme::Leftover,
                                BmiMode::None, MilMode::None)});
    cases.push_back(
        {"spatial", makeScheme(PartitionScheme::Spatial,
                               BmiMode::None, MilMode::None)});
    cases.push_back(
        {"smk", makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                           MilMode::None)});
    {
        SchemeCase c{"ws", makeScheme(PartitionScheme::WarpedSlicer,
                                      BmiMode::None, MilMode::None)};
        c.spec.ws_profile_window = Cycle{5000};
        cases.push_back(c);
    }
    {
        SchemeCase c{"ws-rbmi-smil",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::RBMI, MilMode::Static)};
        c.spec.ws_profile_window = Cycle{5000};
        cases.push_back(c);
    }
    {
        SchemeCase c{"ws-qbmi-dmil",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::QBMI, MilMode::Dynamic)};
        c.spec.ws_profile_window = Cycle{5000};
        cases.push_back(c);
    }
    {
        SchemeCase c{"ws-ucp",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::None, MilMode::None)};
        c.spec.ws_profile_window = Cycle{5000};
        c.spec.ucp = true;
        cases.push_back(c);
    }
    {
        SchemeCase c{"ws-global-dmil",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::QBMI, MilMode::Dynamic)};
        c.spec.ws_profile_window = Cycle{5000};
        c.spec.global_dmil = true;
        cases.push_back(c);
    }
    return cases;
}

TEST(FastpathEquivalence, MemoryBoundPairAllSchemes)
{
    const GpuConfig cfg = makeSmallConfig(4, 4);
    const Workload wl = makeWorkload({"sv", "ks"});
    for (const SchemeCase &c : schemeCases()) {
        const Outcome strict =
            runOnce(cfg, wl, c.spec, Cycle{12000}, false);
        const Outcome fast =
            runOnce(cfg, wl, c.spec, Cycle{12000}, true);
        expectSameOutcome(strict, fast, c.name);
    }
}

TEST(FastpathEquivalence, SplitRunsAndCheckpointing)
{
    // run(a); run(b) in fast mode must land exactly where one strict
    // run(a+b) does, and auto-checkpointing on a cadence must keep
    // firing at the same cycles inside skipped spans.
    const GpuConfig cfg = makeSmallConfig(4, 4);
    GpuConfig ckpt_cfg = cfg;
    ckpt_cfg.integrity.checkpoint_interval = 3000;
    const Workload wl = makeWorkload({"sv", "ks"});
    const SchemeSpec spec = makeScheme(PartitionScheme::SmkDrf,
                                       BmiMode::None, MilMode::None);

    Gpu strict(ckpt_cfg, wl, spec);
    strict.run(Cycle{10000});
    ASSERT_NE(strict.lastCheckpoint(), nullptr);

    Gpu fast(ckpt_cfg, wl, spec);
    fast.setFastForward(true);
    fast.run(Cycle{4000});
    fast.run(Cycle{6000});
    ASSERT_NE(fast.lastCheckpoint(), nullptr);

    EXPECT_EQ(strict.snapshot().fingerprint,
              fast.snapshot().fingerprint);
    EXPECT_EQ(strict.lastCheckpoint()->cycle,
              fast.lastCheckpoint()->cycle);
    EXPECT_EQ(strict.lastCheckpoint()->fingerprint,
              fast.lastCheckpoint()->fingerprint);
}

TEST(FastpathEquivalence, FaultedRunFallsBackToStrict)
{
    // An armed fault injector disables skipping outright; results
    // must match a strict faulted run exactly.
    const GpuConfig cfg = makeSmallConfig(4, 4);
    const Workload wl = makeWorkload({"sv", "ks"});
    SchemeSpec spec = makeScheme(PartitionScheme::SmkDrf,
                                 BmiMode::None, MilMode::None);
    FaultSpec delay;
    delay.kind = FaultKind::DelayFill;
    delay.begin = Cycle{1000};
    delay.end = Cycle{5000};
    delay.budget = 32;
    delay.delay = Cycle{100};
    spec.faults.push_back(delay);

    const Outcome strict = runOnce(cfg, wl, spec, Cycle{8000}, false);
    const Outcome fast = runOnce(cfg, wl, spec, Cycle{8000}, true);
    expectSameOutcome(strict, fast, "faulted");
}

// ---- randomized sweep (slow; own ctest entry via gtest filter) ---------

TEST(FastpathEquivalenceSweep, RandomPairsTimesSchemes)
{
    const GpuConfig cfg = makeSmallConfig(4, 4);
    const std::vector<KernelProfile> &suite = benchmarkSuite();
    const std::vector<SchemeCase> cases = schemeCases();
    Rng rng(0x66617374ULL); // "fast", fixed seed

    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t a = static_cast<std::size_t>(
            rng.nextBelow(suite.size()));
        std::size_t b = static_cast<std::size_t>(
            rng.nextBelow(suite.size() - 1));
        if (b >= a)
            ++b; // distinct pair
        const std::size_t s = static_cast<std::size_t>(
            rng.nextBelow(cases.size()));
        const Workload wl =
            makeWorkload({suite[a].name, suite[b].name});
        const std::string what = cases[s].name + " " +
                                 suite[a].name + "+" + suite[b].name;
        SCOPED_TRACE(what);
        const Outcome strict =
            runOnce(cfg, wl, cases[s].spec, Cycle{12000}, false);
        const Outcome fast =
            runOnce(cfg, wl, cases[s].spec, Cycle{12000}, true);
        expectSameOutcome(strict, fast, what);
    }
}

} // namespace
} // namespace ckesim
