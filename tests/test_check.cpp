/**
 * @file
 * Structured-error core: SimError carries machine context through the
 * SIM_CHECK / SIM_INVARIANT macros, and the validation entry points
 * (GpuConfig::validate, SchemeSpec::validate, validateFaultSpec)
 * reject malformed inputs with the offending field named.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "gpu.hpp"
#include "sim/check.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"

namespace ckesim {
namespace {

TEST(SimCheck, PassingConditionsAreSilent)
{
    SimCtx ctx;
    EXPECT_NO_THROW(SIM_CHECK(1 + 1 == 2, ctx, "unused"));
    EXPECT_NO_THROW(SIM_INVARIANT(true, ctx, "unused"));
}

TEST(SimCheck, FailureCarriesFullContext)
{
    SimCtx ctx;
    ctx.cycle = Cycle{123};
    ctx.sm_id = SmId{2};
    ctx.kernel = KernelId{1};
    ctx.module = "l1d";
    try {
        SIM_CHECK(2 + 2 == 5, ctx, "value was " << 42);
        FAIL() << "SIM_CHECK did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "SIM_CHECK");
        EXPECT_EQ(e.ctx().cycle, Cycle{123});
        EXPECT_EQ(e.ctx().sm_id, SmId{2});
        EXPECT_EQ(e.ctx().kernel, KernelId{1});
        EXPECT_EQ(e.detail(), "value was 42");
        const std::string what = e.what();
        EXPECT_NE(what.find("cycle=123"), std::string::npos);
        EXPECT_NE(what.find("sm=2"), std::string::npos);
        EXPECT_NE(what.find("kernel=1"), std::string::npos);
        EXPECT_NE(what.find("module=l1d"), std::string::npos);
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
        EXPECT_NE(what.find("value was 42"), std::string::npos);
    }
}

TEST(SimCheck, InvariantReportsItsOwnKind)
{
    SimCtx ctx;
    try {
        SIM_INVARIANT(false, ctx, "broken");
        FAIL() << "SIM_INVARIANT did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "SIM_INVARIANT");
    }
}

TEST(SimCheck, UnknownContextFieldsPrintPlaceholders)
{
    const std::string s = formatSimCtx(SimCtx{});
    EXPECT_NE(s.find("cycle=?"), std::string::npos);
    EXPECT_NE(s.find("sm=-"), std::string::npos);
    EXPECT_NE(s.find("kernel=-"), std::string::npos);
}

TEST(SimCheck, RaiseSimErrorKeepsKind)
{
    SimCtx ctx;
    ctx.module = "gpu";
    try {
        raiseSimError("Watchdog", ctx, "stuck");
        FAIL() << "raiseSimError did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "Watchdog");
        EXPECT_EQ(e.expr(), "");
        EXPECT_EQ(e.detail(), "stuck");
    }
}

// ---- GpuConfig::validate rejection table -------------------------------

struct BadConfig
{
    const char *name;    ///< expected substring of the error detail
    std::function<void(GpuConfig &)> corrupt;
};

TEST(ConfigValidate, AcceptsTable1AndSmallConfigs)
{
    EXPECT_NO_THROW(GpuConfig{}.validate());
    EXPECT_NO_THROW(makeSmallConfig(4, 4).validate());
    EXPECT_NO_THROW(makeSmallConfig(1, 1).validate());
}

TEST(ConfigValidate, RejectsMalformedConfigsByName)
{
    const std::vector<BadConfig> table = {
        {"num_sms", [](GpuConfig &c) { c.num_sms = 0; }},
        {"sm.lsu_queue_depth",
         [](GpuConfig &c) { c.sm.lsu_queue_depth = 0; }},
        {"sm.max_warps", [](GpuConfig &c) { c.sm.max_warps = -1; }},
        {"l1d", [](GpuConfig &c) { c.l1d.assoc = 5; }},
        {"l1d", [](GpuConfig &c) { c.l1d.line_bytes = 48; }},
        {"l1d.num_mshrs", [](GpuConfig &c) { c.l1d.num_mshrs = 0; }},
        {"l1d.mshr_merge", [](GpuConfig &c) { c.l1d.mshr_merge = 0; }},
        {"l1d.miss_queue_depth",
         [](GpuConfig &c) { c.l1d.miss_queue_depth = 0; }},
        {"l2", [](GpuConfig &c) { c.l2.assoc = 7; }},
        {"l2.line_bytes", [](GpuConfig &c) { c.l2.line_bytes = 128; }},
        {"l2.miss_queue_depth",
         [](GpuConfig &c) { c.l2.miss_queue_depth = -3; }},
        {"icnt.input_queue_depth",
         [](GpuConfig &c) { c.icnt.input_queue_depth = 0; }},
        {"dram.queue_depth",
         [](GpuConfig &c) { c.dram.queue_depth = 1; }},
        {"dram.row_bytes", [](GpuConfig &c) { c.dram.row_bytes = 96; }},
        {"integrity.check_interval",
         [](GpuConfig &c) { c.integrity.check_interval = 0; }},
        {"integrity.watchdog_timeout",
         [](GpuConfig &c) {
             c.integrity.check_interval = 256;
             c.integrity.watchdog_timeout = 100;
         }},
    };

    for (const BadConfig &bad : table) {
        GpuConfig cfg;
        bad.corrupt(cfg);
        try {
            cfg.validate();
            FAIL() << "validate accepted bad " << bad.name;
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), "ConfigError") << bad.name;
            EXPECT_NE(e.detail().find(bad.name), std::string::npos)
                << "error for " << bad.name
                << " does not name the field: " << e.detail();
        }
    }
}

TEST(ConfigValidate, GpuConstructorRejectsBadConfig)
{
    GpuConfig cfg = makeSmallConfig(2, 2);
    cfg.sm.lsu_queue_depth = 0;
    const Workload wl = makeWorkload({"bp", "sv"});
    const SchemeSpec spec = makeScheme(PartitionScheme::Spatial,
                                       BmiMode::None, MilMode::None);
    EXPECT_THROW(Gpu(cfg, wl, spec), SimError);
}

// ---- SchemeSpec::validate ---------------------------------------------

TEST(SchemeValidate, RejectsBadKnobs)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);

    SchemeSpec smk;
    smk.smk_warp_quota = true; // isolated IPCs missing
    EXPECT_THROW(smk.validate(cfg), SimError);

    SchemeSpec ucp;
    ucp.ucp = true;
    ucp.ucp_interval = Cycle{0};
    EXPECT_THROW(ucp.validate(cfg), SimError);

    SchemeSpec ws;
    ws.partition = PartitionScheme::WarpedSlicer;
    ws.ws_profile_window = Cycle{0};
    EXPECT_THROW(ws.validate(cfg), SimError);

    SchemeSpec smil;
    smil.smil_limits[0] = -2;
    EXPECT_THROW(smil.validate(cfg), SimError);

    EXPECT_NO_THROW(SchemeSpec{}.validate(cfg));
}

TEST(SchemeValidate, RejectsBadFaultSpecs)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);

    SchemeSpec none;
    none.faults.push_back(FaultSpec{}); // kind None
    EXPECT_THROW(none.validate(cfg), SimError);

    SchemeSpec window;
    window.faults.push_back(
        {FaultKind::DropFill, Cycle{100}, Cycle{100}, 0, -1,
         Cycle{}}); // empty window
    EXPECT_THROW(window.validate(cfg), SimError);

    SchemeSpec target;
    target.faults.push_back(
        {FaultKind::DropFill, Cycle{}, kNeverCycle, 7, -1,
         Cycle{}}); // no SM 7
    EXPECT_THROW(target.validate(cfg), SimError);

    SchemeSpec channel;
    channel.faults.push_back(
        {FaultKind::FreezeDram, Cycle{}, kNeverCycle, 5, -1,
         Cycle{}});
    EXPECT_THROW(channel.validate(cfg), SimError);

    SchemeSpec delay;
    delay.faults.push_back(
        {FaultKind::DelayFill, Cycle{}, kNeverCycle, 0, -1,
         Cycle{}}); // delay 0
    EXPECT_THROW(delay.validate(cfg), SimError);

    SchemeSpec ok;
    ok.faults.push_back(
        {FaultKind::DropFill, Cycle{1000}, kNeverCycle, 0, 4,
         Cycle{}});
    ok.faults.push_back(
        {FaultKind::DelayFill, Cycle{}, kNeverCycle, -1, -1,
         Cycle{50}});
    EXPECT_NO_THROW(ok.validate(cfg));
}

} // namespace
} // namespace ckesim
