/**
 * @file
 * Property-based sweeps: invariants that must hold for every kernel
 * and every scheme, exercised with parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include "metrics/runner.hpp"

namespace ckesim {
namespace {

GpuConfig
smallCfg()
{
    return makeSmallConfig(4, 4);
}

// ---- per-kernel isolated invariants ----------------------------------

class IsolatedInvariants
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IsolatedInvariants, HoldForKernel)
{
    Runner runner(smallCfg(), Cycle{8000});
    const KernelProfile &p = findProfile(GetParam());
    const IsolatedResult &res = runner.isolated(p);
    const KernelStats &s = res.stats;

    // The kernel makes progress.
    EXPECT_GT(res.ipc, 0.0);
    EXPECT_GT(s.issued_instructions, 100u);

    // Accounting identities.
    EXPECT_EQ(s.l1d_hits + s.l1d_misses, s.l1d_accesses);
    EXPECT_EQ(s.l1d_rsfail_line + s.l1d_rsfail_mshr +
                  s.l1d_rsfail_missq,
              s.l1d_rsfails);
    EXPECT_EQ(s.alu_instructions + s.sfu_instructions +
                  s.smem_instructions + s.mem_instructions,
              s.issued_instructions);

    // Every generated request is eventually serviced or retried;
    // serviced accesses can never exceed generated requests.
    EXPECT_LE(s.l1d_accesses, s.mem_requests);

    // Rates are probabilities / bounded.
    EXPECT_GE(s.l1dMissRate(), 0.0);
    EXPECT_LE(s.l1dMissRate(), 1.0);
    EXPECT_GE(res.sm_stats.lsuStallFraction(), 0.0);
    EXPECT_LE(res.sm_stats.lsuStallFraction(), 1.0);

    // Mix parameters track the profile. Heavily throttled kernels
    // (ks/ax) end the window with many memory instructions still
    // blocked, which biases the issued-mix ratio upward, so the
    // bound is loose.
    EXPECT_GT(s.cinstPerMinst(), 0.5 * p.cinst_per_minst);
    EXPECT_LT(s.cinstPerMinst(), 2.0 * p.cinst_per_minst + 1.5);
    EXPECT_LE(s.reqPerMinst(), p.req_per_minst + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, IsolatedInvariants,
    ::testing::Values("cp", "hs", "dc", "pf", "bp", "bs", "st", "3m",
                      "sv", "cd", "s2", "ks", "ax"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string n = info.param;
        if (n == "3m")
            n = "mm3";
        return n;
    });

// ---- per-scheme concurrent invariants --------------------------------

class SchemeInvariants
    : public ::testing::TestWithParam<NamedScheme>
{
};

TEST_P(SchemeInvariants, HoldForBpSv)
{
    Runner runner(smallCfg(), Cycle{8000});
    const Workload w = makeWorkload({"bp", "sv"});
    const ConcurrentResult res = runner.run(w, GetParam());

    ASSERT_EQ(res.norm_ipc.size(), 2u);
    for (double v : res.norm_ipc) {
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, 1.3); // cannot beat isolated by much
    }
    EXPECT_LE(res.weighted_speedup, 2.0 * 1.3);
    EXPECT_GE(res.antt_value, 0.75);
    EXPECT_GT(res.fairness, 0.0);
    EXPECT_LE(res.fairness, 1.0 + 1e-12);
    for (const KernelStats &s : res.stats) {
        EXPECT_EQ(s.l1d_hits + s.l1d_misses, s.l1d_accesses);
        EXPECT_GT(s.issued_instructions, 0u);
    }
}

// Leftover is excluded: by design it can starve the second kernel
// entirely (its norm IPC is legitimately 0), which is exactly the
// behaviour the paper's Section 1 criticizes.
INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariants,
    ::testing::Values(NamedScheme::Spatial,
                      NamedScheme::WS, NamedScheme::WS_RBMI,
                      NamedScheme::WS_QBMI, NamedScheme::WS_DMIL,
                      NamedScheme::WS_QBMI_DMIL, NamedScheme::WS_UCP,
                      NamedScheme::SMK_PW, NamedScheme::SMK_P_QBMI,
                      NamedScheme::SMK_P_DMIL),
    [](const ::testing::TestParamInfo<NamedScheme> &info) {
        std::string n = schemeName(info.param);
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---- determinism -------------------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalStats)
{
    const Workload w = makeWorkload({"bp", "ks"});
    auto run_once = [&] {
        Runner runner(smallCfg(), Cycle{6000});
        return runner.run(w, NamedScheme::WS_DMIL);
    };
    const ConcurrentResult a = run_once();
    const ConcurrentResult b = run_once();
    ASSERT_EQ(a.norm_ipc.size(), b.norm_ipc.size());
    for (std::size_t i = 0; i < a.norm_ipc.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
        EXPECT_EQ(a.stats[i].l1d_accesses, b.stats[i].l1d_accesses);
        EXPECT_EQ(a.stats[i].l1d_rsfails, b.stats[i].l1d_rsfails);
    }
    EXPECT_EQ(a.partition, b.partition);
}

TEST(Determinism, SameSeedAndConfigProduceIdenticalFingerprints)
{
    const Workload w = makeWorkload({"sv", "ks"});
    auto hash_once = [&] {
        Runner runner(smallCfg(), Cycle{6000});
        const ConcurrentResult res =
            runner.run(w, NamedScheme::WS_QBMI_DMIL);
        std::uint64_t h = fingerprint(res.sm_stats);
        for (const KernelStats &s : res.stats)
            h = fingerprint(s, h);
        return h;
    };
    EXPECT_EQ(hash_once(), hash_once());
}

TEST(Determinism, FingerprintSeparatesDifferentStats)
{
    KernelStats a;
    KernelStats b;
    b.l1d_hits = 1;
    EXPECT_NE(fingerprint(a), fingerprint(b));
    // Order-sensitive: swapping counter values must change the hash.
    KernelStats c;
    c.l1d_hits = 2;
    c.l1d_misses = 3;
    KernelStats d;
    d.l1d_hits = 3;
    d.l1d_misses = 2;
    EXPECT_NE(fingerprint(c), fingerprint(d));
}

TEST(Determinism, SeedChangesChangeOutcome)
{
    const Workload w = makeWorkload({"bp", "sv"});
    GpuConfig c1 = smallCfg();
    GpuConfig c2 = smallCfg();
    c2.seed = 0xdeadbeef;
    Runner r1(c1, Cycle{6000}), r2(c2, Cycle{6000});
    const ConcurrentResult a = r1.run(w, NamedScheme::WS);
    const ConcurrentResult b = r2.run(w, NamedScheme::WS);
    EXPECT_NE(a.stats[0].l1d_accesses, b.stats[0].l1d_accesses);
}

// ---- cross-scheme sanity ----------------------------------------------

TEST(SchemeSanity, MilLimitsAreRespectedThroughout)
{
    GpuConfig cfg = smallCfg();
    Workload w = makeWorkload({"sv", "ks"});
    SchemeSpec spec = makeScheme(PartitionScheme::SmkDrf,
                                 BmiMode::None, MilMode::Static);
    spec.smil_limits[0] = 3;
    spec.smil_limits[1] = 1;
    Gpu gpu(cfg, w, spec);
    for (Cycle t{}; t < Cycle{4000}; ++t) {
        gpu.run(Cycle{1});
        for (int s = 0; s < gpu.numSms(); ++s) {
            ASSERT_LE(gpu.sm(s).controller().inflight(KernelId{0}), 3);
            ASSERT_LE(gpu.sm(s).controller().inflight(KernelId{1}), 1);
        }
    }
}

TEST(SchemeSanity, DmilReducesReservationFailures)
{
    // The core claim of Section 3.3: limiting in-flight memory
    // instructions cuts rsfail rates for memory-intensive pairs.
    Runner runner(smallCfg(), Cycle{12000});
    const Workload w = makeWorkload({"sv", "ks"});
    const ConcurrentResult base = runner.run(w, NamedScheme::WS);
    const ConcurrentResult dmil =
        runner.run(w, NamedScheme::WS_DMIL);
    const double base_rsfail = base.stats[0].l1dRsFailRate() +
                               base.stats[1].l1dRsFailRate();
    const double dmil_rsfail = dmil.stats[0].l1dRsFailRate() +
                               dmil.stats[1].l1dRsFailRate();
    EXPECT_LT(dmil_rsfail, base_rsfail);
}

TEST(SchemeSanity, QbmiBalancesRequestVolume)
{
    // QBMI should narrow the gap between the kernels' serviced
    // request volumes relative to unmanaged WS.
    Runner runner(smallCfg(), Cycle{12000});
    const Workload w = makeWorkload({"bp", "ks"});
    const ConcurrentResult base = runner.run(w, NamedScheme::WS);
    const ConcurrentResult qbmi =
        runner.run(w, NamedScheme::WS_QBMI);
    auto imbalance = [](const ConcurrentResult &r) {
        const double a =
            static_cast<double>(r.stats[0].l1d_accesses);
        const double b =
            static_cast<double>(r.stats[1].l1d_accesses);
        return std::max(a, b) / std::max(1.0, std::min(a, b));
    };
    EXPECT_LT(imbalance(qbmi), imbalance(base));
}

} // namespace
} // namespace ckesim
