/**
 * @file
 * Unit tests for the Section 4.5 ablation hooks in the L1D: per-
 * kernel MSHR quotas and read-miss bypassing.
 */

#include <gtest/gtest.h>

#include "mem/l1d.hpp"

namespace ckesim {
namespace {

L1dConfig
smallL1(int mshrs = 8, int missq = 8)
{
    L1dConfig cfg;
    cfg.size_bytes = 64 * 2 * 16;
    cfg.line_bytes = 64;
    cfg.assoc = 2;
    cfg.num_mshrs = mshrs;
    cfg.mshr_merge = 4;
    cfg.miss_queue_depth = missq;
    return cfg;
}

L1Target
tgt(int warp, KernelId k)
{
    L1Target t;
    t.warp_slot = WarpSlot{warp};
    t.kernel = k;
    return t;
}

TEST(L1dMshrQuota, CapsOneKernelOnly)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setMshrQuota(KernelId{0}, 2);
    EXPECT_EQ(l1.access(LineAddr{1}, KernelId{0}, false, tgt(1, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::MissToL2);
    EXPECT_EQ(l1.access(LineAddr{2}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::MissToL2);
    // Kernel 0 is at its quota.
    const L1Outcome out = l1.access(LineAddr{3}, KernelId{0}, false, tgt(3, KernelId{0}), Cycle{0});
    EXPECT_EQ(out.kind, L1Outcome::Kind::RsFail);
    EXPECT_EQ(out.fail, RsFailReason::Mshr);
    EXPECT_EQ(l1.mshrsHeldBy(KernelId{0}), 2);
    // Kernel 1 is unaffected.
    EXPECT_EQ(l1.access(LineAddr{4}, KernelId{1}, false, tgt(4, KernelId{1}), Cycle{0}).kind,
              L1Outcome::Kind::MissToL2);
}

TEST(L1dMshrQuota, ReleasedOnFill)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setMshrQuota(KernelId{0}, 1);
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1, KernelId{0}), Cycle{0});
    EXPECT_EQ(l1.access(LineAddr{2}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::RsFail);
    l1.popMissQueue();
    l1.fill(LineAddr{1});
    EXPECT_EQ(l1.mshrsHeldBy(KernelId{0}), 0);
    EXPECT_EQ(l1.access(LineAddr{2}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{1}).kind,
              L1Outcome::Kind::MissToL2);
}

TEST(L1dMshrQuota, MergesDoNotCountAgainstQuota)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setMshrQuota(KernelId{0}, 1);
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1, KernelId{0}), Cycle{0});
    // Same line: merge, despite the quota being reached.
    EXPECT_EQ(l1.access(LineAddr{1}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::MergedMshr);
}

TEST(L1dBypass, MissHoldsNoLineSlot)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setBypass(KernelId{0}, true);
    EXPECT_EQ(l1.access(LineAddr{1}, KernelId{0}, false, tgt(1, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::MissToL2);
    // No reserved line anywhere in the tags.
    EXPECT_EQ(l1.tags().probe(LineAddr{1}), -1);
    // The fill returns the target but installs nothing.
    l1.popMissQueue();
    const auto targets = l1.fill(LineAddr{1});
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(l1.tags().probe(LineAddr{1}), -1);
    // A later access misses again (never cached).
    EXPECT_EQ(l1.access(LineAddr{1}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{1}).kind,
              L1Outcome::Kind::MissToL2);
}

TEST(L1dBypass, OutstandingBypassedMissesMerge)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setBypass(KernelId{0}, true);
    l1.access(LineAddr{1}, KernelId{0}, false, tgt(1, KernelId{0}), Cycle{0});
    EXPECT_EQ(l1.access(LineAddr{1}, KernelId{0}, false, tgt(2, KernelId{0}), Cycle{0}).kind,
              L1Outcome::Kind::MergedMshr);
    EXPECT_EQ(l1.fill(LineAddr{1}).size(), 2u);
}

TEST(L1dBypass, NonBypassedKernelStillAllocates)
{
    L1Dcache l1(smallL1(), SmId{0});
    l1.setBypass(KernelId{0}, true);
    EXPECT_EQ(l1.access(LineAddr{5}, KernelId{1}, false, tgt(1, KernelId{1}), Cycle{0}).kind,
              L1Outcome::Kind::MissToL2);
    EXPECT_GE(l1.tags().probe(LineAddr{5}), 0); // reserved normally
}

TEST(L1dBypass, RelievesLinePressure)
{
    // With 2 ways and bypass on, a kernel can have many outstanding
    // misses in one set without line reservation failures.
    L1Dcache l1(smallL1(), SmId{0});
    l1.setBypass(KernelId{0}, true);
    int issued = 0;
    for (LineAddr line{}; line < LineAddr{400} && issued < 6;
         ++line) {
        if (xorSetIndex(line, l1.tags().numSets()) != 3)
            continue;
        const L1Outcome out =
            l1.access(line, KernelId{0}, false,
                      tgt(issued, KernelId{0}), Cycle{});
        ASSERT_EQ(out.kind, L1Outcome::Kind::MissToL2);
        ++issued;
        l1.popMissQueue();
    }
    EXPECT_EQ(issued, 6);
}

} // namespace
} // namespace ckesim
