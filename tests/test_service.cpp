/**
 * @file
 * Campaign service suite: a long-lived `campaignd --serve` daemon
 * must hand every client — one, or several concurrently, or one
 * that dies mid-stream, corrupts its frames, gets rejected under
 * overload, or comes back after the server is SIGKILLed — a result
 * table byte-identical to the in-process SweepEngine ground truth,
 * while never running a job twice (journal record counts prove it).
 *
 * The service runs in a forked child of the test binary (the real
 * poll loop, the real forked worker fleet); clients run in-process
 * through the library the CLI wraps.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "campaign/client.hpp"
#include "campaign/service.hpp"
#include "campaign/wire.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace ckesim {
namespace {

constexpr const char *kCampaign = "smoke";
constexpr std::uint64_t kCycles = 2000;

/** Scratch paths (socket + journal shards) wiped on entry/exit. */
class TempBase
{
  public:
    explicit TempBase(const std::string &tag)
        : base_(std::string(::testing::TempDir()) +
                "ckesim_service_" + tag)
    {
        cleanup();
    }
    ~TempBase() { cleanup(); }
    std::string socket() const { return base_ + ".sock"; }
    std::string journal() const { return base_ + ".journal"; }

  private:
    void cleanup()
    {
        for (int slot = 0; slot < 16; ++slot)
            std::remove(CampaignEngine::shardPath(journal(), slot)
                            .c_str());
        std::remove(socket().c_str());
    }
    std::string base_;
};

CampaignService *g_child_service = nullptr;

void
onChildTerm(int)
{
    if (g_child_service != nullptr)
        g_child_service->requestDrain();
}

/** The service under test, running in a forked child process. */
class ServiceProc
{
  public:
    ~ServiceProc()
    {
        if (pid_ > 0)
            (void)killHard();
    }

    void start(const ServiceOptions &opts)
    {
        socket_path_ = opts.socket_path;
        pid_ = ::fork();
        ASSERT_GE(pid_, 0) << "fork failed";
        if (pid_ == 0) {
            int status = 2;
            try {
                CampaignService service(opts);
                g_child_service = &service;
                struct sigaction sa;
                std::memset(&sa, 0, sizeof sa);
                sa.sa_handler = onChildTerm;
                ::sigaction(SIGTERM, &sa, nullptr);
                (void)service.serve();
                status = 0;
            } catch (...) {
                status = 2;
            }
            ::_exit(status);
        }
        // The socket appearing means the listener is live.
        for (int i = 0; i < 500; ++i) {
            if (::access(socket_path_.c_str(), F_OK) == 0)
                return;
            ::usleep(10000);
        }
        FAIL() << "service socket never appeared";
    }

    /** SIGTERM drain; returns the child's exit status. */
    int stop()
    {
        if (pid_ <= 0)
            return -1;
        ::kill(pid_, SIGTERM);
        int status = 0;
        (void)::waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /** SIGKILL — the crash the --resume path must recover from. */
    int killHard()
    {
        if (pid_ <= 0)
            return -1;
        ::kill(pid_, SIGKILL);
        int status = 0;
        (void)::waitpid(pid_, &status, 0);
        pid_ = -1;
        return 0;
    }

  private:
    pid_t pid_ = -1;
    std::string socket_path_;
};

ServiceOptions
fastService(const TempBase &tmp)
{
    ServiceOptions opts;
    opts.socket_path = tmp.socket();
    opts.journal_base = tmp.journal();
    opts.workers = 2;
    opts.heartbeat_ms = 5;
    opts.liveness_deadline_ms = 20000;
    return opts;
}

ClientOptions
fastClient(const TempBase &tmp)
{
    ClientOptions opts;
    opts.socket_path = tmp.socket();
    opts.ref.name = kCampaign;
    opts.ref.cycles = kCycles;
    opts.timeout_ms = 120000;
    opts.backoff_ms = 20;
    return opts;
}

/** The table every path must reproduce byte-for-byte. */
const std::string &
groundTruthTable()
{
    static const std::string want = [] {
        const std::vector<SimJob> jobs =
            buildNamedCampaign(kCampaign, Cycle{kCycles});
        SweepEngine engine(1);
        std::vector<CampaignJobOutcome> outcomes;
        for (const SimJob &job : jobs) {
            CampaignJobOutcome o;
            o.state = CampaignJobState::Completed;
            o.result = engine.run(job);
            outcomes.push_back(std::move(o));
        }
        return formatCampaignTable(kCampaign, kCycles, jobs,
                                   outcomes);
    }();
    return want;
}

std::string
clientTable(const ClientOutcome &outcome, const ClientOptions &opts)
{
    return formatCampaignTable(opts.ref.name, opts.ref.cycles,
                               outcome.jobs, outcome.outcomes);
}

/** Distinct keys and total records across every journal shard —
 *  "no job ran twice" is total == distinct. */
void
countJournalRecords(const std::string &base, std::uint64_t &records,
                    std::uint64_t &distinct)
{
    records = 0;
    std::set<std::uint64_t> keys;
    for (int slot = 0; slot < 16; ++slot) {
        const std::string p =
            CampaignEngine::shardPath(base, slot);
        if (::access(p.c_str(), F_OK) != 0)
            continue;
        const JournalFsckReport report = fsckJournal(p);
        EXPECT_TRUE(report.clean()) << p << " is hard-corrupt";
        records += report.ok_records;
        for (const JournalFsckRecord &rec : report.records)
            if (rec.status == JournalRecordStatus::Ok)
                keys.insert(rec.key);
    }
    distinct = keys.size();
}

/** Raw-socket client for protocol-level probes (Ping, bad refs). */
int
rawConnect(const std::string &path)
{
    struct sockaddr_un addr;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    EXPECT_EQ(0, ::connect(
                     fd,
                     reinterpret_cast<struct sockaddr *>(&addr),
                     sizeof addr));
    return fd;
}

// ---- the contract: byte-identical tables --------------------------------

TEST(CampaignService, SingleClientMatchesInProcessGroundTruth)
{
    TempBase tmp("single");
    ServiceProc service;
    service.start(fastService(tmp));

    const ClientOptions copts = fastClient(tmp);
    const ClientOutcome outcome = runCampaignClient(copts);
    ASSERT_EQ(outcome.status, ClientStatus::Completed)
        << outcome.report.error;
    EXPECT_EQ(clientTable(outcome, copts), groundTruthTable());
    EXPECT_EQ(outcome.report.results, outcome.jobs.size());

    EXPECT_EQ(service.stop(), 0);

    // Every job ran exactly once, durably.
    std::uint64_t records = 0, distinct = 0;
    countJournalRecords(tmp.journal(), records, distinct);
    EXPECT_EQ(records, distinct);
    EXPECT_GT(records, 0u);
}

TEST(CampaignService, ConcurrentClientsAllByteIdentical)
{
    TempBase tmp("concurrent");
    ServiceProc service;
    service.start(fastService(tmp));

    const ClientOptions copts = fastClient(tmp);
    constexpr int kClients = 3;
    std::vector<ClientOutcome> outcomes(kClients);
    {
        std::vector<std::thread> threads;
        for (int i = 0; i < kClients; ++i)
            threads.emplace_back([&, i] {
                outcomes[static_cast<std::size_t>(i)] =
                    runCampaignClient(copts);
            });
        for (std::thread &t : threads)
            t.join();
    }
    for (const ClientOutcome &outcome : outcomes) {
        ASSERT_EQ(outcome.status, ClientStatus::Completed)
            << outcome.report.error;
        EXPECT_EQ(clientTable(outcome, copts), groundTruthTable());
    }

    EXPECT_EQ(service.stop(), 0);

    // Three identical submissions, every job dispatched once: the
    // journal must hold one record per distinct key, not three.
    std::uint64_t records = 0, distinct = 0;
    countJournalRecords(tmp.journal(), records, distinct);
    EXPECT_EQ(records, distinct);
}

// ---- chaos: client death mid-stream -------------------------------------

TEST(CampaignService, ClientDeathMidStreamOrphansNothing)
{
    TempBase tmp("drop");
    ServiceProc service;
    service.start(fastService(tmp));

    // First client dies abruptly after its first streamed result —
    // from the service's side, a crashed client.
    ClientOptions dying = fastClient(tmp);
    {
        ProcFaultSpec spec;
        spec.kind = ProcFaultKind::DropClientMidStream;
        spec.job_index = 1; // after 1 received result
        spec.budget = 1;
        dying.faults = ProcFaultPlan({spec});
    }
    const ClientOutcome dropped = runCampaignClient(dying);
    EXPECT_EQ(dropped.status, ClientStatus::ConnectionLost);
    EXPECT_GE(dropped.report.results, 1u);

    // The orphaned jobs must keep running into the journal, so a
    // second client's idempotent resubmission completes — and the
    // table is still byte-identical to ground truth.
    const ClientOptions copts = fastClient(tmp);
    const ClientOutcome retry = runCampaignClient(copts);
    ASSERT_EQ(retry.status, ClientStatus::Completed)
        << retry.report.error;
    EXPECT_EQ(clientTable(retry, copts), groundTruthTable());

    EXPECT_EQ(service.stop(), 0);

    // The disconnect caused zero re-runs: one record per key.
    std::uint64_t records = 0, distinct = 0;
    countJournalRecords(tmp.journal(), records, distinct);
    EXPECT_EQ(records, distinct);
}

// ---- chaos: corrupt client frames ---------------------------------------

TEST(CampaignService, CorruptClientDroppedOthersKeepStreaming)
{
    TempBase tmp("corrupt");
    ServiceProc service;
    service.start(fastService(tmp));

    // Corrupted submission, no retries: the service must drop this
    // client (it can only observe EOF).
    ClientOptions corrupt = fastClient(tmp);
    corrupt.retries = 0;
    corrupt.timeout_ms = 5000;
    {
        ProcFaultSpec spec;
        spec.kind = ProcFaultKind::CorruptClientFrame;
        spec.budget = 1;
        corrupt.faults = ProcFaultPlan({spec});
    }
    const ClientOutcome refused = runCampaignClient(corrupt);
    EXPECT_EQ(refused.status, ClientStatus::ConnectionLost);

    // A clean client on the same service is untouched by the other
    // stream's corruption.
    const ClientOptions copts = fastClient(tmp);
    const ClientOutcome clean = runCampaignClient(copts);
    ASSERT_EQ(clean.status, ClientStatus::Completed)
        << clean.report.error;
    EXPECT_EQ(clientTable(clean, copts), groundTruthTable());

    // And a corrupt-then-retry client recovers by itself: the retry
    // reconnects with a clean stream.
    ClientOptions retrying = fastClient(tmp);
    retrying.retries = 1;
    {
        ProcFaultSpec spec;
        spec.kind = ProcFaultKind::CorruptClientFrame;
        spec.budget = 1;
        retrying.faults = ProcFaultPlan({spec});
    }
    const ClientOutcome recovered = runCampaignClient(retrying);
    ASSERT_EQ(recovered.status, ClientStatus::Completed)
        << recovered.report.error;
    EXPECT_EQ(clientTable(recovered, copts), groundTruthTable());
    EXPECT_EQ(recovered.report.attempts, 2);

    EXPECT_EQ(service.stop(), 0);
}

// ---- admission control ---------------------------------------------------

TEST(CampaignService, OverloadRejectsWithRetryHint)
{
    TempBase tmp("overload");
    ServiceOptions sopts = fastService(tmp);
    sopts.journal_base.clear(); // keep the queue the only dedupe
    sopts.max_pending_jobs = 1; // any real campaign overflows
    ServiceProc service;
    service.start(sopts);

    ClientOptions copts = fastClient(tmp);
    copts.retries = 0;
    const ClientOutcome rejected = runCampaignClient(copts);
    EXPECT_EQ(rejected.status, ClientStatus::Rejected);
    EXPECT_EQ(rejected.report.rejects, 1u);
    EXPECT_NE(rejected.report.error.find("queue full"),
              std::string::npos)
        << rejected.report.error;

    EXPECT_EQ(service.stop(), 0);
}

TEST(CampaignService, UnknownCampaignRejectedPermanently)
{
    TempBase tmp("unknown");
    ServiceOptions sopts = fastService(tmp);
    sopts.journal_base.clear();
    ServiceProc service;
    service.start(sopts);

    // The library refuses to build an unknown ref itself, so probe
    // the service's own validation with a raw SubmitCampaign.
    const int fd = rawConnect(tmp.socket());
    CampaignRef bogus;
    bogus.name = "no-such-campaign";
    bogus.cycles = 1000;
    Frame submit;
    submit.type = FrameType::SubmitCampaign;
    submit.payload = encodeCampaignRef(bogus);
    ASSERT_TRUE(writeFrame(fd, submit));

    Frame reply;
    ASSERT_EQ(readFrameBlocking(fd, reply), WireStatus::Ok);
    ASSERT_EQ(reply.type, FrameType::Reject);
    const RejectInfo info = decodeReject(reply.payload);
    EXPECT_EQ(info.retry_after_ms, 0u)
        << "unknown campaign must not suggest retrying";
    EXPECT_NE(info.reason.find("no-such-campaign"),
              std::string::npos);
    ::close(fd);

    EXPECT_EQ(service.stop(), 0);
}

TEST(CampaignService, PingPongEchoesAndKeepsConnectionAlive)
{
    TempBase tmp("ping");
    ServiceOptions sopts = fastService(tmp);
    sopts.journal_base.clear();
    ServiceProc service;
    service.start(sopts);

    const int fd = rawConnect(tmp.socket());
    Frame ping;
    ping.type = FrameType::Ping;
    ping.job_index = 7;
    ping.aux = 11;
    ping.key = 0xdeadbeefcafef00dULL;
    ASSERT_TRUE(writeFrame(fd, ping));
    Frame pong;
    ASSERT_EQ(readFrameBlocking(fd, pong), WireStatus::Ok);
    EXPECT_EQ(pong.type, FrameType::Pong);
    EXPECT_EQ(pong.job_index, ping.job_index);
    EXPECT_EQ(pong.aux, ping.aux);
    EXPECT_EQ(pong.key, ping.key);
    ::close(fd);

    EXPECT_EQ(service.stop(), 0);
}

// ---- crash recovery ------------------------------------------------------

TEST(CampaignService, SigkillThenResumeReplaysInsteadOfRerunning)
{
    TempBase tmp("resume");
    ServiceProc service;
    service.start(fastService(tmp));

    // Run one full campaign so the journal holds every result, then
    // SIGKILL the service — the crash --resume must recover from.
    const ClientOptions copts = fastClient(tmp);
    const ClientOutcome first = runCampaignClient(copts);
    ASSERT_EQ(first.status, ClientStatus::Completed)
        << first.report.error;
    service.killHard();

    std::uint64_t records_before = 0, distinct_before = 0;
    countJournalRecords(tmp.journal(), records_before,
                        distinct_before);
    ASSERT_GT(records_before, 0u);

    ServiceOptions resumed = fastService(tmp);
    resumed.resume = true;
    ServiceProc service2;
    service2.start(resumed);

    const ClientOutcome replayed = runCampaignClient(copts);
    ASSERT_EQ(replayed.status, ClientStatus::Completed)
        << replayed.report.error;
    EXPECT_EQ(clientTable(replayed, copts), groundTruthTable());
    // Everything came back from the journal — nothing re-ran.
    EXPECT_EQ(replayed.report.replayed, replayed.jobs.size());

    EXPECT_EQ(service2.stop(), 0);

    std::uint64_t records_after = 0, distinct_after = 0;
    countJournalRecords(tmp.journal(), records_after,
                        distinct_after);
    EXPECT_EQ(records_after, records_before)
        << "resume must not append duplicate records";
    EXPECT_EQ(distinct_after, distinct_before);
}

// ---- drain ---------------------------------------------------------------

TEST(CampaignService, SigtermDrainsCleanlyAndUnlinksSocket)
{
    TempBase tmp("drain");
    ServiceOptions sopts = fastService(tmp);
    sopts.journal_base.clear();
    ServiceProc service;
    service.start(sopts);

    EXPECT_EQ(service.stop(), 0);
    EXPECT_NE(::access(tmp.socket().c_str(), F_OK), 0)
        << "drained service must unlink its socket";
}

} // namespace
} // namespace ckesim
