#include "sm/sm.hpp"

#include <algorithm>
#include <sstream>

#include "mem/coalescer.hpp"
#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
SimCtx
smCtx(SmId sm_id, Cycle now = kNeverCycle,
      KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.sm_id = sm_id;
    ctx.kernel = kernel;
    ctx.module = "sm";
    return ctx;
}
} // namespace

Sm::Sm(const GpuConfig &cfg, SmId sm_id, MemorySystem &mem,
       std::vector<const KernelProfile *> kernels,
       const IssuePolicyConfig &policy)
    : cfg_(cfg), sm_id_(sm_id), mem_(mem),
      controller_(policy, static_cast<int>(kernels.size())),
      l1d_(cfg.l1d, sm_id),
      lsu_(cfg.sm.lsu_queue_depth, cfg.l1d.hit_latency, sm_id),
      warps_(static_cast<std::size_t>(cfg.sm.max_warps)),
      scan_meta_(warps_.size()), scan_ready_(warps_.size()),
      scan_age_(warps_.size()),
      tbs_(static_cast<std::size_t>(cfg.sm.max_tbs))
{
    SIM_CHECK(!kernels.empty() &&
                  static_cast<int>(kernels.size()) <= kMaxKernelsPerSm,
              smCtx(sm_id),
              "SM built with " << kernels.size()
                               << " kernels (max " << kMaxKernelsPerSm
                               << ")");
    ctx_.resize(kernels.size());
    for (std::size_t k = 0; k < kernels.size(); ++k)
        ctx_[k].prof = kernels[k];

    schedulers_.reserve(static_cast<std::size_t>(cfg.sm.num_schedulers));
    for (int s = 0; s < cfg.sm.num_schedulers; ++s)
        schedulers_.emplace_back(s, cfg.sm.num_schedulers,
                                 cfg.sm.max_warps, cfg.sm.sched_policy);

    scratch_thread_addrs_.reserve(
        static_cast<std::size_t>(cfg.sm.simd_width));
    scratch_lines_.reserve(static_cast<std::size_t>(cfg.sm.simd_width));

    // Due-wheel span: the longest dependent-issue latency plus slack
    // (mem/store issues re-arm at now+1), rounded up to a power of
    // two so the bucket index is a mask.
    const int max_latency =
        std::max({cfg.sm.alu_latency, cfg.sm.sfu_latency,
                  cfg.sm.smem_latency, 1});
    std::size_t span = 1;
    while (span < static_cast<std::size_t>(max_latency) + 2)
        span <<= 1;
    due_wheel_.resize(span);
    due_mask_ = span - 1;
}

void
Sm::setTbQuota(KernelId k, int quota)
{
    ctx_[k.idx()].quota = quota;
}

void
Sm::resetStats()
{
    for (KernelCtx &c : ctx_)
        c.stats = KernelStats{};
    sm_stats_ = SmStats{};
}

void
Sm::drainFills(Cycle now)
{
    {
        ProfScope prof_noc(prof_, ProfComp::Noc);
        mem_.drainRepliesForSm(sm_id_, now, scratch_fills_);
    }
    if (scratch_fills_.empty())
        return;
    ProfScope prof_l1d(prof_, ProfComp::L1d);
    for (const MemRequest &fill : scratch_fills_) {
        l1d_.fill(fill.line_addr, scratch_targets_);
        for (const L1Target &t : scratch_targets_)
            requestReturned(t.warp_slot, now);
    }
}

void
Sm::processWakes(Cycle now)
{
    while (!wakes_.empty() && wakes_.top().first <= now) {
        const WarpSlot slot = wakes_.top().second;
        wakes_.pop();
        requestReturned(slot, now);
    }
}

void
Sm::requestReturned(WarpSlot warp_slot, Cycle now)
{
    Warp &w = warps_[warp_slot.idx()];
    SIM_INVARIANT(w.pending_requests > 0,
                  smCtx(sm_id_, now, w.kernel),
                  "wake for warp slot "
                      << warp_slot
                      << " with no pending request (duplicate or "
                         "misrouted fill)");
    ++lifetime_returns_;
    const bool load_done = w.retireRequest();
    if (load_done)
        controller_.onMemInstrCompleted(w.kernel);

    if (w.state != WarpState::WaitMem)
        return;
    // Blocked on memory-level parallelism: resume once under the
    // profile's in-flight load bound again.
    const KernelProfile &prof = *ctx_[w.kernel.idx()].prof;
    if (w.outstanding_loads >= prof.mlp)
        return;
    if (w.stream_done) {
        if (w.outstanding_loads == 0)
            retireWarp(warp_slot);
        return;
    }
    w.state = WarpState::Ready;
    syncScan(warp_slot.idx());
}

void
Sm::retireWarp(WarpSlot slot)
{
    Warp &w = warps_[slot.idx()];
    w.state = WarpState::Done;
    syncScan(slot.idx());
    ThreadBlock &tb = tbs_[static_cast<std::size_t>(w.tb_index)];
    SIM_INVARIANT(tb.active && tb.warps_left > 0,
                  smCtx(sm_id_, now_, w.kernel),
                  "warp retirement into inactive TB slot "
                      << w.tb_index << " (active=" << tb.active
                      << " warps_left=" << tb.warps_left << ")");
    if (--tb.warps_left > 0)
        return;

    // Whole TB finished: release its warp slots and static resources.
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        Warp &o = warps_[s];
        if (o.state == WarpState::Done &&
            o.tb_index == w.tb_index) {
            o.state = WarpState::Invalid;
            o.tb_index = -1;
            syncScan(s);
        }
    }
    KernelCtx &c = ctx_[tb.kernel.idx()];
    const KernelProfile &prof = *c.prof;
    used_.regs -= prof.regsPerTb();
    used_.smem -= prof.smem_per_tb;
    used_.threads -= prof.threads_per_tb;
    used_.warps -= tb.num_warps;
    used_.tbs -= 1;
    c.resident -= 1;
    c.stats.tbs_completed += 1;
    tb.active = false;
}

void
Sm::preScan(Cycle now, std::array<bool, kMaxKernelsPerSm> &mem_demand)
{
    // Due warps were filed at issue time; only they can transition
    // this cycle, so the full-table scan is gone.
    std::vector<WarpSlot> &due =
        due_wheel_[static_cast<std::size_t>(now.get()) & due_mask_];
    if (!due.empty()) {
        // Ascending slot order: identical transition order to the
        // full scan this replaces.
        std::sort(due.begin(), due.end());
        for (const WarpSlot slot : due) {
            Warp &w = warps_[slot.idx()];
            SIM_INVARIANT(w.state == WarpState::Busy &&
                              w.ready_at <= now,
                          smCtx(sm_id_, now, w.kernel),
                          "due-wheel entry for warp slot "
                              << slot << " in state "
                              << static_cast<int>(w.state)
                              << " (ready_at " << w.ready_at << ")");
            if (w.stream_done) {
                if (w.outstanding_loads == 0) {
                    retireWarp(slot);
                } else {
                    w.state = WarpState::WaitMem;
                    syncScan(slot.idx());
                }
                continue;
            }
            w.state = WarpState::Ready;
            syncScan(slot.idx());
        }
        due.clear();
    }
    // mem_demand falls out of the incrementally maintained counters.
    for (int k = 0; k < kMaxKernelsPerSm; ++k)
        mem_demand[static_cast<std::size_t>(k)] =
            ready_mem_[static_cast<std::size_t>(k)] > 0;
}

bool
Sm::resourcesFit(const KernelProfile &prof) const
{
    const SmConfig &sm = cfg_.sm;
    const int w = prof.warpsPerTb(sm.simd_width);
    return used_.tbs + 1 <= sm.max_tbs &&
           used_.threads + prof.threads_per_tb <= sm.max_threads &&
           used_.warps + w <= sm.max_warps &&
           used_.regs + prof.regsPerTb() <= sm.register_file &&
           used_.smem + prof.smem_per_tb <= sm.smem_bytes;
}

bool
Sm::launchTb(KernelId k)
{
    KernelCtx &c = ctx_[k.idx()];
    const KernelProfile &prof = *c.prof;
    const int warps_needed = prof.warpsPerTb(cfg_.sm.simd_width);

    // Find a TB table slot.
    int tb_index = -1;
    for (std::size_t i = 0; i < tbs_.size(); ++i) {
        if (!tbs_[i].active) {
            tb_index = static_cast<int>(i);
            break;
        }
    }
    if (tb_index < 0)
        return false;

    // Collect free warp slots.
    int found = 0;
    int slots[64];
    for (std::size_t s = 0; s < warps_.size() && found < warps_needed;
         ++s) {
        if (warps_[s].state == WarpState::Invalid)
            slots[found++] = static_cast<int>(s);
    }
    if (found < warps_needed)
        return false;

    const std::uint64_t tb_seq =
        c.tb_seq++ +
        static_cast<std::uint64_t>(sm_id_.get()) * std::uint64_t{100003};

    ThreadBlock &tb = tbs_[static_cast<std::size_t>(tb_index)];
    tb.active = true;
    tb.kernel = k;
    tb.seq = tb_seq;
    tb.num_warps = warps_needed;
    tb.warps_left = warps_needed;

    const std::uint64_t age = age_counter_++;
    for (int i = 0; i < warps_needed; ++i) {
        Warp &w = warps_[static_cast<std::size_t>(slots[i])];
        w.state = WarpState::Ready;
        w.kernel = k;
        w.tb_index = tb_index;
        w.pending_requests = 0;
        w.load_head = 0;
        w.outstanding_loads = 0;
        w.age = age;
        const std::uint64_t seed =
            cfg_.seed ^ (tb_seq * std::uint64_t{1000003}) ^
            static_cast<std::uint64_t>(i);
        w.stream.reset(prof, seed);
        w.refreshStreamCache();
        initAddrGen(w.addr, prof, k, tb_seq, i, warps_needed,
                    cfg_.seed, cfg_.l1d.line_bytes);
        syncScan(static_cast<std::size_t>(slots[i]));
    }

    used_.regs += prof.regsPerTb();
    used_.smem += prof.smem_per_tb;
    used_.threads += prof.threads_per_tb;
    used_.warps += warps_needed;
    used_.tbs += 1;
    c.resident += 1;
    return true;
}

void
Sm::tryDispatch(Cycle now)
{
    (void)now;
    // At most one TB launch per cycle, round-robin across kernels.
    const int n = numKernels();
    for (int i = 0; i < n; ++i) {
        const int ki = (dispatch_rr_ + i) % n;
        KernelCtx &c = ctx_[static_cast<std::size_t>(ki)];
        if (c.resident >= c.quota)
            continue;
        if (!resourcesFit(*c.prof))
            continue;
        if (launchTb(KernelId{ki})) {
            dispatch_rr_ = (ki + 1) % n;
            return;
        }
    }
}

bool
Sm::canIssueWarp(WarpSlot slot) const
{
    const std::uint8_t meta = scan_meta_[slot.idx()];
    if ((meta & kScanStateMask) !=
        static_cast<std::uint8_t>(WarpState::Ready))
        return false;
    const KernelId k{meta >> kScanKernelShift};
    if (!controller_.admitAnyIssue(k))
        return false;
    if ((meta & kScanMemBit) != 0) {
        if (!lsu_.hasRoom())
            return false;
        if (!controller_.admitMemIssue(k))
            return false;
    }
    return true;
}

void
Sm::issueFrom(WarpSlot slot, Cycle now)
{
    Warp &w = warps_[slot.idx()];
    KernelCtx &c = ctx_[w.kernel.idx()];
    const InstrKind kind = w.stream.advance();
    w.refreshStreamCache();

    ++c.stats.issued_instructions;
    ++sm_stats_.issue_slots_used;
    ++lifetime_issued_;
    controller_.onInstrIssued(w.kernel);
    if (c.issue_series)
        c.issue_series->record(now);

    switch (kind) {
      case InstrKind::Alu:
        ++c.stats.alu_instructions;
        ++sm_stats_.alu_issue_slots;
        w.state = WarpState::Busy;
        w.ready_at = now + cfg_.sm.alu_latency;
        break;
      case InstrKind::Sfu:
        ++c.stats.sfu_instructions;
        ++sm_stats_.sfu_issue_slots;
        w.state = WarpState::Busy;
        w.ready_at = now + cfg_.sm.sfu_latency;
        break;
      case InstrKind::Smem:
        ++c.stats.smem_instructions;
        w.state = WarpState::Busy;
        w.ready_at = now + cfg_.sm.smem_latency;
        break;
      case InstrKind::MemLoad:
      case InstrKind::MemStore: {
        generateAccess(w.addr, *c.prof, cfg_.l1d.line_bytes,
                       cfg_.sm.simd_width, scratch_thread_addrs_);
        coalesce(scratch_thread_addrs_, cfg_.l1d.line_bytes,
                 scratch_lines_);
        const bool is_store = kind == InstrKind::MemStore;
        lsu_.enqueue(slot, w.kernel, is_store, scratch_lines_);
        controller_.onMemInstrIssued(w.kernel);
        ++c.stats.mem_instructions;
        c.stats.mem_requests += scratch_lines_.size();
        if (is_store) {
            // Stores do not block the warp.
            w.state = WarpState::Busy;
            w.ready_at = now + 1;
        } else {
            w.pending_requests +=
                static_cast<int>(scratch_lines_.size());
            w.pushLoad(static_cast<int>(scratch_lines_.size()));
            if (w.outstanding_loads >= c.prof->mlp) {
                w.state = WarpState::WaitMem;
            } else {
                // Independent loads overlap (MLP); issue-limited only.
                w.state = WarpState::Busy;
                w.ready_at = now + 1;
            }
        }
        break;
      }
    }
    if (w.state == WarpState::Busy)
        fileDue(slot, w.ready_at);
    syncScan(slot.idx());
}

void
Sm::tick(Cycle now)
{
    ProfScope prof_sm(prof_, ProfComp::SmIssue);
    now_ = now;
    drainFills(now);
    processWakes(now);

    std::array<bool, kMaxKernelsPerSm> mem_demand{};
    preScan(now, mem_demand);
    controller_.beginCycle(mem_demand);

    tryDispatch(now);

    // GTO reads ages through the dense mirror, not the Warp records.
    struct AgeView
    {
        const std::uint64_t *ages;
        struct Ref
        {
            std::uint64_t age;
        };
        Ref operator[](std::size_t i) const { return {ages[i]}; }
    };
    const AgeView ages{scan_age_.data()};
    for (WarpScheduler &sched : schedulers_) {
        const WarpSlot slot = sched.pick(
            ages, [&](WarpSlot s) { return canIssueWarp(s); });
        if (!slot.valid())
            continue;
        issueFrom(slot, now);
        sched.onIssue(slot);
    }

    // Injected fault: the head access fails reservation regardless
    // of actual resource availability (degraded-pipeline study).
    if (faults_ && !lsu_.empty() && faults_->forceRsFail(sm_id_, now)) {
        lsuReservationFailure(lsu_.headKernel(), RsFailReason::Mshr);
        ++sm_stats_.lsu_stall_cycles;
    } else {
        ProfScope prof_lsu(prof_, ProfComp::Lsu);
        if (lsu_.tick(now, l1d_, *this))
            ++sm_stats_.lsu_stall_cycles;
    }

    // Drain at most one miss-queue entry into the interconnect.
    if (const MemRequest *head = l1d_.peekMissQueue()) {
        ProfScope prof_noc(prof_, ProfComp::Noc);
        if (mem_.injectFromSm(*head, now))
            l1d_.popMissQueue();
    }

    ++sm_stats_.cycles;
}

void
Sm::drainTick(Cycle now)
{
    now_ = now;
    drainFills(now);
    processWakes(now);
    lsu_.tick(now, l1d_, *this);
    if (const MemRequest *head = l1d_.peekMissQueue()) {
        if (mem_.injectFromSm(*head, now))
            l1d_.popMissQueue();
    }
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    // Same-cycle work: the LSU services its head and the miss queue
    // injects downstream every cycle they hold anything.
    if (!lsu_.empty() || l1d_.missQueueSize() > 0)
        return now;
    // SMK epoch counters / depleted QBMI quotas mutate in beginCycle.
    if (controller_.hasPerCycleWork())
        return now;
    // tryDispatch launches a TB whenever quota and resources allow.
    for (const KernelCtx &c : ctx_)
        if (c.resident < c.quota && resourcesFit(*c.prof))
            return now;

    Cycle horizon = kNeverCycle;
    std::array<bool, kMaxKernelsPerSm> demand{};
    for (std::size_t s = 0; s < scan_meta_.size(); ++s) {
        const std::uint8_t meta = scan_meta_[s];
        const std::uint8_t st = meta & kScanStateMask;
        if (st == static_cast<std::uint8_t>(WarpState::Busy)) {
            // A due warp transitions in preScan this very cycle.
            if (scan_ready_[s] <= now)
                return now;
            horizon = earliestEvent(horizon, scan_ready_[s]);
        } else if (st == static_cast<std::uint8_t>(WarpState::Ready)) {
            if (canIssueWarp(WarpSlot{s}))
                return now;
            // Issue-blocked (MIL-frozen / BMI-deprioritized) warps
            // are passive: every unblocking cause is an event some
            // other horizon reports. They still register demand.
            if ((meta & kScanMemBit) != 0)
                demand[meta >> kScanKernelShift] = true;
        }
    }
    // beginCycle latches the demand vector (snapshotted state): with
    // no Busy warp due, the current Ready set IS the post-preScan
    // set, so a latched copy differing from it needs one strict tick
    // to sync before any skip is bit-exact.
    if (demand != controller_.memDemand())
        return now;
    if (!wakes_.empty())
        horizon = earliestEvent(
            horizon, clampHorizon(wakes_.top().first, now));
    return horizon;
}

void
Sm::skipIdleCycles(Cycle target, std::uint64_t delta)
{
    // The only state an idle tick mutates: the clock and the cycle
    // counter (beginCycle re-latches an identical demand vector).
    // Land on target - 1 so the strict tick at target is the first
    // cycle that actually executes — exactly as if every skipped
    // cycle had ticked.
    sm_stats_.cycles += delta;
    now_ = target - 1;
}

bool
Sm::hasWork() const
{
    if (!lsu_.empty() || l1d_.mshrsInUse() > 0 ||
        l1d_.missQueueSize() > 0 || !wakes_.empty())
        return true;
    for (const ThreadBlock &tb : tbs_)
        if (tb.active)
            return true;
    return false;
}

bool
Sm::memDrained() const
{
    if (!lsu_.empty() || l1d_.mshrsInUse() > 0 ||
        l1d_.missQueueSize() > 0 || !wakes_.empty())
        return false;
    for (const Warp &w : warps_) {
        if (w.state != WarpState::Invalid && w.pending_requests > 0)
            return false;
    }
    return true;
}

void
Sm::checkInvariants(Cycle now) const
{
    l1d_.checkInvariants(now);
    const SimCtx ctx = smCtx(sm_id_, now);
    SIM_INVARIANT(lsu_.size() <= cfg_.sm.lsu_queue_depth, ctx,
                  "LSU queue occupancy " << lsu_.size()
                                         << " exceeds depth "
                                         << cfg_.sm.lsu_queue_depth);
    SIM_INVARIANT(used_.tbs >= 0 && used_.tbs <= cfg_.sm.max_tbs, ctx,
                  "TB slot accounting out of range: " << used_.tbs);
    SIM_INVARIANT(used_.warps >= 0 && used_.warps <= cfg_.sm.max_warps,
                  ctx,
                  "warp slot accounting out of range: " << used_.warps);
    SIM_INVARIANT(used_.regs >= 0 &&
                      used_.regs <= cfg_.sm.register_file,
                  ctx, "register accounting out of range: "
                           << used_.regs);
    SIM_INVARIANT(used_.smem >= 0 && used_.smem <= cfg_.sm.smem_bytes,
                  ctx,
                  "shared-memory accounting out of range: "
                      << used_.smem);
    int resident = 0;
    for (const KernelCtx &c : ctx_) {
        SIM_INVARIANT(c.resident >= 0,
                      smCtx(sm_id_, now, KernelId{&c - ctx_.data()}),
                      "negative resident TB count " << c.resident);
        resident += c.resident;
    }
    SIM_INVARIANT(resident == used_.tbs, ctx,
                  "per-kernel resident TBs sum "
                      << resident << " != TB slots in use "
                      << used_.tbs);
    for (int ki = 0; ki < numKernels(); ++ki) {
        const KernelId k{ki};
        SIM_INVARIANT(controller_.inflight(k) >= 0,
                      smCtx(sm_id_, now, k),
                      "negative in-flight memory instruction count "
                          << controller_.inflight(k));
    }
}

void
Sm::checkDrained(Cycle now) const
{
    l1d_.checkDrained(now);
    const SimCtx ctx = smCtx(sm_id_, now);
    SIM_INVARIANT(lsu_.empty(), ctx,
                  "audit: LSU queue still holds " << lsu_.size()
                                                  << " entr(ies)");
    SIM_INVARIANT(wakes_.empty(), ctx,
                  "audit: " << wakes_.size()
                            << " hit-return wake(s) never processed");
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        const Warp &w = warps_[s];
        if (w.state == WarpState::Invalid)
            continue;
        SIM_INVARIANT(w.pending_requests == 0,
                      smCtx(sm_id_, now, w.kernel),
                      "audit: warp slot "
                          << s << " still has " << w.pending_requests
                          << " pending request(s) after drain");
    }
}

std::string
Sm::describeState() const
{
    std::ostringstream os;
    os << "sm " << sm_id_ << ": lsu_q=" << lsu_.size();
    if (!lsu_.empty())
        os << " (head kernel " << lsu_.headKernel() << ")";
    os << " l1_mshr=" << l1d_.mshrsInUse()
       << " l1_missq=" << l1d_.missQueueSize()
       << " wakes=" << wakes_.size();
    for (int ki = 0; ki < numKernels(); ++ki) {
        const KernelId k{ki};
        const KernelCtx &c = ctx_[k.idx()];
        os << " | k" << k << ": tbs=" << c.resident << "/" << c.quota
           << " inflight=" << controller_.inflight(k)
           << " mil=" << controller_.milLimit(k)
           << " quota=" << controller_.qbmiQuota(k);
    }
    return os.str();
}

// ---- snapshot / restore -------------------------------------------------

namespace {

void
snapshotAddrGen(SnapshotWriter &w, const AddrGenState &st)
{
    const Rng::State rs = st.rng.state();
    w.u64(rs.s0);
    w.u64(rs.s1);
    w.u64(st.stream_cursor);
    w.u64(st.stream_base_line);
    w.u64(st.stream_region_lines);
    w.u64(st.stream_stride);
    w.u64(st.stream_offset);
    w.u64(st.footprint_base_line);
    w.u64(st.footprint_lines);
    for (const std::uint64_t line : st.ring)
        w.u64(line);
    w.i64(st.ring_count);
    w.i64(st.ring_pos);
}

void
restoreAddrGen(SnapshotReader &r, AddrGenState &st)
{
    Rng::State rs;
    rs.s0 = r.u64();
    rs.s1 = r.u64();
    st.rng.setState(rs);
    st.stream_cursor = r.u64();
    st.stream_base_line = r.u64();
    st.stream_region_lines = r.u64();
    st.stream_stride = r.u64();
    st.stream_offset = r.u64();
    st.footprint_base_line = r.u64();
    st.footprint_lines = r.u64();
    for (std::uint64_t &line : st.ring)
        line = r.u64();
    st.ring_count = static_cast<int>(r.i64());
    st.ring_pos = static_cast<int>(r.i64());
}

void
snapshotWarp(SnapshotWriter &w, const Warp &warp)
{
    w.u8(static_cast<std::uint8_t>(warp.state));
    w.id(warp.kernel);
    w.i64(warp.tb_index);
    w.unit(warp.ready_at);
    w.i64(warp.pending_requests);
    w.u64(warp.age);
    warp.stream.snapshot(w);
    snapshotAddrGen(w, warp.addr);
    for (const int n : warp.load_ring)
        w.i64(n);
    w.i64(warp.load_head);
    w.i64(warp.outstanding_loads);
}

void
restoreWarp(SnapshotReader &r, Warp &warp, const KernelProfile *prof)
{
    warp.state = static_cast<WarpState>(r.u8());
    warp.kernel = r.id<KernelId>();
    warp.tb_index = static_cast<int>(r.i64());
    warp.ready_at = r.unit<Cycle>();
    warp.pending_requests = static_cast<int>(r.i64());
    warp.age = r.u64();
    warp.stream.restore(r, prof);
    restoreAddrGen(r, warp.addr);
    for (int &n : warp.load_ring)
        n = static_cast<int>(r.i64());
    warp.load_head = static_cast<int>(r.i64());
    warp.outstanding_loads = static_cast<int>(r.i64());
    // Derived fields: not in the snapshot, recomputed here.
    warp.refreshStreamCache();
}

} // namespace

void
Sm::snapshot(SnapshotWriter &w) const
{
    w.section("sm");
    controller_.snapshot(w);
    l1d_.snapshot(w);
    lsu_.snapshot(w);
    for (const WarpScheduler &sched : schedulers_)
        sched.snapshot(w);

    w.u64(ctx_.size());
    for (const KernelCtx &c : ctx_) {
        w.i64(c.quota);
        w.i64(c.resident);
        w.u64(c.tb_seq);
        snapshotKernelStats(w, c.stats);
    }

    w.u64(warps_.size());
    for (const Warp &warp : warps_)
        snapshotWarp(w, warp);

    w.u64(tbs_.size());
    for (const ThreadBlock &tb : tbs_) {
        w.boolean(tb.active);
        w.id(tb.kernel);
        w.u64(tb.seq);
        w.i64(tb.warps_left);
        w.i64(tb.num_warps);
    }

    w.i64(used_.regs);
    w.i64(used_.smem);
    w.i64(used_.threads);
    w.i64(used_.tbs);
    w.i64(used_.warps);
    snapshotSmStats(w, sm_stats_);
    w.u64(age_counter_);
    w.i64(dispatch_rr_);
    w.unit(now_);

    // The wake heap pops in deterministic (cycle, slot) order; a copy
    // drained to a flat list re-heapifies identically on restore.
    auto heap = wakes_;
    w.u64(heap.size());
    while (!heap.empty()) {
        w.unit(heap.top().first);
        w.id(heap.top().second);
        heap.pop();
    }

    w.u64(lifetime_issued_);
    w.u64(lifetime_returns_);
}

void
Sm::restore(SnapshotReader &r)
{
    r.section("sm");
    const SimCtx ctx = smCtx(sm_id_);
    controller_.restore(r);
    l1d_.restore(r);
    lsu_.restore(r);
    for (WarpScheduler &sched : schedulers_)
        sched.restore(r);

    const std::uint64_t nk = r.u64();
    SIM_CHECK(nk == ctx_.size(), ctx,
              "snapshot holds " << nk << " kernel contexts, SM has "
                                << ctx_.size());
    for (KernelCtx &c : ctx_) {
        c.quota = static_cast<int>(r.i64());
        c.resident = static_cast<int>(r.i64());
        c.tb_seq = r.u64();
        c.stats = restoreKernelStats(r);
    }

    const std::uint64_t nw = r.u64();
    SIM_CHECK(nw == warps_.size(), ctx,
              "snapshot holds " << nw << " warp slots, SM has "
                                << warps_.size());
    for (Warp &warp : warps_) {
        restoreWarp(r, warp, nullptr);
        // The warp's kernel is known only after its record is read;
        // rebind the stream's profile from it (stale-but-unused
        // pointers on Invalid/Done slots stay null harmlessly).
        if (warp.kernel.valid())
            warp.stream.rebindProfile(ctx_[warp.kernel.idx()].prof);
    }
    // Rebuild the dense scan mirrors and demand counters (derived;
    // not serialized). Clearing first makes syncScan's incremental
    // counter maintenance start from a blank slate.
    std::fill(scan_meta_.begin(), scan_meta_.end(),
              static_cast<std::uint8_t>(0));
    ready_mem_.fill(0);
    for (std::size_t s = 0; s < warps_.size(); ++s)
        syncScan(s);

    const std::uint64_t nt = r.u64();
    SIM_CHECK(nt == tbs_.size(), ctx,
              "snapshot holds " << nt << " TB slots, SM has "
                                << tbs_.size());
    for (ThreadBlock &tb : tbs_) {
        tb.active = r.boolean();
        tb.kernel = r.id<KernelId>();
        tb.seq = r.u64();
        tb.warps_left = static_cast<int>(r.i64());
        tb.num_warps = static_cast<int>(r.i64());
    }

    used_.regs = static_cast<int>(r.i64());
    used_.smem = static_cast<int>(r.i64());
    used_.threads = static_cast<int>(r.i64());
    used_.tbs = static_cast<int>(r.i64());
    used_.warps = static_cast<int>(r.i64());
    sm_stats_ = restoreSmStats(r);
    age_counter_ = r.u64();
    dispatch_rr_ = static_cast<int>(r.i64());
    now_ = r.unit<Cycle>();

    wakes_ = decltype(wakes_){};
    const std::uint64_t nwakes = r.u64();
    for (std::uint64_t i = 0; i < nwakes; ++i) {
        const Cycle at = r.unit<Cycle>();
        const WarpSlot slot = r.id<WarpSlot>();
        wakes_.emplace(at, slot);
    }

    lifetime_issued_ = r.u64();
    lifetime_returns_ = r.u64();

    // Refile every Busy warp in the due-wheel (derived; needs the
    // restored now_). A warp already due — possible only in exotic
    // snapshots — files at the next tick, matching the old full
    // scan's pickup time.
    for (std::vector<WarpSlot> &bucket : due_wheel_)
        bucket.clear();
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        const Warp &warp = warps_[s];
        if (warp.state != WarpState::Busy)
            continue;
        fileDue(WarpSlot{s},
                warp.ready_at > now_ ? warp.ready_at : now_ + 1);
    }
}

// ---- LsuHost ------------------------------------------------------------

void
Sm::lsuHitReturn(WarpSlot warp_slot, KernelId k, Cycle ready_at)
{
    (void)k;
    wakes_.emplace(ready_at, warp_slot);
}

void
Sm::lsuEntryDrained(WarpSlot warp_slot, KernelId k, bool is_store)
{
    (void)warp_slot;
    if (is_store)
        controller_.onMemInstrCompleted(k);
}

void
Sm::lsuAccessServiced(KernelId k, LineAddr line,
                      const L1Outcome &outcome)
{
    KernelCtx &c = ctx_[k.idx()];
    ++c.stats.l1d_accesses;
    switch (outcome.kind) {
      case L1Outcome::Kind::Hit:
        ++c.stats.l1d_hits;
        break;
      case L1Outcome::Kind::MissToL2:
      case L1Outcome::Kind::MergedMshr: // still waits for the fill
      case L1Outcome::Kind::WriteQueued:
        ++c.stats.l1d_misses;
        break;
      case L1Outcome::Kind::RsFail:
        break;
    }
    controller_.onRequestServiced(k);
    if (c.l1d_series)
        c.l1d_series->record(now_);
    if (access_observer_)
        access_observer_(access_observer_opaque_, k, line);
}

void
Sm::lsuReservationFailure(KernelId k, RsFailReason reason)
{
    KernelCtx &c = ctx_[k.idx()];
    ++c.stats.l1d_rsfails;
    switch (reason) {
      case RsFailReason::Line:
        ++c.stats.l1d_rsfail_line;
        break;
      case RsFailReason::Mshr:
        ++c.stats.l1d_rsfail_mshr;
        break;
      case RsFailReason::MissQueue:
        ++c.stats.l1d_rsfail_missq;
        break;
      case RsFailReason::None:
        break;
    }
    controller_.onRsFail(k);
}

} // namespace ckesim
