#include "sm/sm.hpp"

#include <cassert>

#include "mem/coalescer.hpp"

namespace ckesim {

Sm::Sm(const GpuConfig &cfg, int sm_id, MemorySystem &mem,
       std::vector<const KernelProfile *> kernels,
       const IssuePolicyConfig &policy)
    : cfg_(cfg), sm_id_(sm_id), mem_(mem),
      controller_(policy, static_cast<int>(kernels.size())),
      l1d_(cfg.l1d, sm_id),
      lsu_(cfg.sm.lsu_queue_depth, cfg.l1d.hit_latency),
      warps_(static_cast<std::size_t>(cfg.sm.max_warps)),
      tbs_(static_cast<std::size_t>(cfg.sm.max_tbs))
{
    assert(!kernels.empty() &&
           static_cast<int>(kernels.size()) <= kMaxKernelsPerSm);
    ctx_.resize(kernels.size());
    for (std::size_t k = 0; k < kernels.size(); ++k)
        ctx_[k].prof = kernels[k];

    schedulers_.reserve(static_cast<std::size_t>(cfg.sm.num_schedulers));
    for (int s = 0; s < cfg.sm.num_schedulers; ++s)
        schedulers_.emplace_back(s, cfg.sm.num_schedulers,
                                 cfg.sm.max_warps, cfg.sm.sched_policy);

    scratch_thread_addrs_.reserve(
        static_cast<std::size_t>(cfg.sm.simd_width));
    scratch_lines_.reserve(static_cast<std::size_t>(cfg.sm.simd_width));
}

void
Sm::setTbQuota(KernelId k, int quota)
{
    ctx_[static_cast<std::size_t>(k)].quota = quota;
}

void
Sm::resetStats()
{
    for (KernelCtx &c : ctx_)
        c.stats = KernelStats{};
    sm_stats_ = SmStats{};
}

void
Sm::drainFills(Cycle now)
{
    for (const MemRequest &fill : mem_.drainRepliesForSm(sm_id_, now)) {
        for (const L1Target &t : l1d_.fill(fill.line_addr))
            requestReturned(t.warp_index, now);
    }
}

void
Sm::processWakes(Cycle now)
{
    while (!wakes_.empty() && wakes_.top().first <= now) {
        const int slot = wakes_.top().second;
        wakes_.pop();
        requestReturned(slot, now);
    }
}

void
Sm::requestReturned(int warp_slot, Cycle now)
{
    (void)now;
    Warp &w = warps_[static_cast<std::size_t>(warp_slot)];
    assert(w.pending_requests > 0);
    const bool load_done = w.retireRequest();
    if (load_done)
        controller_.onMemInstrCompleted(w.kernel);

    if (w.state != WarpState::WaitMem)
        return;
    // Blocked on memory-level parallelism: resume once under the
    // profile's in-flight load bound again.
    const KernelProfile &prof =
        *ctx_[static_cast<std::size_t>(w.kernel)].prof;
    if (w.outstanding_loads >= prof.mlp)
        return;
    if (w.stream.done()) {
        if (w.outstanding_loads == 0)
            retireWarp(warp_slot);
        return;
    }
    w.state = WarpState::Ready;
}

void
Sm::retireWarp(int slot)
{
    Warp &w = warps_[static_cast<std::size_t>(slot)];
    w.state = WarpState::Done;
    ThreadBlock &tb = tbs_[static_cast<std::size_t>(w.tb_index)];
    assert(tb.active && tb.warps_left > 0);
    if (--tb.warps_left > 0)
        return;

    // Whole TB finished: release its warp slots and static resources.
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        Warp &o = warps_[s];
        if (o.state == WarpState::Done &&
            o.tb_index == w.tb_index) {
            o.state = WarpState::Invalid;
            o.tb_index = -1;
        }
    }
    KernelCtx &c = ctx_[static_cast<std::size_t>(tb.kernel)];
    const KernelProfile &prof = *c.prof;
    used_.regs -= prof.regsPerTb();
    used_.smem -= prof.smem_per_tb;
    used_.threads -= prof.threads_per_tb;
    used_.warps -= tb.num_warps;
    used_.tbs -= 1;
    c.resident -= 1;
    c.stats.tbs_completed += 1;
    tb.active = false;
}

void
Sm::preScan(Cycle now, std::array<bool, kMaxKernelsPerSm> &mem_demand)
{
    mem_demand.fill(false);
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        Warp &w = warps_[s];
        if (w.state == WarpState::Busy && w.ready_at <= now) {
            if (w.stream.done()) {
                if (w.outstanding_loads == 0)
                    retireWarp(static_cast<int>(s));
                else
                    w.state = WarpState::WaitMem;
                continue;
            }
            w.state = WarpState::Ready;
        }
        if (w.state == WarpState::Ready &&
            isGlobalMem(w.stream.peek()))
            mem_demand[static_cast<std::size_t>(w.kernel)] = true;
    }
}

bool
Sm::resourcesFit(const KernelProfile &prof) const
{
    const SmConfig &sm = cfg_.sm;
    const int w = prof.warpsPerTb(sm.simd_width);
    return used_.tbs + 1 <= sm.max_tbs &&
           used_.threads + prof.threads_per_tb <= sm.max_threads &&
           used_.warps + w <= sm.max_warps &&
           used_.regs + prof.regsPerTb() <= sm.register_file &&
           used_.smem + prof.smem_per_tb <= sm.smem_bytes;
}

bool
Sm::launchTb(KernelId k)
{
    KernelCtx &c = ctx_[static_cast<std::size_t>(k)];
    const KernelProfile &prof = *c.prof;
    const int warps_needed = prof.warpsPerTb(cfg_.sm.simd_width);

    // Find a TB table slot.
    int tb_index = -1;
    for (std::size_t i = 0; i < tbs_.size(); ++i) {
        if (!tbs_[i].active) {
            tb_index = static_cast<int>(i);
            break;
        }
    }
    if (tb_index < 0)
        return false;

    // Collect free warp slots.
    int found = 0;
    int slots[64];
    for (std::size_t s = 0; s < warps_.size() && found < warps_needed;
         ++s) {
        if (warps_[s].state == WarpState::Invalid)
            slots[found++] = static_cast<int>(s);
    }
    if (found < warps_needed)
        return false;

    const std::uint64_t tb_seq =
        c.tb_seq++ + static_cast<std::uint64_t>(sm_id_) * 100003ULL;

    ThreadBlock &tb = tbs_[static_cast<std::size_t>(tb_index)];
    tb.active = true;
    tb.kernel = k;
    tb.seq = tb_seq;
    tb.num_warps = warps_needed;
    tb.warps_left = warps_needed;

    const std::uint64_t age = age_counter_++;
    for (int i = 0; i < warps_needed; ++i) {
        Warp &w = warps_[static_cast<std::size_t>(slots[i])];
        w.state = WarpState::Ready;
        w.kernel = k;
        w.tb_index = tb_index;
        w.pending_requests = 0;
        w.load_head = 0;
        w.outstanding_loads = 0;
        w.age = age;
        const std::uint64_t seed =
            cfg_.seed ^ (tb_seq * 1000003ULL) ^
            static_cast<std::uint64_t>(i);
        w.stream.reset(prof, seed);
        initAddrGen(w.addr, prof, k, tb_seq, i, warps_needed,
                    cfg_.seed, cfg_.l1d.line_bytes);
    }

    used_.regs += prof.regsPerTb();
    used_.smem += prof.smem_per_tb;
    used_.threads += prof.threads_per_tb;
    used_.warps += warps_needed;
    used_.tbs += 1;
    c.resident += 1;
    return true;
}

void
Sm::tryDispatch(Cycle now)
{
    (void)now;
    // At most one TB launch per cycle, round-robin across kernels.
    const int n = numKernels();
    for (int i = 0; i < n; ++i) {
        const int k = (dispatch_rr_ + i) % n;
        KernelCtx &c = ctx_[static_cast<std::size_t>(k)];
        if (c.resident >= c.quota)
            continue;
        if (!resourcesFit(*c.prof))
            continue;
        if (launchTb(k)) {
            dispatch_rr_ = (k + 1) % n;
            return;
        }
    }
}

bool
Sm::canIssueWarp(int slot) const
{
    const Warp &w = warps_[static_cast<std::size_t>(slot)];
    if (w.state != WarpState::Ready)
        return false;
    if (!controller_.admitAnyIssue(w.kernel))
        return false;
    if (isGlobalMem(w.stream.peek())) {
        if (!lsu_.hasRoom())
            return false;
        if (!controller_.admitMemIssue(w.kernel))
            return false;
    }
    return true;
}

void
Sm::issueFrom(int slot, Cycle now)
{
    Warp &w = warps_[static_cast<std::size_t>(slot)];
    KernelCtx &c = ctx_[static_cast<std::size_t>(w.kernel)];
    const InstrKind kind = w.stream.advance();

    ++c.stats.issued_instructions;
    ++sm_stats_.issue_slots_used;
    controller_.onInstrIssued(w.kernel);
    if (c.issue_series)
        c.issue_series->record(now);

    switch (kind) {
      case InstrKind::Alu:
        ++c.stats.alu_instructions;
        ++sm_stats_.alu_issue_slots;
        w.state = WarpState::Busy;
        w.ready_at = now + static_cast<Cycle>(cfg_.sm.alu_latency);
        break;
      case InstrKind::Sfu:
        ++c.stats.sfu_instructions;
        ++sm_stats_.sfu_issue_slots;
        w.state = WarpState::Busy;
        w.ready_at = now + static_cast<Cycle>(cfg_.sm.sfu_latency);
        break;
      case InstrKind::Smem:
        ++c.stats.smem_instructions;
        w.state = WarpState::Busy;
        w.ready_at = now + static_cast<Cycle>(cfg_.sm.smem_latency);
        break;
      case InstrKind::MemLoad:
      case InstrKind::MemStore: {
        generateAccess(w.addr, *c.prof, cfg_.l1d.line_bytes,
                       cfg_.sm.simd_width, scratch_thread_addrs_);
        coalesce(scratch_thread_addrs_, cfg_.l1d.line_bytes,
                 scratch_lines_);
        const bool is_store = kind == InstrKind::MemStore;
        lsu_.enqueue(slot, w.kernel, is_store, scratch_lines_);
        controller_.onMemInstrIssued(w.kernel);
        ++c.stats.mem_instructions;
        c.stats.mem_requests += scratch_lines_.size();
        if (is_store) {
            // Stores do not block the warp.
            w.state = WarpState::Busy;
            w.ready_at = now + 1;
        } else {
            w.pending_requests +=
                static_cast<int>(scratch_lines_.size());
            w.pushLoad(static_cast<int>(scratch_lines_.size()));
            if (w.outstanding_loads >= c.prof->mlp) {
                w.state = WarpState::WaitMem;
            } else {
                // Independent loads overlap (MLP); issue-limited only.
                w.state = WarpState::Busy;
                w.ready_at = now + 1;
            }
        }
        break;
      }
    }
}

void
Sm::tick(Cycle now)
{
    now_ = now;
    drainFills(now);
    processWakes(now);

    std::array<bool, kMaxKernelsPerSm> mem_demand{};
    preScan(now, mem_demand);
    controller_.beginCycle(mem_demand);

    tryDispatch(now);

    for (WarpScheduler &sched : schedulers_) {
        const int slot =
            sched.pick(warps_, [&](int s) { return canIssueWarp(s); });
        if (slot < 0)
            continue;
        issueFrom(slot, now);
        sched.onIssue(slot);
    }

    if (lsu_.tick(now, l1d_, *this))
        ++sm_stats_.lsu_stall_cycles;

    // Drain at most one miss-queue entry into the interconnect.
    if (const MemRequest *head = l1d_.peekMissQueue()) {
        if (mem_.injectFromSm(*head, now))
            l1d_.popMissQueue();
    }

    ++sm_stats_.cycles;
}

// ---- LsuHost ------------------------------------------------------------

void
Sm::lsuHitReturn(int warp_slot, KernelId k, Cycle ready_at)
{
    (void)k;
    wakes_.emplace(ready_at, warp_slot);
}

void
Sm::lsuEntryDrained(int warp_slot, KernelId k, bool is_store)
{
    (void)warp_slot;
    if (is_store)
        controller_.onMemInstrCompleted(k);
}

void
Sm::lsuAccessServiced(KernelId k, Addr line, const L1Outcome &outcome)
{
    KernelCtx &c = ctx_[static_cast<std::size_t>(k)];
    ++c.stats.l1d_accesses;
    switch (outcome.kind) {
      case L1Outcome::Kind::Hit:
        ++c.stats.l1d_hits;
        break;
      case L1Outcome::Kind::MissToL2:
      case L1Outcome::Kind::MergedMshr: // still waits for the fill
      case L1Outcome::Kind::WriteQueued:
        ++c.stats.l1d_misses;
        break;
      case L1Outcome::Kind::RsFail:
        break;
    }
    controller_.onRequestServiced(k);
    if (c.l1d_series)
        c.l1d_series->record(now_);
    if (access_observer_)
        access_observer_(access_observer_opaque_, k, line);
}

void
Sm::lsuReservationFailure(KernelId k, RsFailReason reason)
{
    KernelCtx &c = ctx_[static_cast<std::size_t>(k)];
    ++c.stats.l1d_rsfails;
    switch (reason) {
      case RsFailReason::Line:
        ++c.stats.l1d_rsfail_line;
        break;
      case RsFailReason::Mshr:
        ++c.stats.l1d_rsfail_mshr;
        break;
      case RsFailReason::MissQueue:
        ++c.stats.l1d_rsfail_missq;
        break;
      case RsFailReason::None:
        break;
    }
    controller_.onRsFail(k);
}

} // namespace ckesim
