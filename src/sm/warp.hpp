/**
 * @file
 * Warp and thread-block runtime state inside an SM.
 */

#ifndef CKESIM_SM_WARP_HPP
#define CKESIM_SM_WARP_HPP

#include <array>
#include <cstdint>

#include "kernels/addrgen.hpp"
#include "kernels/instr_stream.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Lifecycle of a warp slot. */
enum class WarpState {
    Invalid, ///< slot free
    Ready,   ///< can issue this cycle
    Busy,    ///< executing; ready again at ready_at
    WaitMem, ///< blocked on outstanding load requests
    Done,    ///< instruction budget exhausted; TB-exit pending
};

/** One warp's runtime state. */
struct Warp
{
    /** Most loads a warp can overlap (bounds the load ring below). */
    static constexpr int kMaxMlp = 8;

    WarpState state = WarpState::Invalid;
    KernelId kernel = kInvalidKernel;
    int tb_index = -1;       ///< index into the SM's TB table
    Cycle ready_at{};        ///< valid when Busy
    int pending_requests = 0;///< outstanding load line requests
    std::uint64_t age = 0;   ///< TB dispatch order (GTO "oldest")
    /** Cached stream facts (DESIGN.md §14): the per-cycle scheduler
     *  scans read these instead of touching the InstrStream's cache
     *  lines. Derived from `stream` — refreshed on reset/advance and
     *  recomputed on restore, never serialized. */
    bool stream_done = false; ///< == stream.done()
    bool next_is_mem = false; ///< == isGlobalMem(stream.peek())
    InstrStream stream;
    AddrGenState addr;

    /** In-flight loads: per-load remaining request counts (FIFO ring;
     *  returns are attributed oldest-first). */
    std::array<int, kMaxMlp> load_ring{};
    int load_head = 0;
    int outstanding_loads = 0;

    void
    pushLoad(int requests)
    {
        load_ring[static_cast<std::size_t>(
            (load_head + outstanding_loads) % kMaxMlp)] = requests;
        ++outstanding_loads;
    }

    /** One request returned; true when the oldest load completed. */
    bool
    retireRequest()
    {
        --pending_requests;
        int &front = load_ring[static_cast<std::size_t>(load_head)];
        if (--front > 0)
            return false;
        load_head = (load_head + 1) % kMaxMlp;
        --outstanding_loads;
        return true;
    }

    /** Re-derive the cached stream facts after a stream mutation. */
    void
    refreshStreamCache()
    {
        stream_done = stream.done();
        next_is_mem = !stream_done && isGlobalMem(stream.peek());
    }

    /** Ready to issue at @p now (Busy warps auto-promote)? */
    bool
    issuableAt(Cycle now) const
    {
        return state == WarpState::Ready ||
               (state == WarpState::Busy && ready_at <= now);
    }
};

/** One resident thread block. */
struct ThreadBlock
{
    bool active = false;
    KernelId kernel = kInvalidKernel;
    std::uint64_t seq = 0;   ///< global dispatch sequence (seeds)
    int warps_left = 0;      ///< warps not yet Done
    int num_warps = 0;
};

} // namespace ckesim

#endif // CKESIM_SM_WARP_HPP
