#include "sm/lsu.hpp"

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

Lsu::Lsu(int queue_depth, int hit_latency, SmId sm_id)
    : depth_(queue_depth), hit_latency_(hit_latency), sm_id_(sm_id),
      queue_(queue_depth)
{
}

void
Lsu::enqueue(WarpSlot warp_slot, KernelId kernel, bool is_store,
             const std::vector<LineAddr> &lines)
{
    SimCtx ctx;
    ctx.sm_id = sm_id_;
    ctx.kernel = kernel;
    ctx.module = "lsu";
    SIM_CHECK(hasRoom(), ctx,
              "enqueue into full LSU queue (depth " << depth_ << ")");
    SIM_CHECK(!lines.empty(), ctx,
              "memory instruction with no coalesced lines");
    Entry e;
    e.warp_slot = warp_slot;
    e.kernel = kernel;
    e.is_store = is_store;
    e.lines = lines;
    queue_.push_back(std::move(e));
}

bool
Lsu::tick(Cycle now, L1Dcache &l1d, LsuHost &host)
{
    if (queue_.empty())
        return false;

    Entry &e = queue_.front();
    const LineAddr line = e.lines[e.next];
    L1Target target;
    target.warp_slot = e.warp_slot;
    target.kernel = e.kernel;

    L1Outcome out;
    {
        ProfScope prof_l1d(prof_, ProfComp::L1d);
        out = l1d.access(line, e.kernel, e.is_store, target, now);
    }

    if (!out.serviced()) {
        host.lsuReservationFailure(e.kernel, out.fail);
        return true;
    }

    host.lsuAccessServiced(e.kernel, line, out);
    if (!e.is_store && out.kind == L1Outcome::Kind::Hit) {
        host.lsuHitReturn(e.warp_slot, e.kernel,
                          now + static_cast<Cycle>(hit_latency_));
    }

    ++e.next;
    if (e.next >= e.lines.size()) {
        const WarpSlot warp_slot = e.warp_slot;
        const KernelId kernel = e.kernel;
        const bool is_store = e.is_store;
        queue_.pop_front();
        host.lsuEntryDrained(warp_slot, kernel, is_store);
    }
    return false;
}

void
Lsu::snapshot(SnapshotWriter &w) const
{
    w.section("lsu");
    queue_.snapshot(w, [](SnapshotWriter &sw, const Entry &e) {
        sw.id(e.warp_slot);
        sw.id(e.kernel);
        sw.boolean(e.is_store);
        sw.u64(e.lines.size());
        for (const LineAddr line : e.lines)
            sw.unit(line);
        sw.u64(e.next);
    });
}

void
Lsu::restore(SnapshotReader &r)
{
    r.section("lsu");
    SimCtx ctx;
    ctx.sm_id = sm_id_;
    ctx.module = "lsu";
    queue_.restore(r, [&ctx](SnapshotReader &sr) {
        Entry e;
        e.warp_slot = sr.id<WarpSlot>();
        e.kernel = sr.id<KernelId>();
        e.is_store = sr.boolean();
        const std::uint64_t lines = sr.u64();
        e.lines.reserve(static_cast<std::size_t>(lines));
        for (std::uint64_t j = 0; j < lines; ++j)
            e.lines.push_back(sr.unit<LineAddr>());
        e.next = static_cast<std::size_t>(sr.u64());
        SIM_CHECK(e.next <= e.lines.size(), ctx,
                  "LSU entry cursor " << e.next << " past line count "
                                      << e.lines.size());
        return e;
    });
}

} // namespace ckesim
