/**
 * @file
 * Warp schedulers (Table 1: 4 Greedy-Then-Oldest schedulers per SM;
 * Loose Round Robin for the Section 4.3 sensitivity study).
 *
 * Warp slots are statically striped across schedulers (slot %
 * num_schedulers), as in GPGPU-Sim.
 */

#ifndef CKESIM_SM_SCHEDULER_HPP
#define CKESIM_SM_SCHEDULER_HPP

#include <vector>

#include "sim/config.hpp"
#include "sim/snapshot.hpp"
#include "sm/warp.hpp"

namespace ckesim {

/** One issue slice of an SM. */
class WarpScheduler
{
  public:
    WarpScheduler(int id, int num_schedulers, int max_warps,
                  SchedPolicy policy);

    /**
     * Pick the warp slot to issue from this cycle, or
     * kInvalidWarpSlot.
     *
     * @param warps the SM's warp table, or any table whose
     *        operator[] yields a record with an `age` member (the
     *        SM passes its dense scan-age mirror, DESIGN.md §14)
     * @param can_issue predicate: slot is ready *and* passes every
     *        structural/CKE gate for its next instruction
     */
    template <typename WarpTable, typename CanIssue>
    WarpSlot
    pick(const WarpTable &warps, const CanIssue &can_issue)
    {
        if (policy_ == SchedPolicy::GTO) {
            // Greedy: stick to the last-issued warp while it can go.
            if (greedy_.valid() && can_issue(greedy_))
                return greedy_;
            // Then oldest (smallest TB age; slot index tie-break).
            WarpSlot best = kInvalidWarpSlot;
            std::uint64_t best_age = 0;
            for (WarpSlot slot : slots_) {
                if (!can_issue(slot))
                    continue;
                const std::uint64_t age = warps[slot.idx()].age;
                if (!best.valid() || age < best_age) {
                    best = slot;
                    best_age = age;
                }
            }
            return best;
        }
        // LRR: scan from one past the last pick.
        const std::size_t n = slots_.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t at = (rr_next_ + i) % n;
            if (can_issue(slots_[at])) {
                rr_next_ = (at + 1) % n;
                return slots_[at];
            }
        }
        return kInvalidWarpSlot;
    }

    /** Record the issued slot (GTO greediness). */
    void onIssue(WarpSlot slot) { greedy_ = slot; }

    /** The issued warp can no longer issue (blocked/finished). */
    void
    clearGreedyIf(WarpSlot slot)
    {
        if (greedy_ == slot)
            greedy_ = kInvalidWarpSlot;
    }

    int id() const { return id_; }
    const std::vector<WarpSlot> &slots() const { return slots_; }

    void
    snapshot(SnapshotWriter &w) const
    {
        w.id(greedy_);
        w.u64(rr_next_);
    }

    void
    restore(SnapshotReader &r)
    {
        greedy_ = r.id<WarpSlot>();
        rr_next_ = static_cast<std::size_t>(r.u64());
    }

  private:
    int id_;                        // SNAPSHOT-SKIP(fixed at construction)
    SchedPolicy policy_;            // SNAPSHOT-SKIP(fixed at construction)
    std::vector<WarpSlot> slots_;   // SNAPSHOT-SKIP(fixed at construction)
    WarpSlot greedy_ = kInvalidWarpSlot;
    std::size_t rr_next_ = 0;
};

} // namespace ckesim

#endif // CKESIM_SM_SCHEDULER_HPP
