#include "sm/scheduler.hpp"

namespace ckesim {

WarpScheduler::WarpScheduler(int id, int num_schedulers, int max_warps,
                             SchedPolicy policy)
    : id_(id), policy_(policy)
{
    for (int slot = id; slot < max_warps; slot += num_schedulers)
        slots_.push_back(WarpSlot{slot});
}

} // namespace ckesim
