/**
 * @file
 * LSU (Load/Store Unit): the SM's in-order memory pipeline front-end.
 *
 * Warp memory instructions enter a small queue; the head instruction
 * issues one coalesced line request per cycle into the L1D. A
 * reservation failure leaves the request at the head and stalls the
 * whole unit — the paper's "memory pipeline stall", which penalizes
 * *every* co-running kernel because the queue is shared and in-order
 * (Sections 2.5 and 4.5).
 */

#ifndef CKESIM_SM_LSU_HPP
#define CKESIM_SM_LSU_HPP

#include <vector>

#include "mem/l1d.hpp"
#include "sim/profiler.hpp"
#include "sim/ringbuf.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** SM-side sink for LSU events. */
class LsuHost
{
  public:
    virtual ~LsuHost() = default;
    /** A load request hit; the warp's data arrives at @p ready_at. */
    virtual void lsuHitReturn(WarpSlot warp_slot, KernelId k,
                              Cycle ready_at) = 0;
    /** All of an entry's requests were accepted by the L1D. */
    virtual void lsuEntryDrained(WarpSlot warp_slot, KernelId k,
                                 bool is_store) = 0;
    /** A request for @p line was serviced (stats + QBMI/MILG/UMON). */
    virtual void lsuAccessServiced(KernelId k, LineAddr line,
                                   const L1Outcome &outcome) = 0;
    /** The head request failed reservation this cycle. */
    virtual void lsuReservationFailure(KernelId k,
                                       RsFailReason reason) = 0;
};

/** The shared, in-order memory instruction queue of one SM. */
class Lsu
{
  public:
    /** @p sm_id is diagnostic context only (invalid = standalone). */
    Lsu(int queue_depth, int hit_latency, SmId sm_id = kInvalidSm);

    bool hasRoom() const
    {
        return static_cast<int>(queue_.size()) < depth_;
    }

    /** Admit one warp memory instruction (its coalesced lines). */
    void enqueue(WarpSlot warp_slot, KernelId kernel, bool is_store,
                 const std::vector<LineAddr> &lines);

    /**
     * Service at most one line request from the head entry.
     * @return true when the head stalled on a reservation failure.
     */
    bool tick(Cycle now, L1Dcache &l1d, LsuHost &host);

    bool empty() const { return queue_.empty(); }
    int size() const { return static_cast<int>(queue_.size()); }

    /**
     * Clockable horizon (sim/clockable.hpp): the in-order pipeline
     * services its head every cycle it holds one, so any occupancy
     * means same-cycle work; an empty queue never acts unaided.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return queue_.empty() ? kNeverCycle : now;
    }

    /** Kernel owning the head entry (kInvalidKernel when empty). */
    KernelId headKernel() const
    {
        return queue_.empty() ? kInvalidKernel : queue_.front().kernel;
    }

    /** Attach a cycle-cost profiler (nullptr detaches). */
    void setProfiler(Profiler *prof) { prof_ = prof; }

    /** Serialize the queue (entries, line lists, progress cursors). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into an LSU of identical configuration. */
    void restore(SnapshotReader &r);

  private:
    struct Entry
    {
        WarpSlot warp_slot = kInvalidWarpSlot;
        KernelId kernel = kInvalidKernel;
        bool is_store = false;
        std::vector<LineAddr> lines;
        std::size_t next = 0;
    };

    int depth_;       // SNAPSHOT-SKIP(fixed at construction)
    int hit_latency_; // SNAPSHOT-SKIP(fixed at construction)
    SmId sm_id_;      // SNAPSHOT-SKIP(fixed at construction)
    Profiler *prof_ = nullptr; // SNAPSHOT-SKIP(observer; rebound by the Sm)
    RingBuf<Entry> queue_; ///< flat hot queue (DESIGN.md §14)
};

} // namespace ckesim

#endif // CKESIM_SM_LSU_HPP
