/**
 * @file
 * The streaming multiprocessor: TB dispatch with static resource
 * accounting, warp schedulers, execution latencies, the shared LSU /
 * L1D front-end, and the per-SM CKE issue controller.
 *
 * Intra-SM sharing: thread blocks from several kernels are resident at
 * once (per-kernel TB quotas from the partition policy); all warps
 * share the schedulers, LSU and L1D — the interference arena of the
 * paper.
 */

#ifndef CKESIM_SM_SM_HPP
#define CKESIM_SM_SM_HPP

#include <queue>
#include <vector>

#include "core/issue_policy.hpp"
#include "kernels/profile.hpp"
#include "mem/l1d.hpp"
#include "mem/memsys.hpp"
#include "sim/config.hpp"
#include "sim/profiler.hpp"
#include "sim/stats.hpp"
#include "sim/time_series.hpp"
#include "sm/lsu.hpp"
#include "sm/scheduler.hpp"
#include "sm/warp.hpp"

namespace ckesim {

/** One SM executing thread blocks from up to kMaxKernelsPerSm kernels. */
class Sm : public LsuHost
{
  public:
    Sm(const GpuConfig &cfg, SmId sm_id, MemorySystem &mem,
       std::vector<const KernelProfile *> kernels,
       const IssuePolicyConfig &policy);

    /** Set how many TBs of kernel @p k may be resident (partition). */
    void setTbQuota(KernelId k, int quota);
    int tbQuota(KernelId k) const
    {
        return ctx_[k.idx()].quota;
    }

    /** Advance one core cycle. */
    void tick(Cycle now);

    /**
     * Clockable horizon (sim/clockable.hpp): earliest future cycle a
     * tick could change any snapshotted state beyond the idle-tick
     * bookkeeping skipIdleCycles() replicates. `now` while any
     * same-cycle work exists (LSU/miss-queue occupancy, an issuable
     * warp, a dispatchable TB, controller per-cycle work, or a stale
     * latched demand vector); otherwise the nearest latency-FU
     * retire (Busy ready_at) or pending hit-return wake; kNeverCycle
     * when nothing is resident or in flight. The memory system's own
     * horizon covers fills still travelling toward this SM.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Replicate the effect of ticking every cycle in [now_ + 1,
     * target) while nextEventCycle() > each of them: the SM's clock
     * and cycle counter advance, nothing else moves. @p delta is the
     * number of skipped cycles; afterwards a strict tick(target)
     * resumes bit-identically to never having skipped.
     */
    void skipIdleCycles(Cycle target, std::uint64_t delta);

    /**
     * Audit-drain cycle: deliver fills, process wakes, service the
     * LSU and inject queued misses, but dispatch no TB and issue no
     * instruction. Used by Gpu::audit() to retire outstanding state
     * without creating new work. Does not advance stats counters.
     */
    void drainTick(Cycle now);

    /** Zero all counters (phase changes keep warp/cache state). */
    void resetStats();

    // ---- inspection ----------------------------------------------------
    int numKernels() const { return static_cast<int>(ctx_.size()); }
    const KernelProfile &profile(KernelId k) const
    {
        return *ctx_[k.idx()].prof;
    }
    const KernelStats &kernelStats(KernelId k) const
    {
        return ctx_[k.idx()].stats;
    }
    const SmStats &smStats() const { return sm_stats_; }
    int residentTbs(KernelId k) const
    {
        return ctx_[k.idx()].resident;
    }
    IssueController &controller() { return controller_; }
    const IssueController &controller() const { return controller_; }
    L1Dcache &l1d() { return l1d_; }
    const L1Dcache &l1d() const { return l1d_; }
    const Lsu &lsu() const { return lsu_; }
    SmId smId() const { return sm_id_; }

    // ---- integrity layer ------------------------------------------------
    /** Attach a fault injector (nullptr = fault-free operation). */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** Attach a cycle-cost profiler (nullptr detaches). */
    void
    setProfiler(Profiler *prof)
    {
        prof_ = prof;
        lsu_.setProfiler(prof);
    }

    /** Lifetime progress events: instructions issued + load requests
     *  returned. Monotonic (never reset); the watchdog's signal. */
    std::uint64_t progressCount() const
    {
        return lifetime_issued_ + lifetime_returns_;
    }

    /** Anything resident, queued or in flight on this SM? */
    bool hasWork() const;

    /** Memory-side quiescence: no LSU entries, allocated MSHRs,
     *  queued misses, pending wakes or outstanding warp requests. */
    bool memDrained() const;

    /** Occupancy-bound and accounting invariants (integrity sweep). */
    void checkInvariants(Cycle now) const;

    /** Drained-state check for Gpu::audit(). */
    void checkDrained(Cycle now) const;

    /** One-line occupancy dump for watchdog diagnostics. */
    std::string describeState() const;

    /** Attach per-kernel samplers (Figures 6 and 8); may be null. */
    void setIssueSeries(KernelId k, TimeSeries *ts)
    {
        ctx_[k.idx()].issue_series = ts;
    }
    void setL1dSeries(KernelId k, TimeSeries *ts)
    {
        ctx_[k.idx()].l1d_series = ts;
    }

    /** Observer of every serviced L1D access (UCP's UMON taps here). */
    using AccessObserver = void (*)(void *, KernelId, LineAddr);
    void
    setAccessObserver(AccessObserver fn, void *opaque)
    {
        access_observer_ = fn;
        access_observer_opaque_ = opaque;
    }

    /** Serialize the SM's entire mutable state (checkpointing). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into an SM of identical construction. Warp instruction
     *  streams have their profile pointers rebound from ctx_. */
    void restore(SnapshotReader &r);

    // ---- LsuHost --------------------------------------------------------
    void lsuHitReturn(WarpSlot warp_slot, KernelId k,
                      Cycle ready_at) override;
    void lsuEntryDrained(WarpSlot warp_slot, KernelId k,
                         bool is_store) override;
    void lsuAccessServiced(KernelId k, LineAddr line,
                           const L1Outcome &outcome) override;
    void lsuReservationFailure(KernelId k, RsFailReason reason) override;

  private:
    struct KernelCtx
    {
        const KernelProfile *prof = nullptr; // not snapshot state (fixed at construction)
        int quota = 0;
        int resident = 0;
        std::uint64_t tb_seq = 0;
        KernelStats stats;
        TimeSeries *issue_series = nullptr; // not snapshot state (owned and snapshotted by the experiment)
        TimeSeries *l1d_series = nullptr;   // not snapshot state (owned and snapshotted by the experiment)
    };

    struct Resources
    {
        int regs = 0;
        int smem = 0;
        int threads = 0;
        int tbs = 0;
        int warps = 0;
    };

    void drainFills(Cycle now);
    void processWakes(Cycle now);
    void preScan(Cycle now,
                 std::array<bool, kMaxKernelsPerSm> &mem_demand);
    void tryDispatch(Cycle now);
    bool resourcesFit(const KernelProfile &prof) const;
    bool launchTb(KernelId k);
    bool canIssueWarp(WarpSlot slot) const;
    void issueFrom(WarpSlot slot, Cycle now);
    void requestReturned(WarpSlot warp_slot, Cycle now);
    void retireWarp(WarpSlot slot);

    // ---- dense scan block (DESIGN.md §14) ---------------------------
    // The per-cycle scans (preScan, scheduler picks, nextEventCycle)
    // walk every warp slot; reading the ~176-byte Warp records costs
    // one cache line per slot per scan. These L1-resident mirrors
    // pack the only fields those scans need. Derived from warps_ —
    // resynced by syncScan() on every transition, rebuilt on restore,
    // never serialized.
    static constexpr std::uint8_t kScanStateMask = 0x07;
    static constexpr std::uint8_t kScanMemBit = 0x08;
    static constexpr int kScanKernelShift = 4;
    static constexpr std::uint8_t kScanReadyMem =
        static_cast<std::uint8_t>(WarpState::Ready) | kScanMemBit;

    static std::uint8_t
    packScanMeta(const Warp &w)
    {
        const unsigned kern =
            w.kernel.valid() ? static_cast<unsigned>(w.kernel.idx())
                             : 0u;
        return static_cast<std::uint8_t>(
            static_cast<unsigned>(w.state) |
            (w.next_is_mem ? kScanMemBit : 0u) |
            (kern << kScanKernelShift));
    }

    /** Mirror slot @p s of warps_ into the scan block, keeping the
     *  per-kernel Ready-with-mem counters (incremental mem_demand)
     *  in step. */
    void
    syncScan(std::size_t s)
    {
        const Warp &w = warps_[s];
        const std::uint8_t old = scan_meta_[s];
        const std::uint8_t neu = packScanMeta(w);
        constexpr std::uint8_t probe = kScanStateMask | kScanMemBit;
        if ((old & probe) == kScanReadyMem)
            --ready_mem_[old >> kScanKernelShift];
        if ((neu & probe) == kScanReadyMem)
            ++ready_mem_[neu >> kScanKernelShift];
        scan_meta_[s] = neu;
        scan_ready_[s] = w.ready_at;
        scan_age_[s] = w.age;
    }

    /** File a newly Busy warp under its due cycle (see due_wheel_). */
    void
    fileDue(WarpSlot slot, Cycle ready_at)
    {
        due_wheel_[static_cast<std::size_t>(ready_at.get()) &
                   due_mask_]
            .push_back(slot);
    }

    GpuConfig cfg_;     // SNAPSHOT-SKIP(fixed at construction)
    SmId sm_id_;        // SNAPSHOT-SKIP(fixed at construction)
    MemorySystem &mem_; // SNAPSHOT-SKIP(reference; snapshotted by the Gpu)
    std::vector<KernelCtx> ctx_;
    IssueController controller_;
    L1Dcache l1d_;
    Lsu lsu_;
    std::vector<WarpScheduler> schedulers_;
    std::vector<Warp> warps_;
    // Dense scan mirrors, all SNAPSHOT-SKIP(derived; rebuilt from
    // warps_ on restore):
    std::vector<std::uint8_t> scan_meta_; // SNAPSHOT-SKIP(derived) state|mem|kernel
    std::vector<Cycle> scan_ready_;       // SNAPSHOT-SKIP(derived) ready_at mirror
    std::vector<std::uint64_t> scan_age_; // SNAPSHOT-SKIP(derived) age mirror (GTO)
    /** Due-wheel: Busy warps are filed under their ready_at bucket at
     *  issue, so preScan visits only the warps due this cycle instead
     *  of scanning every slot. No bucket aliasing: the wheel spans
     *  more cycles than the longest issue latency, a Busy warp never
     *  changes ready_at, and the strict loop ticks every due cycle
     *  (the fast path cannot skip past a Busy horizon).
     *  SNAPSHOT-SKIP(derived; rebuilt from warps_ on restore) */
    std::vector<std::vector<WarpSlot>> due_wheel_;
    std::size_t due_mask_ = 0; // SNAPSHOT-SKIP(fixed at construction)
    /** Ready warps whose next instruction is global-mem, per kernel.
     *  SNAPSHOT-SKIP(derived; rebuilt from warps_ on restore) */
    std::array<int, kMaxKernelsPerSm> ready_mem_{};
    std::vector<ThreadBlock> tbs_;
    Resources used_;
    SmStats sm_stats_;
    std::uint64_t age_counter_ = 0;
    int dispatch_rr_ = 0;
    Cycle now_{};

    /** Pending (cycle, warp_slot) load-data returns from L1 hits. */
    using WakeEvent = std::pair<Cycle, WarpSlot>;
    std::priority_queue<WakeEvent, std::vector<WakeEvent>,
                        std::greater<WakeEvent>>
        wakes_;

    // Scratch buffers reused every memory instruction.
    std::vector<Addr> scratch_thread_addrs_; // SNAPSHOT-SKIP(scratch; dead between instructions)
    std::vector<LineAddr> scratch_lines_;    // SNAPSHOT-SKIP(scratch; dead between instructions)

    // Scratch buffers reused every drainFills cycle.
    std::vector<MemRequest> scratch_fills_;  // SNAPSHOT-SKIP(scratch; dead between cycles)
    std::vector<L1Target> scratch_targets_;  // SNAPSHOT-SKIP(scratch; dead between cycles)

    AccessObserver access_observer_ = nullptr; // SNAPSHOT-SKIP(rebound by the experiment on restore)
    void *access_observer_opaque_ = nullptr;   // SNAPSHOT-SKIP(rebound by the experiment on restore)

    FaultInjector *faults_ = nullptr; // SNAPSHOT-SKIP(rebound by the Gpu; injector state snapshotted there)
    Profiler *prof_ = nullptr; // SNAPSHOT-SKIP(observer; rebound by the Gpu)
    std::uint64_t lifetime_issued_ = 0;
    std::uint64_t lifetime_returns_ = 0;
};

} // namespace ckesim

#endif // CKESIM_SM_SM_HPP
