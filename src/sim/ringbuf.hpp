/**
 * @file
 * Fixed-capacity ring buffer for per-cycle simulator queues.
 *
 * The strict path walks every queue every cycle, so the hot queues
 * (LSU, L1 miss queue, crossbar ports, L2 input/replies, DRAM
 * queue/fills) must not pay std::deque's chunked allocation on the
 * push/pop steady state. RingBuf stores its elements in one flat
 * allocation sized once at construction and never grows: the
 * simulator's queues all have config-derived occupancy bounds, and
 * exceeding one is a modelling bug, so push_back on a full buffer
 * raises a SimError instead of reallocating.
 *
 * Contract (see DESIGN.md §14):
 *  - FIFO deque subset: push_back / pop_front / front / back /
 *    operator[] / eraseAt (order-preserving, for FR-FCFS picks).
 *  - Iteration visits elements oldest-first, exactly like std::deque.
 *  - snapshot()/restore() serialize as (u64 count, elements in FIFO
 *    order) — byte-identical to the std::deque loops they replaced,
 *    so pre-existing snapshot fingerprints are preserved.
 *  - Clockable-horizon friendly: front() is O(1), so
 *    nextEventCycle() implementations can peek the head cheaply.
 */

#ifndef CKESIM_SIM_RINGBUF_HPP
#define CKESIM_SIM_RINGBUF_HPP

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

/** Flat FIFO with a hard capacity fixed by reset()/construction. */
template <typename T>
class RingBuf
{
  public:
    /** Empty buffer with zero capacity; reset() before use. */
    RingBuf() = default;

    /** @param capacity maximum occupancy (>= 0). */
    explicit RingBuf(int capacity) { reset(capacity); }

    /** Drop all elements and (re)size the backing store. */
    void
    reset(int capacity)
    {
        SimCtx ctx;
        ctx.module = "ringbuf";
        SIM_CHECK(capacity >= 0, ctx,
                  "ring buffer capacity " << capacity
                                          << " is negative");
        data_.clear();
        data_.resize(static_cast<std::size_t>(capacity));
        cap_ = static_cast<std::size_t>(capacity);
        head_ = 0;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == cap_; }
    std::size_t size() const { return size_; }
    int capacity() const { return static_cast<int>(cap_); }

    T &front() { return data_[head_]; }
    const T &front() const { return data_[head_]; }
    T &back() { return data_[slot(size_ - 1)]; }
    const T &back() const { return data_[slot(size_ - 1)]; }

    T &operator[](std::size_t i) { return data_[slot(i)]; }
    const T &operator[](std::size_t i) const { return data_[slot(i)]; }

    /** Append; raises SimError when full (growth refusal). */
    void
    push_back(const T &value)
    {
        checkRoom();
        data_[slot(size_)] = value;
        ++size_;
    }

    /** Append (move); raises SimError when full (growth refusal). */
    void
    push_back(T &&value)
    {
        checkRoom();
        data_[slot(size_)] = std::move(value);
        ++size_;
    }

    /** Drop the oldest element. @pre !empty(). */
    void
    pop_front()
    {
        SimCtx ctx;
        ctx.module = "ringbuf";
        SIM_CHECK(size_ > 0, ctx, "pop_front on empty ring buffer");
        data_[head_] = T{}; // release held resources promptly
        head_ = next(head_);
        --size_;
    }

    /**
     * Remove the element at logical index @p i, preserving the order
     * of the survivors (std::deque::erase semantics). Shifts the
     * front segment right, so erasing near the head — the FR-FCFS
     * window case — moves few elements.
     */
    void
    eraseAt(std::size_t i)
    {
        SimCtx ctx;
        ctx.module = "ringbuf";
        SIM_CHECK(i < size_, ctx,
                  "eraseAt(" << i << ") past ring buffer size "
                             << size_);
        for (std::size_t j = i; j > 0; --j)
            data_[slot(j)] = std::move(data_[slot(j - 1)]);
        pop_front();
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[slot(i)] = T{};
        head_ = 0;
        size_ = 0;
    }

    /** Forward iterator over logical (oldest-first) order. */
    template <bool Const>
    class Iter
    {
      public:
        using Ring = std::conditional_t<Const, const RingBuf, RingBuf>;
        using value_type = T;
        using reference = std::conditional_t<Const, const T &, T &>;
        using pointer = std::conditional_t<Const, const T *, T *>;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        Iter() = default;
        Iter(Ring *ring, std::size_t pos) : ring_(ring), pos_(pos) {}

        reference operator*() const { return (*ring_)[pos_]; }
        pointer operator->() const { return &(*ring_)[pos_]; }
        Iter &operator++()
        {
            ++pos_;
            return *this;
        }
        Iter operator++(int)
        {
            Iter tmp = *this;
            ++pos_;
            return tmp;
        }
        bool operator==(const Iter &o) const { return pos_ == o.pos_; }
        bool operator!=(const Iter &o) const { return pos_ != o.pos_; }

      private:
        Ring *ring_ = nullptr;
        std::size_t pos_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

    // ---- checkpointing --------------------------------------------------
    /**
     * Serialize as (u64 count, elements oldest-first) — the exact
     * byte layout of the std::deque loops this type replaced.
     * @p write_elem emits one element: (writer, element).
     */
    template <typename WriteElem>
    void
    snapshot(SnapshotWriter &w, const WriteElem &write_elem) const
    {
        w.u64(size_);
        for (std::size_t i = 0; i < size_; ++i)
            write_elem(w, data_[slot(i)]);
    }

    /** Inverse of snapshot(); @p read_elem parses one element. */
    template <typename ReadElem>
    void
    restore(SnapshotReader &r, const ReadElem &read_elem)
    {
        clear();
        const std::uint64_t n = r.u64();
        SimCtx ctx;
        ctx.module = "ringbuf";
        SIM_CHECK(n <= static_cast<std::uint64_t>(cap_), ctx,
                  "snapshot holds " << n
                                    << " elements, ring capacity is "
                                    << cap_);
        for (std::uint64_t i = 0; i < n; ++i)
            push_back(read_elem(r));
    }

  private:
    std::size_t
    slot(std::size_t logical) const
    {
        std::size_t pos = head_ + logical;
        if (pos >= cap_)
            pos -= cap_;
        return pos;
    }

    std::size_t
    next(std::size_t pos) const
    {
        ++pos;
        return pos == cap_ ? 0 : pos;
    }

    void
    checkRoom() const
    {
        SimCtx ctx;
        ctx.module = "ringbuf";
        SIM_CHECK(size_ < cap_, ctx,
                  "push_back on full ring buffer (capacity "
                      << cap_
                      << "): fixed-capacity queues refuse to grow");
    }

    std::vector<T> data_;
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace ckesim

#endif // CKESIM_SIM_RINGBUF_HPP
