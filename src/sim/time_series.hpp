/**
 * @file
 * Fixed-interval event sampler for the paper's time-series figures
 * (Figure 6: L1D accesses per 1K cycles; Figure 8: warp instructions
 * issued per 1K cycles).
 */

#ifndef CKESIM_SIM_TIME_SERIES_HPP
#define CKESIM_SIM_TIME_SERIES_HPP

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ckesim {

/**
 * Accumulates event counts into equal-width cycle bins.
 * record(cycle) increments the bin containing @p cycle; bins are
 * materialized lazily so sparse recording stays cheap.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Cycle interval = Cycle{1000}) : interval_(interval) {}

    /** Record @p count events at time @p cycle. */
    void
    record(Cycle cycle, std::uint64_t count = 1)
    {
        const std::size_t bin = static_cast<std::size_t>(cycle / interval_);
        if (bin >= bins_.size())
            bins_.resize(bin + 1, 0);
        bins_[bin] += count;
    }

    /** Bin width in cycles. */
    Cycle interval() const { return interval_; }

    /** All bins, index i covering [i*interval, (i+1)*interval). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    /** Count in bin @p i (0 if never touched). */
    std::uint64_t
    binCount(std::size_t i) const
    {
        return i < bins_.size() ? bins_[i] : 0;
    }

    /** Mean events per bin over bins [first, last). */
    double meanOver(std::size_t first, std::size_t last) const;

    void clear() { bins_.clear(); }

    /** Replace all bins verbatim (checkpoint restore, journal load). */
    void setBins(std::vector<std::uint64_t> bins) { bins_ = std::move(bins); }

  private:
    Cycle interval_;
    std::vector<std::uint64_t> bins_;
};

} // namespace ckesim

#endif // CKESIM_SIM_TIME_SERIES_HPP
