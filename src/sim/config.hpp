/**
 * @file
 * Architecture configuration, mirroring Table 1 of the paper
 * (Maxwell-like GPU modelled on GPGPU-Sim V3.2.2 defaults).
 */

#ifndef CKESIM_SIM_CONFIG_HPP
#define CKESIM_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace ckesim {

/** Warp scheduling policy inside each scheduler slice. */
enum class SchedPolicy {
    GTO, ///< Greedy-Then-Oldest (paper default)
    LRR, ///< Loose Round Robin (sensitivity study, Section 4.3)
};

/** Per-SM streaming-multiprocessor limits and pipeline timing. */
struct SmConfig
{
    int simd_width = 32;          ///< threads per warp
    int num_schedulers = 4;       ///< warp schedulers per SM
    int max_threads = 3072;       ///< per-SM thread limit
    int max_warps = 96;           ///< per-SM warp limit
    int max_tbs = 16;             ///< per-SM thread-block slots
    int register_file = 65536;    ///< 32-bit registers per SM
    int smem_bytes = 96 * 1024;   ///< shared memory per SM

    SchedPolicy sched_policy = SchedPolicy::GTO;

    /** Dependent-issue latency of an ALU instruction (cycles). */
    int alu_latency = 4;
    /** Dependent-issue latency of an SFU instruction (cycles). */
    int sfu_latency = 16;
    /** Dependent-issue latency of a shared-memory access (cycles). */
    int smem_latency = 24;
    /** LSU input queue depth, in warp memory instructions. */
    int lsu_queue_depth = 8;
};

/** L1 data cache configuration (per SM). */
struct L1dConfig
{
    int size_bytes = 24 * 1024;  ///< 24KB (Table 1)
    /** Transfer granularity: 64B sectors of the 128B line (GPGPU-Sim
     *  Maxwell-like caches are sectored; misses move sectors). */
    int line_bytes = 64;
    int assoc = 6;
    int num_mshrs = 128;         ///< per-SM MSHRs (Table 1)
    int mshr_merge = 8;          ///< max merged requests per MSHR
    int miss_queue_depth = 16;   ///< miss queue entries
    int hit_latency = 28;        ///< load-to-use latency on hit

    int numSets() const { return size_bytes / (line_bytes * assoc); }
};

/** Unified, address-partitioned L2 cache. */
struct L2Config
{
    int partition_bytes = 128 * 1024; ///< 128KB per partition (Table 1)
    int line_bytes = 64;              ///< sectored, as in L1
    int assoc = 16;
    int num_mshrs = 128;              ///< MSHRs per partition
    int miss_queue_depth = 32;        ///< input queue entries
    int latency = 30;                 ///< tag+data access latency

    int numSetsPerPartition() const
    {
        return partition_bytes / (line_bytes * assoc);
    }
};

/** Crossbar interconnect between SMs and L2 partitions. */
struct IcntConfig
{
    int flit_bytes = 32;        ///< Table 1: 32B flit
    int latency = 4;            ///< zero-load one-way latency (cycles)
    int input_queue_depth = 32; ///< per destination-port queue depth
};

/** Per-channel GDDR model with row-buffer locality. */
struct DramConfig
{
    int num_channels = 16;      ///< Table 1: 16 memory channels
    int banks_per_channel = 16;
    int row_bytes = 2048;
    /** Fixed access latency added to every request (core cycles). */
    int access_latency = 120;
    /** Data-burst occupancy of a 128B line on a row hit (core cycles).
     *  48B/cycle at 924MHz against a 1.4GHz core is ~2-4 core
     *  cycles; 2 keeps the per-channel bandwidth/SM ratio of the
     *  paper's 16-SM/16-channel baseline. */
    int row_hit_service = 1;
    /** Extra occupancy for precharge+activate on a row miss. */
    int row_miss_penalty = 6;
    /** FR-FCFS reordering window (queue entries scanned for row hits). */
    int frfcfs_window = 32;
    int queue_depth = 128;
};

/**
 * Simulation integrity layer knobs: periodic invariant sweeps and the
 * forward-progress watchdog. All checks stay active in release builds;
 * they are sized to cost well under 10% of simulation time.
 */
struct IntegrityConfig
{
    /** Periodic occupancy-bound / conservation sweeps. */
    bool periodic_checks = true;
    /** Cycles between watchdog polls and invariant sweeps. */
    int check_interval = 256;
    /** No-progress cycles before the watchdog raises (0 = disabled).
     *  Must stay well under 10k so injected deadlocks are caught
     *  within the detection budget. */
    int watchdog_timeout = 4096;
    /** Max extra drain cycles Gpu::audit() spends reaching
     *  quiescence before declaring a leak. */
    int audit_drain_limit = 100000;
    /** Cycles between automatic checkpoints taken by the run loop
     *  (sim/snapshot.hpp); 0 disables auto-checkpointing. Does not
     *  affect simulated state or results, so it is deliberately
     *  excluded from SimJob content hashes. */
    int checkpoint_interval = 0;
};

/**
 * Complete GPU configuration. Defaults reproduce the paper's Table 1
 * baseline: 16 SMs at 1.4GHz, 4 GTO schedulers, 24KB 6-way L1D with
 * 128 MSHRs, 2048KB L2 in 128KB partitions, 16x16 crossbar, 16 DRAM
 * channels with FR-FCFS.
 */
struct GpuConfig
{
    int num_sms = 16;
    SmConfig sm;
    L1dConfig l1d;
    L2Config l2;
    IcntConfig icnt;
    DramConfig dram;
    IntegrityConfig integrity;

    /** Number of L2 partitions == number of DRAM channels. */
    int numL2Partitions() const { return dram.num_channels; }

    /** Global RNG seed for procedural workloads. */
    std::uint64_t seed = 0xc0ffee;

    /** A short human-readable digest for cache keys / logs. */
    std::string digest() const;

    /**
     * Reject nonsensical configurations with a structured SimError
     * (kind "ConfigError") naming the offending field, instead of
     * letting zero-depth queues or mismatched cache geometry corrupt
     * a run thousands of cycles in. Called by the Gpu constructor
     * and the experiment Runner.
     */
    void validate() const;
};

/**
 * Smaller configuration for fast unit tests and bench "quick" mode:
 * identical per-SM microarchitecture, fewer SMs / partitions.
 */
GpuConfig makeSmallConfig(int num_sms = 4, int num_channels = 4);

} // namespace ckesim

#endif // CKESIM_SIM_CONFIG_HPP
