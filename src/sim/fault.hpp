/**
 * @file
 * Fault-injection framework for the simulation integrity layer.
 *
 * Faults model degraded memory pipelines — exactly the back-pressure
 * regimes the paper's schemes are meant to survive — and double as a
 * proving ground for the watchdog and conservation invariants: every
 * injected deadlock must be detected and reported, never spun on.
 *
 * A fault is a (kind, target, window, budget) tuple. The owning Gpu
 * threads one FaultInjector through the memory system and SMs; each
 * component polls the injector at its fault point. All queries are
 * deterministic (no RNG): faults fire whenever their window covers the
 * current cycle and their occurrence budget is not exhausted.
 */

#ifndef CKESIM_SIM_FAULT_HPP
#define CKESIM_SIM_FAULT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ckesim {

class SnapshotWriter;
class SnapshotReader;

/** What to break, and where in the pipeline it bites. */
enum class FaultKind {
    None = 0,
    /** Discard read fills bound for an L1D (target = SM id). The
     *  L1 MSHR is never released and the waiting warps never wake:
     *  a hard deadlock the watchdog must catch. */
    DropFill,
    /** Delay read fills bound for an L1D by `delay` cycles
     *  (target = SM id). Livelock-ish degradation, not deadlock. */
    DelayFill,
    /** Refuse all forward-crossbar injections towards an L2
     *  partition (target = partition id). Miss queues back up and
     *  reservation failures cascade into every co-runner. */
    StallCrossbar,
    /** Freeze a DRAM channel: no new transaction starts
     *  (target = channel id). */
    FreezeDram,
    /** Force the LSU head access to fail reservation
     *  (target = SM id). Exercises the MILG rsfail path. */
    ForceRsFail,
};

inline constexpr int kNumFaultKinds = 6;

/** One injected fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::None;
    /** Active window [begin, end); end = kNeverCycle means forever. */
    Cycle begin{};
    Cycle end = kNeverCycle;
    /** SM / partition / channel index; -1 = every instance. */
    int target = -1;
    /** Max occurrences (DropFill/DelayFill/ForceRsFail); -1 = all. */
    int budget = -1;
    /** Added fill latency (DelayFill only). */
    Cycle delay{};
};

/** Deterministic fault oracle polled by pipeline components. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(std::vector<FaultSpec> faults);

    bool empty() const { return faults_.empty(); }

    /** Should this read fill bound for SM @p sm_id be discarded? */
    bool dropFill(SmId sm_id, Cycle now);

    /** Extra delay for a fill bound for SM @p sm_id (0 = none). */
    Cycle fillDelay(SmId sm_id, Cycle now);

    /** Is the forward-crossbar port to partition @p dest jammed? */
    bool stallCrossbarPort(int dest, Cycle now);

    /** Is DRAM channel @p channel frozen this cycle? */
    bool dramFrozen(int channel, Cycle now);

    /** Must SM @p sm_id's LSU head fail reservation this cycle? */
    bool forceRsFail(SmId sm_id, Cycle now);

    /** How often faults of @p kind actually fired. */
    std::uint64_t firedCount(FaultKind kind) const
    {
        return fired_[static_cast<std::size_t>(kind)];
    }

    /** Any fault fired at all (audit exempts faulted runs). */
    bool anyFired() const;

    /** Serialize mutable state (per-spec budgets, fired counters). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore mutable state; the spec list itself is configuration
     *  and must match what was captured. */
    void restore(SnapshotReader &r);

  private:
    /** Find an armed spec of @p kind covering (@p target, @p now);
     *  consumes one unit of its budget when @p consume. */
    bool match(FaultKind kind, int target, Cycle now, bool consume,
               const FaultSpec **out = nullptr);

    std::vector<FaultSpec> faults_;
    std::array<std::uint64_t, kNumFaultKinds> fired_{};
};

/** Validate one fault spec; throws SimError on nonsense. */
void validateFaultSpec(const FaultSpec &spec, int num_sms,
                       int num_partitions);

} // namespace ckesim

#endif // CKESIM_SIM_FAULT_HPP
