/**
 * @file
 * Structured-error core of the simulation integrity layer.
 *
 * Simulator state is cheap to corrupt and expensive to debug: a bare
 * `assert` vanishes in release builds and a bare `throw` loses the
 * machine state that explains the failure. SIM_CHECK / SIM_INVARIANT
 * stay active in every build type and throw a SimError carrying the
 * cycle, SM, kernel and module in which the violation was detected,
 * plus a free-form detail message.
 *
 *   SIM_CHECK(cond, ctx, "detail " << value);      // precondition
 *   SIM_INVARIANT(cond, ctx, "detail " << value);  // state invariant
 *
 * The distinction is diagnostic only: a failed SIM_CHECK means a
 * caller handed a component something illegal; a failed SIM_INVARIANT
 * means the component's own state went inconsistent (a model bug).
 */

#ifndef CKESIM_SIM_CHECK_HPP
#define CKESIM_SIM_CHECK_HPP

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/types.hpp"

namespace ckesim {

/** Machine context attached to every integrity failure. */
struct SimCtx
{
    Cycle cycle = kNeverCycle;        ///< kNeverCycle = unknown/untimed
    SmId sm_id = kInvalidSm;          ///< kInvalidSm = not SM-specific
    KernelId kernel = kInvalidKernel; ///< kInvalidKernel = none
    const char *module = "";          ///< e.g. "l1d", "gpu.watchdog"
};

/** A detected integrity violation, with full machine context. */
class SimError : public std::runtime_error
{
  public:
    SimError(const char *kind, const char *expr, const SimCtx &ctx,
             const std::string &detail);

    const SimCtx &ctx() const { return ctx_; }
    /** "SIM_CHECK", "SIM_INVARIANT", "ConfigError", "Watchdog", ... */
    const std::string &kind() const { return kind_; }
    /** The failed condition's source text ("" for non-macro sites). */
    const std::string &expr() const { return expr_; }
    /** The free-form detail message without the context prefix. */
    const std::string &detail() const { return detail_; }

  private:
    SimCtx ctx_;
    std::string kind_;
    std::string expr_;
    std::string detail_;
};

/** Format @p ctx as "[cycle=... sm=... kernel=... module=...]". */
std::string formatSimCtx(const SimCtx &ctx);

/** Throw a SimError directly (for non-condition failure sites). */
[[noreturn]] void raiseSimError(const char *kind, const SimCtx &ctx,
                                const std::string &detail);

} // namespace ckesim

/** Always-on precondition check; throws SimError with context. */
#define SIM_CHECK(cond, ctx, msg)                                      \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::std::ostringstream sim_check_os_;                        \
            sim_check_os_ << msg;                                      \
            throw ::ckesim::SimError("SIM_CHECK", #cond, (ctx),        \
                                     sim_check_os_.str());             \
        }                                                              \
    } while (0)

/** Always-on state invariant; throws SimError with context. */
#define SIM_INVARIANT(cond, ctx, msg)                                  \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::std::ostringstream sim_check_os_;                        \
            sim_check_os_ << msg;                                      \
            throw ::ckesim::SimError("SIM_INVARIANT", #cond, (ctx),    \
                                     sim_check_os_.str());             \
        }                                                              \
    } while (0)

#endif // CKESIM_SIM_CHECK_HPP
