#include "sim/time_series.hpp"

namespace ckesim {

double
TimeSeries::meanOver(std::size_t first, std::size_t last) const
{
    if (first >= last)
        return 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = first; i < last; ++i)
        total += binCount(i);
    return static_cast<double>(total) / static_cast<double>(last - first);
}

} // namespace ckesim
