#include "sim/fault.hpp"

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

FaultInjector::FaultInjector(std::vector<FaultSpec> faults)
    : faults_(std::move(faults))
{
}

bool
FaultInjector::match(FaultKind kind, int target, Cycle now,
                     bool consume, const FaultSpec **out)
{
    for (FaultSpec &f : faults_) {
        if (f.kind != kind)
            continue;
        if (now < f.begin || now >= f.end)
            continue;
        if (f.target >= 0 && f.target != target)
            continue;
        if (f.budget == 0)
            continue;
        if (consume) {
            if (f.budget > 0)
                --f.budget;
            ++fired_[static_cast<std::size_t>(kind)];
        }
        if (out)
            *out = &f;
        return true;
    }
    return false;
}

bool
FaultInjector::dropFill(SmId sm_id, Cycle now)
{
    return match(FaultKind::DropFill, sm_id.get(), now,
                 /*consume=*/true);
}

Cycle
FaultInjector::fillDelay(SmId sm_id, Cycle now)
{
    const FaultSpec *spec = nullptr;
    if (!match(FaultKind::DelayFill, sm_id.get(), now,
               /*consume=*/true, &spec))
        return Cycle{};
    return spec->delay;
}

bool
FaultInjector::stallCrossbarPort(int dest, Cycle now)
{
    return match(FaultKind::StallCrossbar, dest, now,
                 /*consume=*/true);
}

bool
FaultInjector::dramFrozen(int channel, Cycle now)
{
    return match(FaultKind::FreezeDram, channel, now,
                 /*consume=*/true);
}

bool
FaultInjector::forceRsFail(SmId sm_id, Cycle now)
{
    return match(FaultKind::ForceRsFail, sm_id.get(), now,
                 /*consume=*/true);
}

bool
FaultInjector::anyFired() const
{
    for (std::uint64_t n : fired_)
        if (n > 0)
            return true;
    return false;
}

void
FaultInjector::snapshot(SnapshotWriter &w) const
{
    w.section("fault_injector");
    w.u64(faults_.size());
    for (const FaultSpec &f : faults_)
        w.i64(f.budget);
    for (std::uint64_t n : fired_)
        w.u64(n);
}

void
FaultInjector::restore(SnapshotReader &r)
{
    r.section("fault_injector");
    const std::uint64_t n = r.u64();
    SimCtx ctx;
    ctx.module = "fault";
    SIM_CHECK(n == faults_.size(), ctx,
              "snapshot holds " << n << " fault specs, injector has "
                                << faults_.size());
    for (FaultSpec &f : faults_)
        f.budget = static_cast<int>(r.i64());
    for (std::uint64_t &c : fired_)
        c = r.u64();
}

void
validateFaultSpec(const FaultSpec &spec, int num_sms,
                  int num_partitions)
{
    SimCtx ctx;
    ctx.module = "fault";
    SIM_CHECK(spec.kind != FaultKind::None, ctx,
              "fault spec with kind None");
    SIM_CHECK(spec.begin < spec.end, ctx,
              "fault window empty: begin=" << spec.begin
                                           << " end=" << spec.end);
    const bool sm_scoped = spec.kind == FaultKind::DropFill ||
                           spec.kind == FaultKind::DelayFill ||
                           spec.kind == FaultKind::ForceRsFail;
    const int limit = sm_scoped ? num_sms : num_partitions;
    SIM_CHECK(spec.target >= -1 && spec.target < limit, ctx,
              "fault target " << spec.target << " out of range [0,"
                              << limit << ") (-1 = all)");
    if (spec.kind == FaultKind::DelayFill)
        SIM_CHECK(spec.delay > Cycle{}, ctx,
                  "DelayFill with zero delay");
}

} // namespace ckesim
