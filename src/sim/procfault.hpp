/**
 * @file
 * Process-level fault injection for the campaign layer.
 *
 * PR 1's FaultInjector breaks the *simulated* memory pipeline; this
 * plan breaks the *host* fleet: workers that die mid-job, workers
 * that wedge and stop heartbeating, frames corrupted on the wire,
 * results silently dropped, and spawns that fail outright. The same
 * philosophy applies — faults are deterministic (no RNG, no clock):
 * a spec names the worker slot, the campaign job index, and the
 * dispatch attempts on which it fires, so a kill/recover soak is
 * exactly reproducible.
 *
 * The plan is a value: the orchestrator owns one copy and each forked
 * worker inherits it, filtering by its own slot. Because a fault can
 * be limited to the first @ref ProcFaultSpec::attempts dispatch
 * attempts of a job, "kill the worker once, then let the re-dispatch
 * succeed" and "kill every worker that ever touches this job" (a
 * poison job) are both single specs.
 */

#ifndef CKESIM_SIM_PROCFAULT_HPP
#define CKESIM_SIM_PROCFAULT_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace ckesim {

/** What to break at the process/fleet level. */
enum class ProcFaultKind : std::uint8_t {
    None = 0,
    /** The worker SIGKILLs itself partway through the job (at its
     *  first run-control poll). The orchestrator must observe the
     *  death and re-dispatch the job. */
    KillWorkerMidJob,
    /** The worker wedges mid-job: it stops polling, heartbeating and
     *  responding forever. The orchestrator's liveness deadline must
     *  fire, SIGKILL it, and re-dispatch. */
    StallHeartbeat,
    /** The worker flips a byte in its next result frame's payload.
     *  The orchestrator must detect the CRC mismatch, distrust the
     *  worker, kill it, and re-dispatch. */
    CorruptFrame,
    /** The worker completes the job but never sends the result and
     *  goes silent. Indistinguishable from a hang upstream: the
     *  liveness deadline must reclaim the job. */
    DropResult,
    /** Orchestrator-side: pretend fork() failed for this spawn
     *  attempt. With an unlimited spec the campaign must degrade to
     *  in-process execution instead of failing. */
    FailSpawn,
    /** Client-side (campaign service chaos): abruptly close the
     *  submission socket after receiving N streamed results
     *  (job_index filters on the received-result count). The service
     *  must finish the orphaned jobs into its journal so an
     *  idempotent resubmission replays instead of re-running. */
    DropClientMidStream,
    /** Client-side: flip a byte in the next frame the client sends.
     *  The service must declare that client's stream corrupt and
     *  drop that client only — other clients keep streaming. */
    CorruptClientFrame,
};

inline constexpr int kNumProcFaultKinds = 8;

/** Short display name, e.g. "kill-worker-mid-job". */
const char *procFaultKindName(ProcFaultKind kind);

/** One injected fleet fault. */
struct ProcFaultSpec
{
    ProcFaultKind kind = ProcFaultKind::None;
    /** Worker slot it applies to; -1 = every worker. */
    int worker = -1;
    /** Campaign job index it applies to; -1 = every job. */
    int job_index = -1;
    /** Fires only while the job's dispatch attempt is < attempts, so
     *  a re-dispatched job escapes the fault. Use a large value for a
     *  poison job that kills every worker that runs it. */
    int attempts = 1;
    /** Max total firings of this spec in one process; -1 = all. */
    int budget = -1;
};

/** Deterministic fleet-fault oracle consulted by orchestrator and
 *  workers at their fault points. */
class ProcFaultPlan
{
  public:
    ProcFaultPlan() = default;
    explicit ProcFaultPlan(std::vector<ProcFaultSpec> faults);

    bool empty() const { return faults_.empty(); }

    const std::vector<ProcFaultSpec> &specs() const { return faults_; }

    /**
     * Should a fault of @p kind fire for (@p worker, @p job_index,
     * @p attempt)? Consumes one unit of the matching spec's budget.
     */
    bool fire(ProcFaultKind kind, int worker, int job_index,
              int attempt);

    /** How often faults of @p kind actually fired (this process). */
    std::uint64_t firedCount(ProcFaultKind kind) const
    {
        return fired_[static_cast<std::size_t>(kind)];
    }

  private:
    std::vector<ProcFaultSpec> faults_;
    std::array<std::uint64_t, kNumProcFaultKinds> fired_{};
};

/** Validate one spec; throws SimError (kind "Config") on nonsense. */
void validateProcFaultSpec(const ProcFaultSpec &spec);

} // namespace ckesim

#endif // CKESIM_SIM_PROCFAULT_HPP
