/**
 * @file
 * Cycle-cost profiler: wall-time attribution of the strict stepping
 * loop to simulator components (DESIGN.md §14).
 *
 * Design constraints:
 *  - Near-zero cost when disabled: every hook is a ProfScope whose
 *    constructor bails on a null/disabled profiler — one predictable
 *    branch, no clock read.
 *  - Cheap when enabled: scopes read the TSC directly (x86) and defer
 *    all conversion to report time, where a single TSC/steady-clock
 *    calibration pair turns tick counts into milliseconds.
 *  - Exclusive self-time: scopes nest (Lsu inside SmIssue, L1d inside
 *    Lsu); a child's total is subtracted from its parent, so the
 *    report's rows are disjoint and sum to attributable time.
 *  - Determinism: the profiler only *observes* — nothing it measures
 *    feeds back into simulation state, so fingerprints are unaffected
 *    whether it is on or off.
 *
 * One Profiler belongs to at most one Gpu (the sweep engine runs
 * concurrent Gpus; each gets its own instance — no shared state).
 * Enable externally via Gpu::setProfiler() (bench --prof) or the
 * CKESIM_PROF environment variable.
 */

#ifndef CKESIM_SIM_PROFILER_HPP
#define CKESIM_SIM_PROFILER_HPP

#include <array>
#include <chrono> // wall-clock use lives behind steady_clock lines below: profiling observes wall time; never feeds sim state
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <ostream>

namespace ckesim {

/** Components the strict stepping loop spends its time in. */
enum class ProfComp : int {
    Scheme,    ///< per-cycle scheme bookkeeping (UCP, DMIL, checkpoints)
    SmIssue,   ///< SM front end: dispatch, schedulers, issue, wakes
    Lsu,       ///< LSU queue service (excluding the L1D probe itself)
    L1d,       ///< L1D accesses and fill processing
    Noc,       ///< crossbar drains and reply injection
    L2,        ///< L2 partition ticks and DRAM-fill processing
    Dram,      ///< DRAM channel ticks and fill drains
    Integrity, ///< periodic invariant sweeps and watchdog polls
    Runloop,   ///< Gpu::run glue: tick dispatch, cadences, skip scans
    kCount,
};

constexpr int kNumProfComps = static_cast<int>(ProfComp::kCount);

inline const char *
profCompName(ProfComp c)
{
    switch (c) {
      case ProfComp::Scheme:    return "scheme";
      case ProfComp::SmIssue:   return "sm_issue";
      case ProfComp::Lsu:       return "lsu";
      case ProfComp::L1d:       return "l1d";
      case ProfComp::Noc:       return "noc";
      case ProfComp::L2:        return "l2";
      case ProfComp::Dram:      return "dram";
      case ProfComp::Integrity: return "integrity";
      case ProfComp::Runloop:   return "runloop";
      case ProfComp::kCount:    break;
    }
    return "?";
}

/** Raw timestamp: TSC where available, steady-clock ns otherwise. */
inline std::uint64_t
profTimestamp()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() // LINT-ALLOW(determinism): profiling only
                .time_since_epoch())
            .count());
#endif
}

class ProfScope;

/** Per-Gpu wall-time accumulator. */
class Profiler
{
  public:
    /** Start the wall-clock window report() will attribute against. */
    void
    enable()
    {
        enabled_ = true;
        for (Comp &c : comps_)
            c = Comp{};
        tsc0_ = profTimestamp();
        wall0_ = std::chrono::steady_clock::now(); // LINT-ALLOW(determinism): profiling only
    }

    bool enabled() const { return enabled_; }

    /** True when the CKESIM_PROF environment variable is set. */
    static bool
    envEnabled()
    {
        const char *v = std::getenv("CKESIM_PROF");
        return v != nullptr && v[0] != '\0' && v[0] != '0';
    }

    /**
     * Fraction of the enable()->now wall window attributed to a
     * component scope (0 when disabled or the window is empty).
     */
    double
    attributedFraction() const
    {
        const Calib cal = calibrate();
        if (cal.wall_ms <= 0.0 || cal.ticks_per_ms <= 0.0)
            return 0.0;
        double ms = 0.0;
        for (const Comp &c : comps_)
            ms += static_cast<double>(c.ticks) / cal.ticks_per_ms;
        return ms / cal.wall_ms;
    }

    /** Hot-spot breakdown table, heaviest component first. */
    void
    report(std::ostream &os) const
    {
        const Calib cal = calibrate();
        std::array<int, kNumProfComps> order{};
        for (int i = 0; i < kNumProfComps; ++i)
            order[static_cast<std::size_t>(i)] = i;
        for (int i = 1; i < kNumProfComps; ++i) // insertion sort
            for (int j = i;
                 j > 0 &&
                 comps_[static_cast<std::size_t>(
                            order[static_cast<std::size_t>(j)])].ticks >
                     comps_[static_cast<std::size_t>(
                                order[static_cast<std::size_t>(j - 1)])]
                         .ticks;
                 --j)
                std::swap(order[static_cast<std::size_t>(j)],
                          order[static_cast<std::size_t>(j - 1)]);

        os << "profile: wall " << std::fixed << std::setprecision(1)
           << cal.wall_ms << " ms, attributed "
           << std::setprecision(1) << attributedFraction() * 100.0
           << "%\n";
        os << "  " << std::left << std::setw(10) << "component"
           << std::right << std::setw(10) << "ms" << std::setw(8)
           << "%" << std::setw(14) << "scopes" << "\n";
        for (int idx : order) {
            const Comp &c = comps_[static_cast<std::size_t>(idx)];
            if (c.calls == 0)
                continue;
            const double ms =
                cal.ticks_per_ms > 0.0
                    ? static_cast<double>(c.ticks) / cal.ticks_per_ms
                    : 0.0;
            const double pct =
                cal.wall_ms > 0.0 ? ms / cal.wall_ms * 100.0 : 0.0;
            os << "  " << std::left << std::setw(10)
               << profCompName(static_cast<ProfComp>(idx))
               << std::right << std::setw(10) << std::setprecision(1)
               << ms << std::setw(7) << std::setprecision(1) << pct
               << "%" << std::setw(14) << c.calls << "\n";
        }
        os.unsetf(std::ios::fixed);
    }

  private:
    friend class ProfScope;

    struct Comp
    {
        std::uint64_t ticks = 0; ///< exclusive self-time (TSC units)
        std::uint64_t calls = 0;
    };
    struct Calib
    {
        double wall_ms = 0.0;
        double ticks_per_ms = 0.0;
    };

    /** One TSC/steady-clock pair converts ticks to milliseconds. */
    Calib
    calibrate() const
    {
        Calib cal;
        if (!enabled_)
            return cal;
        const std::uint64_t tsc1 = profTimestamp();
        const auto wall1 = std::chrono::steady_clock::now(); // LINT-ALLOW(determinism): profiling only
        cal.wall_ms =
            std::chrono::duration<double, std::milli>(wall1 - wall0_)
                .count();
        if (cal.wall_ms > 0.0)
            cal.ticks_per_ms =
                static_cast<double>(tsc1 - tsc0_) / cal.wall_ms;
        return cal;
    }

    bool enabled_ = false;
    std::array<Comp, kNumProfComps> comps_{};
    ProfScope *cur_ = nullptr; ///< innermost live scope (nesting)
    std::uint64_t tsc0_ = 0;
    std::chrono::steady_clock::time_point wall0_{}; // LINT-ALLOW(determinism): profiling only
};

/**
 * RAII timing scope. Construct with the owning profiler (null or
 * disabled = inert) and the component to charge; nesting is tracked
 * so parents are charged exclusive time only.
 */
class ProfScope
{
  public:
    ProfScope(Profiler *p, ProfComp comp)
        : prof_(p != nullptr && p->enabled_ ? p : nullptr)
    {
        if (prof_ == nullptr)
            return;
        comp_ = comp;
        parent_ = prof_->cur_;
        prof_->cur_ = this;
        start_ = profTimestamp();
    }

    ~ProfScope()
    {
        if (prof_ == nullptr)
            return;
        const std::uint64_t total = profTimestamp() - start_;
        Profiler::Comp &c =
            prof_->comps_[static_cast<std::size_t>(comp_)];
        c.ticks += total - child_;
        ++c.calls;
        if (parent_ != nullptr)
            parent_->child_ += total;
        prof_->cur_ = parent_;
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Profiler *prof_;
    ProfScope *parent_ = nullptr;
    ProfComp comp_ = ProfComp::Scheme;
    std::uint64_t start_ = 0;
    std::uint64_t child_ = 0; ///< total TSC ticks spent in children
};

} // namespace ckesim

#endif // CKESIM_SIM_PROFILER_HPP
