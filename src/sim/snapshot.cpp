#include "sim/snapshot.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace ckesim {

// ---- SnapshotWriter -----------------------------------------------

void
SnapshotWriter::raw(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
    for (std::size_t i = 0; i < n; ++i)
        fp_ = (fp_ ^ b[i]) * 0x100000001b3ULL;
}

void
SnapshotWriter::tag(SnapTag t)
{
    const auto v = static_cast<std::uint8_t>(t);
    raw(&v, 1);
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    tag(SnapTag::U8);
    raw(&v, 1);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    tag(SnapTag::U32);
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    raw(b, 4);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    tag(SnapTag::U64);
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    raw(b, 8);
}

void
SnapshotWriter::i64(std::int64_t v)
{
    tag(SnapTag::I64);
    const auto u = static_cast<std::uint64_t>(v);
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(u >> (8 * i));
    raw(b, 8);
}

void
SnapshotWriter::boolean(bool v)
{
    tag(SnapTag::Bool);
    const std::uint8_t b = v ? 1 : 0;
    raw(&b, 1);
}

void
SnapshotWriter::f64(double v)
{
    // Bit pattern, never text: restore must be exact for every value
    // including -0.0, subnormals, and NaN payloads.
    tag(SnapTag::F64);
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(u >> (8 * i));
    raw(b, 8);
}

void
SnapshotWriter::str(const std::string &v)
{
    tag(SnapTag::Str);
    std::uint8_t b[4];
    const auto n = static_cast<std::uint32_t>(v.size());
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(n >> (8 * i));
    raw(b, 4);
    raw(v.data(), v.size());
}

void
SnapshotWriter::section(const char *name)
{
    tag(SnapTag::Section);
    const std::string s(name);
    std::uint8_t b[4];
    const auto n = static_cast<std::uint32_t>(s.size());
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(n >> (8 * i));
    raw(b, 4);
    raw(s.data(), s.size());
}

void
SnapshotWriter::vecU64(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (std::uint64_t x : v)
        u64(x);
}

void
SnapshotWriter::vecBool(const std::vector<bool> &v)
{
    u64(v.size());
    for (bool x : v)
        boolean(x);
}

// ---- SnapshotReader -----------------------------------------------

void
SnapshotReader::fail(const std::string &detail) const
{
    SimCtx ctx;
    ctx.module = "snapshot";
    std::ostringstream os;
    os << detail << " at payload offset " << pos_ << " of "
       << bytes_->size();
    raiseSimError("Snapshot", ctx, os.str());
}

const std::uint8_t *
SnapshotReader::take(std::size_t n)
{
    if (pos_ + n > bytes_->size())
        fail("truncated snapshot payload");
    const std::uint8_t *p = bytes_->data() + pos_;
    pos_ += n;
    return p;
}

void
SnapshotReader::expect(SnapTag t)
{
    const std::uint8_t got = *take(1);
    if (got != static_cast<std::uint8_t>(t)) {
        std::ostringstream os;
        os << "type tag mismatch: expected " << int(static_cast<std::uint8_t>(t))
           << ", found " << int(got);
        fail(os.str());
    }
}

std::uint8_t
SnapshotReader::u8()
{
    expect(SnapTag::U8);
    return *take(1);
}

std::uint32_t
SnapshotReader::u32()
{
    expect(SnapTag::U32);
    const std::uint8_t *b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    expect(SnapTag::U64);
    const std::uint8_t *b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

std::int64_t
SnapshotReader::i64()
{
    expect(SnapTag::I64);
    const std::uint8_t *b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return static_cast<std::int64_t>(v);
}

bool
SnapshotReader::boolean()
{
    expect(SnapTag::Bool);
    const std::uint8_t v = *take(1);
    if (v > 1)
        fail("bool value out of range");
    return v != 0;
}

double
SnapshotReader::f64()
{
    expect(SnapTag::F64);
    const std::uint8_t *b = take(8);
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i)
        u |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    double v = 0.0;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    expect(SnapTag::Str);
    const std::uint8_t *lb = take(4);
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(lb[i]) << (8 * i);
    const std::uint8_t *b = take(n);
    return std::string(reinterpret_cast<const char *>(b), n);
}

void
SnapshotReader::section(const char *name)
{
    expect(SnapTag::Section);
    const std::uint8_t *lb = take(4);
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(lb[i]) << (8 * i);
    const std::uint8_t *b = take(n);
    const std::string got(reinterpret_cast<const char *>(b), n);
    if (got != name)
        fail("section mismatch: expected '" + std::string(name) +
             "', found '" + got + "'");
}

std::vector<std::uint64_t>
SnapshotReader::vecU64()
{
    const std::uint64_t n = u64();
    if (n > bytes_->size()) // each element needs >= 1 byte
        fail("vector length implausibly large");
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(u64());
    return v;
}

std::vector<bool>
SnapshotReader::vecBool()
{
    const std::uint64_t n = u64();
    if (n > bytes_->size())
        fail("vector length implausibly large");
    std::vector<bool> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(boolean());
    return v;
}

} // namespace ckesim
