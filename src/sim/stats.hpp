/**
 * @file
 * Per-kernel and per-SM statistic counters.
 *
 * These are exactly the signals the paper's mechanisms consume (QBMI
 * reads Req/Minst; DMIL reads reservation failures, request counts and
 * peak in-flight memory instructions) and the signals its figures plot
 * (IPC, L1D miss/rsfail rates, LSU stall %, compute utilization).
 */

#ifndef CKESIM_SIM_STATS_HPP
#define CKESIM_SIM_STATS_HPP

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace ckesim {

class SnapshotWriter;
class SnapshotReader;

/** Why an L1D access could not be serviced this cycle. */
enum class RsFailReason {
    None,      ///< access was serviced (hit or miss queued)
    Line,      ///< no allocatable victim line in the set
    Mshr,      ///< MSHR table full (or merge list full)
    MissQueue, ///< miss queue full
};

/** Counters accumulated per kernel (per SM or aggregated). */
struct KernelStats
{
    // Instruction mix.
    std::uint64_t issued_instructions = 0; ///< all warp instrs issued
    std::uint64_t alu_instructions = 0;
    std::uint64_t sfu_instructions = 0;
    std::uint64_t smem_instructions = 0;
    std::uint64_t mem_instructions = 0;    ///< global-memory warp instrs
    std::uint64_t mem_requests = 0;        ///< coalesced line requests

    // L1 data cache behaviour.
    std::uint64_t l1d_accesses = 0;        ///< serviced accesses
    std::uint64_t l1d_hits = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t l1d_rsfails = 0;         ///< reservation failures
    std::uint64_t l1d_rsfail_line = 0;
    std::uint64_t l1d_rsfail_mshr = 0;
    std::uint64_t l1d_rsfail_missq = 0;

    // Thread-block completion.
    std::uint64_t tbs_completed = 0;

    /** Average compute (ALU+SFU+SMEM) instructions per memory instr. */
    double cinstPerMinst() const
    {
        if (mem_instructions == 0)
            return 0.0;
        const std::uint64_t c = alu_instructions + sfu_instructions +
                                smem_instructions;
        return static_cast<double>(c) /
               static_cast<double>(mem_instructions);
    }

    /** Average coalesced requests per memory instruction (Req/Minst). */
    double reqPerMinst() const
    {
        if (mem_instructions == 0)
            return 0.0;
        return static_cast<double>(mem_requests) /
               static_cast<double>(mem_instructions);
    }

    /** L1D miss rate over serviced accesses. */
    double l1dMissRate() const
    {
        if (l1d_accesses == 0)
            return 0.0;
        return static_cast<double>(l1d_misses) /
               static_cast<double>(l1d_accesses);
    }

    /** Reservation failures per serviced L1D access (paper's metric). */
    double l1dRsFailRate() const
    {
        if (l1d_accesses == 0)
            return 0.0;
        return static_cast<double>(l1d_rsfails) /
               static_cast<double>(l1d_accesses);
    }

    KernelStats &operator+=(const KernelStats &o);
};

/** Counters accumulated per SM, independent of kernel. */
struct SmStats
{
    std::uint64_t cycles = 0;
    /** Cycles in which the LSU had work but its head access failed
     *  reservation (the paper's "LSU stall cycles"). */
    std::uint64_t lsu_stall_cycles = 0;
    /** Scheduler-slots (num_schedulers * cycles) that issued an ALU op. */
    std::uint64_t alu_issue_slots = 0;
    /** Scheduler-slots that issued an SFU op. */
    std::uint64_t sfu_issue_slots = 0;
    /** Scheduler-slots that issued anything. */
    std::uint64_t issue_slots_used = 0;

    double lsuStallFraction() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(lsu_stall_cycles) /
               static_cast<double>(cycles);
    }

    SmStats &operator+=(const SmStats &o);
};

/** Geometric mean of a non-empty vector of positive values. */
double geomean(const std::vector<double> &xs);

/**
 * Order-sensitive FNV-1a digest of every counter, for determinism
 * checks: two runs with the same config and seed must produce the
 * same fingerprint.
 */
std::uint64_t fingerprint(const KernelStats &s,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);
std::uint64_t fingerprint(const SmStats &s,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Serialize/restore every counter (checkpoints + results journal). */
void snapshotKernelStats(SnapshotWriter &w, const KernelStats &s);
KernelStats restoreKernelStats(SnapshotReader &r);
void snapshotSmStats(SnapshotWriter &w, const SmStats &s);
SmStats restoreSmStats(SnapshotReader &r);

} // namespace ckesim

#endif // CKESIM_SIM_STATS_HPP
