#include "sim/stats.hpp"

#include <cmath>

namespace ckesim {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    issued_instructions += o.issued_instructions;
    alu_instructions += o.alu_instructions;
    sfu_instructions += o.sfu_instructions;
    smem_instructions += o.smem_instructions;
    mem_instructions += o.mem_instructions;
    mem_requests += o.mem_requests;
    l1d_accesses += o.l1d_accesses;
    l1d_hits += o.l1d_hits;
    l1d_misses += o.l1d_misses;
    l1d_rsfails += o.l1d_rsfails;
    l1d_rsfail_line += o.l1d_rsfail_line;
    l1d_rsfail_mshr += o.l1d_rsfail_mshr;
    l1d_rsfail_missq += o.l1d_rsfail_missq;
    tbs_completed += o.tbs_completed;
    return *this;
}

SmStats &
SmStats::operator+=(const SmStats &o)
{
    cycles += o.cycles;
    lsu_stall_cycles += o.lsu_stall_cycles;
    alu_issue_slots += o.alu_issue_slots;
    sfu_issue_slots += o.sfu_issue_slots;
    issue_slots_used += o.issue_slots_used;
    return *this;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace ckesim
