#include "sim/stats.hpp"

#include <cmath>

#include "sim/snapshot.hpp"

namespace ckesim {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    issued_instructions += o.issued_instructions;
    alu_instructions += o.alu_instructions;
    sfu_instructions += o.sfu_instructions;
    smem_instructions += o.smem_instructions;
    mem_instructions += o.mem_instructions;
    mem_requests += o.mem_requests;
    l1d_accesses += o.l1d_accesses;
    l1d_hits += o.l1d_hits;
    l1d_misses += o.l1d_misses;
    l1d_rsfails += o.l1d_rsfails;
    l1d_rsfail_line += o.l1d_rsfail_line;
    l1d_rsfail_mshr += o.l1d_rsfail_mshr;
    l1d_rsfail_missq += o.l1d_rsfail_missq;
    tbs_completed += o.tbs_completed;
    return *this;
}

SmStats &
SmStats::operator+=(const SmStats &o)
{
    cycles += o.cycles;
    lsu_stall_cycles += o.lsu_stall_cycles;
    alu_issue_slots += o.alu_issue_slots;
    sfu_issue_slots += o.sfu_issue_slots;
    issue_slots_used += o.issue_slots_used;
    return *this;
}

namespace {
std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xffULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}
} // namespace

std::uint64_t
fingerprint(const KernelStats &s, std::uint64_t seed)
{
    std::uint64_t h = seed;
    h = fnv1a(h, s.issued_instructions);
    h = fnv1a(h, s.alu_instructions);
    h = fnv1a(h, s.sfu_instructions);
    h = fnv1a(h, s.smem_instructions);
    h = fnv1a(h, s.mem_instructions);
    h = fnv1a(h, s.mem_requests);
    h = fnv1a(h, s.l1d_accesses);
    h = fnv1a(h, s.l1d_hits);
    h = fnv1a(h, s.l1d_misses);
    h = fnv1a(h, s.l1d_rsfails);
    h = fnv1a(h, s.l1d_rsfail_line);
    h = fnv1a(h, s.l1d_rsfail_mshr);
    h = fnv1a(h, s.l1d_rsfail_missq);
    h = fnv1a(h, s.tbs_completed);
    return h;
}

std::uint64_t
fingerprint(const SmStats &s, std::uint64_t seed)
{
    std::uint64_t h = seed;
    h = fnv1a(h, s.cycles);
    h = fnv1a(h, s.lsu_stall_cycles);
    h = fnv1a(h, s.alu_issue_slots);
    h = fnv1a(h, s.sfu_issue_slots);
    h = fnv1a(h, s.issue_slots_used);
    return h;
}

void
snapshotKernelStats(SnapshotWriter &w, const KernelStats &s)
{
    w.u64(s.issued_instructions);
    w.u64(s.alu_instructions);
    w.u64(s.sfu_instructions);
    w.u64(s.smem_instructions);
    w.u64(s.mem_instructions);
    w.u64(s.mem_requests);
    w.u64(s.l1d_accesses);
    w.u64(s.l1d_hits);
    w.u64(s.l1d_misses);
    w.u64(s.l1d_rsfails);
    w.u64(s.l1d_rsfail_line);
    w.u64(s.l1d_rsfail_mshr);
    w.u64(s.l1d_rsfail_missq);
    w.u64(s.tbs_completed);
}

KernelStats
restoreKernelStats(SnapshotReader &r)
{
    KernelStats s;
    s.issued_instructions = r.u64();
    s.alu_instructions = r.u64();
    s.sfu_instructions = r.u64();
    s.smem_instructions = r.u64();
    s.mem_instructions = r.u64();
    s.mem_requests = r.u64();
    s.l1d_accesses = r.u64();
    s.l1d_hits = r.u64();
    s.l1d_misses = r.u64();
    s.l1d_rsfails = r.u64();
    s.l1d_rsfail_line = r.u64();
    s.l1d_rsfail_mshr = r.u64();
    s.l1d_rsfail_missq = r.u64();
    s.tbs_completed = r.u64();
    return s;
}

void
snapshotSmStats(SnapshotWriter &w, const SmStats &s)
{
    w.u64(s.cycles);
    w.u64(s.lsu_stall_cycles);
    w.u64(s.alu_issue_slots);
    w.u64(s.sfu_issue_slots);
    w.u64(s.issue_slots_used);
}

SmStats
restoreSmStats(SnapshotReader &r)
{
    SmStats s;
    s.cycles = r.u64();
    s.lsu_stall_cycles = r.u64();
    s.alu_issue_slots = r.u64();
    s.sfu_issue_slots = r.u64();
    s.issue_slots_used = r.u64();
    return s;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace ckesim
