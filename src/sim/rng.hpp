/**
 * @file
 * Small deterministic PRNGs used for procedural workload generation.
 *
 * The simulator must be bit-for-bit reproducible across runs and
 * platforms, so we avoid std::mt19937's header-dependent distributions
 * and use explicit integer algorithms (SplitMix64 for seeding,
 * xorshift128+ for streams).
 */

#ifndef CKESIM_SIM_RNG_HPP
#define CKESIM_SIM_RNG_HPP

#include <cstdint>

namespace ckesim {

/** One step of SplitMix64; good for deriving independent seeds. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xorshift128+ PRNG. Fast, with 2^128-1 period, more than enough for
 * address-stream generation.
 */
class Rng
{
  public:
    /** Construct from a single seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL)
    {
        std::uint64_t s = seed;
        s0_ = splitMix64(s);
        s1_ = splitMix64(s);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Raw generator state, for checkpointing (sim/snapshot). */
    struct State
    {
        std::uint64_t s0 = 0;
        std::uint64_t s1 = 0;
    };

    State state() const { return State{s0_, s1_}; }

    /** Restore a previously captured state verbatim. */
    void
    setState(State st)
    {
        s0_ = st.s0;
        s1_ = st.s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace ckesim

#endif // CKESIM_SIM_RNG_HPP
