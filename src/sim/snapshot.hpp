/**
 * @file
 * Versioned, deterministic binary codec for GPU state checkpoints.
 *
 * A checkpoint must satisfy two properties that ordinary serialization
 * does not guarantee: (1) restore(snapshot(t)) followed by run must be
 * bit-identical to the uninterrupted run — so every byte written is a
 * pure function of simulator state, never of host iteration order or
 * wall time; and (2) a corrupted or version-skewed blob must fail
 * loudly at decode time, never produce a silently wrong simulation.
 *
 * The encoding is a flat tagged stream: every value is prefixed with a
 * one-byte type tag, and components bracket their state in named
 * sections. A reader that drifts out of alignment (a field added on
 * one side only, a truncated file) hits a tag or section-name mismatch
 * within a few bytes and throws a SimError of kind "Snapshot" with the
 * offset. The writer maintains a running FNV-1a fingerprint over the
 * payload; two checkpoints are equal iff their fingerprints are.
 *
 * Format rules (see DESIGN.md section 11):
 *  - kSnapshotFormatVersion (sim/types.hpp) must be bumped on any
 *    change to what is serialized or how; there is no migration.
 *  - unordered containers are serialized in sorted key order;
 *  - doubles are serialized by bit pattern, never formatted;
 *  - pointers are never serialized — restore re-binds them from the
 *    reconstructed object graph.
 */

#ifndef CKESIM_SIM_SNAPSHOT_HPP
#define CKESIM_SIM_SNAPSHOT_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ckesim {

/** Wire type tags. One byte before every encoded value. */
enum class SnapTag : std::uint8_t {
    U8 = 1,
    U32 = 2,
    U64 = 3,
    I64 = 4,
    Bool = 5,
    F64 = 6,
    Str = 7,
    Section = 8,
};

/**
 * Append-only typed encoder with a running content fingerprint.
 * All append operations are deterministic functions of their
 * arguments; the resulting byte vector is the checkpoint payload.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter() = default;

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void boolean(bool v);
    void f64(double v);
    void str(const std::string &v);

    /** Named section marker; the reader must ask for the same name. */
    void section(const char *name);

    /** Strong id: serialized as its signed raw value. */
    template <class Tag, class Rep>
    void
    id(StrongId<Tag, Rep> v)
    {
        i64(static_cast<std::int64_t>(v.get()));
    }

    /** Strong unit: serialized as its unsigned raw value. */
    template <class Tag, class Rep>
    void
    unit(StrongUnit<Tag, Rep> v)
    {
        u64(static_cast<std::uint64_t>(v.get()));
    }

    /** Length-prefixed vector of u64 (stats arrays, series bins). */
    void vecU64(const std::vector<std::uint64_t> &v);

    /** Length-prefixed vector<bool> (bypass masks). */
    void vecBool(const std::vector<bool> &v);

    /** FNV-1a over every byte appended so far. */
    std::uint64_t fingerprint() const { return fp_; }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void tag(SnapTag t);
    void raw(const void *p, std::size_t n);

    std::vector<std::uint8_t> buf_;
    std::uint64_t fp_ = 0xcbf29ce484222325ULL;
};

/**
 * Strict decoder for SnapshotWriter streams. Every read validates the
 * type tag (and, for sections, the name) before consuming the value;
 * any mismatch or truncation throws SimError kind "Snapshot".
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(&bytes)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    bool boolean();
    double f64();
    std::string str();

    /** Consume a section marker; @p name must match what was written. */
    void section(const char *name);

    template <class IdT>
    IdT
    id()
    {
        return IdT(static_cast<typename IdT::rep_type>(i64()));
    }

    template <class UnitT>
    UnitT
    unit()
    {
        return UnitT(static_cast<typename UnitT::rep_type>(u64()));
    }

    std::vector<std::uint64_t> vecU64();
    std::vector<bool> vecBool();

    /** Entire payload consumed? restore() asserts this at the end. */
    bool atEnd() const { return pos_ == bytes_->size(); }

    std::size_t offset() const { return pos_; }

  private:
    void expect(SnapTag t);
    const std::uint8_t *take(std::size_t n);
    [[noreturn]] void fail(const std::string &detail) const;

    const std::vector<std::uint8_t> *bytes_;
    std::size_t pos_ = 0;
};

/**
 * A complete GPU checkpoint: the versioned payload plus enough
 * metadata to refuse restoration into the wrong simulation.
 */
struct GpuSnapshot
{
    /** Format version at capture time (= kSnapshotFormatVersion). */
    std::uint32_t version = 0;
    /** Simulated time at capture. */
    Cycle cycle{};
    /** FNV-1a fingerprint of @ref bytes. */
    std::uint64_t fingerprint = 0;
    /** GpuConfig::digest() of the owning simulation. */
    std::uint64_t config_digest = 0;
    /** The encoded state. */
    std::vector<std::uint8_t> bytes;
};

} // namespace ckesim

#endif // CKESIM_SIM_SNAPSHOT_HPP
