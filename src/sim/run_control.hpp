/**
 * @file
 * Cooperative run control for long simulations: cancellation,
 * wall-clock deadlines, and total-cycle budgets.
 *
 * A RunControl is shared between the thread driving a Gpu and any
 * supervisor (SweepEngine, a signal handler, a test harness). The Gpu
 * polls it from its run loop at the integrity check cadence and
 * converts a tripped control into a structured SimError — kind
 * "Cancelled" for an external stop, "Timeout" for an exhausted
 * budget — so a hung or abandoned job dies with full machine context
 * instead of spinning forever or being killed from outside.
 *
 * The wall-clock deadline is the one intentional non-determinism in
 * the simulator core: it never influences simulated state, only
 * whether the simulation is allowed to continue at all. Two runs that
 * both finish produce bit-identical results regardless of deadline.
 */

#ifndef CKESIM_SIM_RUN_CONTROL_HPP
#define CKESIM_SIM_RUN_CONTROL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "sim/types.hpp"

namespace ckesim {

/** Shared stop/budget state polled cooperatively by Gpu::run(). */
class RunControl
{
  public:
    RunControl() = default;

    /** Request a cooperative stop. Safe from any thread. */
    void requestCancel() { cancel_.store(true, std::memory_order_relaxed); }

    bool
    cancelRequested() const
    {
        return cancel_.load(std::memory_order_relaxed);
    }

    /**
     * Cap the total simulated time: once the Gpu's clock reaches
     * @p cycles the run fails with a Timeout error. 0 disables.
     */
    void setCycleBudget(std::uint64_t cycles) { cycle_budget_ = cycles; }

    std::uint64_t cycleBudget() const { return cycle_budget_; }

    /**
     * Cap host wall time from now: the run fails with a Timeout error
     * once @p ms milliseconds have elapsed. 0 disables.
     */
    void
    setWallBudgetMs(std::uint64_t ms)
    {
        wall_ms_ = ms;
        if (ms > 0)
            deadline_ =
                std::chrono::steady_clock::now() + // LINT-ALLOW(determinism): wall budget only gates continuation, never simulated state
                std::chrono::milliseconds(ms);
    }

    std::uint64_t wallBudgetMs() const { return wall_ms_; }

    /**
     * Install a hook invoked at every control poll, from the thread
     * driving the Gpu. The campaign worker uses this to emit
     * heartbeats (and to host process-fault trigger points) exactly
     * as often as the simulation proves it is making progress: a
     * wedged simulation stops polling, the heartbeats stop, and the
     * orchestrator's liveness deadline can fire. The hook must never
     * touch simulated state.
     */
    void setPollHook(std::function<void()> hook)
    {
        poll_hook_ = std::move(hook);
    }

    /** Run the poll hook, if any (called by Gpu::run's poll site). */
    void
    onPoll() const
    {
        if (poll_hook_)
            poll_hook_();
    }

    /** Has the wall-clock deadline passed? */
    bool
    wallExpired() const
    {
        if (wall_ms_ == 0)
            return false;
        return
            std::chrono::steady_clock::now() >= deadline_; // LINT-ALLOW(determinism): wall budget only gates continuation, never simulated state
    }

  private:
    std::atomic<bool> cancel_{false};
    std::function<void()> poll_hook_;
    std::uint64_t cycle_budget_ = 0;
    std::uint64_t wall_ms_ = 0;
    std::chrono::steady_clock::time_point deadline_{}; // LINT-ALLOW(determinism): deadline bookkeeping for the wall budget
};

} // namespace ckesim

#endif // CKESIM_SIM_RUN_CONTROL_HPP
