/**
 * @file
 * Fundamental scalar types shared across the simulator, as *strong*
 * types.
 *
 * Every mechanism the paper builds (QBMI quotas, MILG limits,
 * reservation-failure accounting) is indexed per kernel, per SM and
 * per warp slot; an ID swap or a byte-address/line-address mix-up
 * would compile silently as plain ints and corrupt per-kernel
 * attribution. The wrappers below make such mix-ups compile errors
 * while remaining zero-overhead: they hold exactly one scalar, every
 * operation is constexpr and inline, and results are bit-identical to
 * the raw-integer code they replaced.
 *
 * Taxonomy (see DESIGN.md section 10):
 *  - StrongId<Tag>: a *name* (KernelId, SmId, WarpSlot). Explicitly
 *    constructed, equality-comparable, ordered, hashable, streamable;
 *    no arithmetic — adding two kernel ids is meaningless. idx()
 *    converts to a container index, next() yields the successor for
 *    iteration.
 *  - StrongUnit<Tag>: a *quantity* (Cycle, Addr, LineAddr). Closed
 *    under + and - with its own kind and with raw integral offsets;
 *    ratio and modulus of two like quantities return a raw count.
 *    Cross-unit arithmetic (Cycle + Addr, Addr vs LineAddr) does not
 *    compile.
 */

#ifndef CKESIM_SIM_TYPES_HPP
#define CKESIM_SIM_TYPES_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace ckesim {

/**
 * Nominal identifier: a name drawn from a per-Tag namespace.
 *
 * Default-constructed ids are the tag's invalid sentinel (rep -1),
 * so "no kernel" / "no SM" / "no warp slot" need no parallel flag.
 */
template <class Tag, class Rep = std::int32_t>
class StrongId
{
  public:
    using rep_type = Rep;

    constexpr StrongId() = default;

    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr explicit StrongId(I v) : v_(static_cast<Rep>(v))
    {
    }

    /** Raw value (diagnostics, serialization). */
    constexpr Rep get() const { return v_; }

    /** Container index. @pre valid() */
    constexpr std::size_t idx() const
    {
        return static_cast<std::size_t>(v_);
    }

    /** Not the invalid sentinel? */
    constexpr bool valid() const { return v_ >= 0; }

    /** Successor id (ordinal iteration over dense id ranges). */
    constexpr StrongId next() const { return StrongId(v_ + 1); }

    constexpr StrongId &
    operator++()
    {
        ++v_;
        return *this;
    }

    friend constexpr bool operator==(StrongId a, StrongId b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(StrongId a, StrongId b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(StrongId a, StrongId b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(StrongId a, StrongId b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(StrongId a, StrongId b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(StrongId a, StrongId b)
    {
        return a.v_ >= b.v_;
    }

    friend std::ostream &
    operator<<(std::ostream &os, StrongId id)
    {
        return os << id.v_;
    }

  private:
    Rep v_ = Rep{-1};
};

/**
 * Dimensioned scalar quantity. Same-kind sums/differences stay in the
 * unit; integral offsets shift it; the ratio or modulus of two like
 * quantities is a dimensionless raw count.
 */
template <class Tag, class Rep = std::uint64_t>
class StrongUnit
{
  public:
    using rep_type = Rep;

    constexpr StrongUnit() = default;

    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr explicit StrongUnit(I v) : v_(static_cast<Rep>(v))
    {
    }

    /** Raw value (ratios against other dimensions, formatting). */
    constexpr Rep get() const { return v_; }

    static constexpr StrongUnit
    max()
    {
        return StrongUnit(std::numeric_limits<Rep>::max());
    }

    // ---- same-unit arithmetic -------------------------------------
    friend constexpr StrongUnit operator+(StrongUnit a, StrongUnit b)
    {
        return StrongUnit(a.v_ + b.v_);
    }
    friend constexpr StrongUnit operator-(StrongUnit a, StrongUnit b)
    {
        return StrongUnit(a.v_ - b.v_);
    }
    /** Ratio of like quantities: dimensionless. */
    friend constexpr Rep operator/(StrongUnit a, StrongUnit b)
    {
        return a.v_ / b.v_;
    }
    /** Remainder against a like quantity: dimensionless. */
    friend constexpr Rep operator%(StrongUnit a, StrongUnit b)
    {
        return a.v_ % b.v_;
    }

    // ---- integral offsets -----------------------------------------
    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr StrongUnit
    operator+(I d) const
    {
        return StrongUnit(v_ + static_cast<Rep>(d));
    }
    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr StrongUnit
    operator-(I d) const
    {
        return StrongUnit(v_ - static_cast<Rep>(d));
    }
    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr Rep
    operator%(I d) const
    {
        return v_ % static_cast<Rep>(d);
    }
    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr Rep
    operator/(I d) const
    {
        return v_ / static_cast<Rep>(d);
    }

    constexpr StrongUnit &
    operator+=(StrongUnit o)
    {
        v_ += o.v_;
        return *this;
    }
    template <class I,
              class = std::enable_if_t<std::is_integral_v<I>>>
    constexpr StrongUnit &
    operator+=(I d)
    {
        v_ += static_cast<Rep>(d);
        return *this;
    }
    constexpr StrongUnit &
    operator++()
    {
        ++v_;
        return *this;
    }

    friend constexpr bool operator==(StrongUnit a, StrongUnit b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(StrongUnit a, StrongUnit b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(StrongUnit a, StrongUnit b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(StrongUnit a, StrongUnit b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(StrongUnit a, StrongUnit b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(StrongUnit a, StrongUnit b)
    {
        return a.v_ >= b.v_;
    }

    friend std::ostream &
    operator<<(std::ostream &os, StrongUnit u)
    {
        return os << u.v_;
    }

  private:
    Rep v_ = Rep{0};
};

// ---- the simulator's concrete types -------------------------------

/** Simulation time, in GPU core clock cycles. */
using Cycle = StrongUnit<struct CycleTag>;

/** Byte address in the (synthetic) global memory space. */
using Addr = StrongUnit<struct AddrTag>;

/**
 * Line-granular address (the byte address divided by the line size):
 * the currency of everything below the coalescer — L1D/L2 tag
 * arrays, MSHR keys, DRAM bank/row mapping, MemRequest routing.
 * Produced only by the coalescer / mem/address.hpp map (toLineAddr);
 * mixing it up with a byte Addr no longer compiles.
 */
using LineAddr = StrongUnit<struct LineAddrTag>;

/** Index of a kernel inside a concurrent workload (0-based). */
using KernelId = StrongId<struct KernelIdTag>;

/** Index of a streaming multiprocessor (0-based). */
using SmId = StrongId<struct SmIdTag>;

/** A warp's slot in its SM's warp table (0-based). */
using WarpSlot = StrongId<struct WarpSlotTag>;

/** Sentinel for "no kernel". */
inline constexpr KernelId kInvalidKernel{};

/** Sentinel for "no SM" (standalone components, diagnostics). */
inline constexpr SmId kInvalidSm{};

/** Sentinel for "no warp slot". */
inline constexpr WarpSlot kInvalidWarpSlot{};

/** Sentinel cycle meaning "never". */
inline constexpr Cycle kNeverCycle = Cycle::max();

/** Maximum number of kernels that may share one SM. */
inline constexpr int kMaxKernelsPerSm = 4;

/**
 * On-disk/in-memory snapshot format version (sim/snapshot.hpp).
 * Bump on ANY change to what Gpu::snapshot() serializes or how:
 * adding/removing/reordering a field, changing a type tag, changing
 * the fingerprint algorithm. restore() refuses mismatched versions
 * outright — there is no cross-version migration; checkpoints are
 * cheap to regenerate, silent misdecodes are not.
 */
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

} // namespace ckesim

// ---- hashing ------------------------------------------------------

template <class Tag, class Rep>
struct std::hash<ckesim::StrongId<Tag, Rep>>
{
    std::size_t
    operator()(ckesim::StrongId<Tag, Rep> id) const noexcept
    {
        return std::hash<Rep>{}(id.get());
    }
};

template <class Tag, class Rep>
struct std::hash<ckesim::StrongUnit<Tag, Rep>>
{
    std::size_t
    operator()(ckesim::StrongUnit<Tag, Rep> u) const noexcept
    {
        return std::hash<Rep>{}(u.get());
    }
};

#endif // CKESIM_SIM_TYPES_HPP
