/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CKESIM_SIM_TYPES_HPP
#define CKESIM_SIM_TYPES_HPP

#include <cstdint>
#include <limits>

namespace ckesim {

/** Simulation time, in GPU core clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the (synthetic) global memory space. */
using Addr = std::uint64_t;

/** Index of a kernel inside a concurrent workload (0-based). */
using KernelId = int;

/** Sentinel for "no kernel". */
inline constexpr KernelId kInvalidKernel = -1;

/** Sentinel cycle meaning "never". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Maximum number of kernels that may share one SM. */
inline constexpr int kMaxKernelsPerSm = 4;

} // namespace ckesim

#endif // CKESIM_SIM_TYPES_HPP
