#include "sim/config.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace ckesim {

namespace {

/** Throw a ConfigError naming the offending field. */
[[noreturn]] void
configFail(const std::string &field, const std::string &why)
{
    SimCtx ctx;
    ctx.module = "config";
    raiseSimError("ConfigError", ctx, field + ": " + why);
}

void
requirePositive(int value, const char *field)
{
    if (value < 1) {
        configFail(field, "must be >= 1, got " +
                              std::to_string(value));
    }
}

void
requireNonNegative(int value, const char *field)
{
    if (value < 0) {
        configFail(field, "must be >= 0, got " +
                              std::to_string(value));
    }
}

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Shared geometry checks for the L1D and L2 tag arrays. */
void
validateCacheGeometry(const char *name, int size_bytes, int line_bytes,
                      int assoc)
{
    requirePositive(size_bytes, name);
    requirePositive(assoc, name);
    if (!isPowerOfTwo(line_bytes))
        configFail(name, "line_bytes must be a power of two, got " +
                             std::to_string(line_bytes));
    if (size_bytes % (line_bytes * assoc) != 0) {
        configFail(name,
                   "size " + std::to_string(size_bytes) +
                       " is not a multiple of line_bytes*assoc = " +
                       std::to_string(line_bytes * assoc) +
                       " (assoc/set-count mismatch)");
    }
    const int sets = size_bytes / (line_bytes * assoc);
    if (!isPowerOfTwo(sets)) {
        configFail(name, "set count " + std::to_string(sets) +
                             " is not a power of two (xor indexing "
                             "requires it)");
    }
}

} // namespace

void
GpuConfig::validate() const
{
    requirePositive(num_sms, "num_sms");

    // SM pipeline.
    requirePositive(sm.simd_width, "sm.simd_width");
    requirePositive(sm.num_schedulers, "sm.num_schedulers");
    requirePositive(sm.max_threads, "sm.max_threads");
    requirePositive(sm.max_warps, "sm.max_warps");
    requirePositive(sm.max_tbs, "sm.max_tbs");
    requirePositive(sm.register_file, "sm.register_file");
    requirePositive(sm.smem_bytes, "sm.smem_bytes");
    requirePositive(sm.alu_latency, "sm.alu_latency");
    requirePositive(sm.sfu_latency, "sm.sfu_latency");
    requirePositive(sm.smem_latency, "sm.smem_latency");
    requirePositive(sm.lsu_queue_depth, "sm.lsu_queue_depth");
    if (sm.max_threads < sm.simd_width)
        configFail("sm.max_threads",
                   "must hold at least one warp (simd_width)");

    // L1D miss resources.
    validateCacheGeometry("l1d", l1d.size_bytes, l1d.line_bytes,
                          l1d.assoc);
    requirePositive(l1d.num_mshrs, "l1d.num_mshrs");
    requirePositive(l1d.mshr_merge, "l1d.mshr_merge");
    requirePositive(l1d.miss_queue_depth, "l1d.miss_queue_depth");
    requireNonNegative(l1d.hit_latency, "l1d.hit_latency");

    // L2 partitions.
    validateCacheGeometry("l2", l2.partition_bytes, l2.line_bytes,
                          l2.assoc);
    requirePositive(l2.num_mshrs, "l2.num_mshrs");
    requirePositive(l2.miss_queue_depth, "l2.miss_queue_depth");
    requireNonNegative(l2.latency, "l2.latency");
    if (l2.line_bytes != l1d.line_bytes)
        configFail("l2.line_bytes",
                   "must match l1d.line_bytes (" +
                       std::to_string(l1d.line_bytes) + "), got " +
                       std::to_string(l2.line_bytes));

    // Crossbar.
    requirePositive(icnt.flit_bytes, "icnt.flit_bytes");
    requireNonNegative(icnt.latency, "icnt.latency");
    requirePositive(icnt.input_queue_depth, "icnt.input_queue_depth");

    // DRAM. A dirty L2 eviction needs two queue slots in one cycle
    // (writeback + fetch), so a 1-deep queue deadlocks the partition.
    requirePositive(dram.num_channels, "dram.num_channels");
    requirePositive(dram.banks_per_channel, "dram.banks_per_channel");
    requirePositive(dram.row_bytes, "dram.row_bytes");
    requireNonNegative(dram.access_latency, "dram.access_latency");
    requirePositive(dram.row_hit_service, "dram.row_hit_service");
    requireNonNegative(dram.row_miss_penalty, "dram.row_miss_penalty");
    requirePositive(dram.frfcfs_window, "dram.frfcfs_window");
    if (dram.queue_depth < 2)
        configFail("dram.queue_depth",
                   "must be >= 2 (dirty eviction enqueues a "
                   "writeback and a fetch together), got " +
                       std::to_string(dram.queue_depth));
    if (dram.row_bytes % l2.line_bytes != 0)
        configFail("dram.row_bytes",
                   "must be a multiple of the line size " +
                       std::to_string(l2.line_bytes) + ", got " +
                       std::to_string(dram.row_bytes));

    // Integrity layer.
    requirePositive(integrity.check_interval,
                    "integrity.check_interval");
    requireNonNegative(integrity.watchdog_timeout,
                       "integrity.watchdog_timeout");
    requirePositive(integrity.audit_drain_limit,
                    "integrity.audit_drain_limit");
    requireNonNegative(integrity.checkpoint_interval,
                       "integrity.checkpoint_interval");
    if (integrity.watchdog_timeout > 0 &&
        integrity.watchdog_timeout < integrity.check_interval)
        configFail("integrity.watchdog_timeout",
                   "must be >= check_interval or 0 (disabled)");
}

std::string
GpuConfig::digest() const
{
    std::ostringstream os;
    os << "sms" << num_sms
       << "_sch" << sm.num_schedulers
       << (sm.sched_policy == SchedPolicy::GTO ? "gto" : "lrr")
       << "_l1d" << l1d.size_bytes / 1024 << "k" << l1d.assoc << "w"
       << "m" << l1d.num_mshrs << "q" << l1d.miss_queue_depth
       << "_l2p" << numL2Partitions()
       << "_seed" << seed;
    return os.str();
}

GpuConfig
makeSmallConfig(int num_sms, int num_channels)
{
    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.dram.num_channels = num_channels;
    return cfg;
}

} // namespace ckesim
