#include "sim/config.hpp"

#include <sstream>

namespace ckesim {

std::string
GpuConfig::digest() const
{
    std::ostringstream os;
    os << "sms" << num_sms
       << "_sch" << sm.num_schedulers
       << (sm.sched_policy == SchedPolicy::GTO ? "gto" : "lrr")
       << "_l1d" << l1d.size_bytes / 1024 << "k" << l1d.assoc << "w"
       << "m" << l1d.num_mshrs << "q" << l1d.miss_queue_depth
       << "_l2p" << numL2Partitions()
       << "_seed" << seed;
    return os.str();
}

GpuConfig
makeSmallConfig(int num_sms, int num_channels)
{
    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.dram.num_channels = num_channels;
    return cfg;
}

} // namespace ckesim
