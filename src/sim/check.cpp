#include "sim/check.hpp"

namespace ckesim {

std::string
formatSimCtx(const SimCtx &ctx)
{
    std::ostringstream os;
    os << "[cycle=";
    if (ctx.cycle == kNeverCycle)
        os << "?";
    else
        os << ctx.cycle;
    os << " sm=";
    if (!ctx.sm_id.valid())
        os << "-";
    else
        os << ctx.sm_id;
    os << " kernel=";
    if (ctx.kernel == kInvalidKernel)
        os << "-";
    else
        os << ctx.kernel;
    os << " module=" << (ctx.module ? ctx.module : "") << "]";
    return os.str();
}

namespace {

std::string
formatWhat(const char *kind, const char *expr, const SimCtx &ctx,
           const std::string &detail)
{
    std::ostringstream os;
    os << kind << " failed " << formatSimCtx(ctx);
    if (expr && expr[0] != '\0')
        os << " condition: " << expr;
    if (!detail.empty())
        os << "\n  " << detail;
    return os.str();
}

} // namespace

SimError::SimError(const char *kind, const char *expr, const SimCtx &ctx,
                   const std::string &detail)
    : std::runtime_error(formatWhat(kind, expr, ctx, detail)),
      ctx_(ctx), kind_(kind), expr_(expr ? expr : ""), detail_(detail)
{
}

void
raiseSimError(const char *kind, const SimCtx &ctx,
              const std::string &detail)
{
    throw SimError(kind, "", ctx, detail);
}

} // namespace ckesim
