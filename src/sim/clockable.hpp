/**
 * @file
 * The Clockable contract: ticked components additionally report a
 * *next-event horizon* so the GPU's run loop can skip dead cycles.
 *
 * A component that exposes `tick(Cycle now)` (or an equivalent
 * per-cycle advance) also exposes
 *
 *     Cycle nextEventCycle(Cycle now) const;
 *
 * returning the earliest future cycle at which ticking it could
 * change *any* observable state — including statistics counters and
 * anything its snapshot() serializes. The contract, exactly:
 *
 *  - The horizon is never in the past: result >= now.
 *  - result == now means "ticking this cycle may mutate state"; the
 *    caller must tick strictly.
 *  - result == h > now is a *promise*: ticking the component at every
 *    cycle in [now, h) is a complete no-op (bit-for-bit, snapshot
 *    included), so the caller may skip straight to h.
 *  - result == kNeverCycle means the component is genuinely idle: no
 *    queued work, no in-flight state, nothing that ever fires without
 *    new input.
 *  - Monotone under no input: absent external stimulus (injections,
 *    fills, issue events), the horizon never moves earlier.
 *
 * The promise is conservative by design — returning `now` is always
 * correct (it merely degrades to strict stepping), so components with
 * per-cycle bookkeeping (SMK epoch quota counters, a stalled L2 head
 * re-arbitrating its victim way) simply report `now` while that state
 * persists. Gpu::run additionally caps every skip at the next
 * cadenced-event boundary (watchdog/integrity poll, checkpoint, UCP,
 * global-DMIL, profiling end), so cadenced events inside a skipped
 * span still fire in order; see DESIGN.md section 13.
 *
 * Components with no tick at all (warp schedulers mutate only on
 * pick/issue; the L1D is driven by the LSU) either omit the method or
 * provide it for uniformity; tools/lint_sim.py enforces the pairing
 * for anything declaring a tick, waivable with FASTPATH-SKIP(reason).
 */

#ifndef CKESIM_SIM_CLOCKABLE_HPP
#define CKESIM_SIM_CLOCKABLE_HPP

#include <type_traits>

#include "sim/types.hpp"

namespace ckesim {

/** Detection trait: does T expose `Cycle nextEventCycle(Cycle) const`? */
template <class T, class = void>
struct has_next_event_cycle : std::false_type
{
};

template <class T>
struct has_next_event_cycle<
    T, std::void_t<decltype(std::declval<const T &>().nextEventCycle(
           std::declval<Cycle>()))>>
    : std::is_same<decltype(std::declval<const T &>().nextEventCycle(
                       std::declval<Cycle>())),
                   Cycle>
{
};

template <class T>
inline constexpr bool has_next_event_cycle_v =
    has_next_event_cycle<T>::value;

/** min of two horizons (kNeverCycle is the identity). */
constexpr Cycle
earliestEvent(Cycle a, Cycle b)
{
    return a < b ? a : b;
}

/** Clamp a component-reported horizon to the contract's floor. */
constexpr Cycle
clampHorizon(Cycle horizon, Cycle now)
{
    return horizon < now ? now : horizon;
}

/**
 * Next cycle >= now that is a multiple of @p interval — the boundary
 * at which a cadenced event (integrity poll, checkpoint, UCP,
 * global-DMIL repartition) fires. @p interval must be > 0. Returns
 * @p now itself on a boundary: that cycle must execute strictly.
 */
constexpr Cycle
nextCadence(Cycle now, int interval)
{
    const auto ivl = static_cast<Cycle::rep_type>(interval);
    const Cycle::rep_type rem = now.get() % ivl;
    return rem == 0 ? now : Cycle{now.get() + (ivl - rem)};
}

} // namespace ckesim

#endif // CKESIM_SIM_CLOCKABLE_HPP
