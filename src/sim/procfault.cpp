#include "sim/procfault.hpp"

#include <utility>

#include "sim/check.hpp"

namespace ckesim {

const char *
procFaultKindName(ProcFaultKind kind)
{
    switch (kind) {
      case ProcFaultKind::None:
        return "none";
      case ProcFaultKind::KillWorkerMidJob:
        return "kill-worker-mid-job";
      case ProcFaultKind::StallHeartbeat:
        return "stall-heartbeat";
      case ProcFaultKind::CorruptFrame:
        return "corrupt-frame";
      case ProcFaultKind::DropResult:
        return "drop-result";
      case ProcFaultKind::FailSpawn:
        return "fail-spawn";
      case ProcFaultKind::DropClientMidStream:
        return "drop-client-mid-stream";
      case ProcFaultKind::CorruptClientFrame:
        return "corrupt-client-frame";
    }
    return "unknown";
}

ProcFaultPlan::ProcFaultPlan(std::vector<ProcFaultSpec> faults)
    : faults_(std::move(faults))
{
    for (const ProcFaultSpec &spec : faults_)
        validateProcFaultSpec(spec);
}

bool
ProcFaultPlan::fire(ProcFaultKind kind, int worker, int job_index,
                    int attempt)
{
    for (ProcFaultSpec &spec : faults_) {
        if (spec.kind != kind)
            continue;
        if (spec.worker >= 0 && spec.worker != worker)
            continue;
        if (spec.job_index >= 0 && spec.job_index != job_index)
            continue;
        if (attempt >= spec.attempts)
            continue;
        if (spec.budget == 0)
            continue;
        if (spec.budget > 0)
            --spec.budget;
        ++fired_[static_cast<std::size_t>(kind)];
        return true;
    }
    return false;
}

void
validateProcFaultSpec(const ProcFaultSpec &spec)
{
    SimCtx ctx;
    ctx.module = "procfault";
    if (spec.kind == ProcFaultKind::None)
        raiseSimError("Config", ctx,
                      "ProcFaultSpec kind None in a fault plan");
    if (spec.worker < -1)
        raiseSimError("Config", ctx,
                      "ProcFaultSpec worker " +
                          std::to_string(spec.worker) +
                          " (want -1 or a worker slot)");
    if (spec.job_index < -1)
        raiseSimError("Config", ctx,
                      "ProcFaultSpec job_index " +
                          std::to_string(spec.job_index) +
                          " (want -1 or a job index)");
    if (spec.attempts <= 0)
        raiseSimError("Config", ctx,
                      "ProcFaultSpec attempts " +
                          std::to_string(spec.attempts) +
                          " must be positive");
    if (spec.budget < -1)
        raiseSimError("Config", ctx,
                      "ProcFaultSpec budget " +
                          std::to_string(spec.budget) +
                          " (want -1 or a count)");
}

} // namespace ckesim
