/**
 * @file
 * Miss Status Handling Register (MSHR) table.
 *
 * An MSHR tracks one outstanding line miss and the requests merged into
 * it. MSHRs are the paper's most commonly saturated cache-miss-related
 * resource: when the table (or an entry's merge list) is full, the
 * access suffers a reservation failure and the memory pipeline stalls.
 *
 * The table is the hottest lookup in the memory pipeline (every L1/L2
 * access probes it, often more than once), so it is stored as a flat
 * open-addressing hash table: one contiguous slot array, linear
 * probing with a deterministic multiply-shift hash, and backward-shift
 * deletion (no tombstones). Retired slots keep their merge-list
 * allocation, so the steady state allocates nothing. See DESIGN.md §14.
 */

#ifndef CKESIM_MEM_MSHR_HPP
#define CKESIM_MEM_MSHR_HPP

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace ckesim {

/**
 * MSHR table keyed by line number. @tparam Target is the per-merged-
 * request bookkeeping returned to the owner when the fill arrives.
 */
template <typename Target>
class MshrTable
{
  public:
    /** Outcome of a single-probe tryMerge(). */
    enum class MergeResult {
        NoEntry, ///< no outstanding miss for this line
        Full,    ///< entry exists but its merge list is full
        Merged,  ///< target appended to the outstanding miss
    };

    /**
     * @param num_entries table capacity (Table 1: 128 per SM/partition)
     * @param max_merge maximum requests merged into one entry
     */
    MshrTable(int num_entries, int max_merge)
        : capacity_(num_entries), max_merge_(max_merge)
    {
        // 2x headroom keeps linear-probe chains short at full
        // occupancy; the slot count is a power of two for mask math.
        std::size_t want =
            static_cast<std::size_t>(num_entries > 0 ? num_entries : 1)
            * 2;
        std::size_t n = 8;
        int log2n = 3;
        while (n < want) {
            n <<= 1;
            ++log2n;
        }
        slots_.resize(n);
        mask_ = n - 1;
        shift_ = 64 - log2n;
    }

    /** Is a miss for this line already outstanding? */
    bool
    pending(LineAddr line_number) const
    {
        return findSlot(line_number) != kNoSlot;
    }

    /** Can a new request for this (pending) line merge? */
    bool
    canMerge(LineAddr line_number) const
    {
        const std::size_t i = findSlot(line_number);
        SIM_CHECK(i != kNoSlot, ctx_,
                  "canMerge on line " << line_number
                                      << " with no outstanding miss");
        return static_cast<int>(slots_[i].targets.size()) < max_merge_;
    }

    /** Is there room for a brand-new entry? */
    bool hasFree() const { return size_ < capacity_; }

    /** Allocate a new entry for @p line_number with one target. */
    void
    allocate(LineAddr line_number, Target target)
    {
        SIM_CHECK(hasFree(), ctx_,
                  "MSHR allocate with table full ("
                      << capacity_ << " entries)");
        std::size_t i = homeOf(line_number);
        while (slots_[i].used) {
            SIM_CHECK(slots_[i].line != line_number, ctx_,
                      "duplicate MSHR allocation for line "
                          << line_number);
            i = (i + 1) & mask_;
        }
        Slot &s = slots_[i];
        s.line = line_number;
        s.used = true;
        s.targets.clear(); // retains merge-list capacity
        s.targets.push_back(std::move(target));
        ++size_;
        ++allocated_;
    }

    /** Merge another request into an existing entry. */
    void
    merge(LineAddr line_number, Target target)
    {
        const std::size_t i = findSlot(line_number);
        SIM_CHECK(i != kNoSlot, ctx_,
                  "merge into line " << line_number
                                     << " with no outstanding miss");
        SIM_CHECK(static_cast<int>(slots_[i].targets.size()) <
                      max_merge_,
                  ctx_,
                  "merge list overflow on line "
                      << line_number << " (max " << max_merge_ << ")");
        slots_[i].targets.push_back(std::move(target));
    }

    /**
     * Single-probe pending/canMerge/merge: append @p target to the
     * outstanding miss for @p line_number if one exists and has merge
     * room. The hot L1/L2 access paths use this instead of three
     * separate lookups.
     */
    MergeResult
    tryMerge(LineAddr line_number, Target target)
    {
        const std::size_t i = findSlot(line_number);
        if (i == kNoSlot)
            return MergeResult::NoEntry;
        if (static_cast<int>(slots_[i].targets.size()) >= max_merge_)
            return MergeResult::Full;
        slots_[i].targets.push_back(std::move(target));
        return MergeResult::Merged;
    }

    /**
     * Retire the entry on fill, returning all merged targets.
     * @pre an entry for @p line_number exists.
     */
    std::vector<Target>
    release(LineAddr line_number)
    {
        std::vector<Target> out;
        releaseInto(line_number, out);
        return out;
    }

    /**
     * Allocation-free release: copy the merged targets into @p out
     * (cleared first) and retire the entry. The entry's merge list
     * keeps its capacity for the next allocation in its slot.
     */
    void
    releaseInto(LineAddr line_number, std::vector<Target> &out)
    {
        const std::size_t i = findSlot(line_number);
        SIM_CHECK(i != kNoSlot, ctx_,
                  "fill for line " << line_number
                                   << " with no outstanding miss "
                                      "(dropped or duplicated fill)");
        out.clear();
        for (Target &t : slots_[i].targets)
            out.push_back(std::move(t));
        slots_[i].targets.clear();
        eraseSlot(i);
        --size_;
        ++released_;
    }

    /**
     * First merged target of the outstanding miss for @p line_number
     * — the allocating request's bookkeeping (allocate() always
     * seeds the merge list with it). @pre an entry exists.
     */
    const Target &
    firstTarget(LineAddr line_number) const
    {
        const std::size_t i = findSlot(line_number);
        SIM_CHECK(i != kNoSlot, ctx_,
                  "firstTarget on line " << line_number
                                         << " with no outstanding miss");
        return slots_[i].targets.front();
    }

    /** Visit every outstanding entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.used)
                fn(s.line, s.targets);
    }

    int size() const { return size_; }
    int capacity() const { return capacity_; }
    int maxMerge() const { return max_merge_; }
    bool empty() const { return size_ == 0; }

    // ---- integrity layer ------------------------------------------------
    /** Attach failure context (owner's SM/module identity). */
    void setCheckContext(const SimCtx &ctx) { ctx_ = ctx; }

    /** Lifetime allocation / release totals (conservation ledger). */
    std::uint64_t totalAllocated() const { return allocated_; }
    std::uint64_t totalReleased() const { return released_; }

    /** Alloc/free balance: outstanding entries match the ledger. */
    void
    checkBalance(const SimCtx &ctx) const
    {
        SIM_INVARIANT(released_ <= allocated_, ctx,
                      "MSHR released " << released_
                                       << " exceeds allocated "
                                       << allocated_);
        SIM_INVARIANT(allocated_ - released_ ==
                          static_cast<std::uint64_t>(size_),
                      ctx,
                      "MSHR ledger imbalance: allocated="
                          << allocated_ << " released=" << released_
                          << " outstanding=" << size_);
        SIM_INVARIANT(size_ <= capacity_, ctx,
                      "MSHR occupancy " << size_
                                        << " exceeds capacity "
                                        << capacity_);
    }

    // ---- checkpointing --------------------------------------------------
    /**
     * Serialize outstanding entries in sorted key order (slot order
     * depends on insertion history and must never reach the
     * payload). @p write_target emits one Target: (writer, target).
     */
    template <typename WriteTarget>
    void
    snapshot(SnapshotWriter &w, const WriteTarget &write_target) const
    {
        w.section("mshr");
        std::vector<LineAddr> keys;
        keys.reserve(static_cast<std::size_t>(size_));
        for (const Slot &s : slots_)
            if (s.used)
                keys.push_back(s.line);
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (LineAddr key : keys) {
            const std::size_t i = findSlot(key);
            const std::vector<Target> &targets = slots_[i].targets;
            w.unit(key);
            w.u64(targets.size());
            for (const Target &t : targets)
                write_target(w, t);
        }
        w.u64(allocated_);
        w.u64(released_);
    }

    /** Inverse of snapshot(); @p read_target parses one Target. */
    template <typename ReadTarget>
    void
    restore(SnapshotReader &r, const ReadTarget &read_target)
    {
        for (Slot &s : slots_) {
            s.used = false;
            s.targets.clear();
        }
        size_ = 0;
        r.section("mshr");
        const std::uint64_t n = r.u64();
        SIM_CHECK(n <= static_cast<std::uint64_t>(capacity_), ctx_,
                  "snapshot holds " << n << " MSHR entries, capacity "
                                    << capacity_);
        for (std::uint64_t i = 0; i < n; ++i) {
            const LineAddr key = r.unit<LineAddr>();
            const std::uint64_t m = r.u64();
            SIM_CHECK(m >= 1, ctx_,
                      "snapshot MSHR entry for line "
                          << key << " has no targets");
            Target first = read_target(r);
            allocate(key, std::move(first));
            --allocated_; // allocate() ledger bump; totals restored below
            for (std::uint64_t j = 1; j < m; ++j)
                merge(key, read_target(r));
        }
        allocated_ = r.u64();
        released_ = r.u64();
    }

  private:
    struct Slot
    {
        LineAddr line{};
        std::vector<Target> targets;
        bool used = false;
    };

    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    /** Deterministic multiply-shift hash: host-independent. */
    std::size_t
    homeOf(LineAddr line) const
    {
        const std::uint64_t h =
            static_cast<std::uint64_t>(line.get()) *
            0x9E3779B97F4A7C15ULL;
        return static_cast<std::size_t>(h >> shift_);
    }

    std::size_t
    findSlot(LineAddr line) const
    {
        std::size_t i = homeOf(line);
        while (slots_[i].used) {
            if (slots_[i].line == line)
                return i;
            i = (i + 1) & mask_;
        }
        return kNoSlot;
    }

    /**
     * Backward-shift deletion: close the hole at @p hole by sliding
     * back any later chain member that hashes at or before it, so
     * lookups never need tombstones.
     */
    void
    eraseSlot(std::size_t hole)
    {
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask_;
            if (!slots_[j].used)
                break;
            const std::size_t home = homeOf(slots_[j].line);
            if (((j - home) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole].line = slots_[j].line;
                // Swap keeps both merge lists' capacity alive.
                std::swap(slots_[hole].targets, slots_[j].targets);
                slots_[hole].used = true;
                slots_[j].targets.clear();
                hole = j;
            }
        }
        slots_[hole].used = false;
        slots_[hole].targets.clear();
    }

    int capacity_;  // SNAPSHOT-SKIP(fixed at construction)
    int max_merge_; // SNAPSHOT-SKIP(fixed at construction)
    std::vector<Slot> slots_; ///< open-addressing flat table
    std::size_t mask_ = 0;    // SNAPSHOT-SKIP(fixed at construction)
    int shift_ = 0;           // SNAPSHOT-SKIP(fixed at construction)
    int size_ = 0;            ///< outstanding entries
    std::uint64_t allocated_ = 0;
    std::uint64_t released_ = 0;
    SimCtx ctx_; // SNAPSHOT-SKIP(diagnostic context, rebound by owner)
};

} // namespace ckesim

#endif // CKESIM_MEM_MSHR_HPP
