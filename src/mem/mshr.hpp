/**
 * @file
 * Miss Status Handling Register (MSHR) table.
 *
 * An MSHR tracks one outstanding line miss and the requests merged into
 * it. MSHRs are the paper's most commonly saturated cache-miss-related
 * resource: when the table (or an entry's merge list) is full, the
 * access suffers a reservation failure and the memory pipeline stalls.
 */

#ifndef CKESIM_MEM_MSHR_HPP
#define CKESIM_MEM_MSHR_HPP

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace ckesim {

/**
 * MSHR table keyed by line number. @tparam Target is the per-merged-
 * request bookkeeping returned to the owner when the fill arrives.
 */
template <typename Target>
class MshrTable
{
  public:
    /**
     * @param num_entries table capacity (Table 1: 128 per SM/partition)
     * @param max_merge maximum requests merged into one entry
     */
    MshrTable(int num_entries, int max_merge)
        : capacity_(num_entries), max_merge_(max_merge)
    {
        entries_.reserve(static_cast<std::size_t>(num_entries));
    }

    /** Is a miss for this line already outstanding? */
    bool
    pending(LineAddr line_number) const
    {
        return entries_.find(line_number) != entries_.end();
    }

    /** Can a new request for this (pending) line merge? */
    bool
    canMerge(LineAddr line_number) const
    {
        auto it = entries_.find(line_number);
        SIM_CHECK(it != entries_.end(), ctx_,
                  "canMerge on line " << line_number
                                      << " with no outstanding miss");
        return static_cast<int>(it->second.size()) < max_merge_;
    }

    /** Is there room for a brand-new entry? */
    bool hasFree() const
    {
        return static_cast<int>(entries_.size()) < capacity_;
    }

    /** Allocate a new entry for @p line_number with one target. */
    void
    allocate(LineAddr line_number, Target target)
    {
        SIM_CHECK(hasFree(), ctx_,
                  "MSHR allocate with table full ("
                      << capacity_ << " entries)");
        SIM_CHECK(!pending(line_number), ctx_,
                  "duplicate MSHR allocation for line "
                      << line_number);
        entries_.emplace(line_number,
                         std::vector<Target>{std::move(target)});
        ++allocated_;
    }

    /** Merge another request into an existing entry. */
    void
    merge(LineAddr line_number, Target target)
    {
        auto it = entries_.find(line_number);
        SIM_CHECK(it != entries_.end(), ctx_,
                  "merge into line " << line_number
                                     << " with no outstanding miss");
        SIM_CHECK(static_cast<int>(it->second.size()) < max_merge_,
                  ctx_,
                  "merge list overflow on line "
                      << line_number << " (max " << max_merge_ << ")");
        it->second.push_back(std::move(target));
    }

    /**
     * Retire the entry on fill, returning all merged targets.
     * @pre an entry for @p line_number exists.
     */
    std::vector<Target>
    release(LineAddr line_number)
    {
        auto it = entries_.find(line_number);
        SIM_CHECK(it != entries_.end(), ctx_,
                  "fill for line " << line_number
                                   << " with no outstanding miss "
                                      "(dropped or duplicated fill)");
        std::vector<Target> out = std::move(it->second);
        entries_.erase(it);
        ++released_;
        return out;
    }

    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }
    int maxMerge() const { return max_merge_; }
    bool empty() const { return entries_.empty(); }

    // ---- integrity layer ------------------------------------------------
    /** Attach failure context (owner's SM/module identity). */
    void setCheckContext(const SimCtx &ctx) { ctx_ = ctx; }

    /** Lifetime allocation / release totals (conservation ledger). */
    std::uint64_t totalAllocated() const { return allocated_; }
    std::uint64_t totalReleased() const { return released_; }

    /** Alloc/free balance: outstanding entries match the ledger. */
    void
    checkBalance(const SimCtx &ctx) const
    {
        SIM_INVARIANT(released_ <= allocated_, ctx,
                      "MSHR released " << released_
                                       << " exceeds allocated "
                                       << allocated_);
        SIM_INVARIANT(allocated_ - released_ ==
                          static_cast<std::uint64_t>(entries_.size()),
                      ctx,
                      "MSHR ledger imbalance: allocated="
                          << allocated_ << " released=" << released_
                          << " outstanding=" << entries_.size());
        SIM_INVARIANT(static_cast<int>(entries_.size()) <= capacity_,
                      ctx,
                      "MSHR occupancy " << entries_.size()
                                        << " exceeds capacity "
                                        << capacity_);
    }

    // ---- checkpointing --------------------------------------------------
    /**
     * Serialize outstanding entries in sorted key order (the map's
     * iteration order is host-dependent and must never reach the
     * payload). @p write_target emits one Target: (writer, target).
     */
    template <typename WriteTarget>
    void
    snapshot(SnapshotWriter &w, const WriteTarget &write_target) const
    {
        w.section("mshr");
        std::vector<LineAddr> keys;
        keys.reserve(entries_.size());
        for (const auto &kv : entries_)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (LineAddr key : keys) {
            w.unit(key);
            const std::vector<Target> &targets = entries_.at(key);
            w.u64(targets.size());
            for (const Target &t : targets)
                write_target(w, t);
        }
        w.u64(allocated_);
        w.u64(released_);
    }

    /** Inverse of snapshot(); @p read_target parses one Target. */
    template <typename ReadTarget>
    void
    restore(SnapshotReader &r, const ReadTarget &read_target)
    {
        r.section("mshr");
        entries_.clear();
        const std::uint64_t n = r.u64();
        SIM_CHECK(n <= static_cast<std::uint64_t>(capacity_), ctx_,
                  "snapshot holds " << n << " MSHR entries, capacity "
                                    << capacity_);
        for (std::uint64_t i = 0; i < n; ++i) {
            const LineAddr key = r.unit<LineAddr>();
            const std::uint64_t m = r.u64();
            std::vector<Target> targets;
            targets.reserve(static_cast<std::size_t>(m));
            for (std::uint64_t j = 0; j < m; ++j)
                targets.push_back(read_target(r));
            entries_.emplace(key, std::move(targets));
        }
        allocated_ = r.u64();
        released_ = r.u64();
    }

  private:
    int capacity_;      // SNAPSHOT-SKIP(fixed at construction)
    int max_merge_;     // SNAPSHOT-SKIP(fixed at construction)
    std::unordered_map<LineAddr, std::vector<Target>> entries_;
    std::uint64_t allocated_ = 0;
    std::uint64_t released_ = 0;
    SimCtx ctx_;        // SNAPSHOT-SKIP(diagnostic context, rebound by owner)
};

} // namespace ckesim

#endif // CKESIM_MEM_MSHR_HPP
