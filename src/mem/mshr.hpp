/**
 * @file
 * Miss Status Handling Register (MSHR) table.
 *
 * An MSHR tracks one outstanding line miss and the requests merged into
 * it. MSHRs are the paper's most commonly saturated cache-miss-related
 * resource: when the table (or an entry's merge list) is full, the
 * access suffers a reservation failure and the memory pipeline stalls.
 */

#ifndef CKESIM_MEM_MSHR_HPP
#define CKESIM_MEM_MSHR_HPP

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace ckesim {

/**
 * MSHR table keyed by line number. @tparam Target is the per-merged-
 * request bookkeeping returned to the owner when the fill arrives.
 */
template <typename Target>
class MshrTable
{
  public:
    /**
     * @param num_entries table capacity (Table 1: 128 per SM/partition)
     * @param max_merge maximum requests merged into one entry
     */
    MshrTable(int num_entries, int max_merge)
        : capacity_(num_entries), max_merge_(max_merge)
    {
        entries_.reserve(static_cast<std::size_t>(num_entries));
    }

    /** Is a miss for this line already outstanding? */
    bool
    pending(Addr line_number) const
    {
        return entries_.find(line_number) != entries_.end();
    }

    /** Can a new request for this (pending) line merge? */
    bool
    canMerge(Addr line_number) const
    {
        auto it = entries_.find(line_number);
        assert(it != entries_.end());
        return static_cast<int>(it->second.size()) < max_merge_;
    }

    /** Is there room for a brand-new entry? */
    bool hasFree() const
    {
        return static_cast<int>(entries_.size()) < capacity_;
    }

    /** Allocate a new entry for @p line_number with one target. */
    void
    allocate(Addr line_number, Target target)
    {
        assert(hasFree());
        assert(!pending(line_number));
        entries_.emplace(line_number,
                         std::vector<Target>{std::move(target)});
    }

    /** Merge another request into an existing entry. */
    void
    merge(Addr line_number, Target target)
    {
        auto it = entries_.find(line_number);
        assert(it != entries_.end());
        assert(canMerge(line_number));
        it->second.push_back(std::move(target));
    }

    /**
     * Retire the entry on fill, returning all merged targets.
     * @pre an entry for @p line_number exists.
     */
    std::vector<Target>
    release(Addr line_number)
    {
        auto it = entries_.find(line_number);
        assert(it != entries_.end());
        std::vector<Target> out = std::move(it->second);
        entries_.erase(it);
        return out;
    }

    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }
    int maxMerge() const { return max_merge_; }
    bool empty() const { return entries_.empty(); }

  private:
    int capacity_;
    int max_merge_;
    std::unordered_map<Addr, std::vector<Target>> entries_;
};

} // namespace ckesim

#endif // CKESIM_MEM_MSHR_HPP
