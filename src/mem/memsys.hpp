/**
 * @file
 * The shared memory subsystem below the SMs' L1Ds: forward crossbar,
 * L2 partitions, DRAM channels and the reply crossbar.
 */

#ifndef CKESIM_MEM_MEMSYS_HPP
#define CKESIM_MEM_MEMSYS_HPP

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mem/address.hpp"
#include "mem/dram.hpp"
#include "mem/interconnect.hpp"
#include "mem/l2cache.hpp"
#include "mem/request.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "sim/profiler.hpp"
#include "sim/ringbuf.hpp"
#include "sim/types.hpp"

namespace ckesim {

/**
 * Shared L2 + interconnect + DRAM. SMs inject L1 miss / write-through
 * traffic and drain fills addressed to them.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Inject a request from SM @p sm_id towards the partition owning
     * its line. @return false when the crossbar port is saturated
     * (the request must stay in the L1 miss queue).
     */
    bool injectFromSm(const MemRequest &req, Cycle now);

    /** Advance every partition, channel and reply port one cycle. */
    void tick(Cycle now);

    /**
     * Clockable horizon (sim/clockable.hpp): minimum over both
     * crossbars, every partition and every channel, with refused
     * reply retries and fault-delayed fills forcing `now` (both are
     * re-examined each cycle). kNeverCycle iff quiescent().
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Pop read fills delivered to SM @p sm_id by cycle @p now into
     * @p out (cleared first). Allocation-free; each SM calls this
     * every cycle with a reused scratch vector.
     */
    void drainRepliesForSm(SmId sm_id, Cycle now,
                           std::vector<MemRequest> &out);

    /** Convenience wrapper for tests and cold paths. */
    std::vector<MemRequest>
    drainRepliesForSm(SmId sm_id, Cycle now)
    {
        std::vector<MemRequest> out;
        drainRepliesForSm(sm_id, now, out);
        return out;
    }

    int numPartitions() const
    {
        return static_cast<int>(partitions_.size());
    }
    const L2Partition &partition(int i) const
    {
        return *partitions_[static_cast<std::size_t>(i)];
    }
    const DramChannel &channel(int i) const
    {
        return *channels_[static_cast<std::size_t>(i)];
    }

    /** Aggregate L2 miss rate across partitions (diagnostics). */
    double l2MissRate() const;

    /** True when no request is anywhere in flight below the L1s. */
    bool quiescent() const;

    // ---- integrity layer ------------------------------------------------
    /** Attach a fault injector (nullptr = fault-free operation). */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** Attach a cycle-cost profiler (nullptr detaches). */
    void setProfiler(Profiler *prof) { prof_ = prof; }

    /** Read requests injected below the L1s (conservation ledger). */
    std::uint64_t injectedReads() const { return injected_reads_; }
    /** Read fills handed back to SMs (conservation ledger). */
    std::uint64_t deliveredFills() const { return delivered_fills_; }
    /** Fills discarded by an injected DropFill fault. */
    std::uint64_t droppedFills() const { return dropped_fills_; }
    /** Read requests still below the L1s. */
    std::uint64_t inflightReads() const { return inflight_; }

    /** Occupancy-bound + conservation invariants (integrity sweep). */
    void checkInvariants(Cycle now) const;

    /** Drained-state check for Gpu::audit(): every injected read
     *  retired and every queue empty. */
    void checkDrained(Cycle now) const;

    /** Multi-line occupancy dump for watchdog diagnostics. */
    std::string describeState() const;

    /** Serialize every component below the L1s plus the ledger. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a memory system of identical configuration. */
    void restore(SnapshotReader &r);

  private:
    GpuConfig cfg_;  // SNAPSHOT-SKIP(fixed at construction)
    Crossbar fwd_;   ///< SM -> partition
    Crossbar reply_; ///< partition -> SM
    std::vector<std::unique_ptr<L2Partition>> partitions_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    /** Replies an overloaded reply port refused; retried each cycle.
     *  Sized like a partition's reply ring: the retry queue can never
     *  hold more than the partition could have produced. */
    std::vector<RingBuf<MemRequest>> reply_retry_;
    /** Fills held back by an injected DelayFill fault, per SM. */
    struct DelayedFill
    {
        Cycle ready{};
        MemRequest req;
    };
    // HOTPATH-ALLOW(fault-injection only; untouched on fault-free runs)
    std::vector<std::deque<DelayedFill>> delayed_;
    /** Reused by tick() for per-partition drains. */
    std::vector<MemRequest> tick_scratch_; // SNAPSHOT-SKIP(scratch; dead between drains)
    FaultInjector *faults_ = nullptr; // SNAPSHOT-SKIP(rebound by owner; injector state snapshotted by Gpu)
    Profiler *prof_ = nullptr; // SNAPSHOT-SKIP(observer; rebound by the Gpu)
    std::uint64_t inflight_ = 0; ///< read requests below the L1s
    std::uint64_t injected_reads_ = 0;
    std::uint64_t injected_writes_ = 0;
    std::uint64_t delivered_fills_ = 0;
    std::uint64_t dropped_fills_ = 0;
};

} // namespace ckesim

#endif // CKESIM_MEM_MEMSYS_HPP
