#include "mem/coalescer.hpp"

#include <algorithm>

#include "mem/address.hpp"

namespace ckesim {

void
coalesce(const std::vector<Addr> &thread_addrs, int line_bytes,
         std::vector<LineAddr> &out)
{
    out.clear();
    // Warps have at most 32 threads; linear dedup beats hashing here.
    for (Addr a : thread_addrs) {
        const LineAddr line = toLineAddr(a, line_bytes);
        if (std::find(out.begin(), out.end(), line) == out.end())
            out.push_back(line);
    }
}

} // namespace ckesim
