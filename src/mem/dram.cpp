#include "mem/dram.hpp"

#include <algorithm>

#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
constexpr std::uint64_t kClosedRow = ~0ULL;
} // namespace

DramChannel::DramChannel(const DramConfig &cfg, int line_bytes)
    : cfg_(cfg), line_bytes_(line_bytes),
      queue_(cfg.queue_depth),
      open_row_(static_cast<std::size_t>(cfg.banks_per_channel),
                kClosedRow),
      fills_(cfg.queue_depth + cfg.access_latency +
             cfg.row_hit_service + cfg.row_miss_penalty + 8)
{
}

int
DramChannel::bankOf(LineAddr line_addr) const
{
    const std::uint64_t lines_per_row =
        static_cast<std::uint64_t>(cfg_.row_bytes / line_bytes_);
    return static_cast<int>(
        (line_addr / lines_per_row) %
        static_cast<std::uint64_t>(cfg_.banks_per_channel));
}

std::uint64_t
DramChannel::rowOf(LineAddr line_addr) const
{
    const std::uint64_t lines_per_row =
        static_cast<std::uint64_t>(cfg_.row_bytes / line_bytes_);
    return line_addr /
           (lines_per_row *
            static_cast<std::uint64_t>(cfg_.banks_per_channel));
}

bool
DramChannel::tryEnqueue(const MemRequest &req, Cycle now)
{
    if (static_cast<int>(queue_.size()) >= cfg_.queue_depth)
        return false;
    Txn txn;
    txn.req = req;
    txn.bank = bankOf(req.line_addr);
    txn.row = rowOf(req.line_addr);
    txn.arrival = now;
    queue_.push_back(txn);
    return true;
}

void
DramChannel::tick(Cycle now)
{
    if (busy_until_ > now || queue_.empty())
        return;

    // FR-FCFS: prefer the oldest row-buffer hit in the lookahead
    // window; fall back to the overall oldest request.
    const int window =
        std::min<int>(cfg_.frfcfs_window,
                      static_cast<int>(queue_.size()));
    int pick = 0;
    bool row_hit = false;
    for (int i = 0; i < window; ++i) {
        const Txn &t = queue_[static_cast<std::size_t>(i)];
        if (open_row_[static_cast<std::size_t>(t.bank)] == t.row) {
            pick = i;
            row_hit = true;
            break;
        }
    }

    Txn txn = queue_[static_cast<std::size_t>(pick)];
    queue_.eraseAt(static_cast<std::size_t>(pick));

    int service = cfg_.row_hit_service;
    if (!row_hit) {
        service += cfg_.row_miss_penalty;
        ++row_misses_;
    } else {
        ++row_hits_;
    }
    open_row_[static_cast<std::size_t>(txn.bank)] = txn.row;
    busy_until_ = now + service;

    if (txn.req.kind != ReqKind::Writeback) {
        const Cycle ready = busy_until_ + cfg_.access_latency;
        fills_.push_back(Fill{ready, txn.req});
    }
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    Cycle horizon = kNeverCycle;
    if (!queue_.empty())
        horizon = earliestEvent(horizon,
                                clampHorizon(busy_until_, now));
    if (!fills_.empty())
        horizon = earliestEvent(
            horizon, clampHorizon(fills_.front().ready, now));
    return horizon;
}

void
DramChannel::checkInvariants(Cycle now, int channel_index) const
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.module = "dram";
    SIM_INVARIANT(queueLength() <= cfg_.queue_depth, ctx,
                  "channel " << channel_index << " queue occupancy "
                             << queueLength() << " exceeds depth "
                             << cfg_.queue_depth);
}

void
DramChannel::drainFills(Cycle now, std::vector<MemRequest> &out)
{
    // Fills complete in enqueue order within a channel: ready times are
    // monotonic because busy_until_ is monotonic.
    while (!fills_.empty() && fills_.front().ready <= now) {
        out.push_back(fills_.front().req);
        fills_.pop_front();
    }
}

void
DramChannel::snapshot(SnapshotWriter &w) const
{
    w.section("dram_channel");
    queue_.snapshot(w, [](SnapshotWriter &sw, const Txn &t) {
        snapshotMemRequest(sw, t.req);
        sw.i64(t.bank);
        sw.u64(t.row);
        sw.unit(t.arrival);
    });
    w.vecU64(open_row_);
    w.unit(busy_until_);
    fills_.snapshot(w, [](SnapshotWriter &sw, const Fill &f) {
        sw.unit(f.ready);
        snapshotMemRequest(sw, f.req);
    });
    w.u64(row_hits_);
    w.u64(row_misses_);
}

void
DramChannel::restore(SnapshotReader &r)
{
    r.section("dram_channel");
    queue_.restore(r, [](SnapshotReader &sr) {
        Txn t;
        t.req = restoreMemRequest(sr);
        t.bank = static_cast<int>(sr.i64());
        t.row = sr.u64();
        t.arrival = sr.unit<Cycle>();
        return t;
    });
    std::vector<std::uint64_t> rows = r.vecU64();
    SimCtx ctx;
    ctx.module = "dram";
    SIM_CHECK(rows.size() == open_row_.size(), ctx,
              "snapshot holds " << rows.size()
                                << " bank rows, channel has "
                                << open_row_.size());
    open_row_ = std::move(rows);
    busy_until_ = r.unit<Cycle>();
    fills_.restore(r, [](SnapshotReader &sr) {
        Fill f;
        f.ready = sr.unit<Cycle>();
        f.req = restoreMemRequest(sr);
        return f;
    });
    row_hits_ = r.u64();
    row_misses_ = r.u64();
}

} // namespace ckesim
