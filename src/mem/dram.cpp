#include "mem/dram.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace ckesim {

namespace {
constexpr std::uint64_t kClosedRow = ~0ULL;
} // namespace

DramChannel::DramChannel(const DramConfig &cfg, int line_bytes)
    : cfg_(cfg), line_bytes_(line_bytes),
      open_row_(static_cast<std::size_t>(cfg.banks_per_channel),
                kClosedRow)
{
}

int
DramChannel::bankOf(LineAddr line_addr) const
{
    const std::uint64_t lines_per_row =
        static_cast<std::uint64_t>(cfg_.row_bytes / line_bytes_);
    return static_cast<int>(
        (line_addr / lines_per_row) %
        static_cast<std::uint64_t>(cfg_.banks_per_channel));
}

std::uint64_t
DramChannel::rowOf(LineAddr line_addr) const
{
    const std::uint64_t lines_per_row =
        static_cast<std::uint64_t>(cfg_.row_bytes / line_bytes_);
    return line_addr /
           (lines_per_row *
            static_cast<std::uint64_t>(cfg_.banks_per_channel));
}

bool
DramChannel::tryEnqueue(const MemRequest &req, Cycle now)
{
    if (static_cast<int>(queue_.size()) >= cfg_.queue_depth)
        return false;
    Txn txn;
    txn.req = req;
    txn.bank = bankOf(req.line_addr);
    txn.row = rowOf(req.line_addr);
    txn.arrival = now;
    queue_.push_back(txn);
    return true;
}

void
DramChannel::tick(Cycle now)
{
    if (busy_until_ > now || queue_.empty())
        return;

    // FR-FCFS: prefer the oldest row-buffer hit in the lookahead
    // window; fall back to the overall oldest request.
    const int window =
        std::min<int>(cfg_.frfcfs_window,
                      static_cast<int>(queue_.size()));
    int pick = 0;
    bool row_hit = false;
    for (int i = 0; i < window; ++i) {
        const Txn &t = queue_[static_cast<std::size_t>(i)];
        if (open_row_[static_cast<std::size_t>(t.bank)] == t.row) {
            pick = i;
            row_hit = true;
            break;
        }
    }

    Txn txn = queue_[static_cast<std::size_t>(pick)];
    queue_.erase(queue_.begin() + pick);

    int service = cfg_.row_hit_service;
    if (!row_hit) {
        service += cfg_.row_miss_penalty;
        ++row_misses_;
    } else {
        ++row_hits_;
    }
    open_row_[static_cast<std::size_t>(txn.bank)] = txn.row;
    busy_until_ = now + service;

    if (txn.req.kind != ReqKind::Writeback) {
        const Cycle ready = busy_until_ + cfg_.access_latency;
        fills_.push_back(Fill{ready, txn.req});
    }
}

void
DramChannel::checkInvariants(Cycle now, int channel_index) const
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.module = "dram";
    SIM_INVARIANT(queueLength() <= cfg_.queue_depth, ctx,
                  "channel " << channel_index << " queue occupancy "
                             << queueLength() << " exceeds depth "
                             << cfg_.queue_depth);
}

std::vector<MemRequest>
DramChannel::drainFills(Cycle now)
{
    std::vector<MemRequest> out;
    // Fills complete in enqueue order within a channel: ready times are
    // monotonic because busy_until_ is monotonic.
    while (!fills_.empty() && fills_.front().ready <= now) {
        out.push_back(fills_.front().req);
        fills_.pop_front();
    }
    return out;
}

} // namespace ckesim
