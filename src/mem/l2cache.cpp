#include "mem/l2cache.hpp"

#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
SimCtx
l2Ctx(Cycle now = kNeverCycle, KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.kernel = kernel;
    ctx.module = "l2";
    return ctx;
}
} // namespace

L2Partition::L2Partition(const L2Config &cfg, int partition_index)
    : cfg_(cfg), partition_index_(partition_index),
      tags_(cfg.numSetsPerPartition(), cfg.assoc),
      mshrs_(cfg.num_mshrs, /*max_merge=*/16)
{
    mshrs_.setCheckContext(l2Ctx());
}

void
L2Partition::acceptInput(const MemRequest &req)
{
    SIM_CHECK(inputRoom() > 0, l2Ctx(req.birth, req.kernel),
              "partition " << partition_index_
                           << " input queue overflow (depth "
                           << cfg_.miss_queue_depth << ")");
    input_.push_back(req);
}

void
L2Partition::tick(Cycle now, DramChannel &dram)
{
    if (input_.empty())
        return;

    const MemRequest req = input_.front();
    const bool is_write = req.kind == ReqKind::WriteThru;

    const int way = tags_.probe(req.line_addr);
    if (way >= 0) {
        const int set = tags_.setIndex(req.line_addr);
        CacheLine &l = tags_.line(set, way);
        if (l.valid) {
            // L2 hit.
            ++accesses_;
            tags_.touch(set, way);
            if (is_write) {
                l.dirty = true; // WBWA write hit
            } else {
                replies_.push_back(
                    Reply{now + cfg_.latency, req});
            }
            input_.pop_front();
            return;
        }
        // Reserved: merge into the outstanding miss.
        if (!mshrs_.canMerge(req.line_addr))
            return; // stall at head
        ++accesses_;
        ++misses_;
        mshrs_.merge(req.line_addr, req);
        input_.pop_front();
        return;
    }

    // New miss: MSHR + victim line + DRAM slot(s).
    if (!mshrs_.hasFree())
        return;
    VictimResult victim = tags_.chooseVictim(req.line_addr, req.kernel);
    if (!victim.ok)
        return;
    const int dram_slots_needed = victim.evicted_dirty ? 2 : 1;
    if (dram.freeSlots() < dram_slots_needed)
        return;

    ++accesses_;
    ++misses_;

    if (victim.evicted_dirty) {
        MemRequest wb;
        wb.line_addr = victim.evicted_line;
        wb.sm_id = kInvalidSm;
        wb.kernel = req.kernel;
        wb.kind = ReqKind::Writeback;
        wb.birth = now;
        const bool ok = dram.tryEnqueue(wb, now);
        SIM_INVARIANT(ok, l2Ctx(now, req.kernel),
                      "partition " << partition_index_
                                   << ": DRAM refused writeback after "
                                      "freeSlots() promised room");
    }

    tags_.reserve(tags_.setIndex(req.line_addr), victim.way,
                  req.line_addr, req.kernel);
    mshrs_.allocate(req.line_addr, req);

    MemRequest fetch = req;
    fetch.kind = ReqKind::ReadMiss; // WBWA: writes fetch the line too
    const bool ok = dram.tryEnqueue(fetch, now);
    SIM_INVARIANT(ok, l2Ctx(now, req.kernel),
                  "partition " << partition_index_
                               << ": DRAM refused fetch after "
                                  "freeSlots() promised room");

    input_.pop_front();
}

void
L2Partition::onDramFill(const MemRequest &fill, Cycle now)
{
    std::vector<MemRequest> targets = mshrs_.release(fill.line_addr);

    bool dirty = false;
    for (const MemRequest &t : targets)
        if (t.kind == ReqKind::WriteThru)
            dirty = true;

    const int way = tags_.probe(fill.line_addr);
    SIM_INVARIANT(way >= 0, l2Ctx(now, fill.kernel),
                  "partition " << partition_index_ << ": fill for line "
                               << fill.line_addr
                               << " that lost its reservation");
    const int set = tags_.setIndex(fill.line_addr);
    SIM_INVARIANT(tags_.line(set, way).reserved,
                  l2Ctx(now, fill.kernel),
                  "partition " << partition_index_ << ": fill for line "
                               << fill.line_addr
                               << " whose way is not reserved");
    tags_.fill(set, way, dirty);

    for (const MemRequest &t : targets) {
        if (t.kind != ReqKind::WriteThru) {
            replies_.push_back(Reply{now + cfg_.latency, t});
        }
    }
}

Cycle
L2Partition::nextEventCycle(Cycle now) const
{
    if (!input_.empty())
        return now;
    if (!replies_.empty())
        return clampHorizon(replies_.front().ready, now);
    return kNeverCycle;
}

void
L2Partition::checkInvariants(Cycle now) const
{
    const SimCtx ctx = l2Ctx(now);
    SIM_INVARIANT(inputSize() <= cfg_.miss_queue_depth, ctx,
                  "partition " << partition_index_
                               << " input occupancy " << inputSize()
                               << " exceeds depth "
                               << cfg_.miss_queue_depth);
    mshrs_.checkBalance(ctx);
}

std::vector<MemRequest>
L2Partition::drainReplies(Cycle now)
{
    std::vector<MemRequest> out;
    while (!replies_.empty() && replies_.front().ready <= now) {
        out.push_back(replies_.front().req);
        replies_.pop_front();
    }
    return out;
}

void
L2Partition::snapshot(SnapshotWriter &w) const
{
    w.section("l2_partition");
    tags_.snapshot(w);
    mshrs_.snapshot(w, [](SnapshotWriter &sw, const MemRequest &req) {
        snapshotMemRequest(sw, req);
    });
    w.u64(input_.size());
    for (const MemRequest &req : input_)
        snapshotMemRequest(w, req);
    w.u64(replies_.size());
    for (const Reply &rep : replies_) {
        w.unit(rep.ready);
        snapshotMemRequest(w, rep.req);
    }
    w.u64(accesses_);
    w.u64(misses_);
}

void
L2Partition::restore(SnapshotReader &r)
{
    r.section("l2_partition");
    tags_.restore(r);
    mshrs_.restore(r,
                   [](SnapshotReader &sr) { return restoreMemRequest(sr); });
    input_.clear();
    const std::uint64_t ni = r.u64();
    for (std::uint64_t i = 0; i < ni; ++i)
        input_.push_back(restoreMemRequest(r));
    replies_.clear();
    const std::uint64_t nr = r.u64();
    for (std::uint64_t i = 0; i < nr; ++i) {
        Reply rep;
        rep.ready = r.unit<Cycle>();
        rep.req = restoreMemRequest(r);
        replies_.push_back(std::move(rep));
    }
    accesses_ = r.u64();
    misses_ = r.u64();
}

} // namespace ckesim
