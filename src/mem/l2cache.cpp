#include "mem/l2cache.hpp"

#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
SimCtx
l2Ctx(Cycle now = kNeverCycle, KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.kernel = kernel;
    ctx.module = "l2";
    return ctx;
}
} // namespace

L2Partition::L2Partition(const L2Config &cfg, int partition_index)
    : cfg_(cfg), partition_index_(partition_index),
      tags_(cfg.numSetsPerPartition(), cfg.assoc),
      mshrs_(cfg.num_mshrs, /*max_merge=*/16),
      input_(cfg.miss_queue_depth),
      replies_(cfg.num_mshrs * 16 + cfg.latency +
               cfg.miss_queue_depth + 8)
{
    mshrs_.setCheckContext(l2Ctx());
}

void
L2Partition::acceptInput(const MemRequest &req)
{
    SIM_CHECK(inputRoom() > 0, l2Ctx(req.birth, req.kernel),
              "partition " << partition_index_
                           << " input queue overflow (depth "
                           << cfg_.miss_queue_depth << ")");
    input_.push_back(req);
}

void
L2Partition::tick(Cycle now, DramChannel &dram)
{
    if (input_.empty())
        return;

    const MemRequest req = input_.front();
    const bool is_write = req.kind == ReqKind::WriteThru;

    const int way = tags_.probe(req.line_addr);
    if (way >= 0) {
        const int set = tags_.setIndex(req.line_addr);
        CacheLine &l = tags_.line(set, way);
        if (l.valid) {
            // L2 hit.
            ++accesses_;
            tags_.touch(set, way);
            if (is_write) {
                l.dirty = true; // WBWA write hit
            } else {
                replies_.push_back(
                    Reply{now + cfg_.latency, req});
            }
            input_.pop_front();
            return;
        }
        // Reserved: merge into the outstanding miss.
        // One probe resolves pending + merge-room + append.
        switch (mshrs_.tryMerge(req.line_addr, req)) {
          case MshrTable<MemRequest>::MergeResult::Full:
            return; // stall at head
          case MshrTable<MemRequest>::MergeResult::NoEntry:
            SIM_CHECK(false, l2Ctx(now, req.kernel),
                      "partition " << partition_index_
                                   << ": reserved line " << req.line_addr
                                   << " with no outstanding miss");
            return;
          case MshrTable<MemRequest>::MergeResult::Merged:
            break;
        }
        ++accesses_;
        ++misses_;
        input_.pop_front();
        return;
    }

    // New miss: MSHR + victim line + DRAM slot(s).
    if (!mshrs_.hasFree())
        return;
    VictimResult victim = tags_.chooseVictim(req.line_addr, req.kernel);
    if (!victim.ok)
        return;
    const int dram_slots_needed = victim.evicted_dirty ? 2 : 1;
    if (dram.freeSlots() < dram_slots_needed)
        return;

    ++accesses_;
    ++misses_;

    if (victim.evicted_dirty) {
        MemRequest wb;
        wb.line_addr = victim.evicted_line;
        wb.sm_id = kInvalidSm;
        wb.kernel = req.kernel;
        wb.kind = ReqKind::Writeback;
        wb.birth = now;
        const bool ok = dram.tryEnqueue(wb, now);
        SIM_INVARIANT(ok, l2Ctx(now, req.kernel),
                      "partition " << partition_index_
                                   << ": DRAM refused writeback after "
                                      "freeSlots() promised room");
    }

    tags_.reserve(tags_.setIndex(req.line_addr), victim.way,
                  req.line_addr, req.kernel);
    mshrs_.allocate(req.line_addr, req);

    MemRequest fetch = req;
    fetch.kind = ReqKind::ReadMiss; // WBWA: writes fetch the line too
    const bool ok = dram.tryEnqueue(fetch, now);
    SIM_INVARIANT(ok, l2Ctx(now, req.kernel),
                  "partition " << partition_index_
                               << ": DRAM refused fetch after "
                                  "freeSlots() promised room");

    input_.pop_front();
}

void
L2Partition::onDramFill(const MemRequest &fill, Cycle now)
{
    std::vector<MemRequest> &targets = fill_targets_;
    mshrs_.releaseInto(fill.line_addr, targets);

    bool dirty = false;
    for (const MemRequest &t : targets)
        if (t.kind == ReqKind::WriteThru)
            dirty = true;

    const int way = tags_.probe(fill.line_addr);
    SIM_INVARIANT(way >= 0, l2Ctx(now, fill.kernel),
                  "partition " << partition_index_ << ": fill for line "
                               << fill.line_addr
                               << " that lost its reservation");
    const int set = tags_.setIndex(fill.line_addr);
    SIM_INVARIANT(tags_.line(set, way).reserved,
                  l2Ctx(now, fill.kernel),
                  "partition " << partition_index_ << ": fill for line "
                               << fill.line_addr
                               << " whose way is not reserved");
    tags_.fill(set, way, dirty);

    for (const MemRequest &t : targets) {
        if (t.kind != ReqKind::WriteThru) {
            replies_.push_back(Reply{now + cfg_.latency, t});
        }
    }
}

Cycle
L2Partition::nextEventCycle(Cycle now) const
{
    if (!input_.empty())
        return now;
    if (!replies_.empty())
        return clampHorizon(replies_.front().ready, now);
    return kNeverCycle;
}

void
L2Partition::checkInvariants(Cycle now) const
{
    const SimCtx ctx = l2Ctx(now);
    SIM_INVARIANT(inputSize() <= cfg_.miss_queue_depth, ctx,
                  "partition " << partition_index_
                               << " input occupancy " << inputSize()
                               << " exceeds depth "
                               << cfg_.miss_queue_depth);
    mshrs_.checkBalance(ctx);
}

void
L2Partition::drainReplies(Cycle now, std::vector<MemRequest> &out)
{
    while (!replies_.empty() && replies_.front().ready <= now) {
        out.push_back(replies_.front().req);
        replies_.pop_front();
    }
}

void
L2Partition::snapshot(SnapshotWriter &w) const
{
    w.section("l2_partition");
    tags_.snapshot(w);
    mshrs_.snapshot(w, [](SnapshotWriter &sw, const MemRequest &req) {
        snapshotMemRequest(sw, req);
    });
    input_.snapshot(w, [](SnapshotWriter &sw, const MemRequest &req) {
        snapshotMemRequest(sw, req);
    });
    replies_.snapshot(w, [](SnapshotWriter &sw, const Reply &rep) {
        sw.unit(rep.ready);
        snapshotMemRequest(sw, rep.req);
    });
    w.u64(accesses_);
    w.u64(misses_);
}

void
L2Partition::restore(SnapshotReader &r)
{
    r.section("l2_partition");
    tags_.restore(r);
    mshrs_.restore(r,
                   [](SnapshotReader &sr) { return restoreMemRequest(sr); });
    input_.restore(
        r, [](SnapshotReader &sr) { return restoreMemRequest(sr); });
    replies_.restore(r, [](SnapshotReader &sr) {
        Reply rep;
        rep.ready = sr.unit<Cycle>();
        rep.req = restoreMemRequest(sr);
        return rep;
    });
    accesses_ = r.u64();
    misses_ = r.u64();
}

} // namespace ckesim
