/**
 * @file
 * Generic set-associative tag array with allocate-on-miss reservation,
 * true-LRU replacement and optional per-kernel way masks (used by the
 * UCP cache-partitioning baseline of Section 3.1).
 *
 * The array stores tags and state only; it is untimed. Timing (hit
 * latency, miss path, reservation-failure retry) lives in the L1D
 * front-end and the L2 partition models that own a CacheArray.
 */

#ifndef CKESIM_MEM_CACHE_HPP
#define CKESIM_MEM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "mem/address.hpp"
#include "sim/types.hpp"

namespace ckesim {

class SnapshotWriter;
class SnapshotReader;

/** State of one cache line. */
struct CacheLine
{
    LineAddr line_addr{};  ///< tag (full line address for simplicity)
    bool valid = false;
    bool reserved = false; ///< allocated on miss, fill pending
    bool dirty = false;    ///< WBWA caches only
    KernelId owner = kInvalidKernel; ///< kernel that installed the line
    std::uint64_t lru = 0; ///< last-touch timestamp
};

/** Result of a victim-selection attempt. */
struct VictimResult
{
    bool ok = false;        ///< false: every candidate way is reserved
    int way = -1;
    bool evicted_dirty = false;
    LineAddr evicted_line{}; ///< valid when evicted_dirty
};

/**
 * Set-associative tag array.
 *
 * Way masks: restrictToWays(kernel, first, count) constrains victim
 * selection for @p kernel to ways [first, first+count). Lookups always
 * probe all ways (UCP partitions allocation, not visibility).
 */
class CacheArray
{
  public:
    /**
     * @param num_sets number of sets (power of two)
     * @param assoc ways per set
     */
    CacheArray(int num_sets, int assoc);

    int numSets() const { return num_sets_; }
    int assoc() const { return assoc_; }

    /** Set index for a line address (xor indexing). */
    int setIndex(LineAddr line) const
    {
        return xorSetIndex(line, num_sets_);
    }

    /** Probe for @p line. @return way index or -1. */
    int probe(LineAddr line) const;

    /** Direct access to a line. */
    CacheLine &line(int set, int way) { return sets_[idx(set, way)]; }
    const CacheLine &line(int set, int way) const
    {
        return sets_[idx(set, way)];
    }

    /** Mark a hit: refresh LRU stamp. */
    void touch(int set, int way);

    /**
     * Pick a victim way for @p kernel in the set of @p line_number.
     * Prefers an invalid way, else the LRU non-reserved way among the
     * ways allowed for the kernel. Fails (ok=false) when every
     * candidate way is reserved — the paper's "no allocatable cache
     * line slot" reservation-failure source.
     */
    VictimResult chooseVictim(LineAddr line, KernelId kernel);

    /** Reserve a way for an in-flight fill (allocate-on-miss). */
    void reserve(int set, int way, LineAddr line, KernelId kernel);

    /** Complete a reserved fill, making the line valid. */
    void fill(int set, int way, bool dirty = false);

    /** Install a line immediately (valid, not reserved). */
    void install(int set, int way, LineAddr line, KernelId kernel,
                 bool dirty);

    /** Invalidate a line (write-evict policy). */
    void invalidate(int set, int way);

    /**
     * Restrict victim selection for @p kernel to @p count ways starting
     * at @p first. Pass count == assoc() to reset to unrestricted.
     */
    void restrictToWays(KernelId kernel, int first, int count);

    /** Remove all way restrictions. */
    void clearWayRestrictions();

    /** Number of valid lines currently owned by @p kernel. */
    int occupancyOf(KernelId kernel) const;

    /** Serialize tag/state/LRU and way restrictions (checkpointing). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into an array of identical geometry. */
    void restore(SnapshotReader &r);

  private:
    std::size_t idx(int set, int way) const
    {
        return static_cast<std::size_t>(set) *
                   static_cast<std::size_t>(assoc_) +
               static_cast<std::size_t>(way);
    }

    bool wayAllowed(KernelId kernel, int way) const;

    int num_sets_; // SNAPSHOT-SKIP(fixed at construction)
    int assoc_;    // SNAPSHOT-SKIP(fixed at construction)
    std::vector<CacheLine> sets_;
    std::uint64_t tick_ = 0;

    struct WayRange { int first = 0; int count = 0; };
    /** Indexed by kernel id; count==0 means unrestricted. */
    std::vector<WayRange> restrictions_;
};

} // namespace ckesim

#endif // CKESIM_MEM_CACHE_HPP
