#include "mem/cache.hpp"

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
SimCtx
cacheCtx(KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.kernel = kernel;
    ctx.module = "cache";
    return ctx;
}
} // namespace

CacheArray::CacheArray(int num_sets, int assoc)
    : num_sets_(num_sets), assoc_(assoc),
      sets_(static_cast<std::size_t>(num_sets) *
            static_cast<std::size_t>(assoc))
{
    SIM_CHECK(num_sets > 0 && (num_sets & (num_sets - 1)) == 0,
              cacheCtx(),
              "num_sets " << num_sets << " is not a power of two");
    SIM_CHECK(assoc > 0, cacheCtx(),
              "non-positive associativity " << assoc);
}

int
CacheArray::probe(LineAddr la) const
{
    const int set = setIndex(la);
    for (int w = 0; w < assoc_; ++w) {
        const CacheLine &l = line(set, w);
        if ((l.valid || l.reserved) && l.line_addr == la)
            return w;
    }
    return -1;
}

void
CacheArray::touch(int set, int way)
{
    line(set, way).lru = ++tick_;
}

bool
CacheArray::wayAllowed(KernelId kernel, int way) const
{
    if (!kernel.valid() || kernel.idx() >= restrictions_.size())
        return true;
    const WayRange &r = restrictions_[kernel.idx()];
    if (r.count == 0)
        return true;
    return way >= r.first && way < r.first + r.count;
}

VictimResult
CacheArray::chooseVictim(LineAddr la, KernelId kernel)
{
    const int set = setIndex(la);
    VictimResult res;

    // Prefer an invalid (and allowed) way.
    for (int w = 0; w < assoc_; ++w) {
        const CacheLine &l = line(set, w);
        if (!l.valid && !l.reserved && wayAllowed(kernel, w)) {
            res.ok = true;
            res.way = w;
            return res;
        }
    }

    // Otherwise the LRU valid, non-reserved, allowed way.
    int best = -1;
    std::uint64_t best_lru = 0;
    for (int w = 0; w < assoc_; ++w) {
        const CacheLine &l = line(set, w);
        if (l.reserved || !wayAllowed(kernel, w))
            continue;
        if (best < 0 || l.lru < best_lru) {
            best = w;
            best_lru = l.lru;
        }
    }
    if (best < 0)
        return res; // every candidate is reserved: reservation failure

    const CacheLine &victim = line(set, best);
    res.ok = true;
    res.way = best;
    if (victim.valid && victim.dirty) {
        res.evicted_dirty = true;
        res.evicted_line = victim.line_addr;
    }
    return res;
}

void
CacheArray::reserve(int set, int way, LineAddr la, KernelId kernel)
{
    CacheLine &l = line(set, way);
    l.line_addr = la;
    l.valid = false;
    l.reserved = true;
    l.dirty = false;
    l.owner = kernel;
    l.lru = ++tick_;
}

void
CacheArray::fill(int set, int way, bool dirty)
{
    CacheLine &l = line(set, way);
    SIM_INVARIANT(l.reserved, cacheCtx(l.owner),
                  "fill on a non-reserved line (set " << set << " way "
                                                      << way << ")");
    l.reserved = false;
    l.valid = true;
    l.dirty = dirty;
    l.lru = ++tick_;
}

void
CacheArray::install(int set, int way, LineAddr la, KernelId kernel,
                    bool dirty)
{
    CacheLine &l = line(set, way);
    l.line_addr = la;
    l.valid = true;
    l.reserved = false;
    l.dirty = dirty;
    l.owner = kernel;
    l.lru = ++tick_;
}

void
CacheArray::invalidate(int set, int way)
{
    CacheLine &l = line(set, way);
    l.valid = false;
    l.reserved = false;
    l.dirty = false;
}

void
CacheArray::restrictToWays(KernelId kernel, int first, int count)
{
    SIM_CHECK(kernel.valid(), cacheCtx(kernel),
              "way restriction for invalid kernel");
    SIM_CHECK(first >= 0 && count >= 0 && first + count <= assoc_,
              cacheCtx(kernel),
              "way range [" << first << ", " << first + count
                            << ") exceeds associativity " << assoc_);
    if (kernel.idx() >= restrictions_.size())
        restrictions_.resize(kernel.idx() + 1);
    if (count >= assoc_) {
        restrictions_[kernel.idx()] = WayRange{};
    } else {
        restrictions_[kernel.idx()] = WayRange{first, count};
    }
}

void
CacheArray::clearWayRestrictions()
{
    restrictions_.clear();
}

int
CacheArray::occupancyOf(KernelId kernel) const
{
    int n = 0;
    for (const CacheLine &l : sets_)
        if (l.valid && l.owner == kernel)
            ++n;
    return n;
}

void
CacheArray::snapshot(SnapshotWriter &w) const
{
    w.section("cache_array");
    w.u64(sets_.size());
    for (const CacheLine &l : sets_) {
        w.unit(l.line_addr);
        w.boolean(l.valid);
        w.boolean(l.reserved);
        w.boolean(l.dirty);
        w.id(l.owner);
        w.u64(l.lru);
    }
    w.u64(tick_);
    w.u64(restrictions_.size());
    for (const WayRange &r : restrictions_) {
        w.i64(r.first);
        w.i64(r.count);
    }
}

void
CacheArray::restore(SnapshotReader &r)
{
    r.section("cache_array");
    const std::uint64_t n = r.u64();
    SIM_CHECK(n == sets_.size(), cacheCtx(),
              "snapshot holds " << n << " cache lines, array has "
                                << sets_.size());
    for (CacheLine &l : sets_) {
        l.line_addr = r.unit<LineAddr>();
        l.valid = r.boolean();
        l.reserved = r.boolean();
        l.dirty = r.boolean();
        l.owner = r.id<KernelId>();
        l.lru = r.u64();
    }
    tick_ = r.u64();
    const std::uint64_t nr = r.u64();
    restrictions_.assign(static_cast<std::size_t>(nr), WayRange{});
    for (WayRange &range : restrictions_) {
        range.first = static_cast<int>(r.i64());
        range.count = static_cast<int>(r.i64());
    }
}

} // namespace ckesim
