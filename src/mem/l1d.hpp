/**
 * @file
 * L1 data cache front-end: tag array + MSHRs + miss queue, with the
 * paper's reservation-failure semantics (Section 2.1).
 *
 * Policy (Table 1): xor-indexing, allocate-on-miss, LRU, WEWN
 * (write-evict, write-no-allocate). A read miss must secure a victim
 * line slot, an MSHR (or merge slot) and a miss-queue entry; a write
 * needs a miss-queue entry only. Any shortage is a reservation failure
 * and the access must be retried, stalling the in-order LSU.
 *
 * Hot-path layout (DESIGN.md §14): the miss queue is a fixed-capacity
 * ring buffer and the miss's owning kernel is *derived* from its MSHR
 * entry's first merged target (allocate() always seeds the merge list
 * with the allocating request), so the separate miss-owner hash map —
 * a second lookup per miss — no longer exists.
 */

#ifndef CKESIM_MEM_L1D_HPP
#define CKESIM_MEM_L1D_HPP

#include <vector>

#include "mem/cache.hpp"
#include "mem/mshr.hpp"
#include "mem/request.hpp"
#include "sim/config.hpp"
#include "sim/ringbuf.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Bookkeeping attached to each outstanding L1D read request. */
struct L1Target
{
    WarpSlot warp_slot = kInvalidWarpSlot; ///< SM warp-table slot to notify
    KernelId kernel = kInvalidKernel;
};

/** Outcome of one L1D access attempt. */
struct L1Outcome
{
    enum class Kind {
        Hit,         ///< data returned after hit_latency
        MissToL2,    ///< new MSHR allocated, request queued to L2
        MergedMshr,  ///< merged into an outstanding miss
        WriteQueued, ///< write-through accepted into miss queue
        RsFail,      ///< reservation failure: retry next cycle
    };
    Kind kind = Kind::RsFail;
    RsFailReason fail = RsFailReason::None;

    bool serviced() const { return kind != Kind::RsFail; }
};

/**
 * One SM's L1 data cache. Untimed internally; the owning LSU applies
 * hit latency and retry timing.
 */
class L1Dcache
{
  public:
    L1Dcache(const L1dConfig &cfg, SmId sm_id);

    /**
     * Attempt one coalesced line access.
     * @param line line to access
     * @param kernel issuing kernel (owns allocation, stats)
     * @param write true for a store (WEWN path)
     * @param target wakeup bookkeeping for loads
     * @param now current cycle (stamped on downstream requests)
     */
    L1Outcome access(LineAddr line, KernelId kernel, bool write,
                     const L1Target &target, Cycle now);

    /** Front of the miss queue, if any (does not pop). */
    const MemRequest *peekMissQueue() const
    {
        return miss_queue_.empty() ? nullptr : &miss_queue_.front();
    }

    /** Pop the miss-queue head after a successful downstream inject. */
    void popMissQueue() { miss_queue_.pop_front(); }

    /**
     * A fill returned from L2 for @p line: make the reserved line
     * valid and collect every merged target to wake into @p out
     * (cleared first). Allocation-free on the steady state.
     */
    void fill(LineAddr line, std::vector<L1Target> &out);

    /** Convenience wrapper for tests and cold paths. */
    std::vector<L1Target>
    fill(LineAddr line)
    {
        std::vector<L1Target> out;
        fill(line, out);
        return out;
    }

    /** UCP hook: constrain kernel to a contiguous way range. */
    void restrictKernelWays(KernelId kernel, int first, int count)
    {
        tags_.restrictToWays(kernel, first, count);
    }

    void clearWayRestrictions() { tags_.clearWayRestrictions(); }

    /**
     * Section 4.5 ablation: cap the MSHRs kernel @p kernel may hold
     * (0 = unlimited). The paper argues such partitioning cannot
     * help because the in-order LSU still blocks behind a saturated
     * co-runner's accesses.
     */
    void
    setMshrQuota(KernelId kernel, int quota)
    {
        if (kernel.idx() >= mshr_quota_.size())
            mshr_quota_.resize(kernel.idx() + 1, 0);
        mshr_quota_[kernel.idx()] = quota;
    }

    /**
     * Section 4.5 ablation: bypass the L1D for kernel @p kernel's
     * read misses — they take an MSHR and a miss-queue entry but no
     * cache line slot, and fills are not installed.
     */
    void
    setBypass(KernelId kernel, bool bypass)
    {
        if (kernel.idx() >= bypass_.size())
            bypass_.resize(kernel.idx() + 1, false);
        bypass_[kernel.idx()] = bypass;
    }

    /** MSHRs currently held by @p kernel (quota accounting). */
    int
    mshrsHeldBy(KernelId kernel) const
    {
        return kernel.idx() < mshr_held_.size()
                   ? mshr_held_[kernel.idx()]
                   : 0;
    }

    CacheArray &tags() { return tags_; }
    const CacheArray &tags() const { return tags_; }
    int mshrsInUse() const { return mshrs_.size(); }
    int missQueueSize() const
    {
        return static_cast<int>(miss_queue_.size());
    }

    /**
     * Clockable horizon (sim/clockable.hpp). The L1D has no tick of
     * its own — the LSU drives accesses and the SM drains the miss
     * queue — but a queued miss is same-cycle work for its SM, and
     * MSHRs alone are passive (released by reply-crossbar fills,
     * covered by the memory system's horizon).
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return miss_queue_.empty() ? kNeverCycle : now;
    }

    // ---- integrity layer ------------------------------------------------
    /** Lifetime MSHR allocations (conservation ledger). */
    std::uint64_t mshrAllocated() const
    {
        return mshrs_.totalAllocated();
    }
    /** Lifetime MSHR releases by fills (conservation ledger). */
    std::uint64_t mshrReleased() const
    {
        return mshrs_.totalReleased();
    }

    /**
     * Occupancy-bound and ledger invariants. Cheap enough to run
     * every integrity sweep; throws SimError on violation.
     */
    void checkInvariants(Cycle now) const;

    /** Drained-state check for Gpu::audit(): nothing outstanding. */
    void checkDrained(Cycle now) const;

    /** Serialize tags, MSHRs, miss queue and quota state. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a cache of identical configuration. */
    void restore(SnapshotReader &r);

  private:
    bool bypassed(KernelId kernel) const
    {
        return kernel.idx() < bypass_.size() && bypass_[kernel.idx()];
    }
    bool mshrQuotaExceeded(KernelId kernel) const;

    L1dConfig cfg_; // SNAPSHOT-SKIP(fixed at construction)
    SmId sm_id_;    // SNAPSHOT-SKIP(fixed at construction)
    CacheArray tags_;
    MshrTable<L1Target> mshrs_;
    RingBuf<MemRequest> miss_queue_;
    /** Per-kernel MSHR caps (0 = unlimited) and current holdings. */
    std::vector<int> mshr_quota_;
    std::vector<int> mshr_held_;
    std::vector<bool> bypass_;
};

} // namespace ckesim

#endif // CKESIM_MEM_L1D_HPP
