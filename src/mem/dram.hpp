/**
 * @file
 * Per-channel GDDR model with row-buffer locality and FR-FCFS-like
 * scheduling (Table 1: 16 channels, FR-FCFS, 48B/cycle at 924MHz).
 *
 * Each channel services one transaction at a time. Within a lookahead
 * window, requests hitting the currently open row of their bank are
 * prioritized (first-ready), otherwise first-come-first-served. Service
 * occupancy models data-burst bandwidth; a fixed access latency is
 * added on top for the returning fill.
 */

#ifndef CKESIM_MEM_DRAM_HPP
#define CKESIM_MEM_DRAM_HPP

#include <vector>

#include "mem/request.hpp"
#include "sim/config.hpp"
#include "sim/ringbuf.hpp"
#include "sim/types.hpp"

namespace ckesim {

class SnapshotWriter;
class SnapshotReader;

/** One DRAM channel. */
class DramChannel
{
  public:
    DramChannel(const DramConfig &cfg, int line_bytes);

    /** Try to enqueue a transaction; false when the queue is full. */
    bool tryEnqueue(const MemRequest &req, Cycle now);

    /** Advance to @p now; starts at most one new transaction. */
    void tick(Cycle now);

    /**
     * Pop fills (completed reads) whose data is available at @p now,
     * appending them to @p out. Allocation-free; the memory system
     * calls this every cycle with a reused scratch vector.
     */
    void drainFills(Cycle now, std::vector<MemRequest> &out);

    /** Convenience wrapper for tests and cold paths. */
    std::vector<MemRequest>
    drainFills(Cycle now)
    {
        std::vector<MemRequest> out;
        drainFills(now, out);
        return out;
    }

    int queueLength() const
    {
        return static_cast<int>(queue_.size());
    }
    int freeSlots() const { return cfg_.queue_depth - queueLength(); }
    bool busy(Cycle now) const { return busy_until_ > now; }

    /** No queued transaction and no fill awaiting pickup. */
    bool idle() const { return queue_.empty() && fills_.empty(); }

    /**
     * Clockable horizon (sim/clockable.hpp): a queued transaction
     * starts as soon as the data bus frees (busy_until_); a completed
     * fill surfaces at its ready time (monotone: busy_until_ only
     * grows). An idle channel never acts unaided.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Completed reads awaiting drainFills() pickup. */
    int fillsPending() const
    {
        return static_cast<int>(fills_.size());
    }

    /** Occupancy-bound invariants (integrity sweep). */
    void checkInvariants(Cycle now, int channel_index) const;

    /** Serialize queue, open rows, busy timer and pending fills. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a channel of identical configuration. */
    void restore(SnapshotReader &r);

    /** Row-buffer hit-rate observed so far (diagnostics). */
    double rowHitRate() const
    {
        const std::uint64_t total = row_hits_ + row_misses_;
        return total != 0 ? static_cast<double>(row_hits_) /
                                static_cast<double>(total)
                          : 0.0;
    }

  private:
    struct Txn
    {
        MemRequest req;
        int bank = 0;
        std::uint64_t row = 0;
        Cycle arrival{};
    };
    struct Fill
    {
        Cycle ready{};
        MemRequest req;
    };

    int bankOf(LineAddr line_addr) const;
    std::uint64_t rowOf(LineAddr line_addr) const;

    DramConfig cfg_; // SNAPSHOT-SKIP(fixed at construction)
    int line_bytes_; // SNAPSHOT-SKIP(fixed at construction)
    RingBuf<Txn> queue_; ///< flat hot queue (DESIGN.md §14)
    std::vector<std::uint64_t> open_row_; ///< per bank; ~0 = closed
    Cycle busy_until_{};
    /** Completed reads in the access-latency pipeline. At most one
     *  fill is produced per tick and each is drained within
     *  access_latency + service cycles of creation, so the ring's
     *  capacity (queue_depth + access_latency + service slack) can
     *  never be reached by a consumer that drains every cycle. */
    RingBuf<Fill> fills_;
    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
};

} // namespace ckesim

#endif // CKESIM_MEM_DRAM_HPP
