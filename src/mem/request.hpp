/**
 * @file
 * The memory request/reply descriptor that travels between an SM's L1D
 * and the shared memory subsystem (crossbar, L2, DRAM).
 */

#ifndef CKESIM_MEM_REQUEST_HPP
#define CKESIM_MEM_REQUEST_HPP

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Kind of transaction below the L1. */
enum class ReqKind {
    ReadMiss,  ///< L1D read miss fetch
    WriteThru, ///< L1D write (WEWN: write-evict write-no-allocate)
    Writeback, ///< L2 dirty eviction to DRAM (never replied)
};

/** One line transaction below the L1D. */
struct MemRequest
{
    LineAddr line_addr{};             ///< line address (line-granular)
    SmId sm_id = kInvalidSm;          ///< originating SM (reply routing)
    KernelId kernel = kInvalidKernel;
    ReqKind kind = ReqKind::ReadMiss;
    Cycle birth{};                    ///< cycle the L1D emitted it
};

/** Serialize one request (sim/snapshot checkpoint payloads). */
inline void
snapshotMemRequest(SnapshotWriter &w, const MemRequest &req)
{
    w.unit(req.line_addr);
    w.id(req.sm_id);
    w.id(req.kernel);
    w.u8(static_cast<std::uint8_t>(req.kind));
    w.unit(req.birth);
}

/** Inverse of snapshotMemRequest(). */
inline MemRequest
restoreMemRequest(SnapshotReader &r)
{
    MemRequest req;
    req.line_addr = r.unit<LineAddr>();
    req.sm_id = r.id<SmId>();
    req.kernel = r.id<KernelId>();
    req.kind = static_cast<ReqKind>(r.u8());
    req.birth = r.unit<Cycle>();
    return req;
}

} // namespace ckesim

#endif // CKESIM_MEM_REQUEST_HPP
