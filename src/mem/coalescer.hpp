/**
 * @file
 * Intra-warp memory access coalescer.
 *
 * Global/local accesses of a warp's 32 threads are merged into as few
 * line-sized transactions as possible (Section 2.1). The number of
 * transactions a warp memory instruction produces is the paper's
 * `Req/Minst` — the quantity QBMI quotas are built from.
 */

#ifndef CKESIM_MEM_COALESCER_HPP
#define CKESIM_MEM_COALESCER_HPP

#include <vector>

#include "sim/types.hpp"

namespace ckesim {

/**
 * Coalesce per-thread byte addresses into unique line addresses,
 * preserving first-touch order (the order requests enter the LSU).
 * Together with mem/address.hpp this is the only byte->line boundary
 * in the simulator.
 *
 * @param thread_addrs byte address per active thread
 * @param line_bytes cache line size
 * @param out cleared and filled with unique line addresses
 */
void coalesce(const std::vector<Addr> &thread_addrs, int line_bytes,
              std::vector<LineAddr> &out);

} // namespace ckesim

#endif // CKESIM_MEM_COALESCER_HPP
