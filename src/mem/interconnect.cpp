#include "mem/interconnect.hpp"

#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

Crossbar::Crossbar(int num_dests, const IcntConfig &cfg)
    : cfg_(cfg), ports_(static_cast<std::size_t>(num_dests))
{
    for (Port &port : ports_)
        port.queue.reset(cfg.input_queue_depth);
}

bool
Crossbar::tryInject(int dest, int flits, const MemRequest &req, Cycle now)
{
    Port &port = ports_[static_cast<std::size_t>(dest)];
    if (static_cast<int>(port.queue.size()) >= cfg_.input_queue_depth)
        return false;

    const Cycle start =
        std::max<Cycle>(port.next_free, now + cfg_.latency);
    const Cycle ready = start + flits;
    port.next_free = ready;
    port.queue.push_back(Packet{ready, req});
    return true;
}

void
Crossbar::drain(int dest, Cycle now, int max_count,
                std::vector<MemRequest> &out)
{
    Port &port = ports_[static_cast<std::size_t>(dest)];
    int popped = 0;
    while (!port.queue.empty() && popped < max_count &&
           port.queue.front().ready <= now) {
        out.push_back(port.queue.front().req);
        port.queue.pop_front();
        ++popped;
    }
}

Cycle
Crossbar::nextEventCycle(Cycle now) const
{
    Cycle horizon = kNeverCycle;
    for (const Port &port : ports_) {
        if (port.queue.empty())
            continue;
        horizon = earliestEvent(
            horizon, clampHorizon(port.queue.front().ready, now));
    }
    return horizon;
}

void
Crossbar::snapshot(SnapshotWriter &w) const
{
    w.section("crossbar");
    w.u64(ports_.size());
    for (const Port &port : ports_) {
        w.unit(port.next_free);
        port.queue.snapshot(w, [](SnapshotWriter &sw,
                                  const Packet &p) {
            sw.unit(p.ready);
            snapshotMemRequest(sw, p.req);
        });
    }
}

void
Crossbar::restore(SnapshotReader &r)
{
    r.section("crossbar");
    const std::uint64_t n = r.u64();
    SimCtx ctx;
    ctx.module = "icnt";
    SIM_CHECK(n == ports_.size(), ctx,
              "snapshot holds " << n << " crossbar ports, model has "
                                << ports_.size());
    for (Port &port : ports_) {
        port.next_free = r.unit<Cycle>();
        port.queue.restore(r, [](SnapshotReader &sr) {
            Packet p;
            p.ready = sr.unit<Cycle>();
            p.req = restoreMemRequest(sr);
            return p;
        });
    }
}

} // namespace ckesim
