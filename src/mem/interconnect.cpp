#include "mem/interconnect.hpp"

namespace ckesim {

Crossbar::Crossbar(int num_dests, const IcntConfig &cfg)
    : cfg_(cfg), ports_(static_cast<std::size_t>(num_dests))
{
}

bool
Crossbar::tryInject(int dest, int flits, const MemRequest &req, Cycle now)
{
    Port &port = ports_[static_cast<std::size_t>(dest)];
    if (static_cast<int>(port.queue.size()) >= cfg_.input_queue_depth)
        return false;

    const Cycle start =
        std::max<Cycle>(port.next_free, now + cfg_.latency);
    const Cycle ready = start + flits;
    port.next_free = ready;
    port.queue.push_back(Packet{ready, req});
    return true;
}

std::vector<MemRequest>
Crossbar::drain(int dest, Cycle now, int max_count)
{
    Port &port = ports_[static_cast<std::size_t>(dest)];
    std::vector<MemRequest> out;
    while (!port.queue.empty() &&
           static_cast<int>(out.size()) < max_count &&
           port.queue.front().ready <= now) {
        out.push_back(port.queue.front().req);
        port.queue.pop_front();
    }
    return out;
}

} // namespace ckesim
