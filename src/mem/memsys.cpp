#include "mem/memsys.hpp"

namespace ckesim {

namespace {
/** Flit counts. Requests (reads and 64B sector writes) occupy one
 *  forward flit; read replies occupy two reply flits (64B/cycle/SM
 *  return bandwidth). Sized so that neither crossbar direction is
 *  the global bandwidth limiter — in the paper's configuration the
 *  contended resources are the cache-miss resources and DRAM. */
constexpr int kReadReqFlits = 1;
constexpr int kWriteReqFlits = 1;
constexpr int kReplyFlits = 2;
} // namespace

MemorySystem::MemorySystem(const GpuConfig &cfg)
    : cfg_(cfg),
      fwd_(cfg.numL2Partitions(), cfg.icnt),
      reply_(cfg.num_sms, cfg.icnt),
      reply_retry_(static_cast<std::size_t>(cfg.numL2Partitions()))
{
    partitions_.reserve(static_cast<std::size_t>(cfg.numL2Partitions()));
    channels_.reserve(static_cast<std::size_t>(cfg.numL2Partitions()));
    for (int p = 0; p < cfg.numL2Partitions(); ++p) {
        partitions_.push_back(std::make_unique<L2Partition>(cfg.l2, p));
        channels_.push_back(
            std::make_unique<DramChannel>(cfg.dram, cfg.l2.line_bytes));
    }
}

bool
MemorySystem::injectFromSm(const MemRequest &req, Cycle now)
{
    const int dest = linePartition(req.line_addr, numPartitions());
    const int flits =
        req.kind == ReqKind::WriteThru ? kWriteReqFlits : kReadReqFlits;
    return fwd_.tryInject(dest, flits, req, now);
}

void
MemorySystem::tick(Cycle now)
{
    for (int p = 0; p < numPartitions(); ++p) {
        L2Partition &part = *partitions_[static_cast<std::size_t>(p)];
        DramChannel &chan = *channels_[static_cast<std::size_t>(p)];

        // Crossbar -> partition input queue, as room allows.
        const int room = part.inputRoom();
        if (room > 0) {
            for (const MemRequest &req : fwd_.drain(p, now, room))
                part.acceptInput(req);
        }

        part.tick(now, chan);
        chan.tick(now);

        for (const MemRequest &fill : chan.drainFills(now))
            part.onDramFill(fill, now);

        // Partition replies -> reply crossbar, retrying refused ones.
        std::deque<MemRequest> &retry =
            reply_retry_[static_cast<std::size_t>(p)];
        for (const MemRequest &r : part.drainReplies(now))
            retry.push_back(r);
        while (!retry.empty()) {
            const MemRequest &r = retry.front();
            if (!reply_.tryInject(r.sm_id, kReplyFlits, r, now))
                break;
            retry.pop_front();
        }
    }
}

std::vector<MemRequest>
MemorySystem::drainRepliesForSm(int sm_id, Cycle now)
{
    return reply_.drain(sm_id, now, /*max_count=*/64);
}

double
MemorySystem::l2MissRate() const
{
    std::uint64_t acc = 0;
    std::uint64_t miss = 0;
    for (const auto &p : partitions_) {
        acc += p->accesses();
        miss += p->misses();
    }
    return acc ? static_cast<double>(miss) / static_cast<double>(acc)
               : 0.0;
}

bool
MemorySystem::quiescent() const
{
    for (int p = 0; p < numPartitions(); ++p) {
        if (fwd_.queueLength(p) > 0)
            return false;
        if (!partitions_[static_cast<std::size_t>(p)]->idle())
            return false;
        if (!channels_[static_cast<std::size_t>(p)]->idle())
            return false;
        if (!reply_retry_[static_cast<std::size_t>(p)].empty())
            return false;
    }
    for (int s = 0; s < cfg_.num_sms; ++s)
        if (reply_.queueLength(s) > 0)
            return false;
    return true;
}

} // namespace ckesim
