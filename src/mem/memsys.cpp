#include "mem/memsys.hpp"

#include <sstream>

#include "sim/check.hpp"
#include "sim/clockable.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
/** Flit counts. Requests (reads and 64B sector writes) occupy one
 *  forward flit; read replies occupy two reply flits (64B/cycle/SM
 *  return bandwidth). Sized so that neither crossbar direction is
 *  the global bandwidth limiter — in the paper's configuration the
 *  contended resources are the cache-miss resources and DRAM. */
constexpr int kReadReqFlits = 1;
constexpr int kWriteReqFlits = 1;
constexpr int kReplyFlits = 2;

SimCtx
memCtx(Cycle now = kNeverCycle)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.module = "memsys";
    return ctx;
}
} // namespace

MemorySystem::MemorySystem(const GpuConfig &cfg)
    : cfg_(cfg),
      fwd_(cfg.numL2Partitions(), cfg.icnt),
      reply_(cfg.num_sms, cfg.icnt),
      reply_retry_(static_cast<std::size_t>(cfg.numL2Partitions())),
      delayed_(static_cast<std::size_t>(cfg.num_sms))
{
    for (RingBuf<MemRequest> &retry : reply_retry_)
        retry.reset(cfg.l2.num_mshrs * 16 + cfg.l2.latency +
                    cfg.l2.miss_queue_depth + 8);
    partitions_.reserve(static_cast<std::size_t>(cfg.numL2Partitions()));
    channels_.reserve(static_cast<std::size_t>(cfg.numL2Partitions()));
    for (int p = 0; p < cfg.numL2Partitions(); ++p) {
        partitions_.push_back(std::make_unique<L2Partition>(cfg.l2, p));
        channels_.push_back(
            std::make_unique<DramChannel>(cfg.dram, cfg.l2.line_bytes));
    }
}

bool
MemorySystem::injectFromSm(const MemRequest &req, Cycle now)
{
    const int dest = linePartition(req.line_addr, numPartitions());
    if (faults_ && faults_->stallCrossbarPort(dest, now))
        return false;
    const int flits =
        req.kind == ReqKind::WriteThru ? kWriteReqFlits : kReadReqFlits;
    if (!fwd_.tryInject(dest, flits, req, now))
        return false;
    if (req.kind == ReqKind::ReadMiss) {
        ++injected_reads_;
        ++inflight_;
    } else {
        ++injected_writes_;
    }
    return true;
}

void
MemorySystem::tick(Cycle now)
{
    for (int p = 0; p < numPartitions(); ++p) {
        L2Partition &part = *partitions_[static_cast<std::size_t>(p)];
        DramChannel &chan = *channels_[static_cast<std::size_t>(p)];

        // Crossbar -> partition input queue, as room allows.
        const int room = part.inputRoom();
        if (room > 0) {
            ProfScope prof_noc(prof_, ProfComp::Noc);
            tick_scratch_.clear();
            fwd_.drain(p, now, room, tick_scratch_);
            for (const MemRequest &req : tick_scratch_)
                part.acceptInput(req);
        }

        const bool frozen = faults_ && faults_->dramFrozen(p, now);
        {
            ProfScope prof_l2(prof_, ProfComp::L2);
            part.tick(now, chan);
        }
        {
            ProfScope prof_dram(prof_, ProfComp::Dram);
            if (!frozen)
                chan.tick(now);
            tick_scratch_.clear();
            chan.drainFills(now, tick_scratch_);
        }
        if (!tick_scratch_.empty()) {
            ProfScope prof_l2(prof_, ProfComp::L2);
            for (const MemRequest &fill : tick_scratch_)
                part.onDramFill(fill, now);
        }

        // Partition replies -> reply crossbar, retrying refused ones.
        ProfScope prof_noc(prof_, ProfComp::Noc);
        RingBuf<MemRequest> &retry =
            reply_retry_[static_cast<std::size_t>(p)];
        tick_scratch_.clear();
        part.drainReplies(now, tick_scratch_);
        for (const MemRequest &r : tick_scratch_)
            retry.push_back(r);
        while (!retry.empty()) {
            const MemRequest &r = retry.front();
            if (!reply_.tryInject(static_cast<int>(r.sm_id.idx()),
                                  kReplyFlits, r, now))
                break;
            retry.pop_front();
        }
    }
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    Cycle horizon =
        earliestEvent(fwd_.nextEventCycle(now),
                      reply_.nextEventCycle(now));
    for (int p = 0; p < numPartitions(); ++p) {
        horizon = earliestEvent(
            horizon,
            partitions_[static_cast<std::size_t>(p)]
                ->nextEventCycle(now));
        horizon = earliestEvent(
            horizon,
            channels_[static_cast<std::size_t>(p)]
                ->nextEventCycle(now));
        // A refused reply retries the crossbar every cycle.
        if (!reply_retry_[static_cast<std::size_t>(p)].empty())
            return now;
    }
    // Fault-delayed fills release in drainRepliesForSm on their own
    // (not necessarily sorted) schedule; faulted runs fall back to
    // strict stepping anyway, so `now` is the honest answer.
    // HOTPATH-ALLOW(fault-injection only; untouched on fault-free runs)
    for (const std::deque<DelayedFill> &held : delayed_)
        if (!held.empty())
            return now;
    return horizon;
}

void
MemorySystem::drainRepliesForSm(SmId sm_id, Cycle now,
                                std::vector<MemRequest> &out)
{
    out.clear();
    reply_.drain(static_cast<int>(sm_id.idx()), now,
                 /*max_count=*/64, out);

    if (faults_ && !faults_->empty()) {
        // Filter in place: compact surviving fills to the front.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < out.size(); ++i) {
            const MemRequest &r = out[i];
            if (faults_->dropFill(sm_id, now)) {
                // The read leaves the system without a delivery: the
                // L1 MSHR is never released — a hard fault the
                // watchdog (or audit) must report, not mask.
                ++dropped_fills_;
                SIM_INVARIANT(inflight_ > 0, memCtx(now),
                              "dropped a fill for sm "
                                  << sm_id
                                  << " with no read in flight");
                --inflight_;
                continue;
            }
            const Cycle delay = faults_->fillDelay(sm_id, now);
            if (delay > Cycle{}) {
                delayed_[sm_id.idx()].push_back(
                    DelayedFill{now + delay, r});
                continue;
            }
            out[kept++] = r;
        }
        out.resize(kept);
    }

    // HOTPATH-ALLOW(fault-injection only; untouched on fault-free runs)
    std::deque<DelayedFill> &held = delayed_[sm_id.idx()];
    while (!held.empty() && held.front().ready <= now) {
        out.push_back(held.front().req);
        held.pop_front();
    }

    const std::uint64_t n = static_cast<std::uint64_t>(out.size());
    delivered_fills_ += n;
    SIM_INVARIANT(inflight_ >= n, memCtx(now),
                  "delivered " << n << " fill(s) to sm " << sm_id
                               << " with only " << inflight_
                               << " read(s) in flight");
    inflight_ -= n;
}

double
MemorySystem::l2MissRate() const
{
    std::uint64_t acc = 0;
    std::uint64_t miss = 0;
    for (const auto &p : partitions_) {
        acc += p->accesses();
        miss += p->misses();
    }
    return acc ? static_cast<double>(miss) / static_cast<double>(acc)
               : 0.0;
}

bool
MemorySystem::quiescent() const
{
    for (int p = 0; p < numPartitions(); ++p) {
        if (fwd_.queueLength(p) > 0)
            return false;
        if (!partitions_[static_cast<std::size_t>(p)]->idle())
            return false;
        if (!channels_[static_cast<std::size_t>(p)]->idle())
            return false;
        if (!reply_retry_[static_cast<std::size_t>(p)].empty())
            return false;
    }
    for (int s = 0; s < cfg_.num_sms; ++s) {
        if (reply_.queueLength(s) > 0)
            return false;
        if (!delayed_[static_cast<std::size_t>(s)].empty())
            return false;
    }
    return true;
}

void
MemorySystem::checkInvariants(Cycle now) const
{
    const SimCtx ctx = memCtx(now);
    for (int p = 0; p < numPartitions(); ++p) {
        partitions_[static_cast<std::size_t>(p)]->checkInvariants(now);
        channels_[static_cast<std::size_t>(p)]->checkInvariants(now, p);
        SIM_INVARIANT(fwd_.queueLength(p) <=
                          cfg_.icnt.input_queue_depth,
                      ctx,
                      "forward crossbar port " << p << " occupancy "
                          << fwd_.queueLength(p) << " exceeds depth "
                          << cfg_.icnt.input_queue_depth);
    }
    for (int s = 0; s < cfg_.num_sms; ++s) {
        SIM_INVARIANT(reply_.queueLength(s) <=
                          cfg_.icnt.input_queue_depth,
                      ctx,
                      "reply crossbar port " << s << " occupancy "
                          << reply_.queueLength(s) << " exceeds depth "
                          << cfg_.icnt.input_queue_depth);
    }
    SIM_INVARIANT(delivered_fills_ + dropped_fills_ + inflight_ ==
                      injected_reads_,
                  ctx,
                  "read ledger imbalance: injected="
                      << injected_reads_ << " delivered="
                      << delivered_fills_ << " dropped="
                      << dropped_fills_ << " inflight=" << inflight_);
}

void
MemorySystem::checkDrained(Cycle now) const
{
    const SimCtx ctx = memCtx(now);
    SIM_INVARIANT(quiescent(), ctx,
                  "audit: memory system not quiescent after drain\n"
                      << describeState());
    SIM_INVARIANT(inflight_ == 0, ctx,
                  "audit: " << inflight_
                            << " injected read(s) never produced a "
                               "fill (ledger: injected="
                            << injected_reads_ << " delivered="
                            << delivered_fills_ << " dropped="
                            << dropped_fills_ << ")");
}

void
MemorySystem::snapshot(SnapshotWriter &w) const
{
    w.section("memsys");
    fwd_.snapshot(w);
    reply_.snapshot(w);
    for (const auto &part : partitions_)
        part->snapshot(w);
    for (const auto &chan : channels_)
        chan->snapshot(w);
    w.u64(reply_retry_.size());
    for (const RingBuf<MemRequest> &retry : reply_retry_) {
        retry.snapshot(w, [](SnapshotWriter &sw,
                             const MemRequest &req) {
            snapshotMemRequest(sw, req);
        });
    }
    w.u64(delayed_.size());
    // HOTPATH-ALLOW(snapshot serialization, not a per-cycle walk)
    for (const std::deque<DelayedFill> &held : delayed_) {
        w.u64(held.size());
        for (const DelayedFill &f : held) {
            w.unit(f.ready);
            snapshotMemRequest(w, f.req);
        }
    }
    w.u64(inflight_);
    w.u64(injected_reads_);
    w.u64(injected_writes_);
    w.u64(delivered_fills_);
    w.u64(dropped_fills_);
}

void
MemorySystem::restore(SnapshotReader &r)
{
    r.section("memsys");
    fwd_.restore(r);
    reply_.restore(r);
    for (const auto &part : partitions_)
        part->restore(r);
    for (const auto &chan : channels_)
        chan->restore(r);
    const SimCtx ctx = memCtx();
    const std::uint64_t nretry = r.u64();
    SIM_CHECK(nretry == reply_retry_.size(), ctx,
              "snapshot holds " << nretry
                                << " reply-retry queues, model has "
                                << reply_retry_.size());
    for (RingBuf<MemRequest> &retry : reply_retry_) {
        retry.restore(r, [](SnapshotReader &sr) {
            return restoreMemRequest(sr);
        });
    }
    const std::uint64_t ndelayed = r.u64();
    SIM_CHECK(ndelayed == delayed_.size(), ctx,
              "snapshot holds " << ndelayed
                                << " delayed-fill queues, model has "
                                << delayed_.size());
    // HOTPATH-ALLOW(snapshot restore, not a per-cycle walk)
    for (std::deque<DelayedFill> &held : delayed_) {
        held.clear();
        const std::uint64_t m = r.u64();
        for (std::uint64_t i = 0; i < m; ++i) {
            DelayedFill f;
            f.ready = r.unit<Cycle>();
            f.req = restoreMemRequest(r);
            held.push_back(std::move(f));
        }
    }
    inflight_ = r.u64();
    injected_reads_ = r.u64();
    injected_writes_ = r.u64();
    delivered_fills_ = r.u64();
    dropped_fills_ = r.u64();
}

std::string
MemorySystem::describeState() const
{
    std::ostringstream os;
    os << "memsys: inflight_reads=" << inflight_
       << " injected=" << injected_reads_
       << " delivered=" << delivered_fills_
       << " dropped=" << dropped_fills_ << "\n";
    for (int p = 0; p < numPartitions(); ++p) {
        const L2Partition &part =
            *partitions_[static_cast<std::size_t>(p)];
        const DramChannel &chan =
            *channels_[static_cast<std::size_t>(p)];
        if (fwd_.queueLength(p) == 0 && part.idle() && chan.idle() &&
            reply_retry_[static_cast<std::size_t>(p)].empty())
            continue;
        os << "  part " << p << ": xbar_in=" << fwd_.queueLength(p)
           << " l2_in=" << part.inputSize()
           << " l2_mshr=" << part.mshrsInUse()
           << " l2_replies=" << part.repliesPending()
           << " dram_q=" << chan.queueLength()
           << " dram_fills=" << chan.fillsPending() << " reply_retry="
           << reply_retry_[static_cast<std::size_t>(p)].size()
           << "\n";
    }
    for (int s = 0; s < cfg_.num_sms; ++s) {
        const auto held = delayed_[static_cast<std::size_t>(s)].size();
        if (reply_.queueLength(s) == 0 && held == 0)
            continue;
        os << "  sm " << s << ": reply_q=" << reply_.queueLength(s)
           << " delayed_fills=" << held << "\n";
    }
    return os.str();
}

} // namespace ckesim
