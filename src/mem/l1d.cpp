#include "mem/l1d.hpp"

#include <algorithm>
#include <numeric>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {
SimCtx
l1dCtx(SmId sm_id, Cycle now = kNeverCycle)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.sm_id = sm_id;
    ctx.module = "l1d";
    return ctx;
}
} // namespace

L1Dcache::L1Dcache(const L1dConfig &cfg, SmId sm_id)
    : cfg_(cfg), sm_id_(sm_id), tags_(cfg.numSets(), cfg.assoc),
      mshrs_(cfg.num_mshrs, cfg.mshr_merge),
      miss_queue_(cfg.miss_queue_depth)
{
    mshrs_.setCheckContext(l1dCtx(sm_id));
}

bool
L1Dcache::mshrQuotaExceeded(KernelId kernel) const
{
    if (kernel.idx() >= mshr_quota_.size())
        return false;
    const int quota = mshr_quota_[kernel.idx()];
    return quota > 0 && mshrsHeldBy(kernel) >= quota;
}

L1Outcome
L1Dcache::access(LineAddr line_number, KernelId kernel, bool write,
                 const L1Target &target, Cycle now)
{
    L1Outcome out;

    if (write) {
        // WEWN: write-evict (drop any cached copy), write-no-allocate
        // (forward the write through the miss queue, no MSHR, no line).
        if (static_cast<int>(miss_queue_.size()) >=
            cfg_.miss_queue_depth) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::MissQueue;
            return out;
        }
        const int way = tags_.probe(line_number);
        if (way >= 0 && tags_.line(tags_.setIndex(line_number),
                                   way).valid) {
            tags_.invalidate(tags_.setIndex(line_number), way);
        }
        MemRequest req;
        req.line_addr = line_number;
        req.sm_id = sm_id_;
        req.kernel = kernel;
        req.kind = ReqKind::WriteThru;
        req.birth = now;
        miss_queue_.push_back(req);
        out.kind = L1Outcome::Kind::WriteQueued;
        return out;
    }

    // Read path.
    const int way = tags_.probe(line_number);
    if (way >= 0) {
        const int set = tags_.setIndex(line_number);
        CacheLine &l = tags_.line(set, way);
        if (l.valid) {
            tags_.touch(set, way);
            out.kind = L1Outcome::Kind::Hit;
            return out;
        }
        // Line reserved: an identical miss is outstanding; merge.
        // One probe resolves pending + merge-room + append.
        switch (mshrs_.tryMerge(line_number, target)) {
          case MshrTable<L1Target>::MergeResult::Merged:
            out.kind = L1Outcome::Kind::MergedMshr;
            return out;
          case MshrTable<L1Target>::MergeResult::Full:
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::Mshr;
            return out;
          case MshrTable<L1Target>::MergeResult::NoEntry:
            SIM_CHECK(false, l1dCtx(sm_id_, now),
                      "reserved line " << line_number
                                       << " with no outstanding miss");
            return out;
        }
    }

    // Bypassed misses hold no cache line, so an outstanding miss may
    // exist without a reserved line: merge into it.
    switch (mshrs_.tryMerge(line_number, target)) {
      case MshrTable<L1Target>::MergeResult::Merged:
        out.kind = L1Outcome::Kind::MergedMshr;
        return out;
      case MshrTable<L1Target>::MergeResult::Full:
        out.kind = L1Outcome::Kind::RsFail;
        out.fail = RsFailReason::Mshr;
        return out;
      case MshrTable<L1Target>::MergeResult::NoEntry:
        break; // brand-new miss
    }

    // Brand-new miss: need MSHR + victim line + miss-queue entry
    // (bypassed kernels skip the line slot).
    if (!mshrs_.hasFree() || mshrQuotaExceeded(kernel)) {
        out.kind = L1Outcome::Kind::RsFail;
        out.fail = RsFailReason::Mshr;
        return out;
    }
    if (static_cast<int>(miss_queue_.size()) >= cfg_.miss_queue_depth) {
        out.kind = L1Outcome::Kind::RsFail;
        out.fail = RsFailReason::MissQueue;
        return out;
    }
    if (!bypassed(kernel)) {
        VictimResult victim =
            tags_.chooseVictim(line_number, kernel);
        if (!victim.ok) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::Line;
            return out;
        }
        // WEWN lines are never dirty, so no writeback on eviction.
        tags_.reserve(tags_.setIndex(line_number), victim.way,
                      line_number, kernel);
    }
    // The allocating request seeds the merge list, so the entry's
    // first target IS the miss's owning kernel — no owner map.
    SIM_CHECK(target.kernel == kernel, l1dCtx(sm_id_, now),
              "miss target kernel " << target.kernel
                                    << " disagrees with issuing kernel "
                                    << kernel);
    mshrs_.allocate(line_number, target);
    if (kernel.idx() >= mshr_held_.size())
        mshr_held_.resize(kernel.idx() + 1, 0);
    ++mshr_held_[kernel.idx()];

    MemRequest req;
    req.line_addr = line_number;
    req.sm_id = sm_id_;
    req.kernel = kernel;
    req.kind = ReqKind::ReadMiss;
    req.birth = now;
    miss_queue_.push_back(req);

    out.kind = L1Outcome::Kind::MissToL2;
    return out;
}

void
L1Dcache::fill(LineAddr line_number, std::vector<L1Target> &out)
{
    const int way = tags_.probe(line_number);
    if (way >= 0) {
        const int set = tags_.setIndex(line_number);
        if (tags_.line(set, way).reserved)
            tags_.fill(set, way);
    }
    // Bypassed misses have no reserved line: nothing is installed.
    // The owner is the allocating request's kernel (first target).
    const KernelId owner = mshrs_.firstTarget(line_number).kernel;
    SIM_INVARIANT(owner.idx() < mshr_held_.size(),
                  l1dCtx(sm_id_),
                  "fill of line " << line_number
                                  << " owned by untracked kernel "
                                  << owner);
    int &held = mshr_held_[owner.idx()];
    SIM_INVARIANT(held > 0, l1dCtx(sm_id_),
                  "MSHR holdings for kernel "
                      << owner << " underflow on fill of line "
                      << line_number);
    --held;
    mshrs_.releaseInto(line_number, out);
}

void
L1Dcache::checkInvariants(Cycle now) const
{
    const SimCtx ctx = l1dCtx(sm_id_, now);
    mshrs_.checkBalance(ctx);
    SIM_INVARIANT(missQueueSize() <= cfg_.miss_queue_depth, ctx,
                  "miss queue occupancy " << missQueueSize()
                                          << " exceeds depth "
                                          << cfg_.miss_queue_depth);
    const int held_total =
        std::accumulate(mshr_held_.begin(), mshr_held_.end(), 0);
    SIM_INVARIANT(held_total == mshrs_.size(), ctx,
                  "per-kernel MSHR holdings sum "
                      << held_total << " != MSHRs in use "
                      << mshrs_.size());
}

void
L1Dcache::snapshot(SnapshotWriter &w) const
{
    w.section("l1d");
    tags_.snapshot(w);
    mshrs_.snapshot(w, [](SnapshotWriter &sw, const L1Target &t) {
        sw.id(t.warp_slot);
        sw.id(t.kernel);
    });
    miss_queue_.snapshot(w, [](SnapshotWriter &sw,
                               const MemRequest &req) {
        snapshotMemRequest(sw, req);
    });
    w.u64(mshr_quota_.size());
    for (int q : mshr_quota_)
        w.i64(q);
    w.u64(mshr_held_.size());
    for (int h : mshr_held_)
        w.i64(h);
    // Per-miss owners, derived from the MSHR entries' first targets,
    // in sorted line order — byte-identical to the owner map the
    // pre-§14 format serialized here.
    std::vector<std::pair<LineAddr, KernelId>> owners;
    owners.reserve(static_cast<std::size_t>(mshrs_.size()));
    mshrs_.forEach([&owners](LineAddr line,
                             const std::vector<L1Target> &targets) {
        owners.emplace_back(line, targets.front().kernel);
    });
    std::sort(owners.begin(), owners.end());
    w.u64(owners.size());
    for (const auto &[line_number, owner] : owners) {
        w.unit(line_number);
        w.id(owner);
    }
    w.vecBool(bypass_);
}

void
L1Dcache::restore(SnapshotReader &r)
{
    r.section("l1d");
    tags_.restore(r);
    mshrs_.restore(r, [](SnapshotReader &sr) {
        L1Target t;
        t.warp_slot = sr.id<WarpSlot>();
        t.kernel = sr.id<KernelId>();
        return t;
    });
    miss_queue_.restore(
        r, [](SnapshotReader &sr) { return restoreMemRequest(sr); });
    const std::uint64_t nquota = r.u64();
    mshr_quota_.assign(static_cast<std::size_t>(nquota), 0);
    for (int &q : mshr_quota_)
        q = static_cast<int>(r.i64());
    const std::uint64_t nheld = r.u64();
    mshr_held_.assign(static_cast<std::size_t>(nheld), 0);
    for (int &h : mshr_held_)
        h = static_cast<int>(r.i64());
    // Owners are derived state now; read the pairs the format still
    // carries and verify them against the restored MSHR entries.
    const SimCtx ctx = l1dCtx(sm_id_);
    const std::uint64_t nowner = r.u64();
    SIM_CHECK(nowner == static_cast<std::uint64_t>(mshrs_.size()), ctx,
              "snapshot holds " << nowner
                                << " miss owners, MSHR table has "
                                << mshrs_.size());
    for (std::uint64_t i = 0; i < nowner; ++i) {
        const LineAddr line_number = r.unit<LineAddr>();
        const KernelId kernel = r.id<KernelId>();
        SIM_CHECK(mshrs_.firstTarget(line_number).kernel == kernel,
                  ctx,
                  "snapshot miss owner for line "
                      << line_number << " (" << kernel
                      << ") disagrees with MSHR first target");
    }
    bypass_ = r.vecBool();
}

void
L1Dcache::checkDrained(Cycle now) const
{
    const SimCtx ctx = l1dCtx(sm_id_, now);
    SIM_INVARIANT(mshrs_.empty(), ctx,
                  "audit: " << mshrs_.size()
                            << " MSHR(s) never filled (ledger: "
                            << mshrs_.totalAllocated()
                            << " allocated, "
                            << mshrs_.totalReleased()
                            << " released)");
    SIM_INVARIANT(missQueueSize() == 0, ctx,
                  "audit: " << missQueueSize()
                            << " miss-queue entr(ies) never "
                               "injected downstream");
}

} // namespace ckesim
