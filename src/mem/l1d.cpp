#include "mem/l1d.hpp"

#include <numeric>

#include "sim/check.hpp"

namespace ckesim {

namespace {
SimCtx
l1dCtx(SmId sm_id, Cycle now = kNeverCycle)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.sm_id = sm_id;
    ctx.module = "l1d";
    return ctx;
}
} // namespace

L1Dcache::L1Dcache(const L1dConfig &cfg, SmId sm_id)
    : cfg_(cfg), sm_id_(sm_id), tags_(cfg.numSets(), cfg.assoc),
      mshrs_(cfg.num_mshrs, cfg.mshr_merge)
{
    mshrs_.setCheckContext(l1dCtx(sm_id));
}

bool
L1Dcache::mshrQuotaExceeded(KernelId kernel) const
{
    if (kernel.idx() >= mshr_quota_.size())
        return false;
    const int quota = mshr_quota_[kernel.idx()];
    return quota > 0 && mshrsHeldBy(kernel) >= quota;
}

L1Outcome
L1Dcache::access(LineAddr line_number, KernelId kernel, bool write,
                 const L1Target &target, Cycle now)
{
    L1Outcome out;

    if (write) {
        // WEWN: write-evict (drop any cached copy), write-no-allocate
        // (forward the write through the miss queue, no MSHR, no line).
        if (static_cast<int>(miss_queue_.size()) >=
            cfg_.miss_queue_depth) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::MissQueue;
            return out;
        }
        const int way = tags_.probe(line_number);
        if (way >= 0 && tags_.line(tags_.setIndex(line_number),
                                   way).valid) {
            tags_.invalidate(tags_.setIndex(line_number), way);
        }
        MemRequest req;
        req.line_addr = line_number;
        req.sm_id = sm_id_;
        req.kernel = kernel;
        req.kind = ReqKind::WriteThru;
        req.birth = now;
        miss_queue_.push_back(req);
        out.kind = L1Outcome::Kind::WriteQueued;
        return out;
    }

    // Read path.
    const int way = tags_.probe(line_number);
    if (way >= 0) {
        const int set = tags_.setIndex(line_number);
        CacheLine &l = tags_.line(set, way);
        if (l.valid) {
            tags_.touch(set, way);
            out.kind = L1Outcome::Kind::Hit;
            return out;
        }
        // Line reserved: an identical miss is outstanding; merge.
        if (!mshrs_.canMerge(line_number)) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::Mshr;
            return out;
        }
        mshrs_.merge(line_number, target);
        out.kind = L1Outcome::Kind::MergedMshr;
        return out;
    }

    // Bypassed misses hold no cache line, so an outstanding miss may
    // exist without a reserved line: merge into it.
    if (mshrs_.pending(line_number)) {
        if (!mshrs_.canMerge(line_number)) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::Mshr;
            return out;
        }
        mshrs_.merge(line_number, target);
        out.kind = L1Outcome::Kind::MergedMshr;
        return out;
    }

    // Brand-new miss: need MSHR + victim line + miss-queue entry
    // (bypassed kernels skip the line slot).
    if (!mshrs_.hasFree() || mshrQuotaExceeded(kernel)) {
        out.kind = L1Outcome::Kind::RsFail;
        out.fail = RsFailReason::Mshr;
        return out;
    }
    if (static_cast<int>(miss_queue_.size()) >= cfg_.miss_queue_depth) {
        out.kind = L1Outcome::Kind::RsFail;
        out.fail = RsFailReason::MissQueue;
        return out;
    }
    if (!bypassed(kernel)) {
        VictimResult victim =
            tags_.chooseVictim(line_number, kernel);
        if (!victim.ok) {
            out.kind = L1Outcome::Kind::RsFail;
            out.fail = RsFailReason::Line;
            return out;
        }
        // WEWN lines are never dirty, so no writeback on eviction.
        tags_.reserve(tags_.setIndex(line_number), victim.way,
                      line_number, kernel);
    }
    mshrs_.allocate(line_number, target);
    if (kernel.idx() >= mshr_held_.size())
        mshr_held_.resize(kernel.idx() + 1, 0);
    ++mshr_held_[kernel.idx()];
    miss_owner_.emplace(line_number, kernel);

    MemRequest req;
    req.line_addr = line_number;
    req.sm_id = sm_id_;
    req.kernel = kernel;
    req.kind = ReqKind::ReadMiss;
    req.birth = now;
    miss_queue_.push_back(req);

    out.kind = L1Outcome::Kind::MissToL2;
    return out;
}

std::vector<L1Target>
L1Dcache::fill(LineAddr line_number)
{
    const int way = tags_.probe(line_number);
    if (way >= 0) {
        const int set = tags_.setIndex(line_number);
        if (tags_.line(set, way).reserved)
            tags_.fill(set, way);
    }
    // Bypassed misses have no reserved line: nothing is installed.
    auto owner = miss_owner_.find(line_number);
    if (owner != miss_owner_.end()) {
        int &held = mshr_held_[owner->second.idx()];
        SIM_INVARIANT(held > 0, l1dCtx(sm_id_),
                      "MSHR holdings for kernel "
                          << owner->second
                          << " underflow on fill of line "
                          << line_number);
        --held;
        miss_owner_.erase(owner);
    }
    return mshrs_.release(line_number);
}

void
L1Dcache::checkInvariants(Cycle now) const
{
    const SimCtx ctx = l1dCtx(sm_id_, now);
    mshrs_.checkBalance(ctx);
    SIM_INVARIANT(missQueueSize() <= cfg_.miss_queue_depth, ctx,
                  "miss queue occupancy " << missQueueSize()
                                          << " exceeds depth "
                                          << cfg_.miss_queue_depth);
    // Every tracked miss owner corresponds to one live MSHR entry.
    SIM_INVARIANT(static_cast<int>(miss_owner_.size()) ==
                      mshrs_.size(),
                  ctx,
                  "miss-owner map (" << miss_owner_.size()
                                     << ") out of sync with MSHRs ("
                                     << mshrs_.size() << ")");
    const int held_total =
        std::accumulate(mshr_held_.begin(), mshr_held_.end(), 0);
    SIM_INVARIANT(held_total == mshrs_.size(), ctx,
                  "per-kernel MSHR holdings sum "
                      << held_total << " != MSHRs in use "
                      << mshrs_.size());
}

void
L1Dcache::checkDrained(Cycle now) const
{
    const SimCtx ctx = l1dCtx(sm_id_, now);
    SIM_INVARIANT(mshrs_.empty(), ctx,
                  "audit: " << mshrs_.size()
                            << " MSHR(s) never filled (ledger: "
                            << mshrs_.totalAllocated()
                            << " allocated, "
                            << mshrs_.totalReleased()
                            << " released)");
    SIM_INVARIANT(missQueueSize() == 0, ctx,
                  "audit: " << missQueueSize()
                            << " miss-queue entr(ies) never "
                               "injected downstream");
}

} // namespace ckesim
