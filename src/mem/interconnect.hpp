/**
 * @file
 * Crossbar interconnect model (Table 1: 16x16 crossbar, 32B flits).
 *
 * Each destination port serializes arriving packets at one flit per
 * cycle on top of a fixed zero-load latency, and accepts at most
 * `input_queue_depth` in-flight packets; a full port rejects injection,
 * backpressuring L1 miss queues (and, transitively, producing L1D
 * reservation failures — the congestion chain of Section 4.5).
 */

#ifndef CKESIM_MEM_INTERCONNECT_HPP
#define CKESIM_MEM_INTERCONNECT_HPP

#include <vector>

#include "mem/request.hpp"
#include "sim/config.hpp"
#include "sim/ringbuf.hpp"
#include "sim/types.hpp"

namespace ckesim {

/**
 * One direction of the crossbar (SM->partition or partition->SM).
 * Packets become visible to drain() once their serialized delivery
 * time has passed.
 */
class Crossbar
{
  public:
    Crossbar(int num_dests, const IcntConfig &cfg);

    /**
     * Try to inject a packet of @p flits flits towards @p dest.
     * @return false when the destination port is saturated.
     */
    bool tryInject(int dest, int flits, const MemRequest &req, Cycle now);

    /**
     * Pop up to @p max_count packets already delivered to @p dest,
     * appending them to @p out. Allocation-free; the memory system
     * calls this every cycle with a reused scratch vector.
     */
    void drain(int dest, Cycle now, int max_count,
               std::vector<MemRequest> &out);

    /** Convenience wrapper for tests and cold paths. */
    std::vector<MemRequest>
    drain(int dest, Cycle now, int max_count)
    {
        std::vector<MemRequest> out;
        drain(dest, now, max_count, out);
        return out;
    }

    /** In-flight + undelivered packets queued for @p dest. */
    int queueLength(int dest) const
    {
        return static_cast<int>(ports_[static_cast<std::size_t>(dest)]
                                    .queue.size());
    }

    int numDests() const { return static_cast<int>(ports_.size()); }

    /**
     * Clockable horizon (sim/clockable.hpp): earliest delivery time
     * over all ports. Per-port ready times are monotone (tryInject
     * serializes on next_free), so each port's front packet is its
     * minimum; a packet already deliverable reports `now` — whether
     * the consumer drains it is the consumer's (gated) decision.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Serialize every port's queue and wire timer. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a crossbar of identical geometry. */
    void restore(SnapshotReader &r);

  private:
    struct Packet
    {
        Cycle ready{};
        MemRequest req;
    };
    struct Port
    {
        RingBuf<Packet> queue; ///< flat hot queue (DESIGN.md §14)
        Cycle next_free{};     ///< when the port's wire frees up
    };

    IcntConfig cfg_; // SNAPSHOT-SKIP(fixed at construction)
    std::vector<Port> ports_;
};

} // namespace ckesim

#endif // CKESIM_MEM_INTERCONNECT_HPP
