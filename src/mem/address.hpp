/**
 * @file
 * Address manipulation helpers: the byte-address -> line-address map,
 * xor set indexing (Table 1: "xor-indexing" for both cache levels)
 * and the static line-to-L2-partition/DRAM-channel mapping.
 *
 * This header (together with the coalescer, which calls toLineAddr)
 * is the *only* producer of LineAddr values: everything below the
 * coalescer speaks line addresses, everything above speaks byte
 * addresses, and the strong types make an accidental crossing a
 * compile error.
 */

#ifndef CKESIM_MEM_ADDRESS_HPP
#define CKESIM_MEM_ADDRESS_HPP

#include <cstdint>

#include "sim/types.hpp"

namespace ckesim {

/** Map @p addr to the line containing it (address / line size). */
inline LineAddr
toLineAddr(Addr addr, int line_bytes)
{
    return LineAddr{addr.get() / static_cast<std::uint64_t>(line_bytes)};
}

/** First byte of line @p line: always line_bytes-aligned. */
inline Addr
lineByteBase(LineAddr line, int line_bytes)
{
    return Addr{line.get() * static_cast<std::uint64_t>(line_bytes)};
}

/** Round @p addr down to its cache-line base (byte address). */
inline Addr
lineBase(Addr addr, int line_bytes)
{
    return lineByteBase(toLineAddr(addr, line_bytes), line_bytes);
}

/**
 * Xor-fold set index used by GPGPU-Sim-style caches: xoring the tag
 * bits into the index spreads power-of-two strides across sets.
 * @pre num_sets is a power of two.
 */
inline int
xorSetIndex(LineAddr line, int num_sets)
{
    const std::uint64_t mask =
        static_cast<std::uint64_t>(num_sets) - 1;
    const std::uint64_t n = line.get();
    std::uint64_t x = n;
    x ^= x >> 10;
    x ^= x >> 20;
    return static_cast<int>((n ^ (x >> 4)) & mask);
}

/** Partition interleave granularity: 16 lines (one 2KB row) per chunk, so a
 *  warp's coalesced burst lands in one channel and sequential streams
 *  retain DRAM row locality (GPGPU-Sim-style address mapping). */
inline constexpr int kPartitionChunkLines = 16;

/**
 * L2 partition (== DRAM channel) owning a line. 512B chunks
 * interleave across partitions, with an xor fold so power-of-two
 * kernel strides do not camp on one partition.
 */
inline int
linePartition(LineAddr line, int num_partitions)
{
    const std::uint64_t chunk =
        line.get() / static_cast<std::uint64_t>(kPartitionChunkLines);
    const std::uint64_t x = chunk ^ (chunk >> 7) ^ (chunk >> 15);
    return static_cast<int>(
        x % static_cast<std::uint64_t>(num_partitions));
}

} // namespace ckesim

#endif // CKESIM_MEM_ADDRESS_HPP
