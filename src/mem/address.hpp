/**
 * @file
 * Address manipulation helpers: line extraction, xor set indexing
 * (Table 1: "xor-indexing" for both cache levels) and the static
 * line-to-L2-partition/DRAM-channel mapping.
 */

#ifndef CKESIM_MEM_ADDRESS_HPP
#define CKESIM_MEM_ADDRESS_HPP

#include <cstdint>

#include "sim/types.hpp"

namespace ckesim {

/** Round @p addr down to its cache-line base. */
inline Addr
lineBase(Addr addr, int line_bytes)
{
    return addr & ~static_cast<Addr>(line_bytes - 1);
}

/** Line number (address divided by line size). */
inline Addr
lineNumber(Addr addr, int line_bytes)
{
    return addr / static_cast<Addr>(line_bytes);
}

/**
 * Xor-fold set index used by GPGPU-Sim-style caches: xoring the tag
 * bits into the index spreads power-of-two strides across sets.
 * @pre num_sets is a power of two.
 */
inline int
xorSetIndex(Addr line_number, int num_sets)
{
    const Addr mask = static_cast<Addr>(num_sets - 1);
    Addr x = line_number;
    x ^= x >> 10;
    x ^= x >> 20;
    return static_cast<int>((line_number ^ (x >> 4)) & mask);
}

/** Partition interleave granularity: 16 lines (one 2KB row) per chunk, so a
 *  warp's coalesced burst lands in one channel and sequential streams
 *  retain DRAM row locality (GPGPU-Sim-style address mapping). */
inline constexpr int kPartitionChunkLines = 16;

/**
 * L2 partition (== DRAM channel) owning a line. 512B chunks
 * interleave across partitions, with an xor fold so power-of-two
 * kernel strides do not camp on one partition.
 */
inline int
linePartition(Addr line_number, int num_partitions)
{
    const Addr chunk = line_number / kPartitionChunkLines;
    const Addr x = chunk ^ (chunk >> 7) ^ (chunk >> 15);
    return static_cast<int>(x % static_cast<Addr>(num_partitions));
}

} // namespace ckesim

#endif // CKESIM_MEM_ADDRESS_HPP
