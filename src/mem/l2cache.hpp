/**
 * @file
 * One L2 cache partition (Table 1: 128KB, 16-way, 128 MSHRs, WBWA,
 * xor-indexing, allocate-on-miss, LRU). Each partition fronts the DRAM
 * channel with the same index.
 *
 * The partition processes one request per cycle from its input queue.
 * A miss that cannot secure {MSHR, victim line, DRAM queue slot(s)}
 * stalls at the queue head, backpressuring the crossbar and, in turn,
 * the L1 miss queues of every SM — how one kernel's congestion reaches
 * other kernels' memory pipelines.
 */

#ifndef CKESIM_MEM_L2CACHE_HPP
#define CKESIM_MEM_L2CACHE_HPP

#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mshr.hpp"
#include "mem/request.hpp"
#include "sim/config.hpp"
#include "sim/ringbuf.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** One address-hashed partition of the unified L2. */
class L2Partition
{
  public:
    L2Partition(const L2Config &cfg, int partition_index);

    /** Free input-queue slots (crossbar drains at most this many). */
    int inputRoom() const
    {
        return cfg_.miss_queue_depth -
               static_cast<int>(input_.size());
    }

    /** Push a request from the crossbar. @pre inputRoom() > 0. */
    void acceptInput(const MemRequest &req);

    /**
     * Process up to one input request this cycle, sending misses to
     * @p dram. Stalls (without popping) when miss resources are
     * unavailable.
     */
    void tick(Cycle now, DramChannel &dram);

    /** A DRAM fill for this partition's line arrived. */
    void onDramFill(const MemRequest &fill, Cycle now);

    /**
     * Pop read replies whose data is ready at @p now, appending them
     * to @p out. Allocation-free; the memory system calls this every
     * cycle with a reused scratch vector.
     */
    void drainReplies(Cycle now, std::vector<MemRequest> &out);

    /** Convenience wrapper for tests and cold paths. */
    std::vector<MemRequest>
    drainReplies(Cycle now)
    {
        std::vector<MemRequest> out;
        drainReplies(now, out);
        return out;
    }

    /** No queued input, outstanding miss, or undelivered reply. */
    bool idle() const
    {
        return input_.empty() && mshrs_.empty() && replies_.empty();
    }

    /**
     * Clockable horizon (sim/clockable.hpp). Any queued input means
     * same-cycle work: even a stalled head re-arbitrates its victim
     * way every tick, so `now` is the only safe answer. Replies
     * surface at their ready time (monotone: pushed at now+latency).
     * Outstanding MSHRs alone are passive — they release only on a
     * DRAM fill, which the channel's own horizon covers.
     */
    Cycle nextEventCycle(Cycle now) const;

    const CacheArray &tags() const { return tags_; }
    int inputSize() const { return static_cast<int>(input_.size()); }
    int mshrsInUse() const { return mshrs_.size(); }
    int repliesPending() const
    {
        return static_cast<int>(replies_.size());
    }

    /** Occupancy-bound and MSHR-ledger invariants (integrity sweep). */
    void checkInvariants(Cycle now) const;

    /** Serialize tags, MSHRs, input queue and pending replies. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a partition of identical configuration. */
    void restore(SnapshotReader &r);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const
    {
        return accesses_ != 0 ? static_cast<double>(misses_) /
                                    static_cast<double>(accesses_)
                              : 0.0;
    }

  private:
    struct Reply
    {
        Cycle ready{};
        MemRequest req;
    };

    L2Config cfg_;        // SNAPSHOT-SKIP(fixed at construction)
    int partition_index_; // SNAPSHOT-SKIP(fixed at construction)
    CacheArray tags_;
    MshrTable<MemRequest> mshrs_;
    RingBuf<MemRequest> input_; ///< flat hot queue (DESIGN.md §14)
    /** Replies in flight. Capacity covers the worst burst: every MSHR
     *  target plus a latency window of hits, all awaiting drain. */
    RingBuf<Reply> replies_;
    /** Reused by onDramFill(). */
    std::vector<MemRequest> fill_targets_; // SNAPSHOT-SKIP(scratch; dead between fills)
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace ckesim

#endif // CKESIM_MEM_L2CACHE_HPP
