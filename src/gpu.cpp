#include "gpu.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "sim/check.hpp"
#include "sim/clockable.hpp"

namespace ckesim {

// Every ticked layer of the machine honours the Clockable contract;
// a component losing its horizon breaks the fast path at compile
// time, not as a silent strict-mode fallback.
static_assert(has_next_event_cycle_v<Sm>);
static_assert(has_next_event_cycle_v<Lsu>);
static_assert(has_next_event_cycle_v<L1Dcache>);
static_assert(has_next_event_cycle_v<IssueController>);
static_assert(has_next_event_cycle_v<Crossbar>);
static_assert(has_next_event_cycle_v<L2Partition>);
static_assert(has_next_event_cycle_v<DramChannel>);
static_assert(has_next_event_cycle_v<MemorySystem>);

namespace {
SimCtx
gpuCtx(Cycle now = kNeverCycle)
{
    SimCtx ctx;
    ctx.cycle = now;
    ctx.module = "gpu";
    return ctx;
}

void
schemeFail(const std::string &field, const std::string &why)
{
    SimCtx ctx;
    ctx.module = "scheme";
    raiseSimError("ConfigError", ctx, field + ": " + why);
}
} // namespace

void
SchemeSpec::validate(const GpuConfig &cfg) const
{
    if (smk_warp_quota) {
        if (smk_epoch_cycles < Cycle{1})
            schemeFail("smk_epoch_cycles", "must be >= 1");
        if (isolated_ipc_per_sm.empty())
            schemeFail("isolated_ipc_per_sm",
                       "required when smk_warp_quota is set");
        for (double ipc : isolated_ipc_per_sm) {
            if (!(ipc >= 0.0))
                schemeFail("isolated_ipc_per_sm",
                           "entries must be non-negative");
        }
    }
    if (ucp && ucp_interval < Cycle{1})
        schemeFail("ucp_interval", "must be >= 1");
    if (partition == PartitionScheme::WarpedSlicer &&
        oracle_curves.empty() && ws_profile_window < Cycle{1})
        schemeFail("ws_profile_window",
                   "dynamic Warped-Slicer needs a positive window");
    if (global_dmil && global_dmil_interval < Cycle{1})
        schemeFail("global_dmil_interval", "must be >= 1");
    for (std::size_t k = 0; k < smil_limits.size(); ++k) {
        if (smil_limits[k] < 0)
            schemeFail("smil_limits",
                       "negative SMIL limit for kernel " +
                           std::to_string(k));
    }
    for (const FaultSpec &f : faults)
        validateFaultSpec(f, cfg.num_sms, cfg.numL2Partitions());
}

SchemeSpec
makeScheme(PartitionScheme partition, BmiMode bmi, MilMode mil)
{
    SchemeSpec spec;
    spec.partition = partition;
    spec.bmi = bmi;
    spec.mil = mil;
    return spec;
}

Gpu::Gpu(const GpuConfig &cfg, const Workload &workload,
         const SchemeSpec &spec)
    : cfg_(cfg), workload_(workload), spec_(spec), mem_(cfg)
{
    cfg.validate();
    spec.validate(cfg);
    SIM_CHECK(workload.numKernels() >= 1 &&
                  workload.numKernels() <= kMaxKernelsPerSm,
              gpuCtx(),
              "workload has " << workload.numKernels()
                              << " kernels (supported: 1.."
                              << kMaxKernelsPerSm << ")");

    IssuePolicyConfig policy;
    policy.bmi = spec.bmi;
    policy.mil = spec.mil;
    policy.static_limits = spec.smil_limits;
    policy.warp_quota_enabled = spec.smk_warp_quota;
    if (spec.smk_warp_quota) {
        policy.warp_quotas =
            smkWarpQuotas(spec.isolated_ipc_per_sm,
                          spec.smk_epoch_cycles);
    }

    sms_.reserve(static_cast<std::size_t>(cfg.num_sms));
    for (int s = 0; s < cfg.num_sms; ++s) {
        sms_.push_back(std::make_unique<Sm>(cfg, SmId{s}, mem_,
                                            workload.kernels, policy));
    }

    // Section 4.5 ablations.
    if (spec.mshr_partition) {
        const int quota =
            cfg.l1d.num_mshrs /
            std::max(workload.numKernels(), 1);
        for (auto &sm : sms_)
            for (int k = 0; k < workload.numKernels(); ++k)
                sm->l1d().setMshrQuota(KernelId{k}, quota);
    }
    for (int k = 0; k < workload.numKernels(); ++k) {
        if (spec.bypass_l1d[static_cast<std::size_t>(k)])
            for (auto &sm : sms_)
                sm->l1d().setBypass(KernelId{k}, true);
    }

    if (spec.ucp) {
        umons_.resize(sms_.size());
        taps_.resize(sms_.size());
        for (std::size_t s = 0; s < sms_.size(); ++s) {
            for (int k = 0; k < numKernels(); ++k) {
                umons_[s].emplace_back(cfg.l1d.numSets(),
                                       cfg.l1d.assoc);
            }
            taps_[s] = Tap{this, static_cast<int>(s)};
            sms_[s]->setAccessObserver(&Gpu::accessTap, &taps_[s]);
        }
    }

    if (!spec.faults.empty()) {
        fault_injector_ = FaultInjector(spec.faults);
        mem_.setFaultInjector(&fault_injector_);
        for (auto &sm : sms_)
            sm->setFaultInjector(&fault_injector_);
    }

    if (Profiler::envEnabled()) {
        owned_prof_ = std::make_unique<Profiler>();
        owned_prof_->enable();
        setProfiler(owned_prof_.get());
    }

    setupInitialPartition();
}

Gpu::~Gpu()
{
    if (owned_prof_)
        owned_prof_->report(std::cerr); // LINT-ALLOW(stdio): CKESIM_PROF teardown report
}

void
Gpu::setProfiler(Profiler *prof)
{
    cost_prof_ = prof;
    for (auto &sm : sms_)
        sm->setProfiler(prof);
    mem_.setProfiler(prof);
}

void
Gpu::accessTap(void *opaque, KernelId k, LineAddr line)
{
    Tap *tap = static_cast<Tap *>(opaque);
    tap->gpu->umons_[static_cast<std::size_t>(tap->sm)][k.idx()]
        .access(line);
}

void
Gpu::applyQuotas(const QuotaMatrix &quotas)
{
    SIM_CHECK(static_cast<int>(quotas.size()) == numSms(),
              gpuCtx(now_),
              "quota matrix has " << quotas.size() << " rows for "
                                  << numSms() << " SMs");
    for (int s = 0; s < numSms(); ++s)
        for (int k = 0; k < numKernels(); ++k)
            sms_[static_cast<std::size_t>(s)]->setTbQuota(
                KernelId{k}, quotas[static_cast<std::size_t>(s)]
                                   [static_cast<std::size_t>(k)]);
}

void
Gpu::setupInitialPartition()
{
    const auto &kernels = workload_.kernels;
    switch (spec_.partition) {
      case PartitionScheme::Leftover: {
        partition_ = leftoverPartition(kernels, cfg_.sm);
        applyQuotas(broadcastPartition(partition_, cfg_.num_sms));
        break;
      }
      case PartitionScheme::Spatial: {
        applyQuotas(spatialPartition(kernels, cfg_));
        break;
      }
      case PartitionScheme::SmkDrf: {
        partition_ = drfPartition(kernels, cfg_.sm);
        applyQuotas(broadcastPartition(partition_, cfg_.num_sms));
        break;
      }
      case PartitionScheme::WarpedSlicer: {
        if (!spec_.oracle_curves.empty()) {
            // Static Warped-Slicer: curves supplied, no online window.
            sweet_ = findSweetPoint(spec_.oracle_curves, kernels,
                                    cfg_.sm);
            partition_ = sweet_.tbs;
            applyQuotas(broadcastPartition(partition_, cfg_.num_sms));
            break;
        }
        // Dynamic profiling: SM s runs one kernel at one TB count.
        // Scalability curves are measured unthrottled; MIL resumes
        // (with fresh MILGs) for the measurement phase.
        profiling_ = true;
        profile_end_ = spec_.ws_profile_window;
        for (auto &sm : sms_)
            sm->controller().setMilBypass(true);
        profile_assign_.assign(sms_.size(), {-1, 0});
        const int n = numKernels();
        const int per = std::max(1, cfg_.num_sms / n);
        QuotaMatrix quotas(sms_.size());
        for (auto &row : quotas)
            row.fill(0);
        for (int k = 0; k < n; ++k) {
            const int max_tbs =
                kernels[static_cast<std::size_t>(k)]->maxTbsPerSm(
                    cfg_.sm);
            const std::vector<int> counts =
                profilingTbCounts(max_tbs, per);
            for (int j = 0; j < per; ++j) {
                const int s = k * per + j;
                if (s >= cfg_.num_sms)
                    break;
                const int count =
                    j < static_cast<int>(counts.size())
                        ? counts[static_cast<std::size_t>(j)]
                        : counts.back();
                quotas[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(k)] = count;
                profile_assign_[static_cast<std::size_t>(s)] = {k,
                                                                count};
            }
        }
        // Remainder SMs: run kernel 0 at max (not used for curves).
        for (int s = n * per; s < cfg_.num_sms; ++s) {
            quotas[static_cast<std::size_t>(s)][0] =
                kernels[0]->maxTbsPerSm(cfg_.sm);
        }
        applyQuotas(quotas);
        break;
      }
    }
}

void
Gpu::finishProfiling()
{
    profiling_ = false;
    const auto &kernels = workload_.kernels;
    const int n = numKernels();

    std::vector<ScalabilityCurve> curves(
        static_cast<std::size_t>(n));
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        const auto [k, count] = profile_assign_[s];
        if (k < 0)
            continue;
        const double ipc =
            static_cast<double>(sms_[s]
                                    ->kernelStats(KernelId{k})
                                    .issued_instructions) /
            static_cast<double>(spec_.ws_profile_window.get());
        curves[static_cast<std::size_t>(k)].addPoint(count, ipc);
    }

    sweet_ = findSweetPoint(curves, kernels, cfg_.sm);
    partition_ = sweet_.tbs;
    applyQuotas(broadcastPartition(partition_, cfg_.num_sms));

    for (auto &sm : sms_) {
        sm->resetStats();
        sm->controller().setMilBypass(false);
    }
    measured_start_ = now_;
}

void
Gpu::ucpRepartition()
{
    const int assoc = cfg_.l1d.assoc;
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        std::vector<const UmonMonitor *> mons;
        for (int k = 0; k < numKernels(); ++k)
            mons.push_back(&umons_[s][static_cast<std::size_t>(k)]);

        const std::vector<int> alloc =
            ucpLookaheadPartition(mons, assoc);
        int first = 0;
        for (int k = 0; k < numKernels(); ++k) {
            sms_[s]->l1d().restrictKernelWays(
                KernelId{k}, first,
                alloc[static_cast<std::size_t>(k)]);
            first += alloc[static_cast<std::size_t>(k)];
        }
        for (auto &m : umons_[s])
            m.age();
    }
}

void
Gpu::tickComponents(Cycle at, bool drain)
{
    // THE tick ordering, shared by strict stepping, the fast path's
    // resumed cycles and the audit drain: SMs first (they inject into
    // the interconnect), then the memory system below them.
    for (auto &sm : sms_)
        drain ? sm->drainTick(at) : sm->tick(at);
    mem_.tick(at);
}

void
Gpu::stepCycle()
{
    {
        ProfScope prof_scheme(cost_prof_, ProfComp::Scheme);
        // Checkpoint before cycle now_ executes: a restored snapshot
        // resumes by ticking now_ exactly once, never twice.
        const int ckpt = cfg_.integrity.checkpoint_interval;
        if (ckpt > 0 && now_ > Cycle{} && now_ % ckpt == 0)
            last_checkpoint_ = snapshot();
        if (profiling_ && now_ == profile_end_)
            finishProfiling();
        if (spec_.ucp && now_ > Cycle{} &&
            now_ % spec_.ucp_interval == 0)
            ucpRepartition();
        if (spec_.global_dmil && spec_.mil == MilMode::Dynamic &&
            !profiling_ && now_ > Cycle{} &&
            now_ % spec_.global_dmil_interval == 0) {
            // Broadcast SM 0's MILG decisions to every other SM.
            for (int ki = 0; ki < numKernels(); ++ki) {
                const KernelId k{ki};
                const int limit = sms_[0]->controller().milLimit(k);
                for (std::size_t s = 1; s < sms_.size(); ++s)
                    sms_[s]->controller().overrideMilLimit(k, limit);
            }
        }
    }
    tickComponents(now_, /*drain=*/false);

    const int interval = cfg_.integrity.check_interval;
    if (interval > 0 && now_ % interval == 0) {
        ProfScope prof_integrity(cost_prof_, ProfComp::Integrity);
        watchdogPoll();
        if (cfg_.integrity.periodic_checks)
            checkInvariants();
        if (run_control_)
            pollRunControl();
    }
}

Cycle
Gpu::skipTarget(Cycle end) const
{
    // Component horizons: the earliest cycle any SM or the memory
    // system could change state. A horizon of now_ means this very
    // cycle has work — no skip, so bail before scanning the rest (on
    // busy cycles this keeps the fast path's bookkeeping near free).
    Cycle target = end;
    for (const auto &sm : sms_) {
        target = earliestEvent(
            target, clampHorizon(sm->nextEventCycle(now_), now_));
        if (target == now_)
            return now_;
    }
    target =
        earliestEvent(target,
                      clampHorizon(mem_.nextEventCycle(now_), now_));
    if (target == now_)
        return now_;

    // Cadenced-event boundaries: every cycle on which stepCycle()
    // runs a top-of-body action (checkpoint, UCP, global DMIL,
    // profiling end) or a bottom-of-body integrity block must
    // execute strictly, so events inside a skipped span still fire
    // in order. nextCadence(now_) == now_ on a boundary, which
    // forces target == now_ (no skip) and a strict step.
    const int interval = cfg_.integrity.check_interval;
    if (interval > 0)
        target = earliestEvent(target, nextCadence(now_, interval));
    const int ckpt = cfg_.integrity.checkpoint_interval;
    if (ckpt > 0)
        target = earliestEvent(target, nextCadence(now_, ckpt));
    if (spec_.ucp)
        target = earliestEvent(
            target,
            nextCadence(now_,
                        static_cast<int>(spec_.ucp_interval.get())));
    if (spec_.global_dmil && spec_.mil == MilMode::Dynamic)
        target = earliestEvent(
            target,
            nextCadence(
                now_,
                static_cast<int>(spec_.global_dmil_interval.get())));
    if (profiling_)
        target = earliestEvent(target, profile_end_);
    return target;
}

void
Gpu::skipTo(Cycle target)
{
    // Every cycle in [now_, target) is a proven no-op for every
    // component; replicate the only bookkeeping those ticks would
    // have performed (SM clocks and cycle counters) and warp time.
    const std::uint64_t delta = (target - now_).get();
    for (auto &sm : sms_)
        sm->skipIdleCycles(target, delta);
    fast_skipped_cycles_ += delta;
    now_ = target;
}

void
Gpu::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    // Fault predicates consult per-cycle firing budgets; skipping
    // would change which cycles they see. Faulted runs step strictly.
    const bool fast = fast_forward_ && fault_injector_.empty();
    // Attribute the loop glue (tick dispatch, cadence checks,
    // skip-target scans) explicitly; nested component scopes
    // subtract, so this shows up as `runloop` self-time.
    ProfScope prof_loop(cost_prof_, ProfComp::Runloop);
    // Adaptive attempt pacing: a horizon scan costs about as much as
    // ticking an idle cycle, so a busy machine must not pay it every
    // cycle. Each failed attempt doubles the wait before the next
    // (capped); any successful skip resets the pace. Deterministic —
    // and it only changes WHICH proven no-op spans are skipped: any
    // subset of them leaves the machine bit-identical.
    std::uint64_t backoff = 1;
    std::uint64_t until_attempt = 0;
    while (now_ < end) {
        if (fast && until_attempt == 0) {
            const Cycle target = skipTarget(end);
            if (target > now_) {
                skipTo(target);
                backoff = 1;
                continue;
            }
            until_attempt = backoff;
            backoff = backoff < 64 ? backoff * 2 : 64;
        }
        if (until_attempt > 0)
            --until_attempt;
        stepCycle();
        ++now_;
    }
}

void
Gpu::pollRunControl()
{
    // Liveness hook first: heartbeats must flow even when no budget
    // or cancellation is configured.
    run_control_->onPoll();
    if (run_control_->cancelRequested()) {
        raiseSimError("Cancelled", gpuCtx(now_),
                      "cooperative cancellation requested at cycle " +
                          std::to_string(now_.get()));
    }
    const std::uint64_t budget = run_control_->cycleBudget();
    if (budget > 0 && now_.get() >= budget) {
        raiseSimError("Timeout", gpuCtx(now_),
                      "cycle budget of " + std::to_string(budget) +
                          " cycles exhausted");
    }
    if (run_control_->wallExpired()) {
        raiseSimError("Timeout", gpuCtx(now_),
                      "wall-clock budget of " +
                          std::to_string(
                              run_control_->wallBudgetMs()) +
                          " ms exhausted at cycle " +
                          std::to_string(now_.get()));
    }
}

std::uint64_t
Gpu::progressSignature() const
{
    // Lifetime counters only: resetStats() at phase changes must not
    // look like (or hide) progress.
    std::uint64_t sig = mem_.deliveredFills();
    for (const auto &sm : sms_)
        sig += sm->progressCount();
    return sig;
}

bool
Gpu::hasPendingWork() const
{
    if (!mem_.quiescent())
        return true;
    for (const auto &sm : sms_)
        if (sm->hasWork())
            return true;
    return false;
}

void
Gpu::watchdogPoll()
{
    const std::uint64_t sig = progressSignature();
    if (sig != last_progress_sig_) {
        last_progress_sig_ = sig;
        last_progress_cycle_ = now_;
        return;
    }
    const int timeout = cfg_.integrity.watchdog_timeout;
    if (timeout <= 0)
        return;
    if (now_ - last_progress_cycle_ < Cycle{timeout})
        return;
    // A machine with nothing resident or in flight is idle, not hung.
    if (!hasPendingWork())
        return;
    // Memory pipeline stalls are the only hang mode this machine has:
    // with no memory request outstanding anywhere, a flat progress
    // signature means a long compute phase (e.g. every resident warp
    // busy on a high-latency SFU op), not a deadlock. Firing there is
    // a false positive.
    if (!memoryInFlight())
        return;
    raiseWatchdog();
}

bool
Gpu::memoryInFlight() const
{
    if (mem_.inflightReads() > 0 || !mem_.quiescent())
        return true;
    for (const auto &sm : sms_)
        if (!sm->memDrained())
            return true;
    return false;
}

void
Gpu::raiseWatchdog()
{
    std::ostringstream os;
    os << "no instruction issued, request returned or fill delivered "
          "since cycle "
       << last_progress_cycle_ << " ("
       << (now_ - last_progress_cycle_) << " cycles) with work pending\n";
    for (const auto &sm : sms_)
        os << "  " << sm->describeState() << "\n";
    os << mem_.describeState();
    raiseSimError("Watchdog", gpuCtx(now_), os.str());
}

void
Gpu::checkInvariants()
{
    mem_.checkInvariants(now_);
    for (const auto &sm : sms_)
        sm->checkInvariants(now_);
}

void
Gpu::audit()
{
    // The audit proves conservation on a healthy pipeline; detach the
    // injector so a still-armed fault cannot block the drain itself.
    // State already corrupted by fired faults (leaked MSHRs, dropped
    // fills) remains and is what checkDrained reports.
    mem_.setFaultInjector(nullptr);
    for (auto &sm : sms_)
        sm->setFaultInjector(nullptr);

    auto drained = [this] {
        if (!mem_.quiescent())
            return false;
        for (const auto &sm : sms_)
            if (!sm->memDrained())
                return false;
        return true;
    };

    Cycle spent{};
    const Cycle limit{cfg_.integrity.audit_drain_limit};
    while (spent < limit && !drained()) {
        tickComponents(now_ + spent, /*drain=*/true);
        ++spent;
    }

    // now_ stays put: the audit is bookkeeping, not simulated time,
    // and must not distort measuredCycles().
    const Cycle when = now_ + spent;
    mem_.checkDrained(when);
    for (auto &sm : sms_)
        sm->checkDrained(when);
}

double
Gpu::ipc(KernelId k) const
{
    const Cycle cycles = measuredCycles();
    if (cycles == Cycle{})
        return 0.0;
    std::uint64_t instrs = 0;
    for (const auto &sm : sms_)
        instrs += sm->kernelStats(k).issued_instructions;
    return static_cast<double>(instrs) /
           static_cast<double>(cycles.get());
}

KernelStats
Gpu::kernelStatsTotal(KernelId k) const
{
    KernelStats total;
    for (const auto &sm : sms_)
        total += sm->kernelStats(k);
    return total;
}

SmStats
Gpu::smStatsTotal() const
{
    SmStats total;
    for (const auto &sm : sms_)
        total += sm->smStats();
    return total;
}

// ---- crash safety -------------------------------------------------------

namespace {
/** FNV-1a over a string (the config digest pin stored in snapshots). */
std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnvBytes(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}
} // namespace

GpuSnapshot
Gpu::snapshot() const
{
    SnapshotWriter w;
    w.section("gpu");
    w.boolean(profiling_);
    w.unit(profile_end_);
    w.u64(profile_assign_.size());
    for (const auto &[k, count] : profile_assign_) {
        w.i64(k);
        w.i64(count);
    }
    w.u64(sweet_.tbs.size());
    for (const int t : sweet_.tbs)
        w.i64(t);
    w.f64(sweet_.theoretical_ws);
    w.u64(sweet_.predicted_norm_ipc.size());
    for (const double p : sweet_.predicted_norm_ipc)
        w.f64(p);
    w.u64(partition_.size());
    for (const int t : partition_)
        w.i64(t);
    w.unit(now_);
    w.unit(measured_start_);
    w.u64(last_progress_sig_);
    w.unit(last_progress_cycle_);
    fault_injector_.snapshot(w);
    w.u64(umons_.size());
    for (const auto &row : umons_)
        for (const UmonMonitor &m : row)
            m.snapshot(w);
    mem_.snapshot(w);
    for (const auto &sm : sms_)
        sm->snapshot(w);

    GpuSnapshot snap;
    snap.version = kSnapshotFormatVersion;
    snap.cycle = now_;
    snap.config_digest = fnvString(cfg_.digest());
    snap.fingerprint = w.fingerprint();
    snap.bytes = w.take();
    return snap;
}

void
Gpu::restore(const GpuSnapshot &snap)
{
    const SimCtx ctx = gpuCtx(now_);
    if (snap.version != kSnapshotFormatVersion)
        raiseSimError(
            "Snapshot", ctx,
            "snapshot format version " + std::to_string(snap.version) +
                " does not match this build's " +
                std::to_string(kSnapshotFormatVersion) +
                " (no migration; re-run from scratch)");
    if (snap.config_digest != fnvString(cfg_.digest()))
        raiseSimError("Snapshot", ctx,
                      "snapshot was taken under a different GpuConfig "
                      "(" +
                          cfg_.digest() + " expected)");
    if (snap.fingerprint != fnvBytes(snap.bytes))
        raiseSimError("Snapshot", ctx,
                      "snapshot payload does not match its "
                      "fingerprint (corrupted or truncated "
                      "checkpoint)");

    SnapshotReader r(snap.bytes);
    r.section("gpu");
    profiling_ = r.boolean();
    profile_end_ = r.unit<Cycle>();
    const std::uint64_t nassign = r.u64();
    profile_assign_.assign(static_cast<std::size_t>(nassign), {-1, 0});
    for (auto &[k, count] : profile_assign_) {
        k = static_cast<int>(r.i64());
        count = static_cast<int>(r.i64());
    }
    sweet_.tbs.assign(static_cast<std::size_t>(r.u64()), 0);
    for (int &t : sweet_.tbs)
        t = static_cast<int>(r.i64());
    sweet_.theoretical_ws = r.f64();
    sweet_.predicted_norm_ipc.assign(
        static_cast<std::size_t>(r.u64()), 0.0);
    for (double &p : sweet_.predicted_norm_ipc)
        p = r.f64();
    partition_.assign(static_cast<std::size_t>(r.u64()), 0);
    for (int &t : partition_)
        t = static_cast<int>(r.i64());
    now_ = r.unit<Cycle>();
    measured_start_ = r.unit<Cycle>();
    last_progress_sig_ = r.u64();
    last_progress_cycle_ = r.unit<Cycle>();
    fault_injector_.restore(r);
    const std::uint64_t numons = r.u64();
    SIM_CHECK(numons == umons_.size(), ctx,
              "snapshot holds " << numons
                  << " UMON rows, this GPU has " << umons_.size());
    for (auto &row : umons_)
        for (UmonMonitor &m : row)
            m.restore(r);
    mem_.restore(r);
    for (const auto &sm : sms_)
        sm->restore(r);
    SIM_CHECK(r.atEnd(), ctx,
              "snapshot payload has " << (snap.bytes.size() - r.offset())
                  << " trailing byte(s) after restore");
    SIM_CHECK(now_ == snap.cycle, ctx,
              "snapshot metadata cycle " << snap.cycle
                  << " disagrees with serialized clock " << now_);
}

void
Gpu::attachSeries(KernelId k, TimeSeries *issue, TimeSeries *l1d)
{
    for (auto &sm : sms_) {
        sm->setIssueSeries(k, issue);
        sm->setL1dSeries(k, l1d);
    }
}

} // namespace ckesim
