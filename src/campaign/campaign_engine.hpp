/**
 * @file
 * Fault-tolerant multi-process campaign orchestrator.
 *
 * A CampaignEngine turns a job list into a fleet: it forks N worker
 * processes (each inheriting the job list, so dispatch is by index +
 * content hash over the CRC-framed wire in campaign/wire.hpp), and a
 * single-threaded poll() loop dispatches jobs, collects results and
 * supervises liveness. Robustness is the point:
 *
 *  - worker heartbeats ride the simulator's run-control poll cadence;
 *    a worker whose heartbeats stop past the liveness deadline is
 *    SIGKILLed and its job re-dispatched;
 *  - a worker that dies (crash, OOM, injected SIGKILL) surfaces as a
 *    closed socket; its job is re-dispatched with bounded attempts
 *    and deterministic jittered backoff (reusing the SweepEngine's
 *    retryBackoffMs);
 *  - a corrupt frame marks the worker compromised: killed, respawned,
 *    job re-dispatched;
 *  - a poison job — one that kills K workers — is quarantined as a
 *    structured error instead of being retried forever;
 *  - when workers cannot be spawned at all the campaign degrades to
 *    in-process SweepEngine execution;
 *  - SIGTERM (via requestDrain()) finishes in-flight jobs, marks the
 *    rest Drained, and shuts the fleet down cleanly.
 *
 * Durability: with a journal base set, every received result is
 * appended to one journal shard per worker slot (fsync'd, CRC'd — the
 * metrics/journal format), so an orchestrator crash loses nothing
 * that was handed back; on completion the shards are merged in job
 * submission order into a canonical merged journal whose bytes are
 * identical for any worker count and any crash/redispatch history.
 */

#ifndef CKESIM_CAMPAIGN_CAMPAIGN_ENGINE_HPP
#define CKESIM_CAMPAIGN_CAMPAIGN_ENGINE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/sim_job.hpp"
#include "sim/procfault.hpp"

namespace ckesim {

/** Fleet shape, liveness policy and durability of one campaign. */
struct CampaignOptions
{
    /** Worker processes to fork; values < 1 are clamped to 1. */
    int workers = 1;

    /** Journal base path; shards land at <base>.shard<N> and the
     *  merged journal at <base>.merged. Empty = in-memory only. */
    std::string journal_base;

    /** Minimum gap between worker heartbeats. */
    std::uint64_t heartbeat_ms = 25;

    /** No heartbeat for this long while owning a job = hung worker:
     *  SIGKILL and re-dispatch. */
    std::uint64_t liveness_deadline_ms = 5000;

    /** Max dispatch attempts per job across worker deaths/hangs. */
    int max_dispatch_attempts = 4;

    /** Worker deaths a single job may cause before it is quarantined
     *  as poisoned. */
    int poison_worker_deaths = 2;

    /** Base for the jittered re-dispatch backoff (0 = immediate). */
    std::uint64_t backoff_base_ms = 0;

    /** Jitter percentage for the re-dispatch backoff. */
    std::uint32_t backoff_jitter_pct = 50;

    /** Total worker respawns allowed before the campaign stops
     *  replacing dead workers (it finishes with the survivors, or
     *  degrades to in-process execution if none remain). */
    int max_worker_respawns = 64;

    /** Fleet-fault injection plan (kill/stall/corrupt/drop/spawn). */
    ProcFaultPlan faults;

    /** Skip the fleet entirely and run in-process (degraded mode). */
    bool force_in_process = false;
};

/** Terminal state of one campaign job. */
enum class CampaignJobState : std::uint8_t {
    Completed = 0, ///< result is valid
    Failed,        ///< structured SimError from the simulation
    Poisoned,      ///< quarantined after killing K workers
    Exhausted,     ///< max_dispatch_attempts spent without a result
    Drained,       ///< campaign drained before the job ran
};

/** Display name of a CampaignJobState. */
const char *campaignJobStateName(CampaignJobState state);

/** What became of one job, in submission order. */
struct CampaignJobOutcome
{
    CampaignJobState state = CampaignJobState::Drained;
    SimResult result;         ///< set when state == Completed
    std::string error_kind;   ///< SimError kind / "Poisoned" / ...
    std::string error_detail; ///< human-readable failure story
    int attempts = 0;         ///< dispatch attempts consumed
    bool from_journal = false; ///< served from a shard/merged journal

    bool ok() const { return state == CampaignJobState::Completed; }
};

/** Fleet-level accounting of one campaign run. */
struct CampaignReport
{
    std::uint64_t completed = 0;        ///< jobs with results
    std::uint64_t journal_hits = 0;     ///< served without dispatch
    std::uint64_t dispatched = 0;       ///< dispatch frames sent
    std::uint64_t redispatched = 0;     ///< re-dispatches after loss
    std::uint64_t worker_deaths = 0;    ///< sockets that went dark
    std::uint64_t workers_respawned = 0;
    std::uint64_t hung_workers_killed = 0; ///< liveness deadline kills
    std::uint64_t corrupt_frames = 0;   ///< streams declared corrupt
    std::uint64_t poisoned = 0;         ///< jobs quarantined
    std::uint64_t failed = 0;           ///< structured job failures
    std::uint64_t drained = 0;          ///< jobs never started
    std::uint64_t heartbeats = 0;       ///< heartbeat frames seen
    bool degraded_in_process = false;   ///< fleet unavailable
    bool drain_requested = false;
};

/** Everything a campaign run produced. */
struct CampaignOutcome
{
    std::vector<CampaignJobOutcome> jobs; ///< submission order
    CampaignReport report;

    bool allCompleted() const;
};

/** Stable 32-bit fingerprint of a result (CRC of its canonical
 *  encoding — the same bytes the journal stores). */
std::uint32_t resultFingerprint(const SimResult &result);

/**
 * The diff-stable campaign result table: header (name, cycles, job
 * count, campaign fingerprint) plus one line per job with its content
 * key, terminal state and result fingerprint (or error kind). One
 * formatter shared by ckesim-campaignd and ckesim-campaign-client so
 * "byte-identical tables" is a property of the data, not of two
 * printf copies staying in sync.
 */
std::string formatCampaignTable(
    const std::string &name, std::uint64_t cycles,
    const std::vector<SimJob> &jobs,
    const std::vector<CampaignJobOutcome> &outcomes);

/** Orchestrates one campaign at a time over a forked worker fleet. */
class CampaignEngine
{
  public:
    explicit CampaignEngine(CampaignOptions opts);

    const CampaignOptions &options() const { return opts_; }

    /**
     * Run @p jobs to terminal states (fork fleet, dispatch, recover,
     * merge). Not reentrant; one campaign per call.
     */
    CampaignOutcome run(const std::vector<SimJob> &jobs);

    /**
     * Ask the running campaign to drain: in-flight jobs finish (still
     * under liveness supervision), nothing new is dispatched, workers
     * shut down cleanly. Async-signal-safe (an atomic store), so a
     * SIGTERM handler may call it directly.
     */
    void requestDrain()
    {
        drain_.store(true, std::memory_order_relaxed);
    }

    /** Shard journal path for worker slot @p slot. */
    static std::string shardPath(const std::string &base, int slot);

    /** Merged (canonical) journal path. */
    static std::string mergedPath(const std::string &base);

  private:
    class Run; // all per-campaign state lives in campaign_engine.cpp

    CampaignOptions opts_;
    std::atomic<bool> drain_{false};
};

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_CAMPAIGN_ENGINE_HPP
