#include "campaign/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "metrics/journal.hpp"
#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
validFrameType(std::uint8_t t)
{
    return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
           t <= static_cast<std::uint8_t>(FrameType::Pong);
}

/** Largest payload either side may legitimately send; anything above
 *  is a corrupted length field, not a real frame. */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/**
 * Validate a complete header. Returns empty on success, else the
 * reason the stream cannot be trusted.
 */
std::string
checkHeader(const std::uint8_t *h)
{
    if (getU32(h) != kWireMagic)
        return "bad frame magic";
    if (h[4] != kWireVersion)
        return "wire version " + std::to_string(h[4]) +
               " (this build speaks " + std::to_string(kWireVersion) +
               ")";
    if (!validFrameType(h[5]))
        return "unknown frame type " + std::to_string(h[5]);
    if (getU32(h + 22) > kMaxFramePayload)
        return "implausible payload length";
    return "";
}

Frame
headerFrame(const std::uint8_t *h)
{
    Frame f;
    f.type = static_cast<FrameType>(h[5]);
    f.job_index = getU32(h + 6);
    f.aux = getU32(h + 10);
    f.key = getU64(h + 14);
    return f;
}

} // namespace

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(kFrameHeaderBytes + frame.payload.size());
    putU32(bytes, kWireMagic);
    bytes.push_back(kWireVersion);
    bytes.push_back(static_cast<std::uint8_t>(frame.type));
    putU32(bytes, frame.job_index);
    putU32(bytes, frame.aux);
    putU64(bytes, frame.key);
    putU32(bytes,
           static_cast<std::uint32_t>(frame.payload.size()));
    putU32(bytes, crc32(frame.payload.data(), frame.payload.size()));
    bytes.insert(bytes.end(), frame.payload.begin(),
                 frame.payload.end());
    return bytes;
}

bool
writeFully(int fd, const std::uint8_t *bytes, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE, never as
        // a process-killing SIGPIPE.
        const ssize_t got =
            ::send(fd, bytes + off, n - off, MSG_NOSIGNAL);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking sender (the orchestrator/service):
                // wait briefly for the peer to drain its buffer. A
                // peer that stays jammed past the grace window is
                // treated as gone — the caller's recovery path
                // handles it.
                struct pollfd pfd;
                pfd.fd = fd;
                pfd.events = POLLOUT;
                pfd.revents = 0;
                const int r = ::poll(&pfd, 1, 1000);
                if (r < 0 && errno == EINTR)
                    continue;
                if (r <= 0)
                    return false;
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(got);
    }
    return true;
}

IoStatus
readFully(int fd, std::uint8_t *out, std::size_t n)
{
    std::size_t off = 0;
    // Bounded EINTR budget: a signal storm must surface as an error,
    // not livelock the read loop forever.
    int eintr_left = 1024;
    while (off < n) {
        const ssize_t got = ::read(fd, out + off, n - off);
        if (got < 0) {
            if (errno == EINTR && --eintr_left > 0)
                continue;
            return IoStatus::Error;
        }
        if (got == 0)
            return IoStatus::Eof;
        off += static_cast<std::size_t>(got);
    }
    return IoStatus::Ok;
}

bool
writeAll(int fd, const std::vector<std::uint8_t> &bytes)
{
    return writeFully(fd, bytes.data(), bytes.size());
}

bool
writeFrame(int fd, const Frame &frame)
{
    return writeAll(fd, encodeFrame(frame));
}

WireStatus
readFrameBlocking(int fd, Frame &out)
{
    // The first byte is read alone so an orderly close *between*
    // frames surfaces as Eof; a close anywhere inside a frame is a
    // torn stream and therefore Corrupt.
    std::uint8_t header[kFrameHeaderBytes];
    switch (readFully(fd, header, 1)) {
      case IoStatus::Ok:
        break;
      case IoStatus::Eof:
        return WireStatus::Eof;
      case IoStatus::Error:
        return WireStatus::Corrupt;
    }
    if (readFully(fd, header + 1, kFrameHeaderBytes - 1) !=
        IoStatus::Ok)
        return WireStatus::Corrupt;
    if (!checkHeader(header).empty())
        return WireStatus::Corrupt;
    out = headerFrame(header);
    const std::uint32_t len = getU32(header + 22);
    const std::uint32_t crc = getU32(header + 26);
    out.payload.assign(len, 0);
    if (len > 0 &&
        readFully(fd, out.payload.data(), len) != IoStatus::Ok)
        return WireStatus::Corrupt;
    if (crc32(out.payload.data(), out.payload.size()) != crc)
        return WireStatus::Corrupt;
    return WireStatus::Ok;
}

void
FrameParser::feed(const std::uint8_t *bytes, std::size_t n)
{
    if (corrupt_)
        return;
    buf_.insert(buf_.end(), bytes, bytes + n);
    for (;;) {
        if (buf_.size() - pos_ < kFrameHeaderBytes)
            break;
        const std::uint8_t *h = buf_.data() + pos_;
        const std::string why = checkHeader(h);
        if (!why.empty()) {
            corrupt_ = true;
            reason_ = why;
            return;
        }
        const std::uint32_t len = getU32(h + 22);
        const std::uint32_t crc = getU32(h + 26);
        if (buf_.size() - pos_ - kFrameHeaderBytes < len)
            break; // payload still in flight
        Frame f = headerFrame(h);
        const std::uint8_t *payload = h + kFrameHeaderBytes;
        if (crc32(payload, len) != crc) {
            corrupt_ = true;
            reason_ = "payload CRC mismatch";
            return;
        }
        f.payload.assign(payload, payload + len);
        ready_.push_back(std::move(f));
        pos_ += kFrameHeaderBytes + len;
    }
    // Reclaim the consumed prefix once it dominates the buffer.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
}

bool
FrameParser::next(Frame &out)
{
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

std::vector<std::uint8_t>
encodeJobError(const std::string &kind, const std::string &detail)
{
    SnapshotWriter w;
    w.section("job_error");
    w.str(kind);
    w.str(detail);
    return w.take();
}

void
decodeJobError(const std::vector<std::uint8_t> &bytes,
               std::string &kind, std::string &detail)
{
    SnapshotReader r(bytes);
    r.section("job_error");
    kind = r.str();
    detail = r.str();
    if (!r.atEnd()) {
        SimCtx ctx;
        ctx.module = "campaign.wire";
        raiseSimError("Snapshot", ctx,
                      "trailing bytes after JobError payload");
    }
}

std::vector<std::uint8_t>
encodeCampaignRef(const CampaignRef &ref)
{
    SnapshotWriter w;
    w.section("campaign_ref");
    w.str(ref.name);
    w.u64(ref.cycles);
    return w.take();
}

CampaignRef
decodeCampaignRef(const std::vector<std::uint8_t> &bytes)
{
    SnapshotReader r(bytes);
    r.section("campaign_ref");
    CampaignRef ref;
    ref.name = r.str();
    ref.cycles = r.u64();
    if (!r.atEnd()) {
        SimCtx ctx;
        ctx.module = "campaign.wire";
        raiseSimError("Snapshot", ctx,
                      "trailing bytes after CampaignRef payload");
    }
    return ref;
}

std::vector<std::uint8_t>
encodeReject(const RejectInfo &info)
{
    SnapshotWriter w;
    w.section("reject");
    w.str(info.reason);
    w.u64(info.retry_after_ms);
    return w.take();
}

RejectInfo
decodeReject(const std::vector<std::uint8_t> &bytes)
{
    SnapshotReader r(bytes);
    r.section("reject");
    RejectInfo info;
    info.reason = r.str();
    info.retry_after_ms = r.u64();
    if (!r.atEnd()) {
        SimCtx ctx;
        ctx.module = "campaign.wire";
        raiseSimError("Snapshot", ctx,
                      "trailing bytes after Reject payload");
    }
    return info;
}

} // namespace ckesim
