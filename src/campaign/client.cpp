#include "campaign/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "campaign/campaign_spec.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace ckesim {

namespace {

using Clock = std::chrono::steady_clock; // LINT-ALLOW(determinism): host-side receive timeout, never simulated state
using Millis = std::chrono::milliseconds;

/** Connect to the service socket; -1 on failure. */
int
connectService(const std::string &path)
{
    struct sockaddr_un addr;
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    for (;;) {
        if (::connect(fd,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        if (errno == EINTR)
            continue;
        ::close(fd);
        return -1;
    }
}

/** Map a JobFailed kind onto the terminal state it stands for. */
CampaignJobState
failureState(const std::string &kind)
{
    if (kind == "Drained")
        return CampaignJobState::Drained;
    if (kind == "Poisoned")
        return CampaignJobState::Poisoned;
    if (kind == "Exhausted")
        return CampaignJobState::Exhausted;
    return CampaignJobState::Failed;
}

/** What one submission attempt ended as. */
enum class AttemptEnd : std::uint8_t {
    Done = 0,    ///< CampaignDone received; outcome is final
    Retry,       ///< transient failure; resubmit after backoff
    RejectRetry, ///< Reject with a retry-after hint
    Fatal,       ///< outcome.status/report.error are final
};

struct Attempt
{
    AttemptEnd end = AttemptEnd::Fatal;
    std::uint64_t retry_after_ms = 0; ///< RejectRetry hint
};

/**
 * One full submit-and-stream attempt over a fresh connection.
 * Fills @p outcome progressively; only AttemptEnd::Done makes it
 * final.
 */
Attempt
runAttempt(const ClientOptions &opts, ProcFaultPlan &faults,
           int attempt_no, std::uint64_t fingerprint,
           ClientOutcome &outcome)
{
    Attempt res;
    const int fd = connectService(opts.socket_path);
    if (fd < 0) {
        outcome.status = ClientStatus::ConnectionLost;
        outcome.report.error =
            "connect('" + opts.socket_path + "') failed";
        res.end = AttemptEnd::Retry;
        return res;
    }

    Frame submit;
    submit.type = FrameType::SubmitCampaign;
    submit.key = fingerprint;
    submit.payload = encodeCampaignRef(opts.ref);
    std::vector<std::uint8_t> bytes = encodeFrame(submit);
    if (faults.fire(ProcFaultKind::CorruptClientFrame, -1, -1,
                    attempt_no)) {
        // Flip one payload byte after the CRC was computed: the
        // service must declare this stream corrupt and drop us.
        bytes[kFrameHeaderBytes + submit.payload.size() / 2] ^= 0xffu;
    }
    if (!writeFully(fd, bytes.data(), bytes.size())) {
        ::close(fd);
        outcome.status = ClientStatus::ConnectionLost;
        outcome.report.error = "submission write failed";
        res.end = AttemptEnd::Retry;
        return res;
    }

    // Fresh attempt, fresh slate: a resubmission replays every
    // already-completed job from the service's journal/table.
    outcome.outcomes.assign(outcome.jobs.size(),
                            CampaignJobOutcome{});
    bool acked = false;
    std::uint64_t resolved = 0;
    int results_received = 0;
    FrameParser parser;
    Clock::time_point deadline =
        Clock::now() + Millis(opts.timeout_ms);

    for (;;) {
        Frame frame;
        while (parser.next(frame)) {
            deadline = Clock::now() + Millis(opts.timeout_ms);
            switch (frame.type) {
              case FrameType::Reject: {
                ++outcome.report.rejects;
                RejectInfo info;
                try {
                    info = decodeReject(frame.payload);
                } catch (const SimError &) {
                    info.reason = "undecodable reject payload";
                }
                ::close(fd);
                outcome.status = ClientStatus::Rejected;
                outcome.report.error = info.reason;
                if (info.retry_after_ms > 0) {
                    res.end = AttemptEnd::RejectRetry;
                    res.retry_after_ms = info.retry_after_ms;
                } else {
                    res.end = AttemptEnd::Fatal; // e.g. unknown name
                }
                return res;
              }
              case FrameType::SubmitAck: {
                if (frame.key != fingerprint ||
                    frame.aux != outcome.jobs.size()) {
                    ::close(fd);
                    outcome.status = ClientStatus::ProtocolError;
                    outcome.report.error =
                        "SubmitAck disagrees about the campaign "
                        "(fingerprint or job count)";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                acked = true;
                break;
              }
              case FrameType::JobResult: {
                if (!acked ||
                    frame.job_index >= outcome.jobs.size() ||
                    outcome.jobs[frame.job_index].key() !=
                        frame.key) {
                    ::close(fd);
                    outcome.status = ClientStatus::ProtocolError;
                    outcome.report.error =
                        "JobResult for a job this campaign does "
                        "not contain";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                CampaignJobOutcome &o =
                    outcome.outcomes[frame.job_index];
                if (o.state == CampaignJobState::Completed)
                    break; // duplicate delivery is harmless
                try {
                    o.result = decodeSimResult(frame.payload);
                } catch (const SimError &) {
                    ::close(fd);
                    outcome.status = ClientStatus::ProtocolError;
                    outcome.report.error =
                        "undecodable JobResult payload";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                o.state = CampaignJobState::Completed;
                o.from_journal = (frame.aux & 1u) != 0;
                ++outcome.report.results;
                if (o.from_journal)
                    ++outcome.report.replayed;
                ++resolved;
                ++results_received;
                if (faults.fire(ProcFaultKind::DropClientMidStream,
                                -1, results_received, attempt_no)) {
                    // Die abruptly mid-stream: no shutdown, no
                    // goodbye — exactly what a crashed client looks
                    // like to the service.
                    ::close(fd);
                    outcome.status = ClientStatus::ConnectionLost;
                    outcome.report.error =
                        "injected mid-stream drop after " +
                        std::to_string(results_received) +
                        " results";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                break;
              }
              case FrameType::JobFailed: {
                if (!acked ||
                    frame.job_index >= outcome.jobs.size()) {
                    ::close(fd);
                    outcome.status = ClientStatus::ProtocolError;
                    outcome.report.error =
                        "JobFailed for a job this campaign does "
                        "not contain";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                CampaignJobOutcome &o =
                    outcome.outcomes[frame.job_index];
                try {
                    decodeJobError(frame.payload, o.error_kind,
                                   o.error_detail);
                } catch (const SimError &) {
                    o.error_kind = "JobFailed";
                    o.error_detail = "undecodable payload";
                }
                o.state = failureState(o.error_kind);
                ++outcome.report.failures;
                ++resolved;
                break;
              }
              case FrameType::CampaignDone: {
                ::close(fd);
                if (!acked || resolved < outcome.jobs.size()) {
                    outcome.status = ClientStatus::ProtocolError;
                    outcome.report.error =
                        "CampaignDone before every job resolved";
                    res.end = AttemptEnd::Fatal;
                    return res;
                }
                bool all_ok = true;
                for (const CampaignJobOutcome &o : outcome.outcomes)
                    if (!o.ok())
                        all_ok = false;
                outcome.status = all_ok
                                     ? ClientStatus::Completed
                                     : ClientStatus::JobFailures;
                res.end = AttemptEnd::Done;
                return res;
              }
              default:
                break; // Pong etc.: tolerated
            }
        }
        if (parser.corrupt()) {
            ::close(fd);
            outcome.status = ClientStatus::ProtocolError;
            outcome.report.error = "service stream corrupt: " +
                                   parser.corruptReason();
            res.end = AttemptEnd::Fatal;
            return res;
        }

        const Clock::time_point now = Clock::now();
        if (now >= deadline) {
            ::close(fd);
            outcome.status = ClientStatus::ConnectionLost;
            outcome.report.error =
                "service silent for " +
                std::to_string(opts.timeout_ms) + " ms";
            res.end = AttemptEnd::Retry;
            return res;
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        const auto left = std::chrono::duration_cast<Millis>(
            deadline - now);
        const int rc =
            ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            outcome.status = ClientStatus::ConnectionLost;
            outcome.report.error =
                std::string("poll(): ") + std::strerror(errno);
            res.end = AttemptEnd::Retry;
            return res;
        }
        if (rc == 0)
            continue; // deadline re-checked above

        std::uint8_t buf[65536];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n > 0) {
                parser.feed(buf, static_cast<std::size_t>(n));
                if (static_cast<std::size_t>(n) < sizeof buf)
                    break;
                continue;
            }
            if (n == 0) {
                ::close(fd);
                outcome.status = ClientStatus::ConnectionLost;
                outcome.report.error =
                    "service closed the connection mid-stream";
                res.end = AttemptEnd::Retry;
                return res;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            ::close(fd);
            outcome.status = ClientStatus::ConnectionLost;
            outcome.report.error =
                std::string("recv(): ") + std::strerror(errno);
            res.end = AttemptEnd::Retry;
            return res;
        }
    }
}

} // namespace

const char *
clientStatusName(ClientStatus status)
{
    switch (status) {
      case ClientStatus::Completed:
        return "completed";
      case ClientStatus::JobFailures:
        return "job-failures";
      case ClientStatus::Rejected:
        return "rejected";
      case ClientStatus::ConnectionLost:
        return "connection-lost";
      case ClientStatus::ProtocolError:
        return "protocol-error";
    }
    return "unknown";
}

ClientOutcome
runCampaignClient(const ClientOptions &opts)
{
    ClientOutcome outcome;
    // May throw SimError (kind "Config") for a name the client
    // itself does not know — that is a usage error, not a service
    // failure.
    outcome.jobs =
        buildNamedCampaign(opts.ref.name, Cycle{opts.ref.cycles});
    outcome.outcomes.assign(outcome.jobs.size(),
                            CampaignJobOutcome{});
    const std::uint64_t fingerprint =
        campaignFingerprint(outcome.jobs);

    ProcFaultPlan faults = opts.faults;
    RetryPolicy backoff;
    backoff.max_retries = opts.retries;
    backoff.backoff_ms = opts.backoff_ms;
    backoff.jitter_pct = opts.backoff_jitter_pct;

    for (int attempt = 0;; ++attempt) {
        ++outcome.report.attempts;
        const Attempt res =
            runAttempt(opts, faults, attempt, fingerprint, outcome);
        if (res.end == AttemptEnd::Done ||
            res.end == AttemptEnd::Fatal)
            return outcome;
        if (attempt >= opts.retries)
            return outcome; // keep the last attempt's failure story
        // Deterministic jittered backoff, floored by the service's
        // retry-after hint when one was given.
        std::uint64_t wait_ms =
            retryBackoffMs(backoff, fingerprint, attempt);
        if (res.end == AttemptEnd::RejectRetry &&
            res.retry_after_ms > wait_ms)
            wait_ms = res.retry_after_ms;
        if (wait_ms > 0)
            std::this_thread::sleep_for(Millis(wait_ms));
    }
}

} // namespace ckesim
