#include "campaign/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "campaign/campaign_spec.hpp"
#include "campaign/wire.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace ckesim {

namespace {

/**
 * Job lists a service worker has rebuilt from Dispatch campaign-ref
 * payloads, keyed by (name, cycles). Bounded: a service can field
 * many distinct refs over its lifetime, and an unbounded cache would
 * leak in a long-lived worker.
 */
class RefJobCache
{
  public:
    /** Build (or fetch) the job list of @p ref. Throws SimError for
     *  an unknown campaign name. */
    const std::vector<SimJob> &get(const CampaignRef &ref)
    {
        const std::string key =
            ref.name + ":" + std::to_string(ref.cycles);
        for (Entry &e : entries_)
            if (e.key == key)
                return e.jobs;
        if (entries_.size() >= kMaxEntries)
            entries_.erase(entries_.begin());
        Entry e;
        e.key = key;
        e.jobs = buildNamedCampaign(ref.name, Cycle{ref.cycles});
        entries_.push_back(std::move(e));
        return entries_.back().jobs;
    }

  private:
    static constexpr std::size_t kMaxEntries = 8;
    struct Entry
    {
        std::string key;
        std::vector<SimJob> jobs;
    };
    std::vector<Entry> entries_; ///< oldest first
};

using SteadyClock = std::chrono::steady_clock; // LINT-ALLOW(determinism): worker heartbeat pacing, never simulated state

/** Mutable per-job state shared with the run-control poll hook. */
struct WorkerState
{
    int fd = -1;
    int worker_index = 0;
    std::uint32_t job_index = 0;
    std::uint32_t attempt = 0;
    std::uint64_t heartbeat_ms = 25;
    ProcFaultPlan *faults = nullptr;
    SteadyClock::time_point last_beat{};
};

/**
 * The poll hook: fault trigger points first (a worker that is about
 * to die must not heartbeat its way past the liveness window), then
 * a rate-limited heartbeat.
 */
void
onWorkerPoll(WorkerState &st)
{
    const int job = static_cast<int>(st.job_index);
    const int attempt = static_cast<int>(st.attempt);
    if (st.faults->fire(ProcFaultKind::KillWorkerMidJob,
                        st.worker_index, job, attempt)) {
        // A real crash, not an exit path: SIGKILL gives the
        // orchestrator the same evidence a segfault or OOM kill
        // would — a closed socket and a dead pid.
        ::kill(::getpid(), SIGKILL);
    }
    if (st.faults->fire(ProcFaultKind::StallHeartbeat,
                        st.worker_index, job, attempt)) {
        // Wedge forever without burning the host CPU; the
        // orchestrator's liveness deadline must reclaim the job.
        for (;;)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
    }
    const auto now = SteadyClock::now(); // heartbeat pacing only
    if (now - st.last_beat <
        std::chrono::milliseconds(st.heartbeat_ms))
        return;
    st.last_beat = now;
    Frame beat;
    beat.type = FrameType::Heartbeat;
    beat.job_index = st.job_index;
    beat.aux = st.attempt;
    // A vanished orchestrator is handled at the next blocking read;
    // nothing useful to do about a failed heartbeat here.
    (void)writeFrame(st.fd, beat);
}

} // namespace

int
runCampaignWorker(const WorkerConfig &cfg,
                  const std::vector<SimJob> &jobs)
{
    ProcFaultPlan faults = cfg.faults;
    WorkerState st;
    st.fd = cfg.fd;
    st.worker_index = cfg.worker_index;
    st.heartbeat_ms = cfg.heartbeat_ms;
    st.faults = &faults;

    // One serial engine per worker: each dispatched job is computed
    // single-threaded (bit-deterministic), and nested isolated
    // baselines are memoized across this worker's dispatches.
    SweepEngine engine(1);
    engine.setPollHook([&st] { onWorkerPoll(st); });

    Frame hello;
    hello.type = FrameType::Hello;
    hello.aux = static_cast<std::uint32_t>(cfg.worker_index);
    hello.key = campaignFingerprint(jobs);
    if (!writeFrame(cfg.fd, hello))
        return 1;

    RefJobCache ref_jobs;
    for (;;) {
        Frame frame;
        const WireStatus status = readFrameBlocking(cfg.fd, frame);
        if (status == WireStatus::Eof)
            return 0; // orchestrator is gone; nothing left to serve
        if (status == WireStatus::Corrupt)
            return 1;
        if (frame.type == FrameType::Shutdown)
            return 0;
        if (frame.type != FrameType::Dispatch)
            continue; // tolerate unknown-but-valid traffic

        st.job_index = frame.job_index;
        st.attempt = frame.aux;
        st.last_beat = SteadyClock::now(); // heartbeat pacing only

        Frame reply;
        reply.job_index = frame.job_index;
        reply.aux = frame.aux;
        reply.key = frame.key;

        // A Dispatch with a campaign-ref payload names the job list
        // it indexes into (service fleets, where no list was
        // inherited at fork); an empty payload means the inherited
        // list (batch campaigns). Either way the content hash must
        // match or the dispatch is refused.
        const std::vector<SimJob> *list = &jobs;
        std::string ref_error;
        if (!frame.payload.empty()) {
            try {
                list = &ref_jobs.get(decodeCampaignRef(frame.payload));
            } catch (const SimError &e) {
                list = nullptr;
                ref_error = std::string("[") + e.kind() + "] " +
                            e.what();
            }
        }
        if (list == nullptr || frame.job_index >= list->size() ||
            (*list)[frame.job_index].key() != frame.key) {
            reply.type = FrameType::JobError;
            reply.payload = encodeJobError(
                "Dispatch",
                list == nullptr
                    ? "dispatch names a campaign ref this worker "
                      "cannot build: " +
                          ref_error
                    : "dispatch does not match this worker's job "
                      "list (index " +
                          std::to_string(frame.job_index) + ")");
            if (!writeFrame(cfg.fd, reply))
                return 1;
            continue;
        }

        const SimJob &job = (*list)[frame.job_index];
        try {
            const SimResult result = engine.run(job);
            reply.type = FrameType::Result;
            reply.payload = encodeSimResult(result);
        } catch (const SimError &e) {
            reply.type = FrameType::JobError;
            reply.payload = encodeJobError(e.kind(), e.what());
        }

        const int job_idx = static_cast<int>(frame.job_index);
        const int attempt = static_cast<int>(frame.aux);
        if (reply.type == FrameType::Result &&
            faults.fire(ProcFaultKind::DropResult, cfg.worker_index,
                        job_idx, attempt)) {
            // Computed, then silently lost: the orchestrator can
            // only tell via the missing heartbeats.
            continue;
        }
        std::vector<std::uint8_t> bytes = encodeFrame(reply);
        if (reply.type == FrameType::Result &&
            !reply.payload.empty() &&
            faults.fire(ProcFaultKind::CorruptFrame,
                        cfg.worker_index, job_idx, attempt)) {
            // Flip one payload byte after the CRC was computed.
            bytes[kFrameHeaderBytes + reply.payload.size() / 2] ^=
                0xffu;
        }
        if (!writeAll(cfg.fd, bytes))
            return 1;
    }
}

} // namespace ckesim
