/**
 * @file
 * Campaign worker: the child-process half of the campaign layer. A
 * worker is forked by the orchestrator (so it inherits the campaign's
 * job list by value — dispatch is by index + content hash, and the
 * hash is verified on every dispatch), runs one SimJob at a time on a
 * serial in-process SweepEngine, and reports results, structured
 * errors and heartbeats over its socket.
 *
 * Heartbeats ride the simulator's run-control poll cadence: the
 * worker proves liveness exactly as often as the simulation proves
 * forward progress, so a wedged simulation (or a worker stalled by
 * fault injection) goes silent and the orchestrator's liveness
 * deadline reclaims the job.
 */

#ifndef CKESIM_CAMPAIGN_WORKER_HPP
#define CKESIM_CAMPAIGN_WORKER_HPP

#include <cstdint>
#include <vector>

#include "metrics/sim_job.hpp"
#include "sim/procfault.hpp"

namespace ckesim {

/** Everything a forked worker needs to serve its socket. */
struct WorkerConfig
{
    int fd = -1;          ///< worker end of the socketpair
    int worker_index = 0; ///< this worker's slot
    std::uint64_t heartbeat_ms = 25; ///< min gap between heartbeats
    ProcFaultPlan faults; ///< inherited fleet-fault plan
};

/**
 * Serve dispatches from @p cfg.fd against @p jobs until Shutdown or
 * EOF. Returns the intended process exit status (0 = clean shutdown);
 * the caller must pass it to _exit() without running atexit handlers
 * — the worker shares the parent's forked address space.
 */
int runCampaignWorker(const WorkerConfig &cfg,
                      const std::vector<SimJob> &jobs);

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_WORKER_HPP
