#include "campaign/campaign_engine.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "campaign/wire.hpp"
#include "campaign/worker.hpp"
#include "metrics/journal.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace ckesim {

const char *
campaignJobStateName(CampaignJobState state)
{
    switch (state) {
      case CampaignJobState::Completed:
        return "completed";
      case CampaignJobState::Failed:
        return "failed";
      case CampaignJobState::Poisoned:
        return "poisoned";
      case CampaignJobState::Exhausted:
        return "exhausted";
      case CampaignJobState::Drained:
        return "drained";
    }
    return "unknown";
}

bool
CampaignOutcome::allCompleted() const
{
    for (const CampaignJobOutcome &job : jobs)
        if (!job.ok())
            return false;
    return true;
}

std::uint32_t
resultFingerprint(const SimResult &result)
{
    const std::vector<std::uint8_t> bytes = encodeSimResult(result);
    return crc32(bytes.data(), bytes.size());
}

std::string
formatCampaignTable(const std::string &name, std::uint64_t cycles,
                    const std::vector<SimJob> &jobs,
                    const std::vector<CampaignJobOutcome> &outcomes)
{
    if (jobs.size() != outcomes.size()) {
        SimCtx ctx;
        ctx.module = "campaign.table";
        raiseSimError("Campaign", ctx,
                      "job/outcome count mismatch: " +
                          std::to_string(jobs.size()) + " jobs vs " +
                          std::to_string(outcomes.size()) +
                          " outcomes");
    }
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "campaign %s cycles=%llu jobs=%zu "
                  "fingerprint=%016" PRIx64 "\n",
                  name.c_str(),
                  static_cast<unsigned long long>(cycles),
                  jobs.size(), campaignFingerprint(jobs));
    out += line;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const CampaignJobOutcome &o = outcomes[i];
        if (o.ok())
            std::snprintf(line, sizeof line,
                          "%4zu %016" PRIx64 " %-10s %08" PRIx32
                          " %s\n",
                          i, jobs[i].key(),
                          campaignJobStateName(o.state),
                          resultFingerprint(o.result),
                          jobs[i].describe().c_str());
        else
            std::snprintf(line, sizeof line,
                          "%4zu %016" PRIx64 " %-10s %-8s %s\n",
                          i, jobs[i].key(),
                          campaignJobStateName(o.state),
                          o.error_kind.c_str(),
                          jobs[i].describe().c_str());
        out += line;
    }
    return out;
}

std::string
CampaignEngine::shardPath(const std::string &base, int slot)
{
    return base + ".shard" + std::to_string(slot);
}

std::string
CampaignEngine::mergedPath(const std::string &base)
{
    return base + ".merged";
}

CampaignEngine::CampaignEngine(CampaignOptions opts)
    : opts_(std::move(opts))
{
    opts_.workers = std::max(opts_.workers, 1);
    opts_.max_dispatch_attempts =
        std::max(opts_.max_dispatch_attempts, 1);
    opts_.poison_worker_deaths =
        std::max(opts_.poison_worker_deaths, 1);
    for (const ProcFaultSpec &spec : opts_.faults.specs())
        validateProcFaultSpec(spec);
}

// ---- per-campaign state --------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock; // LINT-ALLOW(determinism): fleet liveness timing, never simulated state
using Millis = std::chrono::milliseconds;

/** Largest shard slot probed when resuming (beyond the current
 *  worker count, so shrinking the fleet never loses results). */
constexpr int kMaxResumeShards = 256;

struct PendingDispatch
{
    std::uint32_t job_index = 0;
    int attempt = 0;         ///< 0-based dispatch attempt
    Clock::time_point ready; ///< jittered-backoff gate
};

struct WorkerSlot
{
    pid_t pid = -1;
    int fd = -1;
    FrameParser parser;
    bool alive = false;
    bool running = false;
    std::uint32_t job_index = 0;
    int attempt = 0;
    Clock::time_point last_beat;
};

} // namespace

class CampaignEngine::Run
{
  public:
    Run(CampaignEngine &eng, const std::vector<SimJob> &jobs)
        : eng_(eng), opts_(eng.opts_), jobs_(jobs),
          fingerprint_(campaignFingerprint(jobs))
    {
        outcome_.jobs.resize(jobs_.size());
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            by_key_[jobs_[i].key()].push_back(
                static_cast<std::uint32_t>(i));
    }

    CampaignOutcome execute();

  private:
    bool drainRequested() const
    {
        return eng_.drain_.load(std::memory_order_relaxed);
    }

    void loadJournals();
    void resolveFromRecovered(
        const std::unordered_map<std::uint64_t, SimResult> &found);
    void openShards();

    void resolve(std::uint32_t index, CampaignJobOutcome outcome);
    void resolveKeyCompleted(std::uint64_t key,
                             const SimResult &result, int attempts,
                             bool from_journal, int shard_slot);
    std::size_t unresolved() const
    {
        return jobs_.size() - resolved_count_;
    }

    bool spawnWorker(int slot, bool respawn);
    void fleetLoop();
    void dispatchReady();
    void handleReadable(int slot);
    void handleFrame(int slot, const Frame &frame);
    void workerLost(int slot, bool hang);
    void killWorker(int slot);
    void reclaimJob(std::uint32_t index, int attempt, bool death);
    void checkLiveness();
    void shutdownFleet();

    void runInProcess();
    void drainPending();
    void writeMerged();

    CampaignEngine &eng_;
    const CampaignOptions &opts_;
    const std::vector<SimJob> &jobs_;
    const std::uint64_t fingerprint_;

    CampaignOutcome outcome_;
    std::vector<bool> resolved_;
    std::size_t resolved_count_ = 0;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        by_key_;
    std::unordered_map<std::uint32_t, int> deaths_by_job_;

    std::vector<PendingDispatch> pending_;
    std::vector<WorkerSlot> slots_;
    std::vector<std::unique_ptr<ResultJournal>> shards_;
    ProcFaultPlan orchestrator_faults_;
    int respawns_left_ = 0;
};

// ---- journal recovery ----------------------------------------------------

void
CampaignEngine::Run::loadJournals()
{
    if (opts_.journal_base.empty())
        return;
    std::unordered_map<std::uint64_t, SimResult> found;

    // Probe merged + shard files with the campaign's own keys: the
    // journal API is key-addressed, which is exactly what we need.
    std::vector<std::string> paths;
    const std::string merged = mergedPath(opts_.journal_base);
    if (::access(merged.c_str(), F_OK) == 0)
        paths.push_back(merged);
    for (int slot = 0; slot < kMaxResumeShards; ++slot) {
        const std::string path =
            shardPath(opts_.journal_base, slot);
        if (::access(path.c_str(), F_OK) != 0) {
            if (slot >= opts_.workers)
                break;
            continue;
        }
        paths.push_back(path);
    }
    for (const std::string &path : paths) {
        ResultJournal journal;
        journal.open(path);
        // Probe in submission order (jobs_), not by_key_ bucket
        // order: `found` insertion order feeds recovery accounting,
        // and hash-order probing made that machine-dependent.
        for (const SimJob &job : jobs_) {
            const std::uint64_t key = job.key();
            if (found.count(key) != 0)
                continue;
            SimResult r;
            if (journal.find(key, r))
                found.emplace(key, std::move(r));
        }
    }
    resolveFromRecovered(found);
}

void
CampaignEngine::Run::resolveFromRecovered(
    const std::unordered_map<std::uint64_t, SimResult> &found)
{
    // Resolve in submission order: resolveKeyCompleted appends to
    // journals and outcome records, so walking the unordered_map
    // here would bake hash-bucket order into merged output.
    std::unordered_set<std::uint64_t> done;
    for (const SimJob &job : jobs_) {
        const std::uint64_t key = job.key();
        if (!done.insert(key).second)
            continue;
        const auto it = found.find(key);
        if (it != found.end())
            resolveKeyCompleted(key, it->second, 0,
                                /*from_journal=*/true,
                                /*shard_slot=*/-1);
    }
}

void
CampaignEngine::Run::openShards()
{
    if (opts_.journal_base.empty())
        return;
    shards_.resize(static_cast<std::size_t>(opts_.workers));
    for (int slot = 0; slot < opts_.workers; ++slot) {
        shards_[static_cast<std::size_t>(slot)] =
            std::make_unique<ResultJournal>();
        shards_[static_cast<std::size_t>(slot)]->open(
            shardPath(opts_.journal_base, slot));
    }
}

// ---- resolution ----------------------------------------------------------

void
CampaignEngine::Run::resolve(std::uint32_t index,
                             CampaignJobOutcome outcome)
{
    auto &slot = outcome_.jobs[index];
    if (resolved_[index])
        return;
    resolved_[index] = true;
    ++resolved_count_;
    switch (outcome.state) {
      case CampaignJobState::Completed:
        ++outcome_.report.completed;
        break;
      case CampaignJobState::Failed:
        ++outcome_.report.failed;
        break;
      case CampaignJobState::Poisoned:
        ++outcome_.report.poisoned;
        break;
      case CampaignJobState::Exhausted:
      case CampaignJobState::Drained:
        break;
    }
    slot = std::move(outcome);
}

void
CampaignEngine::Run::resolveKeyCompleted(std::uint64_t key,
                                         const SimResult &result,
                                         int attempts,
                                         bool from_journal,
                                         int shard_slot)
{
    const auto it = by_key_.find(key);
    if (it == by_key_.end())
        return;
    // A second result for an already-resolved key (two duplicate-key
    // jobs in flight at once) adds nothing: the first one was already
    // recorded durably.
    bool any_unresolved = false;
    for (const std::uint32_t index : it->second)
        if (!resolved_[index]) {
            any_unresolved = true;
            break;
        }
    if (!any_unresolved)
        return;
    if (shard_slot >= 0 &&
        shard_slot < static_cast<int>(shards_.size()))
        shards_[static_cast<std::size_t>(shard_slot)]->append(key,
                                                             result);
    for (const std::uint32_t index : it->second) {
        if (resolved_[index])
            continue;
        CampaignJobOutcome out;
        out.state = CampaignJobState::Completed;
        out.result = result;
        out.attempts = attempts;
        out.from_journal = from_journal;
        resolve(index, std::move(out));
        if (from_journal)
            ++outcome_.report.journal_hits;
    }
}

// ---- fleet management ----------------------------------------------------

bool
CampaignEngine::Run::spawnWorker(int slot, bool respawn)
{
    if (orchestrator_faults_.fire(ProcFaultKind::FailSpawn, slot, -1,
                                  respawn ? 1 : 0))
        return false;
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        return false;
    }
    if (pid == 0) {
        // Child: drop every inherited orchestrator-side fd, serve
        // the socket, and leave without running atexit machinery.
        ::close(sv[0]);
        for (const WorkerSlot &other : slots_)
            if (other.alive && other.fd >= 0)
                ::close(other.fd);
        ::signal(SIGTERM, SIG_DFL);
        ::signal(SIGINT, SIG_DFL);
        WorkerConfig wc;
        wc.fd = sv[1];
        wc.worker_index = slot;
        wc.heartbeat_ms = opts_.heartbeat_ms;
        wc.faults = opts_.faults;
        int status = 1;
        try {
            status = runCampaignWorker(wc, jobs_);
        } catch (...) {
            status = 1;
        }
        ::_exit(status);
    }
    ::close(sv[1]);
    const int flags = ::fcntl(sv[0], F_GETFL, 0);
    (void)::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);

    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    ws = WorkerSlot{};
    ws.pid = pid;
    ws.fd = sv[0];
    ws.alive = true;
    ws.last_beat = Clock::now(); // fleet liveness timing
    if (respawn)
        ++outcome_.report.workers_respawned;
    return true;
}

void
CampaignEngine::Run::killWorker(int slot)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    if (!ws.alive)
        return;
    ::kill(ws.pid, SIGKILL);
}

void
CampaignEngine::Run::reclaimJob(std::uint32_t index, int attempt,
                                bool death)
{
    if (resolved_[index])
        return;
    const std::uint64_t key = jobs_[index].key();
    if (death) {
        const int deaths = ++deaths_by_job_[index];
        if (deaths >= opts_.poison_worker_deaths) {
            CampaignJobOutcome out;
            out.state = CampaignJobState::Poisoned;
            out.error_kind = "Poisoned";
            out.error_detail =
                "job " + std::to_string(index) + " (" +
                jobs_[index].describe() + ") killed " +
                std::to_string(deaths) +
                " worker(s); quarantined instead of re-dispatched";
            out.attempts = attempt + 1;
            resolve(index, std::move(out));
            return;
        }
    }
    if (attempt + 1 >= opts_.max_dispatch_attempts) {
        CampaignJobOutcome out;
        out.state = CampaignJobState::Exhausted;
        out.error_kind = "Dispatch";
        out.error_detail =
            "job " + std::to_string(index) + " spent all " +
            std::to_string(opts_.max_dispatch_attempts) +
            " dispatch attempts without returning a result";
        out.attempts = attempt + 1;
        resolve(index, std::move(out));
        return;
    }
    PendingDispatch pd;
    pd.job_index = index;
    pd.attempt = attempt + 1;
    RetryPolicy policy;
    policy.backoff_ms = opts_.backoff_base_ms;
    policy.jitter_pct = opts_.backoff_jitter_pct;
    pd.ready = Clock::now() + // re-dispatch backoff gate
               Millis(retryBackoffMs(policy, key, attempt));
    pending_.push_back(pd);
    ++outcome_.report.redispatched;
}

void
CampaignEngine::Run::workerLost(int slot, bool hang)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    if (!ws.alive)
        return;
    if (hang) {
        killWorker(slot);
        ++outcome_.report.hung_workers_killed;
    }
    int status = 0;
    (void)::waitpid(ws.pid, &status, 0);
    ::close(ws.fd);
    ws.fd = -1;
    ws.alive = false;
    ++outcome_.report.worker_deaths;

    const bool owned_job = ws.running;
    const std::uint32_t index = ws.job_index;
    const int attempt = ws.attempt;
    ws.running = false;
    if (owned_job)
        reclaimJob(index, attempt, /*death=*/true);

    // Replace the worker while there is still work it could do.
    if (unresolved() > 0 && !drainRequested() &&
        respawns_left_ > 0) {
        --respawns_left_;
        (void)spawnWorker(slot, /*respawn=*/true);
    }
}

void
CampaignEngine::Run::dispatchReady()
{
    if (drainRequested())
        return;
    const auto now = Clock::now(); // backoff gate comparison
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        WorkerSlot &ws = slots_[s];
        if (!ws.alive || ws.running)
            continue;
        // Purge dispatches for jobs resolved some other way (journal
        // hit on a duplicate key, poison quarantine), then take the
        // first whose backoff gate has opened.
        pending_.erase(
            std::remove_if(pending_.begin(), pending_.end(),
                           [this](const PendingDispatch &pd) {
                               return resolved_[pd.job_index];
                           }),
            pending_.end());
        auto it = pending_.begin();
        while (it != pending_.end() && it->ready > now)
            ++it;
        if (it == pending_.end())
            return;
        const PendingDispatch pd = *it;
        pending_.erase(it);

        Frame dispatch;
        dispatch.type = FrameType::Dispatch;
        dispatch.job_index = pd.job_index;
        dispatch.aux = static_cast<std::uint32_t>(pd.attempt);
        dispatch.key = jobs_[pd.job_index].key();
        if (!writeFrame(ws.fd, dispatch)) {
            // The worker is unreachable; requeue and reap it.
            pending_.push_back(pd);
            workerLost(static_cast<int>(s), /*hang=*/false);
            continue;
        }
        ws.running = true;
        ws.job_index = pd.job_index;
        ws.attempt = pd.attempt;
        ws.last_beat = now;
        ++outcome_.report.dispatched;
    }
}

void
CampaignEngine::Run::handleFrame(int slot, const Frame &frame)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    switch (frame.type) {
      case FrameType::Hello:
        if (frame.key != fingerprint_) {
            // A worker that disagrees about the campaign cannot be
            // trusted with index-based dispatch.
            ++outcome_.report.corrupt_frames;
            workerLost(slot, /*hang=*/true);
            return;
        }
        ws.last_beat = Clock::now(); // fleet liveness timing
        break;
      case FrameType::Heartbeat:
        ws.last_beat = Clock::now(); // fleet liveness timing
        ++outcome_.report.heartbeats;
        break;
      case FrameType::Result: {
        if (!ws.running || frame.job_index != ws.job_index ||
            frame.key != jobs_[ws.job_index].key()) {
            ++outcome_.report.corrupt_frames;
            workerLost(slot, /*hang=*/true);
            return;
        }
        SimResult result;
        try {
            result = decodeSimResult(frame.payload);
        } catch (const SimError &) {
            ++outcome_.report.corrupt_frames;
            workerLost(slot, /*hang=*/true);
            return;
        }
        ws.running = false;
        ws.last_beat = Clock::now(); // fleet liveness timing
        resolveKeyCompleted(frame.key, result, ws.attempt + 1,
                            /*from_journal=*/false, slot);
        break;
      }
      case FrameType::JobError: {
        if (!ws.running || frame.job_index != ws.job_index) {
            ++outcome_.report.corrupt_frames;
            workerLost(slot, /*hang=*/true);
            return;
        }
        CampaignJobOutcome out;
        out.state = CampaignJobState::Failed;
        try {
            decodeJobError(frame.payload, out.error_kind,
                           out.error_detail);
        } catch (const SimError &) {
            ++outcome_.report.corrupt_frames;
            workerLost(slot, /*hang=*/true);
            return;
        }
        out.attempts = ws.attempt + 1;
        ws.running = false;
        ws.last_beat = Clock::now(); // fleet liveness timing
        resolve(ws.job_index, std::move(out));
        break;
      }
      default:
        // Orchestrator-bound streams must never carry dispatch,
        // shutdown or submission-protocol frames.
        ++outcome_.report.corrupt_frames;
        workerLost(slot, /*hang=*/true);
        break;
    }
}

void
CampaignEngine::Run::handleReadable(int slot)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(ws.fd, chunk, sizeof chunk);
        if (n > 0) {
            ws.parser.feed(chunk,
                           static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof chunk))
                break;
            continue;
        }
        if (n == 0) {
            workerLost(slot, /*hang=*/false);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        workerLost(slot, /*hang=*/false);
        return;
    }
    if (ws.parser.corrupt()) {
        ++outcome_.report.corrupt_frames;
        workerLost(slot, /*hang=*/true);
        return;
    }
    Frame frame;
    while (ws.alive && ws.parser.next(frame))
        handleFrame(slot, frame);
}

void
CampaignEngine::Run::checkLiveness()
{
    const auto now = Clock::now(); // fleet liveness timing
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        WorkerSlot &ws = slots_[s];
        if (!ws.alive || !ws.running)
            continue;
        if (now - ws.last_beat >
            Millis(opts_.liveness_deadline_ms))
            workerLost(static_cast<int>(s), /*hang=*/true);
    }
}

void
CampaignEngine::Run::drainPending()
{
    outcome_.report.drain_requested = true;
    for (const PendingDispatch &pd : pending_) {
        if (resolved_[pd.job_index])
            continue;
        CampaignJobOutcome out;
        out.state = CampaignJobState::Drained;
        out.error_kind = "Drained";
        out.error_detail = "campaign drained before the job ran";
        out.attempts = pd.attempt;
        resolve(pd.job_index, std::move(out));
        ++outcome_.report.drained;
    }
    pending_.clear();
}

void
CampaignEngine::Run::fleetLoop()
{
    while (unresolved() > 0) {
        // Re-drained every iteration: a job reclaimed from a worker
        // that died *after* the drain request lands back in pending_
        // and must be marked Drained too, or the loop never ends.
        if (drainRequested())
            drainPending();
        const bool any_alive = std::any_of(
            slots_.begin(), slots_.end(),
            [](const WorkerSlot &ws) { return ws.alive; });
        if (!any_alive) {
            // The fleet is gone and cannot be replaced: finish the
            // rest in-process rather than abandoning the campaign.
            outcome_.report.degraded_in_process = true;
            runInProcess();
            return;
        }

        dispatchReady();

        std::vector<struct pollfd> pfds;
        std::vector<int> pfd_slots;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].alive)
                continue;
            struct pollfd pfd;
            pfd.fd = slots_[s].fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            pfds.push_back(pfd);
            pfd_slots.push_back(static_cast<int>(s));
        }
        const int n =
            ::poll(pfds.data(),
                   static_cast<nfds_t>(pfds.size()), 20);
        if (n < 0 && errno != EINTR)
            break; // should not happen; avoid spinning on error
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            const int slot = pfd_slots[i];
            if (!slots_[static_cast<std::size_t>(slot)].alive)
                continue;
            if ((pfds[i].revents & POLLIN) != 0)
                handleReadable(slot);
            else if ((pfds[i].revents & (POLLHUP | POLLERR)) != 0)
                workerLost(slot, /*hang=*/false);
        }
        checkLiveness();
    }
}

void
CampaignEngine::Run::shutdownFleet()
{
    Frame shutdown;
    shutdown.type = FrameType::Shutdown;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        WorkerSlot &ws = slots_[s];
        if (!ws.alive)
            continue;
        (void)writeFrame(ws.fd, shutdown);
    }
    // Grace period, then force.
    const auto deadline = Clock::now() + Millis(2000); // shutdown grace period
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        WorkerSlot &ws = slots_[s];
        if (!ws.alive)
            continue;
        for (;;) {
            int status = 0;
            const pid_t got = ::waitpid(ws.pid, &status, WNOHANG);
            if (got == ws.pid || got < 0)
                break;
            if (Clock::now() >= deadline) { // shutdown grace period
                ::kill(ws.pid, SIGKILL);
                (void)::waitpid(ws.pid, &status, 0);
                break;
            }
            struct timespec ts = {0, 5 * 1000 * 1000};
            ::nanosleep(&ts, nullptr);
        }
        ::close(ws.fd);
        ws.fd = -1;
        ws.alive = false;
    }
}

// ---- degraded mode -------------------------------------------------------

void
CampaignEngine::Run::runInProcess()
{
    SweepEngine engine(1);
    ResultJournal *shard =
        shards_.empty() ? nullptr : shards_.front().get();
    if (shard != nullptr)
        engine.setJournal(shard);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const std::uint32_t index = static_cast<std::uint32_t>(i);
        if (resolved_[index])
            continue;
        if (drainRequested()) {
            CampaignJobOutcome out;
            out.state = CampaignJobState::Drained;
            out.error_kind = "Drained";
            out.error_detail =
                "campaign drained before the job ran";
            resolve(index, std::move(out));
            ++outcome_.report.drained;
            continue;
        }
        try {
            const SimResult result = engine.run(jobs_[index]);
            resolveKeyCompleted(jobs_[index].key(), result, 1,
                                /*from_journal=*/false,
                                /*shard_slot=*/-1);
        } catch (const SimError &e) {
            CampaignJobOutcome out;
            out.state = CampaignJobState::Failed;
            out.error_kind = e.kind();
            out.error_detail = e.what();
            out.attempts = 1;
            resolve(index, std::move(out));
        }
    }
}

// ---- merge ---------------------------------------------------------------

void
CampaignEngine::Run::writeMerged()
{
    if (opts_.journal_base.empty())
        return;
    const std::string path = mergedPath(opts_.journal_base);
    // Rebuilt from scratch every completion so the merged journal is
    // a pure function of (job list, results): submission order,
    // duplicate keys collapsed to their first occurrence.
    (void)::unlink(path.c_str());
    ResultJournal merged;
    merged.open(path);
    std::unordered_set<std::uint64_t> written;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const CampaignJobOutcome &out = outcome_.jobs[i];
        if (!out.ok())
            continue;
        const std::uint64_t key = jobs_[i].key();
        if (!written.insert(key).second)
            continue;
        merged.append(key, out.result);
    }
}

// ---- top level -----------------------------------------------------------

CampaignOutcome
CampaignEngine::Run::execute()
{
    resolved_.assign(jobs_.size(), false);
    respawns_left_ = opts_.max_worker_respawns;
    orchestrator_faults_ = opts_.faults;

    loadJournals();
    openShards();

    if (unresolved() > 0) {
        if (opts_.force_in_process) {
            outcome_.report.degraded_in_process = true;
            runInProcess();
        } else {
            slots_.resize(
                static_cast<std::size_t>(opts_.workers));
            int spawned = 0;
            for (int s = 0; s < opts_.workers; ++s)
                if (spawnWorker(s, /*respawn=*/false))
                    ++spawned;
            if (spawned == 0) {
                // Fleet unavailable (fork failure, injected spawn
                // fault): degrade rather than fail the campaign.
                outcome_.report.degraded_in_process = true;
                runInProcess();
            } else {
                pending_.reserve(jobs_.size());
                const auto now = Clock::now(); // initial dispatch gate
                for (std::size_t i = 0; i < jobs_.size(); ++i) {
                    if (resolved_[i])
                        continue;
                    PendingDispatch pd;
                    pd.job_index =
                        static_cast<std::uint32_t>(i);
                    pd.attempt = 0;
                    pd.ready = now;
                    pending_.push_back(pd);
                }
                fleetLoop();
                shutdownFleet();
            }
        }
    }

    if (drainRequested())
        outcome_.report.drain_requested = true;
    writeMerged();
    return std::move(outcome_);
}

CampaignOutcome
CampaignEngine::run(const std::vector<SimJob> &jobs)
{
    Run run(*this, jobs);
    return run.execute();
}

} // namespace ckesim
