#include "campaign/service.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "campaign/wire.hpp"
#include "campaign/worker.hpp"
#include "metrics/journal.hpp"
#include "sim/check.hpp"

namespace ckesim {

namespace {

using Clock = std::chrono::steady_clock; // LINT-ALLOW(determinism): host-side liveness/idle timing, never simulated state
using Millis = std::chrono::milliseconds;

[[noreturn]] void
raiseService(const std::string &detail)
{
    SimCtx ctx;
    ctx.module = "campaign.service";
    raiseSimError("Service", ctx, detail);
}

/** Terminal phase of one deduped job. */
enum class JobPhase : std::uint8_t {
    Queued = 0, ///< waiting for a worker
    Dispatched, ///< running on owner_slot
    Done,       ///< result is valid
    Failed,     ///< error_kind/error_detail are valid
};

/** One (campaign, job index) waiting on a job's terminal state. */
struct Subscriber
{
    std::uint64_t campaign_id = 0;
    std::uint32_t index = 0;
};

/**
 * One content-hash-deduped job. Every submission naming this key —
 * from any client, in any campaign — subscribes here; the job runs
 * at most once per service lifetime and at most once per journal
 * history.
 */
struct JobEntry
{
    JobPhase phase = JobPhase::Queued;
    CampaignRef ref;              ///< campaign that first named it
    std::uint32_t ref_index = 0;  ///< index within ref's job list
    int attempts = 0;             ///< dispatch attempts consumed
    int owner_slot = -1;          ///< worker running it (Dispatched)
    bool from_journal = false;    ///< Done without dispatching
    SimResult result;             ///< Done
    std::string error_kind;       ///< Failed
    std::string error_detail;     ///< Failed
    std::vector<Subscriber> subs; ///< live subscriptions
};

/** One admitted submission. */
struct Campaign
{
    int client_fd = -1; ///< -1 = orphaned (client disconnected)
    CampaignRef ref;
    std::vector<SimJob> jobs;
    std::vector<std::uint8_t> ref_payload; ///< cached encodeCampaignRef
    std::uint64_t resolved = 0;  ///< jobs at a terminal state
    std::uint64_t completed = 0; ///< jobs that produced a result
};

/** One client connection. */
struct Client
{
    int fd = -1;
    FrameParser parser;
    Clock::time_point last_activity{};
    std::vector<std::uint64_t> campaigns; ///< in-flight submissions
};

/** One worker slot of the persistent fleet. */
struct WorkerSlot
{
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    bool hello_seen = false;
    bool busy = false;
    std::uint64_t busy_key = 0;
    FrameParser parser;
    Clock::time_point last_beat{};
};

} // namespace

/** All serving state; one instance per serve() call. */
class CampaignService::Loop
{
  public:
    Loop(const ServiceOptions &opts, const std::atomic<bool> &drain)
        : opts_(opts), drain_flag_(drain)
    {
        if (opts_.workers < 1)
            opts_.workers = 1;
    }

    ServiceReport run();

  private:
    // ---- setup / teardown ------------------------------------------------
    void bindSocket();
    void openJournals();
    void startFleet();
    void shutdownFleet();

    // ---- fleet -----------------------------------------------------------
    bool spawnWorker(int slot, bool respawn);
    void onWorkerDeath(int slot, const char *why);
    void killWorker(int slot, const char *why);
    void checkWorkerLiveness(Clock::time_point now);
    void handleWorkerInput(int slot);
    void handleWorkerFrame(int slot, const Frame &frame);
    void pumpDispatch();

    // ---- jobs ------------------------------------------------------------
    bool findInShards(std::uint64_t key, SimResult &out) const;
    void reclaimJob(std::uint64_t key);
    void completeJob(std::uint64_t key, const SimResult &result,
                     int slot);
    void failJob(std::uint64_t key, const std::string &kind,
                 const std::string &detail);
    void notifyResult(const Subscriber &sub, std::uint64_t key,
                      const JobEntry &entry, bool replay);
    void notifyFailure(const Subscriber &sub, std::uint64_t key,
                       const JobEntry &entry);
    void resolveOne(std::uint64_t campaign_id, bool completed);

    // ---- clients ---------------------------------------------------------
    void acceptClients();
    void handleClientInput(int fd);
    void handleClientFrame(int fd, const Frame &frame);
    void handleSubmit(int fd, const Frame &frame);
    void rejectSubmit(int fd, const std::string &reason,
                      std::uint64_t retry_after_ms);
    void dropClient(int fd, const char *why);
    void checkClientIdle(Clock::time_point now);
    bool sendToCampaign(std::uint64_t campaign_id, const Frame &frame);

    // ---- drain -----------------------------------------------------------
    void beginDrain();
    bool drained() const;

    ServiceOptions opts_;
    const std::atomic<bool> &drain_flag_;
    bool draining_ = false;

    int listen_fd_ = -1;
    std::vector<WorkerSlot> slots_;
    int respawns_left_ = 0;

    // std::map keeps every fan-out and drain sweep in deterministic
    // order — the frame stream a client sees must not depend on hash
    // layout.
    std::map<int, Client> clients_;
    std::map<std::uint64_t, Campaign> campaigns_;
    std::map<std::uint64_t, JobEntry> jobs_;
    std::deque<std::uint64_t> queue_; ///< Queued keys, FIFO
    std::uint64_t next_campaign_id_ = 1;

    std::vector<std::unique_ptr<ResultJournal>> shards_;

    ServiceReport report_;
};

// ---- setup / teardown ----------------------------------------------------

void
CampaignService::Loop::bindSocket()
{
    struct sockaddr_un addr;
    if (opts_.socket_path.empty() ||
        opts_.socket_path.size() >= sizeof addr.sun_path)
        raiseService("socket path empty or longer than " +
                     std::to_string(sizeof addr.sun_path - 1) +
                     " bytes: '" + opts_.socket_path + "'");

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        raiseService(std::string("socket(): ") +
                     std::strerror(errno));
    // A stale socket file from a killed predecessor must not block
    // the rebind; --resume recovery depends on it.
    (void)::unlink(opts_.socket_path.c_str());

    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listen_fd_,
               reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0)
        raiseService("bind('" + opts_.socket_path +
                     "'): " + std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        raiseService(std::string("listen(): ") +
                     std::strerror(errno));
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    (void)::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
}

void
CampaignService::Loop::openJournals()
{
    if (opts_.journal_base.empty())
        return;
    if (!opts_.resume) {
        // Fresh service: a journal recorded by a previous lifetime
        // must not satisfy this one's submissions.
        for (int slot = 0; slot < 256; ++slot) {
            const std::string p = CampaignEngine::shardPath(
                opts_.journal_base, slot);
            if (::unlink(p.c_str()) != 0)
                break;
        }
    }
    // One shard per worker slot for appends; on resume, shards left
    // by a previous (possibly larger) fleet are replayed too so no
    // durable result is invisible.
    for (int slot = 0; slot < opts_.workers; ++slot) {
        auto j = std::make_unique<ResultJournal>();
        j->open(CampaignEngine::shardPath(opts_.journal_base, slot));
        shards_.push_back(std::move(j));
    }
    if (opts_.resume) {
        for (int slot = opts_.workers; slot < 256; ++slot) {
            const std::string p = CampaignEngine::shardPath(
                opts_.journal_base, slot);
            if (::access(p.c_str(), F_OK) != 0)
                break;
            auto j = std::make_unique<ResultJournal>();
            j->open(p);
            shards_.push_back(std::move(j));
        }
    }
}

void
CampaignService::Loop::startFleet()
{
    slots_.resize(static_cast<std::size_t>(opts_.workers));
    respawns_left_ = opts_.max_worker_respawns;
    int alive = 0;
    for (int slot = 0; slot < opts_.workers; ++slot)
        if (spawnWorker(slot, false))
            ++alive;
    if (alive == 0)
        raiseService("could not spawn any of " +
                     std::to_string(opts_.workers) + " workers");
}

void
CampaignService::Loop::shutdownFleet()
{
    Frame bye;
    bye.type = FrameType::Shutdown;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        WorkerSlot &ws = slots_[slot];
        if (!ws.alive)
            continue;
        (void)writeFrame(ws.fd, bye);
    }
    for (WorkerSlot &ws : slots_) {
        if (ws.pid > 0) {
            int status = 0;
            if (::waitpid(ws.pid, &status, WNOHANG) == 0) {
                ::kill(ws.pid, SIGKILL);
                (void)::waitpid(ws.pid, &status, 0);
            }
        }
        if (ws.fd >= 0)
            ::close(ws.fd);
        ws = WorkerSlot{};
    }
}

// ---- fleet ---------------------------------------------------------------

bool
CampaignService::Loop::spawnWorker(int slot, bool respawn)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        return false;
    }
    if (pid == 0) {
        // Child: drop every service-side fd (listen socket, client
        // connections, sibling workers), serve the socket with an
        // EMPTY inherited job list — every Dispatch carries a
        // campaign ref the worker rebuilds locally — and leave
        // without running atexit machinery.
        ::close(sv[0]);
        if (listen_fd_ >= 0)
            ::close(listen_fd_);
        for (const auto &entry : clients_)
            ::close(entry.first);
        for (const WorkerSlot &other : slots_)
            if (other.alive && other.fd >= 0)
                ::close(other.fd);
        ::signal(SIGTERM, SIG_DFL);
        ::signal(SIGINT, SIG_DFL);
        WorkerConfig wc;
        wc.fd = sv[1];
        wc.worker_index = slot;
        wc.heartbeat_ms = opts_.heartbeat_ms;
        wc.faults = opts_.faults;
        int status = 1;
        try {
            status = runCampaignWorker(wc, {});
        } catch (...) {
            status = 1;
        }
        ::_exit(status);
    }
    ::close(sv[1]);
    const int flags = ::fcntl(sv[0], F_GETFL, 0);
    (void)::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);

    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    ws = WorkerSlot{};
    ws.pid = pid;
    ws.fd = sv[0];
    ws.alive = true;
    ws.last_beat = Clock::now(); // fleet liveness timing
    if (respawn)
        ++report_.workers_respawned;
    return true;
}

void
CampaignService::Loop::onWorkerDeath(int slot, const char *why)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    ++report_.worker_deaths;
    std::fprintf(stderr, "campaignd: worker %d died (%s)\n", slot,
                 why);
    if (ws.fd >= 0)
        ::close(ws.fd);
    if (ws.pid > 0) {
        int status = 0;
        if (::waitpid(ws.pid, &status, WNOHANG) == 0) {
            ::kill(ws.pid, SIGKILL);
            (void)::waitpid(ws.pid, &status, 0);
        }
    }
    const bool was_busy = ws.busy;
    const std::uint64_t key = ws.busy_key;
    ws = WorkerSlot{};

    if (was_busy)
        reclaimJob(key);
    if (respawns_left_ > 0) {
        --respawns_left_;
        (void)spawnWorker(slot, true);
    }
}

void
CampaignService::Loop::killWorker(int slot, const char *why)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    if (ws.pid > 0)
        ::kill(ws.pid, SIGKILL);
    onWorkerDeath(slot, why);
}

void
CampaignService::Loop::checkWorkerLiveness(Clock::time_point now)
{
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        WorkerSlot &ws = slots_[slot];
        if (!ws.alive || !ws.busy)
            continue;
        if (now - ws.last_beat >
            Millis(opts_.liveness_deadline_ms)) {
            ++report_.hung_workers_killed;
            killWorker(static_cast<int>(slot), "liveness deadline");
        }
    }
}

void
CampaignService::Loop::handleWorkerInput(int slot)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    std::uint8_t buf[65536];
    for (;;) {
        const ssize_t n = ::recv(ws.fd, buf, sizeof buf, 0);
        if (n > 0) {
            ws.parser.feed(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof buf)
                break;
            continue;
        }
        if (n == 0) {
            onWorkerDeath(slot, "socket closed");
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        onWorkerDeath(slot, "read error");
        return;
    }
    Frame frame;
    while (ws.alive && ws.parser.next(frame))
        handleWorkerFrame(slot, frame);
    if (ws.alive && ws.parser.corrupt()) {
        // A worker whose stream misaligned cannot be trusted with
        // anything it sends afterwards: kill and re-dispatch.
        killWorker(slot, ws.parser.corruptReason().c_str());
    }
}

void
CampaignService::Loop::handleWorkerFrame(int slot, const Frame &frame)
{
    WorkerSlot &ws = slots_[static_cast<std::size_t>(slot)];
    ws.last_beat = Clock::now(); // any frame proves liveness
    switch (frame.type) {
      case FrameType::Hello: {
        // A service worker inherits no job list; its Hello must
        // fingerprint the empty campaign or it was built wrong.
        static const std::uint64_t kEmptyFingerprint =
            campaignFingerprint({});
        if (frame.key != kEmptyFingerprint) {
            killWorker(slot, "hello fingerprint mismatch");
            return;
        }
        ws.hello_seen = true;
        return;
      }
      case FrameType::Heartbeat:
        return;
      case FrameType::Result: {
        if (!ws.busy || frame.key != ws.busy_key)
            return; // stale result from a reclaimed dispatch
        SimResult result;
        try {
            result = decodeSimResult(frame.payload);
        } catch (const SimError &) {
            killWorker(slot, "undecodable result payload");
            return;
        }
        ws.busy = false;
        ws.busy_key = 0;
        completeJob(frame.key, result, slot);
        return;
      }
      case FrameType::JobError: {
        if (!ws.busy || frame.key != ws.busy_key)
            return;
        std::string kind = "JobError";
        std::string detail;
        try {
            decodeJobError(frame.payload, kind, detail);
        } catch (const SimError &) {
            killWorker(slot, "undecodable job-error payload");
            return;
        }
        ws.busy = false;
        ws.busy_key = 0;
        failJob(frame.key, kind, detail);
        return;
      }
      default:
        return; // tolerate unknown-but-valid traffic
    }
}

void
CampaignService::Loop::pumpDispatch()
{
    for (std::size_t slot = 0;
         slot < slots_.size() && !queue_.empty(); ++slot) {
        WorkerSlot &ws = slots_[slot];
        if (!ws.alive || !ws.hello_seen || ws.busy)
            continue;
        const std::uint64_t key = queue_.front();
        auto it = jobs_.find(key);
        if (it == jobs_.end() ||
            it->second.phase != JobPhase::Queued) {
            queue_.pop_front();
            continue;
        }
        JobEntry &entry = it->second;

        Frame dispatch;
        dispatch.type = FrameType::Dispatch;
        dispatch.job_index = entry.ref_index;
        dispatch.aux = static_cast<std::uint32_t>(entry.attempts);
        dispatch.key = key;
        // The ref payload names the job list the index belongs to;
        // the worker rebuilds it locally and verifies the hash.
        auto cit = campaigns_.end();
        for (const Subscriber &sub : entry.subs) {
            cit = campaigns_.find(sub.campaign_id);
            if (cit != campaigns_.end())
                break;
        }
        if (cit != campaigns_.end() &&
            cit->second.ref.name == entry.ref.name &&
            cit->second.ref.cycles == entry.ref.cycles)
            dispatch.payload = cit->second.ref_payload;
        else
            dispatch.payload = encodeCampaignRef(entry.ref);

        if (!writeFrame(ws.fd, dispatch)) {
            onWorkerDeath(static_cast<int>(slot), "dispatch failed");
            continue;
        }
        queue_.pop_front();
        entry.phase = JobPhase::Dispatched;
        entry.owner_slot = static_cast<int>(slot);
        ++entry.attempts;
        ws.busy = true;
        ws.busy_key = key;
        ws.last_beat = Clock::now(); // dispatch restarts the clock
        ++report_.dispatched;
        if (entry.attempts > 1)
            ++report_.redispatched;
    }
}

// ---- jobs ----------------------------------------------------------------

bool
CampaignService::Loop::findInShards(std::uint64_t key,
                                    SimResult &out) const
{
    for (const auto &shard : shards_)
        if (shard->find(key, out))
            return true;
    return false;
}

void
CampaignService::Loop::reclaimJob(std::uint64_t key)
{
    auto it = jobs_.find(key);
    if (it == jobs_.end() || it->second.phase != JobPhase::Dispatched)
        return;
    JobEntry &entry = it->second;
    entry.owner_slot = -1;
    if (entry.attempts >= opts_.max_dispatch_attempts) {
        failJob(key, "Exhausted",
                "gave up after " + std::to_string(entry.attempts) +
                    " dispatch attempts");
        return;
    }
    entry.phase = JobPhase::Queued;
    queue_.push_front(key); // reclaimed work goes first
}

void
CampaignService::Loop::completeJob(std::uint64_t key,
                                   const SimResult &result, int slot)
{
    auto it = jobs_.find(key);
    if (it == jobs_.end() || it->second.phase == JobPhase::Done)
        return;
    JobEntry &entry = it->second;
    entry.phase = JobPhase::Done;
    entry.owner_slot = -1;
    entry.result = result;
    // Durable before visible: a result is journaled (fsync'd) before
    // any client hears about it, so a service crash between the two
    // cannot strand a client with a result the resume cannot replay.
    // One append per key per journal history: only freshly computed
    // results land here, and a key is dispatched at most once.
    if (!shards_.empty()) {
        const std::size_t shard =
            std::min(static_cast<std::size_t>(slot),
                     shards_.size() - 1);
        shards_[shard]->append(key, result);
    }
    ++report_.jobs_completed;
    for (const Subscriber &sub : entry.subs) {
        notifyResult(sub, key, entry, false);
        resolveOne(sub.campaign_id, true);
    }
    entry.subs.clear();
}

void
CampaignService::Loop::failJob(std::uint64_t key,
                               const std::string &kind,
                               const std::string &detail)
{
    auto it = jobs_.find(key);
    if (it == jobs_.end() || it->second.phase == JobPhase::Done ||
        it->second.phase == JobPhase::Failed)
        return;
    JobEntry &entry = it->second;
    entry.phase = JobPhase::Failed;
    entry.owner_slot = -1;
    entry.error_kind = kind;
    entry.error_detail = detail;
    ++report_.jobs_failed;
    for (const Subscriber &sub : entry.subs) {
        notifyFailure(sub, key, entry);
        resolveOne(sub.campaign_id, false);
    }
    entry.subs.clear();
}

void
CampaignService::Loop::notifyResult(const Subscriber &sub,
                                    std::uint64_t key,
                                    const JobEntry &entry, bool replay)
{
    Frame frame;
    frame.type = FrameType::JobResult;
    frame.job_index = sub.index;
    frame.aux = replay ? 1u : 0u;
    frame.key = key;
    frame.payload = encodeSimResult(entry.result);
    (void)sendToCampaign(sub.campaign_id, frame);
}

void
CampaignService::Loop::notifyFailure(const Subscriber &sub,
                                     std::uint64_t key,
                                     const JobEntry &entry)
{
    Frame frame;
    frame.type = FrameType::JobFailed;
    frame.job_index = sub.index;
    frame.key = key;
    frame.payload =
        encodeJobError(entry.error_kind, entry.error_detail);
    (void)sendToCampaign(sub.campaign_id, frame);
}

void
CampaignService::Loop::resolveOne(std::uint64_t campaign_id,
                                  bool completed)
{
    auto it = campaigns_.find(campaign_id);
    if (it == campaigns_.end())
        return;
    Campaign &c = it->second;
    ++c.resolved;
    if (completed)
        ++c.completed;
    if (c.resolved < c.jobs.size())
        return;

    Frame done;
    done.type = FrameType::CampaignDone;
    done.aux = static_cast<std::uint32_t>(c.completed);
    done.key = campaignFingerprint(c.jobs);
    (void)sendToCampaign(campaign_id, done);
    ++report_.campaigns_done;

    auto cit = clients_.find(c.client_fd);
    if (cit != clients_.end()) {
        auto &list = cit->second.campaigns;
        list.erase(
            std::remove(list.begin(), list.end(), campaign_id),
            list.end());
    }
    campaigns_.erase(it);
}

// ---- clients -------------------------------------------------------------

void
CampaignService::Loop::acceptClients()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept failure
        }
        const int flags = ::fcntl(fd, F_GETFL, 0);
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        Client &client = clients_[fd];
        client.fd = fd;
        client.last_activity = Clock::now(); // idle-timeout basis
        ++report_.connections;
    }
}

void
CampaignService::Loop::handleClientInput(int fd)
{
    auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    Client &client = it->second;
    client.last_activity = Clock::now(); // traffic refreshes idle

    std::uint8_t buf[65536];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            client.parser.feed(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof buf)
                break;
            continue;
        }
        if (n == 0) {
            dropClient(fd, "disconnected");
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        dropClient(fd, "read error");
        return;
    }
    Frame frame;
    while (clients_.count(fd) != 0 && client.parser.next(frame))
        handleClientFrame(fd, frame);
    if (clients_.count(fd) != 0 && client.parser.corrupt()) {
        // Sticky corruption poisons THIS stream only; every other
        // client keeps its connection.
        ++report_.client_corrupt;
        std::fprintf(stderr,
                     "campaignd: dropping corrupt client (%s)\n",
                     client.parser.corruptReason().c_str());
        dropClient(fd, "corrupt stream");
    }
}

void
CampaignService::Loop::handleClientFrame(int fd, const Frame &frame)
{
    switch (frame.type) {
      case FrameType::SubmitCampaign:
        handleSubmit(fd, frame);
        return;
      case FrameType::Ping: {
        ++report_.pings;
        Frame pong;
        pong.type = FrameType::Pong;
        pong.job_index = frame.job_index;
        pong.aux = frame.aux;
        pong.key = frame.key;
        auto it = clients_.find(fd);
        if (it != clients_.end() &&
            !writeFrame(fd, pong))
            dropClient(fd, "pong failed");
        return;
      }
      default:
        return; // tolerate unknown-but-valid traffic
    }
}

void
CampaignService::Loop::rejectSubmit(int fd, const std::string &reason,
                                    std::uint64_t retry_after_ms)
{
    ++report_.rejected;
    RejectInfo info;
    info.reason = reason;
    info.retry_after_ms = retry_after_ms;
    Frame frame;
    frame.type = FrameType::Reject;
    frame.payload = encodeReject(info);
    if (!writeFrame(fd, frame))
        dropClient(fd, "reject failed");
}

void
CampaignService::Loop::handleSubmit(int fd, const Frame &frame)
{
    if (draining_) {
        rejectSubmit(fd, "service is draining", 0);
        return;
    }

    CampaignRef ref;
    std::vector<SimJob> built;
    try {
        ref = decodeCampaignRef(frame.payload);
        if (ref.cycles == 0)
            raiseService("submission cycles must be positive");
        built = buildNamedCampaign(ref.name, Cycle{ref.cycles});
    } catch (const SimError &e) {
        rejectSubmit(fd,
                     std::string("[") + e.kind() + "] " + e.what(),
                     0);
        return;
    }

    auto cit = clients_.find(fd);
    if (cit == clients_.end())
        return;
    if (cit->second.campaigns.size() >= opts_.max_client_campaigns) {
        rejectSubmit(fd,
                     "client already has " +
                         std::to_string(
                             cit->second.campaigns.size()) +
                         " campaigns in flight",
                     opts_.reject_retry_ms);
        return;
    }

    // Admission: count the NEW work this submission would queue
    // (deduped and journal-served jobs are free).
    std::size_t new_jobs = 0;
    {
        SimResult scratch;
        std::vector<std::uint64_t> seen;
        for (const SimJob &job : built) {
            const std::uint64_t key = job.key();
            if (jobs_.count(key) != 0)
                continue;
            if (std::find(seen.begin(), seen.end(), key) !=
                seen.end())
                continue;
            if (findInShards(key, scratch))
                continue;
            seen.push_back(key);
            ++new_jobs;
        }
    }
    if (queue_.size() + new_jobs > opts_.max_pending_jobs) {
        rejectSubmit(fd,
                     "queue full (" + std::to_string(queue_.size()) +
                         " pending, +" + std::to_string(new_jobs) +
                         " would exceed " +
                         std::to_string(opts_.max_pending_jobs) +
                         ")",
                     opts_.reject_retry_ms);
        return;
    }

    const std::uint64_t id = next_campaign_id_++;
    Campaign &c = campaigns_[id];
    c.client_fd = fd;
    c.ref = ref;
    c.jobs = std::move(built);
    c.ref_payload = frame.payload;
    cit->second.campaigns.push_back(id);
    ++report_.submissions;

    Frame ack;
    ack.type = FrameType::SubmitAck;
    ack.key = campaignFingerprint(c.jobs);
    ack.aux = static_cast<std::uint32_t>(c.jobs.size());
    if (!writeFrame(fd, ack)) {
        dropClient(fd, "ack failed");
        return;
    }

    // Resolve every index: replay what is known, subscribe to what
    // is live, queue what is new. The campaign may finish inside
    // this very loop (all jobs journal-served).
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(c.jobs.size()); ++i) {
        // c may be invalidated by sends that drop the client; look
        // the campaign up fresh each round.
        auto me = campaigns_.find(id);
        if (me == campaigns_.end())
            return;
        Campaign &campaign = me->second;
        const std::uint64_t key = campaign.jobs[i].key();
        auto jit = jobs_.find(key);
        if (jit == jobs_.end()) {
            SimResult replayed;
            if (findInShards(key, replayed)) {
                JobEntry &entry = jobs_[key];
                entry.phase = JobPhase::Done;
                entry.ref = campaign.ref;
                entry.ref_index = i;
                entry.from_journal = true;
                entry.result = replayed;
                ++report_.journal_hits;
                notifyResult({id, i}, key, entry, true);
                resolveOne(id, true);
                continue;
            }
            JobEntry &entry = jobs_[key];
            entry.phase = JobPhase::Queued;
            entry.ref = campaign.ref;
            entry.ref_index = i;
            entry.subs.push_back({id, i});
            queue_.push_back(key);
            continue;
        }
        JobEntry &entry = jit->second;
        switch (entry.phase) {
          case JobPhase::Done:
            ++report_.dedupe_hits;
            notifyResult({id, i}, key, entry, true);
            resolveOne(id, true);
            break;
          case JobPhase::Failed:
            ++report_.dedupe_hits;
            notifyFailure({id, i}, key, entry);
            resolveOne(id, false);
            break;
          case JobPhase::Queued:
          case JobPhase::Dispatched:
            ++report_.dedupe_hits;
            entry.subs.push_back({id, i});
            break;
        }
    }
}

bool
CampaignService::Loop::sendToCampaign(std::uint64_t campaign_id,
                                      const Frame &frame)
{
    auto it = campaigns_.find(campaign_id);
    if (it == campaigns_.end() || it->second.client_fd < 0)
        return false; // orphaned: result stays in journal/table
    const int fd = it->second.client_fd;
    if (clients_.count(fd) == 0)
        return false;
    if (!writeFrame(fd, frame)) {
        dropClient(fd, "send failed");
        return false;
    }
    return true;
}

void
CampaignService::Loop::dropClient(int fd, const char *why)
{
    auto it = clients_.find(fd);
    if (it == clients_.end())
        return;
    std::fprintf(stderr, "campaignd: client dropped (%s)\n", why);
    ++report_.client_disconnects;
    // Orphan the client's campaigns instead of cancelling them:
    // their jobs keep running and the results land in the journal,
    // so an idempotent resubmission replays instead of re-running.
    for (const std::uint64_t id : it->second.campaigns) {
        auto cit = campaigns_.find(id);
        if (cit != campaigns_.end())
            cit->second.client_fd = -1;
    }
    ::close(fd);
    clients_.erase(it);
}

void
CampaignService::Loop::checkClientIdle(Clock::time_point now)
{
    if (opts_.idle_timeout_ms == 0)
        return;
    std::vector<int> idle;
    for (const auto &entry : clients_)
        if (now - entry.second.last_activity >
            Millis(opts_.idle_timeout_ms))
            idle.push_back(entry.first);
    for (const int fd : idle)
        dropClient(fd, "idle timeout");
}

// ---- drain ---------------------------------------------------------------

void
CampaignService::Loop::beginDrain()
{
    draining_ = true;
    report_.drain_requested = true;
    // Everything still queued fails as Drained NOW — in-flight jobs
    // finish under liveness supervision, nothing new is dispatched.
    std::deque<std::uint64_t> pending;
    pending.swap(queue_);
    for (const std::uint64_t key : pending)
        failJob(key, "Drained", "service drained before dispatch");
}

bool
CampaignService::Loop::drained() const
{
    if (!draining_)
        return false;
    // A worker death mid-drain reclaims its job back to Queued so it
    // can still finish — both live phases block the drain.
    for (const auto &entry : jobs_)
        if (entry.second.phase == JobPhase::Dispatched ||
            entry.second.phase == JobPhase::Queued)
            return false;
    return true;
}

// ---- the loop ------------------------------------------------------------

ServiceReport
CampaignService::Loop::run()
{
    bindSocket();
    openJournals();
    try {
        startFleet();
    } catch (...) {
        ::close(listen_fd_);
        (void)::unlink(opts_.socket_path.c_str());
        throw;
    }

    std::fprintf(stderr,
                 "campaignd: serving on %s (workers=%d%s)\n",
                 opts_.socket_path.c_str(), opts_.workers,
                 shards_.empty() ? "" : ", journaled");

    while (!drained()) {
        if (drain_flag_.load(std::memory_order_relaxed) &&
            !draining_)
            beginDrain();

        pumpDispatch();

        std::vector<struct pollfd> fds;
        fds.push_back({listen_fd_, POLLIN, 0});
        std::vector<int> worker_of; // fds index -> slot, -1 = client
        worker_of.push_back(-1);
        for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
            if (!slots_[slot].alive)
                continue;
            fds.push_back({slots_[slot].fd, POLLIN, 0});
            worker_of.push_back(static_cast<int>(slot));
        }
        const std::size_t first_client = fds.size();
        for (const auto &entry : clients_) {
            fds.push_back({entry.first, POLLIN, 0});
            worker_of.push_back(-1);
        }

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), 50);
        if (rc < 0) {
            if (errno == EINTR)
                continue; // a drain signal landed; loop re-checks
            raiseService(std::string("poll(): ") +
                         std::strerror(errno));
        }

        const Clock::time_point now = Clock::now(); // host timing
        if (fds[0].revents & POLLIN)
            acceptClients();
        for (std::size_t i = 1; i < first_client; ++i) {
            if (fds[i].revents == 0)
                continue;
            const int slot = worker_of[i];
            if (slots_[static_cast<std::size_t>(slot)].alive &&
                slots_[static_cast<std::size_t>(slot)].fd ==
                    fds[i].fd)
                handleWorkerInput(slot);
        }
        for (std::size_t i = first_client; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            handleClientInput(fds[i].fd);
        }

        checkWorkerLiveness(now);
        checkClientIdle(now);
    }

    shutdownFleet();
    for (const auto &entry : clients_)
        ::close(entry.first);
    clients_.clear();
    ::close(listen_fd_);
    (void)::unlink(opts_.socket_path.c_str());
    return report_;
}

// ---- public surface ------------------------------------------------------

CampaignService::CampaignService(ServiceOptions opts)
    : opts_(std::move(opts))
{
}

ServiceReport
CampaignService::serve()
{
    Loop loop(opts_, drain_);
    return loop.run();
}

} // namespace ckesim
