#include "campaign/campaign_spec.hpp"

#include "kernels/workload.hpp"
#include "metrics/experiment.hpp"
#include "sim/check.hpp"
#include "sim/config.hpp"

namespace ckesim {

std::vector<std::string>
namedCampaigns()
{
    return {"smoke", "pairs"};
}

namespace {

std::vector<SimJob>
smokeCampaign(Cycle cycles)
{
    const GpuConfig cfg = makeSmallConfig(2, 2);
    const Workload mixed = makeWorkload({"bp", "sv"});
    const Workload mem = makeWorkload({"sv", "ks"});
    const Workload compute = makeWorkload({"bp", "hs"});

    std::vector<SimJob> jobs;
    jobs.push_back(SimJob::isolated(cfg, cycles, *mixed.kernels[0]));
    jobs.push_back(SimJob::isolated(cfg, cycles, *mixed.kernels[1]));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mixed, NamedScheme::WS));
    jobs.push_back(SimJob::concurrent(cfg, cycles, mixed,
                                      NamedScheme::WS_QBMI_DMIL));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mem, NamedScheme::WS_DMIL));
    jobs.push_back(
        SimJob::concurrent(cfg, cycles, mem, NamedScheme::SMK_PW));
    jobs.push_back(SimJob::concurrent(cfg, cycles, compute,
                                      NamedScheme::WS_QBMI));
    jobs.push_back(SimJob::concurrent(cfg, cycles, compute,
                                      NamedScheme::Spatial));
    return jobs;
}

std::vector<SimJob>
pairsCampaign(Cycle cycles)
{
    const GpuConfig cfg = benchConfig();
    const std::vector<NamedScheme> schemes = {
        NamedScheme::WS, NamedScheme::WS_QBMI_DMIL,
        NamedScheme::SMK_PW};
    std::vector<SimJob> jobs;
    for (const Workload &wl : representativePairs())
        for (const NamedScheme s : schemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, wl, s));
    return jobs;
}

} // namespace

std::vector<SimJob>
buildNamedCampaign(const std::string &name, Cycle cycles)
{
    if (name == "smoke")
        return smokeCampaign(cycles);
    if (name == "pairs")
        return pairsCampaign(cycles);
    SimCtx ctx;
    ctx.module = "campaign.spec";
    raiseSimError("Config", ctx,
                  "unknown campaign '" + name +
                      "' (try: smoke, pairs)");
}

} // namespace ckesim
