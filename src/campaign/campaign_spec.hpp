/**
 * @file
 * Named campaign job lists, shared by the ckesim-campaignd daemon,
 * the bench_perf harness and the tests, so every consumer of "the
 * smoke campaign" means the exact same content-hashed jobs — the
 * precondition for index-based dispatch and fingerprint-compared
 * soaks.
 */

#ifndef CKESIM_CAMPAIGN_CAMPAIGN_SPEC_HPP
#define CKESIM_CAMPAIGN_CAMPAIGN_SPEC_HPP

#include <string>
#include <vector>

#include "metrics/sim_job.hpp"

namespace ckesim {

/** Names accepted by buildNamedCampaign(). */
std::vector<std::string> namedCampaigns();

/**
 * Build the job list of campaign @p name at @p cycles measurement
 * cycles:
 *
 *   "smoke"  a small-config mix of isolated baselines and scheme
 *            families — seconds per job; the kill-soak workhorse.
 *   "pairs"  the paper's representative pairs under the headline
 *            schemes on the full bench machine (heavier).
 *
 * Throws SimError (kind "Config") for an unknown name.
 */
std::vector<SimJob> buildNamedCampaign(const std::string &name,
                                       Cycle cycles);

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_CAMPAIGN_SPEC_HPP
