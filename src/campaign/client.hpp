/**
 * @file
 * Campaign service client: submit a named-campaign ref to a running
 * ckesim-campaignd --serve daemon, stream the results back, and end
 * with the same outcome vector an in-process CampaignEngine run
 * would produce — so the caller can print the shared
 * formatCampaignTable and diff it byte-for-byte against any other
 * path to the same campaign.
 *
 * Robustness contract:
 *
 *  - all socket I/O is EINTR-safe and partial-transfer-safe (the
 *    shared readFully/writeFully helpers);
 *  - receives run a poll(2)-driven inactivity timeout; a service
 *    that goes silent mid-stream is a bounded failure, not a hang;
 *  - Reject frames with a retry-after hint and lost connections are
 *    retried with deterministic jittered backoff (retryBackoffMs
 *    keyed by the campaign fingerprint — reproducible, and distinct
 *    campaigns desynchronize instead of stampeding);
 *  - resubmission after a lost connection is idempotent: the service
 *    replays completed jobs from its journal/table (JobResult aux
 *    bit 0) instead of re-running them;
 *  - the client-side chaos plan can corrupt the submission frame
 *    (the service must drop this client only) or abruptly close the
 *    socket after N streamed results (the service must finish the
 *    orphaned jobs into its journal).
 */

#ifndef CKESIM_CAMPAIGN_CLIENT_HPP
#define CKESIM_CAMPAIGN_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/wire.hpp"
#include "metrics/sim_job.hpp"
#include "sim/procfault.hpp"

namespace ckesim {

/** One submission attempt's shape and persistence. */
struct ClientOptions
{
    /** AF_UNIX socket path of the service. */
    std::string socket_path;

    /** What to submit (name + cycles; the job list is rebuilt
     *  locally and verified against the service's SubmitAck). */
    CampaignRef ref;

    /** Max silence between frames before the connection is declared
     *  lost. */
    std::uint64_t timeout_ms = 30000;

    /** Extra attempts after the first (connect failures, lost
     *  connections, retryable Rejects). */
    int retries = 3;

    /** Base for the deterministic jittered retry backoff. */
    std::uint64_t backoff_ms = 50;

    /** Jitter percentage on top of the doubled backoff base. */
    std::uint32_t backoff_jitter_pct = 50;

    /** Client-side chaos plan (CorruptClientFrame /
     *  DropClientMidStream). */
    ProcFaultPlan faults;
};

/** How a client run ended. */
enum class ClientStatus : std::uint8_t {
    Completed = 0,  ///< CampaignDone, every job produced a result
    JobFailures,    ///< CampaignDone, but some jobs failed
    Rejected,       ///< service refused and retries are exhausted
    ConnectionLost, ///< could not (re)establish a working stream
    ProtocolError,  ///< the service broke the protocol contract
};

/** Display name of a ClientStatus. */
const char *clientStatusName(ClientStatus status);

/** Accounting of one runCampaignClient call. */
struct ClientReport
{
    int attempts = 0;            ///< submission attempts made
    std::uint64_t results = 0;   ///< JobResult frames accepted
    std::uint64_t replayed = 0;  ///< results served from the journal
    std::uint64_t failures = 0;  ///< JobFailed frames accepted
    std::uint64_t rejects = 0;   ///< Reject frames received
    std::string error;           ///< failure story (non-Completed)
};

/** Everything one submission produced. */
struct ClientOutcome
{
    ClientStatus status = ClientStatus::ConnectionLost;
    std::vector<SimJob> jobs; ///< locally rebuilt job list
    std::vector<CampaignJobOutcome> outcomes; ///< aligned with jobs
    ClientReport report;

    bool ok() const { return status == ClientStatus::Completed; }
};

/**
 * Submit opts.ref and stream results until CampaignDone (or a
 * terminal failure). Throws SimError (kind "Config") only for a ref
 * the client itself cannot build — every service-side problem is a
 * status, not an exception.
 */
ClientOutcome runCampaignClient(const ClientOptions &opts);

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_CLIENT_HPP
