/**
 * @file
 * Frame protocol between the campaign orchestrator and its worker
 * processes, reusing the metrics/journal record discipline: every
 * frame is length-prefixed, CRC-32 checked and versioned, so a torn,
 * corrupted or version-skewed byte stream is detected at the frame
 * boundary and the peer can be declared compromised instead of being
 * trusted with garbage.
 *
 * Layout (little-endian), header then payload:
 *
 *   magic      u32  "CKCF"
 *   version    u8   kWireVersion
 *   type       u8   FrameType
 *   job_index  u32  campaign job index (frame types that carry one)
 *   aux        u32  dispatch attempt / worker slot / flags
 *   key        u64  SimJob content hash (dispatch/result integrity)
 *   len        u32  payload byte count
 *   crc        u32  CRC-32 over the payload
 *
 * The orchestrator reads its ends non-blocking and feeds bytes into a
 * FrameParser (a hung worker can stall mid-frame; the orchestrator
 * must never block on it). Workers read blocking — they trust the
 * orchestrator and die on EOF.
 */

#ifndef CKESIM_CAMPAIGN_WIRE_HPP
#define CKESIM_CAMPAIGN_WIRE_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ckesim {

inline constexpr std::uint32_t kWireMagic = 0x46434b43u; // "CKCF"
inline constexpr std::uint8_t kWireVersion = 1;

/** Frame discriminator. Types 1-6 are the orchestrator<->worker
 *  protocol (PR 5); types 7-14 are the client<->service submission
 *  protocol layered on the same framing (DESIGN.md section 16). */
enum class FrameType : std::uint8_t {
    /** worker -> orchestrator at startup; key = campaign fingerprint
     *  (refuses a worker built from a different job list). */
    Hello = 1,
    /** orchestrator -> worker: run jobs[job_index]; aux = attempt.
     *  Service fleets attach an encodeCampaignRef payload naming the
     *  campaign the index belongs to (the worker rebuilds the list). */
    Dispatch = 2,
    /** worker -> orchestrator: payload = encodeSimResult bytes. */
    Result = 3,
    /** worker -> orchestrator: the job failed with a structured
     *  SimError; payload = encodeJobError bytes. */
    JobError = 4,
    /** worker -> orchestrator: still alive on jobs[job_index]. */
    Heartbeat = 5,
    /** orchestrator -> worker: drain and exit cleanly. */
    Shutdown = 6,

    /** client -> service: payload = encodeCampaignRef (named-campaign
     *  ref + cycles); asks the service to run that campaign. */
    SubmitCampaign = 7,
    /** service -> client: submission admitted. key = campaign
     *  fingerprint (the client verifies it against its own build of
     *  the ref), aux = job count. */
    SubmitAck = 8,
    /** service -> client: one completed job. job_index = index in the
     *  submitted campaign, key = job content hash, aux bit 0 = served
     *  from the journal, payload = encodeSimResult bytes. */
    JobResult = 9,
    /** service -> client: one terminally failed job. payload =
     *  encodeJobError (kind "Drained"/"Poisoned"/"Exhausted"/sim
     *  error kind + detail). */
    JobFailed = 10,
    /** service -> client: every job of the submission reached a
     *  terminal state; aux = number of completed jobs. */
    CampaignDone = 11,
    /** service -> client: submission refused (overload, per-client
     *  cap, drain, unknown campaign). payload = encodeReject with a
     *  reason and a retry-after hint. */
    Reject = 12,
    /** client -> service: liveness probe / idle-timeout refresh; the
     *  service echoes job_index/aux/key back in a Pong. */
    Ping = 13,
    /** service -> client: Ping echo. */
    Pong = 14,
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::uint32_t job_index = 0;
    std::uint32_t aux = 0;
    std::uint64_t key = 0;
    std::vector<std::uint8_t> payload;
};

/** magic + version + type + job_index + aux + key + len + crc. */
inline constexpr std::size_t kFrameHeaderBytes =
    4 + 1 + 1 + 4 + 4 + 8 + 4 + 4;

/** Serialize @p frame (header + payload) for the wire. */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

// ---- shared low-level I/O (every socket loop routes through these) ------

/** What a full-buffer read produced. */
enum class IoStatus {
    Ok,    ///< the whole buffer was transferred
    Eof,   ///< orderly close before the buffer completed
    Error, ///< unrecoverable errno (peer gone, bad fd, ...)
};

/**
 * Write exactly @p n bytes to @p fd. EINTR is retried, SIGPIPE is
 * suppressed (MSG_NOSIGNAL), and EAGAIN on a non-blocking fd waits up
 * to ~1s per stall for the peer to drain before declaring it gone.
 * Returns false when the peer is unreachable or jammed past the grace
 * window — the caller's recovery path must treat it as lost.
 */
bool writeFully(int fd, const std::uint8_t *bytes, std::size_t n);

/**
 * Blocking read of exactly @p n bytes into @p out. EINTR is retried
 * with a bounded budget so a signal storm cannot livelock the caller.
 */
IoStatus readFully(int fd, std::uint8_t *out, std::size_t n);

/** writeFully over a whole vector. */
bool writeAll(int fd, const std::vector<std::uint8_t> &bytes);

/** encodeFrame + writeAll. */
bool writeFrame(int fd, const Frame &frame);

/** What a blocking frame read produced. */
enum class WireStatus {
    Ok,      ///< a complete, CRC-clean frame
    Eof,     ///< orderly close before a frame started
    Corrupt, ///< bad magic/version/CRC or torn mid-frame close
};

/** Blocking read of exactly one frame (worker side). */
WireStatus readFrameBlocking(int fd, Frame &out);

/**
 * Incremental frame decoder (orchestrator side): feed() whatever
 * bytes arrived, then next() complete frames out. Corruption is
 * sticky — once the stream misaligns nothing after it can be
 * trusted, so the owner must kill the peer.
 */
class FrameParser
{
  public:
    void feed(const std::uint8_t *bytes, std::size_t n);

    /** Pop the next complete frame; false when none is buffered. */
    bool next(Frame &out);

    bool corrupt() const { return corrupt_; }
    const std::string &corruptReason() const { return reason_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0; ///< consumed prefix of buf_
    std::deque<Frame> ready_;
    bool corrupt_ = false;
    std::string reason_;
};

// ---- structured job-error payload ---------------------------------------

/** Encode a worker-side SimError (kind + detail) for a JobError
 *  frame. */
std::vector<std::uint8_t> encodeJobError(const std::string &kind,
                                         const std::string &detail);

/** Inverse of encodeJobError; throws SimError kind "Snapshot" on a
 *  malformed payload. */
void decodeJobError(const std::vector<std::uint8_t> &bytes,
                    std::string &kind, std::string &detail);

// ---- submission-protocol payloads ---------------------------------------

/**
 * A named-campaign reference: everything a peer needs to rebuild the
 * exact job list locally (buildNamedCampaign(name, cycles)), so a
 * submission or a service-fleet dispatch never serializes SimJobs —
 * content hashes verify that both sides built the same thing.
 */
struct CampaignRef
{
    std::string name;          ///< buildNamedCampaign() name
    std::uint64_t cycles = 0;  ///< measurement cycles
};

/** Encode a CampaignRef for a SubmitCampaign / Dispatch payload. */
std::vector<std::uint8_t> encodeCampaignRef(const CampaignRef &ref);

/** Inverse of encodeCampaignRef; throws SimError kind "Snapshot" on
 *  a malformed payload. */
CampaignRef decodeCampaignRef(const std::vector<std::uint8_t> &bytes);

/** Why a submission was refused, plus when to try again. */
struct RejectInfo
{
    std::string reason;              ///< human-readable refusal story
    std::uint64_t retry_after_ms = 0; ///< backoff hint; 0 = never
                                      ///< (e.g. unknown campaign)
};

/** Encode a RejectInfo for a Reject frame payload. */
std::vector<std::uint8_t> encodeReject(const RejectInfo &info);

/** Inverse of encodeReject; throws SimError kind "Snapshot" on a
 *  malformed payload. */
RejectInfo decodeReject(const std::vector<std::uint8_t> &bytes);

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_WIRE_HPP
