/**
 * @file
 * Long-lived campaign service: the orchestrator promoted from a
 * one-shot batch tool to a daemon that listens on an AF_UNIX stream
 * socket, accepts concurrent client connections, and runs submitted
 * campaigns over a persistent forked worker fleet.
 *
 * Protocol: clients speak the CRC-framed campaign/wire format.
 * SubmitCampaign carries a named-campaign ref (name + cycles — never
 * serialized SimJobs; both sides rebuild the job list locally and
 * content hashes verify they agree). The service answers SubmitAck
 * (key = campaign fingerprint), streams JobResult / JobFailed frames
 * as jobs reach terminal states, and finishes with CampaignDone.
 * Ping/Pong probes refresh the idle timeout.
 *
 * Robustness contract (the point of the exercise):
 *
 *  - one poll(2) loop owns everything — listen socket, client
 *    sockets, worker sockets. No threads, so forking workers is safe
 *    and there is no cross-client locking to get wrong;
 *  - each client connection has its own incremental FrameParser;
 *    sticky corruption on one client's stream drops THAT client only
 *    — other clients keep streaming;
 *  - admission control: a bounded pending-job queue (overflow =>
 *    Reject with a retry-after hint), a per-client in-flight campaign
 *    cap, and an idle-client timeout;
 *  - cross-campaign dedupe: jobs are keyed by SimJob content hash; a
 *    job submitted by N clients (or N times by one client) runs once
 *    and fans its result out to every subscriber;
 *  - client disconnect mid-stream orphans nothing: the dead client's
 *    jobs keep running and their results land in the fsync'd journal
 *    shards, so an idempotent resubmission replays completed results
 *    (JobResult aux bit 0 set) instead of re-running them;
 *  - SIGTERM (requestDrain()) refuses new submissions, finishes
 *    in-flight jobs, fails queued jobs as Drained, notifies every
 *    client, and shuts the fleet down cleanly;
 *  - SIGKILL loses nothing durable: `--serve --resume` replays the
 *    journal shards, so completed work survives the crash.
 */

#ifndef CKESIM_CAMPAIGN_SERVICE_HPP
#define CKESIM_CAMPAIGN_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/procfault.hpp"

namespace ckesim {

/** Shape, limits and durability of one campaign service. */
struct ServiceOptions
{
    /** AF_UNIX socket path to listen on (unlinked + rebound). */
    std::string socket_path;

    /** Worker processes to fork; values < 1 are clamped to 1. */
    int workers = 1;

    /** Journal base; one shard per worker slot at <base>.shard<N>.
     *  Empty = no durability (results live only in memory). */
    std::string journal_base;

    /** Replay existing journal shards instead of wiping them. */
    bool resume = false;

    /** Minimum gap between worker heartbeats. */
    std::uint64_t heartbeat_ms = 25;

    /** No heartbeat for this long while owning a job = hung worker:
     *  SIGKILL and re-dispatch. */
    std::uint64_t liveness_deadline_ms = 5000;

    /** Max dispatch attempts per job across worker deaths. */
    int max_dispatch_attempts = 4;

    /** Total worker respawns before the fleet stops replacing dead
     *  workers. */
    int max_worker_respawns = 64;

    /** Admission control: queued-but-undispatched jobs beyond this
     *  Reject the submission with a retry-after hint. */
    std::size_t max_pending_jobs = 256;

    /** Admission control: in-flight campaigns per client connection
     *  beyond this are Rejected. */
    std::size_t max_client_campaigns = 4;

    /** Clients silent for longer than this are disconnected
     *  (Ping refreshes it). 0 disables the timeout. */
    std::uint64_t idle_timeout_ms = 30000;

    /** Retry-after hint attached to overload Rejects. */
    std::uint64_t reject_retry_ms = 200;

    /** Fleet-fault injection plan inherited by forked workers. */
    ProcFaultPlan faults;
};

/** Service-lifetime accounting (stderr diagnostics, tests). */
struct ServiceReport
{
    std::uint64_t connections = 0;       ///< clients accepted
    std::uint64_t submissions = 0;       ///< SubmitCampaign admitted
    std::uint64_t rejected = 0;          ///< SubmitCampaign refused
    std::uint64_t campaigns_done = 0;    ///< CampaignDone sent
    std::uint64_t jobs_completed = 0;    ///< results produced/served
    std::uint64_t jobs_failed = 0;       ///< terminal job failures
    std::uint64_t journal_hits = 0;      ///< served without dispatch
    std::uint64_t dedupe_hits = 0;       ///< subscriptions to live jobs
    std::uint64_t dispatched = 0;        ///< dispatch frames sent
    std::uint64_t redispatched = 0;      ///< re-dispatches after loss
    std::uint64_t client_corrupt = 0;    ///< client streams dropped
    std::uint64_t client_disconnects = 0; ///< EOF/error/timeout drops
    std::uint64_t worker_deaths = 0;
    std::uint64_t workers_respawned = 0;
    std::uint64_t hung_workers_killed = 0;
    std::uint64_t pings = 0;
    bool drain_requested = false;
};

/**
 * The daemon: listen, admit, dedupe, dispatch, journal, stream.
 * Construct, install a SIGTERM handler that calls requestDrain(),
 * then serve() until drained.
 */
class CampaignService
{
  public:
    explicit CampaignService(ServiceOptions opts);

    const ServiceOptions &options() const { return opts_; }

    /**
     * Bind the socket and run the poll loop until a drain completes.
     * Returns the lifetime report. Throws SimError (kind "Service")
     * when the socket cannot be bound or the fleet cannot start.
     */
    ServiceReport serve();

    /**
     * Ask the running service to drain: refuse new submissions, fail
     * queued jobs as Drained, finish in-flight jobs, notify clients,
     * shut the fleet down. Async-signal-safe (an atomic store).
     */
    void requestDrain()
    {
        drain_.store(true, std::memory_order_relaxed);
    }

  private:
    class Loop; // all serving state lives in service.cpp

    ServiceOptions opts_;
    std::atomic<bool> drain_{false};
};

} // namespace ckesim

#endif // CKESIM_CAMPAIGN_SERVICE_HPP
