/**
 * @file
 * Procedural global-memory address generation for synthetic kernels.
 *
 * Each warp owns an AddrGenState seeded deterministically from
 * (kernel instance, TB sequence number, warp index). A call to
 * generateAccess() emits one warp memory instruction's 32 per-thread
 * byte addresses, constructed so they coalesce into exactly the
 * profile's `Req/Minst` line transactions, with temporal locality
 * controlled by `reuse_prob` over a recently-touched-line ring.
 */

#ifndef CKESIM_KERNELS_ADDRGEN_HPP
#define CKESIM_KERNELS_ADDRGEN_HPP

#include <array>
#include <vector>

#include "kernels/profile.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Per-warp address-stream state. */
struct AddrGenState
{
    /** Recently touched lines (reuse candidates). Sized to cover a
     *  high-MLP kernel's whole in-flight burst plus the lookback
     *  window behind it. */
    static constexpr int kRingSize = 192;

    Rng rng{1};
    /** Raw line-number state: the generator computes line numbers and
     *  only mints byte Addrs at its output boundary. */
    std::uint64_t stream_cursor = 0; ///< next streaming step
    std::uint64_t stream_base_line = 0;  ///< per-TB region base
    std::uint64_t stream_region_lines = 0;
    std::uint64_t stream_stride = 1; ///< warps per TB (interleave)
    std::uint64_t stream_offset = 0; ///< warp index within the TB
    std::uint64_t footprint_base_line = 0; ///< per-TB footprint base
    std::uint64_t footprint_lines = 1;
    std::array<std::uint64_t, kRingSize> ring{};
    int ring_count = 0;
    int ring_pos = 0;
};

/**
 * Seed a warp's address stream.
 *
 * @param kernel kernel's slot in the workload (address isolation)
 * @param tb_seq global sequence number of the warp's thread block
 * @param warp_in_tb warp index within the TB
 * @param warps_per_tb warps in the TB (streaming interleave factor:
 *        a TB's warps jointly stream one contiguous region, which is
 *        what gives coalesced kernels their DRAM row locality)
 */
void initAddrGen(AddrGenState &st, const KernelProfile &prof,
                 KernelId kernel, std::uint64_t tb_seq, int warp_in_tb,
                 int warps_per_tb, std::uint64_t seed, int line_bytes);

/**
 * Emit one memory instruction's per-thread byte addresses (32 threads)
 * into @p thread_addrs (cleared first). Coalesces to exactly
 * prof.req_per_minst lines (fewer only when reuse collides).
 */
void generateAccess(AddrGenState &st, const KernelProfile &prof,
                    int line_bytes, int simd_width,
                    std::vector<Addr> &thread_addrs);

} // namespace ckesim

#endif // CKESIM_KERNELS_ADDRGEN_HPP
