#include "kernels/instr_stream.hpp"

#include <algorithm>
#include <cmath>

namespace ckesim {

void
InstrStream::reset(const KernelProfile &prof, std::uint64_t seed)
{
    prof_ = &prof;
    rng_ = Rng(seed ^ 0x5bf03635ebbc9ef5ULL);
    budget_ = prof.instrs_per_warp;
    executed_ = 0;
    burst_left_ = drawBurst();
    computeNext();
}

int
InstrStream::drawBurst()
{
    // Uniform around the mean: [ceil(c/2), floor(3c/2)] keeps the
    // long-run mean at Cinst/Minst with local phase variation.
    const double c = prof_->cinst_per_minst;
    const int lo = std::max(0, static_cast<int>(std::ceil(c * 0.5)));
    const int hi = std::max(lo, static_cast<int>(std::floor(c * 1.5)));
    return lo + static_cast<int>(rng_.nextBelow(
                    static_cast<std::uint64_t>(hi - lo + 1)));
}

void
InstrStream::computeNext()
{
    if (burst_left_ > 0) {
        const double u = rng_.nextDouble();
        if (u < prof_->sfu_fraction) {
            next_kind_ = InstrKind::Sfu;
        } else if (u < prof_->sfu_fraction + prof_->smem_fraction) {
            next_kind_ = InstrKind::Smem;
        } else {
            next_kind_ = InstrKind::Alu;
        }
    } else {
        next_kind_ = rng_.nextDouble() < prof_->write_fraction
                         ? InstrKind::MemStore
                         : InstrKind::MemLoad;
    }
}

InstrKind
InstrStream::advance()
{
    const InstrKind kind = next_kind_;
    ++executed_;
    if (burst_left_ > 0) {
        --burst_left_;
    } else {
        burst_left_ = drawBurst();
    }
    computeNext();
    return kind;
}

} // namespace ckesim
