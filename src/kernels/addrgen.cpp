#include "kernels/addrgen.hpp"

#include <algorithm>

namespace ckesim {

namespace {

/** Per-kernel-slot address spaces never collide. */
constexpr int kKernelSpaceShift = 44;
/** Streaming warps get 16MB private regions. */
constexpr std::uint64_t kStreamRegionBytes = 16ULL << 20;
/** Tiled-reuse warps cycle a small 8KB private tile. */
constexpr std::uint64_t kTileRegionBytes = 8ULL << 10;
/** Reuse draws look back at most this many recently touched lines.
 *  Kept tight: with ~64 warps interleaving on an SM, only the last
 *  couple of a warp's own lines can still be L1-resident. */
constexpr int kReuseWindow = 2;

} // namespace

void
initAddrGen(AddrGenState &st, const KernelProfile &prof,
            KernelId kernel, std::uint64_t tb_seq, int warp_in_tb,
            int warps_per_tb, std::uint64_t seed, int line_bytes)
{
    const std::uint64_t slot =
        static_cast<std::uint64_t>(kernel.get());
    std::uint64_t s = seed;
    s ^= (slot + 1) * std::uint64_t{0x9e3779b9};
    s ^= tb_seq * std::uint64_t{0x2545f4914f6cdd1d};
    s ^= static_cast<std::uint64_t>(warp_in_tb + 1) *
         std::uint64_t{0xda3e39cb94b95bdb};
    st.rng = Rng(s);

    const std::uint64_t space = (slot + 1) << kKernelSpaceShift;
    const std::uint64_t lb = static_cast<std::uint64_t>(line_bytes);

    // Streaming regions span the profile's footprint (bounded working
    // sets stay L2-resident); tiles are small and warp-local.
    const std::uint64_t region_bytes =
        prof.pattern == AccessPattern::TiledReuse
            ? kTileRegionBytes
            : std::max<std::uint64_t>(prof.footprint_bytes,
                                      kTileRegionBytes);
    st.stream_region_lines = region_bytes / lb;
    const std::uint64_t regions = std::max<std::uint64_t>(
        prof.stream_regions, 1);
    st.stream_base_line =
        (space + (tb_seq % regions) * kStreamRegionBytes) / lb;
    st.stream_stride = static_cast<std::uint64_t>(warps_per_tb);
    st.stream_offset = static_cast<std::uint64_t>(warp_in_tb);
    st.stream_cursor = 0;

    const std::uint64_t fp_bytes =
        std::max<std::uint64_t>(prof.footprint_bytes, lb);
    st.footprint_lines = fp_bytes / lb;
    const std::uint64_t fp_space =
        space + (1ULL << (kKernelSpaceShift - 1));
    const std::uint64_t fp_regions =
        std::max<std::uint64_t>(prof.footprint_regions, 1);
    st.footprint_base_line =
        (fp_space + (tb_seq % fp_regions) * fp_bytes) / lb;

    st.ring_count = 0;
    st.ring_pos = 0;
}

void
generateAccess(AddrGenState &st, const KernelProfile &prof,
               int line_bytes, int simd_width,
               std::vector<Addr> &thread_addrs)
{
    thread_addrs.clear();

    const int r = std::max(1, std::min(prof.req_per_minst, simd_width));
    // Collect the r line numbers this instruction touches.
    std::uint64_t lines[32];

    // Reuse is decided per line: each of the r requests independently
    // revisits a recently touched line with probability reuse_prob.
    // The lookback *skips the warp's own in-flight burst* (those
    // accesses would only merge into outstanding misses) and targets
    // the window just behind it — lines that have been filled and are
    // still resident when total allocation pressure is moderate, but
    // are evicted when many warps thrash the cache. This is the
    // locality that memory-instruction limiting plus GTO recovers
    // (Section 3.3.1).
    const int skip = std::min(r * prof.mlp,
                              AddrGenState::kRingSize -
                                  kReuseWindow - 2 * r - 1);
    const int window = std::min(st.ring_count - skip,
                                std::max(kReuseWindow, 2 * r));

    // Fresh-line generators advance per line.
    std::uint64_t random_run_next = 0;
    bool random_run_live = false;

    auto fresh_line = [&]() -> std::uint64_t {
        switch (prof.pattern) {
          case AccessPattern::Streaming:
          case AccessPattern::TiledReuse: {
            // A TB's warps jointly stream one contiguous region:
            // step s of warp w touches line s*warps_per_tb + w.
            const std::uint64_t step =
                st.stream_cursor * st.stream_stride +
                st.stream_offset;
            ++st.stream_cursor;
            return st.stream_base_line +
                   (step % st.stream_region_lines);
          }
          case AccessPattern::RandomFootprint:
            // One random start per instruction, then consecutive
            // lines (vector access).
            if (!random_run_live) {
                random_run_next =
                    st.rng.nextBelow(st.footprint_lines);
                random_run_live = true;
            }
            return st.footprint_base_line +
                   (random_run_next++ % st.footprint_lines);
          case AccessPattern::StridedScatter:
            // Independent random lines: poor coalescing.
            return st.footprint_base_line +
                   st.rng.nextBelow(st.footprint_lines);
        }
        return st.footprint_base_line;
    };

    for (int i = 0; i < r; ++i) {
        const bool reuse =
            window > 0 && st.rng.nextDouble() < prof.reuse_prob;
        if (reuse) {
            const int back =
                skip + 1 +
                static_cast<int>(st.rng.nextBelow(
                    static_cast<std::uint64_t>(window)));
            const int pos = (st.ring_pos - back +
                             2 * AddrGenState::kRingSize) %
                            AddrGenState::kRingSize;
            lines[i] = st.ring[static_cast<std::size_t>(pos)];
        } else {
            lines[i] = fresh_line();
            // Remember fresh lines for future reuse draws.
            st.ring[static_cast<std::size_t>(st.ring_pos)] = lines[i];
            st.ring_pos = (st.ring_pos + 1) % AddrGenState::kRingSize;
            if (st.ring_count < AddrGenState::kRingSize)
                ++st.ring_count;
        }
    }

    // Distribute threads across the r lines in contiguous blocks so
    // the coalescer reconstructs exactly these transactions.
    thread_addrs.reserve(static_cast<std::size_t>(simd_width));
    for (int t = 0; t < simd_width; ++t) {
        const int li = t * r / simd_width;
        const std::uint64_t byte_off =
            static_cast<std::uint64_t>((t * 4) % line_bytes);
        thread_addrs.push_back(
            Addr{lines[li] * static_cast<std::uint64_t>(line_bytes) +
                 byte_off});
    }
}

} // namespace ckesim
