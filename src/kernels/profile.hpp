/**
 * @file
 * Synthetic kernel profiles standing in for the paper's 13 CUDA
 * benchmarks (Table 2: cp, hs, dc, pf, bp, bs, st, 3m, sv, cd, s2, ks,
 * ax).
 *
 * Each profile fixes (a) static per-TB resource demands chosen so that
 * isolated occupancy lands on Table 2's RF/SMEM/Thread/TB occupancies,
 * and (b) a dynamic behaviour model — compute-per-memory instruction
 * ratio (`Cinst/Minst`), coalesced requests per memory instruction
 * (`Req/Minst`), and an address pattern whose locality produces the
 * same L1D miss-rate / reservation-failure regime as the real kernel.
 */

#ifndef CKESIM_KERNELS_PROFILE_HPP
#define CKESIM_KERNELS_PROFILE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Paper classification (Section 2.4: >20% LSU stalls => Memory). */
enum class KernelClass {
    Compute,
    Memory,
};

/** Address-stream shape of a kernel's global accesses. */
enum class AccessPattern {
    Streaming,       ///< warp-private sequential, little reuse
    TiledReuse,      ///< small per-warp working set, high reuse
    RandomFootprint, ///< random lines in a per-TB footprint
    StridedScatter,  ///< poorly coalesced scatter in a big footprint
};

/** Static + dynamic description of one synthetic kernel. */
struct KernelProfile
{
    std::string name;
    KernelClass expected_class = KernelClass::Compute;

    // ---- static resources (per thread block) -------------------------
    int threads_per_tb = 256;
    int regs_per_thread = 16;
    int smem_per_tb = 0;

    // ---- dynamic behaviour -------------------------------------------
    /** Mean compute instructions between memory instructions. */
    double cinst_per_minst = 4.0;
    /** Coalesced line requests per warp memory instruction. */
    int req_per_minst = 1;
    /** Fraction of compute instructions executed on the SFU. */
    double sfu_fraction = 0.0;
    /** Fraction of compute instructions that are shared-memory ops. */
    double smem_fraction = 0.0;
    /** Fraction of memory instructions that are stores. */
    double write_fraction = 0.1;

    AccessPattern pattern = AccessPattern::Streaming;
    /** Probability a memory instruction revisits a recent line. */
    double reuse_prob = 0.0;
    /** Random-footprint patterns: bytes touched per thread block. */
    std::uint64_t footprint_bytes = 1ULL << 20;
    /** Distinct footprint regions cycled across TB generations. A
     *  small count keeps the kernel's gather structures L2-resident
     *  (its stalls then come from MSHR/queue saturation, not DRAM
     *  bandwidth); a large count defeats the L2. */
    std::uint64_t footprint_regions = 64;
    /** Streaming patterns: number of distinct per-TB regions cycled
     *  through. Small values keep the stream set L2-resident (the
     *  behaviour of grid kernels that sweep a bounded working set);
     *  large values defeat the L2 entirely. */
    std::uint64_t stream_regions = 2048;

    /** Memory-level parallelism: independent loads a warp keeps in
     *  flight before blocking. Dependent-access kernels use 1;
     *  streaming matrix kernels overlap several (this is what lets a
     *  memory-intensive kernel saturate the MSHRs). */
    int mlp = 1;

    /** Instructions each warp executes before its TB completes. */
    int instrs_per_warp = 4096;

    // ---- derived ------------------------------------------------------
    int warpsPerTb(int simd_width) const
    {
        return (threads_per_tb + simd_width - 1) / simd_width;
    }

    /** Per-TB register demand. */
    int regsPerTb() const { return regs_per_thread * threads_per_tb; }

    /**
     * Maximum thread blocks one SM can hold when this kernel runs
     * alone (the min over the four static resources — Table 2's
     * occupancy binding resource).
     */
    int maxTbsPerSm(const SmConfig &sm) const;

    /** Occupancy of each static resource at maxTbsPerSm. */
    double rfOccupancy(const SmConfig &sm) const;
    double smemOccupancy(const SmConfig &sm) const;
    double threadOccupancy(const SmConfig &sm) const;
    double tbOccupancy(const SmConfig &sm) const;

    bool isMemoryIntensive() const
    {
        return expected_class == KernelClass::Memory;
    }
};

/** The 13-benchmark suite of Table 2, in the paper's order. */
const std::vector<KernelProfile> &benchmarkSuite();

/** Look up a profile by its short name (e.g. "bp"). Aborts if absent. */
const KernelProfile &findProfile(std::string_view name);

/** Suite members of one class, in suite order. */
std::vector<const KernelProfile *> kernelsOfClass(KernelClass cls);

} // namespace ckesim

#endif // CKESIM_KERNELS_PROFILE_HPP
