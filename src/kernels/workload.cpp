#include "kernels/workload.hpp"

namespace ckesim {

std::string
Workload::name() const
{
    std::string s;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (i)
            s += '+';
        s += kernels[i]->name;
    }
    return s;
}

WorkloadClass
Workload::cls() const
{
    int mem = 0;
    for (const KernelProfile *k : kernels)
        if (k->isMemoryIntensive())
            ++mem;
    if (mem == 0)
        return WorkloadClass::CC;
    if (mem == static_cast<int>(kernels.size()))
        return WorkloadClass::MM;
    return WorkloadClass::CM;
}

std::string
workloadClassName(WorkloadClass cls, int num_kernels)
{
    std::string c;
    switch (cls) {
      case WorkloadClass::CC:
        c = "C";
        break;
      case WorkloadClass::MM:
        c = "M";
        break;
      case WorkloadClass::CM:
        // Mixed: for pairs "C+M"; for triples callers distinguish
        // C+C+M vs C+M+M themselves when needed.
        if (num_kernels == 2)
            return "C+M";
        return "mixed";
    }
    std::string out = c;
    for (int i = 1; i < num_kernels; ++i)
        out += "+" + c;
    return out;
}

Workload
makeWorkload(const std::vector<std::string> &names)
{
    Workload w;
    for (const std::string &n : names)
        w.kernels.push_back(&findProfile(n));
    return w;
}

std::vector<Workload>
allPairs(const std::vector<const KernelProfile *> &kernels)
{
    std::vector<Workload> out;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        for (std::size_t j = i + 1; j < kernels.size(); ++j) {
            Workload w;
            w.kernels = {kernels[i], kernels[j]};
            out.push_back(std::move(w));
        }
    }
    return out;
}

std::vector<Workload>
allSuitePairs()
{
    std::vector<const KernelProfile *> ptrs;
    for (const KernelProfile &p : benchmarkSuite())
        ptrs.push_back(&p);
    return allPairs(ptrs);
}

std::vector<Workload>
representativePairs()
{
    static const std::vector<std::vector<std::string>> names = {
        // The six pairs the paper examines individually.
        {"pf", "bp"}, {"bp", "hs"},                    // C+C
        {"bp", "sv"}, {"bp", "ks"},                    // C+M
        {"sv", "ks"}, {"sv", "ax"},                    // M+M
        // Additional coverage for class geomeans.
        {"cp", "pf"}, {"dc", "st"}, {"hs", "bs"},      // C+C
        {"hs", "3m"}, {"pf", "s2"}, {"st", "cd"},      // C+M
        {"cp", "ax"}, {"dc", "sv"},                    // C+M
        {"3m", "s2"}, {"cd", "ks"}, {"3m", "ax"},      // M+M
    };
    std::vector<Workload> out;
    for (const auto &n : names)
        out.push_back(makeWorkload(n));
    return out;
}

std::vector<Workload>
representativeTriples()
{
    static const std::vector<std::vector<std::string>> names = {
        {"pf", "bp", "hs"}, {"cp", "dc", "st"},        // C+C+C
        {"pf", "bp", "sv"}, {"bp", "hs", "ks"},        // C+C+M
        {"bp", "sv", "ks"}, {"pf", "3m", "s2"},        // C+M+M
        {"sv", "ks", "ax"}, {"3m", "s2", "cd"},        // M+M+M
    };
    std::vector<Workload> out;
    for (const auto &n : names)
        out.push_back(makeWorkload(n));
    return out;
}

std::vector<Workload>
filterByClass(const std::vector<Workload> &all, WorkloadClass cls)
{
    std::vector<Workload> out;
    for (const Workload &w : all)
        if (w.cls() == cls)
            out.push_back(w);
    return out;
}

} // namespace ckesim
