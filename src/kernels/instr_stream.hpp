/**
 * @file
 * Procedural per-warp instruction stream.
 *
 * A warp alternates bursts of compute instructions (ALU / SFU /
 * shared-memory, mixed per the profile) with single global-memory
 * instructions; burst lengths are drawn around the profile's
 * `Cinst/Minst` so the long-run compute-to-memory ratio matches
 * Table 2 while phases still vary locally.
 */

#ifndef CKESIM_KERNELS_INSTR_STREAM_HPP
#define CKESIM_KERNELS_INSTR_STREAM_HPP

#include <cstdint>

#include "kernels/profile.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

/** Kinds of dynamic warp instructions the timing model distinguishes. */
enum class InstrKind {
    Alu,
    Sfu,
    Smem,     ///< shared-memory access (on-chip, never reaches L1D)
    MemLoad,  ///< global load (blocks the warp until data returns)
    MemStore, ///< global store (write-through, non-blocking)
};

inline bool
isGlobalMem(InstrKind k)
{
    return k == InstrKind::MemLoad || k == InstrKind::MemStore;
}

/** Generates one warp's instruction sequence for one thread block. */
class InstrStream
{
  public:
    InstrStream() = default;

    /** (Re)start the stream for a new thread block. */
    void reset(const KernelProfile &prof, std::uint64_t seed);

    /** True when the warp has executed its TB's instruction budget. */
    bool done() const { return executed_ >= budget_; }

    /** Kind of the next instruction. @pre !done() */
    InstrKind peek() const { return next_kind_; }

    /** Consume the next instruction and pre-compute the following. */
    InstrKind advance();

    int executed() const { return executed_; }

    /** Serialize generator state (the profile pointer is rebound by
     *  the owning SM on restore, keyed by the warp's kernel). */
    void
    snapshot(SnapshotWriter &w) const
    {
        const Rng::State st = rng_.state();
        w.u64(st.s0);
        w.u64(st.s1);
        w.i64(budget_);
        w.i64(executed_);
        w.i64(burst_left_);
        w.u8(static_cast<std::uint8_t>(next_kind_));
    }

    /** Inverse of snapshot(). @p prof may be nullptr for a warp slot
     *  whose stream will be reset() before its next use. */
    void
    restore(SnapshotReader &r, const KernelProfile *prof)
    {
        prof_ = prof;
        Rng::State st;
        st.s0 = r.u64();
        st.s1 = r.u64();
        rng_.setState(st);
        budget_ = static_cast<int>(r.i64());
        executed_ = static_cast<int>(r.i64());
        burst_left_ = static_cast<int>(r.i64());
        next_kind_ = static_cast<InstrKind>(r.u8());
    }

    /** Rebind the profile after restore (the owner knows the warp's
     *  kernel only once the warp record has been read). */
    void rebindProfile(const KernelProfile *prof) { prof_ = prof; }

  private:
    void computeNext();
    int drawBurst();

    const KernelProfile *prof_ = nullptr; // SNAPSHOT-SKIP(rebound by owning SM on restore)
    Rng rng_{1};
    int budget_ = 0;
    int executed_ = 0;
    int burst_left_ = 0;
    InstrKind next_kind_ = InstrKind::Alu;
};

} // namespace ckesim

#endif // CKESIM_KERNELS_INSTR_STREAM_HPP
