#include "kernels/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ckesim {

int
KernelProfile::maxTbsPerSm(const SmConfig &sm) const
{
    int by_tb = sm.max_tbs;
    int by_threads = sm.max_threads / threads_per_tb;
    int by_warps = sm.max_warps / warpsPerTb(sm.simd_width);
    int by_regs = regsPerTb() > 0 ? sm.register_file / regsPerTb()
                                  : sm.max_tbs;
    int by_smem = smem_per_tb > 0 ? sm.smem_bytes / smem_per_tb
                                  : sm.max_tbs;
    return std::max(1, std::min({by_tb, by_threads, by_warps, by_regs,
                                 by_smem}));
}

double
KernelProfile::rfOccupancy(const SmConfig &sm) const
{
    return static_cast<double>(regsPerTb()) * maxTbsPerSm(sm) /
           sm.register_file;
}

double
KernelProfile::smemOccupancy(const SmConfig &sm) const
{
    return static_cast<double>(smem_per_tb) * maxTbsPerSm(sm) /
           sm.smem_bytes;
}

double
KernelProfile::threadOccupancy(const SmConfig &sm) const
{
    return static_cast<double>(threads_per_tb) * maxTbsPerSm(sm) /
           sm.max_threads;
}

double
KernelProfile::tbOccupancy(const SmConfig &sm) const
{
    return static_cast<double>(maxTbsPerSm(sm)) / sm.max_tbs;
}

namespace {

/**
 * Build the 13-benchmark suite. Static demands are solved from the
 * Table 2 occupancies against the Table 1 SM (3072 threads, 16 TB
 * slots, 64K registers, 96KB shared memory); dynamic parameters come
 * from Table 2's Cinst/Minst and Req/Minst columns, with address
 * patterns picked to land in the same miss-rate / rsfail regime.
 */
std::vector<KernelProfile>
buildSuite()
{
    std::vector<KernelProfile> v;

    KernelProfile p;

    // cp (cutcp): C. RF 87.5% SMEM 67% Thread 66.7% TB 100%.
    p = KernelProfile{};
    p.name = "cp";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 128;
    p.regs_per_thread = 28;
    p.smem_per_tb = 4096;
    p.cinst_per_minst = 4.0;
    p.req_per_minst = 2;
    p.sfu_fraction = 0.30;
    p.smem_fraction = 0.30;
    p.write_fraction = 0.08;
    p.pattern = AccessPattern::TiledReuse;
    p.reuse_prob = 0.55;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // hs (hotspot): C. RF 98.4% SMEM 21.9% Thread 58.3% TB 43.8%.
    p = KernelProfile{};
    p.name = "hs";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 256;
    p.regs_per_thread = 36;
    p.smem_per_tb = 3072;
    p.cinst_per_minst = 7.0;
    p.req_per_minst = 3;
    p.sfu_fraction = 0.15;
    p.smem_fraction = 0.30;
    p.write_fraction = 0.15;
    p.footprint_bytes = 256 << 10;
    p.stream_regions = 6;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.03;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // dc (dxtc): C. RF 56.2% SMEM 33.3% Thread 33.3% TB 100%.
    p = KernelProfile{};
    p.name = "dc";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 64;
    p.regs_per_thread = 36;
    p.smem_per_tb = 2048;
    p.cinst_per_minst = 5.0;
    p.req_per_minst = 1;
    p.sfu_fraction = 0.10;
    p.smem_fraction = 0.25;
    p.write_fraction = 0.10;
    p.pattern = AccessPattern::TiledReuse;
    p.reuse_prob = 0.91;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // pf (pathfinder): C. RF 75% SMEM 25% Thread 100% TB 75%.
    p = KernelProfile{};
    p.name = "pf";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 256;
    p.regs_per_thread = 16;
    p.smem_per_tb = 2048;
    p.cinst_per_minst = 6.0;
    p.req_per_minst = 2;
    p.sfu_fraction = 0.10;
    p.smem_fraction = 0.25;
    p.write_fraction = 0.10;
    p.footprint_bytes = 256 << 10;
    p.stream_regions = 4;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.01;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // bp (backprop): C. RF 56.2% SMEM 13.3% Thread 100% TB 75%.
    p = KernelProfile{};
    p.name = "bp";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 256;
    p.regs_per_thread = 12;
    p.smem_per_tb = 1088;
    p.cinst_per_minst = 6.0;
    p.req_per_minst = 2;
    p.sfu_fraction = 0.10;
    p.smem_fraction = 0.10;
    p.write_fraction = 0.20;
    p.footprint_bytes = 256 << 10;
    p.stream_regions = 6;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.20;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // bs (bfs): C in this configuration (Section 2.4 notes bs differs
    // from prior work because more miss resources are provisioned).
    // RF 75% SMEM 0% Thread 100% TB 37.5%.
    p = KernelProfile{};
    p.name = "bs";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 512;
    p.regs_per_thread = 16;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 4.0;
    p.req_per_minst = 1;
    p.sfu_fraction = 0.05;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.10;
    p.footprint_bytes = 16 << 20;
    p.stream_regions = 2048;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.0;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // st (stencil): C. RF 75% SMEM 0% Thread 100% TB 37.5%.
    p = KernelProfile{};
    p.name = "st";
    p.expected_class = KernelClass::Compute;
    p.threads_per_tb = 512;
    p.regs_per_thread = 16;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 4.0;
    p.req_per_minst = 1;
    p.sfu_fraction = 0.05;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.15;
    p.footprint_bytes = 16 << 20;
    p.stream_regions = 2048;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.33;
    p.instrs_per_warp = 4096;
    v.push_back(p);

    // 3m (3mm): M. RF 56.2% SMEM 0% Thread 100% TB 75%.
    p = KernelProfile{};
    p.name = "3m";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 256;
    p.regs_per_thread = 12;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 2.0;
    p.req_per_minst = 1;
    p.sfu_fraction = 0.0;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.10;
    p.mlp = 6;
    p.pattern = AccessPattern::RandomFootprint;
    p.reuse_prob = 0.37;
    p.footprint_bytes = 2 << 20;
    p.footprint_regions = 64;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    // sv (spmv): M. RF 75% SMEM 0% Thread 100% TB 100%.
    p = KernelProfile{};
    p.name = "sv";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 192;
    p.regs_per_thread = 16;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 3.0;
    p.req_per_minst = 3;
    p.sfu_fraction = 0.0;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.10;
    p.mlp = 1;
    p.pattern = AccessPattern::RandomFootprint;
    p.reuse_prob = 0.35;
    p.footprint_bytes = 512 << 10;
    p.footprint_regions = 64;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    // cd (cfd): M. RF 100% SMEM 0% Thread 33.3% TB 100%.
    p = KernelProfile{};
    p.name = "cd";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 64;
    p.regs_per_thread = 64;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 9.0;
    p.req_per_minst = 6;
    p.sfu_fraction = 0.10;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.20;
    p.footprint_bytes = 16 << 20;
    p.stream_regions = 2048;
    p.mlp = 2;
    p.pattern = AccessPattern::Streaming;
    p.reuse_prob = 0.04;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    // s2 (sad2): M. RF 50% SMEM 0% Thread 66.7% TB 100%.
    p = KernelProfile{};
    p.name = "s2";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 128;
    p.regs_per_thread = 16;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 2.0;
    p.req_per_minst = 2;
    p.sfu_fraction = 0.0;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.10;
    p.mlp = 4;
    p.pattern = AccessPattern::RandomFootprint;
    p.reuse_prob = 0.30;
    p.footprint_bytes = 1 << 20;
    p.footprint_regions = 64;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    // ks (kmeans): M. RF 56.2% SMEM 0% Thread 100% TB 75%.
    p = KernelProfile{};
    p.name = "ks";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 256;
    p.regs_per_thread = 12;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 3.0;
    p.req_per_minst = 17;
    p.sfu_fraction = 0.0;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.05;
    p.mlp = 6;
    p.pattern = AccessPattern::StridedScatter;
    p.reuse_prob = 0.45;
    p.footprint_bytes = 1 << 20;
    p.footprint_regions = 64;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    // ax (ATAX): M. RF 56.2% SMEM 0% Thread 100% TB 75%.
    p = KernelProfile{};
    p.name = "ax";
    p.expected_class = KernelClass::Memory;
    p.threads_per_tb = 256;
    p.regs_per_thread = 12;
    p.smem_per_tb = 0;
    p.cinst_per_minst = 2.0;
    p.req_per_minst = 11;
    p.sfu_fraction = 0.0;
    p.smem_fraction = 0.0;
    p.write_fraction = 0.05;
    p.mlp = 6;
    p.pattern = AccessPattern::StridedScatter;
    p.reuse_prob = 0.25;
    p.footprint_bytes = 4 << 20;
    p.footprint_regions = 64;
    p.instrs_per_warp = 2048;
    v.push_back(p);

    return v;
}

} // namespace

const std::vector<KernelProfile> &
benchmarkSuite()
{
    static const std::vector<KernelProfile> suite = buildSuite();
    return suite;
}

const KernelProfile &
findProfile(std::string_view name)
{
    for (const KernelProfile &p : benchmarkSuite())
        if (p.name == name)
            return p;
    std::fprintf(stderr, "ckesim: unknown kernel profile '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
}

std::vector<const KernelProfile *>
kernelsOfClass(KernelClass cls)
{
    std::vector<const KernelProfile *> out;
    for (const KernelProfile &p : benchmarkSuite())
        if (p.expected_class == cls)
            out.push_back(&p);
    return out;
}

} // namespace ckesim
