/**
 * @file
 * Multiprogrammed workload construction (Section 2.3): CKE workloads
 * are pairs (or triples, Section 4.2) of benchmark kernels, classified
 * by the mix of compute- and memory-intensive members.
 */

#ifndef CKESIM_KERNELS_WORKLOAD_HPP
#define CKESIM_KERNELS_WORKLOAD_HPP

#include <string>
#include <vector>

#include "kernels/profile.hpp"

namespace ckesim {

/** Class of a multiprogrammed workload. */
enum class WorkloadClass {
    CC,  ///< all compute-intensive
    CM,  ///< mixed
    MM,  ///< all memory-intensive
};

/** A concurrent-kernel workload. */
struct Workload
{
    std::vector<const KernelProfile *> kernels;

    /** "bp+sv" style name, in kernel order. */
    std::string name() const;

    /** C+C / C+M / M+M (by count of memory-intensive members). */
    WorkloadClass cls() const;

    int numKernels() const
    {
        return static_cast<int>(kernels.size());
    }
};

/** Human-readable class label ("C+C", "C+M", "M+M"). */
std::string workloadClassName(WorkloadClass cls, int num_kernels = 2);

/** Build a workload from profile short names, e.g. {"bp","sv"}. */
Workload makeWorkload(const std::vector<std::string> &names);

/** All unordered pairs over the given kernels (suite order). */
std::vector<Workload>
allPairs(const std::vector<const KernelProfile *> &kernels);

/** All unordered pairs over the full 13-benchmark suite. */
std::vector<Workload> allSuitePairs();

/**
 * The representative pair list used by the quick bench mode: every
 * workload the paper examines individually (pf+bp, bp+hs, bp+sv,
 * bp+ks, sv+ks, sv+ax) plus enough extra pairs for class geomeans.
 */
std::vector<Workload> representativePairs();

/** Curated 3-kernel workloads spanning all four classes (Fig 14). */
std::vector<Workload> representativeTriples();

/** Workloads of one class. */
std::vector<Workload>
filterByClass(const std::vector<Workload> &all, WorkloadClass cls);

} // namespace ckesim

#endif // CKESIM_KERNELS_WORKLOAD_HPP
