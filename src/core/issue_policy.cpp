#include "core/issue_policy.hpp"

#include "sim/check.hpp"

namespace ckesim {

namespace {
/** Effectively "no limit". */
constexpr int kUnlimited = 1 << 20;
/** SMK quota deadlock escape: replenish if nothing issued this long. */
constexpr int kWarpQuotaStallReset = 256;

SimCtx
policyCtx(KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.kernel = kernel;
    ctx.module = "issue_policy";
    return ctx;
}
} // namespace

IssueController::IssueController(const IssuePolicyConfig &cfg,
                                 int num_kernels)
    : cfg_(cfg), num_kernels_(num_kernels)
{
    SIM_CHECK(num_kernels >= 1 && num_kernels <= kMaxKernelsPerSm,
              policyCtx(),
              "issue controller built for " << num_kernels
                                            << " kernels (supported: 1.."
                                            << kMaxKernelsPerSm << ")");
    replenishQuotas();
    for (int k = 0; k < num_kernels_; ++k) {
        warp_quota_left_[static_cast<std::size_t>(k)] =
            static_cast<std::int64_t>(
                cfg_.warp_quotas[static_cast<std::size_t>(k)]);
    }
}

void
IssueController::replenishQuotas()
{
    std::vector<double> rpm;
    rpm.reserve(static_cast<std::size_t>(num_kernels_));
    for (int k = 0; k < num_kernels_; ++k)
        rpm.push_back(rpm_[static_cast<std::size_t>(k)].value());
    const std::vector<int> fresh = qbmiQuotas(rpm);
    // The paper adds the new set to the current values so a kernel at
    // zero can still issue when no co-runner has a ready memory
    // instruction.
    for (int k = 0; k < num_kernels_; ++k)
        quota_[static_cast<std::size_t>(k)] +=
            fresh[static_cast<std::size_t>(k)];
}

void
IssueController::beginCycle(
    const std::array<bool, kMaxKernelsPerSm> &mem_demand)
{
    mem_demand_ = mem_demand;

    if (cfg_.bmi == BmiMode::QBMI) {
        bool depleted = false;
        for (int k = 0; k < num_kernels_; ++k)
            if (quota_[static_cast<std::size_t>(k)] <= 0)
                depleted = true;
        if (depleted)
            replenishQuotas();

        // QBMI x DMIL deadlock guard: a kernel frozen at its MIL
        // limit must never hold issue priority over the others — its
        // accumulated quota would starve every co-runner while it
        // waits on fills that cannot arrive until someone issues.
        // admitMemIssue skips frozen competitors, so whenever any
        // MIL-admissible kernel has demand, at least one of them
        // (the quota maximum) must be admitted.
        bool demand = false;
        bool admitted = false;
        for (int k = 0; k < num_kernels_; ++k) {
            if (!mem_demand_[static_cast<std::size_t>(k)])
                continue;
            if (inflight_[static_cast<std::size_t>(k)] >= milLimit(k))
                continue;
            demand = true;
            if (admitMemIssue(k))
                admitted = true;
        }
        SIM_INVARIANT(
            !demand || admitted, policyCtx(),
            "QBMI priority deadlock: every demanding MIL-admissible "
            "kernel is blocked by a MIL-frozen competitor's quota");
    }

    if (cfg_.warp_quota_enabled) {
        bool all_spent = true;
        for (int k = 0; k < num_kernels_; ++k)
            if (warp_quota_left_[static_cast<std::size_t>(k)] > 0)
                all_spent = false;
        ++quota_stall_cycles_;
        if (all_spent || quota_stall_cycles_ > kWarpQuotaStallReset) {
            for (int k = 0; k < num_kernels_; ++k) {
                warp_quota_left_[static_cast<std::size_t>(k)] =
                    static_cast<std::int64_t>(
                        cfg_.warp_quotas[static_cast<std::size_t>(k)]);
            }
            quota_stall_cycles_ = 0;
        }
    }
}

bool
IssueController::admitAnyIssue(KernelId k) const
{
    if (!cfg_.warp_quota_enabled)
        return true;
    return warp_quota_left_[static_cast<std::size_t>(k)] > 0;
}

bool
IssueController::admitMemIssue(KernelId k) const
{
    // MIL: cap in-flight memory instructions.
    if (inflight_[static_cast<std::size_t>(k)] >= milLimit(k))
        return false;

    switch (cfg_.bmi) {
      case BmiMode::None:
        return true;
      case BmiMode::RBMI: {
        // Loose round robin: the next issuable demanding kernel at or
        // after the pointer goes first (MIL-frozen kernels skipped).
        for (int i = 0; i < num_kernels_; ++i) {
            const int cand = (rr_next_ + i) % num_kernels_;
            if (!mem_demand_[static_cast<std::size_t>(cand)])
                continue;
            if (cand != k &&
                inflight_[static_cast<std::size_t>(cand)] >=
                    milLimit(cand))
                continue;
            return cand == k;
        }
        return true; // nobody registered demand: don't block
      }
      case BmiMode::QBMI: {
        // Highest current quota among demanding kernels goes first.
        // Kernels frozen by their MIL limit are not competitors: they
        // cannot issue this cycle, so they must not block others.
        const int mine = quota_[static_cast<std::size_t>(k)];
        for (int other = 0; other < num_kernels_; ++other) {
            if (other == k ||
                !mem_demand_[static_cast<std::size_t>(other)])
                continue;
            if (inflight_[static_cast<std::size_t>(other)] >=
                milLimit(other))
                continue;
            if (quota_[static_cast<std::size_t>(other)] > mine)
                return false;
        }
        return true;
      }
    }
    return true;
}

void
IssueController::onInstrIssued(KernelId k)
{
    quota_stall_cycles_ = 0;
    if (cfg_.warp_quota_enabled)
        --warp_quota_left_[static_cast<std::size_t>(k)];
}

void
IssueController::onMemInstrIssued(KernelId k)
{
    const auto i = static_cast<std::size_t>(k);
    ++inflight_[i];
    milg_[i].observeInflight(inflight_[i]);
    if (cfg_.bmi == BmiMode::QBMI) {
        --quota_[i];
        rpm_[i].onMemInstr();
    } else if (cfg_.bmi == BmiMode::RBMI) {
        rr_next_ = (k + 1) % num_kernels_;
    }
}

void
IssueController::onMemInstrCompleted(KernelId k)
{
    const auto i = static_cast<std::size_t>(k);
    SIM_INVARIANT(inflight_[i] > 0, policyCtx(k),
                  "memory-instruction completion with zero in flight "
                     "(duplicate completion or wrong kernel)");
    --inflight_[i];
}

void
IssueController::onRequestServiced(KernelId k)
{
    const auto i = static_cast<std::size_t>(k);
    if (cfg_.bmi == BmiMode::QBMI)
        rpm_[i].onRequest();
    if (cfg_.mil == MilMode::Dynamic)
        milg_[i].onRequest();
}

void
IssueController::onRsFail(KernelId k)
{
    if (cfg_.mil == MilMode::Dynamic)
        milg_[static_cast<std::size_t>(k)].onRsFail();
}

void
IssueController::setMilBypass(bool bypass)
{
    if (mil_bypass_ && !bypass) {
        for (int k = 0; k < num_kernels_; ++k)
            milg_[static_cast<std::size_t>(k)].reset();
    }
    mil_bypass_ = bypass;
}

int
IssueController::milLimit(KernelId k) const
{
    const auto i = static_cast<std::size_t>(k);
    if (mil_bypass_)
        return kUnlimited;
    if (cfg_.mil == MilMode::Dynamic && mil_override_[i] > 0)
        return mil_override_[i];
    switch (cfg_.mil) {
      case MilMode::None:
        return kUnlimited;
      case MilMode::Static: {
        const int lim = cfg_.static_limits[i];
        return lim > 0 ? lim : kUnlimited;
      }
      case MilMode::Dynamic:
        return milg_[i].limit();
    }
    return kUnlimited;
}

} // namespace ckesim
