#include "core/issue_policy.hpp"

#include "sim/check.hpp"

namespace ckesim {

namespace {
/** Effectively "no limit". */
constexpr int kUnlimited = 1 << 20;
/** SMK quota deadlock escape: replenish if nothing issued this long. */
constexpr int kWarpQuotaStallReset = 256;

SimCtx
policyCtx(KernelId kernel = kInvalidKernel)
{
    SimCtx ctx;
    ctx.kernel = kernel;
    ctx.module = "issue_policy";
    return ctx;
}
} // namespace

IssueController::IssueController(const IssuePolicyConfig &cfg,
                                 int num_kernels)
    : cfg_(cfg), num_kernels_(num_kernels)
{
    SIM_CHECK(num_kernels >= 1 && num_kernels <= kMaxKernelsPerSm,
              policyCtx(),
              "issue controller built for " << num_kernels
                                            << " kernels (supported: 1.."
                                            << kMaxKernelsPerSm << ")");
    replenishQuotas();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(num_kernels_); ++i) {
        warp_quota_left_[i] =
            static_cast<std::int64_t>(cfg_.warp_quotas[i]);
    }
}

void
IssueController::replenishQuotas()
{
    std::vector<double> rpm;
    rpm.reserve(static_cast<std::size_t>(num_kernels_));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(num_kernels_); ++i)
        rpm.push_back(rpm_[i].value());
    const std::vector<int> fresh = qbmiQuotas(rpm);
    // The paper adds the new set to the current values so a kernel at
    // zero can still issue when no co-runner has a ready memory
    // instruction.
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(num_kernels_); ++i)
        quota_[i] += fresh[i];
}

void
IssueController::beginCycle(
    const std::array<bool, kMaxKernelsPerSm> &mem_demand)
{
    mem_demand_ = mem_demand;

    if (cfg_.bmi == BmiMode::QBMI) {
        bool depleted = false;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(num_kernels_); ++i)
            if (quota_[i] <= 0)
                depleted = true;
        if (depleted)
            replenishQuotas();

        // QBMI x DMIL deadlock guard: a kernel frozen at its MIL
        // limit must never hold issue priority over the others — its
        // accumulated quota would starve every co-runner while it
        // waits on fills that cannot arrive until someone issues.
        // admitMemIssue skips frozen competitors, so whenever any
        // MIL-admissible kernel has demand, at least one of them
        // (the quota maximum) must be admitted.
        bool demand = false;
        bool admitted = false;
        for (int ki = 0; ki < num_kernels_; ++ki) {
            const KernelId k{ki};
            if (!mem_demand_[k.idx()])
                continue;
            if (inflight_[k.idx()] >= milLimit(k))
                continue;
            demand = true;
            if (admitMemIssue(k))
                admitted = true;
        }
        SIM_INVARIANT(
            !demand || admitted, policyCtx(),
            "QBMI priority deadlock: every demanding MIL-admissible "
            "kernel is blocked by a MIL-frozen competitor's quota");
    }

    if (cfg_.warp_quota_enabled) {
        bool all_spent = true;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(num_kernels_); ++i)
            if (warp_quota_left_[i] > 0)
                all_spent = false;
        ++quota_stall_cycles_;
        if (all_spent || quota_stall_cycles_ > kWarpQuotaStallReset) {
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(num_kernels_); ++i) {
                warp_quota_left_[i] =
                    static_cast<std::int64_t>(cfg_.warp_quotas[i]);
            }
            quota_stall_cycles_ = 0;
        }
    }
}

bool
IssueController::hasPerCycleWork() const
{
    // SMK-(P+W): quota_stall_cycles_ advances every single cycle.
    if (cfg_.warp_quota_enabled)
        return true;
    // QBMI: a depleted quota replenishes at the next beginCycle.
    if (cfg_.bmi == BmiMode::QBMI) {
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(num_kernels_); ++i)
            if (quota_[i] <= 0)
                return true;
    }
    return false;
}

bool
IssueController::admitAnyIssue(KernelId k) const
{
    if (!cfg_.warp_quota_enabled)
        return true;
    return warp_quota_left_[k.idx()] > 0;
}

bool
IssueController::admitMemIssue(KernelId k) const
{
    // MIL: cap in-flight memory instructions.
    if (inflight_[k.idx()] >= milLimit(k))
        return false;

    switch (cfg_.bmi) {
      case BmiMode::None:
        return true;
      case BmiMode::RBMI: {
        // Loose round robin: the next issuable demanding kernel at or
        // after the pointer goes first (MIL-frozen kernels skipped).
        for (int i = 0; i < num_kernels_; ++i) {
            const KernelId cand{(rr_next_ + i) % num_kernels_};
            if (!mem_demand_[cand.idx()])
                continue;
            if (cand != k && inflight_[cand.idx()] >= milLimit(cand))
                continue;
            return cand == k;
        }
        return true; // nobody registered demand: don't block
      }
      case BmiMode::QBMI: {
        // Highest current quota among demanding kernels goes first.
        // Kernels frozen by their MIL limit are not competitors: they
        // cannot issue this cycle, so they must not block others.
        const int mine = quota_[k.idx()];
        for (int oi = 0; oi < num_kernels_; ++oi) {
            const KernelId other{oi};
            if (other == k || !mem_demand_[other.idx()])
                continue;
            if (inflight_[other.idx()] >= milLimit(other))
                continue;
            if (quota_[other.idx()] > mine)
                return false;
        }
        return true;
      }
    }
    return true;
}

void
IssueController::onInstrIssued(KernelId k)
{
    quota_stall_cycles_ = 0;
    if (cfg_.warp_quota_enabled)
        --warp_quota_left_[k.idx()];
}

void
IssueController::onMemInstrIssued(KernelId k)
{
    const auto i = k.idx();
    ++inflight_[i];
    milg_[i].observeInflight(inflight_[i]);
    if (cfg_.bmi == BmiMode::QBMI) {
        --quota_[i];
        rpm_[i].onMemInstr();
    } else if (cfg_.bmi == BmiMode::RBMI) {
        rr_next_ = (k.get() + 1) % num_kernels_;
    }
}

void
IssueController::onMemInstrCompleted(KernelId k)
{
    const auto i = k.idx();
    SIM_INVARIANT(inflight_[i] > 0, policyCtx(k),
                  "memory-instruction completion with zero in flight "
                     "(duplicate completion or wrong kernel)");
    --inflight_[i];
}

void
IssueController::onRequestServiced(KernelId k)
{
    const auto i = k.idx();
    if (cfg_.bmi == BmiMode::QBMI)
        rpm_[i].onRequest();
    if (cfg_.mil == MilMode::Dynamic)
        milg_[i].onRequest();
}

void
IssueController::onRsFail(KernelId k)
{
    if (cfg_.mil == MilMode::Dynamic)
        milg_[k.idx()].onRsFail();
}

void
IssueController::setMilBypass(bool bypass)
{
    if (mil_bypass_ && !bypass) {
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(num_kernels_); ++i)
            milg_[i].reset();
    }
    mil_bypass_ = bypass;
}

void
IssueController::snapshot(SnapshotWriter &w) const
{
    w.section("issue_controller");
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        w.i64(inflight_[i]);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        milg_[i].snapshot(w);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        w.i64(mil_override_[i]);
    w.boolean(mil_bypass_);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        w.boolean(mem_demand_[i]);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        w.i64(quota_[i]);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        rpm_[i].snapshot(w);
    w.i64(rr_next_);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        w.i64(warp_quota_left_[i]);
    w.i64(quota_stall_cycles_);
}

void
IssueController::restore(SnapshotReader &r)
{
    r.section("issue_controller");
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        inflight_[i] = static_cast<int>(r.i64());
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        milg_[i].restore(r);
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        mil_override_[i] = static_cast<int>(r.i64());
    mil_bypass_ = r.boolean();
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        mem_demand_[i] = r.boolean();
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        quota_[i] = static_cast<int>(r.i64());
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        rpm_[i].restore(r);
    rr_next_ = static_cast<int>(r.i64());
    for (std::size_t i = 0; i < kMaxKernelsPerSm; ++i)
        warp_quota_left_[i] = r.i64();
    quota_stall_cycles_ = static_cast<int>(r.i64());
}

int
IssueController::milLimit(KernelId k) const
{
    const auto i = k.idx();
    if (mil_bypass_)
        return kUnlimited;
    if (cfg_.mil == MilMode::Dynamic && mil_override_[i] > 0)
        return mil_override_[i];
    switch (cfg_.mil) {
      case MilMode::None:
        return kUnlimited;
      case MilMode::Static: {
        const int lim = cfg_.static_limits[i];
        return lim > 0 ? lim : kUnlimited;
      }
      case MilMode::Dynamic:
        return milg_[i].limit();
    }
    return kUnlimited;
}

} // namespace ckesim
