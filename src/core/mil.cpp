#include "core/mil.hpp"

namespace ckesim {

std::vector<int>
smilLimitGrid(bool dense)
{
    if (dense) {
        std::vector<int> grid;
        for (int i = 1; i <= 24; ++i)
            grid.push_back(i);
        grid.push_back(kSmilInf);
        return grid;
    }
    return {1, 2, 4, 8, 16, kSmilInf};
}

} // namespace ckesim
