#include "core/qbmi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ckesim {

std::uint64_t
lcm64(std::uint64_t a, std::uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return a / std::gcd(a, b) * b;
}

std::vector<int>
qbmiQuotas(const std::vector<double> &req_per_minst)
{
    std::vector<std::uint64_t> r;
    r.reserve(req_per_minst.size());
    for (double v : req_per_minst) {
        const auto rounded =
            static_cast<std::uint64_t>(std::llround(std::max(v, 1.0)));
        r.push_back(std::max<std::uint64_t>(rounded, 1));
    }
    std::uint64_t l = 1;
    for (std::uint64_t v : r)
        l = lcm64(l, v);
    std::vector<int> quotas;
    quotas.reserve(r.size());
    for (std::uint64_t v : r)
        quotas.push_back(static_cast<int>(l / v));
    return quotas;
}

} // namespace ckesim
