#include "core/tb_partition.hpp"

#include "sim/check.hpp"

namespace ckesim {

bool
partitionFits(const std::vector<int> &tbs,
              const std::vector<const KernelProfile *> &kernels,
              const SmConfig &sm)
{
    SimCtx ctx;
    ctx.module = "tb_partition";
    SIM_CHECK(tbs.size() == kernels.size(), ctx,
              "partition vector has " << tbs.size() << " entries for "
                                      << kernels.size() << " kernels");
    long regs = 0, smem = 0, threads = 0, tb_slots = 0, warps = 0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelProfile &p = *kernels[i];
        const long n = tbs[i];
        regs += n * p.regsPerTb();
        smem += n * p.smem_per_tb;
        threads += n * p.threads_per_tb;
        warps += n * p.warpsPerTb(sm.simd_width);
        tb_slots += n;
    }
    return regs <= sm.register_file && smem <= sm.smem_bytes &&
           threads <= sm.max_threads && warps <= sm.max_warps &&
           tb_slots <= sm.max_tbs;
}

int
maxFeasibleTbs(std::vector<int> tbs, int kernel_index,
               const std::vector<const KernelProfile *> &kernels,
               const SmConfig &sm)
{
    int best = 0;
    const int cap = kernels[static_cast<std::size_t>(kernel_index)]
                        ->maxTbsPerSm(sm);
    for (int n = 1; n <= cap; ++n) {
        tbs[static_cast<std::size_t>(kernel_index)] = n;
        if (partitionFits(tbs, kernels, sm))
            best = n;
        else
            break;
    }
    return best;
}

std::vector<int>
leftoverPartition(const std::vector<const KernelProfile *> &kernels,
                  const SmConfig &sm)
{
    std::vector<int> tbs(kernels.size(), 0);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        tbs[i] = maxFeasibleTbs(tbs, static_cast<int>(i), kernels, sm);
    return tbs;
}

QuotaMatrix
spatialPartition(const std::vector<const KernelProfile *> &kernels,
                 const GpuConfig &cfg)
{
    QuotaMatrix quotas(static_cast<std::size_t>(cfg.num_sms));
    for (auto &row : quotas)
        row.fill(0);
    const int n = static_cast<int>(kernels.size());
    const int per = cfg.num_sms / n;
    for (int s = 0; s < cfg.num_sms; ++s) {
        int k = per > 0 ? s / per : 0;
        if (k >= n)
            k = n - 1; // remainder SMs go to the last kernel
        quotas[static_cast<std::size_t>(s)][static_cast<std::size_t>(k)] =
            kernels[static_cast<std::size_t>(k)]->maxTbsPerSm(cfg.sm);
    }
    return quotas;
}

QuotaMatrix
broadcastPartition(const std::vector<int> &tbs, int num_sms)
{
    QuotaMatrix quotas(static_cast<std::size_t>(num_sms));
    for (auto &row : quotas) {
        row.fill(0);
        for (std::size_t k = 0; k < tbs.size(); ++k)
            row[k] = tbs[k];
    }
    return quotas;
}

} // namespace ckesim
