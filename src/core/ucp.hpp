/**
 * @file
 * UCP — Utility-based Cache Partitioning (Qureshi & Patt, MICRO'06) —
 * the CPU-style L1D way-partitioning baseline the paper evaluates and
 * rejects in Section 3.1.
 *
 * Per kernel, a UMON (utility monitor) samples a subset of sets with
 * full-associativity shadow tags and per-recency-position hit
 * counters; the lookahead algorithm then assigns ways to kernels by
 * marginal utility. Partitions constrain victim selection only.
 */

#ifndef CKESIM_CORE_UCP_HPP
#define CKESIM_CORE_UCP_HPP

#include <cstdint>
#include <vector>

#include "mem/address.hpp"
#include "sim/types.hpp"

namespace ckesim {

class SnapshotWriter;
class SnapshotReader;

/** Shadow-tag utility monitor for one kernel on one SM's L1D. */
class UmonMonitor
{
  public:
    /**
     * @param num_sets sets of the monitored cache
     * @param assoc ways of the monitored cache
     * @param sample_shift monitor every 2^sample_shift-th set
     */
    UmonMonitor(int num_sets, int assoc, int sample_shift = 2);

    /** Observe a serviced access to @p line_number. */
    void access(LineAddr line_number);

    /** Hits at each LRU stack position (way utility). */
    const std::vector<std::uint64_t> &wayHits() const
    {
        return way_hits_;
    }
    std::uint64_t misses() const { return misses_; }

    /** Expected hits if this kernel had @p ways ways. */
    std::uint64_t utilityAt(int ways) const;

    /** Halve all counters (periodic aging between repartitions). */
    void age();

    /** Serialize shadow tags and utility counters (checkpointing). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a monitor of identical geometry. */
    void restore(SnapshotReader &r);

  private:
    int num_sets_;     // SNAPSHOT-SKIP(fixed at construction)
    int assoc_;        // SNAPSHOT-SKIP(fixed at construction)
    int sample_shift_; // SNAPSHOT-SKIP(fixed at construction)
    /** shadow_tags_[sampled_set] = MRU-first line list. */
    std::vector<std::vector<LineAddr>> shadow_tags_;
    std::vector<std::uint64_t> way_hits_;
    std::uint64_t misses_ = 0;
};

/**
 * UCP lookahead partitioning: distribute @p assoc ways over kernels
 * by greedy marginal utility; every kernel receives at least one way.
 */
std::vector<int>
ucpLookaheadPartition(const std::vector<const UmonMonitor *> &monitors,
                      int assoc);

} // namespace ckesim

#endif // CKESIM_CORE_UCP_HPP
