/**
 * @file
 * QBMI — Quota-Based Memory request Issuing (Section 3.2, Figure 7).
 *
 * Memory *instruction* quotas are derived from each kernel's measured
 * requests-per-memory-instruction so that the issued *request* volume
 * balances across kernels:
 *
 *     quota_i = LCM(r_0, ..., r_{n-1}) / r_i
 *
 * A kernel's priority to issue a memory instruction is its current
 * quota (higher quota first); each issued memory instruction costs one
 * quota unit; when any kernel's quota reaches zero a fresh quota set —
 * computed from the most recent Req/Minst estimates (re-sampled every
 * 1024 requests) — is *added* to the current values.
 */

#ifndef CKESIM_CORE_QBMI_HPP
#define CKESIM_CORE_QBMI_HPP

#include <cstdint>
#include <vector>

#include "sim/snapshot.hpp"

namespace ckesim {

/** Least common multiple (safe for the small r_i values seen here). */
std::uint64_t lcm64(std::uint64_t a, std::uint64_t b);

/**
 * Compute per-kernel quotas from rounded Req/Minst values.
 * @param req_per_minst one entry per kernel; values are clamped to
 *        >= 1 before use
 */
std::vector<int>
qbmiQuotas(const std::vector<double> &req_per_minst);

/**
 * Online Req/Minst estimator: re-sampled every 1024 requests, matching
 * the paper's observation that Req/Minst is stable within a kernel.
 */
class ReqPerMinstEstimator
{
  public:
    static constexpr int kSampleRequests = 1024;

    void
    onMemInstr()
    {
        ++minsts_;
    }

    void
    onRequest()
    {
        ++requests_;
        if (requests_ >= kSampleRequests) {
            if (minsts_ > 0) {
                estimate_ = static_cast<double>(requests_) /
                            static_cast<double>(minsts_);
            }
            requests_ = 0;
            minsts_ = 0;
        }
    }

    /** Latest estimate (1.0 until the first window completes). */
    double value() const { return estimate_; }

    void
    reset()
    {
        requests_ = 0;
        minsts_ = 0;
        estimate_ = 1.0;
    }

    void
    snapshot(SnapshotWriter &w) const
    {
        w.i64(requests_);
        w.i64(minsts_);
        w.f64(estimate_);
    }

    void
    restore(SnapshotReader &r)
    {
        requests_ = static_cast<int>(r.i64());
        minsts_ = static_cast<int>(r.i64());
        estimate_ = r.f64();
    }

  private:
    int requests_ = 0;
    int minsts_ = 0;
    double estimate_ = 1.0;
};

} // namespace ckesim

#endif // CKESIM_CORE_QBMI_HPP
