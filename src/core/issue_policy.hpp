/**
 * @file
 * Per-SM CKE issue controller: the paper's BMI (RBMI/QBMI) and MIL
 * (SMIL/DMIL) mechanisms, plus SMK's warp-instruction quota gating.
 *
 * The SM consults the controller before issuing instructions and feeds
 * back LSU/L1D events; the controller never touches SM state directly,
 * mirroring the lightweight-hardware framing of Section 4.4.
 */

#ifndef CKESIM_CORE_ISSUE_POLICY_HPP
#define CKESIM_CORE_ISSUE_POLICY_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "core/milg.hpp"
#include "core/qbmi.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Balanced-memory-issuing flavour (Section 3.2). */
enum class BmiMode {
    None, ///< unmanaged competition (baseline intra-SM sharing)
    RBMI, ///< loose round-robin over kernels
    QBMI, ///< quota-based (LCM of Req/Minst)
};

/** Memory-instruction-limiting flavour (Section 3.3). */
enum class MilMode {
    None,
    Static,  ///< SMIL: fixed per-kernel limits (offline sweep)
    Dynamic, ///< DMIL: per-kernel MILG adapts at run time
};

/** Scheme knobs an SM's controller is built from. */
struct IssuePolicyConfig
{
    BmiMode bmi = BmiMode::None;
    MilMode mil = MilMode::None;
    /** SMIL per-kernel limits; <= 0 means unlimited ("Inf"). */
    std::array<int, kMaxKernelsPerSm> static_limits{};
    /** SMK-(P+W): gate *all* instruction issue by epoch quotas. */
    bool warp_quota_enabled = false;
    /** SMK warp-instruction quota per kernel per epoch. */
    std::array<std::uint64_t, kMaxKernelsPerSm> warp_quotas{};
};

/**
 * Tracks per-kernel issue rights inside one SM.
 */
class IssueController
{
  public:
    IssueController(const IssuePolicyConfig &cfg, int num_kernels);

    /**
     * Called once per cycle before scheduling with, per kernel,
     * whether any ready warp wants to issue a *global memory*
     * instruction this cycle (BMI priority needs cross-kernel
     * demand).
     */
    void beginCycle(const std::array<bool, kMaxKernelsPerSm> &mem_demand);

    /** SMK-(P+W): may kernel @p k issue any instruction? */
    bool admitAnyIssue(KernelId k) const;

    /** May kernel @p k issue a global-memory instruction now? */
    bool admitMemIssue(KernelId k) const;

    // ---- event feedback ------------------------------------------------
    /** Any warp instruction issued (SMK quota accounting). */
    void onInstrIssued(KernelId k);
    /** A global-memory warp instruction entered the LSU. */
    void onMemInstrIssued(KernelId k);
    /** That instruction fully completed (loads: data returned). */
    void onMemInstrCompleted(KernelId k);
    /** A coalesced request was serviced by the L1D. */
    void onRequestServiced(KernelId k);
    /** A reservation failure charged to kernel @p k's head request. */
    void onRsFail(KernelId k);

    // ---- inspection ----------------------------------------------------
    int inflight(KernelId k) const
    {
        return inflight_[k.idx()];
    }
    /** Effective in-flight limit for kernel @p k (large = unlimited). */
    int milLimit(KernelId k) const;

    /**
     * Suspend/resume MIL enforcement (the dynamic Warped-Slicer
     * profiling phase measures unthrottled scalability curves).
     * Resuming resets the MILGs so stale profiling-phase limits do
     * not leak into the measurement phase.
     */
    void setMilBypass(bool bypass);

    /**
     * Global-DMIL variant (Section 3.3.2): adopt a broadcast limit
     * for kernel @p k instead of the local MILG's (0 clears the
     * override). Only meaningful in Dynamic mode.
     */
    void
    overrideMilLimit(KernelId k, int limit)
    {
        mil_override_[k.idx()] = limit;
    }
    int qbmiQuota(KernelId k) const
    {
        return quota_[k.idx()];
    }
    /** The cross-kernel demand vector beginCycle last latched. */
    const std::array<bool, kMaxKernelsPerSm> &memDemand() const
    {
        return mem_demand_;
    }

    /**
     * Would beginCycle mutate controller state this cycle even with
     * an unchanged demand vector? True while SMK epoch quotas are
     * enabled (the stall counter advances every cycle) and while a
     * depleted QBMI quota awaits replenishment.
     */
    bool hasPerCycleWork() const;

    /**
     * Clockable horizon (sim/clockable.hpp): the controller has no
     * tick of its own — beginCycle is its per-cycle entry — so the
     * horizon is `now` while per-cycle work exists and kNeverCycle
     * otherwise (every other mutation rides an issue/return event).
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return hasPerCycleWork() ? now : kNeverCycle;
    }
    const Milg &milg(KernelId k) const
    {
        return milg_[k.idx()];
    }
    int numKernels() const { return num_kernels_; }

    /** Serialize MIL/BMI/quota state (checkpointing). */
    void snapshot(SnapshotWriter &w) const;

    /** Restore into a controller of identical configuration. */
    void restore(SnapshotReader &r);

  private:
    void replenishQuotas();

    IssuePolicyConfig cfg_; // SNAPSHOT-SKIP(fixed at construction)
    int num_kernels_;       // SNAPSHOT-SKIP(fixed at construction)

    // MIL state.
    std::array<int, kMaxKernelsPerSm> inflight_{};
    std::array<Milg, kMaxKernelsPerSm> milg_{};
    std::array<int, kMaxKernelsPerSm> mil_override_{};
    bool mil_bypass_ = false;

    // BMI state.
    std::array<bool, kMaxKernelsPerSm> mem_demand_{};
    std::array<int, kMaxKernelsPerSm> quota_{};
    std::array<ReqPerMinstEstimator, kMaxKernelsPerSm> rpm_{};
    int rr_next_ = 0; ///< RBMI round-robin pointer

    // SMK warp-instruction quota state.
    std::array<std::int64_t, kMaxKernelsPerSm> warp_quota_left_{};
    int quota_stall_cycles_ = 0;
};

} // namespace ckesim

#endif // CKESIM_CORE_ISSUE_POLICY_HPP
