#include "core/ucp.hpp"

#include <algorithm>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

UmonMonitor::UmonMonitor(int num_sets, int assoc, int sample_shift)
    : num_sets_(num_sets), assoc_(assoc), sample_shift_(sample_shift),
      shadow_tags_(static_cast<std::size_t>(
          std::max(1, num_sets >> sample_shift))),
      way_hits_(static_cast<std::size_t>(assoc), 0)
{
}

void
UmonMonitor::access(LineAddr line_number)
{
    const int set = xorSetIndex(line_number, num_sets_);
    if (set & ((1 << sample_shift_) - 1))
        return; // not a sampled set
    auto &stack =
        shadow_tags_[static_cast<std::size_t>(set >> sample_shift_)];

    for (std::size_t pos = 0; pos < stack.size(); ++pos) {
        if (stack[pos] == line_number) {
            ++way_hits_[pos];
            // Move to MRU.
            stack.erase(stack.begin() +
                        static_cast<std::ptrdiff_t>(pos));
            stack.insert(stack.begin(), line_number);
            return;
        }
    }
    ++misses_;
    stack.insert(stack.begin(), line_number);
    if (static_cast<int>(stack.size()) > assoc_)
        stack.pop_back();
}

std::uint64_t
UmonMonitor::utilityAt(int ways) const
{
    std::uint64_t hits = 0;
    for (int w = 0; w < ways && w < assoc_; ++w)
        hits += way_hits_[static_cast<std::size_t>(w)];
    return hits;
}

void
UmonMonitor::age()
{
    for (std::uint64_t &h : way_hits_)
        h >>= 1;
    misses_ >>= 1;
}

void
UmonMonitor::snapshot(SnapshotWriter &w) const
{
    w.section("umon");
    w.u64(shadow_tags_.size());
    for (const std::vector<LineAddr> &stack : shadow_tags_) {
        w.u64(stack.size());
        for (const LineAddr line : stack)
            w.unit(line);
    }
    w.vecU64(way_hits_);
    w.u64(misses_);
}

void
UmonMonitor::restore(SnapshotReader &r)
{
    r.section("umon");
    SimCtx ctx;
    ctx.module = "ucp";
    const std::uint64_t nsets = r.u64();
    SIM_CHECK(nsets == shadow_tags_.size(), ctx,
              "snapshot holds " << nsets
                                << " sampled sets, monitor has "
                                << shadow_tags_.size());
    for (std::vector<LineAddr> &stack : shadow_tags_) {
        stack.clear();
        const std::uint64_t m = r.u64();
        SIM_CHECK(m <= static_cast<std::uint64_t>(assoc_), ctx,
                  "shadow stack of " << m << " lines exceeds assoc "
                                     << assoc_);
        stack.reserve(static_cast<std::size_t>(m));
        for (std::uint64_t i = 0; i < m; ++i)
            stack.push_back(r.unit<LineAddr>());
    }
    way_hits_ = r.vecU64();
    SIM_CHECK(way_hits_.size() == static_cast<std::size_t>(assoc_),
              ctx,
              "snapshot holds " << way_hits_.size()
                                << " way-hit counters, monitor has "
                                << assoc_);
    misses_ = r.u64();
}

std::vector<int>
ucpLookaheadPartition(const std::vector<const UmonMonitor *> &monitors,
                      int assoc)
{
    const std::size_t n = monitors.size();
    SimCtx ctx;
    ctx.module = "ucp";
    SIM_CHECK(n >= 1, ctx, "UCP partition over zero kernels");
    std::vector<int> alloc(n, 1); // every kernel keeps one way
    int remaining = assoc - static_cast<int>(n);
    SIM_CHECK(remaining >= 0, ctx,
              "associativity " << assoc << " cannot give each of " << n
                               << " kernels a way");

    while (remaining > 0) {
        // Greedy: give the next way to the kernel with the highest
        // marginal utility.
        std::size_t best = 0;
        std::uint64_t best_gain = 0;
        bool found = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (alloc[i] >= assoc)
                continue;
            const std::uint64_t gain =
                monitors[i]->utilityAt(alloc[i] + 1) -
                monitors[i]->utilityAt(alloc[i]);
            if (!found || gain > best_gain) {
                best = i;
                best_gain = gain;
                found = true;
            }
        }
        if (!found)
            break;
        ++alloc[best];
        --remaining;
    }
    // Hand out any leftovers (all kernels saturated) to kernel 0.
    if (remaining > 0)
        alloc[0] += remaining;
    return alloc;
}

} // namespace ckesim
