/**
 * @file
 * MILG — Memory Instruction Limiting number Generator (Figure 10).
 *
 * The hardware consists of one 7-bit peak in-flight memory instruction
 * counter, one 12-bit reservation-failure counter, one 10-bit memory
 * request counter and a 10-bit right shifter. Every 1024 memory
 * requests from its kernel the MILG recomputes the allowed number of
 * in-flight memory instructions:
 *
 *     rsfail_per_req = rsfails >> 10
 *     limit = rsfail_per_req >= 1
 *               ? max(peak_inflight / (rsfail_per_req + 1), 1)
 *               : peak_inflight * 3 / 2 + ...    (AIMD relax)
 *
 * i.e. throttle until there is at most ~one reservation failure per
 * memory request ("a fully utilized / near stall-free memory
 * pipeline", Section 3.3.2), and regrow multiplicatively through
 * congestion-free intervals.
 */

#ifndef CKESIM_CORE_MILG_HPP
#define CKESIM_CORE_MILG_HPP

#include <algorithm>
#include <cstdint>

#include "sim/snapshot.hpp"

namespace ckesim {

/** One kernel's limiting-number generator (one per kernel per SM). */
class Milg
{
  public:
    /** Counter widths of the hardware design (Section 4.4). */
    static constexpr int kInflightBits = 7;
    static constexpr int kRsFailBits = 12;
    static constexpr int kRequestBits = 10;

    static constexpr int kIntervalRequests = 1 << kRequestBits; // 1024
    static constexpr int kMaxInflight = (1 << kInflightBits) - 1;
    static constexpr int kRsFailSaturation = (1 << kRsFailBits) - 1;

    /** "No limit yet": before the first interval completes. */
    static constexpr int kUnlimited = 1 << 20;

    /** Total storage bits of one MILG instance (overhead study). */
    static constexpr int kStorageBits =
        kInflightBits + kRsFailBits + kRequestBits;

    Milg() = default;

    /** A memory request from this kernel was serviced by the L1D. */
    void
    onRequest()
    {
        ++request_counter_;
        if (request_counter_ >= kIntervalRequests)
            recompute();
    }

    /** A reservation failure was charged to this kernel. */
    void
    onRsFail()
    {
        if (rsfail_counter_ < kRsFailSaturation)
            ++rsfail_counter_;
    }

    /** Track the peak in-flight memory instruction count. */
    void
    observeInflight(int inflight)
    {
        if (inflight > peak_inflight_)
            peak_inflight_ = inflight > kMaxInflight ? kMaxInflight
                                                     : inflight;
    }

    /** Current allowed in-flight memory instructions (>= 1). */
    int limit() const { return limit_; }

    /** Number of completed sampling intervals (diagnostics). */
    std::uint64_t intervals() const { return intervals_; }

    void
    reset()
    {
        request_counter_ = 0;
        rsfail_counter_ = 0;
        peak_inflight_ = 0;
        limit_ = kUnlimited;
        prev_over_ = false;
        intervals_ = 0;
    }

    void
    snapshot(SnapshotWriter &w) const
    {
        w.i64(request_counter_);
        w.i64(rsfail_counter_);
        w.i64(peak_inflight_);
        w.i64(limit_);
        w.boolean(prev_over_);
        w.u64(intervals_);
    }

    void
    restore(SnapshotReader &r)
    {
        request_counter_ = static_cast<int>(r.i64());
        rsfail_counter_ = static_cast<int>(r.i64());
        peak_inflight_ = static_cast<int>(r.i64());
        limit_ = static_cast<int>(r.i64());
        prev_over_ = r.boolean();
        intervals_ = r.u64();
    }

  private:
    /** Optional left pre-shift on the rsfail count before the 10-bit
     *  divide (threshold scaling). 0 keeps the paper's threshold of
     *  one reservation failure per memory request. */
    static constexpr int kThresholdScaleShift = 0;

    void
    recompute()
    {
        // 10-bit right shift: reservation failures per memory
        // request.
        const int rsfail_per_req =
            (rsfail_counter_ << kThresholdScaleShift) >> kRequestBits;
        const int peak = peak_inflight_ > 0 ? peak_inflight_ : 1;
        const bool over = rsfail_per_req >= 1;
        if (over && !prev_over_) {
            // Hysteresis (one flip-flop): a single congested interval
            // holds the limit; only sustained congestion throttles.
            // Prevents transient spikes from clamping compute-
            // intensive kernels (Figure 9(a): C+C wants no limits).
            prev_over_ = true;
            limit_ = peak > 0 ? std::max(peak, 1) : limit_;
        } else if (over) {
            // Over the "at most one reservation failure per memory
            // request" target (Section 3.3.2): throttle. The +1 makes
            // the divide strictly reducing at the boundary so the
            // limit converges instead of oscillating at peak.
            limit_ = peak / (rsfail_per_req + 1);
            if (limit_ < 1)
                limit_ = 1;
        } else {
            // Congestion-free interval: relax multiplicatively so a
            // kernel throttled during a transient (e.g. before its
            // co-runner was itself limited) regrows within a few
            // sampling intervals.
            prev_over_ = false;
            limit_ = peak + std::max(peak / 2, 1);
        }
        request_counter_ = 0;
        rsfail_counter_ = 0;
        peak_inflight_ = 0;
        ++intervals_;
    }

    int request_counter_ = 0;
    int rsfail_counter_ = 0;
    int peak_inflight_ = 0;
    int limit_ = kUnlimited;
    bool prev_over_ = false;
    std::uint64_t intervals_ = 0;
};

} // namespace ckesim

#endif // CKESIM_CORE_MILG_HPP
