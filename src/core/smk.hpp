/**
 * @file
 * SMK (Wang et al., HPCA'16) support: Dominant-Resource-Fairness TB
 * partitioning (SMK-P) and the periodic warp-instruction quota
 * allocation of SMK-(P+W), both as described in Sections 1 and 4 of
 * the reproduced paper.
 */

#ifndef CKESIM_CORE_SMK_HPP
#define CKESIM_CORE_SMK_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/profile.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace ckesim {

/**
 * DRF partition: repeatedly grant one TB to the kernel whose dominant
 * static-resource share (registers / shared memory / threads / TB
 * slots) is currently smallest, while it still fits. Every kernel is
 * guaranteed at least one TB when at all feasible.
 */
std::vector<int>
drfPartition(const std::vector<const KernelProfile *> &kernels,
             const SmConfig &sm);

/** Dominant share of @p tbs TBs of each kernel (diagnostics/tests). */
std::vector<double>
dominantShares(const std::vector<int> &tbs,
               const std::vector<const KernelProfile *> &kernels,
               const SmConfig &sm);

/**
 * SMK-(P+W) warp-instruction quotas for one epoch: proportional to
 * each kernel's isolated IPC so equal quota consumption implies equal
 * normalized progress. A kernel that exhausts its quota stops issuing
 * until every kernel has (Section 4's description).
 */
std::array<std::uint64_t, kMaxKernelsPerSm>
smkWarpQuotas(const std::vector<double> &isolated_ipc,
              Cycle epoch_cycles);

} // namespace ckesim

#endif // CKESIM_CORE_SMK_HPP
