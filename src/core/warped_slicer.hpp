/**
 * @file
 * Warped-Slicer TB partitioning (Xu et al., ISCA'16; Sections 1 and
 * 2.5 of the reproduced paper).
 *
 * Each kernel's performance-vs-TB-count scalability curve is obtained
 * either offline (static) or by online profiling — different SMs run
 * different TB counts of one kernel concurrently. The "sweet point" is
 * the feasible TB combination that minimizes every kernel's
 * performance degradation (we maximize the minimum normalized IPC,
 * breaking ties towards the larger sum — the intersection point of
 * Figure 3(b)).
 */

#ifndef CKESIM_CORE_WARPED_SLICER_HPP
#define CKESIM_CORE_WARPED_SLICER_HPP

#include <utility>
#include <vector>

#include "core/tb_partition.hpp"
#include "kernels/profile.hpp"
#include "sim/config.hpp"

namespace ckesim {

/** IPC-vs-TB-count samples for one kernel; linear interpolation. */
class ScalabilityCurve
{
  public:
    ScalabilityCurve() = default;

    /** Add an observation: IPC when @p tbs TBs are resident. */
    void addPoint(int tbs, double ipc);

    /** Interpolated IPC at @p tbs (through (0,0); flat beyond max). */
    double at(int tbs) const;

    /** Largest sampled TB count. */
    int maxTbs() const;

    bool empty() const { return points_.empty(); }
    const std::vector<std::pair<int, double>> &points() const
    {
        return points_;
    }

  private:
    std::vector<std::pair<int, double>> points_; ///< sorted by tbs
};

/** Result of sweet-point selection. */
struct SweetPoint
{
    std::vector<int> tbs;      ///< per-kernel TB counts
    double theoretical_ws = 0; ///< sum of predicted normalized IPCs
    std::vector<double> predicted_norm_ipc;
};

/**
 * Enumerate feasible TB partitions and pick the sweet point.
 * Normalization is against each curve's value at the kernel's
 * isolated maximum TB count.
 */
SweetPoint
findSweetPoint(const std::vector<ScalabilityCurve> &curves,
               const std::vector<const KernelProfile *> &kernels,
               const SmConfig &sm);

/**
 * Profiling-phase TB counts for dynamic Warped-Slicer: @p samples
 * evenly spaced counts in [1, max], always including max.
 */
std::vector<int> profilingTbCounts(int max_tbs, int samples);

} // namespace ckesim

#endif // CKESIM_CORE_WARPED_SLICER_HPP
