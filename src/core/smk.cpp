#include "core/smk.hpp"

#include <algorithm>
#include <cmath>

#include "core/tb_partition.hpp"

namespace ckesim {

namespace {

double
dominantShareOf(int tbs, const KernelProfile &p, const SmConfig &sm)
{
    const double n = tbs;
    double share = n / sm.max_tbs;
    share = std::max(share, n * p.regsPerTb() / sm.register_file);
    share = std::max(share,
                     n * p.threads_per_tb /
                         static_cast<double>(sm.max_threads));
    if (p.smem_per_tb > 0) {
        share = std::max(share, n * p.smem_per_tb /
                                    static_cast<double>(sm.smem_bytes));
    }
    return share;
}

} // namespace

std::vector<double>
dominantShares(const std::vector<int> &tbs,
               const std::vector<const KernelProfile *> &kernels,
               const SmConfig &sm)
{
    std::vector<double> shares(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i)
        shares[i] = dominantShareOf(tbs[i], *kernels[i], sm);
    return shares;
}

std::vector<int>
drfPartition(const std::vector<const KernelProfile *> &kernels,
             const SmConfig &sm)
{
    std::vector<int> tbs(kernels.size(), 0);

    bool progress = true;
    while (progress) {
        progress = false;
        // Kernel with the smallest dominant share that can still grow.
        int pick = -1;
        double pick_share = 0.0;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            std::vector<int> trial = tbs;
            ++trial[i];
            if (!partitionFits(trial, kernels, sm))
                continue;
            const double share =
                dominantShareOf(tbs[i], *kernels[i], sm);
            if (pick < 0 || share < pick_share) {
                pick = static_cast<int>(i);
                pick_share = share;
            }
        }
        if (pick >= 0) {
            ++tbs[static_cast<std::size_t>(pick)];
            progress = true;
        }
    }
    return tbs;
}

std::array<std::uint64_t, kMaxKernelsPerSm>
smkWarpQuotas(const std::vector<double> &isolated_ipc,
              Cycle epoch_cycles)
{
    std::array<std::uint64_t, kMaxKernelsPerSm> quotas{};
    for (std::size_t i = 0;
         i < isolated_ipc.size() && i < quotas.size(); ++i) {
        const double q = std::max(isolated_ipc[i], 0.05) *
                         static_cast<double>(epoch_cycles.get());
        quotas[i] = static_cast<std::uint64_t>(std::llround(q));
        if (quotas[i] == 0)
            quotas[i] = 1;
    }
    return quotas;
}

} // namespace ckesim
