#include "core/warped_slicer.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace ckesim {

namespace {
SimCtx
wsCtx()
{
    SimCtx ctx;
    ctx.module = "warped_slicer";
    return ctx;
}
} // namespace

void
ScalabilityCurve::addPoint(int tbs, double ipc)
{
    SIM_CHECK(tbs >= 1, wsCtx(),
              "scalability-curve sample at non-positive TB count "
                  << tbs);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), tbs,
        [](const auto &p, int t) { return p.first < t; });
    if (it != points_.end() && it->first == tbs)
        it->second = ipc;
    else
        points_.insert(it, {tbs, ipc});
}

double
ScalabilityCurve::at(int tbs) const
{
    if (points_.empty() || tbs <= 0)
        return 0.0;
    // Below the first sample: interpolate through the origin.
    if (tbs <= points_.front().first) {
        return points_.front().second * tbs / points_.front().first;
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (tbs <= points_[i].first) {
            const auto &[t0, y0] = points_[i - 1];
            const auto &[t1, y1] = points_[i];
            const double f =
                static_cast<double>(tbs - t0) / (t1 - t0);
            return y0 + f * (y1 - y0);
        }
    }
    return points_.back().second; // flat beyond the last sample
}

int
ScalabilityCurve::maxTbs() const
{
    return points_.empty() ? 0 : points_.back().first;
}

SweetPoint
findSweetPoint(const std::vector<ScalabilityCurve> &curves,
               const std::vector<const KernelProfile *> &kernels,
               const SmConfig &sm)
{
    const std::size_t n = kernels.size();
    SIM_CHECK(curves.size() == n && n >= 2 && n <= 3, wsCtx(),
              "sweet-point search over " << curves.size()
                                         << " curves for " << n
                                         << " kernels (need 2 or 3)");

    std::vector<double> iso(n);
    std::vector<int> iso_tbs(n);
    for (std::size_t i = 0; i < n; ++i) {
        iso_tbs[i] = kernels[i]->maxTbsPerSm(sm);
        iso[i] = std::max(curves[i].at(iso_tbs[i]), 1e-12);
    }

    SweetPoint best;
    double best_min = -1.0;
    double best_sum = -1.0;

    auto consider = [&](const std::vector<int> &tbs) {
        if (!partitionFits(tbs, kernels, sm))
            return;
        double mn = 1e300;
        double sum = 0.0;
        std::vector<double> norm(n);
        for (std::size_t i = 0; i < n; ++i) {
            norm[i] = curves[i].at(tbs[i]) / iso[i];
            mn = std::min(mn, norm[i]);
            sum += norm[i];
        }
        if (mn > best_min + 1e-12 ||
            (mn > best_min - 1e-12 && sum > best_sum)) {
            best_min = mn;
            best_sum = sum;
            best.tbs = tbs;
            best.theoretical_ws = sum;
            best.predicted_norm_ipc = norm;
        }
    };

    if (n == 2) {
        for (int a = 1; a <= iso_tbs[0]; ++a) {
            std::vector<int> tbs = {a, 0};
            const int b = maxFeasibleTbs(tbs, 1, kernels, sm);
            if (b < 1)
                continue;
            for (int bb = 1; bb <= b; ++bb)
                consider({a, bb});
        }
    } else {
        for (int a = 1; a <= iso_tbs[0]; ++a) {
            for (int b = 1; b <= iso_tbs[1]; ++b) {
                std::vector<int> tbs = {a, b, 0};
                const int c = maxFeasibleTbs(tbs, 2, kernels, sm);
                for (int cc = 1; cc <= c; ++cc)
                    consider({a, b, cc});
            }
        }
    }

    // Degenerate fallback: one TB each (always representable).
    if (best.tbs.empty())
        best.tbs.assign(n, 1);
    return best;
}

std::vector<int>
profilingTbCounts(int max_tbs, int samples)
{
    SIM_CHECK(max_tbs >= 1, wsCtx(),
              "profiling a kernel that fits no TB on an SM");
    samples = std::max(1, std::min(samples, max_tbs));
    std::vector<int> counts;
    counts.reserve(static_cast<std::size_t>(samples));
    for (int j = 1; j <= samples; ++j) {
        const int c = static_cast<int>(
            static_cast<long>(j) * max_tbs / samples);
        counts.push_back(std::max(1, c));
    }
    // Deduplicate (small max_tbs with many samples).
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    return counts;
}

} // namespace ckesim
