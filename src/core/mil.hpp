/**
 * @file
 * SMIL helpers (Section 3.3.1): the offline sweep over static
 * in-flight memory instruction limits. The sweep itself is driven by
 * the benchmark harness; this header provides the canonical grid of
 * limit values (1..24 and "Inf", as in Figure 9).
 */

#ifndef CKESIM_CORE_MIL_HPP
#define CKESIM_CORE_MIL_HPP

#include <vector>

namespace ckesim {

/** "No limit" marker in SMIL grids (maps to unlimited). */
inline constexpr int kSmilInf = 0;

/**
 * The limit values Figure 9 sweeps per kernel. @p dense adds every
 * integer in [1, 24] (the paper's full axis); the default subsamples
 * geometrically for quick runs.
 */
std::vector<int> smilLimitGrid(bool dense = false);

} // namespace ckesim

#endif // CKESIM_CORE_MIL_HPP
