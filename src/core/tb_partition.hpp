/**
 * @file
 * Thread-block partitioning between concurrent kernels: how many TBs
 * each kernel may keep resident per SM (Section 1's taxonomy —
 * leftover policy, spatial multitasking, and the intra-SM sharing
 * schemes Warped-Slicer and SMK refine).
 */

#ifndef CKESIM_CORE_TB_PARTITION_HPP
#define CKESIM_CORE_TB_PARTITION_HPP

#include <array>
#include <vector>

#include "kernels/profile.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace ckesim {

/** Per-SM, per-kernel TB quotas. quotas[sm][kernel]. */
using QuotaMatrix =
    std::vector<std::array<int, kMaxKernelsPerSm>>;

/** Can (n_i) TBs of each kernel coexist on one SM? */
bool partitionFits(const std::vector<int> &tbs,
                   const std::vector<const KernelProfile *> &kernels,
                   const SmConfig &sm);

/** Largest feasible TB count for @p kernel_index given the others. */
int maxFeasibleTbs(std::vector<int> tbs, int kernel_index,
                   const std::vector<const KernelProfile *> &kernels,
                   const SmConfig &sm);

/**
 * Left-over policy: kernel 0 takes everything it can; each later
 * kernel fills what remains.
 */
std::vector<int>
leftoverPartition(const std::vector<const KernelProfile *> &kernels,
                  const SmConfig &sm);

/**
 * Spatial multitasking: SMs are split evenly; each SM runs a single
 * kernel at its isolated max occupancy.
 */
QuotaMatrix
spatialPartition(const std::vector<const KernelProfile *> &kernels,
                 const GpuConfig &cfg);

/** Broadcast one per-SM partition to every SM. */
QuotaMatrix broadcastPartition(const std::vector<int> &tbs,
                               int num_sms);

} // namespace ckesim

#endif // CKESIM_CORE_TB_PARTITION_HPP
