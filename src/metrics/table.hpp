/**
 * @file
 * Shared console-table formatting and class-grouped geomean
 * aggregation (paper style) used by every bench binary and example:
 * ClassAggregate, the scheme-by-class geomean matrix most figures
 * print, and a generic labelled-row table.
 */

#ifndef CKESIM_METRICS_TABLE_HPP
#define CKESIM_METRICS_TABLE_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "kernels/workload.hpp"

namespace ckesim {

/** Accumulates per-class values and reports geomeans (paper style). */
class ClassAggregate
{
  public:
    void add(WorkloadClass cls, double value);

    /** Geomean within one class (0 when empty). */
    double geomean(WorkloadClass cls) const;

    /** Geomean over everything added ("ALL" columns). */
    double geomeanAll() const;

    int count(WorkloadClass cls) const;

  private:
    std::map<WorkloadClass, std::vector<double>> by_class_;
    std::vector<double> all_;
};

/** "C+C" / "C+M" / "M+M". */
const char *classLabel(WorkloadClass cls);

/** Align-right number formatting for simple console tables. */
std::string fmt(double v, int width = 7, int precision = 3);

/** Print a header line followed by an underline of '-'. */
void printHeader(const std::string &title);

/**
 * The table most figures print: one column per scheme, one row per
 * workload class (C+C / C+M / M+M) plus an ALL row, each cell the
 * geomean of the values added to that (class, column). Optionally
 * normalizes every row to one base column (the paper's
 * "normalized to WS" panels).
 */
class ClassTable
{
  public:
    ClassTable(std::string title, std::vector<std::string> columns,
               int col_width = 10);

    void add(WorkloadClass cls, std::size_t col, double value);

    double geomean(WorkloadClass cls, std::size_t col) const;
    double geomeanAll(std::size_t col) const;

    /** @p normalize_to_col < 0 prints raw geomeans. */
    void print(int normalize_to_col = -1) const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    int col_width_;
    std::vector<ClassAggregate> cells_;
};

/**
 * Generic labelled-row table for figure panels that don't group by
 * workload class (e.g. the 3-kernel classes of Figure 14).
 */
class TextTable
{
  public:
    TextTable(std::string title, std::string row_header,
              std::vector<std::string> columns, int col_width = 10,
              int precision = 3);

    void addRow(std::string label, std::vector<double> values);

    void print() const;

  private:
    std::string title_;
    std::string row_header_;
    std::vector<std::string> columns_;
    int col_width_;
    int precision_;
    std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

} // namespace ckesim

#endif // CKESIM_METRICS_TABLE_HPP
