/**
 * @file
 * Write-ahead results journal: crash-safe persistence for SweepEngine
 * results, so an interrupted sweep resumes instead of recomputing.
 *
 * The journal is an append-only file of self-delimiting records, one
 * per completed SimJob, keyed by the job's content hash (SimJob::key).
 * Each record carries a CRC32 of its payload and every append is
 * fsync'd before the result is considered durable, so a process kill
 * at any byte leaves at most one torn record at the tail — which
 * loading detects and truncates away. Results are re-encoded with the
 * snapshot codec (bit-exact doubles), so a resumed sweep's output
 * table is byte-identical to the uninterrupted run's.
 *
 * Thread safety: find() and append() may be called concurrently from
 * SweepEngine workers; all mutable state is guarded by one mutex.
 */

#ifndef CKESIM_METRICS_JOURNAL_HPP
#define CKESIM_METRICS_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "metrics/sim_job.hpp"

namespace ckesim {

/** Load/append statistics for one journal (resume diagnostics). */
struct JournalStats
{
    std::uint64_t loaded = 0;    ///< records recovered at open
    std::uint64_t appended = 0;  ///< records written this process
    std::uint64_t truncated_bytes = 0; ///< torn tail discarded at open
};

/** Append-only, CRC-checked, fsync'd results journal. */
class ResultJournal
{
  public:
    ResultJournal() = default;
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    /**
     * Open @p path for resuming (creating it if absent): replay every
     * intact record into memory, truncate any torn tail, and position
     * for appending. Throws SimError (kind "Journal") when the file
     * cannot be opened or its header belongs to a different format
     * version.
     */
    void open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /**
     * Durably record @p result for job @p key: encode, append one
     * record, fsync. On return the record survives a process kill.
     */
    void append(std::uint64_t key, const SimResult &result);

    /** The recovered/recorded result for @p key, or false. */
    bool find(std::uint64_t key, SimResult &out) const;

    /** Number of distinct job keys present. */
    std::size_t size() const;

    JournalStats stats() const;

  private:
    void close();

    mutable std::mutex mu_;
    int fd_ = -1;
    std::string path_;
    std::unordered_map<std::uint64_t, SimResult> records_;
    JournalStats stats_;
};

// ---- offline integrity checking (journal_fsck) ---------------------------

/** Verdict for one on-disk journal record (or the spot where one
 *  should have been). */
enum class JournalRecordStatus : std::uint8_t {
    Ok = 0,     ///< magic, version, CRC and payload all check out
    BadMagic,   ///< record boundary does not start with the magic
    BadVersion, ///< record written by a different format version
    BadCrc,     ///< payload bytes present but CRC mismatch
    BadPayload, ///< CRC fine, SimResult decode failed
    Torn,       ///< record runs past EOF (interrupted append)
};

/** Display name, e.g. "ok", "bad-crc", "torn". */
const char *journalRecordStatusName(JournalRecordStatus status);

/** One scanned record of a journal file. */
struct JournalFsckRecord
{
    std::uint64_t offset = 0;      ///< byte offset of the record
    std::uint64_t key = 0;         ///< job key (when header parsed)
    std::uint32_t payload_len = 0; ///< claimed payload length
    JournalRecordStatus status = JournalRecordStatus::Ok;
    std::string detail;            ///< human-readable diagnosis
};

/**
 * Everything fsckJournal() learned about one file. A torn tail
 * (records cut off by a crash mid-append) is expected wear and keeps
 * clean() true; any failure *before* the final bytes — bad magic, a
 * CRC mismatch on a fully-present record, an undecodable payload —
 * is hard corruption.
 */
struct JournalFsckReport
{
    std::string path;
    std::uint64_t file_bytes = 0;
    std::uint64_t ok_records = 0;
    std::uint64_t distinct_keys = 0;
    std::uint64_t torn_bytes = 0; ///< benign torn tail length
    bool hard_corrupt = false;
    std::vector<JournalFsckRecord> records; ///< file order

    /** No hard corruption (torn tails allowed). */
    bool clean() const { return !hard_corrupt; }
};

/**
 * Read-only integrity scan of the journal at @p path: walk every
 * record, validate magic/version/CRC/payload, and distinguish a
 * benign torn tail from hard corruption. Never modifies the file
 * (unlike ResultJournal::open, which truncates torn tails). Throws
 * SimError (kind "Journal") only when the file cannot be read at all.
 */
JournalFsckReport fsckJournal(const std::string &path);

// ---- result payload codec (shared with tests) ---------------------------

/** Encode a SimResult with the snapshot codec (bit-exact doubles). */
std::vector<std::uint8_t> encodeSimResult(const SimResult &result);

/** Inverse of encodeSimResult; throws SimError kind "Snapshot" on a
 *  malformed payload. */
SimResult decodeSimResult(const std::vector<std::uint8_t> &bytes);

/** CRC32 (IEEE 802.3, reflected) over @p bytes. */
std::uint32_t crc32(const std::uint8_t *bytes, std::size_t n);

} // namespace ckesim

#endif // CKESIM_METRICS_JOURNAL_HPP
