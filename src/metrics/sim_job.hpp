/**
 * @file
 * SimJob: one simulation as a value — configuration + workload +
 * scheme (+ optional time-series capture) mapping deterministically to
 * a SimResult. Jobs are content-hashable so the SweepEngine can memoize
 * and share identical runs (isolated baselines, scalability points,
 * Req/Minst profiles) across every scheme in a sweep, and are fully
 * self-contained so N jobs can execute on N threads.
 */

#ifndef CKESIM_METRICS_SIM_JOB_HPP
#define CKESIM_METRICS_SIM_JOB_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/time_series.hpp"

namespace ckesim {

/** The scheme combinations the paper evaluates by name. */
enum class NamedScheme {
    Spatial,      ///< spatial multitasking reference
    Leftover,     ///< early CKE left-over policy
    WS,           ///< dynamic Warped-Slicer TB partition
    WS_RBMI,      ///< + round-robin BMI
    WS_QBMI,      ///< + quota-based BMI
    WS_DMIL,      ///< + dynamic MIL
    WS_QBMI_DMIL, ///< + both (Section 3.4)
    WS_UCP,       ///< + UCP L1D partitioning (Section 3.1)
    SMK_PW,       ///< SMK partition + warp quota (SMK-(P+W))
    SMK_P_QBMI,   ///< SMK partition + QBMI
    SMK_P_DMIL,   ///< SMK partition + DMIL
};

/** Short display name, e.g. "WS-DMIL". */
std::string schemeName(NamedScheme scheme);

/** Memory-side summary signals (L2 + DRAM) of one run. */
struct MemSideStats
{
    double l2_miss_rate = 0.0;
    double dram_row_hit_rate = 0.0; ///< mean over channels
};

/** Baseline from an isolated single-kernel run. */
struct IsolatedResult
{
    double ipc = 0.0;         ///< GPU-wide warp instructions / cycle
    double ipc_per_sm = 0.0;
    KernelStats stats;
    SmStats sm_stats;
    int max_tbs = 0;          ///< TBs per SM the run used
    MemSideStats mem;

    /** Captured samplers, one per kernel, when the job asked. */
    std::vector<TimeSeries> issue_series;
    std::vector<TimeSeries> l1d_series;
};

/** Everything a concurrent run reports. */
struct ConcurrentResult
{
    std::string workload_name;
    std::vector<double> ipc;      ///< per kernel
    std::vector<double> norm_ipc; ///< vs isolated
    double weighted_speedup = 0.0;
    double antt_value = 0.0;
    double fairness = 0.0;
    double theoretical_ws = 0.0;  ///< WS prediction (WS modes)
    std::vector<KernelStats> stats;
    SmStats sm_stats;
    std::vector<int> partition;   ///< chosen per-SM TB counts
    MemSideStats mem;

    /** Captured samplers, one per kernel, when the job asked. */
    std::vector<TimeSeries> issue_series;
    std::vector<TimeSeries> l1d_series;
};

/** Optional per-kernel event sampling attached to a job's run. */
struct SeriesRequest
{
    bool issue = false; ///< warp instructions issued
    bool l1d = false;   ///< L1D accesses
    Cycle interval{1000};
};

/** What a SimJob simulates. */
enum class JobKind {
    Isolated,   ///< one kernel, full GPU, optional TB cap
    Concurrent, ///< a CKE workload under one scheme
};

/**
 * One simulation as a value. Build via the factories; equality of
 * key() implies bit-identical results (all inputs are hashed; the
 * display label is not).
 */
struct SimJob
{
    JobKind kind = JobKind::Concurrent;
    GpuConfig cfg;
    Cycle cycles{100000};  ///< measurement cycles (profiling extra)
    Workload workload;     ///< exactly one kernel for Isolated jobs

    /** Isolated jobs: per-SM TB cap; 0 = occupancy maximum. */
    int tb_limit = 0;

    /** Concurrent jobs: a named scheme or an explicit spec. */
    bool use_named = false;
    NamedScheme named = NamedScheme::WS;
    SchemeSpec spec;

    SeriesRequest series;

    /** Display-only tag for sweep output; never hashed. */
    std::string label;

    static SimJob isolated(const GpuConfig &cfg, Cycle cycles,
                           const KernelProfile &prof,
                           int tb_limit = 0);
    static SimJob concurrent(const GpuConfig &cfg, Cycle cycles,
                             const Workload &workload,
                             NamedScheme named);
    static SimJob concurrent(const GpuConfig &cfg, Cycle cycles,
                             const Workload &workload,
                             const SchemeSpec &spec);

    /** Content hash over every result-affecting input. */
    std::uint64_t key() const;

    /** label when set, else a generated "kind:workload:scheme" tag. */
    std::string describe() const;
};

/**
 * Result of one job: exactly one pointer is set, matching the job's
 * kind. Results are immutable and shared between the memo cache and
 * every sweep that hits it.
 */
struct SimResult
{
    std::shared_ptr<const IsolatedResult> isolated;
    std::shared_ptr<const ConcurrentResult> concurrent;
};

// ---- content hashing ---------------------------------------------------

/**
 * Field-order-sensitive FNV-1a accumulator. Structs are hashed field
 * by field (never by memcpy — padding bytes are indeterminate).
 */
class JobHasher
{
  public:
    JobHasher &i(long long v);            ///< any integer/enum/bool
    JobHasher &d(double v);               ///< by bit pattern
    JobHasher &s(const std::string &v);

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/**
 * Order-sensitive FNV-1a over the content hashes of a whole job
 * list: one value that identifies a campaign. The orchestrator and
 * its workers must agree on it before any index-based dispatch, and
 * a resumed campaign refuses a journal recorded under a different
 * fingerprint's merged table.
 */
std::uint64_t campaignFingerprint(const std::vector<SimJob> &jobs);

void hashInto(JobHasher &h, const GpuConfig &cfg);
void hashInto(JobHasher &h, const SchemeSpec &spec);
void hashInto(JobHasher &h, const KernelProfile &prof);
void hashInto(JobHasher &h, const Workload &workload);

} // namespace ckesim

#endif // CKESIM_METRICS_SIM_JOB_HPP
