#include "metrics/sim_job.hpp"

#include <cstring>

namespace ckesim {

std::string
schemeName(NamedScheme scheme)
{
    switch (scheme) {
      case NamedScheme::Spatial:
        return "Spatial";
      case NamedScheme::Leftover:
        return "Leftover";
      case NamedScheme::WS:
        return "WS";
      case NamedScheme::WS_RBMI:
        return "WS-RBMI";
      case NamedScheme::WS_QBMI:
        return "WS-QBMI";
      case NamedScheme::WS_DMIL:
        return "WS-DMIL";
      case NamedScheme::WS_QBMI_DMIL:
        return "WS-QBMI+DMIL";
      case NamedScheme::WS_UCP:
        return "WS-L1DPartition";
      case NamedScheme::SMK_PW:
        return "SMK-(P+W)";
      case NamedScheme::SMK_P_QBMI:
        return "SMK-(P+QBMI)";
      case NamedScheme::SMK_P_DMIL:
        return "SMK-(P+DMIL)";
    }
    return "?";
}

// ---- JobHasher ---------------------------------------------------------

JobHasher &
JobHasher::i(long long v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    for (int b = 0; b < 8; ++b) {
        h_ ^= (u >> (8 * b)) & 0xff;
        h_ *= 0x100000001b3ULL;
    }
    return *this;
}

JobHasher &
JobHasher::d(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    long long s;
    std::memcpy(&s, &u, sizeof(s));
    return i(s);
}

JobHasher &
JobHasher::s(const std::string &v)
{
    i(static_cast<long long>(v.size()));
    for (const char c : v) {
        h_ ^= static_cast<unsigned char>(c);
        h_ *= 0x100000001b3ULL;
    }
    return *this;
}

void
hashInto(JobHasher &h, const GpuConfig &cfg)
{
    h.i(cfg.num_sms).i(static_cast<long long>(cfg.seed));
    const SmConfig &sm = cfg.sm;
    h.i(sm.simd_width)
        .i(sm.num_schedulers)
        .i(sm.max_threads)
        .i(sm.max_warps)
        .i(sm.max_tbs)
        .i(sm.register_file)
        .i(sm.smem_bytes)
        .i(static_cast<long long>(sm.sched_policy))
        .i(sm.alu_latency)
        .i(sm.sfu_latency)
        .i(sm.smem_latency)
        .i(sm.lsu_queue_depth);
    const L1dConfig &l1 = cfg.l1d;
    h.i(l1.size_bytes)
        .i(l1.line_bytes)
        .i(l1.assoc)
        .i(l1.num_mshrs)
        .i(l1.mshr_merge)
        .i(l1.miss_queue_depth)
        .i(l1.hit_latency);
    const L2Config &l2 = cfg.l2;
    h.i(l2.partition_bytes)
        .i(l2.line_bytes)
        .i(l2.assoc)
        .i(l2.num_mshrs)
        .i(l2.miss_queue_depth)
        .i(l2.latency);
    const IcntConfig &ic = cfg.icnt;
    h.i(ic.flit_bytes).i(ic.latency).i(ic.input_queue_depth);
    const DramConfig &dr = cfg.dram;
    h.i(dr.num_channels)
        .i(dr.banks_per_channel)
        .i(dr.row_bytes)
        .i(dr.access_latency)
        .i(dr.row_hit_service)
        .i(dr.row_miss_penalty)
        .i(dr.frfcfs_window)
        .i(dr.queue_depth);
    const IntegrityConfig &in = cfg.integrity;
    h.i(in.periodic_checks)
        .i(in.check_interval)
        .i(in.watchdog_timeout)
        .i(in.audit_drain_limit);
}

void
hashInto(JobHasher &h, const SchemeSpec &spec)
{
    h.i(static_cast<long long>(spec.partition))
        .i(static_cast<long long>(spec.bmi))
        .i(static_cast<long long>(spec.mil));
    for (int l : spec.smil_limits)
        h.i(l);
    h.i(spec.smk_warp_quota);
    h.i(static_cast<long long>(spec.isolated_ipc_per_sm.size()));
    for (double v : spec.isolated_ipc_per_sm)
        h.d(v);
    h.i(static_cast<long long>(spec.smk_epoch_cycles.get()));
    h.i(spec.ucp).i(static_cast<long long>(spec.ucp_interval.get()));
    h.i(static_cast<long long>(spec.ws_profile_window.get()));
    h.i(static_cast<long long>(spec.oracle_curves.size()));
    for (const ScalabilityCurve &c : spec.oracle_curves) {
        h.i(static_cast<long long>(c.points().size()));
        for (const auto &[tbs, ipc] : c.points())
            h.i(tbs).d(ipc);
    }
    h.i(spec.mshr_partition);
    for (bool b : spec.bypass_l1d)
        h.i(b);
    h.i(spec.global_dmil)
        .i(static_cast<long long>(spec.global_dmil_interval.get()));
    h.i(static_cast<long long>(spec.faults.size()));
    for (const FaultSpec &f : spec.faults) {
        h.i(static_cast<long long>(f.kind))
            .i(static_cast<long long>(f.begin.get()))
            .i(static_cast<long long>(f.end.get()))
            .i(f.target)
            .i(f.budget)
            .i(static_cast<long long>(f.delay.get()));
    }
}

void
hashInto(JobHasher &h, const KernelProfile &p)
{
    h.s(p.name)
        .i(static_cast<long long>(p.expected_class))
        .i(p.threads_per_tb)
        .i(p.regs_per_thread)
        .i(p.smem_per_tb)
        .d(p.cinst_per_minst)
        .i(p.req_per_minst)
        .d(p.sfu_fraction)
        .d(p.smem_fraction)
        .d(p.write_fraction)
        .i(static_cast<long long>(p.pattern))
        .d(p.reuse_prob)
        .i(static_cast<long long>(p.footprint_bytes))
        .i(static_cast<long long>(p.footprint_regions))
        .i(static_cast<long long>(p.stream_regions))
        .i(p.mlp)
        .i(p.instrs_per_warp);
}

void
hashInto(JobHasher &h, const Workload &workload)
{
    h.i(workload.numKernels());
    for (const KernelProfile *k : workload.kernels)
        hashInto(h, *k);
}

// ---- SimJob ------------------------------------------------------------

SimJob
SimJob::isolated(const GpuConfig &cfg, Cycle cycles,
                 const KernelProfile &prof, int tb_limit)
{
    SimJob job;
    job.kind = JobKind::Isolated;
    job.cfg = cfg;
    job.cycles = cycles;
    job.workload.kernels = {&prof};
    job.tb_limit = tb_limit;
    return job;
}

SimJob
SimJob::concurrent(const GpuConfig &cfg, Cycle cycles,
                   const Workload &workload, NamedScheme named)
{
    SimJob job;
    job.kind = JobKind::Concurrent;
    job.cfg = cfg;
    job.cycles = cycles;
    job.workload = workload;
    job.use_named = true;
    job.named = named;
    return job;
}

SimJob
SimJob::concurrent(const GpuConfig &cfg, Cycle cycles,
                   const Workload &workload, const SchemeSpec &spec)
{
    SimJob job;
    job.kind = JobKind::Concurrent;
    job.cfg = cfg;
    job.cycles = cycles;
    job.workload = workload;
    job.use_named = false;
    job.spec = spec;
    return job;
}

std::uint64_t
SimJob::key() const
{
    JobHasher h;
    h.i(static_cast<long long>(kind));
    hashInto(h, cfg);
    h.i(static_cast<long long>(cycles.get()));
    hashInto(h, workload);
    h.i(tb_limit);
    h.i(use_named);
    if (use_named)
        h.i(static_cast<long long>(named));
    else
        hashInto(h, spec);
    h.i(series.issue).i(series.l1d).i(
        static_cast<long long>(series.interval.get()));
    return h.value();
}

std::string
SimJob::describe() const
{
    if (!label.empty())
        return label;
    std::string d = kind == JobKind::Isolated ? "iso:" : "cke:";
    d += workload.name();
    if (kind == JobKind::Isolated) {
        if (tb_limit > 0)
            d += "#" + std::to_string(tb_limit);
    } else if (use_named) {
        d += ":" + schemeName(named);
    } else {
        d += ":spec";
    }
    return d;
}

std::uint64_t
campaignFingerprint(const std::vector<SimJob> &jobs)
{
    JobHasher h;
    h.i(static_cast<long long>(jobs.size()));
    for (const SimJob &job : jobs)
        h.i(static_cast<long long>(job.key()));
    return h.value();
}

} // namespace ckesim
