#include "metrics/runner.hpp"

#include "metrics/perf_metrics.hpp"

namespace ckesim {

std::string
schemeName(NamedScheme scheme)
{
    switch (scheme) {
      case NamedScheme::Spatial:
        return "Spatial";
      case NamedScheme::Leftover:
        return "Leftover";
      case NamedScheme::WS:
        return "WS";
      case NamedScheme::WS_RBMI:
        return "WS-RBMI";
      case NamedScheme::WS_QBMI:
        return "WS-QBMI";
      case NamedScheme::WS_DMIL:
        return "WS-DMIL";
      case NamedScheme::WS_QBMI_DMIL:
        return "WS-QBMI+DMIL";
      case NamedScheme::WS_UCP:
        return "WS-L1DPartition";
      case NamedScheme::SMK_PW:
        return "SMK-(P+W)";
      case NamedScheme::SMK_P_QBMI:
        return "SMK-(P+QBMI)";
      case NamedScheme::SMK_P_DMIL:
        return "SMK-(P+DMIL)";
    }
    return "?";
}

Runner::Runner(const GpuConfig &cfg, Cycle cycles)
    : cfg_(cfg), cycles_(cycles)
{
    // Fail here, with the offending field named, rather than cycles
    // into the first simulation.
    cfg_.validate();
}

const IsolatedResult &
Runner::isolated(const KernelProfile &prof, int tb_limit)
{
    const std::string key =
        prof.name + "#" + std::to_string(tb_limit);
    auto it = iso_cache_.find(key);
    if (it != iso_cache_.end())
        return it->second;

    Workload wl;
    wl.kernels = {&prof};
    SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                 BmiMode::None, MilMode::None);
    Gpu gpu(cfg_, wl, spec);
    const int quota =
        tb_limit > 0 ? tb_limit : prof.maxTbsPerSm(cfg_.sm);
    for (int s = 0; s < gpu.numSms(); ++s)
        gpu.sm(s).setTbQuota(0, quota);
    gpu.run(cycles_);

    IsolatedResult res;
    res.ipc = gpu.ipc(0);
    res.ipc_per_sm = res.ipc / cfg_.num_sms;
    res.stats = gpu.kernelStatsTotal(0);
    res.sm_stats = gpu.smStatsTotal();
    res.max_tbs = quota;
    gpu.audit();
    return iso_cache_.emplace(key, std::move(res)).first->second;
}

ScalabilityCurve
Runner::scalability(const KernelProfile &prof)
{
    ScalabilityCurve curve;
    const int max_tbs = prof.maxTbsPerSm(cfg_.sm);
    for (int tb = 1; tb <= max_tbs; ++tb)
        curve.addPoint(tb, isolated(prof, tb).ipc_per_sm);
    return curve;
}

SchemeSpec
Runner::scheme(NamedScheme named, const Workload &workload)
{
    SchemeSpec spec;
    switch (named) {
      case NamedScheme::Spatial:
        spec.partition = PartitionScheme::Spatial;
        break;
      case NamedScheme::Leftover:
        spec.partition = PartitionScheme::Leftover;
        break;
      case NamedScheme::WS:
        spec.partition = PartitionScheme::WarpedSlicer;
        break;
      case NamedScheme::WS_RBMI:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::RBMI;
        break;
      case NamedScheme::WS_QBMI:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::QBMI;
        break;
      case NamedScheme::WS_DMIL:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.mil = MilMode::Dynamic;
        break;
      case NamedScheme::WS_QBMI_DMIL:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::QBMI;
        spec.mil = MilMode::Dynamic;
        break;
      case NamedScheme::WS_UCP:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.ucp = true;
        break;
      case NamedScheme::SMK_PW:
        spec.partition = PartitionScheme::SmkDrf;
        spec.smk_warp_quota = true;
        break;
      case NamedScheme::SMK_P_QBMI:
        spec.partition = PartitionScheme::SmkDrf;
        spec.bmi = BmiMode::QBMI;
        break;
      case NamedScheme::SMK_P_DMIL:
        spec.partition = PartitionScheme::SmkDrf;
        spec.mil = MilMode::Dynamic;
        break;
    }
    if (spec.smk_warp_quota) {
        for (const KernelProfile *k : workload.kernels)
            spec.isolated_ipc_per_sm.push_back(
                isolated(*k).ipc_per_sm);
    }
    return spec;
}

ConcurrentResult
Runner::run(const Workload &workload, const SchemeSpec &spec)
{
    // Dynamic Warped-Slicer spends a profiling window first; extend
    // the run so the measurement phase always covers cycles_.
    Cycle total = cycles_;
    if (spec.partition == PartitionScheme::WarpedSlicer &&
        spec.oracle_curves.empty())
        total += spec.ws_profile_window;

    Gpu gpu(cfg_, workload, spec);
    gpu.run(total);

    ConcurrentResult res;
    res.workload_name = workload.name();
    res.theoretical_ws = gpu.theoreticalWs();
    res.partition = gpu.chosenPartition();
    res.sm_stats = gpu.smStatsTotal();
    for (int k = 0; k < workload.numKernels(); ++k) {
        const double shared_ipc = gpu.ipc(k);
        const double iso_ipc =
            isolated(*workload.kernels[static_cast<std::size_t>(k)])
                .ipc;
        res.ipc.push_back(shared_ipc);
        res.norm_ipc.push_back(
            iso_ipc > 0 ? shared_ipc / iso_ipc : 0.0);
        res.stats.push_back(gpu.kernelStatsTotal(k));
    }
    res.weighted_speedup = weightedSpeedup(res.norm_ipc);
    res.antt_value = antt(res.norm_ipc);
    res.fairness = fairnessIndex(res.norm_ipc);

    // Conservation audit: prove every generated request retired.
    // Fault-injection runs deliberately corrupt the pipeline; their
    // leaks are the experiment, not a simulator bug.
    if (spec.faults.empty())
        gpu.audit();
    return res;
}

} // namespace ckesim
