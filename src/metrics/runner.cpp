#include "metrics/runner.hpp"

namespace ckesim {

Runner::Runner(const GpuConfig &cfg, Cycle cycles,
               std::shared_ptr<SweepEngine> engine)
    : cfg_(cfg), cycles_(cycles), engine_(std::move(engine))
{
    // Fail here, with the offending field named, rather than cycles
    // into the first simulation.
    cfg_.validate();
    if (!engine_)
        engine_ = std::make_shared<SweepEngine>(1);
}

const IsolatedResult &
Runner::isolated(const KernelProfile &prof, int tb_limit)
{
    // The memo cache pins the shared_ptr for the engine's lifetime,
    // which the runner shares — the reference stays valid.
    return *engine_->isolated(cfg_, cycles_, prof, tb_limit);
}

ScalabilityCurve
Runner::scalability(const KernelProfile &prof)
{
    return engine_->scalability(cfg_, cycles_, prof);
}

SchemeSpec
Runner::scheme(NamedScheme named, const Workload &workload)
{
    return engine_->makeNamedScheme(cfg_, cycles_, named, workload);
}

ConcurrentResult
Runner::run(const Workload &workload, const SchemeSpec &spec)
{
    return *engine_->concurrent(cfg_, cycles_, workload, spec);
}

} // namespace ckesim
