/**
 * @file
 * SweepEngine: executes SimJobs across a work-stealing thread pool
 * with a content-hash-keyed memo cache, so isolated baselines,
 * scalability points and Req/Minst profiles are simulated once and
 * shared by every scheme in a sweep. Results are returned in
 * submission order and are bit-identical for any worker count: each
 * simulation is single-threaded and deterministic, and cross-job
 * coupling goes only through memoized (deterministic) results.
 */

#ifndef CKESIM_METRICS_SWEEP_ENGINE_HPP
#define CKESIM_METRICS_SWEEP_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/warped_slicer.hpp"
#include "metrics/sim_job.hpp"
#include "sim/run_control.hpp"

namespace ckesim {

class ResultJournal;

/**
 * Is CKESIM_FAST set? Default fast-forward mode for every engine
 * (and, via fork inheritance, every campaign worker).
 */
bool fastFromEnv();

/** Memo-cache and execution accounting for one engine. */
struct SweepStats
{
    std::uint64_t jobs_submitted = 0; ///< jobs handed to run()/sweep()
    std::uint64_t sims_executed = 0;  ///< Gpu simulations actually run
    std::uint64_t memo_hits = 0;      ///< jobs served from the cache
    std::uint64_t isolated_runs = 0;  ///< executed isolated sims
    std::uint64_t isolated_hits = 0;  ///< isolated sims reused

    double
    hitRate() const
    {
        const std::uint64_t total = memo_hits + sims_executed;
        return total == 0
                   ? 0.0
                   : static_cast<double>(memo_hits) /
                         static_cast<double>(total);
    }
};

/** Bounded re-execution of failed jobs (resilience layer). */
struct RetryPolicy
{
    int max_retries = 0;          ///< extra attempts after the first
    std::uint64_t backoff_ms = 0; ///< base sleep; doubles per attempt
    /** Jitter added on top of the doubled base, as a percentage of
     *  it, drawn deterministically from the job's content hash — so
     *  identical jobs back off identically across runs while
     *  distinct jobs desynchronize instead of retrying in lockstep. */
    std::uint32_t jitter_pct = 50;
};

/**
 * Deterministic jittered backoff for attempt @p attempt (0-based) of
 * the job whose content hash is @p key: base << attempt, plus up to
 * jitter_pct% of that, mixed from (key, attempt). Pure function —
 * reproducible anywhere (the campaign layer reuses it for
 * re-dispatch backoff).
 */
std::uint64_t retryBackoffMs(const RetryPolicy &policy,
                             std::uint64_t key, int attempt);

/** Per-job execution budgets; 0 disables either cap. */
struct JobBudget
{
    std::uint64_t cycle_budget = 0;   ///< max simulated cycles per job
    std::uint64_t wall_budget_ms = 0; ///< max host wall time per job
};

/** What became of the jobs an engine executed. */
struct ResilienceReport
{
    std::uint64_t completed = 0;    ///< jobs that produced a result
    std::uint64_t retried = 0;      ///< re-attempts performed
    std::uint64_t timed_out = 0;    ///< Timeout errors observed
    std::uint64_t cancelled = 0;    ///< Cancelled errors observed
    std::uint64_t abandoned = 0;    ///< jobs that failed permanently
    std::uint64_t journal_hits = 0; ///< results served from a journal
};

/**
 * Minimal work-stealing pool: each worker owns a deque (LIFO for the
 * owner, FIFO for thieves); run() distributes a batch round-robin and
 * the calling thread participates by stealing until the batch drains,
 * so nested run() calls from inside a task cannot deadlock.
 */
class WorkStealingPool
{
  public:
    /** @p workers extra threads; 0 = run everything on the caller. */
    explicit WorkStealingPool(int workers);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /** Execute @p tasks, blocking until all complete. Tasks must not
     *  throw (wrap exceptions into captured slots). */
    void run(std::vector<std::function<void()>> tasks);

  private:
    struct Batch
    {
        std::atomic<std::size_t> remaining{0};
        std::mutex m;
        std::condition_variable done;
    };
    struct Task
    {
        std::function<void()> fn;
        Batch *batch = nullptr;
    };

    void workerLoop(std::size_t self);
    bool trySteal(std::size_t first, Task &out);
    static void finish(Task &task);

    std::mutex mu_; ///< guards all queues (batches are coarse)
    std::condition_variable work_cv_;
    std::vector<std::deque<Task>> queues_; ///< one per worker
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

/**
 * Runs SimJobs with memoization and parallelism. The engine is
 * config-agnostic: every job carries its own GpuConfig, so one engine
 * serves a whole bench binary (including multi-config sensitivity
 * sweeps) with a single shared cache.
 */
class SweepEngine
{
  public:
    /** @p jobs worker count; <=0 = hardware concurrency. */
    explicit SweepEngine(int jobs = 0);

    /** Worker count (including the participating caller). */
    int jobs() const { return jobs_; }

    /**
     * Run every subsequent simulation with the event-driven fast
     * path (Gpu::setFastForward). An execution strategy, not part of
     * any job: results are bit-identical, so the flag deliberately
     * stays out of SimJob content hashes and journal keys — strict
     * and fast runs share memoized/journaled results freely. The
     * constructor default honours the CKESIM_FAST environment
     * variable (campaign workers inherit it across fork).
     */
    void setFastForward(bool enabled) { fast_forward_ = enabled; }
    bool fastForward() const { return fast_forward_; }

    /** Run a batch; results come back in submission order. */
    std::vector<SimResult> sweep(const std::vector<SimJob> &jobs);

    /** Run (or fetch) one job. */
    SimResult run(const SimJob &job);

    /** Memoized isolated baseline of one kernel. */
    std::shared_ptr<const IsolatedResult>
    isolated(const GpuConfig &cfg, Cycle cycles,
             const KernelProfile &prof, int tb_limit = 0);

    /** Memoized concurrent run of a named scheme. */
    std::shared_ptr<const ConcurrentResult>
    concurrent(const GpuConfig &cfg, Cycle cycles,
               const Workload &workload, NamedScheme named);

    /** Memoized concurrent run of an explicit spec. */
    std::shared_ptr<const ConcurrentResult>
    concurrent(const GpuConfig &cfg, Cycle cycles,
               const Workload &workload, const SchemeSpec &spec);

    /** Per-SM IPC-vs-TB-count curve, points fanned out in parallel. */
    ScalabilityCurve scalability(const GpuConfig &cfg, Cycle cycles,
                                 const KernelProfile &prof);

    /** Build the SchemeSpec for a named scheme (SMK quota schemes
     *  pull memoized isolated baselines). */
    SchemeSpec makeNamedScheme(const GpuConfig &cfg, Cycle cycles,
                               NamedScheme named,
                               const Workload &workload);

    SweepStats stats() const;
    void clearCache();

    // ---- resilience layer -----------------------------------------------

    /** Attach a write-ahead results journal (nullptr detaches): run()
     *  serves journaled results without simulating and durably records
     *  every fresh result before returning it. */
    void setJournal(ResultJournal *journal) { journal_ = journal; }
    ResultJournal *journal() const { return journal_; }

    /** Retry failed jobs (Timeout errors, and any failure of a
     *  fault-injection job) up to policy.max_retries times. */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }

    /** Apply cycle/wall budgets to every subsequently started job. */
    void setJobBudget(const JobBudget &budget) { budget_ = budget; }

    /** Cooperatively cancel every in-flight and future job; each dies
     *  with SimError kind "Cancelled" at its next control poll. */
    void cancelAll();

    /** Re-arm after cancelAll() so new jobs run again. */
    void clearCancel();

    /**
     * Install a liveness hook copied into every subsequently started
     * job's RunControl and invoked at the simulator's control-poll
     * cadence (see RunControl::setPollHook). Set before submitting
     * jobs; not synchronized against in-flight ones.
     */
    void setPollHook(std::function<void()> hook)
    {
        poll_hook_ = std::move(hook);
    }

    ResilienceReport resilience() const;

  private:
    class ActiveControl;

    SimResult compute(const SimJob &job);
    SimResult computeWithResilience(const SimJob &job);
    std::shared_ptr<const IsolatedResult>
    computeIsolated(const SimJob &job, RunControl *rc);
    std::shared_ptr<const ConcurrentResult>
    computeConcurrent(const SimJob &job, RunControl *rc);

    int jobs_;
    WorkStealingPool pool_;
    bool fast_forward_;

    std::mutex cache_mu_;
    std::unordered_map<std::uint64_t, std::shared_future<SimResult>>
        cache_;

    std::atomic<std::uint64_t> jobs_submitted_{0};
    std::atomic<std::uint64_t> sims_executed_{0};
    std::atomic<std::uint64_t> memo_hits_{0};
    std::atomic<std::uint64_t> isolated_runs_{0};
    std::atomic<std::uint64_t> isolated_hits_{0};

    // Resilience state.
    ResultJournal *journal_ = nullptr;
    RetryPolicy retry_;
    JobBudget budget_;
    std::function<void()> poll_hook_;
    std::mutex rc_mu_; ///< guards active_rcs_ and cancel_all_
    std::vector<RunControl *> active_rcs_;
    bool cancel_all_ = false;
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> retried_{0};
    std::atomic<std::uint64_t> timed_out_{0};
    std::atomic<std::uint64_t> cancelled_jobs_{0};
    std::atomic<std::uint64_t> abandoned_{0};
    std::atomic<std::uint64_t> journal_hits_{0};
};

} // namespace ckesim

#endif // CKESIM_METRICS_SWEEP_ENGINE_HPP
