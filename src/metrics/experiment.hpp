/**
 * @file
 * Shared experiment-harness helpers for the bench binaries and
 * examples: environment-driven sizing (quick vs full runs), the
 * --jobs/--list/--filter/--tables CLI knobs, the experiment registry,
 * and the process-wide SweepEngine every bench shares.
 */

#ifndef CKESIM_METRICS_EXPERIMENT_HPP
#define CKESIM_METRICS_EXPERIMENT_HPP

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/runner.hpp"
#include "metrics/table.hpp"
#include "sim/config.hpp"

namespace ckesim {

/**
 * Is CKESIM_FULL set? Full mode runs the paper-scale configuration
 * (16 SMs, all 78 suite pairs, longer windows).
 */
bool fullMode();

/** Bench GPU configuration (16 SMs full / 8 SMs quick). */
GpuConfig benchConfig();

/** Measurement cycles per simulation (env CKESIM_CYCLES overrides). */
Cycle benchCycles();

/** Pair list (all 78 suite pairs full / representative 17 quick). */
std::vector<Workload> benchPairs();

// ---- CLI knobs shared by all bench binaries ----------------------------

/** Options recognized (and stripped from argv) by every bench. */
struct BenchOptions
{
    /** Simulation jobs; 0 = CKESIM_JOBS env, else hardware
     *  concurrency. */
    int jobs = 0;
    /** --list: print registered experiment names and exit. */
    bool list = false;
    /** --tables: run experiments directly (no benchmark harness),
     *  printing only the paper tables — stable output for diffing. */
    bool tables_only = false;
    /** --filter substr: run only experiments whose name contains it. */
    std::string filter;
    /** --resume path: journal completed jobs to @p path and serve any
     *  already-journaled results instead of re-simulating, so a killed
     *  sweep picks up where it died. */
    std::string resume;
    /** --fast: event-driven cycle skipping (bit-identical results;
     *  see DESIGN.md section 13). Defaults from CKESIM_FAST. */
    bool fast = false;

    bool matches(const std::string &name) const;
};

/**
 * Extract --jobs N / --list / --filter S / --tables / --resume P /
 * --fast from argv (both "--flag value" and "--flag=value" forms),
 * compacting argv so the remaining flags can go to the benchmark
 * library untouched.
 */
BenchOptions parseBenchArgs(int &argc, char **argv);

/** Jobs requested via CKESIM_JOBS (0 = unset). */
int jobsFromEnv();

// ---- experiment registry ----------------------------------------------

/** Counters an experiment exports (mirrored into benchmark state). */
struct BenchReport
{
    std::map<std::string, double> counters;
};

using ExperimentFn = std::function<void(BenchReport &)>;

/** Named experiments a bench binary registers at startup. */
class ExperimentRegistry
{
  public:
    struct Entry
    {
        std::string name;
        ExperimentFn fn;
    };

    static ExperimentRegistry &instance();

    void add(std::string name, ExperimentFn fn);
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

// ---- shared engine -----------------------------------------------------

/**
 * Pin the job count of the process-wide bench engine; must be called
 * before the first benchEngine() use to take effect.
 */
void setBenchJobs(int jobs);

/**
 * The engine shared by every experiment in this process: one memo
 * cache, so isolated baselines computed for one figure are reused by
 * the next.
 */
SweepEngine &benchEngine();

/**
 * Open (or create) the write-ahead results journal at @p path and
 * attach it to benchEngine(): completed jobs are durably recorded and
 * a re-run resumes instead of recomputing. Returns the number of
 * results recovered from an earlier (possibly killed) run.
 */
std::size_t attachBenchJournal(const std::string &path);

/** One-line execution/memo summary of benchEngine() to @p out. */
void printSweepStats(std::FILE *out);

/** Copy benchEngine() stats into report counters (cache_hits, ...). */
void exportSweepStats(BenchReport &report);

} // namespace ckesim

#endif // CKESIM_METRICS_EXPERIMENT_HPP
