/**
 * @file
 * Shared experiment-harness helpers: class-grouped geomeans, table
 * formatting, and environment-driven sizing (quick vs full runs) used
 * by every bench binary.
 */

#ifndef CKESIM_METRICS_EXPERIMENT_HPP
#define CKESIM_METRICS_EXPERIMENT_HPP

#include <map>
#include <string>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/runner.hpp"
#include "sim/config.hpp"

namespace ckesim {

/** Accumulates per-class values and reports geomeans (paper style). */
class ClassAggregate
{
  public:
    void add(WorkloadClass cls, double value);

    /** Geomean within one class (0 when empty). */
    double geomean(WorkloadClass cls) const;

    /** Geomean over everything added ("ALL" columns). */
    double geomeanAll() const;

    int count(WorkloadClass cls) const;

  private:
    std::map<WorkloadClass, std::vector<double>> by_class_;
    std::vector<double> all_;
};

/** "C+C" / "C+M" / "M+M". */
const char *classLabel(WorkloadClass cls);

/**
 * Is CKESIM_FULL set? Full mode runs the paper-scale configuration
 * (16 SMs, all 78 suite pairs, longer windows).
 */
bool fullMode();

/** Bench GPU configuration (16 SMs full / 8 SMs quick). */
GpuConfig benchConfig();

/** Measurement cycles per simulation (env CKESIM_CYCLES overrides). */
Cycle benchCycles();

/** Pair list (all 78 suite pairs full / representative 17 quick). */
std::vector<Workload> benchPairs();

/** Align-right number formatting for simple console tables. */
std::string fmt(double v, int width = 7, int precision = 3);

/** Print a header line followed by an underline of '-'. */
void printHeader(const std::string &title);

} // namespace ckesim

#endif // CKESIM_METRICS_EXPERIMENT_HPP
