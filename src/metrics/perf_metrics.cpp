#include "metrics/perf_metrics.hpp"

#include <algorithm>

namespace ckesim {

namespace {
constexpr double kEps = 1e-12;
} // namespace

double
weightedSpeedup(const std::vector<double> &norm_ipcs)
{
    double sum = 0.0;
    for (double v : norm_ipcs)
        sum += v;
    return sum;
}

double
antt(const std::vector<double> &norm_ipcs)
{
    if (norm_ipcs.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : norm_ipcs)
        sum += 1.0 / std::max(v, kEps);
    return sum / static_cast<double>(norm_ipcs.size());
}

double
fairnessIndex(const std::vector<double> &norm_ipcs)
{
    if (norm_ipcs.empty())
        return 0.0;
    const auto [mn, mx] =
        std::minmax_element(norm_ipcs.begin(), norm_ipcs.end());
    if (*mx <= kEps)
        return 0.0;
    return *mn / *mx;
}

} // namespace ckesim
