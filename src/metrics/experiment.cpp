#include "metrics/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "sim/stats.hpp"

namespace ckesim {

void
ClassAggregate::add(WorkloadClass cls, double value)
{
    // Geomeans need positive values; clamp degenerate runs.
    const double v = value > 1e-9 ? value : 1e-9;
    by_class_[cls].push_back(v);
    all_.push_back(v);
}

double
ClassAggregate::geomean(WorkloadClass cls) const
{
    auto it = by_class_.find(cls);
    if (it == by_class_.end() || it->second.empty())
        return 0.0;
    return ckesim::geomean(it->second);
}

double
ClassAggregate::geomeanAll() const
{
    if (all_.empty())
        return 0.0;
    return ckesim::geomean(all_);
}

int
ClassAggregate::count(WorkloadClass cls) const
{
    auto it = by_class_.find(cls);
    return it == by_class_.end()
               ? 0
               : static_cast<int>(it->second.size());
}

const char *
classLabel(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::CC:
        return "C+C";
      case WorkloadClass::CM:
        return "C+M";
      case WorkloadClass::MM:
        return "M+M";
    }
    return "?";
}

bool
fullMode()
{
    const char *env = std::getenv("CKESIM_FULL");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

GpuConfig
benchConfig()
{
    // Always the paper's full Table 1 machine: the L2-capacity /
    // working-set balance the kernels are calibrated against does
    // not survive shrinking the partition count. Quick mode shortens
    // runs and subsets workloads instead.
    return GpuConfig{};
}

Cycle
benchCycles()
{
    if (const char *env = std::getenv("CKESIM_CYCLES")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<Cycle>(v);
    }
    return fullMode() ? 400000 : 60000;
}

std::vector<Workload>
benchPairs()
{
    return fullMode() ? allSuitePairs() : representativePairs();
}

std::string
fmt(double v, int width, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
    return buf;
}

void
printHeader(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("-");
    std::printf("\n");
}

} // namespace ckesim
