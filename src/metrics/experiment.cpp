#include "metrics/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "metrics/journal.hpp"

namespace ckesim {

bool
fullMode()
{
    const char *env = std::getenv("CKESIM_FULL");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

GpuConfig
benchConfig()
{
    // Always the paper's full Table 1 machine: the L2-capacity /
    // working-set balance the kernels are calibrated against does
    // not survive shrinking the partition count. Quick mode shortens
    // runs and subsets workloads instead.
    return GpuConfig{};
}

Cycle
benchCycles()
{
    if (const char *env = std::getenv("CKESIM_CYCLES")) {
        const long v = std::atol(env);
        if (v > 0)
            return Cycle{v};
    }
    return fullMode() ? Cycle{400000} : Cycle{60000};
}

std::vector<Workload>
benchPairs()
{
    return fullMode() ? allSuitePairs() : representativePairs();
}

// ---- CLI knobs ---------------------------------------------------------

bool
BenchOptions::matches(const std::string &name) const
{
    return filter.empty() || name.find(filter) != std::string::npos;
}

int
jobsFromEnv()
{
    if (const char *env = std::getenv("CKESIM_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<int>(v);
    }
    return 0;
}

namespace {

/** "--flag=value" or "--flag value"; empty when @p arg isn't flag. */
bool
takeValueFlag(const char *flag, int &argc, char **argv, int &i,
              std::string &out)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0)
        return false;
    if (argv[i][len] == '=') {
        out = argv[i] + len + 1;
        return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
        out = argv[i + 1];
        ++i; // consume the value too
        return true;
    }
    return false;
}

} // namespace

BenchOptions
parseBenchArgs(int &argc, char **argv)
{
    BenchOptions opts;
    opts.jobs = jobsFromEnv();
    opts.fast = fastFromEnv();

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (std::strcmp(argv[i], "--list") == 0) {
            opts.list = true;
        } else if (std::strcmp(argv[i], "--tables") == 0) {
            opts.tables_only = true;
        } else if (std::strcmp(argv[i], "--fast") == 0) {
            opts.fast = true;
        } else if (takeValueFlag("--jobs", argc, argv, i, value)) {
            const long v = std::atol(value.c_str());
            if (v > 0)
                opts.jobs = static_cast<int>(v);
        } else if (takeValueFlag("--filter", argc, argv, i, value)) {
            opts.filter = value;
        } else if (takeValueFlag("--resume", argc, argv, i, value)) {
            opts.resume = value;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

// ---- experiment registry ----------------------------------------------

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(std::string name, ExperimentFn fn)
{
    entries_.push_back(Entry{std::move(name), std::move(fn)});
}

// ---- shared engine -----------------------------------------------------

namespace {

int &
benchJobsSlot()
{
    static int jobs = 0;
    return jobs;
}

} // namespace

void
setBenchJobs(int jobs)
{
    benchJobsSlot() = jobs;
}

SweepEngine &
benchEngine()
{
    static SweepEngine engine(benchJobsSlot() > 0 ? benchJobsSlot()
                                                  : jobsFromEnv());
    return engine;
}

std::size_t
attachBenchJournal(const std::string &path)
{
    // Static: the journal must outlive every job the engine ever
    // runs, exactly like the engine itself.
    static ResultJournal journal;
    journal.open(path);
    benchEngine().setJournal(&journal);
    return journal.size();
}

void
printSweepStats(std::FILE *out)
{
    const SweepStats s = benchEngine().stats();
    std::fprintf(out,
                 "sweep engine: %d jobs, %llu sims executed, %llu "
                 "memo hits (%.0f%% hit rate), isolated runs %llu "
                 "executed / %llu reused\n",
                 benchEngine().jobs(),
                 static_cast<unsigned long long>(s.sims_executed),
                 static_cast<unsigned long long>(s.memo_hits),
                 100.0 * s.hitRate(),
                 static_cast<unsigned long long>(s.isolated_runs),
                 static_cast<unsigned long long>(s.isolated_hits));
}

void
exportSweepStats(BenchReport &report)
{
    const SweepStats s = benchEngine().stats();
    report.counters["sweep_sims_executed"] =
        static_cast<double>(s.sims_executed);
    report.counters["sweep_memo_hits"] =
        static_cast<double>(s.memo_hits);
    report.counters["sweep_iso_reused"] =
        static_cast<double>(s.isolated_hits);
}

} // namespace ckesim
