#include "metrics/sweep_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <utility>

#include "metrics/journal.hpp"
#include "metrics/perf_metrics.hpp"
#include "sim/check.hpp"

namespace ckesim {

bool
fastFromEnv()
{
    const char *env = std::getenv("CKESIM_FAST");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// ---- WorkStealingPool --------------------------------------------------

WorkStealingPool::WorkStealingPool(int workers)
{
    workers = std::max(workers, 0);
    queues_.resize(static_cast<std::size_t>(workers));
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back(&WorkStealingPool::workerLoop, this,
                              static_cast<std::size_t>(i));
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkStealingPool::finish(Task &task)
{
    if (task.batch->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lk(task.batch->m);
        task.batch->done.notify_all();
    }
}

bool
WorkStealingPool::trySteal(std::size_t self, Task &out)
{
    // Caller holds mu_. Thieves take the oldest task (FIFO end).
    for (std::size_t j = 0; j < queues_.size(); ++j) {
        if (j == self || queues_[j].empty())
            continue;
        out = std::move(queues_[j].front());
        queues_[j].pop_front();
        return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (stop_)
            return;
        Task task;
        if (!queues_[self].empty()) {
            // Owner pops LIFO: freshly pushed work is cache-warm.
            task = std::move(queues_[self].back());
            queues_[self].pop_back();
        } else if (!trySteal(self, task)) {
            work_cv_.wait(lk);
            continue;
        }
        lk.unlock();
        task.fn();
        finish(task);
        lk.lock();
    }
}

void
WorkStealingPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (threads_.empty()) {
        for (auto &t : tasks)
            t();
        return;
    }

    Batch batch;
    batch.remaining.store(tasks.size());
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < tasks.size(); ++i)
            queues_[i % queues_.size()].push_back(
                Task{std::move(tasks[i]), &batch});
    }
    work_cv_.notify_all();

    // The caller participates: steal any runnable task (not just this
    // batch's) until the batch drains, so nested run() calls from
    // inside a task always make global progress.
    for (;;) {
        Task task;
        bool got = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            got = trySteal(queues_.size(), task);
        }
        if (got) {
            task.fn();
            finish(task);
            continue;
        }
        std::unique_lock<std::mutex> lk(batch.m);
        if (batch.remaining.load() == 0)
            return;
        // Timed wait: new stealable tasks can appear (nested batches)
        // without a signal on this batch's cv.
        batch.done.wait_for(lk, std::chrono::milliseconds(10));
        if (batch.remaining.load() == 0)
            return;
    }
}

// ---- SweepEngine -------------------------------------------------------

namespace {

int
resolveJobCount(int jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

std::uint64_t
retryBackoffMs(const RetryPolicy &policy, std::uint64_t key,
               int attempt)
{
    if (policy.backoff_ms == 0)
        return 0;
    const int shift = std::min(attempt, 32);
    const std::uint64_t base = policy.backoff_ms
                               << static_cast<unsigned>(shift);
    const std::uint64_t span = base * policy.jitter_pct / 100;
    if (span == 0)
        return base;
    // splitmix64 over (key, attempt): high-quality, seedable, and —
    // unlike wall-clock or RNG jitter — bit-reproducible per job.
    std::uint64_t z = key ^
                      (static_cast<std::uint64_t>(attempt) + 1) *
                          0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return base + z % (span + 1);
}

SweepEngine::SweepEngine(int jobs)
    : jobs_(resolveJobCount(jobs)), pool_(jobs_ - 1),
      fast_forward_(fastFromEnv())
{
    // Touch the lazily-built profile suite before any worker can race
    // on its magic-static initialization (the init is thread-safe per
    // C++11, but warming it keeps first-job latencies flat).
    benchmarkSuite();
}

SweepStats
SweepEngine::stats() const
{
    SweepStats s;
    s.jobs_submitted = jobs_submitted_.load();
    s.sims_executed = sims_executed_.load();
    s.memo_hits = memo_hits_.load();
    s.isolated_runs = isolated_runs_.load();
    s.isolated_hits = isolated_hits_.load();
    return s;
}

void
SweepEngine::clearCache()
{
    std::lock_guard<std::mutex> lk(cache_mu_);
    cache_.clear();
}

SimResult
SweepEngine::run(const SimJob &job)
{
    jobs_submitted_.fetch_add(1);
    const std::uint64_t key = job.key();

    std::promise<SimResult> prom;
    {
        std::unique_lock<std::mutex> lk(cache_mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            std::shared_future<SimResult> fut = it->second;
            lk.unlock();
            memo_hits_.fetch_add(1);
            if (job.kind == JobKind::Isolated)
                isolated_hits_.fetch_add(1);
            return fut.get();
        }
        cache_.emplace(key, prom.get_future().share());
    }

    // This thread won the race: compute inline (never enqueue — a
    // blocked waiter must always be waiting on an actively-running
    // computation, so memoization can't deadlock the pool).
    try {
        SimResult result = computeWithResilience(job);
        prom.set_value(result);
        return result;
    } catch (...) {
        {
            // A failure must not poison the cache: resubmitting the
            // identical job (after a transient timeout, a cancel, or
            // a cleared fault) gets a fresh attempt instead of the
            // memoized exception. In-flight waiters still receive the
            // exception through their shared_future copies.
            std::lock_guard<std::mutex> lk(cache_mu_);
            cache_.erase(key);
        }
        prom.set_exception(std::current_exception());
        throw;
    }
}

std::vector<SimResult>
SweepEngine::sweep(const std::vector<SimJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([this, &jobs, &results, &errors, i] {
            try {
                results[i] = run(jobs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool_.run(std::move(tasks));

    // Deterministic error reporting: surface the first failing job in
    // submission order, exactly as a serial loop would.
    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
    return results;
}

std::shared_ptr<const IsolatedResult>
SweepEngine::isolated(const GpuConfig &cfg, Cycle cycles,
                      const KernelProfile &prof, int tb_limit)
{
    return run(SimJob::isolated(cfg, cycles, prof, tb_limit))
        .isolated;
}

std::shared_ptr<const ConcurrentResult>
SweepEngine::concurrent(const GpuConfig &cfg, Cycle cycles,
                        const Workload &workload, NamedScheme named)
{
    return run(SimJob::concurrent(cfg, cycles, workload, named))
        .concurrent;
}

std::shared_ptr<const ConcurrentResult>
SweepEngine::concurrent(const GpuConfig &cfg, Cycle cycles,
                        const Workload &workload,
                        const SchemeSpec &spec)
{
    return run(SimJob::concurrent(cfg, cycles, workload, spec))
        .concurrent;
}

ScalabilityCurve
SweepEngine::scalability(const GpuConfig &cfg, Cycle cycles,
                         const KernelProfile &prof)
{
    const int max_tbs = prof.maxTbsPerSm(cfg.sm);
    std::vector<SimJob> jobs;
    jobs.reserve(static_cast<std::size_t>(max_tbs));
    for (int tb = 1; tb <= max_tbs; ++tb)
        jobs.push_back(SimJob::isolated(cfg, cycles, prof, tb));
    const std::vector<SimResult> points = sweep(jobs);

    ScalabilityCurve curve;
    for (int tb = 1; tb <= max_tbs; ++tb)
        curve.addPoint(
            tb,
            points[static_cast<std::size_t>(tb - 1)]
                .isolated->ipc_per_sm);
    return curve;
}

SchemeSpec
SweepEngine::makeNamedScheme(const GpuConfig &cfg, Cycle cycles,
                             NamedScheme named,
                             const Workload &workload)
{
    SchemeSpec spec;
    switch (named) {
      case NamedScheme::Spatial:
        spec.partition = PartitionScheme::Spatial;
        break;
      case NamedScheme::Leftover:
        spec.partition = PartitionScheme::Leftover;
        break;
      case NamedScheme::WS:
        spec.partition = PartitionScheme::WarpedSlicer;
        break;
      case NamedScheme::WS_RBMI:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::RBMI;
        break;
      case NamedScheme::WS_QBMI:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::QBMI;
        break;
      case NamedScheme::WS_DMIL:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.mil = MilMode::Dynamic;
        break;
      case NamedScheme::WS_QBMI_DMIL:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.bmi = BmiMode::QBMI;
        spec.mil = MilMode::Dynamic;
        break;
      case NamedScheme::WS_UCP:
        spec.partition = PartitionScheme::WarpedSlicer;
        spec.ucp = true;
        break;
      case NamedScheme::SMK_PW:
        spec.partition = PartitionScheme::SmkDrf;
        spec.smk_warp_quota = true;
        break;
      case NamedScheme::SMK_P_QBMI:
        spec.partition = PartitionScheme::SmkDrf;
        spec.bmi = BmiMode::QBMI;
        break;
      case NamedScheme::SMK_P_DMIL:
        spec.partition = PartitionScheme::SmkDrf;
        spec.mil = MilMode::Dynamic;
        break;
    }
    if (spec.smk_warp_quota) {
        for (const KernelProfile *k : workload.kernels)
            spec.isolated_ipc_per_sm.push_back(
                isolated(cfg, cycles, *k)->ipc_per_sm);
    }
    return spec;
}

// ---- resilience layer --------------------------------------------------

/**
 * RAII registration of one job's RunControl with the engine, so
 * cancelAll() can reach every in-flight simulation. Budgets are armed
 * at construction (the wall deadline starts when the job does).
 */
class SweepEngine::ActiveControl
{
  public:
    explicit ActiveControl(SweepEngine &eng) : eng_(eng)
    {
        rc_.setCycleBudget(eng.budget_.cycle_budget);
        rc_.setWallBudgetMs(eng.budget_.wall_budget_ms);
        if (eng.poll_hook_)
            rc_.setPollHook(eng.poll_hook_);
        std::lock_guard<std::mutex> lk(eng.rc_mu_);
        if (eng.cancel_all_)
            rc_.requestCancel();
        eng.active_rcs_.push_back(&rc_);
    }

    ~ActiveControl()
    {
        std::lock_guard<std::mutex> lk(eng_.rc_mu_);
        auto &v = eng_.active_rcs_;
        v.erase(std::remove(v.begin(), v.end(), &rc_), v.end());
    }

    ActiveControl(const ActiveControl &) = delete;
    ActiveControl &operator=(const ActiveControl &) = delete;

    RunControl *get() { return &rc_; }

  private:
    SweepEngine &eng_;
    RunControl rc_;
};

void
SweepEngine::cancelAll()
{
    std::lock_guard<std::mutex> lk(rc_mu_);
    cancel_all_ = true;
    for (RunControl *rc : active_rcs_)
        rc->requestCancel();
}

void
SweepEngine::clearCancel()
{
    std::lock_guard<std::mutex> lk(rc_mu_);
    cancel_all_ = false;
}

ResilienceReport
SweepEngine::resilience() const
{
    ResilienceReport r;
    r.completed = completed_.load();
    r.retried = retried_.load();
    r.timed_out = timed_out_.load();
    r.cancelled = cancelled_jobs_.load();
    r.abandoned = abandoned_.load();
    r.journal_hits = journal_hits_.load();
    return r;
}

SimResult
SweepEngine::computeWithResilience(const SimJob &job)
{
    const std::uint64_t key = job.key();
    if (journal_) {
        SimResult recovered;
        if (journal_->find(key, recovered)) {
            journal_hits_.fetch_add(1);
            completed_.fetch_add(1);
            return recovered;
        }
    }

    // Retrying a fully deterministic failure is pointless; what can
    // legitimately differ between attempts is the wall-clock budget
    // (host load) and fault-injection jobs, whose whole purpose is to
    // die — the issue-level contract is "bounded attempts, then give
    // up with the original error".
    const bool fault_job = !job.use_named && !job.spec.faults.empty();
    for (int attempt = 0;; ++attempt) {
        try {
            SimResult result = compute(job);
            if (journal_)
                journal_->append(key, result);
            completed_.fetch_add(1);
            return result;
        } catch (const SimError &e) {
            const bool timeout = e.kind() == "Timeout";
            if (timeout)
                timed_out_.fetch_add(1);
            if (e.kind() == "Cancelled") {
                cancelled_jobs_.fetch_add(1);
                abandoned_.fetch_add(1);
                throw; // cancellation is a command, never retried
            }
            if (!(timeout || fault_job) ||
                attempt >= retry_.max_retries) {
                abandoned_.fetch_add(1);
                throw;
            }
            retried_.fetch_add(1);
            const std::uint64_t backoff =
                retryBackoffMs(retry_, key, attempt);
            if (backoff > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff));
        }
    }
}

SimResult
SweepEngine::compute(const SimJob &job)
{
    sims_executed_.fetch_add(1);
    ActiveControl control(*this);
    SimResult result;
    if (job.kind == JobKind::Isolated) {
        isolated_runs_.fetch_add(1);
        result.isolated = computeIsolated(job, control.get());
    } else {
        result.concurrent = computeConcurrent(job, control.get());
    }
    return result;
}

namespace {

MemSideStats
memSideStats(Gpu &gpu)
{
    MemSideStats mem;
    mem.l2_miss_rate = gpu.memsys().l2MissRate();
    const int channels = gpu.config().dram.num_channels;
    double row_hit = 0.0;
    for (int c = 0; c < channels; ++c)
        row_hit += gpu.memsys().channel(c).rowHitRate();
    mem.dram_row_hit_rate = channels > 0 ? row_hit / channels : 0.0;
    return mem;
}

/** Allocate and attach per-kernel samplers requested by @p job. */
void
attachRequestedSeries(const SimJob &job, Gpu &gpu,
                      std::vector<TimeSeries> &issue,
                      std::vector<TimeSeries> &l1d)
{
    if (!job.series.issue && !job.series.l1d)
        return;
    const std::size_t n =
        static_cast<std::size_t>(job.workload.numKernels());
    if (job.series.issue)
        issue.assign(n, TimeSeries(job.series.interval));
    if (job.series.l1d)
        l1d.assign(n, TimeSeries(job.series.interval));
    for (std::size_t k = 0; k < n; ++k)
        gpu.attachSeries(static_cast<KernelId>(k),
                         job.series.issue ? &issue[k] : nullptr,
                         job.series.l1d ? &l1d[k] : nullptr);
}

} // namespace

std::shared_ptr<const IsolatedResult>
SweepEngine::computeIsolated(const SimJob &job, RunControl *rc)
{
    const KernelProfile &prof = *job.workload.kernels.at(0);
    Workload wl;
    wl.kernels = {&prof};
    const SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                       BmiMode::None, MilMode::None);
    Gpu gpu(job.cfg, wl, spec);
    gpu.setFastForward(fast_forward_);
    gpu.setRunControl(rc);
    const int quota = job.tb_limit > 0
                          ? job.tb_limit
                          : prof.maxTbsPerSm(job.cfg.sm);
    for (int s = 0; s < gpu.numSms(); ++s)
        gpu.sm(s).setTbQuota(KernelId{0}, quota);

    auto res = std::make_shared<IsolatedResult>();
    attachRequestedSeries(job, gpu, res->issue_series,
                          res->l1d_series);
    gpu.run(job.cycles);

    res->ipc = gpu.ipc(KernelId{0});
    res->ipc_per_sm = res->ipc / job.cfg.num_sms;
    res->stats = gpu.kernelStatsTotal(KernelId{0});
    res->sm_stats = gpu.smStatsTotal();
    res->max_tbs = quota;
    res->mem = memSideStats(gpu);
    gpu.audit();
    return res;
}

std::shared_ptr<const ConcurrentResult>
SweepEngine::computeConcurrent(const SimJob &job, RunControl *rc)
{
    const SchemeSpec spec =
        job.use_named ? makeNamedScheme(job.cfg, job.cycles,
                                        job.named, job.workload)
                      : job.spec;

    // Dynamic Warped-Slicer spends a profiling window first; extend
    // the run so the measurement phase always covers job.cycles.
    Cycle total = job.cycles;
    if (spec.partition == PartitionScheme::WarpedSlicer &&
        spec.oracle_curves.empty())
        total += spec.ws_profile_window;

    Gpu gpu(job.cfg, job.workload, spec);
    gpu.setFastForward(fast_forward_);
    gpu.setRunControl(rc);
    auto res = std::make_shared<ConcurrentResult>();
    attachRequestedSeries(job, gpu, res->issue_series,
                          res->l1d_series);
    gpu.run(total);

    res->workload_name = job.workload.name();
    res->theoretical_ws = gpu.theoreticalWs();
    res->partition = gpu.chosenPartition();
    res->sm_stats = gpu.smStatsTotal();
    for (int k = 0; k < job.workload.numKernels(); ++k) {
        const double shared_ipc = gpu.ipc(KernelId{k});
        const double iso_ipc =
            isolated(job.cfg, job.cycles,
                     *job.workload.kernels[static_cast<std::size_t>(
                         k)])
                ->ipc;
        res->ipc.push_back(shared_ipc);
        res->norm_ipc.push_back(
            iso_ipc > 0 ? shared_ipc / iso_ipc : 0.0);
        res->stats.push_back(gpu.kernelStatsTotal(KernelId{k}));
    }
    res->weighted_speedup = weightedSpeedup(res->norm_ipc);
    res->antt_value = antt(res->norm_ipc);
    res->fairness = fairnessIndex(res->norm_ipc);
    res->mem = memSideStats(gpu);

    // Conservation audit: prove every generated request retired.
    // Fault-injection runs deliberately corrupt the pipeline; their
    // leaks are the experiment, not a simulator bug.
    if (spec.faults.empty())
        gpu.audit();
    return res;
}

} // namespace ckesim
