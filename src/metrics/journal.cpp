#include "metrics/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <set>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace ckesim {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4c4a4b43u; // "CKJL"

SimCtx
journalCtx()
{
    SimCtx ctx;
    ctx.module = "journal";
    return ctx;
}

[[noreturn]] void
journalFail(const std::string &what)
{
    raiseSimError("Journal", journalCtx(), what);
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** magic + version + key + payload_len + crc32. */
constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 4 + 4;

} // namespace

std::uint32_t
crc32(const std::uint8_t *bytes, std::size_t n)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ---- result payload codec -----------------------------------------------

namespace {

void
encodeSeries(SnapshotWriter &w, const std::vector<TimeSeries> &series)
{
    w.u64(series.size());
    for (const TimeSeries &ts : series) {
        w.unit(ts.interval());
        w.vecU64(ts.bins());
    }
}

std::vector<TimeSeries>
decodeSeries(SnapshotReader &r)
{
    std::vector<TimeSeries> series;
    const std::uint64_t n = r.u64();
    series.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        TimeSeries ts(r.unit<Cycle>());
        ts.setBins(r.vecU64());
        series.push_back(std::move(ts));
    }
    return series;
}

void
encodeMemSide(SnapshotWriter &w, const MemSideStats &mem)
{
    w.f64(mem.l2_miss_rate);
    w.f64(mem.dram_row_hit_rate);
}

MemSideStats
decodeMemSide(SnapshotReader &r)
{
    MemSideStats mem;
    mem.l2_miss_rate = r.f64();
    mem.dram_row_hit_rate = r.f64();
    return mem;
}

} // namespace

std::vector<std::uint8_t>
encodeSimResult(const SimResult &result)
{
    SnapshotWriter w;
    w.section("sim_result");
    if (result.isolated) {
        const IsolatedResult &iso = *result.isolated;
        w.u8(1);
        w.f64(iso.ipc);
        w.f64(iso.ipc_per_sm);
        snapshotKernelStats(w, iso.stats);
        snapshotSmStats(w, iso.sm_stats);
        w.i64(iso.max_tbs);
        encodeMemSide(w, iso.mem);
        encodeSeries(w, iso.issue_series);
        encodeSeries(w, iso.l1d_series);
    } else if (result.concurrent) {
        const ConcurrentResult &con = *result.concurrent;
        w.u8(2);
        w.str(con.workload_name);
        w.u64(con.ipc.size());
        for (const double v : con.ipc)
            w.f64(v);
        w.u64(con.norm_ipc.size());
        for (const double v : con.norm_ipc)
            w.f64(v);
        w.f64(con.weighted_speedup);
        w.f64(con.antt_value);
        w.f64(con.fairness);
        w.f64(con.theoretical_ws);
        w.u64(con.stats.size());
        for (const KernelStats &s : con.stats)
            snapshotKernelStats(w, s);
        snapshotSmStats(w, con.sm_stats);
        w.u64(con.partition.size());
        for (const int t : con.partition)
            w.i64(t);
        encodeMemSide(w, con.mem);
        encodeSeries(w, con.issue_series);
        encodeSeries(w, con.l1d_series);
    } else {
        w.u8(0);
    }
    return w.take();
}

SimResult
decodeSimResult(const std::vector<std::uint8_t> &bytes)
{
    SnapshotReader r(bytes);
    r.section("sim_result");
    SimResult result;
    const std::uint8_t kind = r.u8();
    if (kind == 1) {
        auto iso = std::make_shared<IsolatedResult>();
        iso->ipc = r.f64();
        iso->ipc_per_sm = r.f64();
        iso->stats = restoreKernelStats(r);
        iso->sm_stats = restoreSmStats(r);
        iso->max_tbs = static_cast<int>(r.i64());
        iso->mem = decodeMemSide(r);
        iso->issue_series = decodeSeries(r);
        iso->l1d_series = decodeSeries(r);
        result.isolated = std::move(iso);
    } else if (kind == 2) {
        auto con = std::make_shared<ConcurrentResult>();
        con->workload_name = r.str();
        con->ipc.assign(static_cast<std::size_t>(r.u64()), 0.0);
        for (double &v : con->ipc)
            v = r.f64();
        con->norm_ipc.assign(static_cast<std::size_t>(r.u64()), 0.0);
        for (double &v : con->norm_ipc)
            v = r.f64();
        con->weighted_speedup = r.f64();
        con->antt_value = r.f64();
        con->fairness = r.f64();
        con->theoretical_ws = r.f64();
        const std::uint64_t nstats = r.u64();
        con->stats.reserve(static_cast<std::size_t>(nstats));
        for (std::uint64_t i = 0; i < nstats; ++i)
            con->stats.push_back(restoreKernelStats(r));
        con->sm_stats = restoreSmStats(r);
        con->partition.assign(static_cast<std::size_t>(r.u64()), 0);
        for (int &t : con->partition)
            t = static_cast<int>(r.i64());
        con->mem = decodeMemSide(r);
        con->issue_series = decodeSeries(r);
        con->l1d_series = decodeSeries(r);
        result.concurrent = std::move(con);
    } else if (kind != 0) {
        SimCtx ctx;
        ctx.module = "journal";
        raiseSimError("Snapshot", ctx,
                      "unknown SimResult kind byte " +
                          std::to_string(kind));
    }
    if (!r.atEnd()) {
        SimCtx ctx;
        ctx.module = "journal";
        raiseSimError("Snapshot", ctx,
                      "trailing bytes after SimResult payload");
    }
    return result;
}

// ---- offline integrity checking (journal_fsck) ---------------------------

const char *
journalRecordStatusName(JournalRecordStatus status)
{
    switch (status) {
      case JournalRecordStatus::Ok:
        return "ok";
      case JournalRecordStatus::BadMagic:
        return "bad-magic";
      case JournalRecordStatus::BadVersion:
        return "bad-version";
      case JournalRecordStatus::BadCrc:
        return "bad-crc";
      case JournalRecordStatus::BadPayload:
        return "bad-payload";
      case JournalRecordStatus::Torn:
        return "torn";
    }
    return "unknown";
}

JournalFsckReport
fsckJournal(const std::string &path)
{
    JournalFsckReport report;
    report.path = path;

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        journalFail("fsck cannot open '" + path +
                    "': " + std::strerror(errno));
    std::vector<std::uint8_t> data;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            const int err = errno;
            ::close(fd);
            journalFail("fsck read('" + path +
                        "') failed: " + std::strerror(err));
        }
        if (n == 0)
            break;
        data.insert(data.end(), chunk, chunk + n);
    }
    ::close(fd);
    report.file_bytes = data.size();

    // Key-sorted on purpose: fsck accounting must not depend on
    // hash-bucket order, and a future "dump distinct keys" walk
    // inherits a deterministic order for free.
    std::set<std::uint64_t> keys;
    std::size_t pos = 0;
    while (pos < data.size()) {
        JournalFsckRecord rec;
        rec.offset = pos;
        const std::size_t left = data.size() - pos;

        if (left < kHeaderBytes) {
            // Not even a full header: a crash mid-append. Benign.
            rec.status = JournalRecordStatus::Torn;
            rec.detail = "only " + std::to_string(left) +
                         " of " + std::to_string(kHeaderBytes) +
                         " header bytes present";
            report.torn_bytes = left;
            report.records.push_back(std::move(rec));
            break;
        }
        const std::uint8_t *h = data.data() + pos;
        if (getU32(h) != kJournalMagic) {
            rec.status = JournalRecordStatus::BadMagic;
            rec.detail = "record does not start with the journal "
                         "magic; the file is not a journal or an "
                         "earlier length field lied";
            report.hard_corrupt = true;
            report.records.push_back(std::move(rec));
            break; // no way to resynchronize safely
        }
        const std::uint8_t version = h[4];
        rec.key = getU64(h + 5);
        rec.payload_len = getU32(h + 13);
        const std::uint32_t crc = getU32(h + 17);
        if (version != kSnapshotFormatVersion) {
            rec.status = JournalRecordStatus::BadVersion;
            rec.detail = "format version " +
                         std::to_string(version) +
                         " (this build reads " +
                         std::to_string(kSnapshotFormatVersion) +
                         ")";
            report.hard_corrupt = true;
            report.records.push_back(std::move(rec));
            break;
        }
        if (left - kHeaderBytes < rec.payload_len) {
            // Payload cut off at EOF: interrupted append. Benign.
            rec.status = JournalRecordStatus::Torn;
            rec.detail =
                "payload claims " + std::to_string(rec.payload_len) +
                " bytes but only " +
                std::to_string(left - kHeaderBytes) + " remain";
            report.torn_bytes = left;
            report.records.push_back(std::move(rec));
            break;
        }
        const std::uint8_t *payload = h + kHeaderBytes;
        if (crc32(payload, rec.payload_len) != crc) {
            rec.status = JournalRecordStatus::BadCrc;
            rec.detail = "payload bytes all present but CRC32 "
                         "mismatch: flipped bits, not a torn tail";
            report.hard_corrupt = true;
            report.records.push_back(std::move(rec));
            break;
        }
        std::vector<std::uint8_t> bytes(payload,
                                        payload + rec.payload_len);
        try {
            (void)decodeSimResult(bytes);
        } catch (const SimError &e) {
            rec.status = JournalRecordStatus::BadPayload;
            rec.detail = std::string("CRC fine but SimResult "
                                     "decode failed: ") +
                         e.what();
            report.hard_corrupt = true;
            report.records.push_back(std::move(rec));
            break;
        }
        rec.status = JournalRecordStatus::Ok;
        ++report.ok_records;
        keys.insert(rec.key);
        pos += kHeaderBytes + rec.payload_len;
        report.records.push_back(std::move(rec));
    }
    report.distinct_keys = keys.size();
    return report;
}

// ---- ResultJournal ------------------------------------------------------

ResultJournal::~ResultJournal()
{
    close();
}

void
ResultJournal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
ResultJournal::open(const std::string &path)
{
    std::lock_guard<std::mutex> lk(mu_);
    close();
    records_.clear();
    stats_ = JournalStats{};
    path_ = path;

    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        journalFail("cannot open '" + path +
                    "': " + std::strerror(errno));

    // Slurp the whole file: journals are result tables, not traces.
    std::vector<std::uint8_t> data;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0)
            journalFail("read('" + path +
                        "') failed: " + std::strerror(errno));
        if (n == 0)
            break;
        data.insert(data.end(), chunk, chunk + n);
    }

    // Replay intact records; stop at (and truncate away) a torn tail.
    std::size_t pos = 0;
    bool torn = false;
    while (data.size() - pos >= kHeaderBytes) {
        const std::uint8_t *h = data.data() + pos;
        if (getU32(h) != kJournalMagic) {
            torn = true;
            break;
        }
        const std::uint8_t version = h[4];
        if (version != kSnapshotFormatVersion) {
            if (pos == 0)
                journalFail(
                    "'" + path + "' was written by format version " +
                    std::to_string(version) + ", this build is " +
                    std::to_string(kSnapshotFormatVersion) +
                    " (delete the journal and re-run)");
            torn = true;
            break;
        }
        const std::uint64_t key = getU64(h + 5);
        const std::uint32_t len = getU32(h + 13);
        const std::uint32_t crc = getU32(h + 17);
        if (data.size() - pos - kHeaderBytes < len) {
            torn = true;
            break;
        }
        const std::uint8_t *payload = h + kHeaderBytes;
        if (crc32(payload, len) != crc) {
            torn = true;
            break;
        }
        std::vector<std::uint8_t> bytes(payload, payload + len);
        try {
            records_[key] = decodeSimResult(bytes);
        } catch (const SimError &) {
            torn = true;
            break;
        }
        ++stats_.loaded;
        pos += kHeaderBytes + len;
    }
    if (pos < data.size())
        torn = true;

    if (torn) {
        stats_.truncated_bytes = data.size() - pos;
        if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0)
            journalFail("ftruncate('" + path +
                        "') failed: " + std::strerror(errno));
    }
    if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0)
        journalFail("lseek('" + path +
                    "') failed: " + std::strerror(errno));
}

void
ResultJournal::append(std::uint64_t key, const SimResult &result)
{
    const std::vector<std::uint8_t> payload = encodeSimResult(result);

    std::vector<std::uint8_t> record;
    record.reserve(kHeaderBytes + payload.size());
    putU32(record, kJournalMagic);
    record.push_back(kSnapshotFormatVersion);
    putU64(record, key);
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    putU32(record, crc32(payload.data(), payload.size()));
    record.insert(record.end(), payload.begin(), payload.end());

    std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0)
        journalFail("append to a journal that is not open");
    std::size_t off = 0;
    while (off < record.size()) {
        const ssize_t n =
            ::write(fd_, record.data() + off, record.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            journalFail("write('" + path_ +
                        "') failed: " + std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    // The write-ahead contract: the record is durable before the
    // result is handed to anyone.
    if (::fsync(fd_) != 0)
        journalFail("fsync('" + path_ +
                    "') failed: " + std::strerror(errno));
    records_[key] = result;
    ++stats_.appended;
}

bool
ResultJournal::find(std::uint64_t key, SimResult &out) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = records_.find(key);
    if (it == records_.end())
        return false;
    out = it->second;
    return true;
}

std::size_t
ResultJournal::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return records_.size();
}

JournalStats
ResultJournal::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace ckesim
