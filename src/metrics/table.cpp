// LINT-ALLOW(stdio): this is the terminal reporting layer — the
// paper-table renderers write their output to stdout by design.
#include "metrics/table.hpp"

#include <cstdio>

#include "sim/stats.hpp"

namespace ckesim {

void
ClassAggregate::add(WorkloadClass cls, double value)
{
    // Geomeans need positive values; clamp degenerate runs.
    const double v = value > 1e-9 ? value : 1e-9;
    by_class_[cls].push_back(v);
    all_.push_back(v);
}

double
ClassAggregate::geomean(WorkloadClass cls) const
{
    auto it = by_class_.find(cls);
    if (it == by_class_.end() || it->second.empty())
        return 0.0;
    return ckesim::geomean(it->second);
}

double
ClassAggregate::geomeanAll() const
{
    if (all_.empty())
        return 0.0;
    return ckesim::geomean(all_);
}

int
ClassAggregate::count(WorkloadClass cls) const
{
    auto it = by_class_.find(cls);
    return it == by_class_.end()
               ? 0
               : static_cast<int>(it->second.size());
}

const char *
classLabel(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::CC:
        return "C+C";
      case WorkloadClass::CM:
        return "C+M";
      case WorkloadClass::MM:
        return "M+M";
    }
    return "?";
}

std::string
fmt(double v, int width, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
    return buf;
}

void
printHeader(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("-");
    std::printf("\n");
}

// ---- ClassTable --------------------------------------------------------

ClassTable::ClassTable(std::string title,
                       std::vector<std::string> columns,
                       int col_width)
    : title_(std::move(title)), columns_(std::move(columns)),
      col_width_(col_width), cells_(columns_.size())
{
}

void
ClassTable::add(WorkloadClass cls, std::size_t col, double value)
{
    cells_.at(col).add(cls, value);
}

double
ClassTable::geomean(WorkloadClass cls, std::size_t col) const
{
    return cells_.at(col).geomean(cls);
}

double
ClassTable::geomeanAll(std::size_t col) const
{
    return cells_.at(col).geomeanAll();
}

void
ClassTable::print(int normalize_to_col) const
{
    printHeader(title_);
    std::printf("%-8s", "class");
    for (const std::string &c : columns_)
        std::printf(" %*s", col_width_, c.c_str());
    std::printf("\n");

    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s", classLabel(cls));
        const double base =
            normalize_to_col >= 0
                ? cells_[static_cast<std::size_t>(normalize_to_col)]
                      .geomean(cls)
                : 0.0;
        for (const ClassAggregate &agg : cells_) {
            double v = agg.geomean(cls);
            if (normalize_to_col >= 0 && base > 0)
                v /= base;
            std::printf(" %*.3f", col_width_, v);
        }
        std::printf("\n");
    }

    std::printf("%-8s", "ALL");
    const double base_all =
        normalize_to_col >= 0
            ? cells_[static_cast<std::size_t>(normalize_to_col)]
                  .geomeanAll()
            : 0.0;
    for (const ClassAggregate &agg : cells_) {
        double v = agg.geomeanAll();
        if (normalize_to_col >= 0 && base_all > 0)
            v /= base_all;
        std::printf(" %*.3f", col_width_, v);
    }
    std::printf("\n");
}

// ---- TextTable ---------------------------------------------------------

TextTable::TextTable(std::string title, std::string row_header,
                     std::vector<std::string> columns, int col_width,
                     int precision)
    : title_(std::move(title)), row_header_(std::move(row_header)),
      columns_(std::move(columns)), col_width_(col_width),
      precision_(precision)
{
}

void
TextTable::addRow(std::string label, std::vector<double> values)
{
    rows_.emplace_back(std::move(label), std::move(values));
}

void
TextTable::print() const
{
    printHeader(title_);
    std::printf("%-8s", row_header_.c_str());
    for (const std::string &c : columns_)
        std::printf(" %*s", col_width_, c.c_str());
    std::printf("\n");
    for (const auto &[label, values] : rows_) {
        std::printf("%-8s", label.c_str());
        for (double v : values)
            std::printf(" %*.*f", col_width_, precision_, v);
        std::printf("\n");
    }
}

} // namespace ckesim
