/**
 * @file
 * Multiprogramming performance metrics (Section 2.3, citing Eyerman &
 * Eeckhout): Weighted Speedup, ANTT and Fairness over per-kernel
 * normalized IPCs (concurrent IPC / isolated IPC).
 */

#ifndef CKESIM_METRICS_PERF_METRICS_HPP
#define CKESIM_METRICS_PERF_METRICS_HPP

#include <vector>

namespace ckesim {

/** Weighted Speedup: sum of normalized IPCs. */
double weightedSpeedup(const std::vector<double> &norm_ipcs);

/**
 * Average Normalized Turnaround Time: mean of per-kernel slowdowns
 * (1 / normalized IPC). Lower is better.
 */
double antt(const std::vector<double> &norm_ipcs);

/**
 * Fairness: lowest normalized IPC over highest normalized IPC.
 * 1.0 = perfectly fair; higher is better.
 */
double fairnessIndex(const std::vector<double> &norm_ipcs);

} // namespace ckesim

#endif // CKESIM_METRICS_PERF_METRICS_HPP
