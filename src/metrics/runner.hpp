/**
 * @file
 * Experiment runner: executes isolated and concurrent simulations,
 * caches isolated baselines, and assembles the paper's evaluated
 * scheme combinations (Section 4's WS / WS-QBMI / WS-DMIL /
 * SMK-(P+W) / SMK-(P+QBMI) / SMK-(P+DMIL) / Spatial).
 */

#ifndef CKESIM_METRICS_RUNNER_HPP
#define CKESIM_METRICS_RUNNER_HPP

#include <map>
#include <string>
#include <vector>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "sim/config.hpp"

namespace ckesim {

/** The scheme combinations the paper evaluates by name. */
enum class NamedScheme {
    Spatial,      ///< spatial multitasking reference
    Leftover,     ///< early CKE left-over policy
    WS,           ///< dynamic Warped-Slicer TB partition
    WS_RBMI,      ///< + round-robin BMI
    WS_QBMI,      ///< + quota-based BMI
    WS_DMIL,      ///< + dynamic MIL
    WS_QBMI_DMIL, ///< + both (Section 3.4)
    WS_UCP,       ///< + UCP L1D partitioning (Section 3.1)
    SMK_PW,       ///< SMK partition + warp quota (SMK-(P+W))
    SMK_P_QBMI,   ///< SMK partition + QBMI
    SMK_P_DMIL,   ///< SMK partition + DMIL
};

/** Short display name, e.g. "WS-DMIL". */
std::string schemeName(NamedScheme scheme);

/** Baseline from an isolated single-kernel run. */
struct IsolatedResult
{
    double ipc = 0.0;         ///< GPU-wide warp instructions / cycle
    double ipc_per_sm = 0.0;
    KernelStats stats;
    SmStats sm_stats;
    int max_tbs = 0;          ///< TBs per SM the run used
};

/** Everything a concurrent run reports. */
struct ConcurrentResult
{
    std::string workload_name;
    std::vector<double> ipc;      ///< per kernel
    std::vector<double> norm_ipc; ///< vs isolated
    double weighted_speedup = 0.0;
    double antt_value = 0.0;
    double fairness = 0.0;
    double theoretical_ws = 0.0;  ///< WS prediction (WS modes)
    std::vector<KernelStats> stats;
    SmStats sm_stats;
    std::vector<int> partition;   ///< chosen per-SM TB counts
};

/**
 * Runs simulations against one GpuConfig, caching isolated baselines
 * (keyed by kernel, TB limit and cycle budget).
 */
class Runner
{
  public:
    explicit Runner(const GpuConfig &cfg, Cycle cycles = 100000);

    const GpuConfig &config() const { return cfg_; }
    Cycle cycles() const { return cycles_; }

    /**
     * Isolated run of one kernel (full GPU). @p tb_limit caps the
     * per-SM TB count; 0 = the kernel's occupancy maximum.
     */
    const IsolatedResult &isolated(const KernelProfile &prof,
                                   int tb_limit = 0);

    /** Per-SM IPC-vs-TB-count curve from isolated runs (Figure 3a). */
    ScalabilityCurve scalability(const KernelProfile &prof);

    /** Build the SchemeSpec for a named scheme on @p workload. */
    SchemeSpec scheme(NamedScheme scheme, const Workload &workload);

    /** Run @p workload under @p spec and compute all metrics. */
    ConcurrentResult run(const Workload &workload,
                         const SchemeSpec &spec);

    /** Convenience: named scheme end-to-end. */
    ConcurrentResult
    run(const Workload &workload, NamedScheme named)
    {
        return run(workload, scheme(named, workload));
    }

  private:
    GpuConfig cfg_;
    Cycle cycles_;
    std::map<std::string, IsolatedResult> iso_cache_;
};

} // namespace ckesim

#endif // CKESIM_METRICS_RUNNER_HPP
