/**
 * @file
 * Experiment runner: a thin façade over the SweepEngine that executes
 * isolated and concurrent simulations against one GpuConfig, shares
 * the engine's memoized isolated baselines, and assembles the paper's
 * evaluated scheme combinations (Section 4's WS / WS-QBMI / WS-DMIL /
 * SMK-(P+W) / SMK-(P+QBMI) / SMK-(P+DMIL) / Spatial).
 */

#ifndef CKESIM_METRICS_RUNNER_HPP
#define CKESIM_METRICS_RUNNER_HPP

#include <memory>
#include <string>

#include "metrics/sim_job.hpp"
#include "metrics/sweep_engine.hpp"

namespace ckesim {

/**
 * Runs simulations against one GpuConfig. All execution and caching
 * is delegated to a SweepEngine; by default the Runner owns a serial
 * (1-job) engine, and callers that want parallelism or a shared memo
 * cache pass their own.
 */
class Runner
{
  public:
    explicit Runner(const GpuConfig &cfg, Cycle cycles = Cycle{100000},
                    std::shared_ptr<SweepEngine> engine = nullptr);

    const GpuConfig &config() const { return cfg_; }
    Cycle cycles() const { return cycles_; }

    /** The engine executing (and memoizing) this runner's jobs. */
    SweepEngine &engine() { return *engine_; }

    /**
     * Isolated run of one kernel (full GPU). @p tb_limit caps the
     * per-SM TB count; 0 = the kernel's occupancy maximum. The
     * reference stays valid for the engine's lifetime.
     */
    const IsolatedResult &isolated(const KernelProfile &prof,
                                   int tb_limit = 0);

    /** Per-SM IPC-vs-TB-count curve from isolated runs (Figure 3a). */
    ScalabilityCurve scalability(const KernelProfile &prof);

    /** Build the SchemeSpec for a named scheme on @p workload. */
    SchemeSpec scheme(NamedScheme scheme, const Workload &workload);

    /** Run @p workload under @p spec and compute all metrics. */
    ConcurrentResult run(const Workload &workload,
                         const SchemeSpec &spec);

    /** Convenience: named scheme end-to-end. */
    ConcurrentResult
    run(const Workload &workload, NamedScheme named)
    {
        return *engine_->concurrent(cfg_, cycles_, workload, named);
    }

  private:
    GpuConfig cfg_;
    Cycle cycles_;
    std::shared_ptr<SweepEngine> engine_;
};

} // namespace ckesim

#endif // CKESIM_METRICS_RUNNER_HPP
