/**
 * @file
 * Top-level GPU: SM array + shared memory subsystem + CKE scheme
 * orchestration (TB partitioning, dynamic Warped-Slicer profiling,
 * SMK warp quotas, UCP repartitioning).
 */

#ifndef CKESIM_GPU_HPP
#define CKESIM_GPU_HPP

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/issue_policy.hpp"
#include "core/smk.hpp"
#include "core/tb_partition.hpp"
#include "core/ucp.hpp"
#include "core/warped_slicer.hpp"
#include "kernels/workload.hpp"
#include "mem/memsys.hpp"
#include "sim/config.hpp"
#include "sim/profiler.hpp"
#include "sim/run_control.hpp"
#include "sim/snapshot.hpp"
#include "sim/time_series.hpp"
#include "sm/sm.hpp"

namespace ckesim {

/** How TB quotas are decided. */
enum class PartitionScheme {
    Leftover,     ///< early CKE: first kernel hogs, rest fill leftovers
    Spatial,      ///< spatial multitasking: SMs split between kernels
    WarpedSlicer, ///< dynamic scalability-curve sweet point
    SmkDrf,       ///< SMK: DRF static-resource fairness
};

/** Full description of a CKE scheme under evaluation. */
struct SchemeSpec
{
    PartitionScheme partition = PartitionScheme::WarpedSlicer;
    BmiMode bmi = BmiMode::None;
    MilMode mil = MilMode::None;
    /** SMIL per-kernel limits (kSmilInf / 0 = unlimited). */
    std::array<int, kMaxKernelsPerSm> smil_limits{};

    /** SMK-(P+W): gate instruction issue with epoch quotas. */
    bool smk_warp_quota = false;
    /** Per-SM isolated IPC per kernel (feeds SMK quotas). */
    std::vector<double> isolated_ipc_per_sm;
    Cycle smk_epoch_cycles{2048};

    /** UCP L1D way partitioning (Section 3.1 baseline). */
    bool ucp = false;
    /** Repartition period: several UMON refills per measurement
     *  window even in quick (30K-cycle) runs. */
    Cycle ucp_interval{5000};

    /** Dynamic Warped-Slicer online profiling window. */
    Cycle ws_profile_window{20000};
    /** When non-empty: static ("oracle") curves, no online window. */
    std::vector<ScalabilityCurve> oracle_curves;

    // ---- Section 4.5 ("Further Discussion") ablations ---------------
    /** Partition the L1D MSHRs evenly between kernels. The paper
     *  argues this cannot help: the in-order LSU still blocks. */
    bool mshr_partition = false;
    /** Bypass the L1D for these kernels' read misses. */
    std::array<bool, kMaxKernelsPerSm> bypass_l1d{};
    /** Global DMIL: broadcast SM 0's MILG limits to all SMs
     *  (requires every SM to run the same kernel pair). */
    bool global_dmil = false;
    Cycle global_dmil_interval{1024};

    // ---- integrity layer --------------------------------------------
    /** Injected memory-pipeline faults (see sim/fault.hpp). Used to
     *  prove the watchdog/invariants fire and to study scheme
     *  behaviour under degraded pipelines. */
    std::vector<FaultSpec> faults;

    /** Structured validation of scheme knobs against @p cfg; throws
     *  SimError (kind "ConfigError") on nonsense. */
    void validate(const GpuConfig &cfg) const;
};

/** One simulated GPU executing one CKE workload under one scheme. */
class Gpu
{
  public:
    Gpu(const GpuConfig &cfg, const Workload &workload,
        const SchemeSpec &spec);
    ~Gpu();

    /**
     * Simulate @p cycles cycles (including any profiling window).
     *
     * Integrity: every `cfg.integrity.check_interval` cycles the
     * forward-progress watchdog polls a monotonic progress signature
     * (instructions issued + load requests returned + fills
     * delivered). If the machine still has work but the signature has
     * not moved for `cfg.integrity.watchdog_timeout` cycles, a
     * SimError (kind "Watchdog") is raised carrying per-SM queue
     * occupancies, in-flight counts, MIL limits and QBMI quotas.
     * Periodic occupancy/conservation sweeps run on the same cadence.
     */
    void run(Cycle cycles);

    /**
     * Event-driven fast path (sim/clockable.hpp). When enabled,
     * run() warps now_ forward whenever every component's
     * nextEventCycle() horizon lies in the future — capped at the
     * next cadenced-event boundary (integrity poll, checkpoint, UCP,
     * global-DMIL, profiling end) so cadenced events inside a
     * skipped span still fire in order, and disabled outright while
     * fault injection is armed (fault predicates consult per-cycle
     * budgets). Results — stats, TimeSeries, snapshot fingerprints —
     * are bit-identical to strict stepping; see DESIGN.md section 13.
     */
    void setFastForward(bool enabled) { fast_forward_ = enabled; }
    bool fastForward() const { return fast_forward_; }

    /** Cycles the fast path warped over (diagnostics: the skip
     *  fraction is fastSkippedCycles() / total cycles run). */
    std::uint64_t fastSkippedCycles() const
    {
        return fast_skipped_cycles_;
    }

    /**
     * End-of-run conservation audit: drains all in-flight memory
     * state (no new instructions issue) and then proves that every
     * generated request retired — L1/L2 MSHR tables empty, miss and
     * LSU queues empty, the read ledger balanced, every warp's
     * pending-request count zero. Throws SimError on any leak.
     * Runs with faults disabled; a run whose faults actually fired
     * is expected to fail its audit (that is the point).
     */
    void audit();

    /** Cycles covered by the final measurement phase. */
    Cycle measuredCycles() const { return now_ - measured_start_; }

    int numKernels() const { return workload_.numKernels(); }

    /** GPU-wide IPC of kernel @p k over the measurement phase. */
    double ipc(KernelId k) const;

    /** Sum of kernel @p k's stats over all SMs (measurement phase). */
    KernelStats kernelStatsTotal(KernelId k) const;

    /** Sum of SM-level stats over all SMs (measurement phase). */
    SmStats smStatsTotal() const;

    /** Warped-Slicer's predicted WS at the sweet point. */
    double theoreticalWs() const { return sweet_.theoretical_ws; }

    /** Chosen per-SM TB partition (WS/SMK/Leftover modes). */
    const std::vector<int> &chosenPartition() const
    {
        return partition_;
    }

    Sm &sm(int i) { return *sms_[static_cast<std::size_t>(i)]; }
    const Sm &sm(int i) const
    {
        return *sms_[static_cast<std::size_t>(i)];
    }
    int numSms() const { return static_cast<int>(sms_.size()); }
    MemorySystem &memsys() { return mem_; }

    /** Attach GPU-wide per-kernel samplers (shared by every SM). */
    void attachSeries(KernelId k, TimeSeries *issue, TimeSeries *l1d);

    const GpuConfig &config() const { return cfg_; }

    /** The run's fault injector (counts how often faults fired). */
    const FaultInjector &faultInjector() const
    {
        return fault_injector_;
    }

    // ---- crash safety ---------------------------------------------------
    /**
     * Capture the complete mutable simulator state at the current
     * cycle: every SM (warps, schedulers, LSU, L1D), the memory
     * system, scheme state (Warped-Slicer, UCP monitors), the fault
     * injector and all RNG streams. restore(snapshot(t)) followed by
     * run(n) is bit-identical to running straight through t+n.
     */
    GpuSnapshot snapshot() const;

    /**
     * Restore a checkpoint taken from an identically constructed Gpu
     * (same config, workload and scheme). Throws SimError (kind
     * "Snapshot") on format-version or config-digest mismatch, or
     * when the payload does not match its fingerprint.
     */
    void restore(const GpuSnapshot &snap);

    /** Most recent automatic checkpoint taken by run() every
     *  cfg.integrity.checkpoint_interval cycles (nullptr if none). */
    const GpuSnapshot *lastCheckpoint() const
    {
        return last_checkpoint_ ? &*last_checkpoint_ : nullptr;
    }

    /** Attach cooperative cancellation / budget control (nullptr
     *  detaches). Polled on the integrity-check cadence; a tripped
     *  control raises SimError kind "Cancelled" or "Timeout". */
    void setRunControl(RunControl *rc) { run_control_ = rc; }

    /** Any memory request outstanding anywhere in the machine? The
     *  watchdog only raises while this holds: a compute-only phase
     *  legitimately makes no memory progress for long stretches. */
    bool memoryInFlight() const;

    /**
     * Attach a cycle-cost profiler (nullptr detaches): wall-time
     * attribution of the strict stepping loop to components
     * (DESIGN.md §14). Observation only — simulation results are
     * bit-identical with or without it. A Gpu constructed while the
     * CKESIM_PROF environment variable is set owns one and prints
     * its breakdown to stderr on destruction.
     */
    void setProfiler(Profiler *prof);
    Profiler *profiler() const { return cost_prof_; }

  private:
    void setupInitialPartition();
    void applyQuotas(const QuotaMatrix &quotas);
    void finishProfiling();
    void ucpRepartition();
    static void accessTap(void *opaque, KernelId k, LineAddr line);

    // Clockable stepping (shared by strict/fast run and audit drain).
    void tickComponents(Cycle at, bool drain);
    void stepCycle();
    Cycle skipTarget(Cycle end) const;
    void skipTo(Cycle target);

    // Integrity layer.
    std::uint64_t progressSignature() const;
    bool hasPendingWork() const;
    void watchdogPoll();
    void checkInvariants();
    void pollRunControl();
    [[noreturn]] void raiseWatchdog();

    GpuConfig cfg_;      // SNAPSHOT-SKIP(fixed at construction)
    Workload workload_;  // SNAPSHOT-SKIP(fixed at construction)
    SchemeSpec spec_;    // SNAPSHOT-SKIP(fixed at construction)
    MemorySystem mem_;
    std::vector<std::unique_ptr<Sm>> sms_;

    // Warped-Slicer state.
    bool profiling_ = false;
    Cycle profile_end_{};
    /** Per SM: (kernel, tb_count) during profiling; kernel<0 = idle. */
    std::vector<std::pair<int, int>> profile_assign_;
    SweetPoint sweet_;
    std::vector<int> partition_;

    // UCP state: umons_[sm][kernel].
    struct Tap
    {
        Gpu *gpu = nullptr;
        int sm = 0;
    };
    std::vector<std::vector<UmonMonitor>> umons_;
    std::vector<Tap> taps_; // SNAPSHOT-SKIP(pointer plumbing, fixed at construction)

    Cycle now_{};
    Cycle measured_start_{};

    // Integrity state.
    FaultInjector fault_injector_;
    std::uint64_t last_progress_sig_ = 0;
    Cycle last_progress_cycle_{};

    // Crash-safety state.
    RunControl *run_control_ = nullptr; // SNAPSHOT-SKIP(owned by the supervising caller)
    std::optional<GpuSnapshot> last_checkpoint_; // SNAPSHOT-SKIP(checkpoint artifact, not machine state)

    // Fast-path state.
    bool fast_forward_ = false; // SNAPSHOT-SKIP(execution strategy, not machine state)
    std::uint64_t fast_skipped_cycles_ = 0; // SNAPSHOT-SKIP(diagnostic counter, not machine state)

    // Cycle-cost profiling (observation only, never machine state).
    Profiler *cost_prof_ = nullptr; // SNAPSHOT-SKIP(observer; rebound by the owner)
    std::unique_ptr<Profiler> owned_prof_; // SNAPSHOT-SKIP(CKESIM_PROF convenience instance)
};

/** Convenience: a standard spec for a named scheme combination. */
SchemeSpec makeScheme(PartitionScheme partition, BmiMode bmi,
                      MilMode mil);

} // namespace ckesim

#endif // CKESIM_GPU_HPP
