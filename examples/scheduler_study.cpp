/**
 * @file
 * Example: warp-scheduler and L1D-capacity what-if study.
 *
 * Usage: scheduler_study [kernelA] [kernelB] [cycles]
 *
 * Replays one CKE workload across the Section 4.3 sensitivity axes —
 * GTO vs LRR warp scheduling and 24/48/96KB L1 D-caches — reporting
 * how much of DMIL's benefit survives each change. Demonstrates how
 * to customize GpuConfig and drive the Runner directly.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "kernels/workload.hpp"
#include "metrics/runner.hpp"

using namespace ckesim;

namespace {

void
evaluate(const char *label, const GpuConfig &cfg, const Workload &w,
         Cycle cycles)
{
    Runner runner(cfg, cycles);
    const ConcurrentResult base = runner.run(w, NamedScheme::WS);
    const ConcurrentResult dmil =
        runner.run(w, NamedScheme::WS_DMIL);
    std::printf("%-22s WS %6.3f -> %6.3f (%+5.1f%%)   ANTT %6.3f "
                "-> %6.3f   rsfail %5.2f -> %5.2f\n",
                label, base.weighted_speedup, dmil.weighted_speedup,
                100.0 * (dmil.weighted_speedup /
                             base.weighted_speedup -
                         1.0),
                base.antt_value, dmil.antt_value,
                (base.stats[0].l1dRsFailRate() +
                 base.stats[1].l1dRsFailRate()) /
                    2,
                (dmil.stats[0].l1dRsFailRate() +
                 dmil.stats[1].l1dRsFailRate()) /
                    2);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string ka = argc > 1 ? argv[1] : "bp";
    const std::string kb = argc > 2 ? argv[2] : "ks";
    const Cycle cycles =
        argc > 3 ? static_cast<Cycle>(std::atol(argv[3])) : 40000;
    const Workload w = makeWorkload({ka, kb});

    std::printf("workload %s: WS vs WS-DMIL across sensitivity "
                "axes\n\n",
                w.name().c_str());

    {
        GpuConfig cfg;
        evaluate("GTO, 24KB L1D (base)", cfg, w, cycles);
    }
    {
        GpuConfig cfg;
        cfg.sm.sched_policy = SchedPolicy::LRR;
        evaluate("LRR, 24KB L1D", cfg, w, cycles);
    }
    {
        GpuConfig cfg;
        cfg.l1d.size_bytes = 48 * 1024;
        evaluate("GTO, 48KB L1D", cfg, w, cycles);
    }
    {
        GpuConfig cfg;
        cfg.l1d.size_bytes = 96 * 1024;
        evaluate("GTO, 96KB L1D", cfg, w, cycles);
    }
    {
        GpuConfig cfg;
        cfg.l1d.num_mshrs = 256;
        evaluate("GTO, 256 MSHRs", cfg, w, cycles);
    }

    std::printf("\npaper (Section 4.3): the schemes stay effective "
                "under LRR and with bigger caches/MSHR files, with "
                "gains shrinking as capacity removes contention.\n");
    return 0;
}
