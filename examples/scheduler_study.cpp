/**
 * @file
 * Example: warp-scheduler and L1D-capacity what-if study.
 *
 * Usage: scheduler_study [kernelA] [kernelB] [cycles]
 *
 * Replays one CKE workload across the Section 4.3 sensitivity axes —
 * GTO vs LRR warp scheduling and 24/48/96KB L1 D-caches — reporting
 * how much of DMIL's benefit survives each change. Demonstrates how
 * to customize GpuConfig and fan a multi-configuration study out on
 * the SweepEngine: all ten simulations (5 configs x 2 schemes) run
 * as one sweep.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/experiment.hpp"
#include "metrics/sweep_engine.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string ka = argc > 1 ? argv[1] : "bp";
    const std::string kb = argc > 2 ? argv[2] : "ks";
    const Cycle cycles =
        argc > 3 ? Cycle{std::atol(argv[3])} : Cycle{40000};
    const Workload w = makeWorkload({ka, kb});

    std::printf("workload %s: WS vs WS-DMIL across sensitivity "
                "axes\n\n",
                w.name().c_str());

    std::vector<std::pair<std::string, GpuConfig>> configs;
    configs.emplace_back("GTO, 24KB L1D (base)", GpuConfig{});
    {
        GpuConfig cfg;
        cfg.sm.sched_policy = SchedPolicy::LRR;
        configs.emplace_back("LRR, 24KB L1D", cfg);
    }
    {
        GpuConfig cfg;
        cfg.l1d.size_bytes = 48 * 1024;
        configs.emplace_back("GTO, 48KB L1D", cfg);
    }
    {
        GpuConfig cfg;
        cfg.l1d.size_bytes = 96 * 1024;
        configs.emplace_back("GTO, 96KB L1D", cfg);
    }
    {
        GpuConfig cfg;
        cfg.l1d.num_mshrs = 256;
        configs.emplace_back("GTO, 256 MSHRs", cfg);
    }

    SweepEngine engine(jobsFromEnv());
    std::vector<SimJob> jobs;
    for (const auto &[label, cfg] : configs)
        for (NamedScheme s : {NamedScheme::WS, NamedScheme::WS_DMIL})
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    std::size_t idx = 0;
    for (const auto &[label, cfg] : configs) {
        const ConcurrentResult &base = *results[idx++].concurrent;
        const ConcurrentResult &dmil = *results[idx++].concurrent;
        std::printf("%-22s WS %6.3f -> %6.3f (%+5.1f%%)   ANTT "
                    "%6.3f -> %6.3f   rsfail %5.2f -> %5.2f\n",
                    label.c_str(), base.weighted_speedup,
                    dmil.weighted_speedup,
                    100.0 * (dmil.weighted_speedup /
                                 base.weighted_speedup -
                             1.0),
                    base.antt_value, dmil.antt_value,
                    (base.stats[0].l1dRsFailRate() +
                     base.stats[1].l1dRsFailRate()) /
                        2,
                    (dmil.stats[0].l1dRsFailRate() +
                     dmil.stats[1].l1dRsFailRate()) /
                        2);
    }

    std::printf("\npaper (Section 4.3): the schemes stay effective "
                "under LRR and with bigger caches/MSHR files, with "
                "gains shrinking as capacity removes contention.\n");
    return 0;
}
