/**
 * @file
 * Example: co-run pairing advisor.
 *
 * Usage: pairing_advisor [kernel] [cycles]
 *
 * Given one kernel, evaluates co-running it with every other
 * benchmark kernel under the best-practice scheme stack
 * (Warped-Slicer partition + DMIL) and ranks the partners by
 * Weighted Speedup — the "which kernels should share an SM?"
 * question that motivates intra-SM CKE (Section 1: kernels with
 * complementary characteristics gain the most). All twelve candidate
 * pairings run as one parallel sweep; the anchor kernel's isolated
 * baseline is simulated once and shared by every pairing.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/experiment.hpp"
#include "metrics/sweep_engine.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string base = argc > 1 ? argv[1] : "bp";
    const Cycle cycles =
        argc > 2 ? Cycle{std::atol(argv[2])} : Cycle{40000};

    GpuConfig cfg; // the paper's Table 1 machine
    SweepEngine engine(jobsFromEnv());
    const KernelProfile &anchor = findProfile(base);

    std::vector<std::string> partners;
    std::vector<std::string> classes;
    std::vector<SimJob> jobs;
    for (const KernelProfile &p : benchmarkSuite()) {
        if (p.name == anchor.name)
            continue;
        Workload w;
        w.kernels = {&anchor, &p};
        partners.push_back(p.name);
        classes.push_back(workloadClassName(w.cls()));
        jobs.push_back(
            SimJob::concurrent(cfg, cycles, w, NamedScheme::WS_DMIL));
    }
    const std::vector<SimResult> results = engine.sweep(jobs);

    struct Entry
    {
        std::string partner;
        std::string cls;
        std::shared_ptr<const ConcurrentResult> res;
    };
    std::vector<Entry> entries;
    for (std::size_t i = 0; i < partners.size(); ++i)
        entries.push_back(
            Entry{partners[i], classes[i], results[i].concurrent});
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.res->weighted_speedup >
                         b.res->weighted_speedup;
              });

    std::printf("co-run partners for '%s' under WS-DMIL, best "
                "first (%llu cycles, %d SMs):\n\n",
                anchor.name.c_str(),
                static_cast<unsigned long long>(cycles.get()),
                cfg.num_sms);
    std::printf("%-8s %-5s %8s %8s %8s   %s\n", "partner", "class",
                "WS", "ANTT", "fair", "TB partition");
    for (const Entry &e : entries) {
        std::printf("%-8s %-5s %8.3f %8.3f %8.3f   (",
                    e.partner.c_str(), e.cls.c_str(),
                    e.res->weighted_speedup, e.res->antt_value,
                    e.res->fairness);
        for (std::size_t i = 0; i < e.res->partition.size(); ++i)
            std::printf("%s%d", i ? "," : "", e.res->partition[i]);
        std::printf(")\n");
    }
    std::printf("\nrule of thumb from the paper: complementary "
                "(C+M) pairings share best once memory pipeline "
                "stalls are controlled.\n");
    return 0;
}
