/**
 * @file
 * Example: co-run pairing advisor.
 *
 * Usage: pairing_advisor [kernel] [cycles]
 *
 * Given one kernel, evaluates co-running it with every other
 * benchmark kernel under the best-practice scheme stack
 * (Warped-Slicer partition + DMIL) and ranks the partners by
 * Weighted Speedup — the "which kernels should share an SM?"
 * question that motivates intra-SM CKE (Section 1: kernels with
 * complementary characteristics gain the most).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/runner.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string base = argc > 1 ? argv[1] : "bp";
    const Cycle cycles =
        argc > 2 ? static_cast<Cycle>(std::atol(argv[2])) : 40000;

    GpuConfig cfg; // the paper's Table 1 machine
    Runner runner(cfg, cycles);
    const KernelProfile &anchor = findProfile(base);

    struct Entry
    {
        std::string partner;
        std::string cls;
        ConcurrentResult res;
    };
    std::vector<Entry> entries;
    for (const KernelProfile &p : benchmarkSuite()) {
        if (p.name == anchor.name)
            continue;
        Workload w;
        w.kernels = {&anchor, &p};
        Entry e;
        e.partner = p.name;
        e.cls = workloadClassName(w.cls());
        e.res = runner.run(w, NamedScheme::WS_DMIL);
        entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.res.weighted_speedup >
                         b.res.weighted_speedup;
              });

    std::printf("co-run partners for '%s' under WS-DMIL, best "
                "first (%llu cycles, %d SMs):\n\n",
                anchor.name.c_str(),
                static_cast<unsigned long long>(cycles),
                cfg.num_sms);
    std::printf("%-8s %-5s %8s %8s %8s   %s\n", "partner", "class",
                "WS", "ANTT", "fair", "TB partition");
    for (const Entry &e : entries) {
        std::printf("%-8s %-5s %8.3f %8.3f %8.3f   (",
                    e.partner.c_str(), e.cls.c_str(),
                    e.res.weighted_speedup, e.res.antt_value,
                    e.res.fairness);
        for (std::size_t i = 0; i < e.res.partition.size(); ++i)
            std::printf("%s%d", i ? "," : "", e.res.partition[i]);
        std::printf(")\n");
    }
    std::printf("\nrule of thumb from the paper: complementary "
                "(C+M) pairings share best once memory pipeline "
                "stalls are controlled.\n");
    return 0;
}
