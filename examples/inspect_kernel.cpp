/**
 * @file
 * Example: deep-dive inspection of one kernel's isolated execution.
 *
 * Usage: inspect_kernel [kernel-name] [cycles] [num_sms] [mil-limit]
 *
 * The optional fourth argument applies a static in-flight memory
 * instruction limit (SMIL) to the kernel, showing how throttling
 * affects its own L1D efficiency.
 *
 * Prints the microarchitectural signals the paper's mechanisms react
 * to: IPC, instruction mix, L1D behaviour with the reservation-failure
 * breakdown (line / MSHR / miss-queue), LSU stall fraction, compute
 * utilization, L2 miss rate and DRAM row-buffer locality.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gpu.hpp"
#include "kernels/profile.hpp"
#include "kernels/workload.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bp";
    const Cycle cycles =
        argc > 2 ? static_cast<Cycle>(std::atol(argv[2])) : 60000;
    const int num_sms = argc > 3 ? std::atoi(argv[3]) : 8;

    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.dram.num_channels = num_sms;

    const KernelProfile &prof = findProfile(name);
    Workload wl;
    wl.kernels = {&prof};

    SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                 BmiMode::None, MilMode::None);
    if (argc > 4) {
        spec.mil = MilMode::Static;
        spec.smil_limits[0] = std::atoi(argv[4]);
    }
    Gpu gpu(cfg, wl, spec);
    gpu.run(cycles);

    const KernelStats k = gpu.kernelStatsTotal(0);
    const SmStats s = gpu.smStatsTotal();

    std::printf("kernel %s: %d TBs/SM, %d warps/TB, %d regs/thread, "
                "%dB smem/TB\n",
                prof.name.c_str(), prof.maxTbsPerSm(cfg.sm),
                prof.warpsPerTb(cfg.sm.simd_width),
                prof.regs_per_thread, prof.smem_per_tb);
    std::printf("cycles %llu  sms %d\n",
                static_cast<unsigned long long>(cycles), num_sms);
    std::printf("IPC (gpu-wide)        %8.3f\n", gpu.ipc(0));
    std::printf("instr mix: alu %llu sfu %llu smem %llu mem %llu\n",
                (unsigned long long)k.alu_instructions,
                (unsigned long long)k.sfu_instructions,
                (unsigned long long)k.smem_instructions,
                (unsigned long long)k.mem_instructions);
    std::printf("Cinst/Minst %.2f  Req/Minst %.2f\n",
                k.cinstPerMinst(), k.reqPerMinst());
    std::printf("L1D: accesses %llu hits %llu miss_rate %.3f\n",
                (unsigned long long)k.l1d_accesses,
                (unsigned long long)k.l1d_hits, k.l1dMissRate());
    std::printf("L1D rsfail/access %.3f  (line %llu, mshr %llu, "
                "missq %llu)\n",
                k.l1dRsFailRate(),
                (unsigned long long)k.l1d_rsfail_line,
                (unsigned long long)k.l1d_rsfail_mshr,
                (unsigned long long)k.l1d_rsfail_missq);
    std::printf("LSU stall fraction    %8.3f\n", s.lsuStallFraction());
    std::printf("ALU util %.3f  SFU util %.3f\n",
                static_cast<double>(s.alu_issue_slots) /
                    (cfg.sm.num_schedulers * s.cycles),
                static_cast<double>(s.sfu_issue_slots) /
                    (cfg.sm.num_schedulers * s.cycles));
    std::printf("L2 miss rate          %8.3f\n",
                gpu.memsys().l2MissRate());
    double row_hit = 0.0;
    for (int c = 0; c < cfg.dram.num_channels; ++c)
        row_hit += gpu.memsys().channel(c).rowHitRate();
    std::printf("DRAM row-hit rate     %8.3f\n",
                row_hit / cfg.dram.num_channels);
    std::printf("TBs completed         %8llu\n",
                (unsigned long long)k.tbs_completed);
    return 0;
}
