/**
 * @file
 * Example: deep-dive inspection of one kernel's isolated execution.
 *
 * Usage: inspect_kernel [kernel-name] [cycles] [num_sms] [mil-limit]
 *
 * The optional fourth argument applies a static in-flight memory
 * instruction limit (SMIL) to the kernel, showing how throttling
 * affects its own L1D efficiency.
 *
 * Prints the microarchitectural signals the paper's mechanisms react
 * to: IPC, instruction mix, L1D behaviour with the reservation-failure
 * breakdown (line / MSHR / miss-queue), LSU stall fraction, compute
 * utilization, L2 miss rate and DRAM row-buffer locality — all read
 * off a SimJob result, including the memory-side summary the engine
 * attaches to every run.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "kernels/profile.hpp"
#include "kernels/workload.hpp"
#include "metrics/experiment.hpp"
#include "metrics/sweep_engine.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bp";
    const Cycle cycles =
        argc > 2 ? Cycle{std::atol(argv[2])} : Cycle{60000};
    const int num_sms = argc > 3 ? std::atoi(argv[3]) : 8;

    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.dram.num_channels = num_sms;

    const KernelProfile &prof = findProfile(name);
    SweepEngine engine(jobsFromEnv());

    double ipc = 0.0;
    KernelStats k;
    SmStats s;
    MemSideStats mem;
    if (argc > 4) {
        // Throttled variant: a single-kernel workload under Leftover
        // with a static in-flight memory instruction limit.
        Workload wl;
        wl.kernels = {&prof};
        SchemeSpec spec = makeScheme(PartitionScheme::Leftover,
                                     BmiMode::None, MilMode::Static);
        spec.smil_limits[0] = std::atoi(argv[4]);
        const ConcurrentResult &r =
            *engine.concurrent(cfg, cycles, wl, spec);
        ipc = r.ipc[0];
        k = r.stats[0];
        s = r.sm_stats;
        mem = r.mem;
    } else {
        const IsolatedResult &r =
            *engine.isolated(cfg, cycles, prof);
        ipc = r.ipc;
        k = r.stats;
        s = r.sm_stats;
        mem = r.mem;
    }

    std::printf("kernel %s: %d TBs/SM, %d warps/TB, %d regs/thread, "
                "%dB smem/TB\n",
                prof.name.c_str(), prof.maxTbsPerSm(cfg.sm),
                prof.warpsPerTb(cfg.sm.simd_width),
                prof.regs_per_thread, prof.smem_per_tb);
    std::printf("cycles %llu  sms %d\n",
                static_cast<unsigned long long>(cycles.get()), num_sms);
    std::printf("IPC (gpu-wide)        %8.3f\n", ipc);
    std::printf("instr mix: alu %llu sfu %llu smem %llu mem %llu\n",
                (unsigned long long)k.alu_instructions,
                (unsigned long long)k.sfu_instructions,
                (unsigned long long)k.smem_instructions,
                (unsigned long long)k.mem_instructions);
    std::printf("Cinst/Minst %.2f  Req/Minst %.2f\n",
                k.cinstPerMinst(), k.reqPerMinst());
    std::printf("L1D: accesses %llu hits %llu miss_rate %.3f\n",
                (unsigned long long)k.l1d_accesses,
                (unsigned long long)k.l1d_hits, k.l1dMissRate());
    std::printf("L1D rsfail/access %.3f  (line %llu, mshr %llu, "
                "missq %llu)\n",
                k.l1dRsFailRate(),
                (unsigned long long)k.l1d_rsfail_line,
                (unsigned long long)k.l1d_rsfail_mshr,
                (unsigned long long)k.l1d_rsfail_missq);
    std::printf("LSU stall fraction    %8.3f\n", s.lsuStallFraction());
    std::printf("ALU util %.3f  SFU util %.3f\n",
                static_cast<double>(s.alu_issue_slots) /
                    (cfg.sm.num_schedulers * s.cycles),
                static_cast<double>(s.sfu_issue_slots) /
                    (cfg.sm.num_schedulers * s.cycles));
    std::printf("L2 miss rate          %8.3f\n", mem.l2_miss_rate);
    std::printf("DRAM row-hit rate     %8.3f\n",
                mem.dram_row_hit_rate);
    std::printf("TBs completed         %8llu\n",
                (unsigned long long)k.tbs_completed);
    return 0;
}
