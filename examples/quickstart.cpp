/**
 * @file
 * Quickstart: run one concurrent-kernel workload under the paper's
 * schemes and print Weighted Speedup / ANTT / fairness.
 *
 * Usage: quickstart [kernelA] [kernelB] [cycles]
 *
 * This is the 30-second tour of the library: build a workload from
 * two of the thirteen benchmark kernels, evaluate intra-SM sharing
 * with Warped-Slicer TB partitioning, then add the paper's QBMI
 * (balanced memory request issuing) and DMIL (dynamic memory
 * instruction limiting) and watch the memory-pipeline interference
 * drop. The five schemes run in parallel on a SweepEngine (set
 * CKESIM_JOBS to bound the worker count) and share one pair of
 * memoized isolated baselines.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels/workload.hpp"
#include "metrics/experiment.hpp"
#include "metrics/sweep_engine.hpp"

using namespace ckesim;

int
main(int argc, char **argv)
{
    const std::string ka = argc > 1 ? argv[1] : "bp";
    const std::string kb = argc > 2 ? argv[2] : "sv";
    const Cycle cycles =
        argc > 3 ? Cycle{std::atol(argv[3])} : Cycle{60000};
    const int num_sms = argc > 4 ? std::atoi(argv[4]) : 8;

    GpuConfig cfg;
    cfg.num_sms = num_sms;
    cfg.dram.num_channels = num_sms;
    SweepEngine engine(jobsFromEnv());

    const Workload wl = makeWorkload({ka, kb});
    std::printf("workload %s (%s)\n\n", wl.name().c_str(),
                workloadClassName(wl.cls()).c_str());

    const std::vector<NamedScheme> schemes = {
        NamedScheme::Spatial,     NamedScheme::WS,
        NamedScheme::WS_QBMI,     NamedScheme::WS_DMIL,
        NamedScheme::WS_QBMI_DMIL};

    std::vector<SimJob> jobs;
    for (NamedScheme s : schemes)
        jobs.push_back(SimJob::concurrent(cfg, cycles, wl, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    std::printf("%-14s %8s %8s %8s   %s\n", "scheme", "WS", "ANTT",
                "fair", "norm IPC per kernel");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const ConcurrentResult &r = *results[i].concurrent;
        std::printf("%-14s %8.3f %8.3f %8.3f   [",
                    schemeName(schemes[i]).c_str(),
                    r.weighted_speedup, r.antt_value, r.fairness);
        for (std::size_t k = 0; k < r.norm_ipc.size(); ++k)
            std::printf("%s%.3f", k ? ", " : "", r.norm_ipc[k]);
        std::printf("]  miss[");
        for (std::size_t k = 0; k < r.stats.size(); ++k)
            std::printf("%s%.2f", k ? ", " : "",
                        r.stats[k].l1dMissRate());
        std::printf("]  rsfail[");
        for (std::size_t k = 0; k < r.stats.size(); ++k)
            std::printf("%s%.1f", k ? ", " : "",
                        r.stats[k].l1dRsFailRate());
        std::printf("]");
        if (!r.partition.empty()) {
            std::printf("  TBs(");
            for (std::size_t k = 0; k < r.partition.size(); ++k)
                std::printf("%s%d", k ? "," : "", r.partition[k]);
            std::printf(")");
        }
        std::printf("\n");
    }
    return 0;
}
