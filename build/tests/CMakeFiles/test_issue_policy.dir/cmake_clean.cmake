file(REMOVE_RECURSE
  "CMakeFiles/test_issue_policy.dir/test_issue_policy.cpp.o"
  "CMakeFiles/test_issue_policy.dir/test_issue_policy.cpp.o.d"
  "test_issue_policy"
  "test_issue_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_issue_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
