# Empty dependencies file for test_issue_policy.
# This may be replaced when dependencies are built.
