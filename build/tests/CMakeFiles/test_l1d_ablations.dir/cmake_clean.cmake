file(REMOVE_RECURSE
  "CMakeFiles/test_l1d_ablations.dir/test_l1d_ablations.cpp.o"
  "CMakeFiles/test_l1d_ablations.dir/test_l1d_ablations.cpp.o.d"
  "test_l1d_ablations"
  "test_l1d_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1d_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
