# Empty compiler generated dependencies file for test_l1d_ablations.
# This may be replaced when dependencies are built.
