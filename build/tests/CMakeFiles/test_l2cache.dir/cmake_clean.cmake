file(REMOVE_RECURSE
  "CMakeFiles/test_l2cache.dir/test_l2cache.cpp.o"
  "CMakeFiles/test_l2cache.dir/test_l2cache.cpp.o.d"
  "test_l2cache"
  "test_l2cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l2cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
