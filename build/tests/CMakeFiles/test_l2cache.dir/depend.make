# Empty dependencies file for test_l2cache.
# This may be replaced when dependencies are built.
