# Empty dependencies file for test_addrgen.
# This may be replaced when dependencies are built.
