file(REMOVE_RECURSE
  "CMakeFiles/test_addrgen.dir/test_addrgen.cpp.o"
  "CMakeFiles/test_addrgen.dir/test_addrgen.cpp.o.d"
  "test_addrgen"
  "test_addrgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addrgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
