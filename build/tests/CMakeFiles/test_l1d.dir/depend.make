# Empty dependencies file for test_l1d.
# This may be replaced when dependencies are built.
