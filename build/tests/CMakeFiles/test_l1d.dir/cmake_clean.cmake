file(REMOVE_RECURSE
  "CMakeFiles/test_l1d.dir/test_l1d.cpp.o"
  "CMakeFiles/test_l1d.dir/test_l1d.cpp.o.d"
  "test_l1d"
  "test_l1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
