file(REMOVE_RECURSE
  "CMakeFiles/test_warped_slicer.dir/test_warped_slicer.cpp.o"
  "CMakeFiles/test_warped_slicer.dir/test_warped_slicer.cpp.o.d"
  "test_warped_slicer"
  "test_warped_slicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warped_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
