# Empty dependencies file for test_warped_slicer.
# This may be replaced when dependencies are built.
