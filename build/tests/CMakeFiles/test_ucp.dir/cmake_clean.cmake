file(REMOVE_RECURSE
  "CMakeFiles/test_ucp.dir/test_ucp.cpp.o"
  "CMakeFiles/test_ucp.dir/test_ucp.cpp.o.d"
  "test_ucp"
  "test_ucp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
