# Empty compiler generated dependencies file for test_ucp.
# This may be replaced when dependencies are built.
