file(REMOVE_RECURSE
  "CMakeFiles/test_tb_partition.dir/test_tb_partition.cpp.o"
  "CMakeFiles/test_tb_partition.dir/test_tb_partition.cpp.o.d"
  "test_tb_partition"
  "test_tb_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tb_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
