# Empty dependencies file for test_tb_partition.
# This may be replaced when dependencies are built.
