file(REMOVE_RECURSE
  "CMakeFiles/test_coalescer.dir/test_coalescer.cpp.o"
  "CMakeFiles/test_coalescer.dir/test_coalescer.cpp.o.d"
  "test_coalescer"
  "test_coalescer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalescer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
