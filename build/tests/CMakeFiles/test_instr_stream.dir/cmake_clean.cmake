file(REMOVE_RECURSE
  "CMakeFiles/test_instr_stream.dir/test_instr_stream.cpp.o"
  "CMakeFiles/test_instr_stream.dir/test_instr_stream.cpp.o.d"
  "test_instr_stream"
  "test_instr_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
