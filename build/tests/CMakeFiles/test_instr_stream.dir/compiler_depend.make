# Empty compiler generated dependencies file for test_instr_stream.
# This may be replaced when dependencies are built.
