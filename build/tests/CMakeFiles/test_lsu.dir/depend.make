# Empty dependencies file for test_lsu.
# This may be replaced when dependencies are built.
