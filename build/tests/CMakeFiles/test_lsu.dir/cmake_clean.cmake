file(REMOVE_RECURSE
  "CMakeFiles/test_lsu.dir/test_lsu.cpp.o"
  "CMakeFiles/test_lsu.dir/test_lsu.cpp.o.d"
  "test_lsu"
  "test_lsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
