file(REMOVE_RECURSE
  "CMakeFiles/test_perf_metrics.dir/test_perf_metrics.cpp.o"
  "CMakeFiles/test_perf_metrics.dir/test_perf_metrics.cpp.o.d"
  "test_perf_metrics"
  "test_perf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
