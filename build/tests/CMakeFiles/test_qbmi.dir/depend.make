# Empty dependencies file for test_qbmi.
# This may be replaced when dependencies are built.
