file(REMOVE_RECURSE
  "CMakeFiles/test_qbmi.dir/test_qbmi.cpp.o"
  "CMakeFiles/test_qbmi.dir/test_qbmi.cpp.o.d"
  "test_qbmi"
  "test_qbmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qbmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
