# Empty dependencies file for test_smk.
# This may be replaced when dependencies are built.
