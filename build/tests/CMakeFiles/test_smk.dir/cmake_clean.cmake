file(REMOVE_RECURSE
  "CMakeFiles/test_smk.dir/test_smk.cpp.o"
  "CMakeFiles/test_smk.dir/test_smk.cpp.o.d"
  "test_smk"
  "test_smk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
