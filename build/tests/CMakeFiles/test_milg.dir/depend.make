# Empty dependencies file for test_milg.
# This may be replaced when dependencies are built.
