file(REMOVE_RECURSE
  "CMakeFiles/test_milg.dir/test_milg.cpp.o"
  "CMakeFiles/test_milg.dir/test_milg.cpp.o.d"
  "test_milg"
  "test_milg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
