# Empty dependencies file for bench_f9_smil_sweep.
# This may be replaced when dependencies are built.
