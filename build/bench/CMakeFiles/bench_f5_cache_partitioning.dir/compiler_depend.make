# Empty compiler generated dependencies file for bench_f5_cache_partitioning.
# This may be replaced when dependencies are built.
