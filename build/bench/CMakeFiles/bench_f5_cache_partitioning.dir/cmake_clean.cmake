file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_cache_partitioning.dir/bench_f5_cache_partitioning.cpp.o"
  "CMakeFiles/bench_f5_cache_partitioning.dir/bench_f5_cache_partitioning.cpp.o.d"
  "bench_f5_cache_partitioning"
  "bench_f5_cache_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_cache_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
