file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_qbmi_dmil.dir/bench_f11_qbmi_dmil.cpp.o"
  "CMakeFiles/bench_f11_qbmi_dmil.dir/bench_f11_qbmi_dmil.cpp.o.d"
  "bench_f11_qbmi_dmil"
  "bench_f11_qbmi_dmil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_qbmi_dmil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
