# Empty compiler generated dependencies file for bench_f11_qbmi_dmil.
# This may be replaced when dependencies are built.
