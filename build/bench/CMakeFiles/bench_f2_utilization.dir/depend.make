# Empty dependencies file for bench_f2_utilization.
# This may be replaced when dependencies are built.
