# Empty compiler generated dependencies file for bench_f12_warped_slicer_eval.
# This may be replaced when dependencies are built.
