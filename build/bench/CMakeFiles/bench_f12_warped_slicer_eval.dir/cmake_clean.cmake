file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_warped_slicer_eval.dir/bench_f12_warped_slicer_eval.cpp.o"
  "CMakeFiles/bench_f12_warped_slicer_eval.dir/bench_f12_warped_slicer_eval.cpp.o.d"
  "bench_f12_warped_slicer_eval"
  "bench_f12_warped_slicer_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_warped_slicer_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
