# Empty compiler generated dependencies file for bench_f14_three_kernels.
# This may be replaced when dependencies are built.
