file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_three_kernels.dir/bench_f14_three_kernels.cpp.o"
  "CMakeFiles/bench_f14_three_kernels.dir/bench_f14_three_kernels.cpp.o.d"
  "bench_f14_three_kernels"
  "bench_f14_three_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_three_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
