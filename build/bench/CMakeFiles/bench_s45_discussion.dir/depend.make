# Empty dependencies file for bench_s45_discussion.
# This may be replaced when dependencies are built.
