file(REMOVE_RECURSE
  "CMakeFiles/bench_s45_discussion.dir/bench_s45_discussion.cpp.o"
  "CMakeFiles/bench_s45_discussion.dir/bench_s45_discussion.cpp.o.d"
  "bench_s45_discussion"
  "bench_s45_discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s45_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
