# Empty compiler generated dependencies file for bench_f8_bmi_timeline.
# This may be replaced when dependencies are built.
