file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_bmi_timeline.dir/bench_f8_bmi_timeline.cpp.o"
  "CMakeFiles/bench_f8_bmi_timeline.dir/bench_f8_bmi_timeline.cpp.o.d"
  "bench_f8_bmi_timeline"
  "bench_f8_bmi_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_bmi_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
