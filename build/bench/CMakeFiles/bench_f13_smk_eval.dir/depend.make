# Empty dependencies file for bench_f13_smk_eval.
# This may be replaced when dependencies are built.
