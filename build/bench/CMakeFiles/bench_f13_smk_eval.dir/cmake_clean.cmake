file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_smk_eval.dir/bench_f13_smk_eval.cpp.o"
  "CMakeFiles/bench_f13_smk_eval.dir/bench_f13_smk_eval.cpp.o.d"
  "bench_f13_smk_eval"
  "bench_f13_smk_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_smk_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
