file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_l1d_timeline.dir/bench_f6_l1d_timeline.cpp.o"
  "CMakeFiles/bench_f6_l1d_timeline.dir/bench_f6_l1d_timeline.cpp.o.d"
  "bench_f6_l1d_timeline"
  "bench_f6_l1d_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_l1d_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
