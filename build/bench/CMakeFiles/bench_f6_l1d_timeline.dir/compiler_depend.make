# Empty compiler generated dependencies file for bench_f6_l1d_timeline.
# This may be replaced when dependencies are built.
