file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_ws_gap.dir/bench_f4_ws_gap.cpp.o"
  "CMakeFiles/bench_f4_ws_gap.dir/bench_f4_ws_gap.cpp.o.d"
  "bench_f4_ws_gap"
  "bench_f4_ws_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_ws_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
