# Empty dependencies file for bench_f4_ws_gap.
# This may be replaced when dependencies are built.
