file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_scalability.dir/bench_f3_scalability.cpp.o"
  "CMakeFiles/bench_f3_scalability.dir/bench_f3_scalability.cpp.o.d"
  "bench_f3_scalability"
  "bench_f3_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
