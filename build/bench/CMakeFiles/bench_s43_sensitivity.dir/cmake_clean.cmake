file(REMOVE_RECURSE
  "CMakeFiles/bench_s43_sensitivity.dir/bench_s43_sensitivity.cpp.o"
  "CMakeFiles/bench_s43_sensitivity.dir/bench_s43_sensitivity.cpp.o.d"
  "bench_s43_sensitivity"
  "bench_s43_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s43_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
