# Empty compiler generated dependencies file for bench_s43_sensitivity.
# This may be replaced when dependencies are built.
