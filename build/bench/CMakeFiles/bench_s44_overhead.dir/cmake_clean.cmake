file(REMOVE_RECURSE
  "CMakeFiles/bench_s44_overhead.dir/bench_s44_overhead.cpp.o"
  "CMakeFiles/bench_s44_overhead.dir/bench_s44_overhead.cpp.o.d"
  "bench_s44_overhead"
  "bench_s44_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s44_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
