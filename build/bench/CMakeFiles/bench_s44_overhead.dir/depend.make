# Empty dependencies file for bench_s44_overhead.
# This may be replaced when dependencies are built.
