file(REMOVE_RECURSE
  "CMakeFiles/inspect_kernel.dir/inspect_kernel.cpp.o"
  "CMakeFiles/inspect_kernel.dir/inspect_kernel.cpp.o.d"
  "inspect_kernel"
  "inspect_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
