file(REMOVE_RECURSE
  "libckesim.a"
)
