
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/issue_policy.cpp" "src/CMakeFiles/ckesim.dir/core/issue_policy.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/issue_policy.cpp.o.d"
  "/root/repo/src/core/mil.cpp" "src/CMakeFiles/ckesim.dir/core/mil.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/mil.cpp.o.d"
  "/root/repo/src/core/qbmi.cpp" "src/CMakeFiles/ckesim.dir/core/qbmi.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/qbmi.cpp.o.d"
  "/root/repo/src/core/smk.cpp" "src/CMakeFiles/ckesim.dir/core/smk.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/smk.cpp.o.d"
  "/root/repo/src/core/tb_partition.cpp" "src/CMakeFiles/ckesim.dir/core/tb_partition.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/tb_partition.cpp.o.d"
  "/root/repo/src/core/ucp.cpp" "src/CMakeFiles/ckesim.dir/core/ucp.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/ucp.cpp.o.d"
  "/root/repo/src/core/warped_slicer.cpp" "src/CMakeFiles/ckesim.dir/core/warped_slicer.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/core/warped_slicer.cpp.o.d"
  "/root/repo/src/gpu.cpp" "src/CMakeFiles/ckesim.dir/gpu.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/gpu.cpp.o.d"
  "/root/repo/src/kernels/addrgen.cpp" "src/CMakeFiles/ckesim.dir/kernels/addrgen.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/kernels/addrgen.cpp.o.d"
  "/root/repo/src/kernels/instr_stream.cpp" "src/CMakeFiles/ckesim.dir/kernels/instr_stream.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/kernels/instr_stream.cpp.o.d"
  "/root/repo/src/kernels/profile.cpp" "src/CMakeFiles/ckesim.dir/kernels/profile.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/kernels/profile.cpp.o.d"
  "/root/repo/src/kernels/workload.cpp" "src/CMakeFiles/ckesim.dir/kernels/workload.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/kernels/workload.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/ckesim.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/coalescer.cpp" "src/CMakeFiles/ckesim.dir/mem/coalescer.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/coalescer.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/ckesim.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/interconnect.cpp" "src/CMakeFiles/ckesim.dir/mem/interconnect.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/interconnect.cpp.o.d"
  "/root/repo/src/mem/l1d.cpp" "src/CMakeFiles/ckesim.dir/mem/l1d.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/l1d.cpp.o.d"
  "/root/repo/src/mem/l2cache.cpp" "src/CMakeFiles/ckesim.dir/mem/l2cache.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/l2cache.cpp.o.d"
  "/root/repo/src/mem/memsys.cpp" "src/CMakeFiles/ckesim.dir/mem/memsys.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/mem/memsys.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/ckesim.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/perf_metrics.cpp" "src/CMakeFiles/ckesim.dir/metrics/perf_metrics.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/metrics/perf_metrics.cpp.o.d"
  "/root/repo/src/metrics/runner.cpp" "src/CMakeFiles/ckesim.dir/metrics/runner.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/metrics/runner.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/ckesim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ckesim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/time_series.cpp" "src/CMakeFiles/ckesim.dir/sim/time_series.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sim/time_series.cpp.o.d"
  "/root/repo/src/sm/lsu.cpp" "src/CMakeFiles/ckesim.dir/sm/lsu.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sm/lsu.cpp.o.d"
  "/root/repo/src/sm/scheduler.cpp" "src/CMakeFiles/ckesim.dir/sm/scheduler.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sm/scheduler.cpp.o.d"
  "/root/repo/src/sm/sm.cpp" "src/CMakeFiles/ckesim.dir/sm/sm.cpp.o" "gcc" "src/CMakeFiles/ckesim.dir/sm/sm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
