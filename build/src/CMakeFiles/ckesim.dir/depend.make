# Empty dependencies file for ckesim.
# This may be replaced when dependencies are built.
