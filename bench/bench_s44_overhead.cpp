/**
 * @file
 * Reproduces the Section 4.4 hardware-overhead accounting: the
 * per-SM storage cost of the MILG instances (one per kernel) and the
 * QBMI counters, and a microbenchmark of the decision logic's
 * software cost (the paper argues the logic is off the critical
 * path; here we show it is nanoseconds per event).
 */

#include "bench_util.hpp"

#include "core/issue_policy.hpp"
#include "core/milg.hpp"
#include "core/qbmi.hpp"

namespace {

using namespace ckesim;

void
printOverheadTable(BenchReport &report)
{
    printHeader("Section 4.4: hardware overhead per SM (2 concurrent "
                "kernels)");
    const int milg_bits = Milg::kStorageBits;
    // QBMI: one more 10-bit memory instruction counter per kernel
    // plus quota registers (we count 16-bit quota registers).
    const int qbmi_bits_per_kernel = 10 + 16;
    const int kernels = 2;
    std::printf("MILG: %d-bit inflight peak + %d-bit rsfail + "
                "%d-bit request counter = %d bits x %d kernels = "
                "%d bits\n",
                Milg::kInflightBits, Milg::kRsFailBits,
                Milg::kRequestBits, milg_bits, kernels,
                milg_bits * kernels);
    std::printf("QBMI: 10-bit memory instruction counter + 16-bit "
                "quota = %d bits x %d kernels = %d bits\n",
                qbmi_bits_per_kernel, kernels,
                qbmi_bits_per_kernel * kernels);
    const int total_bits =
        (milg_bits + qbmi_bits_per_kernel) * kernels;
    std::printf("total: %d bits (~%d bytes) per SM — negligible "
                "against a multi-mm^2 SM (paper Section 4.4)\n",
                total_bits, (total_bits + 7) / 8);
    report.counters["bits_per_sm"] = total_bits;
}

void
milgUpdate(benchmark::State &state)
{
    Milg m;
    std::uint64_t i = 0;
    for (auto _ : state) {
        m.observeInflight(static_cast<int>(i % 128));
        if (i % 3 == 0)
            m.onRsFail();
        m.onRequest();
        ++i;
    }
    benchmark::DoNotOptimize(m.limit());
    state.counters["limit"] = m.limit();
}

void
qbmiQuotaRecompute(benchmark::State &state)
{
    const std::vector<double> rates = {2.0, 17.0};
    for (auto _ : state) {
        auto q = qbmiQuotas(rates);
        benchmark::DoNotOptimize(q.data());
    }
}

void
controllerAdmission(benchmark::State &state)
{
    IssuePolicyConfig cfg;
    cfg.bmi = BmiMode::QBMI;
    cfg.mil = MilMode::Dynamic;
    IssueController c(cfg, 2);
    std::array<bool, kMaxKernelsPerSm> demand{};
    demand[0] = demand[1] = true;
    c.beginCycle(demand);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const KernelId k = static_cast<KernelId>(i & 1);
        if (c.admitMemIssue(k)) {
            c.onMemInstrIssued(k);
            c.onMemInstrCompleted(k);
        }
        c.onRequestServiced(k);
        ++i;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("s44/overhead_table",
                                              printOverheadTable);
        benchmark::RegisterBenchmark("s44/milg_update_per_event",
                                     milgUpdate);
        benchmark::RegisterBenchmark("s44/qbmi_quota_recompute",
                                     qbmiQuotaRecompute);
        benchmark::RegisterBenchmark("s44/controller_admission",
                                     controllerAdmission);
    });
}
